module dpspark

go 1.22
