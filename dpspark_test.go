package dpspark

import (
	"math"
	"testing"

	"dpspark/internal/graph"
	"dpspark/internal/semiring"
)

func TestFacadeAPSP(t *testing.T) {
	s := NewSession(Local(4))
	g := RandomGraph(40, 0.2, 1, 9, 1)
	dist, stats, err := s.APSP(g, Config{BlockSize: 16, Driver: IM})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Time <= 0 {
		t.Fatal("no modelled time")
	}
	ref := g.APSPReference()
	if diff := dist.MaxAbsDiff(ref); diff > 1e-9 {
		t.Fatalf("diff %v", diff)
	}
	// Reconstruct a few paths.
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if math.IsInf(dist.At(u, v), 1) {
				continue
			}
			if p := ShortestPath(g, dist, u, v); p == nil || p[0] != u || p[len(p)-1] != v {
				t.Fatalf("bad path %d→%d: %v", u, v, p)
			}
		}
	}
}

// TestFacadeKernelThreads: the parallel-kernel session reproduces the
// serial session's APSP result exactly, bit for bit.
func TestFacadeKernelThreads(t *testing.T) {
	g := RandomGraph(200, 0.1, 1, 9, 5)
	cfg := Config{BlockSize: 64, Driver: IM}
	serial, _, err := NewSession(Local(8)).APSP(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, stats, err := NewSessionKernelThreads(Local(8), 4).APSP(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range par.Data {
		if math.Float64bits(v) != math.Float64bits(serial.Data[i]) {
			t.Fatalf("element %d: parallel kernels diverge from serial bits", i)
		}
	}
	if stats.KernelSpawned+stats.KernelInlined == 0 {
		t.Fatal("threaded session never consulted its kernel pools")
	}
}

func TestFacadeLinearSolve(t *testing.T) {
	s := NewSession(Local(4))
	a, b := RandomSystem(30, 2)
	x, _, err := s.SolveLinear(a, b, Config{BlockSize: 8, Driver: CB})
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 1e-6 {
		t.Fatalf("residual %v", r)
	}
}

func TestFacadeTransitiveClosure(t *testing.T) {
	s := NewSession(Local(2))
	g := GridGraph(2, 3, 1, 2, 3)
	tc, _, err := s.TransitiveClosure(g, Config{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if tc.At(i, j) != 1 { // grid is strongly connected
				t.Fatalf("closure[%d,%d] = %v", i, j, tc.At(i, j))
			}
		}
	}
}

func TestFacadeWidestPaths(t *testing.T) {
	s := NewSession(Local(2))
	n := 3
	d0 := &Matrix{N: n, Data: make([]float64, n*n)}
	sr := MaxMin()
	for i := range d0.Data {
		d0.Data[i] = sr.Zero
	}
	for i := 0; i < n; i++ {
		d0.Set(i, i, sr.One)
	}
	d0.Set(0, 1, 5)
	d0.Set(1, 2, 3)
	d0.Set(0, 2, 2)
	out, _, err := s.APSPSemiring(d0, sr, Config{BlockSize: 2, Driver: CB})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 2) != 3 {
		t.Fatalf("widest 0→2 = %v", out.At(0, 2))
	}
}

func TestFacadeLongestPathOnDAG(t *testing.T) {
	// Critical-path analysis: max-plus GEP over a diamond DAG
	// 0 → {1,2} → {3,4} → 5 with one heavy arm.
	dag := graph.New(6)
	dag.AddEdge(0, 1, 1)
	dag.AddEdge(0, 2, 3)
	dag.AddEdge(1, 3, 1)
	dag.AddEdge(2, 4, 4)
	dag.AddEdge(3, 5, 1)
	dag.AddEdge(4, 5, 1)

	sr := semiring.MaxPlus()
	n := dag.N
	d0 := &Matrix{N: n, Data: make([]float64, n*n)}
	for i := range d0.Data {
		d0.Data[i] = sr.Zero
	}
	for i := 0; i < n; i++ {
		d0.Set(i, i, sr.One)
	}
	for _, es := range dag.Adj {
		for _, e := range es {
			d0.Set(e.From, e.To, e.Weight)
		}
	}
	s := NewSession(Local(2))
	out, _, err := s.APSPSemiring(d0, sr, Config{BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The critical path 0→5 picks the heavier arm: 3 + 4 + 1 = 8.
	if got := out.At(0, 5); got != 8 {
		t.Fatalf("critical path length = %v, want 8", got)
	}
}

func TestFacadeSymbolicSession(t *testing.T) {
	s := NewSessionExecutorCores(Skylake16(), 16)
	if s.Context().ExecutorCores() != 16 {
		t.Fatal("executor cores not applied")
	}
}

func TestFacadeSCC(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	g.AddEdge(2, 3, 1)
	labels, stats, err := NewSession(Local(2)).StronglyConnectedComponents(g, Config{BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Time <= 0 {
		t.Fatal("no time")
	}
	if labels[0] != labels[1] || labels[2] == labels[3] || labels[0] == labels[2] {
		t.Fatalf("labels = %v", labels)
	}
}

func TestFacadeLCS(t *testing.T) {
	n, stats, err := NewSession(Local(2)).LCS([]byte("ABCBDAB"), []byte("BDCABA"), 4)
	if err != nil || n != 4 {
		t.Fatalf("LCS = %d, %v", n, err)
	}
	if stats.Iterations != 3 { // 2×2 tile grid → 3 waves
		t.Fatalf("waves = %d", stats.Iterations)
	}
}

func TestFacadeSemiringExportsAndGenerators(t *testing.T) {
	if MinPlus().Name() != "min-plus" || MaxMin().Name() != "max-min" {
		t.Fatal("semiring exports")
	}
	if g := GridGraph(3, 4, 1, 2, 9); g.N != 12 {
		t.Fatal("GridGraph")
	}
	a, b := RandomSystem(10, 3)
	if a.N != 10 || len(b) != 10 {
		t.Fatal("RandomSystem")
	}
	if ShortestPath(graph.New(2), &Matrix{N: 2, Data: make([]float64, 4)}, 0, 0) == nil {
		t.Fatal("trivial self path")
	}
}

func TestFacadeEliminate(t *testing.T) {
	a, _ := RandomSystem(12, 4)
	elim, _, err := NewSession(Local(2)).Eliminate(a.Clone(), Config{BlockSize: 4, Driver: CB})
	if err != nil {
		t.Fatal(err)
	}
	// Pivots survive on the diagonal.
	for i := 0; i < elim.N; i++ {
		if elim.At(i, i) == 0 {
			t.Fatalf("zero pivot at %d", i)
		}
	}
}
