// Command gesolve solves a dense linear system A·x = b by distributed
// Gaussian elimination without pivoting (A diagonally dominant or SPD),
// running the engine for real on the local machine.
//
// Input is either a binary matrix file written by matrix.WriteDense plus
// a whitespace-separated RHS file, or a synthetic system (-random m).
//
// Examples:
//
//	gesolve -random 1024 -block 128 -driver CB -kernel rec -rshared 4 -threads 8
//	gesolve -matrix A.bin -rhs b.txt -out x.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpspark"
	"dpspark/internal/matrix"
)

func main() {
	var (
		matrixFile = flag.String("matrix", "", "binary matrix file (matrix.WriteDense format)")
		rhsFile    = flag.String("rhs", "", "right-hand-side file (whitespace-separated numbers)")
		randomM    = flag.Int("random", 0, "generate a random diagonally dominant system of this size")
		seed       = flag.Int64("seed", 1, "generator seed")
		block      = flag.Int("block", 128, "tile size b")
		driver     = flag.String("driver", "CB", "driver: IM or CB")
		kernel     = flag.String("kernel", "iter", "kernel: iter or rec")
		rshared    = flag.Int("rshared", 4, "recursive fan-out r_shared")
		threads    = flag.Int("threads", 4, "worker threads per recursive kernel")
		cores      = flag.Int("cores", 4, "simulated local cores")
		out        = flag.String("out", "", "write the solution vector to this file")
	)
	flag.Parse()

	a, b, err := loadSystem(*matrixFile, *rhsFile, *randomM, *seed)
	if err != nil {
		fail(err)
	}

	cfg := dpspark.Config{BlockSize: *block, Driver: dpspark.CB}
	if strings.EqualFold(*driver, "IM") {
		cfg.Driver = dpspark.IM
	}
	if strings.EqualFold(*kernel, "rec") {
		cfg.RecursiveKernel = true
		cfg.RShared = *rshared
		cfg.Threads = *threads
	}

	s := dpspark.NewSession(dpspark.Local(*cores))
	x, stats, err := s.SolveLinear(a, b, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("solved %d×%d system: residual max|A·x−b| = %.3g\n", a.N, a.N, dpspark.Residual(a, x, b))
	fmt.Printf("wall %v, modelled cluster time %v over %d iterations\n",
		stats.Wall.Round(1e6), stats.Time, stats.Iterations)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		for _, v := range x {
			fmt.Fprintf(w, "%.17g\n", v)
		}
		if err := w.Flush(); err != nil {
			fail(err)
		}
		fmt.Printf("solution written to %s\n", *out)
	}
}

func loadSystem(matrixFile, rhsFile string, randomM int, seed int64) (*dpspark.Matrix, []float64, error) {
	if randomM > 0 {
		a, b := dpspark.RandomSystem(randomM, seed)
		return a, b, nil
	}
	if matrixFile == "" || rhsFile == "" {
		return nil, nil, fmt.Errorf("provide -matrix and -rhs, or -random")
	}
	mf, err := os.Open(matrixFile)
	if err != nil {
		return nil, nil, err
	}
	defer mf.Close()
	a, err := matrix.ReadDense(mf)
	if err != nil {
		return nil, nil, err
	}
	rf, err := os.Open(rhsFile)
	if err != nil {
		return nil, nil, err
	}
	defer rf.Close()
	var b []float64
	sc := bufio.NewScanner(rf)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad rhs value %q", sc.Text())
		}
		b = append(b, v)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(b) != a.N {
		return nil, nil, fmt.Errorf("rhs has %d values for a %d×%d matrix", len(b), a.N, a.N)
	}
	return a, b, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gesolve:", err)
	os.Exit(1)
}
