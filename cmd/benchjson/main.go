// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark results can be
// committed (BENCH_kernels.json, BENCH_engine.json) and diffed across
// PRs — the repo's perf trajectory.
//
//	go test -run '^$' -bench 'Kernel' -benchmem . | benchjson -o BENCH_kernels.json
//
// The output intentionally carries no timestamp: reruns on the same
// machine with unchanged performance produce byte-identical files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// trailing -GOMAXPROCS suffix, e.g. "KernelIterative/D/1024".
	Name string `json:"name"`
	// Procs is GOMAXPROCS during the run.
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per op.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is present when the benchmark calls b.SetBytes.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp and AllocsPerOp are present under -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (model_s, speedup, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the whole converted benchmark run.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes go test bench output: header "key: value" lines, then
// one line per benchmark, then the ok/PASS trailer (ignored).
func parse(sc *bufio.Scanner) (*Doc, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	doc := &Doc{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			doc.Results = append(doc.Results, r)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-8   12  345 ns/op  6 MB/s  7 B/op  8 allocs/op  9.5 model_s
func parseBenchLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("short benchmark line %q", line)
	}
	r := Result{Name: strings.TrimPrefix(fields[0], "Benchmark"), Procs: 1}
	if i := strings.LastIndex(r.Name, "-"); i >= 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = procs
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad iteration count in %q", line)
	}
	r.Iterations = iters
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "MB/s":
			r.MBPerS = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, nil
}
