// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark results can be
// committed (BENCH_kernels.json, BENCH_engine.json) and diffed across
// PRs — the repo's perf trajectory.
//
//	go test -run '^$' -bench 'Kernel' -benchmem . | benchjson -o BENCH_kernels.json
//
// The output intentionally carries no timestamp: reruns on the same
// machine with unchanged performance produce byte-identical files.
//
// The diff mode compares two such documents and exits non-zero when any
// shared benchmark regressed past a tolerance — the CI perf gate:
//
//	benchjson diff -tol 0.15 BENCH_engine.json /tmp/new/BENCH_engine.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// trailing -GOMAXPROCS suffix, e.g. "KernelIterative/D/1024".
	Name string `json:"name"`
	// Procs is GOMAXPROCS during the run.
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per op.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is present when the benchmark calls b.SetBytes.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp and AllocsPerOp are present under -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (model_s, speedup, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the whole converted benchmark run.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes go test bench output: header "key: value" lines, then
// one line per benchmark, then the ok/PASS trailer (ignored).
func parse(sc *bufio.Scanner) (*Doc, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	doc := &Doc{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			doc.Results = append(doc.Results, r)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-8   12  345 ns/op  6 MB/s  7 B/op  8 allocs/op  9.5 model_s
func parseBenchLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("short benchmark line %q", line)
	}
	r := Result{Name: strings.TrimPrefix(fields[0], "Benchmark"), Procs: 1}
	if i := strings.LastIndex(r.Name, "-"); i >= 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = procs
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad iteration count in %q", line)
	}
	r.Iterations = iters
	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "MB/s":
			r.MBPerS = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, nil
}

// tolMatchFlag is the repeatable -tolmatch flag: each value is
// "regex=frac", and a benchmark whose name matches the regex is gated at
// that tolerance instead of -tol (the last matching override wins). This
// lets one CI invocation hold mature benchmarks tight while giving
// known-noisy or newly-landed families headroom:
//
//	benchjson diff -tol 0.15 -tolmatch 'KernelParallel/=0.75' old.json new.json
type tolMatchFlag []tolMatch

type tolMatch struct {
	re  *regexp.Regexp
	tol float64
}

func (f *tolMatchFlag) String() string {
	parts := make([]string, len(*f))
	for i, m := range *f {
		parts[i] = fmt.Sprintf("%s=%g", m.re, m.tol)
	}
	return strings.Join(parts, ",")
}

func (f *tolMatchFlag) Set(s string) error {
	eq := strings.LastIndex(s, "=")
	if eq <= 0 {
		return fmt.Errorf("tolmatch %q: want regex=frac", s)
	}
	re, err := regexp.Compile(s[:eq])
	if err != nil {
		return fmt.Errorf("tolmatch %q: %w", s, err)
	}
	tol, err := strconv.ParseFloat(s[eq+1:], 64)
	if err != nil || tol < 0 {
		return fmt.Errorf("tolmatch %q: bad tolerance", s)
	}
	*f = append(*f, tolMatch{re, tol})
	return nil
}

// tolFor returns the effective tolerance for a benchmark name.
func (f tolMatchFlag) tolFor(name string, def float64) float64 {
	tol := def
	for _, m := range f {
		if m.re.MatchString(name) {
			tol = m.tol
		}
	}
	return tol
}

// runDiff implements `benchjson diff [-tol f] [-tolmatch re=f]... old.json
// new.json`. Shared benchmarks are compared on their most meaningful
// metric and any regression beyond the effective tolerance fails the gate
// (exit 1). Benchmarks present only in the new run are reported as NEW —
// a baseline that predates them must not read them as regressions — and
// ones that vanished are reported GONE; neither affects the exit code.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tol", 0.15, "max allowed fractional regression (0.15 = 15%)")
	var overrides tolMatchFlag
	fs.Var(&overrides, "tolmatch", "per-name tolerance override regex=frac (repeatable, last match wins)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson diff [-tol f] [-tolmatch re=f]... old.json new.json")
		return 2
	}
	oldDoc, err := loadDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson diff:", err)
		return 2
	}
	newDoc, err := loadDoc(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson diff:", err)
		return 2
	}
	newBy := make(map[string]Result, len(newDoc.Results))
	newNames := make([]string, 0, len(newDoc.Results))
	for _, r := range newDoc.Results {
		newBy[r.Name] = r
		newNames = append(newNames, r.Name)
	}
	oldBy := make(map[string]Result, len(oldDoc.Results))
	var shared, gone []string
	for _, r := range oldDoc.Results {
		oldBy[r.Name] = r
		if _, ok := newBy[r.Name]; ok {
			shared = append(shared, r.Name)
		} else {
			gone = append(gone, r.Name)
		}
	}
	var added []string
	for _, name := range newNames {
		if _, ok := oldBy[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(shared)
	sort.Strings(gone)
	sort.Strings(added)
	if len(shared)+len(added) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson diff: new run has no benchmarks to gate")
		return 2
	}
	failed := 0
	for _, name := range shared {
		o, n := oldBy[name], newBy[name]
		metric, ov, nv, lowerBetter := pickMetric(o, n)
		if metric == "" {
			fmt.Printf("SKIP  %-50s no comparable metric\n", name)
			continue
		}
		// Regression fraction, positive = worse.
		var reg float64
		if lowerBetter {
			reg = nv/ov - 1
		} else {
			reg = ov/nv - 1
		}
		if math.IsNaN(reg) || math.IsInf(reg, 0) {
			reg = 0
		}
		verdict := "ok   "
		if reg > overrides.tolFor(name, *tol) {
			verdict = "FAIL "
			failed++
		}
		fmt.Printf("%s %-50s %-8s %12.4g -> %12.4g  (%+.1f%%)\n",
			verdict, name, metric, ov, nv, reg*100)
	}
	for _, name := range added {
		fmt.Printf("NEW   %-50s not in baseline\n", name)
	}
	for _, name := range gone {
		fmt.Printf("GONE  %-50s not in new run\n", name)
	}
	fmt.Printf("benchjson diff: %d compared, %d new, %d gone, %d regressed beyond tolerance (base %.0f%%)\n",
		len(shared), len(added), len(gone), failed, *tol*100)
	if failed > 0 {
		return 1
	}
	return 0
}

// pickMetric chooses the comparison metric for a benchmark pair, most
// meaningful first: the deterministic model_s custom metric (lower is
// better), then throughput MB/s (higher is better), then wall ns/op
// (lower is better).
func pickMetric(o, n Result) (name string, ov, nv float64, lowerBetter bool) {
	if a, ok := o.Metrics["model_s"]; ok {
		if b, ok := n.Metrics["model_s"]; ok && a > 0 && b > 0 {
			return "model_s", a, b, true
		}
	}
	if o.MBPerS > 0 && n.MBPerS > 0 {
		return "MB/s", o.MBPerS, n.MBPerS, false
	}
	if o.NsPerOp > 0 && n.NsPerOp > 0 {
		return "ns/op", o.NsPerOp, n.NsPerOp, true
	}
	return "", 0, 0, false
}

func loadDoc(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}
