package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	r, err := parseBenchLine("BenchmarkKernelIterative/D/512-8   12  345.5 ns/op  102.3 MB/s  16 B/op  2 allocs/op  9.5 model_s")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "KernelIterative/D/512" || r.Procs != 8 || r.Iterations != 12 {
		t.Fatalf("parsed %+v", r)
	}
	if r.NsPerOp != 345.5 || r.MBPerS != 102.3 || r.BytesPerOp != 16 || r.AllocsPerOp != 2 {
		t.Fatalf("parsed metrics %+v", r)
	}
	if r.Metrics["model_s"] != 9.5 {
		t.Fatalf("custom metric %+v", r.Metrics)
	}
}

func TestParseDoc(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: dpspark/internal/kernels",
		"cpu: Intel Xeon",
		"BenchmarkKernelIterative/D/256-1   10  100 ns/op",
		"PASS",
		"ok  \tdpspark/internal/kernels\t1.0s",
	}, "\n")
	doc, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Pkg != "dpspark/internal/kernels" || len(doc.Results) != 1 {
		t.Fatalf("doc %+v", doc)
	}
}

// writeDoc drops a Doc as JSON under dir and returns its path.
func writeDoc(t *testing.T, dir, name string, results ...Result) string {
	t.Helper()
	raw, err := json.Marshal(Doc{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs runDiff with stdout captured.
func capture(t *testing.T, args []string) (int, string) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := runDiff(args)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	io.Copy(&buf, r)
	return code, buf.String()
}

// TestDiffNewBenchmarkIsNotRegression: a benchmark present only in the
// new run must be reported NEW in the summary and must not fail the gate
// — the exact situation every PR that lands a new benchmark family puts
// CI in before the baseline is regenerated.
func TestDiffNewBenchmarkIsNotRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json",
		Result{Name: "KernelIterative/D/512", NsPerOp: 100})
	newPath := writeDoc(t, dir, "new.json",
		Result{Name: "KernelIterative/D/512", NsPerOp: 101},
		Result{Name: "KernelParallel/D/512/t4", NsPerOp: 50})
	code, out := capture(t, []string{"-tol", "0.15", oldPath, newPath})
	if code != 0 {
		t.Fatalf("exit %d, out:\n%s", code, out)
	}
	if !strings.Contains(out, "NEW   KernelParallel/D/512/t4") {
		t.Fatalf("missing NEW line:\n%s", out)
	}
	if !strings.Contains(out, "1 compared, 1 new, 0 gone, 0 regressed") {
		t.Fatalf("summary wrong:\n%s", out)
	}
}

func TestDiffGoneAndRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json",
		Result{Name: "A", NsPerOp: 100},
		Result{Name: "B", NsPerOp: 100})
	newPath := writeDoc(t, dir, "new.json",
		Result{Name: "A", NsPerOp: 200})
	code, out := capture(t, []string{"-tol", "0.15", oldPath, newPath})
	if code != 1 {
		t.Fatalf("regression must exit 1, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "GONE  B") {
		t.Fatalf("missing FAIL/GONE:\n%s", out)
	}
	if !strings.Contains(out, "1 compared, 0 new, 1 gone, 1 regressed") {
		t.Fatalf("summary wrong:\n%s", out)
	}
}

// TestDiffTolMatch: -tolmatch loosens the gate only for names the regex
// matches; the last matching override wins.
func TestDiffTolMatch(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json",
		Result{Name: "KernelParallel/D/512/t4", NsPerOp: 100},
		Result{Name: "KernelIterative/D/512", NsPerOp: 100})
	newPath := writeDoc(t, dir, "new.json",
		Result{Name: "KernelParallel/D/512/t4", NsPerOp: 150},
		Result{Name: "KernelIterative/D/512", NsPerOp: 150})
	// Base 15% fails both; the override forgives only the parallel family.
	code, out := capture(t, []string{
		"-tol", "0.15", "-tolmatch", "KernelParallel/=0.9", oldPath, newPath})
	if code != 1 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "ok    KernelParallel/D/512/t4") {
		t.Fatalf("override not applied:\n%s", out)
	}
	if !strings.Contains(out, "FAIL  KernelIterative/D/512") {
		t.Fatalf("base tolerance not applied:\n%s", out)
	}
	// Last match wins.
	code, out = capture(t, []string{
		"-tol", "0.15",
		"-tolmatch", "Kernel=0.9", "-tolmatch", "KernelIterative/=0.1",
		oldPath, newPath})
	if code != 1 || !strings.Contains(out, "FAIL  KernelIterative/D/512") ||
		!strings.Contains(out, "ok    KernelParallel/D/512/t4") {
		t.Fatalf("last-match-wins broken (exit %d):\n%s", code, out)
	}
}

func TestDiffMetricPriority(t *testing.T) {
	o := Result{NsPerOp: 100, MBPerS: 10, Metrics: map[string]float64{"model_s": 5}}
	n := Result{NsPerOp: 120, MBPerS: 12, Metrics: map[string]float64{"model_s": 6}}
	if m, ov, nv, lower := pickMetric(o, n); m != "model_s" || ov != 5 || nv != 6 || !lower {
		t.Fatalf("pickMetric = %q %v %v %v", m, ov, nv, lower)
	}
	o.Metrics, n.Metrics = nil, nil
	if m, _, _, lower := pickMetric(o, n); m != "MB/s" || lower {
		t.Fatalf("pickMetric without model_s = %q", m)
	}
	o.MBPerS, n.MBPerS = 0, 0
	if m, _, _, lower := pickMetric(o, n); m != "ns/op" || !lower {
		t.Fatalf("pickMetric fallback = %q", m)
	}
}

func TestTolMatchFlagParsing(t *testing.T) {
	var f tolMatchFlag
	if err := f.Set("Kernel.*=0.5"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("no-equals"); err == nil {
		t.Fatal("missing = must be rejected")
	}
	if err := f.Set("(=0.5"); err == nil {
		t.Fatal("bad regex must be rejected")
	}
	if err := f.Set("x=-1"); err == nil {
		t.Fatal("negative tolerance must be rejected")
	}
	if got := f.tolFor("KernelFoo", 0.15); got != 0.5 {
		t.Fatalf("tolFor = %v", got)
	}
	if got := f.tolFor("Other", 0.15); got != 0.15 {
		t.Fatalf("tolFor default = %v", got)
	}
	if f.String() != "Kernel.*=0.5" {
		t.Fatalf("String = %q", f.String())
	}
}
