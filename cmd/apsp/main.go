// Command apsp solves the all-pairs shortest-path problem for a directed
// weighted graph with the distributed Floyd-Warshall solver, running the
// engine for real on the local machine.
//
// Input is either an edge-list file (-graph; format: first line the
// vertex count, then "from to weight" lines, '#' comments) or a synthetic
// graph (-random n p | -grid rows cols).
//
// Examples:
//
//	apsp -random 512 -p 0.05 -block 128 -driver IM
//	apsp -graph roads.txt -block 256 -kernel rec -rshared 4 -threads 8 -out dist.bin
//	apsp -grid 30 30 -query 0,899
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"dpspark"
	"dpspark/internal/graph"
	"dpspark/internal/matrix"
)

func main() {
	var (
		graphFile  = flag.String("graph", "", "edge-list file to solve")
		dimacsFile = flag.String("dimacs", "", "9th-DIMACS-challenge shortest-path file to solve")
		randomN    = flag.Int("random", 0, "generate a random directed graph with this many vertices")
		p          = flag.Float64("p", 0.05, "edge probability for -random")
		gridDims   = flag.String("grid", "", "generate a grid road network, e.g. -grid 30x40")
		seed       = flag.Int64("seed", 1, "generator seed")
		block      = flag.Int("block", 128, "tile size b")
		driver     = flag.String("driver", "IM", "driver: IM or CB")
		kernel     = flag.String("kernel", "iter", "kernel: iter or rec")
		rshared    = flag.Int("rshared", 4, "recursive fan-out r_shared")
		threads    = flag.Int("threads", 4, "worker threads per recursive kernel")
		cores      = flag.Int("cores", 4, "simulated local cores")
		out        = flag.String("out", "", "write the distance matrix (binary) to this file")
		query      = flag.String("query", "", "print one shortest path, e.g. -query 3,17")
	)
	flag.Parse()

	g, err := loadGraph(*graphFile, *dimacsFile, *randomN, *p, *gridDims, *seed)
	if err != nil {
		fail(err)
	}

	cfg := dpspark.Config{BlockSize: *block}
	if strings.EqualFold(*driver, "CB") {
		cfg.Driver = dpspark.CB
	}
	if strings.EqualFold(*kernel, "rec") {
		cfg.RecursiveKernel = true
		cfg.RShared = *rshared
		cfg.Threads = *threads
	}

	s := dpspark.NewSession(dpspark.Local(*cores))
	dist, stats, err := s.APSP(g, cfg)
	if err != nil {
		fail(err)
	}

	reachable, sum := 0, 0.0
	for i, v := range dist.Data {
		if i/dist.N != i%dist.N && !math.IsInf(v, 1) {
			reachable++
			sum += v
		}
	}
	fmt.Printf("solved APSP: %d vertices, %d edges, %d reachable pairs, mean distance %.3f\n",
		g.N, g.Edges(), reachable, sum/math.Max(1, float64(reachable)))
	fmt.Printf("wall %v, modelled cluster time %v over %d iterations\n",
		stats.Wall.Round(1e6), stats.Time, stats.Iterations)

	if *query != "" {
		u, v, err := parsePair(*query)
		if err != nil {
			fail(err)
		}
		path := dpspark.ShortestPath(g, dist, u, v)
		if path == nil {
			fmt.Printf("no path %d→%d\n", u, v)
		} else {
			fmt.Printf("shortest path %d→%d (length %.3f): %v\n", u, v, dist.At(u, v), path)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := matrix.WriteDense(f, dist); err != nil {
			fail(err)
		}
		fmt.Printf("distance matrix written to %s\n", *out)
	}
}

func loadGraph(file, dimacs string, randomN int, p float64, grid string, seed int64) (*dpspark.Graph, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	case dimacs != "":
		f, err := os.Open(dimacs)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadDIMACS(f)
	case grid != "":
		parts := strings.FieldsFunc(grid, func(r rune) bool { return r == 'x' || r == ',' || r == ' ' })
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -grid %q, want ROWSxCOLS", grid)
		}
		rows, err1 := strconv.Atoi(parts[0])
		cols, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad -grid %q", grid)
		}
		return dpspark.GridGraph(rows, cols, 1, 10, seed), nil
	case randomN > 0:
		return dpspark.RandomGraph(randomN, p, 1, 10, seed), nil
	default:
		return nil, fmt.Errorf("provide -graph, -random or -grid")
	}
}

func parsePair(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -query %q, want U,V", s)
	}
	u, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	v, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad -query %q", s)
	}
	return u, v, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "apsp:", err)
	os.Exit(1)
}
