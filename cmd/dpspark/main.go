// Command dpspark regenerates the paper's evaluation on the cluster
// model: Tables I–II, Figs. 6, 8 and 9, the headline iterative-vs-
// recursive speedups, the design ablations and an autotuning sweep.
//
// Usage:
//
//	dpspark table1|table2|fig6|fig8|fig9|headline|ablations|sweep|all [flags]
//
// Flags:
//
//	-n N           problem size (default 32768, the paper's 32K)
//	-csv DIR       also write each table as CSV into DIR
//	-v             print per-cell cost breakdowns
//	-trace FILE    write a Chrome trace-event JSON of every run
//	-metrics FILE  write a Prometheus-style metrics dump of every run
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dpspark/internal/autotune"
	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/experiments"
	"dpspark/internal/matrix"
	"dpspark/internal/obs"
	"dpspark/internal/rdd"
	"dpspark/internal/report"
	"dpspark/internal/semiring"
	"dpspark/internal/serve"
	"dpspark/internal/simtime"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	n := fs.Int("n", experiments.PaperN, "problem size (DP table is n×n)")
	csvDir := fs.String("csv", "", "directory to also write CSV tables into")
	htmlOut := fs.String("html", "", "also write a self-contained HTML report to this file")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of all runs to this file")
	metricsOut := fs.String("metrics", "", "write a Prometheus-style metrics dump of all runs to this file")
	verbose := fs.Bool("v", false, "print per-cell cost breakdowns")
	seed := fs.Int64("seed", 20260805, "fault-plan seed (chaos command) / input seed (durable command)")
	crashes := fs.Int("crashes", 2, "executor crashes to schedule (chaos command)")
	gcpauses := fs.Int("gcpause", 0, "stop-the-world GC pauses to schedule; turns on the heartbeat failure detector, so pauses outliving the lease count are falsely declared dead (chaos command)")
	rackfails := fs.Int("rackfail", 0, "correlated rack failures to schedule on a 4-rack topology (chaos command)")
	dir := fs.String("dir", "", "durable block-store + checkpoint directory (durable/resume commands)")
	bench := fs.String("bench", "fw", "benchmark: fw or ge (durable command)")
	driverName := fs.String("driver", "im", "driver: im or cb (durable command)")
	budget := fs.Int64("budget", 0, "store memory budget in bytes, 0 = unbounded (durable/resume commands)")
	stop := fs.Int("stop", 0, "kill the driver after this many iterations, 0 = run to completion (durable command)")
	size := fs.Int("size", 512, "problem size of the durable demo run (durable command)")
	block := fs.Int("block", 128, "tile size of the durable demo run (durable command)")
	kernelThreads := fs.Int("kernel-threads", 1, "intra-tile kernel pool width for real-mode runs, the OMP_NUM_THREADS analogue (1 = serial; >1 row-band parallel kernels, bit-identical)")
	critpath := fs.Bool("critpath", false, "record and report the critical path of every run")
	listen := fs.String("listen", "", "serve live observability endpoints (/metrics /events /debug/critpath /healthz) on this address; the serve command's job API binds here too")
	flightOut := fs.String("flight", "", "write the flight-recorder event tail as JSON lines to this file")
	maxQueue := fs.Int("max-queue", 16, "max queued jobs before submissions get 429 (serve command)")
	maxJobs := fs.Int("max-jobs", 2, "max concurrently running jobs on the shared cluster (serve command)")
	tenantRunning := fs.Int("tenant-running", 0, "per-tenant running-job cap, 0 = auto (serve command)")
	tenantPending := fs.Int("tenant-pending", 0, "per-tenant queued-job cap, 0 = auto (serve command)")
	drainGrace := fs.Duration("drain-grace", 30*time.Second, "graceful-drain window on SIGTERM before in-flight jobs are cancelled (serve command)")
	journalDir := fs.String("journal", "", "crash-safe serving: write-ahead job journal + per-job durable checkpoints under this directory; on start the journal is replayed — terminal jobs keep their results, queued jobs re-enter the queue, mid-run jobs resume from their latest checkpoint (serve command)")
	maxAttempts := fs.Int("max-attempts", 1, "run attempts per job on engine errors, with exponential backoff (serve command)")
	poison := fs.Int("poison-threshold", 3, "panics/crash-restarts before a job is quarantined instead of retried (serve command)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *htmlOut != "" {
		htmlReport = report.NewHTMLReport(fmt.Sprintf("dpspark evaluation (n=%d)", *n))
	}
	observer := obs.New()
	if *traceOut != "" {
		observer.EnableTrace(true)
	}
	if *critpath {
		observer.EnableCritPath(true)
	}
	if *listen != "" && cmd != "serve" {
		srv, err := obs.ListenAndServe(*listen, observer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpspark:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability endpoints on http://%s (/metrics /events /debug/critpath /healthz)\n", srv.Addr())
	}
	experiments.SetObserver(observer)
	if cmd != "serve" {
		// Batch commands stop gracefully: the first SIGINT/SIGTERM asks the
		// driver loop to checkpoint and stop at the next iteration boundary
		// (durable/resume poll the flag through core.Config.StopRequested);
		// the second — or the first, for commands with no driver loop to
		// interrupt — dumps the flight-recorder ring and exits.
		handleSignals(observer, *flightOut, cmd == "durable" || cmd == "resume")
	}

	var run func(name string) error
	run = func(name string) error {
		switch name {
		case "table1":
			t, results := experiments.TableI(*n)
			return emitTable(t, results, *csvDir, "table1.csv", *verbose)
		case "table2":
			t, results := experiments.TableII(*n)
			return emitTable(t, results, *csvDir, "table2.csv", *verbose)
		case "fig6":
			for _, bench := range []experiments.Benchmark{experiments.FW, experiments.GE} {
				chart, results := experiments.Fig6(bench, *n)
				if err := chart.Render(os.Stdout); err != nil {
					return err
				}
				if htmlReport != nil {
					htmlReport.AddBarChart(chart)
				}
				h := experiments.ComputeHeadline(bench, results)
				headline := fmt.Sprintf("%s: best iterative %.0fs (%s b=%d), best recursive %.0fs (%s rec%d omp%d b=%d) → %.1f× speedup",
					bench, h.BestIterS, h.BestIter.Driver, h.BestIter.Block,
					h.BestRecS, h.BestRec.Driver, h.BestRec.RShared, h.BestRec.Threads, h.BestRec.Block,
					h.Speedup)
				fmt.Printf("\n%s\n\n", headline)
				if htmlReport != nil {
					htmlReport.AddText(headline)
				}
				verboseDump(results, *verbose)
			}
			return nil
		case "fig8":
			chart, results := experiments.Fig8(*n)
			if err := chart.Render(os.Stdout); err != nil {
				return err
			}
			if htmlReport != nil {
				htmlReport.AddBarChart(chart)
			}
			verboseDump(results, *verbose)
			return nil
		case "fig9":
			chart, results := experiments.Fig9()
			if err := chart.Render(os.Stdout); err != nil {
				return err
			}
			if htmlReport != nil {
				htmlReport.AddLineChart(chart)
			}
			verboseDump(results, *verbose)
			return nil
		case "headline":
			for _, bench := range []experiments.Benchmark{experiments.FW, experiments.GE} {
				_, results := experiments.Fig6(bench, *n)
				h := experiments.ComputeHeadline(bench, results)
				fmt.Printf("%s: iterative %.0fs → recursive %.0fs = %.1f× (paper: 2.1× FW, 5× GE)\n",
					bench, h.BestIterS, h.BestRecS, h.Speedup)
			}
			return nil
		case "ablations":
			s := experiments.Ablations(*n)
			for _, t := range s.Tables {
				if err := t.Render(os.Stdout); err != nil {
					return err
				}
				if htmlReport != nil {
					htmlReport.AddTable(t)
				}
				fmt.Println()
			}
			verboseDump(s.Results, *verbose)
			return nil
		case "explain":
			for _, bench := range []experiments.Benchmark{experiments.FW, experiments.GE} {
				for _, driver := range []core.DriverKind{core.IM, core.CB} {
					plan, err := core.Explain(*n, core.Config{
						Rule: bench.Rule(), BlockSize: 1024, Driver: driver,
					})
					if err != nil {
						return err
					}
					fmt.Printf("-- %s / %v --\n", bench, driver)
					if err := plan.Render(os.Stdout); err != nil {
						return err
					}
					fmt.Println()
				}
			}
			return nil
		case "apsp":
			// One observable FW-APSP run: the -trace/-metrics smoke test.
			cells := []struct {
				name string
				cell experiments.Cell
			}{
				{"IM rec16 omp16 b=1024", experiments.Cell{Bench: experiments.FW, N: *n, Driver: core.IM,
					Block: 1024, Recursive: true, RShared: 16, Threads: 16}},
				{"CB rec16 omp16 b=1024", experiments.Cell{Bench: experiments.FW, N: *n, Driver: core.CB,
					Block: 1024, Recursive: true, RShared: 16, Threads: 16}},
			}
			rows := make([]report.BreakdownRow, 0, len(cells))
			var cpRows []report.CriticalPathRow
			for _, c := range cells {
				r := experiments.Run(c.cell)
				if r.Err != nil {
					return r.Err
				}
				st := r.Stats
				fmt.Printf("%s: %.0fs (skew %.2f)\n", c.name, st.Time.Seconds(), st.MaxTaskSkew)
				rows = append(rows, report.BreakdownRow{
					Name:    c.name,
					Compute: st.ComputeTime, Shuffle: st.ShuffleTime,
					Broadcast: st.BroadcastTime, Overhead: st.OverheadTime,
					Recovery:     st.RecoveryTime,
					ShuffleBytes: st.ShuffleBytes, BroadcastBytes: st.BroadcastBytes,
					Skew: st.MaxTaskSkew,
				})
				if st.CritPath != nil {
					cpRows = append(cpRows, report.CriticalPathRow{Name: c.name, Path: *st.CritPath})
				}
			}
			t := report.NewBreakdownTable(
				fmt.Sprintf("FW-APSP phase breakdown (n=%d, critical path)", *n), rows)
			fmt.Println()
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			return renderCritPath(fmt.Sprintf("FW-APSP critical path (n=%d)", *n), cpRows)
		case "chaos":
			// FW-APSP under a seeded fault plan, per driver: modelled
			// recovery overhead vs the fault-free run, the fired fault /
			// recovery counters, and the phase breakdown with its
			// recovery column.
			cl := cluster.Skylake16()
			const chaosRacks = 4
			if *rackfails > 0 {
				cl = cl.WithRacks(chaosRacks)
			}
			detector := *gcpauses > 0 || *rackfails > 0
			const blk = 1024
			r := (*n + blk - 1) / blk
			plan := rdd.RandomFaultPlan(*seed, 4*r, cl.Nodes, *crashes, 2, 1)
			if *gcpauses > 0 {
				plan = plan.WithRandomGCPauses(*seed+1, 4*r, cl.Nodes, *gcpauses)
			}
			if *rackfails > 0 {
				plan = plan.WithRandomRackFailures(*seed+2, 4*r, chaosRacks, *rackfails)
			}
			fmt.Printf("chaos plan (seed %d): %d executor crashes, %d stragglers, %d disk losses, %d gc pauses, %d rack failures over %d planned stages\n",
				*seed, len(plan.Crashes), len(plan.Stragglers), len(plan.DiskLosses), len(plan.GCPauses), len(plan.RackFailures), 4*r)
			if detector {
				fmt.Printf("heartbeat failure detector: 2s lease, dead after 2 missed leases (4s detection latency)\n")
			}
			fmt.Println()
			rows := make([]report.BreakdownRow, 0, 4)
			var cpRows []report.CriticalPathRow
			for _, driver := range []core.DriverKind{core.IM, core.CB} {
				var cleanS float64
				for _, faulted := range []bool{false, true} {
					conf := rdd.Conf{Cluster: cl, Speculation: true, Observer: observer, KernelThreads: *kernelThreads}
					if detector {
						conf.HeartbeatInterval = 2 * simtime.Second
					}
					name := fmt.Sprintf("%v clean", driver)
					if faulted {
						conf.FaultPlan = plan
						name = fmt.Sprintf("%v chaos", driver)
					}
					ctx := rdd.NewContext(conf)
					bl := matrix.NewSymbolicBlocked(*n, blk)
					_, st, err := core.Run(ctx, bl, core.Config{
						Rule: semiring.NewFloydWarshall(), BlockSize: blk, Driver: driver,
					})
					if err != nil {
						return err
					}
					if faulted {
						rs := ctx.RecoveryStats()
						fmt.Printf("%s: %.0fs (clean %.0fs, overhead %.1f%%, recovery time %.0fs)\n",
							name, st.Time.Seconds(), cleanS, (st.Time.Seconds()/cleanS-1)*100, st.RecoveryTime.Seconds())
						fmt.Printf("  %d fetch failures → %d stage resubmits recomputing %d map partitions; "+
							"%d task retries, %d blacklist placements, %d speculative copies (%d wins)\n",
							rs.FetchFailures, rs.StageResubmits, rs.RecomputedMapPartitions,
							rs.TaskRetries, rs.BlacklistPlacements, rs.SpeculativeTasks, rs.SpeculationWins)
						if detector {
							fmt.Printf("  detector: %d suspicions (%d false), %d fenced zombie commits, "+
								"%d rack failures, %d throttled resubmits, %.0fs detection wait\n",
								rs.Suspicions, rs.FalseSuspicions, rs.FencedCommits,
								rs.RackFailures, rs.StormThrottledResubmits, st.DetectionTime.Seconds())
						}
					} else {
						cleanS = st.Time.Seconds()
					}
					rows = append(rows, report.BreakdownRow{
						Name:    name,
						Compute: st.ComputeTime, Shuffle: st.ShuffleTime,
						Broadcast: st.BroadcastTime, Overhead: st.OverheadTime,
						Recovery:     st.RecoveryTime,
						ShuffleBytes: st.ShuffleBytes, BroadcastBytes: st.BroadcastBytes,
						Skew: st.MaxTaskSkew,
					})
					if st.CritPath != nil {
						cpRows = append(cpRows, report.CriticalPathRow{Name: name, Path: *st.CritPath})
					}
				}
			}
			fmt.Println()
			t := report.NewBreakdownTable(
				fmt.Sprintf("FW-APSP recovery overhead (n=%d, seed %d)", *n, *seed), rows)
			if htmlReport != nil {
				htmlReport.AddTable(t)
			}
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			return renderCritPath(fmt.Sprintf("FW-APSP critical path (n=%d, seed %d)", *n, *seed), cpRows)
		case "durable":
			// An end-to-end durable run on the local cluster model: the
			// engine stages shuffle buckets and broadcast payloads through
			// the checksummed block store (spilling under -budget pressure)
			// and the driver persists a restartable checkpoint at every
			// boundary. -stop K kills the driver loop after K iterations;
			// `dpspark resume -dir` then completes the run bit-identically.
			if *dir == "" {
				return fmt.Errorf("durable: -dir is required")
			}
			rule, drv, err := durableSetup(*bench, *driverName)
			if err != nil {
				return err
			}
			ctx := rdd.NewContext(rdd.Conf{
				Cluster:       cluster.LocalN(4, 2),
				DurableDir:    *dir,
				MemoryBudget:  *budget,
				SpillCodec:    core.TileCodec{},
				KernelThreads: *kernelThreads,
				Observer:      observer,
			})
			in := durableInput(rule, *size, *seed)
			bl := matrix.Block(in, *block, rule.Pad(), rule.PadDiag())
			out, st, err := core.Run(ctx, bl, core.Config{
				Rule: rule, BlockSize: *block, Driver: drv,
				DurableDir: *dir, StopAfter: *stop,
				StopRequested: stopRequested,
			})
			if err != nil {
				return err
			}
			printDurableStats(ctx, st)
			if stopFlag.Load() {
				fmt.Printf("stop requested — checkpoint written at the stop boundary; complete the run with:\n  dpspark resume -dir %s\n", *dir)
				return nil
			}
			if *stop > 0 && *stop < bl.R {
				fmt.Printf("driver killed after %d of %d iterations — complete the run with:\n  dpspark resume -dir %s\n",
					*stop, bl.R, *dir)
				return nil
			}
			fmt.Printf("result checksum: %016x (n=%d b=%d %s %v)\n",
				denseChecksum(out.ToDense()), *size, *block, *bench, drv)
			return nil
		case "remote":
			// Restore-vs-recompute demo: the same mid-run executor crash
			// recovered twice — once with a healthy remote replica tier
			// (lost staged outputs re-install from intact replicas), once
			// under a full-run remote outage (degraded mode falls back to
			// partial map-recompute). The checksums must be identical;
			// only the recovery path and its cost differ.
			if *dir == "" {
				return fmt.Errorf("remote: -dir is required")
			}
			rule, drv, err := durableSetup(*bench, *driverName)
			if err != nil {
				return err
			}
			in := durableInput(rule, *size, *seed)
			r := (*size + *block - 1) / *block
			// Iteration 1's result stage (4k+3, k=1): freshly staged map
			// outputs are lost exactly when the reduce side fetches them.
			crash := rdd.ExecutorCrash{Stage: 7, Node: 1}
			runOnce := func(name string, outage bool) (uint64, error) {
				plan := &rdd.FaultPlan{Crashes: []rdd.ExecutorCrash{crash}}
				if outage {
					plan.RemoteOutages = []rdd.RemoteOutage{{From: 0, Dur: 4 * r}}
				}
				ctx := rdd.NewContext(rdd.Conf{
					Cluster:       cluster.LocalN(4, 2),
					DurableDir:    filepath.Join(*dir, name, "local"),
					RemoteDir:     filepath.Join(*dir, name, "remote"),
					MemoryBudget:  *budget,
					SpillCodec:    core.TileCodec{},
					Speculation:   true,
					FaultPlan:     plan,
					KernelThreads: *kernelThreads,
					Observer:      observer,
				})
				bl := matrix.Block(in, *block, rule.Pad(), rule.PadDiag())
				out, st, err := core.Run(ctx, bl, core.Config{
					Rule: rule, BlockSize: *block, Driver: drv,
				})
				if err != nil {
					return 0, err
				}
				rs := ctx.RecoveryStats()
				fmt.Printf("%-8s modelled %.0fs (recovery %.3fs); %d replicated, %d restored, %d recomputed blocks; %d remote retries, %d degraded windows\n",
					name+":", st.Time.Seconds(), st.RecoveryTime.Seconds(),
					st.ReplicatedBlocks, st.RestoredBlocks, st.RecomputedBlocks,
					rs.RemoteRetries, rs.DegradedWindows)
				return denseChecksum(out.ToDense()), nil
			}
			fmt.Printf("remote replica tier: %s %v n=%d b=%d, executor crash at stage %d\n\n",
				*bench, drv, *size, *block, crash.Stage)
			restored, err := runOnce("restore", false)
			if err != nil {
				return err
			}
			degraded, err := runOnce("degraded", true)
			if err != nil {
				return err
			}
			if restored != degraded {
				return fmt.Errorf("remote: recovery paths disagree: %016x vs %016x", restored, degraded)
			}
			fmt.Printf("\nresult checksum: %016x — identical through both recovery paths\n", restored)
			return nil
		case "resume":
			// Restart from the newest intact checkpoint under -dir: the
			// grid, iteration cursor and engine scheduler state are
			// restored, and the remaining iterations produce bits identical
			// to the uninterrupted run (compare the checksums).
			if *dir == "" {
				return fmt.Errorf("resume: -dir is required")
			}
			meta, bl, err := core.LoadCheckpoint(*dir)
			if err != nil {
				return err
			}
			rule, drv, err := durableSetup(ruleFlagName(meta.Rule), meta.Driver)
			if err != nil {
				return err
			}
			fmt.Printf("resuming %s %s from checkpoint %d/%d (n=%d b=%d)\n",
				meta.Rule, meta.Driver, meta.Iteration, meta.R, meta.N, meta.B)
			ctx := rdd.NewContext(rdd.Conf{
				Cluster:       cluster.LocalN(4, 2),
				DurableDir:    *dir,
				MemoryBudget:  *budget,
				SpillCodec:    core.TileCodec{},
				Restore:       &meta.Engine,
				KernelThreads: *kernelThreads,
				Observer:      observer,
			})
			out, st, err := core.Resume(ctx, meta, bl, core.Config{
				Rule: rule, BlockSize: meta.B, Driver: drv,
				Partitions: meta.Partitions, CheckpointEvery: meta.CheckpointEvery,
				DurableDir:    *dir,
				StopRequested: stopRequested,
			})
			if err != nil {
				return err
			}
			printDurableStats(ctx, st)
			if stopFlag.Load() {
				fmt.Printf("stop requested — checkpoint written at the stop boundary; run `dpspark resume -dir %s` again to finish\n", *dir)
				return nil
			}
			fmt.Printf("result checksum: %016x (n=%d b=%d %s %v)\n",
				denseChecksum(out.ToDense()), meta.N, meta.B, ruleFlagName(meta.Rule), drv)
			return nil
		case "kernels":
			// Measured single-tile scaling of the iterative kernels on THIS
			// machine (real time, not the cluster model): the scaling curve
			// per tile size, the serial↔parallel crossover and the
			// suggested cores×threads split for -kernel-threads tuning.
			cores := runtime.NumCPU()
			target := *kernelThreads
			if target <= 1 {
				target = 4
			}
			widths := []int{1, 2, 4, 8}
			if !containsInt(widths, target) {
				widths = append(widths, target)
				sort.Ints(widths)
			}
			sizes := []int{64, 128, 256, 512}
			const reps = 3
			fmt.Printf("single-tile kernel scaling on this machine (%d cores, best of %d reps)\n\n", cores, reps)
			for _, bench := range []string{"fw", "ge"} {
				rule, _, err := durableSetup(bench, "im")
				if err != nil {
					return err
				}
				fmt.Printf("-- %s (%s) --\n", bench, rule.Name())
				var atSize *autotune.KernelProfile
				for _, b := range sizes {
					prof := autotune.MeasureKernelScaling(rule, b, widths, reps)
					fmt.Printf("  %-40s best t%d (speedup %.2f× at t%d)\n",
						prof.String(), prof.BestThreads(), prof.Speedup(target), target)
					if b == sizes[len(sizes)-1] {
						p := prof
						atSize = &p
					}
				}
				cross := autotune.Crossover(rule, target, sizes, reps)
				if cross == 0 {
					fmt.Printf("  crossover at t%d: none — parallel kernels never beat serial here, keep -kernel-threads 1\n", target)
				} else {
					fmt.Printf("  crossover at t%d: b=%d — tiles this size and up gain from -kernel-threads %d\n", target, cross, target)
				}
				ec, kt := autotune.SplitCoresThreads(cores, *atSize)
				fmt.Printf("  suggested split of %d cores at b=%d: executor-cores=%d × kernel-threads=%d\n\n",
					cores, atSize.B, ec, kt)
			}
			return nil
		case "sweep":
			cl := cluster.Skylake16()
			outs, best, err := autotune.Search(cl, semiring.NewFloydWarshall(), *n, autotune.DefaultSpace(cl))
			if err != nil {
				return err
			}
			fmt.Printf("autotune sweep over %d candidates (FW-APSP, n=%d, %s)\n", len(outs), *n, cl)
			top := outs
			if len(top) > 10 {
				top = top[:10]
			}
			for i, o := range top {
				note := ""
				if o.Err != nil {
					note = " [" + o.Err.Error() + "]"
				} else if o.TimedOut {
					note = " [timeout]"
				}
				fmt.Printf("%2d. %-40s %8.0fs%s\n", i+1, o.Candidate, o.Time.Seconds(), note)
			}
			fmt.Printf("best: %s (%.0fs)\n", best.Candidate, best.Time.Seconds())
			return nil
		case "all":
			for _, sub := range []string{"table1", "table2", "fig6", "fig8", "fig9", "ablations"} {
				fmt.Printf("==== %s ====\n", sub)
				if err := run(sub); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		case "serve":
			// Long-lived multi-tenant job service: many HTTP clients submit
			// DP jobs onto one shared simulated cluster. Admission control
			// bounds the queue (429 + Retry-After past it), per-tenant
			// quotas stop any one tenant from starving the rest, and
			// SIGTERM drains gracefully: stop admitting, give in-flight
			// jobs -drain-grace to finish, then cancel cooperatively.
			if *listen == "" {
				return fmt.Errorf("serve: -listen is required (e.g. -listen :8080)")
			}
			srv, err := serve.New(serve.Config{
				KernelThreads:   *kernelThreads,
				MaxQueue:        *maxQueue,
				MaxRunning:      *maxJobs,
				TenantRunning:   *tenantRunning,
				TenantPending:   *tenantPending,
				DrainGrace:      *drainGrace,
				Observer:        observer,
				JournalDir:      *journalDir,
				MaxAttempts:     *maxAttempts,
				PoisonThreshold: *poison,
			})
			if err != nil {
				return err
			}
			// A serve-level panic or fatal exit dumps the flight-recorder
			// ring next to the journal — the post-mortem for crashes the
			// journal alone cannot explain. (Per-job quarantine dumps are
			// stamped with their job ID by the server itself.)
			defer func() {
				if p := recover(); p != nil {
					if path := srv.DumpFlight("panic"); path != "" {
						fmt.Fprintf(os.Stderr, "dpspark: panic — flight ring dumped to %s\n", path)
					}
					panic(p)
				}
			}()
			fatal := func(err error) error {
				if err != nil && *journalDir != "" {
					if path := srv.DumpFlight("fatal"); path != "" {
						fmt.Fprintf(os.Stderr, "dpspark: fatal — flight ring dumped to %s\n", path)
					}
				}
				return err
			}
			// Bind before replaying: /healthz answers (liveness) while
			// /readyz stays 503 until Recover finishes.
			h, err := srv.ListenAndServe(*listen)
			if err != nil {
				return fatal(err)
			}
			rs, err := srv.Recover()
			if err != nil {
				_ = h.Close()
				return fatal(fmt.Errorf("serve: journal replay: %w", err))
			}
			if *journalDir != "" {
				fmt.Printf("journal %s replayed: %d terminal, %d requeued, %d resumed, %d quarantined (%d torn bytes dropped)\n",
					*journalDir, rs.Terminal, rs.Requeued, rs.Resumed, rs.Quarantined, rs.DroppedBytes)
			}
			fmt.Printf("dpspark job service on http://%s (POST /jobs, GET /jobs, GET /jobs/{id}/result, POST /jobs/{id}/cancel, /metrics, /events, /healthz, /readyz)\n", h.Addr())
			fmt.Printf("limits: %d running, %d queued, drain grace %s — SIGTERM drains gracefully\n",
				*maxJobs, *maxQueue, *drainGrace)
			ch := make(chan os.Signal, 2)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			sig := <-ch
			fmt.Fprintf(os.Stderr, "dpspark: %v — draining (no new admissions; in-flight jobs get %s)\n", sig, *drainGrace)
			go func() {
				<-ch
				fmt.Fprintln(os.Stderr, "dpspark: second signal — forced exit")
				os.Exit(130)
			}()
			srv.Drain()
			_ = h.Close()
			var done, failed, cancelled, quarantined int
			for _, j := range srv.Jobs() {
				switch j.State {
				case serve.StateDone:
					done++
				case serve.StateFailed:
					failed++
				case serve.StateCancelled:
					cancelled++
				case serve.StateQuarantined:
					quarantined++
				}
			}
			fmt.Printf("drained: %d done, %d failed, %d cancelled, %d quarantined\n", done, failed, cancelled, quarantined)
			return nil
		default:
			usage()
			return fmt.Errorf("unknown command %q", name)
		}
	}

	if err := run(cmd); err != nil {
		fmt.Fprintln(os.Stderr, "dpspark:", err)
		// A failed run still dumps its flight tail: the last-N events are
		// the post-mortem the recorder exists for.
		if *flightOut != "" {
			if ferr := writeFlight(observer, *flightOut); ferr == nil {
				fmt.Fprintf(os.Stderr, "dpspark: flight-recorder events written to %s\n", *flightOut)
			}
		}
		os.Exit(1)
	}
	if *flightOut != "" {
		if err := writeFlight(observer, *flightOut); err != nil {
			fmt.Fprintln(os.Stderr, "dpspark:", err)
			os.Exit(1)
		}
		fmt.Printf("flight-recorder events (%d held, %d dropped) written to %s\n",
			observer.Flight().Len(), observer.Flight().Dropped(), *flightOut)
	}
	if err := exportObservability(observer, *traceOut, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "dpspark:", err)
		os.Exit(1)
	}
	if htmlReport != nil {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpspark:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := htmlReport.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, "dpspark:", err)
			os.Exit(1)
		}
		fmt.Printf("HTML report written to %s\n", *htmlOut)
	}
}

// htmlReport, when non-nil, collects everything rendered for -html.
var htmlReport *report.HTMLReport

// renderCritPath renders the critical-path table when -critpath
// collected rows (no-op otherwise).
func renderCritPath(title string, rows []report.CriticalPathRow) error {
	if len(rows) == 0 {
		return nil
	}
	t := report.NewCriticalPathTable(title, rows)
	if htmlReport != nil {
		htmlReport.AddTable(t)
	}
	fmt.Println()
	return t.Render(os.Stdout)
}

// stopFlag is set by the first SIGINT/SIGTERM. The durable and resume
// commands poll it through core.Config.StopRequested, which also forces
// a checkpoint at the stop boundary, so a signalled run is restartable.
var stopFlag atomic.Bool

// stopRequested adapts stopFlag to core.Config.StopRequested.
func stopRequested() bool { return stopFlag.Load() }

// handleSignals makes batch commands stop gracefully. When cooperative,
// the first SIGINT/SIGTERM only raises stopFlag — the driver loop
// checkpoints and returns at the next iteration boundary and the normal
// exit path (flight dump, trace/metrics export) still runs; the second
// signal gives up waiting. Non-cooperative commands have no boundary to
// stop at, so the first signal already dumps the flight ring and exits.
func handleSignals(observer *obs.Observer, flightOut string, cooperative bool) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		if cooperative {
			stopFlag.Store(true)
			fmt.Fprintf(os.Stderr, "\ndpspark: %v — checkpointing and stopping at the next iteration boundary (repeat to force quit)\n", sig)
			sig = <-ch
		}
		fmt.Fprintf(os.Stderr, "\ndpspark: %v — exiting\n", sig)
		if flightOut != "" {
			if err := writeFlight(observer, flightOut); err == nil {
				fmt.Fprintf(os.Stderr, "dpspark: flight-recorder events written to %s\n", flightOut)
			}
		}
		os.Exit(130)
	}()
}

// writeFlight dumps the observer's flight-recorder ring as JSON lines.
func writeFlight(o *obs.Observer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.Flight().WriteJSONL(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// durableSetup resolves the durable/resume commands' -bench and -driver
// selectors (meta.Rule / meta.Driver names are accepted too).
func durableSetup(bench, driver string) (semiring.Rule, core.DriverKind, error) {
	var rule semiring.Rule
	switch strings.ToLower(bench) {
	case "fw", "gep-min-plus":
		rule = semiring.NewFloydWarshall()
	case "ge", "gaussian-elim":
		rule = semiring.NewGaussian()
	default:
		return nil, core.IM, fmt.Errorf("unknown -bench %q (want fw or ge)", bench)
	}
	switch strings.ToLower(driver) {
	case "im":
		return rule, core.IM, nil
	case "cb":
		return rule, core.CB, nil
	default:
		return nil, core.IM, fmt.Errorf("unknown -driver %q (want im or cb)", driver)
	}
}

// containsInt reports whether xs contains v.
func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// ruleFlagName maps a checkpoint's rule name back to the -bench flag.
func ruleFlagName(ruleName string) string {
	if ruleName == semiring.NewGaussian().Name() {
		return "ge"
	}
	return "fw"
}

// durableInput deterministically generates the durable demo's input from
// the seed — both the killed and the uninterrupted invocation see the
// same matrix, so their checksums are comparable.
func durableInput(rule semiring.Rule, n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	d := matrix.NewDense(n)
	if _, ok := rule.(semiring.GaussianRule); ok {
		d.FillDiagonallyDominant(rng)
		return d
	}
	d.Fill(func(i, j int) float64 {
		switch {
		case i == j:
			return 0
		case rng.Float64() < 0.3:
			return math.Inf(1)
		default:
			return 1 + math.Floor(rng.Float64()*9)
		}
	})
	return d
}

// denseChecksum fingerprints a result matrix bit-exactly (FNV-1a over
// the raw float bits — NaN/Inf/signed-zero safe).
func denseChecksum(d *matrix.Dense) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range d.Data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

// printDurableStats reports the run's modelled time and store activity.
func printDurableStats(ctx *rdd.Context, st *core.Stats) {
	ss := ctx.StoreStats()
	fmt.Printf("modelled %.0fs over %d iterations; store: %d mem / %d disk blocks, %d spilled (%d evicted), %d corrupt detected, spill wall %v\n",
		st.Time.Seconds(), st.Iterations, ss.MemBlocks, ss.DiskBlocks, ss.Spilled, ss.Evicted, ss.CorruptDetected,
		st.SpillWall.Round(time.Millisecond))
}

// exportObservability writes the collected trace and metrics files.
func exportObservability(o *obs.Observer, tracePath, metricsPath string) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := o.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("Chrome trace (%d spans) written to %s\n", o.SpanCount(), tracePath)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := o.Metrics().WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics written to %s\n", metricsPath)
	}
	return nil
}

func emitTable(t *report.Table, results []experiments.Result, csvDir, csvName string, verbose bool) error {
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if htmlReport != nil {
		htmlReport.AddTable(t)
	}
	verboseDump(results, verbose)
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(csvDir, csvName))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}

func verboseDump(results []experiments.Result, verbose bool) {
	if !verbose {
		return
	}
	for _, r := range results {
		kernel := "iter"
		if r.Recursive {
			kernel = fmt.Sprintf("rec%d/omp%d", r.RShared, r.Threads)
		}
		fmt.Printf("  %-8s %-3v b=%-5d %-12s %8.0fs  %s\n",
			r.Bench, r.Driver, r.Block, kernel, r.Time.Seconds(), r.BreakdownString())
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, strings.TrimSpace(`
usage: dpspark <command> [flags]

commands:
  table1      Table I   — GE, CB, 4-way recursive: executor-cores × OMP grid
  table2      Table II  — FW-APSP, IM, 16-way recursive: same grid
  fig6        Fig. 6    — implementation × kernel × block-size sweeps
  fig8        Fig. 8    — FW-APSP portability across both clusters
  fig9        Fig. 9    — weak scaling at fixed work per node
  headline    best iterative vs best recursive per benchmark
  ablations   partitioner / partitions / r_shared / baseline comparisons
  explain     per-iteration plan: kernel counts, copies, moved bytes
  apsp        one observable FW-APSP run with its phase breakdown
  chaos       FW-APSP under a seeded fault plan: recovery overhead per
              driver; -gcpause/-rackfail add false-suspicion and
              correlated fault-domain events under a heartbeat detector
  durable     real run through the checksummed block store with driver
              checkpoints; -stop K kills the driver after K iterations
  remote      restore-vs-recompute demo: one crash recovered from remote
              replicas, then again under a remote outage (degraded mode)
  resume      restart from the newest intact checkpoint under -dir,
              bit-identical to the uninterrupted run
  kernels     measured single-tile kernel scaling on this machine:
              per-size curves, serial↔parallel crossover, cores×threads split
  sweep       autotune search over the full tuning space
  serve       long-lived multi-tenant job service: HTTP job submission with
              admission control, per-tenant quotas + fault isolation on one
              shared cluster, graceful drain on SIGTERM; -journal DIR makes
              it crash-safe — every lifecycle transition is journaled, jobs
              checkpoint durably, and a killed server restarts with results
              intact, the queue rebuilt and mid-run jobs resumed
  all         tables, figures and ablations

flags: -n <size> (default 32768), -csv <dir>, -v,
       -seed <n> / -crashes <n> / -gcpause <n> / -rackfail <n> (chaos fault plan),
       -dir <dir> / -bench fw|ge / -driver im|cb / -budget <bytes> /
       -stop <k> / -size <n> / -block <b> (durable + resume),
       -kernel-threads <t> (row-band parallel kernels in real-mode runs;
                            also the target width of the kernels report),
       -trace <file> (Chrome trace-event JSON, load in Perfetto),
       -metrics <file> (Prometheus text dump),
       -critpath (per-run critical-path table + gauges),
       -listen <addr> (live /metrics /events /debug/critpath /healthz;
                       the serve command's job API binds here),
       -flight <file> (flight-recorder event tail as JSON lines),
       -max-queue / -max-jobs / -tenant-running / -tenant-pending /
       -drain-grace <dur> (serve admission + drain limits),
       -journal <dir> / -max-attempts <n> / -poison-threshold <n>
       (serve crash safety: job journal + checkpoint resume, bounded
        retries, poison-job quarantine)

signals: SIGINT/SIGTERM stop batch commands gracefully — durable and
resume checkpoint at the next iteration boundary first; a second signal
(or the first, for commands with no driver loop) dumps the -flight ring
and exits. serve drains: stops admitting, then cancels after -drain-grace.`))
}
