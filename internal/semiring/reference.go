package semiring

// RunGEP executes the reference GEP triple loop of Fig. 1 in place on a
// row-major n×n table. It is the semantic ground truth that every blocked,
// recursive and distributed implementation in this repository must match,
// and is used pervasively by tests. O(n³) — intended for small n.
func RunGEP(c []float64, n int, rule Rule) {
	if len(c) != n*n {
		panic("semiring: RunGEP table length != n*n")
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !rule.Sigma(i, j, k, n) {
					continue
				}
				c[i*n+j] = rule.Apply(c[i*n+j], c[i*n+k], c[k*n+j], c[k*n+k])
			}
		}
	}
}

// FloydWarshallReference runs the classic three-loop FW-APSP (Fig. 5) in
// place on a row-major n×n distance matrix. Equivalent to RunGEP with the
// min-plus rule but written independently so tests compare two separately
// derived implementations.
func FloydWarshallReference(d []float64, n int) {
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i*n+k]
			for j := 0; j < n; j++ {
				if t := dik + d[k*n+j]; t < d[i*n+j] {
					d[i*n+j] = t
				}
			}
		}
	}
}

// GaussianEliminationReference runs the classic forward elimination of
// Fig. 2 in place on a row-major n×n augmented matrix (no pivoting).
// Written independently of RunGEP for cross-validation in tests.
func GaussianEliminationReference(x []float64, n int) {
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			f := x[i*n+k] / x[k*n+k]
			for j := k + 1; j < n; j++ {
				x[i*n+j] -= f * x[k*n+j]
			}
		}
	}
}
