package semiring

import (
	"math"
	"math/rand"
	"testing"
)

func randomDistances(n int, rng *rand.Rand) []float64 {
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				d[i*n+j] = 0
			case rng.Float64() < 0.4:
				d[i*n+j] = math.Inf(1)
			default:
				d[i*n+j] = 1 + math.Floor(rng.Float64()*20)
			}
		}
	}
	return d
}

func TestRunGEPMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 5, 8, 17, 33} {
		a := randomDistances(n, rng)
		b := append([]float64(nil), a...)
		RunGEP(a, n, NewFloydWarshall())
		FloydWarshallReference(b, n)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: mismatch at %d: GEP=%v FW=%v", n, i, a[i], b[i])
			}
		}
	}
}

func TestRunGEPMatchesGaussianElimination(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 2, 3, 5, 8, 16, 31} {
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				v := 1 + rng.Float64()
				a[i*n+j] = v
				sum += v
			}
			a[i*n+i] = sum + 1 // diagonally dominant
		}
		b := append([]float64(nil), a...)
		RunGEP(a, n, NewGaussian())
		GaussianEliminationReference(b, n)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				t.Fatalf("n=%d: mismatch at %d: GEP=%v ref=%v", n, i, a[i], b[i])
			}
		}
	}
}

func TestFloydWarshallTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := 24
	d := randomDistances(n, rng)
	RunGEP(d, n, NewFloydWarshall())
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if d[i*n+j] > d[i*n+k]+d[k*n+j]+1e-12 {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestFloydWarshallIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n := 20
	d := randomDistances(n, rng)
	RunGEP(d, n, NewFloydWarshall())
	once := append([]float64(nil), d...)
	RunGEP(d, n, NewFloydWarshall())
	for i := range d {
		if d[i] != once[i] {
			t.Fatalf("FW not idempotent at %d: %v vs %v", i, d[i], once[i])
		}
	}
}

func TestTransitiveClosureViaGEP(t *testing.T) {
	// A tiny chain 0→1→2 plus an isolated vertex 3.
	n := 4
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		c[i*n+i] = 1
	}
	c[0*n+1] = 1
	c[1*n+2] = 1
	RunGEP(c, n, NewTransitiveClosure())
	want := map[[2]int]float64{
		{0, 1}: 1, {1, 2}: 1, {0, 2}: 1, // transitivity
		{2, 0}: 0, {0, 3}: 0, {3, 0}: 0,
	}
	for ij, w := range want {
		if got := c[ij[0]*n+ij[1]]; got != w {
			t.Fatalf("closure[%d,%d] = %v, want %v", ij[0], ij[1], got, w)
		}
	}
}

func TestRunGEPPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched table length")
		}
	}()
	RunGEP(make([]float64, 5), 2, NewFloydWarshall())
}
