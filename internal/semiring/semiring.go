// Package semiring defines the algebraic machinery behind the Gaussian
// Elimination Paradigm (GEP) of Chowdhury & Ramachandran, which the paper
// uses as the common form of its dynamic programs (Fig. 1):
//
//	for k, i, j:  if (i,j,k) ∈ Σ_G:  c[i,j] = f(c[i,j], c[i,k], c[k,j], c[k,k])
//
// Two ingredients are captured here:
//
//   - Semiring: a closed semiring (S, ⊕, ⊙, 0̄, 1̄) as used by path problems
//     (Aho et al.); Floyd-Warshall APSP is GEP over the tropical semiring
//     (ℝ, min, +, +∞, 0), transitive closure over the boolean semiring.
//   - Rule: a GEP update rule — the function f together with the Σ_G
//     iteration-space shape, the virtual-padding elements, and per-kernel
//     loop bounds for the blocked/recursive algorithms (Fig. 4).
//
// Values are float64 throughout; boolean semirings encode false/true as 0/1.
package semiring

import "math"

// Semiring is a closed semiring over float64 values.
type Semiring struct {
	// SName is the semiring's display name.
	SName string
	// Plus is the additive operator ⊕ (e.g. min for tropical).
	Plus func(a, b float64) float64
	// Times is the multiplicative operator ⊙ (e.g. + for tropical).
	Times func(a, b float64) float64
	// Zero is the additive identity 0̄ and multiplicative annihilator.
	Zero float64
	// One is the multiplicative identity 1̄.
	One float64
}

// Name returns the semiring's display name.
func (s Semiring) Name() string { return s.SName }

// MinPlus returns the tropical semiring (ℝ∪{+∞}, min, +, +∞, 0) that
// Floyd-Warshall all-pairs shortest paths computes over.
func MinPlus() Semiring {
	return Semiring{
		SName: "min-plus",
		Plus:  math.Min,
		Times: func(a, b float64) float64 { return a + b },
		Zero:  math.Inf(1),
		One:   0,
	}
}

// MaxMin returns the bottleneck semiring (ℝ∪{±∞}, max, min, -∞, +∞) used
// for maximum-capacity (widest) paths.
func MaxMin() Semiring {
	return Semiring{
		SName: "max-min",
		Plus:  math.Max,
		Times: math.Min,
		Zero:  math.Inf(-1),
		One:   math.Inf(1),
	}
}

// Boolean returns the boolean semiring ({0,1}, ∨, ∧, 0, 1) encoded on
// float64; GEP over it computes transitive closure (Warshall).
func Boolean() Semiring {
	return Semiring{
		SName: "boolean",
		Plus:  math.Max,
		Times: math.Min,
		Zero:  0,
		One:   1,
	}
}

// MaxPlus returns the semiring (ℝ∪{-∞}, max, +, -∞, 0) used for
// longest/critical-path style recurrences on DAG-like inputs.
func MaxPlus() Semiring {
	return Semiring{
		SName: "max-plus",
		Plus:  math.Max,
		Times: func(a, b float64) float64 { return a + b },
		Zero:  math.Inf(-1),
		One:   0,
	}
}

// Reliability returns the Viterbi semiring ([0,1], max, ×, 0, 1): GEP
// over it finds the most reliable path when edges carry independent
// success probabilities (wireless-sensor routing, one of the FW
// application areas the paper cites).
func Reliability() Semiring {
	return Semiring{
		SName: "reliability",
		Plus:  math.Max,
		Times: func(a, b float64) float64 { return a * b },
		Zero:  0,
		One:   1,
	}
}
