package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func semirings() []Semiring {
	return []Semiring{MinPlus(), MaxMin(), Boolean(), MaxPlus(), Reliability()}
}

// sampleFor draws a random element valid for the given semiring.
func sampleFor(s Semiring, rng *rand.Rand) float64 {
	switch s.Name() {
	case "boolean":
		return float64(rng.Intn(2))
	case "reliability":
		// Probabilities (≥ 0 for distributivity of × over max), chosen
		// as powers of two so products stay exact in floating point.
		return []float64{0, 0.25, 0.5, 1}[rng.Intn(4)]
	}
	switch rng.Intn(8) {
	case 0:
		return s.Zero
	case 1:
		return s.One
	default:
		return math.Floor(rng.Float64()*200) - 100
	}
}

func eq(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func TestSemiringPlusAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range semirings() {
		for trial := 0; trial < 500; trial++ {
			a, b, c := sampleFor(s, rng), sampleFor(s, rng), sampleFor(s, rng)
			if !eq(s.Plus(s.Plus(a, b), c), s.Plus(a, s.Plus(b, c))) {
				t.Fatalf("%s: ⊕ not associative at (%v,%v,%v)", s.Name(), a, b, c)
			}
			if !eq(s.Plus(a, b), s.Plus(b, a)) {
				t.Fatalf("%s: ⊕ not commutative at (%v,%v)", s.Name(), a, b)
			}
		}
	}
}

func TestSemiringTimesAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range semirings() {
		for trial := 0; trial < 500; trial++ {
			a, b, c := sampleFor(s, rng), sampleFor(s, rng), sampleFor(s, rng)
			if !eq(s.Times(s.Times(a, b), c), s.Times(a, s.Times(b, c))) {
				t.Fatalf("%s: ⊙ not associative at (%v,%v,%v)", s.Name(), a, b, c)
			}
		}
	}
}

func TestSemiringIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range semirings() {
		for trial := 0; trial < 500; trial++ {
			a := sampleFor(s, rng)
			if !eq(s.Plus(a, s.Zero), a) {
				t.Fatalf("%s: 0̄ is not ⊕-identity for %v", s.Name(), a)
			}
			if !eq(s.Times(a, s.One), a) || !eq(s.Times(s.One, a), a) {
				t.Fatalf("%s: 1̄ is not ⊙-identity for %v", s.Name(), a)
			}
		}
	}
}

func TestSemiringAnnihilator(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, s := range semirings() {
		// min-plus: +∞ + (-∞) is NaN-adjacent only with -∞ inputs, which
		// sampleFor never produces for these semirings' valid domains.
		for trial := 0; trial < 500; trial++ {
			a := sampleFor(s, rng)
			if !eq(s.Times(a, s.Zero), s.Zero) || !eq(s.Times(s.Zero, a), s.Zero) {
				t.Fatalf("%s: 0̄ does not annihilate %v", s.Name(), a)
			}
		}
	}
}

func TestSemiringDistributivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, s := range semirings() {
		for trial := 0; trial < 500; trial++ {
			a, b, c := sampleFor(s, rng), sampleFor(s, rng), sampleFor(s, rng)
			left := s.Times(a, s.Plus(b, c))
			right := s.Plus(s.Times(a, b), s.Times(a, c))
			if !eq(left, right) {
				t.Fatalf("%s: ⊙ does not distribute over ⊕ at (%v,%v,%v): %v != %v",
					s.Name(), a, b, c, left, right)
			}
		}
	}
}

func TestSemiringPlusIdempotent(t *testing.T) {
	// All provided semirings are idempotent (path semirings); idempotence
	// is what makes re-applying GEP updates harmless, which tests rely on.
	if err := quick.Check(func(x float64) bool {
		for _, s := range semirings() {
			v := x
			if s.Name() == "boolean" {
				v = float64(int(math.Abs(x)) % 2)
			}
			if !eq(s.Plus(v, v), v) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloydWarshallRuleBasics(t *testing.T) {
	r := NewFloydWarshall()
	if got := r.Apply(5, 2, 2, 123); got != 4 {
		t.Fatalf("Apply(5,2,2,·) = %v, want 4", got)
	}
	if got := r.Apply(3, 2, 2, 123); got != 3 {
		t.Fatalf("Apply(3,2,2,·) = %v, want 3", got)
	}
	if !math.IsInf(r.Pad(), 1) {
		t.Fatalf("Pad = %v, want +Inf", r.Pad())
	}
	if r.PadDiag() != 0 {
		t.Fatalf("PadDiag = %v, want 0", r.PadDiag())
	}
	for _, kind := range []Kind{KindA, KindB, KindC, KindD} {
		if r.ILow(kind, 3) != 0 || r.JLow(kind, 3) != 0 {
			t.Fatalf("FW rule must have zero loop lower bounds for kernel %v", kind)
		}
	}
}

func TestGaussianRuleBasics(t *testing.T) {
	r := NewGaussian()
	if got := r.Apply(10, 4, 6, 2); got != 10-4*6/2.0 {
		t.Fatalf("Apply = %v", got)
	}
	if r.Pad() != 0 || r.PadDiag() != 1 {
		t.Fatalf("padding = (%v,%v), want (0,1)", r.Pad(), r.PadDiag())
	}
	// Padded update must be a no-op: u or v padding (0), w diag padding (1).
	if got := r.Apply(7, 0, 3, 1); got != 7 {
		t.Fatalf("padded update changed value: %v", got)
	}
	cases := []struct {
		kind       Kind
		iLow, jLow int
	}{
		{KindA, 4, 4},
		{KindB, 4, 0},
		{KindC, 0, 4},
		{KindD, 0, 0},
	}
	for _, c := range cases {
		if r.ILow(c.kind, 3) != c.iLow || r.JLow(c.kind, 3) != c.jLow {
			t.Fatalf("kernel %v: bounds (%d,%d), want (%d,%d)", c.kind,
				r.ILow(c.kind, 3), r.JLow(c.kind, 3), c.iLow, c.jLow)
		}
	}
}

func TestGaussianSigmaMatchesLoopBounds(t *testing.T) {
	r := NewGaussian()
	n := 7
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := i > k && j > k
				if got := r.Sigma(i, j, k, n); got != want {
					t.Fatalf("Sigma(%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{KindA: "A", KindB: "B", KindC: "C", KindD: "D", Kind(9): "Kind(9)"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
