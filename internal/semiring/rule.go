package semiring

import "fmt"

// Kind identifies one of the four GEP kernel functions of the r-way
// recursive divide-&-conquer algorithm (Fig. 4 of the paper). In iteration
// k of the top-level algorithm:
//
//	A updates the pivot tile (k,k) using only itself;
//	B updates row-panel tiles (k,j) using the pivot tile;
//	C updates column-panel tiles (i,k) using the pivot tile;
//	D updates interior tiles (i,j) using tiles (i,k), (k,j) and (k,k).
type Kind int

// Kernel kinds.
const (
	KindA Kind = iota
	KindB
	KindC
	KindD
)

// String returns the single-letter kernel name.
func (k Kind) String() string {
	switch k {
	case KindA:
		return "A"
	case KindB:
		return "B"
	case KindC:
		return "C"
	case KindD:
		return "D"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Rule is a GEP update rule: the cell update f plus the shape of the
// iteration space Σ_G, expressed both globally (Sigma, for the reference
// Fig. 1 triple loop) and as per-kernel local loop bounds (ILow/JLow, for
// the blocked and recursive kernels).
//
// Loop-bound semantics: inside a kernel of the given Kind processing a
// b×b tile, with the local pivot index k, the update runs over local rows
// i ∈ [ILow(kind,k), b) and local columns j ∈ [JLow(kind,k), b). For
// Floyd-Warshall all bounds are 0; for Gaussian elimination the bounds
// encode the global constraints i > k and j > k, which fall inside the
// pivot tile's row/column panels only.
type Rule interface {
	// Name identifies the rule, e.g. "floyd-warshall" or "gaussian-elim".
	Name() string
	// Apply computes f(x, u, v, w) where, in global terms,
	// x = c[i,j], u = c[i,k], v = c[k,j], w = c[k,k].
	Apply(x, u, v, w float64) float64
	// Sigma reports whether (i,j,k) ∈ Σ_G for an n×n problem. It defines
	// the reference semantics every blocked implementation must match.
	Sigma(i, j, k, n int) bool
	// ILow returns the first local row updated by a kernel of the given
	// kind at local pivot k.
	ILow(kind Kind, k int) int
	// JLow returns the first local column updated by a kernel of the
	// given kind at local pivot k.
	JLow(kind Kind, k int) int
	// UsesPivot reports whether f reads its fourth argument w = c[k,k].
	// Semiring rules (x ⊕ u⊙v) do not, so their D kernels need no copy
	// of the pivot tile — the paper's Fig. 7: FW-APSP has lighter
	// kernel dependencies than GE, which divides by the pivot.
	UsesPivot() bool
	// Restricted returns the non-pivot tile indices that participate in
	// panel (B/C) and interior (D) updates at iteration k of an r-way
	// decomposition. For Gaussian elimination only later tiles take part
	// (k+1..r-1: earlier panels are already eliminated); for semiring GEP
	// every tile but the pivot does. The same ranges drive the recursive
	// kernels' sub-calls (Fig. 4) and the Spark drivers' FilterB/C/D.
	Restricted(k, r int) []int
	// Pad is the off-diagonal virtual-padding element: padded cells must
	// never change the result (paper §IV: "virtual padding").
	Pad() float64
	// PadDiag is the diagonal virtual-padding element (it must make the
	// update a no-op and, for division-based rules, be safe as a pivot).
	PadDiag() float64
}

// SemiringRule is the GEP rule x ⊕ (u ⊙ v) over a closed semiring; the
// pivot value w is unused. With MinPlus it is exactly the Floyd-Warshall
// recurrence d[i,j] = d[i,j] ⊕ (d[i,k] ⊙ d[k,j]); with Boolean it is
// Warshall's transitive closure. Σ_G is the full cube.
type SemiringRule struct {
	S Semiring
}

// NewFloydWarshall returns the GEP rule for FW-APSP over min-plus.
func NewFloydWarshall() SemiringRule { return SemiringRule{S: MinPlus()} }

// NewTransitiveClosure returns the GEP rule for Warshall's transitive
// closure over the boolean semiring.
func NewTransitiveClosure() SemiringRule { return SemiringRule{S: Boolean()} }

// Name implements Rule.
func (r SemiringRule) Name() string { return "gep-" + r.S.Name() }

// Apply implements Rule: x ⊕ (u ⊙ v).
func (r SemiringRule) Apply(x, u, v, _ float64) float64 {
	return r.S.Plus(x, r.S.Times(u, v))
}

// Sigma implements Rule: the full i,j,k cube.
func (r SemiringRule) Sigma(i, j, k, n int) bool {
	return i >= 0 && i < n && j >= 0 && j < n && k >= 0 && k < n
}

// ILow implements Rule; semiring GEP updates every row.
func (r SemiringRule) ILow(Kind, int) int { return 0 }

// JLow implements Rule; semiring GEP updates every column.
func (r SemiringRule) JLow(Kind, int) int { return 0 }

// UsesPivot implements Rule: x ⊕ (u ⊙ v) never reads w.
func (r SemiringRule) UsesPivot() bool { return false }

// Restricted implements Rule: every tile except the pivot.
func (r SemiringRule) Restricted(k, rr int) []int {
	out := make([]int, 0, rr-1)
	for i := 0; i < rr; i++ {
		if i != k {
			out = append(out, i)
		}
	}
	return out
}

// Pad implements Rule: padded cells hold 0̄ (for min-plus, +∞ — an
// unreachable vertex), which is absorbed by ⊕ and annihilates ⊙ paths
// through the padding.
func (r SemiringRule) Pad() float64 { return r.S.Zero }

// PadDiag implements Rule: padded diagonal cells hold 1̄ (for min-plus, 0 —
// a zero-length self loop), matching d⁰[i,i] = 1̄ in the closed-semiring
// formulation.
func (r SemiringRule) PadDiag() float64 { return r.S.One }

// GaussianRule is the GEP rule for Gaussian elimination without pivoting:
// x = x − u·v/w, applied for i > k and j > k (Fig. 2). The DP table is the
// n×n augmented system matrix.
type GaussianRule struct{}

// NewGaussian returns the GE update rule.
func NewGaussian() GaussianRule { return GaussianRule{} }

// Name implements Rule.
func (GaussianRule) Name() string { return "gaussian-elim" }

// Apply implements Rule: the elimination update x − u·v/w.
func (GaussianRule) Apply(x, u, v, w float64) float64 { return x - u*v/w }

// Sigma implements Rule: i > k and j > k (Fig. 2's loop bounds).
func (GaussianRule) Sigma(i, j, k, n int) bool {
	return k >= 0 && k < n && i > k && i < n && j > k && j < n
}

// ILow implements Rule. The global constraint i > k restricts local rows
// only in kernels whose tile lies in the pivot's block row (A and B).
func (GaussianRule) ILow(kind Kind, k int) int {
	if kind == KindA || kind == KindB {
		return k + 1
	}
	return 0
}

// JLow implements Rule. The global constraint j > k restricts local
// columns only in kernels whose tile lies in the pivot's block column
// (A and C).
func (GaussianRule) JLow(kind Kind, k int) int {
	if kind == KindA || kind == KindC {
		return k + 1
	}
	return 0
}

// UsesPivot implements Rule: the elimination update divides by w.
func (GaussianRule) UsesPivot() bool { return true }

// Restricted implements Rule: only tiles after the pivot; rows/columns
// before it are already in their final (eliminated) state.
func (GaussianRule) Restricted(k, rr int) []int {
	out := make([]int, 0, rr-k-1)
	for i := k + 1; i < rr; i++ {
		out = append(out, i)
	}
	return out
}

// Pad implements Rule: padded off-diagonal cells are 0, so u·v/w vanishes
// for any update that reads them.
func (GaussianRule) Pad() float64 { return 0 }

// PadDiag implements Rule: padded diagonal cells are 1, a safe pivot that
// leaves x − u·v/1 = x when u or v is padding (0).
func (GaussianRule) PadDiag() float64 { return 1 }
