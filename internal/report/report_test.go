package report

import (
	"strings"
	"testing"

	"dpspark/internal/simtime"
)

func TestTableRenderAndCSV(t *testing.T) {
	tbl := NewTable("Title", "omp\\cores", []string{"2", "4"}, []string{"32", "16"})
	tbl.Set(0, 0, "381")
	tbl.Set(0, 1, "387")
	tbl.Set(1, 0, "264")
	tbl.Set(1, 1, "262")

	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Title", "omp\\cores", "381", "262", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	var csvB strings.Builder
	if err := tbl.CSV(&csvB); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvB.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[1] != "2,381,387" {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestBarChartRender(t *testing.T) {
	bc := &BarChart{
		Title: "Fig",
		Unit:  "s",
		Width: 10,
		Group: []Group{{
			Label: "block 512",
			Bars: []Bar{
				{Name: "IM iter", Value: 100},
				{Name: "IM rec4", Value: 50},
				{Name: "CB iter", Note: "timeout"},
			},
		}},
	}
	var sb strings.Builder
	if err := bc.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "block 512") || !strings.Contains(out, "[timeout]") {
		t.Fatalf("chart output:\n%s", out)
	}
	// The 100s bar must be twice the 50s bar.
	lines := strings.Split(out, "\n")
	var longBar, shortBar int
	for _, l := range lines {
		n := strings.Count(l, "█")
		if strings.Contains(l, "IM iter") {
			longBar = n
		}
		if strings.Contains(l, "IM rec4") {
			shortBar = n
		}
	}
	if longBar != 10 || shortBar != 5 {
		t.Fatalf("bar lengths = %d/%d", longBar, shortBar)
	}
}

func TestLineChartRender(t *testing.T) {
	lc := &LineChart{
		Title: "Weak scaling",
		Unit:  "s",
		Lines: []Line{
			{Name: "iter", Points: []Point{{Label: "1", Value: 10}, {Label: "8", Value: 20}}},
			{Name: "rec", Points: []Point{{Label: "1", Value: 8}, {Label: "8", Note: "timeout"}}},
		},
	}
	var sb strings.Builder
	if err := lc.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Weak scaling", "iter", "rec", "10s", "[timeout]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("line chart missing %q:\n%s", want, out)
		}
	}
	if err := (&LineChart{}).Render(&sb); err != nil {
		t.Fatal("empty chart must render cleanly")
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(302.4*simtime.Second, false) != "302" {
		t.Fatal("seconds format")
	}
	if Seconds(9*simtime.Hour, true) != ">8h" {
		t.Fatal("timeout format")
	}
}
