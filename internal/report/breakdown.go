package report

import (
	"fmt"

	"dpspark/internal/simtime"
)

// BreakdownRow is one run's critical-path phase decomposition plus
// traffic totals (mirrors core.Stats without importing it).
type BreakdownRow struct {
	// Name labels the run (configuration string).
	Name string
	// Compute, Shuffle, Broadcast and Overhead sum to the run's time.
	Compute, Shuffle, Broadcast, Overhead simtime.Duration
	// Recovery is the time spent in resubmitted stages recomputing lost
	// shuffle map outputs; it overlaps the four phases above (they
	// already contain it) and is shown as its own column, not added to
	// the total.
	Recovery simtime.Duration
	// ShuffleBytes and BroadcastBytes are the run's data movement.
	ShuffleBytes, BroadcastBytes int64
	// Skew is the worst per-stage MaxTask/MeanTask straggler ratio.
	Skew float64
}

// NewBreakdownTable renders per-run phase breakdowns as a table: one row
// per run, columns for each phase, the phase sum, the overlapping
// recovery share, traffic and skew.
func NewBreakdownTable(title string, rows []BreakdownRow) *Table {
	names := make([]string, len(rows))
	for i, r := range rows {
		names[i] = r.Name
	}
	t := NewTable(title, "run", names,
		[]string{"compute", "shuffle", "broadcast", "overhead", "total", "recovery", "shuffleB", "bcastB", "skew"})
	for i, r := range rows {
		total := r.Compute + r.Shuffle + r.Broadcast + r.Overhead
		t.Set(i, 0, Seconds(r.Compute, false))
		t.Set(i, 1, Seconds(r.Shuffle, false))
		t.Set(i, 2, Seconds(r.Broadcast, false))
		t.Set(i, 3, Seconds(r.Overhead, false))
		t.Set(i, 4, Seconds(total, false))
		t.Set(i, 5, Seconds(r.Recovery, false))
		t.Set(i, 6, Bytes(r.ShuffleBytes))
		t.Set(i, 7, Bytes(r.BroadcastBytes))
		t.Set(i, 8, fmt.Sprintf("%.2f", r.Skew))
	}
	return t
}

// Bytes renders a byte count with a binary unit ("1.5GiB", "312MiB",
// "0B").
func Bytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
