package report

import (
	"fmt"
	"html"
	"io"
	"strings"
)

// HTMLReport collects rendered sections into one self-contained page —
// the harness's shareable artifact (cmd/dpspark all -html out.html).
type HTMLReport struct {
	Title    string
	sections []string
}

// NewHTMLReport starts a report.
func NewHTMLReport(title string) *HTMLReport {
	return &HTMLReport{Title: title}
}

// AddTable renders a table section.
func (h *HTMLReport) AddTable(t *Table) {
	var b strings.Builder
	fmt.Fprintf(&b, "<h2>%s</h2>\n<table>\n<tr><th>%s</th>", esc(t.Title), esc(t.CornerName))
	for _, c := range t.ColHeaders {
		fmt.Fprintf(&b, "<th>%s</th>", esc(c))
	}
	b.WriteString("</tr>\n")
	for r, rh := range t.RowHeaders {
		fmt.Fprintf(&b, "<tr><th>%s</th>", esc(rh))
		for _, cell := range t.Cells[r] {
			fmt.Fprintf(&b, "<td>%s</td>", esc(cell))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
	h.sections = append(h.sections, b.String())
}

// AddBarChart renders a grouped bar chart as inline SVG.
func (h *HTMLReport) AddBarChart(bc *BarChart) {
	const barH, gap, labelW, chartW = 16, 4, 230, 420
	maxVal := 0.0
	rows := 0
	for _, g := range bc.Group {
		rows += 1 + len(g.Bars)
		for _, bar := range g.Bars {
			if bar.Note == "" && bar.Value > maxVal {
				maxVal = bar.Value
			}
		}
	}
	height := rows*(barH+gap) + 10
	var b strings.Builder
	fmt.Fprintf(&b, "<h2>%s</h2>\n", esc(bc.Title))
	fmt.Fprintf(&b, `<svg width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n",
		labelW+chartW+90, height)
	y := 0
	for _, g := range bc.Group {
		y += barH + gap
		fmt.Fprintf(&b, `<text x="0" y="%d" font-weight="bold">%s</text>`+"\n", y-gap, esc(g.Label))
		for _, bar := range g.Bars {
			y += barH + gap
			fmt.Fprintf(&b, `<text x="12" y="%d">%s</text>`+"\n", y-gap, esc(bar.Name))
			if bar.Note != "" {
				fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#b00">[%s]</text>`+"\n",
					labelW, y-gap, esc(bar.Note))
				continue
			}
			w := 1
			if maxVal > 0 {
				w = int(bar.Value / maxVal * chartW)
				if w < 1 {
					w = 1
				}
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#4a7fb5"/>`+"\n",
				labelW, y-gap-barH+3, w, barH-2)
			fmt.Fprintf(&b, `<text x="%d" y="%d">%.0f%s</text>`+"\n",
				labelW+w+6, y-gap, bar.Value, esc(bc.Unit))
		}
	}
	b.WriteString("</svg>\n")
	h.sections = append(h.sections, b.String())
}

// AddLineChart renders a line chart as its value table plus a note.
func (h *HTMLReport) AddLineChart(lc *LineChart) {
	if len(lc.Lines) == 0 {
		return
	}
	headers := make([]string, len(lc.Lines))
	for i, l := range lc.Lines {
		headers[i] = l.Name
	}
	rows := make([]string, len(lc.Lines[0].Points))
	for i, p := range lc.Lines[0].Points {
		rows[i] = p.Label
	}
	t := NewTable(lc.Title, "x", rows, headers)
	for c, l := range lc.Lines {
		for r, p := range l.Points {
			if p.Note != "" {
				t.Set(r, c, "["+p.Note+"]")
			} else {
				t.Set(r, c, fmt.Sprintf("%.0f%s", p.Value, lc.Unit))
			}
		}
	}
	h.AddTable(t)
}

// AddText adds a free-form paragraph.
func (h *HTMLReport) AddText(text string) {
	h.sections = append(h.sections, "<p>"+esc(text)+"</p>\n")
}

// Write emits the complete page.
func (h *HTMLReport) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>
body{font-family:sans-serif;max-width:960px;margin:2em auto;padding:0 1em}
table{border-collapse:collapse;margin:1em 0}
th,td{border:1px solid #bbb;padding:4px 10px;text-align:right}
th{background:#eef2f7}
h1{border-bottom:2px solid #4a7fb5}
</style></head><body>
<h1>%s</h1>
`, esc(h.Title), esc(h.Title)); err != nil {
		return err
	}
	for _, s := range h.sections {
		if _, err := io.WriteString(w, s); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</body></html>\n")
	return err
}

func esc(s string) string { return html.EscapeString(s) }
