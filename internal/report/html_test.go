package report

import (
	"strings"
	"testing"
)

func TestHTMLReport(t *testing.T) {
	h := NewHTMLReport("dpspark <evaluation>")
	tbl := NewTable("Table I", "omp", []string{"2"}, []string{"32"})
	tbl.Set(0, 0, "381")
	h.AddTable(tbl)
	h.AddBarChart(&BarChart{
		Title: "Fig 6",
		Unit:  "s",
		Group: []Group{{Label: "block 512", Bars: []Bar{
			{Name: "IM iter", Value: 100},
			{Name: "CB iter", Note: "timeout"},
		}}},
	})
	h.AddLineChart(&LineChart{
		Title: "Fig 9",
		Unit:  "s",
		Lines: []Line{{Name: "iter", Points: []Point{{Label: "1", Value: 10}, {Label: "8", Note: "x"}}}},
	})
	h.AddText("note & caveat")

	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"dpspark &lt;evaluation&gt;", // escaping
		"<td>381</td>",
		"<svg",
		"[timeout]",
		"Fig 9",
		"note &amp; caveat",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("html missing %q", want)
		}
	}
	// The 100s bar must be full width (420px).
	if !strings.Contains(out, `width="420"`) {
		t.Fatal("max bar must span the chart width")
	}
}

func TestHTMLEmptyLineChart(t *testing.T) {
	h := NewHTMLReport("t")
	h.AddLineChart(&LineChart{})
	var sb strings.Builder
	if err := h.Write(&sb); err != nil {
		t.Fatal(err)
	}
}
