// Package report renders experiment results as aligned ASCII tables, bar
// charts and CSV — the output layer of the paper-reproduction harness
// (each table/figure of the paper has a generator in
// internal/experiments that returns these types).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"dpspark/internal/simtime"
)

// Table is a 2-D grid of rendered cells with row and column headers —
// the shape of the paper's Tables I–II.
type Table struct {
	Title      string
	CornerName string
	ColHeaders []string
	RowHeaders []string
	Cells      [][]string
}

// NewTable allocates an empty rows×cols table.
func NewTable(title, corner string, rowHeaders, colHeaders []string) *Table {
	cells := make([][]string, len(rowHeaders))
	for i := range cells {
		cells[i] = make([]string, len(colHeaders))
	}
	return &Table{
		Title:      title,
		CornerName: corner,
		ColHeaders: colHeaders,
		RowHeaders: rowHeaders,
		Cells:      cells,
	}
}

// Set writes one cell.
func (t *Table) Set(row, col int, cell string) { t.Cells[row][col] = cell }

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.ColHeaders)+1)
	widths[0] = len(t.CornerName)
	for _, rh := range t.RowHeaders {
		if len(rh) > widths[0] {
			widths[0] = len(rh)
		}
	}
	for c, ch := range t.ColHeaders {
		widths[c+1] = len(ch)
		for r := range t.RowHeaders {
			if n := len(t.Cells[r][c]); n > widths[c+1] {
				widths[c+1] = n
			}
		}
	}

	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(parts []string) error {
		var b strings.Builder
		for i, p := range parts {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, p)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(append([]string{t.CornerName}, t.ColHeaders...)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for r, rh := range t.RowHeaders {
		if err := line(append([]string{rh}, t.Cells[r]...)); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{t.CornerName}, t.ColHeaders...)); err != nil {
		return err
	}
	for r, rh := range t.RowHeaders {
		if err := cw.Write(append([]string{rh}, t.Cells[r]...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Bar is one measurement in a chart group.
type Bar struct {
	Name  string
	Value float64
	// Note marks missing/failed bars ("timeout", "disk full"); rendered
	// instead of a bar, like the paper's missing bars.
	Note string
}

// Group is a labelled cluster of bars (e.g. one block size).
type Group struct {
	Label string
	Bars  []Bar
}

// BarChart is a grouped horizontal bar chart — the shape of Figs. 6 and 8.
type BarChart struct {
	Title string
	Unit  string
	Width int // bar area width in characters (default 50)
	Group []Group
}

// Render writes the chart in plain text, bars scaled to the maximum value.
func (bc *BarChart) Render(w io.Writer) error {
	width := bc.Width
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	nameW := 0
	for _, g := range bc.Group {
		for _, b := range g.Bars {
			if b.Note == "" && b.Value > maxVal {
				maxVal = b.Value
			}
			if len(b.Name) > nameW {
				nameW = len(b.Name)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", bc.Title); err != nil {
		return err
	}
	for _, g := range bc.Group {
		if _, err := fmt.Fprintf(w, "%s\n", g.Label); err != nil {
			return err
		}
		for _, b := range g.Bars {
			if b.Note != "" {
				if _, err := fmt.Fprintf(w, "  %-*s  [%s]\n", nameW, b.Name, b.Note); err != nil {
					return err
				}
				continue
			}
			n := 0
			if maxVal > 0 {
				n = int(math.Round(b.Value / maxVal * float64(width)))
			}
			if n < 1 && b.Value > 0 {
				n = 1
			}
			if _, err := fmt.Fprintf(w, "  %-*s  %s %.0f%s\n",
				nameW, b.Name, strings.Repeat("█", n), b.Value, bc.Unit); err != nil {
				return err
			}
		}
	}
	return nil
}

// Line is a labelled series for line-style figures (Fig. 9 weak scaling).
type Line struct {
	Name   string
	Points []Point
}

// Point is one x-label/value pair.
type Point struct {
	Label string
	Value float64
	Note  string
}

// LineChart renders series side by side per x label.
type LineChart struct {
	Title string
	Unit  string
	Lines []Line
}

// Render writes the series as an aligned value table (x labels as rows).
func (lc *LineChart) Render(w io.Writer) error {
	if len(lc.Lines) == 0 {
		return nil
	}
	headers := make([]string, len(lc.Lines))
	for i, l := range lc.Lines {
		headers[i] = l.Name
	}
	rows := make([]string, len(lc.Lines[0].Points))
	for i, p := range lc.Lines[0].Points {
		rows[i] = p.Label
	}
	t := NewTable(lc.Title, "x", rows, headers)
	for c, l := range lc.Lines {
		for r, p := range l.Points {
			if p.Note != "" {
				t.Set(r, c, "["+p.Note+"]")
			} else {
				t.Set(r, c, fmt.Sprintf("%.0f%s", p.Value, lc.Unit))
			}
		}
	}
	return t.Render(w)
}

// Seconds formats a duration cell the way the paper's tables do (whole
// seconds), flagging timeouts.
func Seconds(d simtime.Duration, timedOut bool) string {
	if timedOut {
		return ">8h"
	}
	return fmt.Sprintf("%.0f", d.Seconds())
}
