package report

import (
	"fmt"

	"dpspark/internal/obs"
)

// CriticalPathRow is one run's critical-path report.
type CriticalPathRow struct {
	// Name labels the run (configuration string).
	Name string
	// Path is the profiler's attribution of the run's clock advance.
	Path obs.CritPathReport
}

// NewCriticalPathTable renders critical-path attributions as a table:
// one row per run, a column per phase, the attributed path length, the
// uncovered gap (≈ 0 on a healthy run) and the stage/segment counts
// (recovery resubmissions and speculative copies broken out).
func NewCriticalPathTable(title string, rows []CriticalPathRow) *Table {
	names := make([]string, len(rows))
	for i, r := range rows {
		names[i] = r.Name
	}
	t := NewTable(title, "run", names,
		[]string{"compute", "shuffle", "broadcast", "recovery", "spill", "overhead", "path", "gap", "stages", "resub", "spec"})
	for i, r := range rows {
		p := r.Path
		t.Set(i, 0, Seconds(p.Phase(obs.PhaseCompute), false))
		t.Set(i, 1, Seconds(p.Phase(obs.PhaseShuffle), false))
		t.Set(i, 2, Seconds(p.Phase(obs.PhaseBroadcast), false))
		t.Set(i, 3, Seconds(p.Phase(obs.PhaseRecovery), false))
		t.Set(i, 4, Seconds(p.Phase(obs.PhaseSpill), false))
		t.Set(i, 5, Seconds(p.Phase(obs.PhaseOverhead), false))
		t.Set(i, 6, Seconds(p.Len, false))
		t.Set(i, 7, fmt.Sprintf("%.3g", p.Unattributed.Seconds()))
		t.Set(i, 8, fmt.Sprintf("%d", p.Stages))
		t.Set(i, 9, fmt.Sprintf("%d", p.RecoveryStages))
		t.Set(i, 10, fmt.Sprintf("%d", p.Speculative))
	}
	return t
}
