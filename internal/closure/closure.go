// Package closure computes transitive closure — Warshall's algorithm, the
// paper's third canonical GEP instance — on the distributed framework,
// and derives graph condensation structure (strongly connected
// components, reachability queries) from the closure matrix.
package closure

import (
	"fmt"

	"dpspark/internal/core"
	"dpspark/internal/graph"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
)

// Solver configures closure runs.
type Solver struct {
	// Config is the GEP execution configuration; Rule is forced to the
	// boolean-semiring rule.
	Config core.Config
}

// New returns a solver with the given execution configuration.
func New(cfg core.Config) *Solver {
	cfg.Rule = semiring.NewTransitiveClosure()
	return &Solver{Config: cfg}
}

// Solve computes the reachability matrix of a directed graph: out[i,j] is
// 1 iff j is reachable from i (every vertex reaches itself).
func (s *Solver) Solve(ctx *rdd.Context, g *graph.Graph) (*matrix.Dense, *core.Stats, error) {
	cfg := s.Config
	if cfg.BlockSize < 1 {
		return nil, nil, fmt.Errorf("closure: BlockSize must be set")
	}
	bl := matrix.Block(g.AdjacencyBool(), cfg.BlockSize, cfg.Rule.Pad(), cfg.Rule.PadDiag())
	out, stats, err := core.Run(ctx, bl, cfg)
	if err != nil {
		return nil, stats, err
	}
	return out.ToDense(), stats, nil
}

// Reachable reports whether v is reachable from u in a closure matrix.
func Reachable(c *matrix.Dense, u, v int) bool {
	return u >= 0 && v >= 0 && u < c.N && v < c.N && c.At(u, v) != 0
}

// Components labels strongly connected components from a closure matrix:
// u and v share a component iff each reaches the other. Labels are dense
// in [0, #components), assigned in order of first appearance.
func Components(c *matrix.Dense) []int {
	labels := make([]int, c.N)
	for i := range labels {
		labels[i] = -1
	}
	next := 0
	for u := 0; u < c.N; u++ {
		if labels[u] != -1 {
			continue
		}
		labels[u] = next
		for v := u + 1; v < c.N; v++ {
			if labels[v] == -1 && c.At(u, v) != 0 && c.At(v, u) != 0 {
				labels[v] = next
			}
		}
		next++
	}
	return labels
}

// Condense builds the condensation DAG: one vertex per strongly connected
// component, with an (unweighted) edge between components that have any
// reachability between distinct members. The result is a DAG by
// construction.
func Condense(c *matrix.Dense) *graph.Graph {
	labels := Components(c)
	n := 0
	for _, l := range labels {
		if l+1 > n {
			n = l + 1
		}
	}
	dag := graph.New(n)
	seen := make(map[[2]int]bool)
	for u := 0; u < c.N; u++ {
		for v := 0; v < c.N; v++ {
			lu, lv := labels[u], labels[v]
			if lu == lv || c.At(u, v) == 0 {
				continue
			}
			key := [2]int{lu, lv}
			if !seen[key] {
				seen[key] = true
				dag.AddEdge(lu, lv, 1)
			}
		}
	}
	return dag
}
