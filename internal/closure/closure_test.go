package closure

import (
	"math/rand"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/graph"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
)

func newCtx() *rdd.Context {
	return rdd.NewContext(rdd.Conf{Cluster: cluster.Local(4)})
}

// bruteClosure computes reachability by DFS from every vertex.
func bruteClosure(g *graph.Graph) *matrix.Dense {
	out := matrix.NewDense(g.N)
	for s := 0; s < g.N; s++ {
		stack := []int{s}
		seen := make([]bool, g.N)
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out.Set(s, u, 1)
			for _, e := range g.Adj[u] {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
	}
	return out
}

func TestClosureMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 5; trial++ {
		g := graph.Random(30, 0.08, 1, 2, rng)
		for _, driver := range []core.DriverKind{core.IM, core.CB} {
			got, stats, err := New(core.Config{BlockSize: 8, Driver: driver}).Solve(newCtx(), g)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Time <= 0 {
				t.Fatal("no virtual time")
			}
			want := bruteClosure(g)
			if diff := got.MaxAbsDiff(want); diff != 0 {
				t.Fatalf("trial %d driver %v: closure differs from DFS (%v)", trial, driver, diff)
			}
		}
	}
}

func TestComponentsOnKnownGraph(t *testing.T) {
	// Two 2-cycles joined by a one-way edge, plus an isolated vertex:
	// components {0,1}, {2,3}, {4}.
	g := graph.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	g.AddEdge(1, 2, 1) // bridge, one-way
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 2, 1)
	c, _, err := New(core.Config{BlockSize: 2}).Solve(newCtx(), g)
	if err != nil {
		t.Fatal(err)
	}
	labels := Components(c)
	if labels[0] != labels[1] || labels[2] != labels[3] {
		t.Fatalf("labels = %v", labels)
	}
	if labels[0] == labels[2] || labels[4] == labels[0] || labels[4] == labels[2] {
		t.Fatalf("labels = %v", labels)
	}
	if !Reachable(c, 0, 3) || Reachable(c, 3, 0) {
		t.Fatal("reachability wrong across the bridge")
	}
	if Reachable(c, -1, 0) || Reachable(c, 0, 99) {
		t.Fatal("out-of-range queries must be false")
	}

	dag := Condense(c)
	if dag.N != 3 {
		t.Fatalf("condensation has %d components", dag.N)
	}
	// The condensation must be acyclic: closure of the DAG has no mutual
	// reachability between distinct components.
	cc := bruteClosure(dag)
	for i := 0; i < dag.N; i++ {
		for j := i + 1; j < dag.N; j++ {
			if cc.At(i, j) != 0 && cc.At(j, i) != 0 {
				t.Fatalf("condensation contains a cycle between %d and %d", i, j)
			}
		}
	}
}

func TestComponentsPermutationInvariance(t *testing.T) {
	// Property: component partition sizes are invariant under vertex
	// relabelling.
	rng := rand.New(rand.NewSource(62))
	g := graph.Random(24, 0.1, 1, 2, rng)
	perm := rng.Perm(g.N)
	pg := graph.New(g.N)
	for _, es := range g.Adj {
		for _, e := range es {
			pg.AddEdge(perm[e.From], perm[e.To], e.Weight)
		}
	}
	sizes := func(gr *graph.Graph) map[int]int {
		c, _, err := New(core.Config{BlockSize: 8}).Solve(newCtx(), gr)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for _, l := range Components(c) {
			counts[l]++
		}
		hist := map[int]int{} // size → how many components of that size
		for _, n := range counts {
			hist[n]++
		}
		return hist
	}
	a, b := sizes(g), sizes(pg)
	if len(a) != len(b) {
		t.Fatalf("component size histograms differ: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("component size histograms differ: %v vs %v", a, b)
		}
	}
}

func TestMissingBlockSize(t *testing.T) {
	if _, _, err := New(core.Config{}).Solve(newCtx(), graph.New(2)); err == nil {
		t.Fatal("expected BlockSize error")
	}
}
