// The job journal is the serve layer's write-ahead log: every job
// lifecycle transition (admitted → dispatched → checkpointed → retry →
// terminal, plus crash-recovery re-dispatches) is appended to one
// CRC32C-framed file before the transition takes effect, so a server
// killed at ANY point — SIGKILL included — restarts knowing exactly
// which jobs it had accepted, which were running, and which results it
// had already produced. Records ride the store package's journal frames
// (store.AppendFrame / store.ReadFrames); replay keeps the longest
// intact prefix and drops the torn tail, the expected after-crash state
// of an append-only file. Compaction rewrites the journal as a fresh
// snapshot via tmp+rename, so it too is crash-atomic.
package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dpspark/internal/store"
)

// journalName is the append-only log file inside the journal directory.
const journalName = "journal.log"

// ckptSubdir roots the per-job durable checkpoint directories inside the
// journal directory (ckpt/<jobID>/ckpt-*.ck).
const ckptSubdir = "ckpt"

// journalCompactThreshold is the record count past which the server
// compacts the journal in place (terminal jobs collapse to two records,
// dispatch/checkpoint chatter is dropped for live ones).
const journalCompactThreshold = 4096

// Journal record types, in lifecycle order.
const (
	recAdmitted     = "admitted"     // spec accepted; carries the full JobSpec
	recDispatched   = "dispatched"   // an attempt started running
	recCheckpointed = "checkpointed" // a durable engine checkpoint landed
	recRetry        = "retry"        // an attempt failed on an engine error; another follows
	recRecovered    = "recovered"    // a restart found the job mid-run and re-admitted it
	recTerminal     = "terminal"     // done / failed / cancelled / quarantined
)

// journalRecord is one framed journal entry. Fields are sparse: each
// record type fills only what it needs.
type journalRecord struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	// Seq is the job's global admission sequence (admitted records).
	Seq uint64 `json:"seq,omitempty"`
	// Spec is the full submission payload (admitted records) — the
	// journal is the source of truth a crashed job is re-run from.
	Spec *JobSpec `json:"spec,omitempty"`
	// Attempt numbers dispatched/retry records (1-based).
	Attempt int `json:"attempt,omitempty"`
	// Iteration is the durable boundary (checkpointed records).
	Iteration int `json:"iteration,omitempty"`
	// Crashes counts how many restarts found this job mid-run
	// (recovered records) — the poison-job strike counter.
	Crashes int `json:"crashes,omitempty"`
	// Terminal outcome.
	State    JobState `json:"state,omitempty"`
	Checksum string   `json:"checksum,omitempty"`
	Modelled float64  `json:"modelled,omitempty"`
	Error    string   `json:"error,omitempty"`
	// Flight is the path of the flight-recorder dump attached to a
	// quarantined job.
	Flight string `json:"flight,omitempty"`
}

// journal is the append handle. Appends are framed, written and fsynced
// under one lock so records hit the disk in admission order and a crash
// can only ever lose a suffix.
type journal struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	records int // frames appended since open/compact

	// failAfter, when ≥ 0, silently drops every append once that many
	// records have been written — the crash-sweep test seam simulating a
	// SIGKILL whose surviving journal is exactly the fsynced prefix.
	failAfter int
}

// openJournal creates dir (and its checkpoint root) and opens the log
// for appending.
func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(filepath.Join(dir, ckptSubdir), 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal dir %s: %w", dir, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: journal open: %w", err)
	}
	return &journal{dir: dir, f: f, failAfter: -1}, nil
}

// ckptDir returns the per-job durable checkpoint directory.
func (jl *journal) ckptDir(jobID string) string {
	return filepath.Join(jl.dir, ckptSubdir, jobID)
}

// append frames, writes and fsyncs one record. The fsync is the
// crash-safety contract: once append returns, a restart will replay the
// record.
func (jl *journal) append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal encode: %w", err)
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.failAfter >= 0 && jl.records >= jl.failAfter {
		jl.records++ // the "process" thinks it logged; the disk never sees it
		return nil
	}
	if _, err := jl.f.Write(store.AppendFrame(nil, payload)); err != nil {
		return fmt.Errorf("serve: journal write: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	jl.records++
	return nil
}

// len reports how many records this handle has appended since it was
// opened or last compacted.
func (jl *journal) len() int {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.records
}

// compact atomically replaces the journal with the given snapshot
// records: they are framed into one buffer, written to a temp file,
// fsynced and renamed over the log, then the append handle is reopened.
// A crash anywhere in here leaves either the old or the new journal
// intact — never a mix.
func (jl *journal) compact(recs []journalRecord) error {
	var buf []byte
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("serve: journal compact encode: %w", err)
		}
		buf = store.AppendFrame(buf, payload)
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return fmt.Errorf("serve: journal closed")
	}
	final := filepath.Join(jl.dir, journalName)
	tmp, err := os.CreateTemp(jl.dir, ".tmp-journal-*")
	if err != nil {
		return fmt.Errorf("serve: journal compact temp: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: journal compact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: journal compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: journal compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: journal compact rename: %w", err)
	}
	old := jl.f
	f, err := os.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: journal reopen: %w", err)
	}
	jl.f = f
	jl.records = len(recs)
	old.Close()
	return nil
}

// close releases the append handle.
func (jl *journal) close() {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f != nil {
		jl.f.Close()
		jl.f = nil
	}
}

// decodeJournal replays journal bytes into records: the longest intact
// prefix of frames whose payloads parse as records. Damage — a torn
// tail, a flipped bit, an unparsable payload — stops the replay at that
// point; everything before it is kept, everything from it on is
// dropped. It never fails and never panics; dropped reports how many
// trailing bytes were discarded.
func decodeJournal(data []byte) (recs []journalRecord, dropped int) {
	payloads, consumed := store.ReadFrames(data)
	kept := consumed
	// Walk back from consumed only if a payload fails to parse.
	good := 0
	for _, p := range payloads {
		var rec journalRecord
		if err := json.Unmarshal(p, &rec); err != nil || rec.Type == "" || rec.Job == "" {
			// A framed-but-unparsable record: treat it and everything
			// after it as the torn tail.
			kept = 0
			for _, q := range payloads[:good] {
				kept += store.FrameHeaderLen + len(q)
			}
			return recs, len(data) - kept
		}
		recs = append(recs, rec)
		good++
	}
	return recs, len(data) - kept
}

// readJournal loads and replays dir's journal file. A missing file is an
// empty journal, not an error.
func readJournal(dir string) (recs []journalRecord, dropped int, err error) {
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("serve: journal read: %w", err)
	}
	recs, dropped = decodeJournal(data)
	return recs, dropped, nil
}
