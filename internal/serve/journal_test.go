package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dpspark/internal/store"
)

// frameRecords marshals records into journal bytes without a journal
// handle — the fixture builder for replay tests.
func frameRecords(t testing.TB, recs ...journalRecord) []byte {
	t.Helper()
	var buf []byte
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf = store.AppendFrame(buf, payload)
	}
	return buf
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Tenant: "alice", N: 64, Block: 32}
	if err := spec.validate(); err != nil {
		t.Fatal(err)
	}
	in := []journalRecord{
		{Type: recAdmitted, Job: "job-1", Seq: 1, Spec: &spec},
		{Type: recDispatched, Job: "job-1", Attempt: 1},
		{Type: recCheckpointed, Job: "job-1", Iteration: 1},
		{Type: recTerminal, Job: "job-1", State: StateDone, Checksum: "00ff00ff00ff00ff", Modelled: 1.25},
	}
	for _, rec := range in {
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if jl.len() != len(in) {
		t.Fatalf("journal len %d, want %d", jl.len(), len(in))
	}
	jl.close()

	out, dropped, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || len(out) != len(in) {
		t.Fatalf("replay: %d records, %d dropped; want %d records, 0 dropped", len(out), dropped, len(in))
	}
	if out[0].Spec == nil || out[0].Spec.Tenant != "alice" || out[0].Seq != 1 {
		t.Fatalf("admitted record lost its spec: %+v", out[0])
	}
	if out[3].State != StateDone || out[3].Checksum != "00ff00ff00ff00ff" {
		t.Fatalf("terminal record mangled: %+v", out[3])
	}
}

func TestJournalTornTailReplay(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := jl.append(journalRecord{Type: recDispatched, Job: "job-1", Attempt: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	jl.close()
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// SIGKILL mid-write: chop 7 bytes off the last frame.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("torn-tail replay kept %d records, want 4", len(recs))
	}
	if dropped == 0 {
		t.Fatal("torn-tail replay reported 0 dropped bytes")
	}
	if recs[3].Attempt != 4 {
		t.Fatalf("last intact record attempt %d, want 4", recs[3].Attempt)
	}
}

func TestJournalCompactAtomicAndAppendable(t *testing.T) {
	dir := t.TempDir()
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := jl.append(journalRecord{Type: recDispatched, Job: "job-1", Attempt: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	snap := []journalRecord{
		{Type: recAdmitted, Job: "job-1", Seq: 1, Spec: &JobSpec{Tenant: "alice", Bench: "fw", Driver: "im", N: 64, Block: 32}},
		{Type: recTerminal, Job: "job-1", State: StateDone, Checksum: "1"},
	}
	if err := jl.compact(snap); err != nil {
		t.Fatal(err)
	}
	if jl.len() != len(snap) {
		t.Fatalf("post-compact len %d, want %d", jl.len(), len(snap))
	}
	// The handle must still be appendable after the rename swap.
	if err := jl.append(journalRecord{Type: recDispatched, Job: "job-2", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	jl.close()
	// Compacting a closed journal must refuse, not resurrect the file.
	if err := jl.compact(snap); err == nil {
		t.Fatal("compact on a closed journal succeeded")
	}
	recs, dropped, err := readJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || len(recs) != 3 {
		t.Fatalf("replay after compact+append: %d records, %d dropped; want 3, 0", len(recs), dropped)
	}
	if recs[0].Type != recAdmitted || recs[2].Job != "job-2" {
		t.Fatalf("compacted journal out of order: %+v", recs)
	}
	// No temp litter left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, ".tmp-journal-*"))
	if len(matches) != 0 {
		t.Fatalf("compact left temp files: %v", matches)
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	recs, dropped, err := readJournal(t.TempDir())
	if err != nil || len(recs) != 0 || dropped != 0 {
		t.Fatalf("missing journal: recs=%d dropped=%d err=%v, want empty", len(recs), dropped, err)
	}
}

// FuzzJournalReplay hammers decodeJournal with corrupted journals. The
// invariants under ANY input: no panic; dropped stays within bounds;
// replaying the kept prefix is lossless and idempotent; and a fresh
// record appended to the kept prefix replays — i.e. recovery after a
// torn tail leaves a journal the server can keep appending to.
func FuzzJournalReplay(f *testing.F) {
	spec := JobSpec{Tenant: "alice", N: 64, Block: 32}
	if err := spec.validate(); err != nil {
		f.Fatal(err)
	}
	good := frameRecords(f,
		journalRecord{Type: recAdmitted, Job: "job-1", Seq: 1, Spec: &spec},
		journalRecord{Type: recDispatched, Job: "job-1", Attempt: 1},
		journalRecord{Type: recTerminal, Job: "job-1", State: StateDone, Checksum: "00ff00ff00ff00ff"},
	)
	f.Add(good)
	f.Add(good[:len(good)-3]) // torn tail
	flip := append([]byte(nil), good...)
	flip[len(flip)/2] ^= 0x40 // bit rot mid-journal
	f.Add(flip)
	f.Add([]byte("not a journal at all"))
	f.Add([]byte{})
	// A structurally valid frame whose payload is not a record.
	f.Add(store.AppendFrame(nil, []byte(`{"zebra":true}`)))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, dropped := decodeJournal(data)
		if dropped < 0 || dropped > len(data) {
			t.Fatalf("dropped %d outside [0, %d]", dropped, len(data))
		}
		kept := data[:len(data)-dropped]
		recs2, dropped2 := decodeJournal(kept)
		if dropped2 != 0 {
			t.Fatalf("replaying the kept prefix dropped %d more bytes — trim not idempotent", dropped2)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("replaying the kept prefix yielded %d records, want %d", len(recs2), len(recs))
		}
		// The journal must remain appendable after recovery truncates to
		// the kept prefix.
		extra, err := json.Marshal(journalRecord{Type: recTerminal, Job: "job-x", State: StateCancelled})
		if err != nil {
			t.Fatal(err)
		}
		ext := store.AppendFrame(append([]byte(nil), kept...), extra)
		recs3, dropped3 := decodeJournal(ext)
		if dropped3 != 0 || len(recs3) != len(recs)+1 {
			t.Fatalf("append after trim: %d records, %d dropped; want %d, 0", len(recs3), dropped3, len(recs)+1)
		}
		if got := recs3[len(recs3)-1]; got.Type != recTerminal || got.Job != "job-x" {
			t.Fatalf("appended record mangled: %+v", got)
		}
	})
}
