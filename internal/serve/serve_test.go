package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dpspark/internal/cluster"
)

// waitTerminal polls a job until it leaves the queued/running states.
func waitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State != StateQueued && st.State != StateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// soloChecksum runs one spec alone on a fresh single-job server and
// returns its checksum and modelled seconds — the reference values the
// isolation invariant compares against.
func soloChecksum(t *testing.T, spec JobSpec) (string, float64) {
	t.Helper()
	s, err := New(Config{MaxRunning: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, j.ID)
	if st.State != StateDone {
		t.Fatalf("solo run of %+v ended %s: %s", spec, st.State, st.Error)
	}
	return st.Checksum, st.ModelledSeconds
}

// TestServeIsolationInvariant is the PR's headline: N concurrent jobs
// with mixed rules and drivers — one under an injected-fault chaos plan
// — each produce checksums AND modelled clocks bit-identical to the
// same job run solo, while an over-quota submission is rejected with
// zero effect on the in-flight jobs.
func TestServeIsolationInvariant(t *testing.T) {
	specs := []JobSpec{
		{Tenant: "alice", Bench: "fw", Driver: "im", N: 96, Block: 32, Seed: 1, Priority: 2},
		{Tenant: "bob", Bench: "ge", Driver: "cb", N: 64, Block: 32, Seed: 2, Priority: 1},
		// Carol's job runs under injected executor crashes; its recovery
		// must stay entirely inside its own context.
		{Tenant: "carol", Bench: "fw", Driver: "cb", N: 64, Block: 32, Seed: 3, ChaosSeed: 11, ChaosCrashes: 2},
	}
	wantSum := make([]string, len(specs))
	wantClk := make([]float64, len(specs))
	for i, sp := range specs {
		wantSum[i], wantClk[i] = soloChecksum(t, sp)
	}

	// Gate the running jobs so the overload phase below happens while
	// all three are genuinely in flight.
	release := make(chan struct{})
	cfg := Config{
		MaxRunning:      len(specs),
		MaxQueue:        2,
		TenantPending:   1,
		RealParallelism: 3, // force real slot contention between jobs
	}
	cfg.hook = func(*Job) { <-release }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		j, err := s.Submit(sp)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = j.ID
	}

	// Overload the queue mid-flight: dave fills his pending quota, then
	// gets rejected — with zero effect on the running jobs.
	if _, err := s.Submit(JobSpec{Tenant: "dave", N: 64, Block: 32}); err != nil {
		t.Fatalf("dave's first job should queue: %v", err)
	}
	_, err = s.Submit(JobSpec{Tenant: "dave", N: 64, Block: 32})
	var rej *errRejected
	if !asRejected(err, &rej) || rej.reason != "tenant_quota" {
		t.Fatalf("over-quota submission: got %v, want tenant_quota rejection", err)
	}

	close(release)
	for i, id := range ids {
		st := waitTerminal(t, s, id)
		if st.State != StateDone {
			t.Fatalf("job %s (%s) ended %s: %s", id, specs[i].Tenant, st.State, st.Error)
		}
		if st.Checksum != wantSum[i] {
			t.Errorf("tenant %s: shared checksum %s != solo %s — isolation broken",
				specs[i].Tenant, st.Checksum, wantSum[i])
		}
		if st.ModelledSeconds != wantClk[i] {
			t.Errorf("tenant %s: shared modelled clock %v != solo %v — virtual time perturbed",
				specs[i].Tenant, st.ModelledSeconds, wantClk[i])
		}
	}
}

func asRejected(err error, target **errRejected) bool {
	if err == nil {
		return false
	}
	r, ok := err.(*errRejected)
	if ok {
		*target = r
	}
	return ok
}

func TestAdmissionControlHTTP(t *testing.T) {
	// Gate the run slot so the queue fills deterministically: the
	// running job blocks in the hook until released.
	release := make(chan struct{})
	cfg := Config{MaxRunning: 1, MaxQueue: 1}
	cfg.hook = func(*Job) { <-release }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(spec JobSpec) *http.Response {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	decodeStatus := func(resp *http.Response) JobStatus {
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// First job runs, second queues, third hits the bounded queue.
	r1 := submit(JobSpec{N: 96, Block: 32})
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", r1.StatusCode)
	}
	j1 := decodeStatus(r1)
	r2 := submit(JobSpec{N: 64, Block: 32})
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", r2.StatusCode)
	}
	j2 := decodeStatus(r2)
	r3 := submit(JobSpec{N: 64, Block: 32})
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	r3.Body.Close()

	// Bad specs are 400, not 429.
	rBad := submit(JobSpec{N: 16, Block: 32})
	if rBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid shape: %d, want 400", rBad.StatusCode)
	}
	rBad.Body.Close()

	// Cancel the queued job over HTTP.
	resp, err := http.Post(ts.URL+"/jobs/"+j2.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued job: %d", resp.StatusCode)
	}
	resp.Body.Close()
	if st := waitTerminal(t, s, j2.ID); st.State != StateCancelled {
		t.Fatalf("cancelled queued job ended %s", st.State)
	}

	close(release) // let the gated job run
	if st := waitTerminal(t, s, j1.ID); st.State != StateDone {
		t.Fatalf("running job ended %s: %s", st.State, st.Error)
	}

	// The job list and per-tenant metrics surfaces.
	listResp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	// Rejected submissions never become jobs; only the admitted two list.
	if len(list) != 2 {
		t.Fatalf("job list has %d entries, want 2", len(list))
	}
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mResp.Body)
	mResp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		`dpspark_jobs_admitted_total{tenant="default"} 2`,
		`dpspark_jobs_rejected_total{reason="queue_full",tenant="default"} 1`,
		`dpspark_jobs_completed_total{tenant="default"} 1`,
		`dpspark_jobs_cancelled_total{tenant="default"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestDeadlineCancelsJob(t *testing.T) {
	// The deadline counts from admission. Holding the job in the hook
	// until the budget is provably spent makes the outcome independent
	// of how fast the engine would have finished the run: the job must
	// be cancelled with the deadline as the cause, never run to done.
	cfg := Config{MaxRunning: 1}
	cfg.hook = func(*Job) { time.Sleep(20 * time.Millisecond) }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(JobSpec{N: 256, Block: 32, DeadlineMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, j.ID)
	if st.State != StateCancelled {
		t.Fatalf("deadline job ended %s (err %q), want cancelled", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("cancellation cause %q does not name the deadline", st.Error)
	}
}

func TestPanicContainment(t *testing.T) {
	// A persistently panicking job is retried up to the poison threshold
	// and then quarantined — never crashing the server or its siblings.
	cfg := Config{MaxRunning: 2, RetryBackoff: time.Millisecond}
	attempts := 0
	var amu sync.Mutex
	cfg.hook = func(j *Job) {
		if j.Spec.Tenant == "bomb" {
			amu.Lock()
			attempts++
			amu.Unlock()
			panic("kernel exploded")
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bomb, err := s.Submit(JobSpec{Tenant: "bomb", N: 64, Block: 32})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Submit(JobSpec{Tenant: "steady", N: 64, Block: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, bomb.ID); st.State != StateQuarantined || !strings.Contains(st.Error, "panic") {
		t.Fatalf("panicking job: state=%s err=%q, want quarantined with panic", st.State, st.Error)
	}
	amu.Lock()
	if attempts != 3 { // the default PoisonThreshold
		t.Fatalf("panicking job ran %d attempts, want 3 (the poison threshold)", attempts)
	}
	amu.Unlock()
	// The sibling finishes and the server keeps admitting.
	if st := waitTerminal(t, s, ok.ID); st.State != StateDone {
		t.Fatalf("sibling job ended %s: %s", st.State, st.Error)
	}
	after, err := s.Submit(JobSpec{Tenant: "steady", N: 64, Block: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, after.ID); st.State != StateDone {
		t.Fatalf("post-panic job ended %s: %s", st.State, st.Error)
	}
}

func TestPriorityScheduling(t *testing.T) {
	var mu sync.Mutex
	var started []string
	gate := make(chan struct{})
	cfg := Config{MaxRunning: 1}
	cfg.hook = func(j *Job) {
		mu.Lock()
		started = append(started, j.Spec.Tenant)
		mu.Unlock()
		if j.Spec.Tenant == "blocker" {
			<-gate // hold the slot until low and high are both queued
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The blocker occupies the single run slot while low and high queue;
	// dispatch must pick high first despite low's earlier arrival.
	blocker, _ := s.Submit(JobSpec{Tenant: "blocker", N: 96, Block: 32})
	low, _ := s.Submit(JobSpec{Tenant: "low", N: 64, Block: 32, Priority: 1})
	high, _ := s.Submit(JobSpec{Tenant: "high", N: 64, Block: 32, Priority: 9})
	close(gate)
	for _, j := range []*Job{blocker, low, high} {
		waitTerminal(t, s, j.ID)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"blocker", "high", "low"}
	if fmt.Sprint(started) != fmt.Sprint(want) {
		t.Fatalf("start order %v, want %v", started, want)
	}
}

func TestDrain(t *testing.T) {
	cfg := Config{MaxRunning: 1, DrainGrace: time.Millisecond}
	// The hook delays the running job past the grace window so Drain
	// exercises its cancellation path, not just the happy wait.
	cfg.hook = func(*Job) { time.Sleep(30 * time.Millisecond) }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	running, err := s.Submit(JobSpec{N: 256, Block: 32})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{N: 64, Block: 32})
	if err != nil {
		t.Fatal(err)
	}

	s.Drain()

	if st, _ := s.Status(queued.ID); st.State != StateCancelled {
		t.Fatalf("queued job after drain: %s, want cancelled", st.State)
	}
	st, _ := s.Status(running.ID)
	if st.State != StateCancelled && st.State != StateDone {
		t.Fatalf("running job after drain: %s (%s), want cancelled or done", st.State, st.Error)
	}
	if !s.Draining() {
		t.Fatal("server not draining after Drain")
	}
	if _, err := s.Submit(JobSpec{N: 64, Block: 32}); err == nil {
		t.Fatal("submission accepted while draining")
	}
	// Drain is idempotent.
	s.Drain()
}

// TestServeDrainWithFalseSuspicionInFlight: a drain arriving while a
// job is mid false-suspicion recovery (detector on, seeded GC pauses)
// must let that recovery finish inside the grace window — the job lands
// done with its solo checksum, zombie commits fenced, no deadlock — and
// every flight event the job emitted carries its ID for /events?job=.
func TestServeDrainWithFalseSuspicionInFlight(t *testing.T) {
	spec := JobSpec{Tenant: "erin", Bench: "fw", Driver: "im", N: 64, Block: 32, Seed: 5, ChaosSeed: 17, ChaosGCPauses: 3}
	wantSum, wantClk := soloChecksum(t, spec)

	started := make(chan struct{})
	cfg := Config{MaxRunning: 1, DrainGrace: 60 * time.Second}
	cfg.hook = func(*Job) { close(started) }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	s.Drain() // races the in-flight recovery; grace must cover it

	st, ok := s.Status(j.ID)
	if !ok || st.State != StateDone {
		t.Fatalf("drained job ended %s (%s), want done", st.State, st.Error)
	}
	if st.Checksum != wantSum {
		t.Fatalf("drained checksum %s != solo %s", st.Checksum, wantSum)
	}
	if st.ModelledSeconds != wantClk {
		t.Fatalf("drained modelled clock %v != solo %v", st.ModelledSeconds, wantClk)
	}
	// The detector really ran in-service: the pauses were suspected and
	// at least one outlived the lease count into a false declaration.
	reg := s.Observer().Metrics()
	if reg.CounterTotal("dpspark_detector_suspicions_total") == 0 {
		t.Fatal("no suspicions recorded — the GC-pause plan never met the detector")
	}
	if reg.CounterTotal("dpspark_detector_false_suspicions_total") == 0 {
		t.Fatal("no false declaration — recovery was never in flight to race the drain")
	}
	// Every engine event the job emitted is tagged for /events?job=.
	tagged := 0
	for _, ev := range s.Observer().Flight().Snapshot() {
		if ev.Job == j.ID {
			tagged++
		}
	}
	if tagged == 0 {
		t.Fatal("no flight events carry the job's ID")
	}
	if _, err := s.Submit(spec); err == nil {
		t.Fatal("submission accepted while draining")
	}
}

// TestServeConfNormalization is the serve half of the PR's table-driven
// validation coverage (rdd.Conf's lives in internal/rdd).
func TestServeConfNormalization(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative MaxQueue", func(c *Config) { c.MaxQueue = -1 }, "MaxQueue"},
		{"negative MaxRunning", func(c *Config) { c.MaxRunning = -1 }, "MaxRunning"},
		{"negative TenantRunning", func(c *Config) { c.TenantRunning = -1 }, "TenantRunning"},
		{"negative TenantPending", func(c *Config) { c.TenantPending = -1 }, "TenantPending"},
		{"negative DrainGrace", func(c *Config) { c.DrainGrace = -time.Second }, "DrainGrace"},
		{"negative KernelThreads", func(c *Config) { c.KernelThreads = -1 }, "KernelThreads"},
		{"negative RealParallelism", func(c *Config) { c.RealParallelism = -1 }, "RealParallelism"},
		{"negative MaxAttempts", func(c *Config) { c.MaxAttempts = -1 }, "MaxAttempts"},
		{"oversize MaxAttempts", func(c *Config) { c.MaxAttempts = 17 }, "MaxAttempts"},
		{"negative RetryBackoff", func(c *Config) { c.RetryBackoff = -time.Second }, "RetryBackoff"},
		{"negative PoisonThreshold", func(c *Config) { c.PoisonThreshold = -1 }, "PoisonThreshold"},
	} {
		cfg := Config{}
		tc.mut(&cfg)
		err := cfg.normalize()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error naming %s", tc.name, err, tc.want)
		}
	}

	cfg := Config{}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.MaxQueue != 16 || cfg.MaxRunning != 2 || cfg.TenantRunning != 2 || cfg.TenantPending != 16 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.DrainGrace != 30*time.Second || cfg.Cluster == nil || cfg.Observer == nil {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.MaxAttempts != 1 || cfg.RetryBackoff != 50*time.Millisecond || cfg.PoisonThreshold != 3 {
		t.Fatalf("retry/poison defaults wrong: %+v", cfg)
	}

	// Per-tenant caps clamp to the global bounds.
	cfg = Config{MaxRunning: 2, MaxQueue: 4, TenantRunning: 10, TenantPending: 10}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.TenantRunning != 2 || cfg.TenantPending != 4 {
		t.Fatalf("tenant caps not clamped: %+v", cfg)
	}
}

func TestJobSpecValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec JobSpec
		want string
	}{
		{"bad bench", JobSpec{Bench: "lcs"}, "bench"},
		{"bad driver", JobSpec{Driver: "mpi"}, "driver"},
		{"block > n", JobSpec{N: 16, Block: 32}, "shape"},
		{"oversize", JobSpec{N: 8192, Block: 64}, "cap"},
		{"negative deadline", JobSpec{DeadlineMS: -1}, "deadline"},
		{"negative chaos", JobSpec{ChaosCrashes: -1}, "chaos"},
		{"negative gcpauses", JobSpec{ChaosGCPauses: -1}, "chaos_gcpauses"},
		{"negative heartbeat", JobSpec{HeartbeatMS: -1}, "heartbeat_ms"},
		{"oversize idempotency key", JobSpec{IdempotencyKey: strings.Repeat("k", 257)}, "idempotency_key"},
		{"negative max attempts", JobSpec{MaxAttempts: -1}, "max_attempts"},
		{"oversize max attempts", JobSpec{MaxAttempts: 17}, "max_attempts"},
	} {
		spec := tc.spec
		if err := spec.validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error naming %s", tc.name, err, tc.want)
		}
	}
	sp := JobSpec{}
	if err := sp.validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Tenant != "default" || sp.Bench != "fw" || sp.Driver != "im" || sp.N != 128 || sp.Block != 32 {
		t.Fatalf("spec defaults wrong: %+v", sp)
	}
	// A GC-pause plan defaults the detector on; otherwise it stays off.
	gc := JobSpec{ChaosGCPauses: 2}
	if err := gc.validate(); err != nil {
		t.Fatal(err)
	}
	if gc.HeartbeatMS != 2000 {
		t.Fatalf("gcpause heartbeat default = %d, want 2000", gc.HeartbeatMS)
	}
	if sp.HeartbeatMS != 0 {
		t.Fatalf("detector must stay off without chaos: %+v", sp)
	}
}

func TestServerUsesProvidedCluster(t *testing.T) {
	cl := cluster.LocalN(2, 2)
	s, err := New(Config{Cluster: cl, MaxRunning: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(JobSpec{N: 64, Block: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, j.ID); st.State != StateDone {
		t.Fatalf("job on custom cluster ended %s: %s", st.State, st.Error)
	}
}
