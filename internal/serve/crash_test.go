package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dpspark/internal/store"
)

// copyTree recursively copies src into dst (used to preserve checkpoint
// directories across simulated crashes).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copyTree %s -> %s: %v", src, dst, err)
	}
}

// TestCrashRestartSweep is the PR's headline invariant: a journaled
// batch is run to completion once, then the server is "kill -9"ed at
// EVERY lifecycle boundary — simulated by truncating the journal at
// every frame boundary (the exact byte states an fsynced append-only
// log can be left in), plus torn mid-frame cuts — and restarted. After
// each restart plus a full round of client retries under the original
// idempotency keys, every admitted job must reach a terminal state with
// a checksum bit-identical to the uninterrupted run, and the job count
// must prove zero duplicate executions. Each crash point is swept both
// with the checkpoint directories intact (resume path) and deleted
// (clean re-run path): bits must be identical either way.
func TestCrashRestartSweep(t *testing.T) {
	specs := []JobSpec{
		{Tenant: "alice", Bench: "fw", Driver: "im", N: 64, Block: 32, Seed: 1, Priority: 2, IdempotencyKey: "sweep-0"},
		{Tenant: "bob", Bench: "ge", Driver: "cb", N: 64, Block: 32, Seed: 2, IdempotencyKey: "sweep-1"},
		// Carol's job crash-recovers INSIDE the engine; serve-level crash
		// recovery must compose with it.
		{Tenant: "carol", Bench: "fw", Driver: "cb", N: 64, Block: 32, Seed: 3, ChaosSeed: 11, ChaosCrashes: 1, IdempotencyKey: "sweep-2"},
		{Tenant: "dave", Bench: "ge", Driver: "im", N: 96, Block: 32, Seed: 4, Priority: 1, IdempotencyKey: "sweep-3"},
	}

	// Uninterrupted reference run, fully journaled.
	dir := t.TempDir()
	s1, err := New(Config{JournalDir: dir, MaxRunning: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s1.Drain)
	if _, err := s1.Recover(); err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, len(specs)) // idempotency key -> checksum
	ids := make([]string, len(specs))
	for i := range specs {
		j, err := s1.Submit(specs[i])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = j.ID
	}
	for i, id := range ids {
		st := waitTerminal(t, s1, id)
		if st.State != StateDone {
			t.Fatalf("reference job %s ended %s: %s", id, st.State, st.Error)
		}
		want[specs[i].IdempotencyKey] = st.Checksum
	}

	// The journal now holds the batch's full lifecycle. Every frame
	// boundary is a distinct crash point: the byte states a SIGKILL can
	// leave an fsynced append-only log in.
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int{0}
	rest := data
	for len(rest) > 0 {
		if _, r, err := store.NextFrame(rest); err != nil {
			t.Fatalf("reference journal has a bad frame: %v", err)
		} else {
			rest = r
		}
		offsets = append(offsets, len(data)-len(rest))
	}
	if len(offsets) < 10 {
		t.Fatalf("reference journal only has %d frames — the sweep would be vacuous", len(offsets)-1)
	}

	for i, cut := range offsets {
		cuts := []int{cut}
		if i%3 == 1 && cut+3 < len(data) {
			// A torn write: the crash landed mid-frame. Replay must treat
			// it exactly like the clean boundary before it.
			cuts = append(cuts, cut+3)
		}
		for _, c := range cuts {
			// The resume path (checkpoints survive) at every crash point;
			// the clean re-run path (checkpoint dirs lost too) sampled.
			keeps := []bool{true}
			if i%3 == 0 {
				keeps = append(keeps, false)
			}
			for _, keepCkpt := range keeps {
				runCrashCase(t, dir, data[:c], keepCkpt, specs, want)
			}
		}
	}
}

// runCrashCase restarts a server on one simulated post-crash state and
// asserts the headline invariant.
func runCrashCase(t *testing.T, refDir string, journalBytes []byte, keepCkpt bool, specs []JobSpec, want map[string]string) {
	t.Helper()
	dst := t.TempDir()
	if keepCkpt {
		copyTree(t, filepath.Join(refDir, ckptSubdir), filepath.Join(dst, ckptSubdir))
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, journalName), journalBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{JournalDir: dst, MaxRunning: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	if _, err := s.Recover(); err != nil {
		t.Fatalf("recover (cut=%d keepCkpt=%v): %v", len(journalBytes), keepCkpt, err)
	}

	// The client's side of the crash: every submission's outcome is
	// ambiguous, so every spec is retried under its original key. Keys
	// replayed from the journal dedup to the original job; keys the
	// truncation erased admit fresh jobs. Either way the TOTAL must stay
	// len(specs) — zero duplicate executions.
	jobs := make(map[string]string, len(specs))
	for i := range specs {
		j, err := s.Submit(specs[i])
		if err != nil {
			t.Fatalf("retry submit %d (cut=%d keepCkpt=%v): %v", i, len(journalBytes), keepCkpt, err)
		}
		jobs[specs[i].IdempotencyKey] = j.ID
	}
	if got := len(s.Jobs()); got != len(specs) {
		t.Fatalf("cut=%d keepCkpt=%v: %d jobs after retries, want %d (duplicate execution)",
			len(journalBytes), keepCkpt, got, len(specs))
	}
	for key, id := range jobs {
		st := waitTerminal(t, s, id)
		if st.State != StateDone {
			t.Fatalf("cut=%d keepCkpt=%v: job %s (%s) ended %s: %s",
				len(journalBytes), keepCkpt, id, key, st.State, st.Error)
		}
		if st.Checksum != want[key] {
			t.Errorf("cut=%d keepCkpt=%v: job %s (%s) checksum %s != uninterrupted %s — recovery changed the bits",
				len(journalBytes), keepCkpt, id, key, st.Checksum, want[key])
		}
	}
	if got := len(s.Jobs()); got != len(specs) {
		t.Fatalf("cut=%d keepCkpt=%v: job count drifted to %d", len(journalBytes), keepCkpt, got)
	}
}

// TestIdempotentRetryAfterAmbiguousFailure drives the exact scenario
// idempotency keys exist for: the server crashes after fsyncing the
// admission record but before the client hears back. On restart the job
// is recovered and finishes; the client's retried POST returns the
// ORIGINAL job — same ID, same checksum — instead of double-running.
func TestIdempotentRetryAfterAmbiguousFailure(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Tenant: "alice", N: 64, Block: 32, Seed: 9, IdempotencyKey: "ambiguous-1"}

	sA, err := New(Config{JournalDir: dir, MaxRunning: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sA.Drain)
	if _, err := sA.Recover(); err != nil {
		t.Fatal(err)
	}
	// Simulate the SIGKILL window: only the admission record reaches the
	// disk; everything after (dispatch, checkpoints, terminal) is lost
	// with the process.
	sA.jl.failAfter = 1
	jA, err := sA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	stA := waitTerminal(t, sA, jA.ID)
	if stA.State != StateDone {
		t.Fatalf("first run ended %s: %s", stA.State, stA.Error)
	}
	// The process dies here; the client never saw a response.

	sB, err := New(Config{JournalDir: dir, MaxRunning: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sB.Drain)
	rs, err := sB.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Requeued != 1 {
		t.Fatalf("recovery stats %+v, want exactly the one admitted job requeued", rs)
	}
	// The client retries the same key + spec: must dedup to the original
	// job ID, and the eventual checksum must match the lost run's.
	jB, err := sB.Submit(spec)
	if err != nil {
		t.Fatalf("retried submit: %v", err)
	}
	if jB.ID != jA.ID {
		t.Fatalf("retried submit got job %s, want original %s", jB.ID, jA.ID)
	}
	if got := len(sB.Jobs()); got != 1 {
		t.Fatalf("%d jobs after retry, want 1 — the retry double-ran", got)
	}
	stB := waitTerminal(t, sB, jB.ID)
	if stB.State != StateDone || stB.Checksum != stA.Checksum {
		t.Fatalf("recovered run: state %s checksum %s, want done/%s", stB.State, stB.Checksum, stA.Checksum)
	}
}

// TestResultBytesStableAcrossRestart asserts the durable-result
// contract over the HTTP surface: GET /jobs/{id}/result for a job whose
// terminal record is journaled returns byte-identical JSON before and
// after a crash+restart, and a duplicate keyed POST returns the same
// job with the same result bytes.
func TestResultBytesStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	sA, err := New(Config{JournalDir: dir, MaxRunning: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sA.Drain)
	if _, err := sA.Recover(); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sA.Handler())
	defer tsA.Close()

	body := `{"tenant":"alice","n":64,"block":32,"seed":5,"idempotency_key":"stable-1"}`
	var st JobStatus
	postJSON(t, tsA.URL+"/jobs", body, http.StatusAccepted, &st)
	waitTerminal(t, sA, st.ID)
	bytesA := getBody(t, tsA.URL+"/jobs/"+st.ID+"/result", http.StatusOK)

	// Duplicate keyed POST on the SAME server: same job, zero new work.
	var st2 JobStatus
	postJSON(t, tsA.URL+"/jobs", body, http.StatusAccepted, &st2)
	if st2.ID != st.ID {
		t.Fatalf("duplicate POST admitted %s, want original %s", st2.ID, st.ID)
	}
	if n := len(sA.Jobs()); n != 1 {
		t.Fatalf("%d jobs after duplicate POST, want 1", n)
	}

	// Same key, DIFFERENT spec: 409, nothing admitted.
	var errBody map[string]string
	postJSON(t, tsA.URL+"/jobs", `{"tenant":"alice","n":64,"block":32,"seed":6,"idempotency_key":"stable-1"}`,
		http.StatusConflict, &errBody)
	if n := len(sA.Jobs()); n != 1 {
		t.Fatalf("%d jobs after conflicting POST, want 1", n)
	}

	// Crash (terminal record IS journaled) and restart.
	sB, err := New(Config{JournalDir: dir, MaxRunning: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sB.Drain)
	rs, err := sB.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Terminal != 1 {
		t.Fatalf("recovery stats %+v, want 1 terminal job replayed", rs)
	}
	tsB := httptest.NewServer(sB.Handler())
	defer tsB.Close()
	bytesB := getBody(t, tsB.URL+"/jobs/"+st.ID+"/result", http.StatusOK)
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatalf("result bytes changed across restart:\n before: %s\n after:  %s", bytesA, bytesB)
	}
	// And the retried keyed POST still dedups to the terminal job.
	var st3 JobStatus
	postJSON(t, tsB.URL+"/jobs", body, http.StatusAccepted, &st3)
	if st3.ID != st.ID || len(sB.Jobs()) != 1 {
		t.Fatalf("post-restart retry admitted %s (%d jobs), want %s (1 job)", st3.ID, len(sB.Jobs()), st.ID)
	}
}

// TestRecoverRequeueOrder crashes a server with a full queue and
// asserts the restart dispatches the recovered jobs in the original
// order: priority descending, FIFO within a priority — with the
// mid-run job recovered too.
func TestRecoverRequeueOrder(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	entered := make(chan struct{})

	cfgA := Config{JournalDir: dir, MaxRunning: 1}
	cfgA.hook = func(j *Job) {
		if j.Spec.Tenant == "blocker" {
			close(entered)
			<-block
		}
	}
	sA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	// Unblock the abandoned server's parked goroutine at the end and wait
	// for it to finish writing before TempDir cleanup sweeps the dir.
	t.Cleanup(func() { close(block); sA.Drain() })
	if _, err := sA.Recover(); err != nil {
		t.Fatal(err)
	}
	// The blocker occupies the single run slot; the rest queue up.
	submits := []JobSpec{
		{Tenant: "blocker", N: 64, Block: 32, Seed: 1},
		{Tenant: "low", N: 64, Block: 32, Seed: 2, Priority: 1},
		{Tenant: "mid", N: 64, Block: 32, Seed: 3, Priority: 5},
		{Tenant: "high", N: 64, Block: 32, Seed: 4, Priority: 9},
	}
	for i := range submits {
		if _, err := sA.Submit(submits[i]); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Wait until the blocker's dispatched record is durable (the hook
	// runs after the journal append), then SIGKILL: sA is abandoned
	// mid-flight, its goroutine parked on the hook channel until cleanup.
	<-entered

	var orderMu sync.Mutex
	var order []string
	cfgB := Config{JournalDir: dir, MaxRunning: 1}
	cfgB.hook = func(j *Job) {
		orderMu.Lock()
		order = append(order, j.Spec.Tenant)
		orderMu.Unlock()
	}
	sB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sB.Drain)
	rs, err := sB.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Resumed != 1 || rs.Requeued != 3 {
		t.Fatalf("recovery stats %+v, want 1 resumed + 3 requeued", rs)
	}
	for _, st := range sB.Jobs() {
		fin := waitTerminal(t, sB, st.ID)
		if fin.State != StateDone {
			t.Fatalf("recovered job %s ended %s: %s", st.ID, fin.State, fin.Error)
		}
	}
	orderMu.Lock()
	got := fmt.Sprint(order)
	orderMu.Unlock()
	// The blocker was caught mid-run at priority 0 — it re-enters the
	// queue and dispatches LAST, after the queued jobs in priority order.
	if want := "[high mid low blocker]"; got != want {
		t.Fatalf("recovered dispatch order %s, want %s", got, want)
	}
}

// TestQuarantineAfterRepeatedCrashes hand-builds the journal of a job
// that two previous server generations already caught mid-run, then
// restarts: the third strike must quarantine it (terminal state, flight
// dump attached) instead of crash-looping, the quarantine must survive
// a FURTHER restart, and healthy siblings must keep running.
func TestQuarantineAfterRepeatedCrashes(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Tenant: "poison", N: 64, Block: 32, Seed: 7}
	if err := spec.validate(); err != nil {
		t.Fatal(err)
	}
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []journalRecord{
		{Type: recAdmitted, Job: "job-1", Seq: 1, Spec: &spec},
		{Type: recDispatched, Job: "job-1", Attempt: 1},
		{Type: recRecovered, Job: "job-1", Crashes: 2}, // two prior generations struck out
		{Type: recDispatched, Job: "job-1", Attempt: 2},
	} {
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jl.close()

	s, err := New(Config{JournalDir: dir, MaxRunning: 1, PoisonThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	rs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Quarantined != 1 || rs.Resumed != 0 {
		t.Fatalf("recovery stats %+v, want exactly 1 quarantined", rs)
	}
	st, ok := s.Status("job-1")
	if !ok || st.State != StateQuarantined {
		t.Fatalf("job-1 state %s, want quarantined", st.State)
	}
	if st.Crashes != 3 {
		t.Fatalf("job-1 crashes %d, want 3", st.Crashes)
	}
	if st.Flight == "" {
		t.Fatal("quarantined job has no flight-recorder dump attached")
	}
	if _, err := os.Stat(st.Flight); err != nil {
		t.Fatalf("flight dump %s: %v", st.Flight, err)
	}
	// A healthy sibling still runs to completion on the same server.
	j, err := s.Submit(JobSpec{Tenant: "healthy", N: 64, Block: 32, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, s, j.ID); fin.State != StateDone {
		t.Fatalf("healthy sibling ended %s: %s", fin.State, fin.Error)
	}

	// The quarantine is terminal across restarts: no more strikes, no
	// more dispatches.
	s2, err := New(Config{JournalDir: dir, MaxRunning: 1, PoisonThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Drain)
	rs2, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Quarantined != 0 || rs2.Terminal != 2 {
		t.Fatalf("second recovery stats %+v, want 2 terminal (quarantined job replayed as terminal)", rs2)
	}
	st2, _ := s2.Status("job-1")
	if st2.State != StateQuarantined {
		t.Fatalf("job-1 after second restart: state %s, want quarantined", st2.State)
	}
}

// TestReadinessGating covers the liveness/readiness split: /readyz is
// 503 while the journal is replaying and while draining, 200 in
// between; /healthz stays 200 throughout; Submit before Recover is a
// not_ready rejection (503 over HTTP).
func TestReadinessGating(t *testing.T) {
	dir := t.TempDir()
	// Seed a journal so Recover has real replay work.
	jl, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Tenant: "alice", N: 64, Block: 32, Seed: 3}
	if err := spec.validate(); err != nil {
		t.Fatal(err)
	}
	if err := jl.append(journalRecord{Type: recAdmitted, Job: "job-1", Seq: 1, Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	jl.close()

	var ts *httptest.Server
	var readyDuring, liveDuring int
	cfg := Config{JournalDir: dir, MaxRunning: 1}
	cfg.replayHook = func() {
		// Mid-replay: not ready, but alive.
		readyDuring = getStatus(t, ts.URL+"/readyz")
		liveDuring = getStatus(t, ts.URL+"/healthz")
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts = httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before Recover: submissions bounce with 503, liveness is up.
	var errBody map[string]string
	postJSON(t, ts.URL+"/jobs", `{"n":64,"block":32}`, http.StatusServiceUnavailable, &errBody)
	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before replay: %d, want 503", got)
	}
	if got := getStatus(t, ts.URL+"/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz before replay: %d, want 200", got)
	}

	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if readyDuring != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during replay: %d, want 503", readyDuring)
	}
	if liveDuring != http.StatusOK {
		t.Fatalf("/healthz during replay: %d, want 200", liveDuring)
	}
	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after replay: %d, want 200", got)
	}
	waitTerminal(t, s, "job-1")

	s.Drain()
	if got := getStatus(t, ts.URL+"/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while drained: %d, want 503", got)
	}
	if got := getStatus(t, ts.URL+"/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz while drained: %d, want 200", got)
	}
}

// postJSON posts a body and decodes the response, asserting the status.
func postJSON(t *testing.T, url, body string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: bad JSON %s: %v", url, raw, err)
		}
	}
}

// getBody GETs a URL, asserts the status and returns the raw bytes.
func getBody(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, raw)
	}
	return raw
}

// getStatus GETs a URL and returns only the status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
