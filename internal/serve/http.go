package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// Handler returns the service's HTTP mux:
//
//	POST /jobs             submit a JobSpec; 202 with the job's status,
//	                       400 on an invalid spec, 429 + Retry-After
//	                       when the queue or a tenant quota is full,
//	                       503 while draining
//	GET  /jobs             list all jobs, newest first
//	GET  /jobs/{id}        one job's status
//	POST /jobs/{id}/cancel cancel a queued or running job
//
// plus the observer's scrape endpoints (/metrics, /healthz, /events,
// /debug/critpath) on the same mux, so one port serves job control,
// per-tenant counters and engine metrics together.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	obsH := s.obsv.Handler()
	for _, p := range []string{"/healthz", "/metrics", "/events", "/debug/critpath"} {
		mux.Handle(p, obsH)
	}

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad JobSpec: %v", err))
			return
		}
		j, err := s.Submit(spec)
		if err != nil {
			var rej *errRejected
			if errors.As(err, &rej) {
				if rej.reason == "draining" {
					writeJSONError(w, http.StatusServiceUnavailable, "server draining")
					return
				}
				// Overloaded, not broken: tell the client when to come
				// back instead of queueing unboundedly. The hint scales
				// with the backlog so retries spread out under load.
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
				writeJSONError(w, http.StatusTooManyRequests, rej.reason)
				return
			}
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		st, _ := s.Status(j.ID)
		writeJSON(w, http.StatusAccepted, st)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("id"))
		if !ok {
			writeJSONError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Cancel(id, nil); err != nil {
			st, ok := s.Status(id)
			if !ok {
				writeJSONError(w, http.StatusNotFound, "no such job")
				return
			}
			// Already finished: report the conflict with the final state.
			writeJSON(w, http.StatusConflict, st)
			return
		}
		st, _ := s.Status(id)
		writeJSON(w, http.StatusAccepted, st)
	})

	return mux
}

// retryAfterSeconds estimates when an admission retry could succeed:
// one second per queued job ahead, at least one.
func (s *Server) retryAfterSeconds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.queue); n > 1 {
		return n
	}
	return 1
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeJSONError renders {"error": msg}.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// HTTPServer is a running job-service listener.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe binds addr (":0" for an ephemeral port) and serves the
// job service in the background. The bind is synchronous so callers see
// bad addresses immediately.
func (s *Server) ListenAndServe(addr string) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &HTTPServer{ln: ln, srv: srv}, nil
}

// Addr reports the bound address.
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Close shuts the listener down without draining jobs — call
// Server.Drain first for a graceful stop.
func (h *HTTPServer) Close() error { return h.srv.Close() }
