package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// Handler returns the service's HTTP mux:
//
//	POST /jobs             submit a JobSpec; 202 with the job's status,
//	                       400 on an invalid spec, 409 on an
//	                       idempotency-key conflict, 429 + Retry-After
//	                       when the queue or a tenant quota is full,
//	                       500 on a journal write failure, 503 while
//	                       draining or before journal replay finishes
//	GET  /jobs             list all jobs, newest first
//	GET  /jobs/{id}        one job's status
//	GET  /jobs/{id}/result a terminal job's persisted result (409 with
//	                       the live status while still in flight) —
//	                       byte-identical across server restarts
//	POST /jobs/{id}/cancel cancel a queued or running job
//	GET  /readyz           readiness: 200 once journal replay is done
//	                       and until drain begins, 503 otherwise —
//	                       distinct from /healthz liveness, which stays
//	                       200 whenever the process can answer at all
//
// plus the observer's scrape endpoints (/metrics, /healthz, /events,
// /debug/critpath) on the same mux, so one port serves job control,
// per-tenant counters and engine metrics together.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	obsH := s.obsv.Handler()
	for _, p := range []string{"/healthz", "/metrics", "/events", "/debug/critpath"} {
		mux.Handle(p, obsH)
	}

	// Liveness vs readiness: /healthz (above, from the observer) answers
	// "is the process alive" and must stay 200 during replay and drain so
	// orchestrators don't kill a server that is busy recovering; /readyz
	// answers "should traffic be routed here" and gates both windows.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch {
		case s.Draining():
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
		case !s.Ready():
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not-ready: journal replay in progress")
		default:
			fmt.Fprintln(w, "ready")
		}
	})

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad JobSpec: %v", err))
			return
		}
		j, err := s.Submit(spec)
		if err != nil {
			var rej *errRejected
			var conflict *errIdemConflict
			var internal *errInternal
			switch {
			case errors.As(err, &conflict):
				// Same key, different spec: the client is not retrying,
				// it is trying to reuse a key. Refuse loudly.
				writeJSONError(w, http.StatusConflict, conflict.Error())
			case errors.As(err, &internal):
				writeJSONError(w, http.StatusInternalServerError, internal.Error())
			case errors.As(err, &rej) && (rej.reason == "draining" || rej.reason == "not_ready"):
				writeJSONError(w, http.StatusServiceUnavailable, rej.reason)
			case errors.As(err, &rej):
				// Overloaded, not broken: tell the client when to come
				// back instead of queueing unboundedly. The hint scales
				// with the backlog so retries spread out under load.
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
				writeJSONError(w, http.StatusTooManyRequests, rej.reason)
			default:
				writeJSONError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		st, _ := s.Status(j.ID)
		writeJSON(w, http.StatusAccepted, st)
	})

	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, terminal, found := s.Result(r.PathValue("id"))
		if !found {
			writeJSONError(w, http.StatusNotFound, "no such job")
			return
		}
		if !terminal {
			// In flight: the result does not exist yet. 409 with the live
			// state tells the client to poll, not to resubmit.
			writeJSON(w, http.StatusConflict, res)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Status(r.PathValue("id"))
		if !ok {
			writeJSONError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := s.Cancel(id, nil); err != nil {
			st, ok := s.Status(id)
			if !ok {
				writeJSONError(w, http.StatusNotFound, "no such job")
				return
			}
			// Already finished: report the conflict with the final state.
			writeJSON(w, http.StatusConflict, st)
			return
		}
		st, _ := s.Status(id)
		writeJSON(w, http.StatusAccepted, st)
	})

	return mux
}

// retryAfterSeconds estimates when an admission retry could succeed:
// one second per queued job ahead, at least one.
func (s *Server) retryAfterSeconds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.queue); n > 1 {
		return n
	}
	return 1
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeJSONError renders {"error": msg}.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// HTTPServer is a running job-service listener.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe binds addr (":0" for an ephemeral port) and serves the
// job service in the background. The bind is synchronous so callers see
// bad addresses immediately.
func (s *Server) ListenAndServe(addr string) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &HTTPServer{ln: ln, srv: srv}, nil
}

// Addr reports the bound address.
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Close shuts the listener down without draining jobs — call
// Server.Drain first for a graceful stop.
func (h *HTTPServer) Close() error { return h.srv.Close() }
