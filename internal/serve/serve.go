// Package serve is the multi-tenant DP job service behind `dpspark
// serve`: a long-lived server that admits many concurrent jobs (rule,
// driver, shape, seed, priority, deadline) and schedules their stages
// onto ONE shared simulated cluster via rdd.Substrate — the
// cluster-manager role Spark delegates to YARN/Mesos/K8s, moved into
// the engine.
//
// Robustness is the point of the package:
//
//   - Admission control: the job queue is bounded; over-capacity and
//     over-quota submissions are rejected with 429 + Retry-After
//     instead of queueing unboundedly, with zero effect on in-flight
//     jobs.
//   - Tenant isolation: every job gets its own rdd.Context (lineage,
//     shuffle state, fault plan, virtual clock), so one tenant's
//     injected faults recover through the usual machinery without
//     perturbing any other tenant's result bits or modelled time.
//   - Overload degradation: per-job panic containment (a failing job
//     reports an error result; the server and sibling jobs keep
//     running), deadlines enforced by cooperative cancellation, and
//     graceful drain on SIGTERM (stop admitting, let in-flight jobs
//     finish within a grace window, then cancel what remains and dump
//     the flight recorder).
//   - Crash safety: with Config.JournalDir set, every lifecycle
//     transition is journaled (write-ahead, CRC32C-framed, fsynced —
//     see journal.go) and every job checkpoints durably under the
//     journal directory. A server killed at ANY point — SIGKILL
//     included — restarts via Recover: terminal jobs serve their
//     persisted results, queued jobs re-enter the queue in the original
//     priority/FIFO order, and jobs caught mid-run resume from their
//     latest durable checkpoint (or re-run cleanly from the journaled
//     spec), bit-identical either way. Idempotency keys make retried
//     submissions after an ambiguous failure return the original job
//     instead of double-running; bounded per-job retries absorb engine
//     errors; and a job that panics or crashes the server repeatedly is
//     quarantined with a flight-recorder dump instead of wedging the
//     service in a crash loop.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/matrix"
	"dpspark/internal/obs"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// Config configures the job service.
type Config struct {
	// Cluster is the shared simulated cluster every job's stages are
	// scheduled onto. Default: cluster.LocalN(4, 2).
	Cluster *cluster.Cluster
	// KernelThreads is the shared per-node kernel pool width (see
	// rdd.SubstrateConf). Default 1: serial kernels.
	KernelThreads int
	// RealParallelism bounds the real task-execution slots shared by
	// every running job. Default: runtime.NumCPU() (via the substrate).
	RealParallelism int
	// MaxQueue bounds the admission queue: submissions arriving with
	// MaxQueue jobs already queued are rejected with 429. Default 16;
	// negative values are rejected.
	MaxQueue int
	// MaxRunning bounds concurrently executing jobs. Default 2;
	// negative values are rejected.
	MaxRunning int
	// TenantRunning caps one tenant's concurrently running jobs (its
	// share of MaxRunning). Default: MaxRunning — no per-tenant cap.
	TenantRunning int
	// TenantPending caps one tenant's queued jobs; submissions beyond
	// it are rejected with 429 even while the global queue has room.
	// Default: MaxQueue — no per-tenant cap.
	TenantPending int
	// DrainGrace is how long Drain waits for in-flight jobs to finish
	// before cancelling them. Default 30s; negative values are rejected.
	DrainGrace time.Duration
	// Observer receives every job's metrics and flight events (plus the
	// server's per-tenant job counters), so one /metrics endpoint serves
	// the whole process. Default: a fresh observer.
	Observer *obs.Observer

	// JournalDir, when non-empty, turns on crash safety: the job journal
	// lives at JournalDir/journal.log, per-job durable checkpoints under
	// JournalDir/ckpt/<jobID>, and the server starts NOT ready — call
	// Recover to replay the journal before serving. Empty: in-memory
	// only (a crash loses all job state), ready immediately.
	JournalDir string
	// MaxAttempts bounds run attempts per job on engine errors (a
	// deadline or client cancel never retries). Default 1 — no retries;
	// JobSpec.MaxAttempts overrides per job.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry, doubling each
	// further attempt (capped at 1s). Default 50ms.
	RetryBackoff time.Duration
	// PoisonThreshold quarantines a job once its panics plus the server
	// crashes it was caught mid-run in reach this count: the job lands in
	// the terminal "quarantined" state with a flight-recorder dump
	// attached instead of crash-looping the service. Default 3.
	PoisonThreshold int

	// hook, when set, runs inside each job's goroutine right before the
	// engine run — the test seam for panic containment.
	hook func(j *Job)
	// replayHook, when set, runs inside Recover after the journal has
	// been replayed but before the server flips ready — the test seam
	// for readiness gating.
	replayHook func()
}

// normalize validates and defaults the Config in place — the single
// validation site, like rdd.Conf.normalize.
func (cfg *Config) normalize() error {
	if cfg.MaxQueue < 0 {
		return fmt.Errorf("serve: Config.MaxQueue must be ≥ 0 (0 means the default 16), got %d", cfg.MaxQueue)
	}
	if cfg.MaxRunning < 0 {
		return fmt.Errorf("serve: Config.MaxRunning must be ≥ 0 (0 means the default 2), got %d", cfg.MaxRunning)
	}
	if cfg.TenantRunning < 0 {
		return fmt.Errorf("serve: Config.TenantRunning must be ≥ 0 (0 means no per-tenant cap), got %d", cfg.TenantRunning)
	}
	if cfg.TenantPending < 0 {
		return fmt.Errorf("serve: Config.TenantPending must be ≥ 0 (0 means no per-tenant cap), got %d", cfg.TenantPending)
	}
	if cfg.DrainGrace < 0 {
		return fmt.Errorf("serve: Config.DrainGrace must be ≥ 0 (0 means the default 30s), got %v", cfg.DrainGrace)
	}
	if cfg.KernelThreads < 0 {
		return fmt.Errorf("serve: Config.KernelThreads must be ≥ 0 (0 means serial kernels), got %d", cfg.KernelThreads)
	}
	if cfg.RealParallelism < 0 {
		return fmt.Errorf("serve: Config.RealParallelism must be ≥ 0 (0 means NumCPU), got %d", cfg.RealParallelism)
	}
	if cfg.MaxAttempts < 0 || cfg.MaxAttempts > 16 {
		return fmt.Errorf("serve: Config.MaxAttempts must be in [0, 16] (0 means the default 1), got %d", cfg.MaxAttempts)
	}
	if cfg.RetryBackoff < 0 {
		return fmt.Errorf("serve: Config.RetryBackoff must be ≥ 0 (0 means the default 50ms), got %v", cfg.RetryBackoff)
	}
	if cfg.PoisonThreshold < 0 {
		return fmt.Errorf("serve: Config.PoisonThreshold must be ≥ 0 (0 means the default 3), got %d", cfg.PoisonThreshold)
	}
	if cfg.Cluster == nil {
		cfg.Cluster = cluster.LocalN(4, 2)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 16
	}
	if cfg.MaxRunning == 0 {
		cfg.MaxRunning = 2
	}
	if cfg.TenantRunning == 0 || cfg.TenantRunning > cfg.MaxRunning {
		cfg.TenantRunning = cfg.MaxRunning
	}
	if cfg.TenantPending == 0 || cfg.TenantPending > cfg.MaxQueue {
		cfg.TenantPending = cfg.MaxQueue
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 30 * time.Second
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 1
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.PoisonThreshold == 0 {
		cfg.PoisonThreshold = 3
	}
	if cfg.Observer == nil {
		cfg.Observer = obs.New()
	}
	return nil
}

// JobSpec is the submission payload.
type JobSpec struct {
	// Tenant attributes the job for quotas and metrics. Default "default".
	Tenant string `json:"tenant"`
	// Bench selects the update rule: "fw" (min-plus closure) or "ge"
	// (Gaussian elimination). Default "fw".
	Bench string `json:"bench"`
	// Driver selects the engine driver: "im" or "cb". Default "im".
	Driver string `json:"driver"`
	// N and Block are the matrix size and tile size. Defaults 128 / 32.
	N     int `json:"n"`
	Block int `json:"block"`
	// Seed deterministically generates the input matrix, so the same
	// (bench, n, block, seed) job always produces the same checksum.
	Seed int64 `json:"seed"`
	// Priority orders this job against others contending for executor
	// slots and the run queue: higher wins, FIFO within a priority.
	Priority int `json:"priority"`
	// DeadlineMS, when > 0, cancels the job that many real milliseconds
	// after it is admitted (cooperative: tasks finish their current
	// attempt).
	DeadlineMS int64 `json:"deadline_ms"`
	// ChaosSeed, with ChaosCrashes > 0, injects a seeded fault plan
	// (executor crashes, 2 stragglers, 1 staging-disk loss — the chaos
	// subcommand's mix) into THIS job only; recovery must not perturb
	// sibling jobs.
	ChaosSeed    int64 `json:"chaos_seed"`
	ChaosCrashes int   `json:"chaos_crashes"`
	// ChaosGCPauses, when > 0, additionally injects that many seeded
	// stop-the-world GC pauses and turns on the heartbeat failure
	// detector for THIS job (HeartbeatMS lease interval, dead after two
	// missed leases). Pauses outliving the detection latency falsely
	// declare the executor dead; the job must recover through
	// resubmission with the zombie attempt's commits fenced.
	ChaosGCPauses int `json:"chaos_gcpauses"`
	// HeartbeatMS is the detector's lease interval in virtual
	// milliseconds. Default 2000 when ChaosGCPauses > 0; 0 otherwise
	// (detector off, instant failure detection).
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// IdempotencyKey, when non-empty, makes admission idempotent: a
	// later submission with the same key and an equal spec returns the
	// ORIGINAL job (same ID, same eventual result) instead of admitting
	// a duplicate — the safe client response to an ambiguous failure
	// (timeout, connection drop, server crash after the journal fsync).
	// The same key with a DIFFERENT spec is a conflict (HTTP 409). Keys
	// survive restarts through the journal.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// MaxAttempts overrides Config.MaxAttempts for this job: the run is
	// retried on engine errors up to this many attempts with exponential
	// backoff. 0 means the server default; capped at 16.
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// validate checks and defaults a submitted spec.
func (sp *JobSpec) validate() error {
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if sp.Bench == "" {
		sp.Bench = "fw"
	}
	if sp.Bench != "fw" && sp.Bench != "ge" {
		return fmt.Errorf("serve: unknown bench %q (want fw or ge)", sp.Bench)
	}
	if sp.Driver == "" {
		sp.Driver = "im"
	}
	if sp.Driver != "im" && sp.Driver != "cb" {
		return fmt.Errorf("serve: unknown driver %q (want im or cb)", sp.Driver)
	}
	if sp.N == 0 {
		sp.N = 128
	}
	if sp.Block == 0 {
		sp.Block = 32
	}
	if sp.N < 1 || sp.Block < 1 || sp.Block > sp.N {
		return fmt.Errorf("serve: invalid shape n=%d block=%d (need 1 ≤ block ≤ n)", sp.N, sp.Block)
	}
	if sp.N > 4096 {
		return fmt.Errorf("serve: n=%d exceeds the serving cap 4096 — submit a batch run instead", sp.N)
	}
	if sp.DeadlineMS < 0 {
		return fmt.Errorf("serve: deadline_ms must be ≥ 0, got %d", sp.DeadlineMS)
	}
	if sp.ChaosCrashes < 0 {
		return fmt.Errorf("serve: chaos_crashes must be ≥ 0, got %d", sp.ChaosCrashes)
	}
	if sp.ChaosGCPauses < 0 {
		return fmt.Errorf("serve: chaos_gcpauses must be ≥ 0, got %d", sp.ChaosGCPauses)
	}
	if sp.HeartbeatMS < 0 {
		return fmt.Errorf("serve: heartbeat_ms must be ≥ 0, got %d", sp.HeartbeatMS)
	}
	if sp.ChaosGCPauses > 0 && sp.HeartbeatMS == 0 {
		sp.HeartbeatMS = 2000 // a GC-pause plan needs the detector on
	}
	if len(sp.IdempotencyKey) > 256 {
		return fmt.Errorf("serve: idempotency_key longer than 256 bytes")
	}
	if sp.MaxAttempts < 0 || sp.MaxAttempts > 16 {
		return fmt.Errorf("serve: max_attempts must be in [0, 16] (0 means the server default), got %d", sp.MaxAttempts)
	}
	return nil
}

// rule resolves the spec's semiring rule.
func (sp *JobSpec) rule() semiring.Rule {
	if sp.Bench == "ge" {
		return semiring.NewGaussian()
	}
	return semiring.NewFloydWarshall()
}

// driverKind resolves the spec's driver.
func (sp *JobSpec) driverKind() core.DriverKind {
	if sp.Driver == "cb" {
		return core.CB
	}
	return core.IM
}

// JobState is a job's lifecycle position.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
	// StateQuarantined is the poison-job terminal state: the job
	// panicked or was caught mid-run across server crashes
	// Config.PoisonThreshold times, so the server stopped retrying it
	// and attached a flight-recorder dump for diagnosis.
	StateQuarantined JobState = "quarantined"
)

// terminal reports whether a state is final.
func (st JobState) terminal() bool {
	return st != StateQueued && st != StateRunning
}

// Job is one admitted job. All mutable fields are guarded by the
// server's mu.
type Job struct {
	ID   string
	Spec JobSpec

	state     JobState
	seq       uint64
	submitted time.Time
	started   time.Time
	finished  time.Time

	// ctx is the job's engine context, set once the job starts; cancel
	// requests arriving earlier are remembered in cancelCause.
	ctx         *rdd.Context
	cancelCause error

	// attempts counts dispatched run attempts; panics counts in-process
	// panics; crashes counts server crashes that caught the job mid-run
	// (replayed from the journal). panics+crashes reaching the poison
	// threshold quarantines the job.
	attempts int
	panics   int
	crashes  int
	// flightDump is the flight-recorder dump attached at quarantine.
	flightDump string

	checksum uint64
	modelled float64 // virtual seconds
	errMsg   string
}

// errServerDraining is the cancellation cause drain applies to jobs it
// cannot let finish.
var errServerDraining = fmt.Errorf("server draining: %w", rdd.ErrJobCanceled)

// errDeadline marks deadline cancellations (wraps rdd.ErrJobCanceled so
// the engine treats it as a cancel; the distinct message reaches the
// job's error field).
func errDeadline(d time.Duration) error {
	return fmt.Errorf("deadline %v exceeded: %w", d, rdd.ErrJobCanceled)
}

// Server is the job service. Create with New, mount Handler on an HTTP
// server, and Drain before exit.
type Server struct {
	cfg  Config
	sub  *rdd.Substrate
	obsv *obs.Observer

	// jl is the write-ahead job journal (nil without JournalDir).
	jl *journal

	mu            sync.Mutex
	jobs          map[string]*Job
	queue         []*Job // admitted, not yet running
	idem          map[string]*Job
	seq           uint64
	running       int
	tenantRunning map[string]int
	tenantPending map[string]int
	draining      bool
	ready         bool
	wg            sync.WaitGroup

	queuedGauge  *obs.Gauge
	runningGauge *obs.Gauge
}

// New builds a server over one shared substrate.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sub, err := rdd.NewSubstrate(rdd.SubstrateConf{
		Cluster:         cfg.Cluster,
		KernelThreads:   cfg.KernelThreads,
		RealParallelism: cfg.RealParallelism,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:           cfg,
		sub:           sub,
		obsv:          cfg.Observer,
		jobs:          make(map[string]*Job),
		idem:          make(map[string]*Job),
		tenantRunning: make(map[string]int),
		tenantPending: make(map[string]int),
		// A journal-backed server starts NOT ready: Recover must replay
		// the journal first, so /readyz gates traffic until then.
		ready: cfg.JournalDir == "",
	}
	if cfg.JournalDir != "" {
		jl, err := openJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.jl = jl
	}
	s.queuedGauge = s.obsv.Metrics().Gauge("dpspark_jobs_queued", nil)
	s.runningGauge = s.obsv.Metrics().Gauge("dpspark_jobs_running", nil)
	return s, nil
}

// Ready reports whether the server is accepting jobs: true once any
// journal replay has finished and until Drain begins.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ready && !s.draining
}

// Observer returns the server's observability sink (shared with every
// job's engine context).
func (s *Server) Observer() *obs.Observer { return s.obsv }

// jobCounter resolves one of the per-tenant job counters.
func (s *Server) jobCounter(outcome, tenant string) *obs.Counter {
	return s.obsv.Metrics().Counter("dpspark_jobs_"+outcome+"_total", obs.Labels{"tenant": tenant})
}

// rejectedCounter carries the rejection reason alongside the tenant.
func (s *Server) rejectedCounter(tenant, reason string) *obs.Counter {
	return s.obsv.Metrics().Counter("dpspark_jobs_rejected_total", obs.Labels{"tenant": tenant, "reason": reason})
}

// errRejected is returned by Submit for admission-control rejections;
// the HTTP layer maps it to 429 (or 503 while draining or before
// journal replay has finished).
type errRejected struct {
	reason string // "queue_full" | "tenant_quota" | "draining" | "not_ready"
}

func (e *errRejected) Error() string { return "serve: rejected: " + e.reason }

// errIdemConflict is returned by Submit when an idempotency key is
// reused with a different spec; the HTTP layer maps it to 409.
type errIdemConflict struct {
	key string
	job string // the job holding the key
}

func (e *errIdemConflict) Error() string {
	return fmt.Sprintf("serve: idempotency key %q already used by %s with a different spec", e.key, e.job)
}

// errInternal wraps server-side failures (journal write errors) the
// HTTP layer maps to 500 — the ambiguous-outcome class idempotency keys
// exist for.
type errInternal struct{ err error }

func (e *errInternal) Error() string { return e.err.Error() }
func (e *errInternal) Unwrap() error { return e.err }

// Submit validates, admits and enqueues a job, returning its ID. A
// *errRejected error means admission control turned the job away (the
// queue or the tenant's pending quota is full, the server is draining,
// or journal replay has not finished) — with zero effect on admitted
// jobs. A spec whose IdempotencyKey matches a previously admitted equal
// spec returns the ORIGINAL job without admitting anything; the same
// key with a different spec is a *errIdemConflict.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ready {
		s.rejectedCounter(spec.Tenant, "not_ready").Inc()
		return nil, &errRejected{reason: "not_ready"}
	}
	if s.draining {
		s.rejectedCounter(spec.Tenant, "draining").Inc()
		return nil, &errRejected{reason: "draining"}
	}
	if spec.IdempotencyKey != "" {
		if prev, ok := s.idem[spec.IdempotencyKey]; ok {
			// Specs are flat comparable structs and both sides have been
			// validated, so equality is exact: a retried submission
			// matches, a repurposed key does not.
			if prev.Spec != spec {
				return nil, &errIdemConflict{key: spec.IdempotencyKey, job: prev.ID}
			}
			s.jobCounter("deduped", spec.Tenant).Inc()
			return prev, nil
		}
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.rejectedCounter(spec.Tenant, "queue_full").Inc()
		return nil, &errRejected{reason: "queue_full"}
	}
	if s.tenantPending[spec.Tenant] >= s.cfg.TenantPending {
		s.rejectedCounter(spec.Tenant, "tenant_quota").Inc()
		return nil, &errRejected{reason: "tenant_quota"}
	}
	j := &Job{
		ID:        fmt.Sprintf("job-%d", s.seq+1),
		Spec:      spec,
		state:     StateQueued,
		seq:       s.seq + 1,
		submitted: time.Now(),
	}
	if s.jl != nil {
		// Write-ahead: the admission record (with the full spec) must be
		// durable BEFORE the job becomes visible, so an admitted job can
		// always be re-run from its journaled spec after a crash.
		rec := journalRecord{Type: recAdmitted, Job: j.ID, Seq: j.seq, Spec: &j.Spec}
		if err := s.jl.append(rec); err != nil {
			return nil, &errInternal{err: err}
		}
	}
	s.seq++
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	s.tenantPending[spec.Tenant]++
	if spec.IdempotencyKey != "" {
		s.idem[spec.IdempotencyKey] = j
	}
	s.jobCounter("admitted", spec.Tenant).Inc()
	s.obsv.Flight().Record(obs.Event{
		Type: obs.EvJobSubmit, Job: j.ID, Stage: -1, Part: -1, Node: -1, Shuffle: -1,
		Detail: fmt.Sprintf("%s tenant=%s %s/%s n=%d prio=%d", j.ID, spec.Tenant, spec.Bench, spec.Driver, spec.N, spec.Priority),
	})
	s.dispatchLocked()
	s.updateGaugesLocked()
	return j, nil
}

// dispatchLocked starts queued jobs while run capacity allows: highest
// priority first, FIFO within a priority, skipping tenants at their
// running cap. Caller holds mu.
func (s *Server) dispatchLocked() {
	for s.running < s.cfg.MaxRunning {
		best := -1
		for i, j := range s.queue {
			if s.tenantRunning[j.Spec.Tenant] >= s.cfg.TenantRunning {
				continue
			}
			if best < 0 || j.Spec.Priority > s.queue[best].Spec.Priority ||
				(j.Spec.Priority == s.queue[best].Spec.Priority && j.seq < s.queue[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		j := s.queue[best]
		s.queue = append(s.queue[:best], s.queue[best+1:]...)
		s.tenantPending[j.Spec.Tenant]--
		s.tenantRunning[j.Spec.Tenant]++
		s.running++
		j.state = StateRunning
		j.started = time.Now()
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// updateGaugesLocked refreshes the queue/running gauges. Caller holds mu.
func (s *Server) updateGaugesLocked() {
	s.queuedGauge.Set(float64(len(s.queue)))
	s.runningGauge.Set(float64(s.running))
}

// runJob executes one job on its own engine context mounted on the
// shared substrate, retrying bounded engine errors with exponential
// backoff. Panics anywhere in an attempt (kernel bugs, bad configs) are
// contained: below the poison threshold they retry like engine errors,
// at it the job is quarantined — either way the server and sibling jobs
// keep running.
func (s *Server) runJob(j *Job) {
	defer s.wg.Done()
	maxAttempts := j.Spec.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = s.cfg.MaxAttempts
	}
	backoff := s.cfg.RetryBackoff
	for {
		s.mu.Lock()
		j.attempts++
		attempt := j.attempts
		s.mu.Unlock()
		s.journalAppend(journalRecord{Type: recDispatched, Job: j.ID, Attempt: attempt})
		sum, modelled, err, panicked := s.attemptOnce(j)
		if panicked {
			s.mu.Lock()
			j.panics++
			strikes := j.panics + j.crashes
			s.mu.Unlock()
			if strikes >= s.cfg.PoisonThreshold {
				s.quarantineJob(j, err, true)
				return
			}
		}
		if err == nil || errors.Is(err, rdd.ErrJobCanceled) {
			s.finishJob(j, sum, modelled, err)
			return
		}
		// An engine error (or a below-threshold panic): retry while the
		// budget allows and the server is not shutting down. Panics are
		// budgeted by the poison threshold, engine errors by MaxAttempts.
		if s.Draining() || (!panicked && attempt >= maxAttempts) {
			s.finishJob(j, sum, modelled, err)
			return
		}
		s.journalAppend(journalRecord{Type: recRetry, Job: j.ID, Attempt: attempt, Error: err.Error()})
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// attemptOnce runs one attempt with panic containment.
func (s *Server) attemptOnce(j *Job) (sum uint64, modelled float64, err error, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			panicked = true
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	if s.cfg.hook != nil {
		s.cfg.hook(j)
	}
	sum, modelled, err = s.runAttempt(j)
	return
}

// runAttempt executes one engine run for j. With a journal, the run
// checkpoints durably under the job's checkpoint directory, and — when
// an intact checkpoint already exists (a crashed or retried run left
// one) — resumes from it instead of starting over; resumed bits are
// identical to an uninterrupted run's, so callers cannot tell which
// path produced a result.
func (s *Server) runAttempt(j *Job) (uint64, float64, error) {
	spec := j.Spec
	var plan *rdd.FaultPlan
	r := (spec.N + spec.Block - 1) / spec.Block
	if spec.ChaosCrashes > 0 {
		// The chaos subcommand's mix: crashes as requested, plus two
		// stragglers and one staging-disk loss over the planned stages.
		plan = rdd.RandomFaultPlan(spec.ChaosSeed, 4*r, s.cfg.Cluster.Nodes, spec.ChaosCrashes, 2, 1)
	}
	var heartbeat simtime.Duration
	if spec.HeartbeatMS > 0 {
		heartbeat = simtime.Duration(spec.HeartbeatMS) * simtime.Millisecond
	}
	if spec.ChaosGCPauses > 0 {
		if plan == nil {
			plan = &rdd.FaultPlan{Seed: spec.ChaosSeed}
		}
		// Seeded stop-the-world pauses; those outliving the detection
		// latency exercise false suspicion + zombie fencing in-service.
		plan = plan.WithRandomGCPauses(spec.ChaosSeed+1, 4*r, s.cfg.Cluster.Nodes, spec.ChaosGCPauses)
	}

	rule := spec.rule()

	// Resolve the resume-vs-clean decision from the disk, not the
	// journal: checkpoints are written before their journal records, so
	// after a crash the directory may be AHEAD of the journal, and a
	// missing/torn directory simply falls back to a clean re-run from
	// the journaled spec. Bits are identical either way.
	var meta *core.CheckpointMeta
	var ckptBl *matrix.Blocked
	var ckptDir string
	if s.jl != nil {
		ckptDir = s.jl.ckptDir(j.ID)
		if core.CanResume(ckptDir) {
			if m, b, err := core.LoadCheckpoint(ckptDir); err == nil {
				meta, ckptBl = m, b
			}
		}
	}
	if meta != nil &&
		(meta.N != spec.N || meta.B != spec.Block ||
			meta.Rule != rule.Name() || meta.Driver != spec.driverKind().String()) {
		// A checkpoint that does not describe THIS spec (a recycled job
		// ID, a hand-edited directory) must not poison the run — fall
		// back to the clean re-run the journaled spec guarantees.
		meta, ckptBl = nil, nil
	}

	conf := rdd.Conf{
		Substrate:         s.sub,
		Priority:          spec.Priority,
		FaultPlan:         plan,
		Observer:          s.obsv,
		HeartbeatInterval: heartbeat,
		JobLabel:          j.ID,
	}
	if meta != nil {
		// Restore the interrupted run's scheduler state so stage
		// numbering continues and already-fired fault events stay fired.
		conf.Restore = &meta.Engine
	}
	ctx := rdd.NewContext(conf)

	// Publish the context so Cancel reaches the engine, honouring a
	// cancel that raced the start.
	s.mu.Lock()
	j.ctx = ctx
	if cause := j.cancelCause; cause != nil {
		ctx.Cancel(cause)
	}
	s.mu.Unlock()

	if spec.DeadlineMS > 0 {
		// The deadline counts from admission — time spent queued behind
		// other tenants burns the budget too, so an overloaded server
		// sheds overdue queued work instead of running it late.
		d := time.Duration(spec.DeadlineMS) * time.Millisecond
		if dl := j.submitted.Add(d); time.Now().Before(dl) {
			timer := time.AfterFunc(time.Until(dl), func() { ctx.Cancel(errDeadline(d)) })
			defer timer.Stop()
		} else {
			ctx.Cancel(errDeadline(d))
		}
	}

	ccfg := core.Config{
		Rule: rule, BlockSize: spec.Block, Driver: spec.driverKind(),
	}
	if ckptDir != "" {
		ccfg.DurableDir = ckptDir
		ccfg.KeepCheckpoints = 2
		ccfg.OnCheckpoint = func(it int) {
			s.journalAppend(journalRecord{Type: recCheckpointed, Job: j.ID, Iteration: it})
		}
	}
	var out *matrix.Blocked
	var st *core.Stats
	var err error
	if meta != nil {
		// Resume pins the interrupted run's scheduling shape.
		ccfg.Partitions = meta.Partitions
		ccfg.CheckpointEvery = meta.CheckpointEvery
		out, st, err = core.Resume(ctx, meta, ckptBl, ccfg)
	} else {
		in := inputFor(rule, spec.N, spec.Seed)
		bl := matrix.Block(in, spec.Block, rule.Pad(), rule.PadDiag())
		out, st, err = core.Run(ctx, bl, ccfg)
	}
	var sum uint64
	var modelled float64
	if st != nil {
		modelled = st.Time.Seconds()
	}
	if err == nil && out != nil {
		sum = denseChecksum(out.ToDense())
	}
	return sum, modelled, err
}

// journalAppend appends a record, swallowing errors for log-only
// transitions (a failed dispatch/checkpoint record degrades recovery
// granularity, not correctness — the admission record is the one whose
// failure must fail the operation, and Submit handles that itself).
func (s *Server) journalAppend(rec journalRecord) {
	if s.jl == nil {
		return
	}
	_ = s.jl.append(rec)
}

// finishJob records a job's outcome and frees its run slot.
func (s *Server) finishJob(j *Job, sum uint64, modelled float64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = time.Now()
	j.checksum = sum
	j.modelled = modelled
	outcome := "completed"
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, rdd.ErrJobCanceled):
		j.state = StateCancelled
		j.errMsg = err.Error()
		outcome = "cancelled"
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		outcome = "failed"
	}
	s.running--
	s.tenantRunning[j.Spec.Tenant]--
	s.jobCounter(outcome, j.Spec.Tenant).Inc()
	s.obsv.Flight().Record(obs.Event{
		Type: obs.EvJobFinish, Job: j.ID, Stage: -1, Part: -1, Node: -1, Shuffle: -1,
		Detail: fmt.Sprintf("%s tenant=%s state=%s checksum=%016x", j.ID, j.Spec.Tenant, j.state, sum),
	})
	s.journalTerminalLocked(j)
	s.maybeCompactLocked()
	s.dispatchLocked()
	s.updateGaugesLocked()
}

// quarantineJob lands a poisoned job in the terminal quarantined state
// with a flight-recorder dump attached, so a job that keeps panicking
// (or keeps crashing the server) stops consuming run slots instead of
// crash-looping the service. releaseSlot is true when the job holds a
// run slot (the in-process path); Recover quarantines without one.
func (s *Server) quarantineJob(j *Job, cause error, releaseSlot bool) {
	dump := s.dumpFlightRing(j.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = time.Now()
	j.state = StateQuarantined
	j.errMsg = fmt.Sprintf("quarantined after %d panics and %d crash-restarts: %v", j.panics, j.crashes, cause)
	j.flightDump = dump
	if releaseSlot {
		s.running--
		s.tenantRunning[j.Spec.Tenant]--
	}
	s.jobCounter("quarantined", j.Spec.Tenant).Inc()
	s.obsv.Flight().Record(obs.Event{
		Type: obs.EvJobFinish, Job: j.ID, Stage: -1, Part: -1, Node: -1, Shuffle: -1,
		Detail: fmt.Sprintf("%s tenant=%s state=%s %s", j.ID, j.Spec.Tenant, j.state, j.errMsg),
	})
	s.journalTerminalLocked(j)
	if releaseSlot {
		s.dispatchLocked()
		s.updateGaugesLocked()
	}
}

// dumpFlightRing writes the current flight-recorder ring to the journal
// directory stamped with the triggering job's ID (or a caller-chosen
// tag), returning the path ("" without a journal or on error). Exported
// via DumpFlight for the serve binary's panic/fatal-exit path.
func (s *Server) dumpFlightRing(tag string) string {
	if s.jl == nil {
		return ""
	}
	path := filepath.Join(s.jl.dir, "flight-"+tag+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	if err := s.obsv.Flight().WriteJSONL(f, 0); err != nil {
		return ""
	}
	return path
}

// DumpFlight dumps the flight-recorder ring to the journal directory
// under the given tag — the serve binary calls this on a process-level
// panic or fatal exit so the last moments before death are kept next to
// the journal. Returns the written path, or "" when the server has no
// journal directory.
func (s *Server) DumpFlight(tag string) string { return s.dumpFlightRing(tag) }

// journalTerminalLocked appends a job's terminal record. Caller holds mu.
func (s *Server) journalTerminalLocked(j *Job) {
	if s.jl == nil {
		return
	}
	_ = s.jl.append(terminalRecord(j))
}

// terminalRecord renders a terminal journal record from a finished job.
func terminalRecord(j *Job) journalRecord {
	return journalRecord{
		Type: recTerminal, Job: j.ID, State: j.state,
		Checksum: fmt.Sprintf("%016x", j.checksum), Modelled: j.modelled,
		Error: j.errMsg, Flight: j.flightDump,
	}
}

// maybeCompactLocked rewrites the journal as a compact snapshot once
// enough records have accumulated: each job collapses to its admission
// plus its current position (terminal outcome, crash count, or running
// attempt), dropping per-checkpoint and per-retry chatter. Caller holds
// mu.
func (s *Server) maybeCompactLocked() {
	if s.jl == nil || s.jl.len() < journalCompactThreshold {
		return
	}
	_ = s.jl.compact(s.snapshotLocked())
}

// snapshotLocked renders the server's full job state as journal
// records, in admission order. Caller holds mu.
func (s *Server) snapshotLocked() []journalRecord {
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(i, k int) bool { return all[i].seq < all[k].seq })
	recs := make([]journalRecord, 0, 2*len(all))
	for _, j := range all {
		recs = append(recs, journalRecord{Type: recAdmitted, Job: j.ID, Seq: j.seq, Spec: &j.Spec})
		if j.crashes > 0 && !j.state.terminal() {
			recs = append(recs, journalRecord{Type: recRecovered, Job: j.ID, Crashes: j.crashes})
		}
		switch {
		case j.state.terminal():
			recs = append(recs, terminalRecord(j))
		case j.state == StateRunning:
			recs = append(recs, journalRecord{Type: recDispatched, Job: j.ID, Attempt: j.attempts})
		}
	}
	return recs
}

// Cancel cancels a job by ID: queued jobs leave the queue immediately,
// running jobs are cancelled cooperatively (their tasks finish the
// current attempt, then the driver loop stops). Finished jobs return an
// error.
func (s *Server) Cancel(id string, cause error) error {
	if cause == nil {
		cause = rdd.ErrJobCanceled
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("serve: no such job %q", id)
	}
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.tenantPending[j.Spec.Tenant]--
		j.state = StateCancelled
		j.errMsg = cause.Error()
		j.finished = time.Now()
		s.jobCounter("cancelled", j.Spec.Tenant).Inc()
		s.journalTerminalLocked(j)
		s.dispatchLocked()
		s.updateGaugesLocked()
		return nil
	case StateRunning:
		j.cancelCause = cause
		if j.ctx != nil {
			j.ctx.Cancel(cause)
		}
		return nil
	default:
		return fmt.Errorf("serve: job %s already %s", id, j.state)
	}
}

// Drain gracefully shuts the service down: stop admitting, cancel the
// queue, give running jobs DrainGrace to finish, cancel what remains,
// and wait for everything to unwind. Safe to call more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	for _, j := range s.queue {
		j.state = StateCancelled
		j.errMsg = errServerDraining.Error()
		j.finished = time.Now()
		s.tenantPending[j.Spec.Tenant]--
		s.jobCounter("cancelled", j.Spec.Tenant).Inc()
		// A graceful drain is a decided outcome, not an ambiguous crash:
		// journal the cancellation so a restart does not resurrect jobs
		// whose callers were told "cancelled".
		s.journalTerminalLocked(j)
	}
	s.queue = nil
	s.updateGaugesLocked()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainGrace):
		// Grace expired: cancel in-flight jobs cooperatively and wait
		// for them to unwind (cancellation aborts between task attempts
		// and at iteration boundaries, so this is prompt).
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.cancelCause = errServerDraining
				if j.ctx != nil {
					j.ctx.Cancel(errServerDraining)
				}
			}
		}
		s.mu.Unlock()
		<-done
	}
	if s.jl != nil {
		// Everything terminal is journaled by now; compact so the next
		// start replays a minimal snapshot, then release the handle.
		s.mu.Lock()
		_ = s.jl.compact(s.snapshotLocked())
		s.mu.Unlock()
		s.jl.close()
	}
}

// Draining reports whether Drain has been requested.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID              string   `json:"id"`
	Tenant          string   `json:"tenant"`
	State           JobState `json:"state"`
	Bench           string   `json:"bench"`
	Driver          string   `json:"driver"`
	N               int      `json:"n"`
	Block           int      `json:"block"`
	Seed            int64    `json:"seed"`
	Priority        int      `json:"priority"`
	Submitted       string   `json:"submitted,omitempty"`
	Started         string   `json:"started,omitempty"`
	Finished        string   `json:"finished,omitempty"`
	ModelledSeconds float64  `json:"modelled_seconds,omitempty"`
	Checksum        string   `json:"checksum,omitempty"`
	Error           string   `json:"error,omitempty"`
	Attempts        int      `json:"attempts,omitempty"`
	Crashes         int      `json:"crashes,omitempty"`
	Flight          string   `json:"flight,omitempty"`
}

// statusLocked renders a job. Caller holds mu.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.ID, Tenant: j.Spec.Tenant, State: j.state,
		Bench: j.Spec.Bench, Driver: j.Spec.Driver,
		N: j.Spec.N, Block: j.Spec.Block, Seed: j.Spec.Seed,
		Priority:        j.Spec.Priority,
		ModelledSeconds: j.modelled,
		Error:           j.errMsg,
		Attempts:        j.attempts,
		Crashes:         j.crashes,
		Flight:          j.flightDump,
	}
	if !j.submitted.IsZero() {
		st.Submitted = j.submitted.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state == StateDone {
		st.Checksum = fmt.Sprintf("%016x", j.checksum)
	}
	return st
}

// Status returns one job's status.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.statusLocked(), true
}

// Jobs lists every known job, newest first.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(i, k int) bool { return all[i].seq > all[k].seq })
	out := make([]JobStatus, len(all))
	for i, j := range all {
		out[i] = j.statusLocked()
	}
	return out
}

// JobResult is the durable result surface: the fields of a terminal job
// that are bit-stable across restarts. After a crash and Recover, a
// terminal job's JobResult is byte-identical to what the original
// server returned — the property idempotent clients rely on.
type JobResult struct {
	ID              string   `json:"id"`
	State           JobState `json:"state"`
	Checksum        string   `json:"checksum,omitempty"`
	ModelledSeconds float64  `json:"modelled_seconds,omitempty"`
	Error           string   `json:"error,omitempty"`
}

// Result returns a terminal job's persisted result. found reports
// whether the job exists; terminal whether it has finished (a false
// terminal means the result is not available yet, not never).
func (s *Server) Result(id string) (res JobResult, terminal, found bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobResult{}, false, false
	}
	if !j.state.terminal() {
		return JobResult{ID: j.ID, State: j.state}, false, true
	}
	res = JobResult{ID: j.ID, State: j.state, ModelledSeconds: j.modelled, Error: j.errMsg}
	if j.state == StateDone {
		res.Checksum = fmt.Sprintf("%016x", j.checksum)
	}
	return res, true, true
}

// RecoveryStats summarizes what Recover replayed.
type RecoveryStats struct {
	// Terminal jobs now serving persisted results.
	Terminal int
	// Queued jobs re-admitted in their original priority/FIFO order.
	Requeued int
	// Jobs caught mid-run, re-admitted to resume from their latest
	// durable checkpoint (or re-run cleanly from the journaled spec).
	Resumed int
	// Jobs quarantined because repeated crashes caught them mid-run.
	Quarantined int
	// Bytes of torn journal tail dropped by the replay.
	DroppedBytes int
}

// Recover replays the journal and flips the server ready. Without a
// journal it only flips readiness. With one:
//
//   - terminal jobs are rebuilt from their journaled outcome and serve
//     their persisted results (same bytes as before the crash);
//   - queued jobs re-enter the queue with their original sequence
//     numbers, so dispatch order (priority desc, FIFO within) is
//     preserved;
//   - jobs caught mid-run (a dispatched record with no terminal) gain a
//     crash strike and are re-admitted to resume from their latest
//     durable checkpoint — unless the strikes reach the poison
//     threshold, in which case they are quarantined instead of
//     crash-looping the server;
//   - idempotency keys are rebuilt, so a client retrying a submission
//     from before the crash still gets its original job back.
//
// The journal is then compacted to the recovered snapshot and dispatch
// begins. Recover must be called exactly once, before serving traffic.
func (s *Server) Recover() (RecoveryStats, error) {
	var stats RecoveryStats
	if s.jl == nil {
		s.mu.Lock()
		s.ready = true
		s.mu.Unlock()
		return stats, nil
	}
	recs, dropped, err := readJournal(s.jl.dir)
	if err != nil {
		return stats, err
	}
	stats.DroppedBytes = dropped

	s.mu.Lock()
	order := make([]*Job, 0, len(recs))
	for _, rec := range recs {
		switch rec.Type {
		case recAdmitted:
			if rec.Spec == nil || s.jobs[rec.Job] != nil {
				continue // tolerate damaged or duplicated records
			}
			j := &Job{
				ID: rec.Job, Spec: *rec.Spec, state: StateQueued,
				seq: rec.Seq, submitted: time.Now(),
			}
			s.jobs[j.ID] = j
			order = append(order, j)
			if j.seq > s.seq {
				s.seq = j.seq
			}
			if k := j.Spec.IdempotencyKey; k != "" {
				s.idem[k] = j
			}
		case recDispatched:
			if j := s.jobs[rec.Job]; j != nil && !j.state.terminal() {
				j.state = StateRunning
				j.attempts = rec.Attempt
			}
		case recRetry:
			if j := s.jobs[rec.Job]; j != nil && !j.state.terminal() {
				j.attempts = rec.Attempt
			}
		case recRecovered:
			if j := s.jobs[rec.Job]; j != nil && !j.state.terminal() {
				j.state = StateQueued
				j.crashes = rec.Crashes
			}
		case recCheckpointed:
			// Informational: resume reads the checkpoint DIRECTORY, which
			// can only be ahead of the journal (checkpoints are written
			// before their records), never behind.
		case recTerminal:
			j := s.jobs[rec.Job]
			if j == nil {
				continue
			}
			j.state = rec.State
			if sum, perr := strconv.ParseUint(rec.Checksum, 16, 64); perr == nil {
				j.checksum = sum
			}
			j.modelled = rec.Modelled
			j.errMsg = rec.Error
			j.flightDump = rec.Flight
			j.finished = time.Now()
		}
	}

	// Classify, in admission order so the queue rebuilds FIFO-correct.
	for _, j := range order {
		switch {
		case j.state.terminal():
			stats.Terminal++
		case j.state == StateRunning:
			// The crash caught this job mid-run: one strike, then either
			// quarantine or re-admit for checkpoint resume.
			j.crashes++
			if j.panics+j.crashes >= s.cfg.PoisonThreshold {
				j.state = StateQuarantined
				j.errMsg = fmt.Sprintf("quarantined after %d crash-restarts caught the job mid-run", j.crashes)
				j.finished = time.Now()
				j.flightDump = s.dumpFlightRing(j.ID)
				s.jobCounter("quarantined", j.Spec.Tenant).Inc()
				stats.Quarantined++
				continue
			}
			j.state = StateQueued
			s.queue = append(s.queue, j)
			s.tenantPending[j.Spec.Tenant]++
			s.jobCounter("recovered", j.Spec.Tenant).Inc()
			stats.Resumed++
		default: // queued
			s.queue = append(s.queue, j)
			s.tenantPending[j.Spec.Tenant]++
			stats.Requeued++
		}
	}
	snap := s.snapshotLocked()
	s.mu.Unlock()

	// Compacting to the recovered snapshot is what persists the replay's
	// decisions (crash strikes, recovery-time quarantines): rename is
	// atomic, so a crash mid-compaction replays the OLD journal and
	// re-derives the same decisions.
	if err := s.jl.compact(snap); err != nil {
		return stats, err
	}
	if s.cfg.replayHook != nil {
		s.cfg.replayHook()
	}
	s.mu.Lock()
	s.ready = true
	s.dispatchLocked()
	s.updateGaugesLocked()
	s.mu.Unlock()
	return stats, nil
}

// inputFor deterministically generates a job's input matrix from its
// seed — the same (bench, n, seed) always yields the same matrix, so
// checksums are comparable across runs and against solo invocations.
func inputFor(rule semiring.Rule, n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	d := matrix.NewDense(n)
	if _, ok := rule.(semiring.GaussianRule); ok {
		d.FillDiagonallyDominant(rng)
		return d
	}
	d.Fill(func(i, j int) float64 {
		switch {
		case i == j:
			return 0
		case rng.Float64() < 0.3:
			return math.Inf(1)
		default:
			return 1 + math.Floor(rng.Float64()*9)
		}
	})
	return d
}

// denseChecksum fingerprints a result matrix bit-exactly (FNV-1a over
// the raw float bits — NaN/Inf/signed-zero safe). This is the number
// the isolation invariant compares: it must match the same job's solo
// run bit for bit.
func denseChecksum(d *matrix.Dense) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range d.Data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return h.Sum64()
}
