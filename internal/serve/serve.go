// Package serve is the multi-tenant DP job service behind `dpspark
// serve`: a long-lived server that admits many concurrent jobs (rule,
// driver, shape, seed, priority, deadline) and schedules their stages
// onto ONE shared simulated cluster via rdd.Substrate — the
// cluster-manager role Spark delegates to YARN/Mesos/K8s, moved into
// the engine.
//
// Robustness is the point of the package:
//
//   - Admission control: the job queue is bounded; over-capacity and
//     over-quota submissions are rejected with 429 + Retry-After
//     instead of queueing unboundedly, with zero effect on in-flight
//     jobs.
//   - Tenant isolation: every job gets its own rdd.Context (lineage,
//     shuffle state, fault plan, virtual clock), so one tenant's
//     injected faults recover through the usual machinery without
//     perturbing any other tenant's result bits or modelled time.
//   - Overload degradation: per-job panic containment (a failing job
//     reports an error result; the server and sibling jobs keep
//     running), deadlines enforced by cooperative cancellation, and
//     graceful drain on SIGTERM (stop admitting, let in-flight jobs
//     finish within a grace window, then cancel what remains and dump
//     the flight recorder).
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/matrix"
	"dpspark/internal/obs"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// Config configures the job service.
type Config struct {
	// Cluster is the shared simulated cluster every job's stages are
	// scheduled onto. Default: cluster.LocalN(4, 2).
	Cluster *cluster.Cluster
	// KernelThreads is the shared per-node kernel pool width (see
	// rdd.SubstrateConf). Default 1: serial kernels.
	KernelThreads int
	// RealParallelism bounds the real task-execution slots shared by
	// every running job. Default: runtime.NumCPU() (via the substrate).
	RealParallelism int
	// MaxQueue bounds the admission queue: submissions arriving with
	// MaxQueue jobs already queued are rejected with 429. Default 16;
	// negative values are rejected.
	MaxQueue int
	// MaxRunning bounds concurrently executing jobs. Default 2;
	// negative values are rejected.
	MaxRunning int
	// TenantRunning caps one tenant's concurrently running jobs (its
	// share of MaxRunning). Default: MaxRunning — no per-tenant cap.
	TenantRunning int
	// TenantPending caps one tenant's queued jobs; submissions beyond
	// it are rejected with 429 even while the global queue has room.
	// Default: MaxQueue — no per-tenant cap.
	TenantPending int
	// DrainGrace is how long Drain waits for in-flight jobs to finish
	// before cancelling them. Default 30s; negative values are rejected.
	DrainGrace time.Duration
	// Observer receives every job's metrics and flight events (plus the
	// server's per-tenant job counters), so one /metrics endpoint serves
	// the whole process. Default: a fresh observer.
	Observer *obs.Observer

	// hook, when set, runs inside each job's goroutine right before the
	// engine run — the test seam for panic containment.
	hook func(j *Job)
}

// normalize validates and defaults the Config in place — the single
// validation site, like rdd.Conf.normalize.
func (cfg *Config) normalize() error {
	if cfg.MaxQueue < 0 {
		return fmt.Errorf("serve: Config.MaxQueue must be ≥ 0 (0 means the default 16), got %d", cfg.MaxQueue)
	}
	if cfg.MaxRunning < 0 {
		return fmt.Errorf("serve: Config.MaxRunning must be ≥ 0 (0 means the default 2), got %d", cfg.MaxRunning)
	}
	if cfg.TenantRunning < 0 {
		return fmt.Errorf("serve: Config.TenantRunning must be ≥ 0 (0 means no per-tenant cap), got %d", cfg.TenantRunning)
	}
	if cfg.TenantPending < 0 {
		return fmt.Errorf("serve: Config.TenantPending must be ≥ 0 (0 means no per-tenant cap), got %d", cfg.TenantPending)
	}
	if cfg.DrainGrace < 0 {
		return fmt.Errorf("serve: Config.DrainGrace must be ≥ 0 (0 means the default 30s), got %v", cfg.DrainGrace)
	}
	if cfg.KernelThreads < 0 {
		return fmt.Errorf("serve: Config.KernelThreads must be ≥ 0 (0 means serial kernels), got %d", cfg.KernelThreads)
	}
	if cfg.RealParallelism < 0 {
		return fmt.Errorf("serve: Config.RealParallelism must be ≥ 0 (0 means NumCPU), got %d", cfg.RealParallelism)
	}
	if cfg.Cluster == nil {
		cfg.Cluster = cluster.LocalN(4, 2)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 16
	}
	if cfg.MaxRunning == 0 {
		cfg.MaxRunning = 2
	}
	if cfg.TenantRunning == 0 || cfg.TenantRunning > cfg.MaxRunning {
		cfg.TenantRunning = cfg.MaxRunning
	}
	if cfg.TenantPending == 0 || cfg.TenantPending > cfg.MaxQueue {
		cfg.TenantPending = cfg.MaxQueue
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 30 * time.Second
	}
	if cfg.Observer == nil {
		cfg.Observer = obs.New()
	}
	return nil
}

// JobSpec is the submission payload.
type JobSpec struct {
	// Tenant attributes the job for quotas and metrics. Default "default".
	Tenant string `json:"tenant"`
	// Bench selects the update rule: "fw" (min-plus closure) or "ge"
	// (Gaussian elimination). Default "fw".
	Bench string `json:"bench"`
	// Driver selects the engine driver: "im" or "cb". Default "im".
	Driver string `json:"driver"`
	// N and Block are the matrix size and tile size. Defaults 128 / 32.
	N     int `json:"n"`
	Block int `json:"block"`
	// Seed deterministically generates the input matrix, so the same
	// (bench, n, block, seed) job always produces the same checksum.
	Seed int64 `json:"seed"`
	// Priority orders this job against others contending for executor
	// slots and the run queue: higher wins, FIFO within a priority.
	Priority int `json:"priority"`
	// DeadlineMS, when > 0, cancels the job that many real milliseconds
	// after it is admitted (cooperative: tasks finish their current
	// attempt).
	DeadlineMS int64 `json:"deadline_ms"`
	// ChaosSeed, with ChaosCrashes > 0, injects a seeded fault plan
	// (executor crashes, 2 stragglers, 1 staging-disk loss — the chaos
	// subcommand's mix) into THIS job only; recovery must not perturb
	// sibling jobs.
	ChaosSeed    int64 `json:"chaos_seed"`
	ChaosCrashes int   `json:"chaos_crashes"`
	// ChaosGCPauses, when > 0, additionally injects that many seeded
	// stop-the-world GC pauses and turns on the heartbeat failure
	// detector for THIS job (HeartbeatMS lease interval, dead after two
	// missed leases). Pauses outliving the detection latency falsely
	// declare the executor dead; the job must recover through
	// resubmission with the zombie attempt's commits fenced.
	ChaosGCPauses int `json:"chaos_gcpauses"`
	// HeartbeatMS is the detector's lease interval in virtual
	// milliseconds. Default 2000 when ChaosGCPauses > 0; 0 otherwise
	// (detector off, instant failure detection).
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// validate checks and defaults a submitted spec.
func (sp *JobSpec) validate() error {
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if sp.Bench == "" {
		sp.Bench = "fw"
	}
	if sp.Bench != "fw" && sp.Bench != "ge" {
		return fmt.Errorf("serve: unknown bench %q (want fw or ge)", sp.Bench)
	}
	if sp.Driver == "" {
		sp.Driver = "im"
	}
	if sp.Driver != "im" && sp.Driver != "cb" {
		return fmt.Errorf("serve: unknown driver %q (want im or cb)", sp.Driver)
	}
	if sp.N == 0 {
		sp.N = 128
	}
	if sp.Block == 0 {
		sp.Block = 32
	}
	if sp.N < 1 || sp.Block < 1 || sp.Block > sp.N {
		return fmt.Errorf("serve: invalid shape n=%d block=%d (need 1 ≤ block ≤ n)", sp.N, sp.Block)
	}
	if sp.N > 4096 {
		return fmt.Errorf("serve: n=%d exceeds the serving cap 4096 — submit a batch run instead", sp.N)
	}
	if sp.DeadlineMS < 0 {
		return fmt.Errorf("serve: deadline_ms must be ≥ 0, got %d", sp.DeadlineMS)
	}
	if sp.ChaosCrashes < 0 {
		return fmt.Errorf("serve: chaos_crashes must be ≥ 0, got %d", sp.ChaosCrashes)
	}
	if sp.ChaosGCPauses < 0 {
		return fmt.Errorf("serve: chaos_gcpauses must be ≥ 0, got %d", sp.ChaosGCPauses)
	}
	if sp.HeartbeatMS < 0 {
		return fmt.Errorf("serve: heartbeat_ms must be ≥ 0, got %d", sp.HeartbeatMS)
	}
	if sp.ChaosGCPauses > 0 && sp.HeartbeatMS == 0 {
		sp.HeartbeatMS = 2000 // a GC-pause plan needs the detector on
	}
	return nil
}

// rule resolves the spec's semiring rule.
func (sp *JobSpec) rule() semiring.Rule {
	if sp.Bench == "ge" {
		return semiring.NewGaussian()
	}
	return semiring.NewFloydWarshall()
}

// driverKind resolves the spec's driver.
func (sp *JobSpec) driverKind() core.DriverKind {
	if sp.Driver == "cb" {
		return core.CB
	}
	return core.IM
}

// JobState is a job's lifecycle position.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Job is one admitted job. All mutable fields are guarded by the
// server's mu.
type Job struct {
	ID   string
	Spec JobSpec

	state     JobState
	seq       uint64
	submitted time.Time
	started   time.Time
	finished  time.Time

	// ctx is the job's engine context, set once the job starts; cancel
	// requests arriving earlier are remembered in cancelCause.
	ctx         *rdd.Context
	cancelCause error

	checksum uint64
	modelled float64 // virtual seconds
	errMsg   string
}

// errServerDraining is the cancellation cause drain applies to jobs it
// cannot let finish.
var errServerDraining = fmt.Errorf("server draining: %w", rdd.ErrJobCanceled)

// errDeadline marks deadline cancellations (wraps rdd.ErrJobCanceled so
// the engine treats it as a cancel; the distinct message reaches the
// job's error field).
func errDeadline(d time.Duration) error {
	return fmt.Errorf("deadline %v exceeded: %w", d, rdd.ErrJobCanceled)
}

// Server is the job service. Create with New, mount Handler on an HTTP
// server, and Drain before exit.
type Server struct {
	cfg  Config
	sub  *rdd.Substrate
	obsv *obs.Observer

	mu            sync.Mutex
	jobs          map[string]*Job
	queue         []*Job // admitted, not yet running
	seq           uint64
	running       int
	tenantRunning map[string]int
	tenantPending map[string]int
	draining      bool
	wg            sync.WaitGroup

	queuedGauge  *obs.Gauge
	runningGauge *obs.Gauge
}

// New builds a server over one shared substrate.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sub, err := rdd.NewSubstrate(rdd.SubstrateConf{
		Cluster:         cfg.Cluster,
		KernelThreads:   cfg.KernelThreads,
		RealParallelism: cfg.RealParallelism,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:           cfg,
		sub:           sub,
		obsv:          cfg.Observer,
		jobs:          make(map[string]*Job),
		tenantRunning: make(map[string]int),
		tenantPending: make(map[string]int),
	}
	s.queuedGauge = s.obsv.Metrics().Gauge("dpspark_jobs_queued", nil)
	s.runningGauge = s.obsv.Metrics().Gauge("dpspark_jobs_running", nil)
	return s, nil
}

// Observer returns the server's observability sink (shared with every
// job's engine context).
func (s *Server) Observer() *obs.Observer { return s.obsv }

// jobCounter resolves one of the per-tenant job counters.
func (s *Server) jobCounter(outcome, tenant string) *obs.Counter {
	return s.obsv.Metrics().Counter("dpspark_jobs_"+outcome+"_total", obs.Labels{"tenant": tenant})
}

// rejectedCounter carries the rejection reason alongside the tenant.
func (s *Server) rejectedCounter(tenant, reason string) *obs.Counter {
	return s.obsv.Metrics().Counter("dpspark_jobs_rejected_total", obs.Labels{"tenant": tenant, "reason": reason})
}

// errRejected is returned by Submit for admission-control rejections;
// the HTTP layer maps it to 429 (or 503 while draining).
type errRejected struct {
	reason string // "queue_full" | "tenant_quota" | "draining"
}

func (e *errRejected) Error() string { return "serve: rejected: " + e.reason }

// Submit validates, admits and enqueues a job, returning its ID. A
// *errRejected error means admission control turned the job away (the
// queue or the tenant's pending quota is full, or the server is
// draining) — with zero effect on admitted jobs.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejectedCounter(spec.Tenant, "draining").Inc()
		return nil, &errRejected{reason: "draining"}
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.rejectedCounter(spec.Tenant, "queue_full").Inc()
		return nil, &errRejected{reason: "queue_full"}
	}
	if s.tenantPending[spec.Tenant] >= s.cfg.TenantPending {
		s.rejectedCounter(spec.Tenant, "tenant_quota").Inc()
		return nil, &errRejected{reason: "tenant_quota"}
	}
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("job-%d", s.seq),
		Spec:      spec,
		state:     StateQueued,
		seq:       s.seq,
		submitted: time.Now(),
	}
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j)
	s.tenantPending[spec.Tenant]++
	s.jobCounter("admitted", spec.Tenant).Inc()
	s.obsv.Flight().Record(obs.Event{
		Type: obs.EvJobSubmit, Job: j.ID, Stage: -1, Part: -1, Node: -1, Shuffle: -1,
		Detail: fmt.Sprintf("%s tenant=%s %s/%s n=%d prio=%d", j.ID, spec.Tenant, spec.Bench, spec.Driver, spec.N, spec.Priority),
	})
	s.dispatchLocked()
	s.updateGaugesLocked()
	return j, nil
}

// dispatchLocked starts queued jobs while run capacity allows: highest
// priority first, FIFO within a priority, skipping tenants at their
// running cap. Caller holds mu.
func (s *Server) dispatchLocked() {
	for s.running < s.cfg.MaxRunning {
		best := -1
		for i, j := range s.queue {
			if s.tenantRunning[j.Spec.Tenant] >= s.cfg.TenantRunning {
				continue
			}
			if best < 0 || j.Spec.Priority > s.queue[best].Spec.Priority ||
				(j.Spec.Priority == s.queue[best].Spec.Priority && j.seq < s.queue[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		j := s.queue[best]
		s.queue = append(s.queue[:best], s.queue[best+1:]...)
		s.tenantPending[j.Spec.Tenant]--
		s.tenantRunning[j.Spec.Tenant]++
		s.running++
		j.state = StateRunning
		j.started = time.Now()
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// updateGaugesLocked refreshes the queue/running gauges. Caller holds mu.
func (s *Server) updateGaugesLocked() {
	s.queuedGauge.Set(float64(len(s.queue)))
	s.runningGauge.Set(float64(s.running))
}

// runJob executes one job on its own engine context mounted on the
// shared substrate. Panics anywhere in the job (kernel bugs, bad
// configs) are contained here: the job fails, the server and sibling
// jobs keep running.
func (s *Server) runJob(j *Job) {
	defer s.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			s.finishJob(j, 0, 0, fmt.Errorf("panic: %v", p))
		}
	}()
	if s.cfg.hook != nil {
		s.cfg.hook(j)
	}

	spec := j.Spec
	var plan *rdd.FaultPlan
	r := (spec.N + spec.Block - 1) / spec.Block
	if spec.ChaosCrashes > 0 {
		// The chaos subcommand's mix: crashes as requested, plus two
		// stragglers and one staging-disk loss over the planned stages.
		plan = rdd.RandomFaultPlan(spec.ChaosSeed, 4*r, s.cfg.Cluster.Nodes, spec.ChaosCrashes, 2, 1)
	}
	var heartbeat simtime.Duration
	if spec.HeartbeatMS > 0 {
		heartbeat = simtime.Duration(spec.HeartbeatMS) * simtime.Millisecond
	}
	if spec.ChaosGCPauses > 0 {
		if plan == nil {
			plan = &rdd.FaultPlan{Seed: spec.ChaosSeed}
		}
		// Seeded stop-the-world pauses; those outliving the detection
		// latency exercise false suspicion + zombie fencing in-service.
		plan = plan.WithRandomGCPauses(spec.ChaosSeed+1, 4*r, s.cfg.Cluster.Nodes, spec.ChaosGCPauses)
	}
	ctx := rdd.NewContext(rdd.Conf{
		Substrate:         s.sub,
		Priority:          spec.Priority,
		FaultPlan:         plan,
		Observer:          s.obsv,
		HeartbeatInterval: heartbeat,
		JobLabel:          j.ID,
	})

	// Publish the context so Cancel reaches the engine, honouring a
	// cancel that raced the start.
	s.mu.Lock()
	j.ctx = ctx
	if cause := j.cancelCause; cause != nil {
		ctx.Cancel(cause)
	}
	s.mu.Unlock()

	if spec.DeadlineMS > 0 {
		// The deadline counts from admission — time spent queued behind
		// other tenants burns the budget too, so an overloaded server
		// sheds overdue queued work instead of running it late.
		d := time.Duration(spec.DeadlineMS) * time.Millisecond
		if dl := j.submitted.Add(d); time.Now().Before(dl) {
			timer := time.AfterFunc(time.Until(dl), func() { ctx.Cancel(errDeadline(d)) })
			defer timer.Stop()
		} else {
			ctx.Cancel(errDeadline(d))
		}
	}

	rule := spec.rule()
	in := inputFor(rule, spec.N, spec.Seed)
	bl := matrix.Block(in, spec.Block, rule.Pad(), rule.PadDiag())
	out, st, err := core.Run(ctx, bl, core.Config{
		Rule: rule, BlockSize: spec.Block, Driver: spec.driverKind(),
	})
	var sum uint64
	var modelled float64
	if st != nil {
		modelled = st.Time.Seconds()
	}
	if err == nil && out != nil {
		sum = denseChecksum(out.ToDense())
	}
	s.finishJob(j, sum, modelled, err)
}

// finishJob records a job's outcome and frees its run slot.
func (s *Server) finishJob(j *Job, sum uint64, modelled float64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = time.Now()
	j.checksum = sum
	j.modelled = modelled
	outcome := "completed"
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, rdd.ErrJobCanceled):
		j.state = StateCancelled
		j.errMsg = err.Error()
		outcome = "cancelled"
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		outcome = "failed"
	}
	s.running--
	s.tenantRunning[j.Spec.Tenant]--
	s.jobCounter(outcome, j.Spec.Tenant).Inc()
	s.obsv.Flight().Record(obs.Event{
		Type: obs.EvJobFinish, Job: j.ID, Stage: -1, Part: -1, Node: -1, Shuffle: -1,
		Detail: fmt.Sprintf("%s tenant=%s state=%s checksum=%016x", j.ID, j.Spec.Tenant, j.state, sum),
	})
	s.dispatchLocked()
	s.updateGaugesLocked()
}

// Cancel cancels a job by ID: queued jobs leave the queue immediately,
// running jobs are cancelled cooperatively (their tasks finish the
// current attempt, then the driver loop stops). Finished jobs return an
// error.
func (s *Server) Cancel(id string, cause error) error {
	if cause == nil {
		cause = rdd.ErrJobCanceled
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("serve: no such job %q", id)
	}
	switch j.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.tenantPending[j.Spec.Tenant]--
		j.state = StateCancelled
		j.errMsg = cause.Error()
		j.finished = time.Now()
		s.jobCounter("cancelled", j.Spec.Tenant).Inc()
		s.dispatchLocked()
		s.updateGaugesLocked()
		return nil
	case StateRunning:
		j.cancelCause = cause
		if j.ctx != nil {
			j.ctx.Cancel(cause)
		}
		return nil
	default:
		return fmt.Errorf("serve: job %s already %s", id, j.state)
	}
}

// Drain gracefully shuts the service down: stop admitting, cancel the
// queue, give running jobs DrainGrace to finish, cancel what remains,
// and wait for everything to unwind. Safe to call more than once.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	for _, j := range s.queue {
		j.state = StateCancelled
		j.errMsg = errServerDraining.Error()
		j.finished = time.Now()
		s.tenantPending[j.Spec.Tenant]--
		s.jobCounter("cancelled", j.Spec.Tenant).Inc()
	}
	s.queue = nil
	s.updateGaugesLocked()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainGrace):
		// Grace expired: cancel in-flight jobs cooperatively and wait
		// for them to unwind (cancellation aborts between task attempts
		// and at iteration boundaries, so this is prompt).
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.cancelCause = errServerDraining
				if j.ctx != nil {
					j.ctx.Cancel(errServerDraining)
				}
			}
		}
		s.mu.Unlock()
		<-done
	}
}

// Draining reports whether Drain has been requested.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID              string   `json:"id"`
	Tenant          string   `json:"tenant"`
	State           JobState `json:"state"`
	Bench           string   `json:"bench"`
	Driver          string   `json:"driver"`
	N               int      `json:"n"`
	Block           int      `json:"block"`
	Seed            int64    `json:"seed"`
	Priority        int      `json:"priority"`
	Submitted       string   `json:"submitted,omitempty"`
	Started         string   `json:"started,omitempty"`
	Finished        string   `json:"finished,omitempty"`
	ModelledSeconds float64  `json:"modelled_seconds,omitempty"`
	Checksum        string   `json:"checksum,omitempty"`
	Error           string   `json:"error,omitempty"`
}

// statusLocked renders a job. Caller holds mu.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.ID, Tenant: j.Spec.Tenant, State: j.state,
		Bench: j.Spec.Bench, Driver: j.Spec.Driver,
		N: j.Spec.N, Block: j.Spec.Block, Seed: j.Spec.Seed,
		Priority:        j.Spec.Priority,
		ModelledSeconds: j.modelled,
		Error:           j.errMsg,
	}
	if !j.submitted.IsZero() {
		st.Submitted = j.submitted.UTC().Format(time.RFC3339Nano)
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state == StateDone {
		st.Checksum = fmt.Sprintf("%016x", j.checksum)
	}
	return st
}

// Status returns one job's status.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.statusLocked(), true
}

// Jobs lists every known job, newest first.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(i, k int) bool { return all[i].seq > all[k].seq })
	out := make([]JobStatus, len(all))
	for i, j := range all {
		out[i] = j.statusLocked()
	}
	return out
}

// inputFor deterministically generates a job's input matrix from its
// seed — the same (bench, n, seed) always yields the same matrix, so
// checksums are comparable across runs and against solo invocations.
func inputFor(rule semiring.Rule, n int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	d := matrix.NewDense(n)
	if _, ok := rule.(semiring.GaussianRule); ok {
		d.FillDiagonallyDominant(rng)
		return d
	}
	d.Fill(func(i, j int) float64 {
		switch {
		case i == j:
			return 0
		case rng.Float64() < 0.3:
			return math.Inf(1)
		default:
			return 1 + math.Floor(rng.Float64()*9)
		}
	})
	return d
}

// denseChecksum fingerprints a result matrix bit-exactly (FNV-1a over
// the raw float bits — NaN/Inf/signed-zero safe). This is the number
// the isolation invariant compares: it must match the same job's solo
// run bit for bit.
func denseChecksum(d *matrix.Dense) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range d.Data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return h.Sum64()
}
