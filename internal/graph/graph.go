// Package graph provides directed weighted graphs, synthetic generators
// standing in for the paper's APSP inputs, conversion to the dense
// distance matrices the GEP solvers consume, and reference shortest-path
// algorithms (Dijkstra, plain Floyd-Warshall) used to validate results.
package graph

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"dpspark/internal/matrix"
)

// Edge is a directed weighted edge from From to To.
type Edge struct {
	From, To int
	Weight   float64
}

// Graph is a directed weighted graph in adjacency-list form.
type Graph struct {
	N   int
	Adj [][]Edge // Adj[u] lists edges leaving u
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{N: n, Adj: make([][]Edge, n)}
}

// AddEdge inserts the directed edge u→v with weight w.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		panic(fmt.Sprintf("graph: edge (%d,%d) outside %d vertices", u, v, g.N))
	}
	g.Adj[u] = append(g.Adj[u], Edge{From: u, To: v, Weight: w})
}

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	m := 0
	for _, es := range g.Adj {
		m += len(es)
	}
	return m
}

// DistanceMatrix converts the graph to the n×n matrix d⁰ of the
// closed-semiring formulation: d⁰[i,i] = 0, d⁰[i,j] = min edge weight for
// parallel edges, +∞ where no edge exists.
func (g *Graph) DistanceMatrix() *matrix.Dense {
	d := matrix.NewDense(g.N)
	inf := math.Inf(1)
	for i := range d.Data {
		d.Data[i] = inf
	}
	for i := 0; i < g.N; i++ {
		d.Set(i, i, 0)
	}
	for _, es := range g.Adj {
		for _, e := range es {
			if e.Weight < d.At(e.From, e.To) {
				d.Set(e.From, e.To, e.Weight)
			}
		}
	}
	return d
}

// AdjacencyBool converts the graph to a boolean (0/1) reachability matrix
// for transitive closure: 1 on the diagonal and wherever an edge exists.
func (g *Graph) AdjacencyBool() *matrix.Dense {
	d := matrix.NewDense(g.N)
	for i := 0; i < g.N; i++ {
		d.Set(i, i, 1)
	}
	for _, es := range g.Adj {
		for _, e := range es {
			d.Set(e.From, e.To, 1)
		}
	}
	return d
}

// Random returns an Erdős–Rényi style directed graph: each ordered pair
// (u,v), u≠v, carries an edge with probability p and weight uniform in
// [wLo, wHi).
func Random(n int, p float64, wLo, wHi float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || rng.Float64() >= p {
				continue
			}
			g.AddEdge(u, v, wLo+rng.Float64()*(wHi-wLo))
		}
	}
	return g
}

// Grid returns a rows×cols 4-neighbour grid with independent random
// weights per direction — a stand-in for road networks, one of the
// transportation applications the paper cites for FW-APSP.
func Grid(rows, cols int, wLo, wHi float64, rng *rand.Rand) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	w := func() float64 { return wLo + rng.Float64()*(wHi-wLo) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), w())
				g.AddEdge(id(r, c+1), id(r, c), w())
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), w())
				g.AddEdge(id(r+1, c), id(r, c), w())
			}
		}
	}
	return g
}

// dijkstraItem is a priority-queue entry.
type dijkstraItem struct {
	v    int
	dist float64
}

type dijkstraPQ []dijkstraItem

func (q dijkstraPQ) Len() int            { return len(q) }
func (q dijkstraPQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q dijkstraPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *dijkstraPQ) Push(x interface{}) { *q = append(*q, x.(dijkstraItem)) }
func (q *dijkstraPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra returns single-source shortest-path distances from src.
// Weights must be non-negative. Used as an independent oracle for
// validating FW-APSP outputs.
func (g *Graph) Dijkstra(src int) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &dijkstraPQ{{v: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(dijkstraItem)
		if it.dist > dist[it.v] {
			continue
		}
		for _, e := range g.Adj[it.v] {
			if nd := it.dist + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, dijkstraItem{v: e.To, dist: nd})
			}
		}
	}
	return dist
}

// APSPReference computes all-pairs shortest paths by running Dijkstra from
// every source. O(n·m·log n); for validation on small graphs only.
func (g *Graph) APSPReference() *matrix.Dense {
	d := matrix.NewDense(g.N)
	for s := 0; s < g.N; s++ {
		copy(d.Data[s*g.N:(s+1)*g.N], g.Dijkstra(s))
	}
	return d
}
