package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list:
//
//	# comment
//	<n>
//	<from> <to> <weight>
//	...
//
// Vertex ids are 0-based. Lines starting with '#' or '%' are ignored.
// This is the input format of cmd/apsp.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) != 1 {
				return nil, fmt.Errorf("graph: line %d: expected vertex count, got %q", line, text)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", line, fields[0])
			}
			g = New(n)
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: expected 'from to weight', got %q", line, text)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		w, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("graph: line %d: malformed edge %q", line, text)
		}
		if u < 0 || u >= g.N || v < 0 || v >= g.N {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) outside %d vertices", line, u, v, g.N)
		}
		g.AddEdge(u, v, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return g, nil
}

// WriteEdgeList emits the graph in the format ReadEdgeList parses.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", g.N); err != nil {
		return err
	}
	for _, es := range g.Adj {
		for _, e := range es {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.From, e.To, e.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
