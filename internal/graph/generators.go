package graph

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// PowerLaw returns a directed preferential-attachment graph: vertices
// arrive one at a time and attach `edgesPerVertex` out-edges to earlier
// vertices, preferring high-degree targets (Barabási–Albert style). The
// resulting in-degree distribution is heavy-tailed — the social/web graph
// workload class of the big-data systems the paper cites.
func PowerLaw(n, edgesPerVertex int, wLo, wHi float64, rng *rand.Rand) *Graph {
	if edgesPerVertex < 1 {
		edgesPerVertex = 1
	}
	g := New(n)
	// targets holds one entry per in-edge endpoint (plus one per vertex),
	// so sampling uniformly from it is degree-proportional.
	targets := make([]int, 0, n*(edgesPerVertex+1))
	for v := 0; v < n; v++ {
		targets = append(targets, v)
		if v == 0 {
			continue
		}
		m := edgesPerVertex
		if m > v {
			m = v
		}
		seen := make(map[int]bool, m)
		for len(seen) < m {
			to := targets[rng.Intn(len(targets))]
			if to == v || seen[to] {
				continue
			}
			seen[to] = true
			g.AddEdge(v, to, wLo+rng.Float64()*(wHi-wLo))
			targets = append(targets, to)
		}
	}
	return g
}

// Layered returns a DAG of `layers` layers with `width` vertices each;
// every vertex connects to `fanout` random vertices of the next layer.
// Useful for critical-path (max-plus) workloads.
func Layered(layers, width, fanout int, wLo, wHi float64, rng *rand.Rand) *Graph {
	g := New(layers * width)
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			from := l*width + i
			for f := 0; f < fanout; f++ {
				to := (l+1)*width + rng.Intn(width)
				g.AddEdge(from, to, wLo+rng.Float64()*(wHi-wLo))
			}
		}
	}
	return g
}

// ReadDIMACS parses the 9th DIMACS shortest-path challenge format:
//
//	c comment
//	p sp <n> <m>
//	a <from> <to> <weight>
//
// Vertex ids are 1-based in the file and converted to 0-based.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("graph: line %d: bad problem line %q", line, text)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count", line)
			}
			g = New(n)
		case 'a':
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: arc before problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: bad arc %q", line, text)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed arc %q", line, text)
			}
			if u < 1 || u > g.N || v < 1 || v > g.N {
				return nil, fmt.Errorf("graph: line %d: arc (%d,%d) outside 1..%d", line, u, v, g.N)
			}
			g.AddEdge(u-1, v-1, w)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing problem line")
	}
	return g, nil
}

// WriteDIMACS emits the graph in the format ReadDIMACS parses.
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p sp %d %d\n", g.N, g.Edges()); err != nil {
		return err
	}
	for _, es := range g.Adj {
		for _, e := range es {
			if _, err := fmt.Fprintf(bw, "a %d %d %g\n", e.From+1, e.To+1, e.Weight); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
