package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"dpspark/internal/semiring"
)

func TestDistanceMatrixBasics(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 1, 3) // parallel edge: keep min
	g.AddEdge(1, 2, 1)
	d := g.DistanceMatrix()
	if d.At(0, 1) != 3 {
		t.Fatalf("parallel edge not minimized: %v", d.At(0, 1))
	}
	if d.At(0, 0) != 0 || d.At(2, 2) != 0 {
		t.Fatal("diagonal must be 0")
	}
	if !math.IsInf(d.At(2, 0), 1) {
		t.Fatal("missing edge must be +Inf")
	}
}

func TestDijkstraAgainstFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(20)
		g := Random(n, 0.15, 1, 10, rng)
		d := g.DistanceMatrix()
		semiring.FloydWarshallReference(d.Data, n)
		ref := g.APSPReference()
		if diff := d.MaxAbsDiff(ref); diff > 1e-9 {
			t.Fatalf("trial %d: FW vs Dijkstra diff %v", trial, diff)
		}
	}
}

func TestGridGraphShape(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := Grid(3, 4, 1, 2, rng)
	if g.N != 12 {
		t.Fatalf("N = %d", g.N)
	}
	// 4-neighbour grid, both directions: 2*(rows*(cols-1) + (rows-1)*cols).
	want := 2 * (3*3 + 2*4)
	if g.Edges() != want {
		t.Fatalf("Edges = %d, want %d", g.Edges(), want)
	}
	// Grid is strongly connected: no +Inf after FW.
	d := g.DistanceMatrix()
	semiring.FloydWarshallReference(d.Data, g.N)
	for i, v := range d.Data {
		if math.IsInf(v, 1) {
			t.Fatalf("grid not connected at %d", i)
		}
	}
}

func TestAdjacencyBool(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 2, 7)
	a := g.AdjacencyBool()
	if a.At(0, 2) != 1 || a.At(2, 0) != 0 || a.At(1, 1) != 1 {
		t.Fatal("AdjacencyBool wrong")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := Random(15, 0.3, 1, 5, rng)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.Edges() != g.Edges() {
		t.Fatalf("round trip: %d/%d vs %d/%d", back.N, back.Edges(), g.N, g.Edges())
	}
	if back.DistanceMatrix().MaxAbsDiff(g.DistanceMatrix()) != 0 {
		t.Fatal("distance matrices differ after round trip")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"abc",                    // bad count
		"3\n0 1",                 // short edge line
		"3\n0 9 1.5",             // vertex out of range
		"2\nx y z",               // malformed numbers
		"# only comments\n% etc", // no content
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n3\n% more\n0 1 2.5\n1 2 1.0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.Edges() != 2 {
		t.Fatalf("parsed %d/%d", g.N, g.Edges())
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(0, 5, 1)
}
