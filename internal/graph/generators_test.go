package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestPowerLawShape(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	g := PowerLaw(400, 3, 1, 5, rng)
	if g.N != 400 {
		t.Fatalf("N = %d", g.N)
	}
	// Every vertex after the first has out-edges.
	for v := 1; v < g.N; v++ {
		if len(g.Adj[v]) == 0 {
			t.Fatalf("vertex %d has no out-edges", v)
		}
	}
	// Heavy tail: the max in-degree is far above the mean.
	in := make([]int, g.N)
	for _, es := range g.Adj {
		for _, e := range es {
			in[e.To]++
			if e.From == e.To {
				t.Fatal("self loop")
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(in)))
	mean := float64(g.Edges()) / float64(g.N)
	if float64(in[0]) < 4*mean {
		t.Fatalf("max in-degree %d not heavy-tailed (mean %.1f)", in[0], mean)
	}
	// No duplicate out-edges from one vertex.
	for v, es := range g.Adj {
		seen := map[int]bool{}
		for _, e := range es {
			if seen[e.To] {
				t.Fatalf("duplicate edge from %d to %d", v, e.To)
			}
			seen[e.To] = true
		}
	}
}

func TestLayeredIsDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	g := Layered(5, 6, 2, 1, 3, rng)
	if g.N != 30 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Edges() != 4*6*2 {
		t.Fatalf("edges = %d", g.Edges())
	}
	// All edges go strictly forward by layer.
	for _, es := range g.Adj {
		for _, e := range es {
			if e.To/6 != e.From/6+1 {
				t.Fatalf("edge %d→%d not layer-forward", e.From, e.To)
			}
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g := Random(20, 0.2, 1, 9, rng)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.Edges() != g.Edges() {
		t.Fatalf("round trip %d/%d vs %d/%d", back.N, back.Edges(), g.N, g.Edges())
	}
	if back.DistanceMatrix().MaxAbsDiff(g.DistanceMatrix()) != 0 {
		t.Fatal("weights changed in round trip")
	}
}

func TestDIMACSComments(t *testing.T) {
	in := "c header\np sp 3 2\nc mid\na 1 2 4.5\na 2 3 1\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.Edges() != 2 || g.Adj[0][0].Weight != 4.5 {
		t.Fatalf("parsed %+v", g)
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"a 1 2 3\n",             // arc before problem line
		"p xx 3 2\n",            // wrong problem type
		"p sp 3 2\na 1 9 1\n",   // out of range
		"p sp 3 2\na 1 2\n",     // short arc
		"p sp 3 2\nz what\n",    // unknown record
		"p sp -1 2\n",           // bad count
		"p sp 3 2\na x y 1.0\n", // malformed ints
	}
	for _, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}
