package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// Handler returns the observer's scrape mux:
//
//	/metrics         Prometheus text exposition of the live registry
//	/healthz         liveness probe
//	/events?n=N      flight-recorder tail as JSON lines (default 256)
//	/debug/critpath  critical-path reports per registered context
//
// Every endpoint reads through the same locks the producers write
// under, so scraping mid-run is race-free and never perturbs the
// virtual clock or the modelled costs.
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// Render to a buffer first so a slow client never holds registry
		// locks and the response is all-or-nothing — the bytes are the
		// same WritePrometheus dump a post-run export would produce.
		var buf bytes.Buffer
		if err := o.Metrics().WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		// ?since=SEQ tails events newer than a cursor (the last Seq the
		// scraper saw), so pollers don't re-read the whole ring; ?n=N
		// bounds a cursorless read to the newest N (default 256);
		// ?job=ID keeps only one tenant job's events, so a serve client
		// can tail its own flight records without seeing neighbours.
		job := r.URL.Query().Get("job")
		writeEvents := func(events []Event) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			enc := json.NewEncoder(w)
			for _, ev := range events {
				if job != "" && ev.Job != job {
					continue
				}
				if err := enc.Encode(ev); err != nil {
					return
				}
			}
		}
		if q := r.URL.Query().Get("since"); q != "" {
			seq, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad since", http.StatusBadRequest)
				return
			}
			writeEvents(o.Flight().Since(seq))
			return
		}
		n := 256
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeEvents(o.Flight().Tail(n))
	})
	mux.HandleFunc("/debug/critpath", func(w http.ResponseWriter, _ *http.Request) {
		cp := o.CritPath()
		dump := struct {
			Enabled bool                      `json:"enabled"`
			Pids    map[string]CritPathReport `json:"pids"`
		}{Enabled: cp.Enabled(), Pids: map[string]CritPathReport{}}
		for _, pid := range cp.Pids() {
			dump.Pids[strconv.Itoa(pid)] = cp.ComputeAll(pid)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dump)
	})
	return mux
}

// Server is a running observability endpoint listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe binds addr (e.g. "localhost:9090", ":0" for an
// ephemeral port) and serves the observer's Handler in the background.
// The bind itself is synchronous so the caller sees bad addresses
// immediately; Addr reports the bound address.
func ListenAndServe(addr string, o *Observer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: o.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
