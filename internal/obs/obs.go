// Package obs is the engine's observability layer: a lightweight span
// tracer on the virtual clock plus a metrics registry (counters, gauges,
// histograms).
//
// The engine (internal/rdd), the GEP drivers (internal/core) and the
// kernel layer record into one Observer per job; two exporters turn the
// collected data into standard formats:
//
//   - WriteChromeTrace emits Chrome trace-event JSON loadable in
//     Perfetto / chrome://tracing, with one process per engine context
//     and one lane (thread) per executor core on the virtual clock;
//   - WritePrometheus emits a Prometheus-style text dump of every
//     counter, gauge and histogram.
//
// Metrics collection is always on (it is a handful of atomic adds per
// stage); span collection is opt-in via EnableTrace because a paper-scale
// sweep executes hundreds of thousands of tasks.
package obs

import (
	"fmt"
	"sync"

	"dpspark/internal/simtime"
)

// Span is one completed interval on the virtual clock. Pid/Tid address a
// trace lane: the engine uses one process per context, thread 0 for the
// driver and one thread per (node, executor-core) pair for tasks.
type Span struct {
	// Name labels the interval ("stage 12", "iter 3", "s12.t7", ...).
	Name string
	// Cat is the span category ("stage", "task", "driver", "io", ...).
	Cat string
	// Pid and Tid select the trace lane.
	Pid, Tid int
	// Start is the span's begin on the virtual clock.
	Start simtime.Duration
	// Dur is the span's length.
	Dur simtime.Duration
	// Args carries extra key/value detail shown by the trace viewer.
	Args map[string]string
}

// End returns the span's end on the virtual clock.
func (s Span) End() simtime.Duration { return s.Start + s.Dur }

// Observer collects spans and metrics for one or more engine contexts.
// It is safe for concurrent use from parallel tasks and parallel jobs.
type Observer struct {
	mu      sync.Mutex
	traceOn bool
	spans   []Span
	procs   map[int]string
	threads map[[2]int]string
	nextPid int

	reg    *Registry
	flight *FlightRecorder
	crit   *CritPathRecorder
}

// New returns an empty observer: metrics and the flight recorder
// enabled, tracing and critical-path recording disabled.
func New() *Observer {
	o := &Observer{
		procs:   make(map[int]string),
		threads: make(map[[2]int]string),
		nextPid: 1,
		reg:     NewRegistry(),
		flight:  NewFlightRecorder(DefaultFlightCapacity),
		crit:    newCritPathRecorder(),
	}
	// Ring overwrites surface as a counter so scrapers notice event loss
	// (and can size their `since` polling accordingly) without diffing
	// sequence numbers.
	o.flight.SetDropCounter(o.reg.Counter("dpspark_flight_events_dropped_total", nil))
	return o
}

// EnableTrace switches span collection on or off. Metrics are always
// collected.
func (o *Observer) EnableTrace(on bool) {
	o.mu.Lock()
	o.traceOn = on
	o.mu.Unlock()
}

// TraceEnabled reports whether spans are being collected.
func (o *Observer) TraceEnabled() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.traceOn
}

// Metrics returns the observer's metrics registry.
func (o *Observer) Metrics() *Registry { return o.reg }

// Flight returns the observer's always-on flight recorder.
func (o *Observer) Flight() *FlightRecorder { return o.flight }

// CritPath returns the observer's critical-path recorder.
func (o *Observer) CritPath() *CritPathRecorder { return o.crit }

// EnableCritPath switches critical-path interval recording on or off.
func (o *Observer) EnableCritPath(on bool) { o.crit.SetEnabled(on) }

// CritPathEnabled reports whether critical-path intervals are recorded.
func (o *Observer) CritPathEnabled() bool { return o.crit.Enabled() }

// RegisterProcess allocates a trace process id with the given display
// name (one per engine context).
func (o *Observer) RegisterProcess(name string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	pid := o.nextPid
	o.nextPid++
	o.procs[pid] = name
	return pid
}

// NameThread sets the display name of a trace lane. Naming an already
// named lane is a no-op, so callers may name lazily on first use.
func (o *Observer) NameThread(pid, tid int, name string) {
	key := [2]int{pid, tid}
	o.mu.Lock()
	if _, ok := o.threads[key]; !ok {
		o.threads[key] = name
	}
	o.mu.Unlock()
}

// Add records a completed span. A no-op while tracing is disabled.
func (o *Observer) Add(s Span) {
	o.mu.Lock()
	if o.traceOn {
		o.spans = append(o.spans, s)
	}
	o.mu.Unlock()
}

// Spans returns a copy of the collected spans in recording order.
func (o *Observer) Spans() []Span {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Span, len(o.spans))
	copy(out, o.spans)
	return out
}

// SpanCount returns the number of collected spans.
func (o *Observer) SpanCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.spans)
}

// ProcessName returns the display name of a registered process.
func (o *Observer) ProcessName(pid int) string {
	o.mu.Lock()
	defer o.mu.Unlock()
	if n, ok := o.procs[pid]; ok {
		return n
	}
	return fmt.Sprintf("process %d", pid)
}
