package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders every metric family in the Prometheus text
// exposition format, families sorted by name and series by label string,
// so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	byFamily := make(map[string][]*series)
	for _, s := range r.series {
		byFamily[s.family] = append(byFamily[s.family], s)
	}
	types := make(map[string]string, len(r.types))
	for k, v := range r.types {
		types[k] = v
	}
	r.mu.Unlock()

	families := make([]string, 0, len(byFamily))
	for f := range byFamily {
		families = append(families, f)
	}
	sort.Strings(families)

	var b strings.Builder
	for _, fam := range families {
		ss := byFamily[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, types[fam])
		for _, s := range ss {
			switch {
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", fam, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %s\n", fam, s.labels, formatFloat(s.g.Value()))
			case s.h != nil:
				buckets, cum, sum, count := s.h.snapshot()
				for i, ub := range buckets {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, withLE(s.labels, formatFloat(ub)), cum[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, withLE(s.labels, "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", fam, s.labels, formatFloat(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", fam, s.labels, count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// withLE splices the le="..." bucket label into an encoded label string.
func withLE(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf(`{le=%q}`, le)
	}
	return fmt.Sprintf(`%s,le=%q}`, strings.TrimSuffix(labels, "}"), le)
}

// formatFloat renders a float compactly and losslessly for the text
// format ("0.25", "1e+06", "123456").
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
