package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// inf is the +Inf histogram overflow bound.
var inf = math.Inf(1)

// Labels identify one series within a metric family. Values must not
// contain the `"` or newline characters (they are emitted verbatim into
// the Prometheus text format).
type Labels map[string]string

// encode renders labels in canonical (sorted) Prometheus form, e.g.
// `{kind="shuffle-map",phase="update"}`, or "" for no labels.
func (l Labels) encode() string {
	if len(l) == 0 {
		return ""
	}
	// One allocation total: label sets here carry a handful of pairs, so
	// the key scratch lives on the stack and the builder is grown to the
	// exact output size. Values are documented quote- and newline-free,
	// which makes verbatim quoting identical to %q.
	var scratch [8]string
	keys := scratch[:0]
	if len(l) > len(scratch) {
		keys = make([]string, 0, len(l))
	}
	size := 2
	for k, v := range l {
		keys = append(keys, k)
		size += len(k) + len(v) + 4
	}
	sort.Strings(keys)
	var b strings.Builder
	b.Grow(size)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(l[k])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only grow).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable floating-point metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v float64) {
	g.mu.Lock()
	if v > g.v {
		g.v = v
	}
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a fixed-bucket distribution metric (Prometheus-style
// cumulative buckets: counts[i] observations fell at or below Buckets[i],
// plus an implicit +Inf bucket).
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // ascending upper bounds
	counts  []int64   // len(buckets)+1; last is the +Inf overflow
	sum     float64
	count   int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Max returns the upper bound of the highest non-empty bucket (an upper
// estimate of the maximum sample; +Inf if the overflow bucket is hit).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] > 0 {
			if i == len(h.buckets) {
				return inf
			}
			return h.buckets[i]
		}
	}
	return 0
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// samples with Prometheus histogram_quantile semantics: linear
// interpolation within the bucket the quantile rank falls in, the first
// bucket interpolating from 0. A quantile landing in the +Inf overflow
// bucket clamps to the highest finite bound (NaN when there is none).
// Returns NaN for an empty histogram, -Inf for q < 0, +Inf for q > 1.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		return math.Inf(-1)
	}
	if q > 1 {
		return inf
	}
	buckets, cum, _, count := h.snapshot()
	if count == 0 {
		return math.NaN()
	}
	rank := q * float64(count)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(buckets) {
		// Overflow bucket: no finite upper bound to interpolate toward.
		if len(buckets) == 0 {
			return math.NaN()
		}
		return buckets[len(buckets)-1]
	}
	lo, hi := 0.0, buckets[i]
	var below int64
	if i > 0 {
		lo = buckets[i-1]
		below = cum[i-1]
	}
	inBucket := cum[i] - below
	if inBucket == 0 {
		return hi
	}
	return lo + (hi-lo)*(rank-float64(below))/float64(inBucket)
}

// snapshot copies the histogram state under its lock.
func (h *Histogram) snapshot() (buckets []float64, cum []int64, sum float64, count int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets = append([]float64(nil), h.buckets...)
	cum = make([]int64, len(h.counts))
	var run int64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return buckets, cum, h.sum, h.count
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// lo, each factor× the previous — the usual shape for duration metrics.
func ExpBuckets(lo, factor float64, n int) []float64 {
	if n < 1 || lo <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n ≥ 1, lo > 0, factor > 1")
	}
	out := make([]float64, n)
	v := lo
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bucket bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: LinearBuckets needs n ≥ 1, width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// series is one (family, labels) instance; exactly one of c/g/h is set.
type series struct {
	family string
	labels string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds metric families and their series. Getter methods create
// on first use and return the same instance for the same (name, labels),
// so callers hold no registration state.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
	types  map[string]string // family → "counter" | "gauge" | "histogram"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*series),
		types:  make(map[string]string),
	}
}

// lookup finds or creates the series for (name, labels) of the given type.
func (r *Registry) lookup(name, typ string, l Labels) *series {
	key := name + l.encode()
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.types[name]; ok && have != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, have, typ))
	}
	r.types[name] = typ
	s, ok := r.series[key]
	if !ok {
		s = &series{family: name, labels: l.encode()}
		r.series[key] = s
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name string, l Labels) *Counter {
	s := r.lookup(name, "counter", l)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, l Labels) *Gauge {
	s := r.lookup(name, "gauge", l)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket bounds on first use (later calls keep the first
// registration's buckets).
func (r *Registry) Histogram(name string, l Labels, buckets []float64) *Histogram {
	s := r.lookup(name, "histogram", l)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		s.h = &Histogram{buckets: bs, counts: make([]int64, len(bs)+1)}
	}
	return s.h
}

// CounterTotal sums every series of a counter family (all label sets).
func (r *Registry) CounterTotal(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, s := range r.series {
		if s.family == name && s.c != nil {
			total += s.c.Value()
		}
	}
	return total
}
