package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event JSON objects (the "JSON Object Format" of the
// trace-event spec): metadata events name processes and threads, complete
// ("X") events carry the spans. Timestamps are microseconds of virtual
// time.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

type chromeComplete struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []any  `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the collected spans as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing. One process per
// registered engine context; thread lanes as named via NameThread (the
// engine uses one lane per executor core plus a driver and a per-node IO
// lane). Output is deterministic: metadata sorted by (pid, tid), spans in
// recording order.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	o.mu.Lock()
	spans := make([]Span, len(o.spans))
	copy(spans, o.spans)
	type procMeta struct {
		pid  int
		name string
	}
	procs := make([]procMeta, 0, len(o.procs))
	for pid, name := range o.procs {
		procs = append(procs, procMeta{pid, name})
	}
	type threadMeta struct {
		pid, tid int
		name     string
	}
	threads := make([]threadMeta, 0, len(o.threads))
	for key, name := range o.threads {
		threads = append(threads, threadMeta{key[0], key[1], name})
	}
	o.mu.Unlock()

	sort.Slice(procs, func(i, j int) bool { return procs[i].pid < procs[j].pid })
	sort.Slice(threads, func(i, j int) bool {
		if threads[i].pid != threads[j].pid {
			return threads[i].pid < threads[j].pid
		}
		return threads[i].tid < threads[j].tid
	})

	events := make([]any, 0, len(procs)+2*len(threads)+len(spans))
	for _, p := range procs {
		events = append(events, chromeMeta{
			Name: "process_name", Ph: "M", Pid: p.pid,
			Args: map[string]string{"name": p.name},
		})
	}
	for _, t := range threads {
		events = append(events, chromeMeta{
			Name: "thread_name", Ph: "M", Pid: t.pid, Tid: t.tid,
			Args: map[string]string{"name": t.name},
		})
		// Keep viewer lanes in tid order (driver, then node/core).
		events = append(events, chromeMeta{
			Name: "thread_sort_index", Ph: "M", Pid: t.pid, Tid: t.tid,
			Args: map[string]string{"sort_index": strconv.Itoa(t.tid)},
		})
	}
	for _, s := range spans {
		events = append(events, chromeComplete{
			Name: s.Name, Cat: s.Cat, Ph: "X", Pid: s.Pid, Tid: s.Tid,
			Ts: s.Start.Seconds() * 1e6, Dur: s.Dur.Seconds() * 1e6,
			Args: s.Args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
