package obs

import (
	"sort"
	"sync"

	"dpspark/internal/simtime"
)

// Critical-path phases. Every second of a run's clock advance is
// attributed to exactly one of these.
const (
	PhaseCompute   = "compute"
	PhaseShuffle   = "shuffle"
	PhaseBroadcast = "broadcast"
	PhaseOverhead  = "overhead"
	PhaseRecovery  = "recovery"
	PhaseSpill     = "spill"
	// PhaseDetection is the failure-detector share: modelled time spent
	// waiting for missed heartbeats before a crashed (or falsely
	// suspected) executor becomes scheduler-visible.
	PhaseDetection = "detection"
)

// CritPhases lists every phase in the report's canonical display order.
var CritPhases = []string{
	PhaseCompute, PhaseShuffle, PhaseBroadcast,
	PhaseRecovery, PhaseDetection, PhaseSpill, PhaseOverhead,
}

// CritBranch is one executor node's serial io→compute chain inside a
// stage: the candidate critical branches the scheduler's makespan
// maximum ran over. Values come verbatim from the scheduler's
// StageReport so re-deriving the winning branch reproduces the same
// float operations the makespan used.
type CritBranch struct {
	Node      int              `json:"node"`
	ShuffleIO simtime.Duration `json:"shuffle_io_s"`
	SharedIO  simtime.Duration `json:"shared_io_s"`
	Compute   simtime.Duration `json:"compute_s"`
	// Spill is the spill-dilation portion of Compute (async-spill
	// backpressure charged into the node's slowest task).
	Spill simtime.Duration `json:"spill_s"`
}

// CritStage is one executed stage on the virtual clock: Start and End
// are raw clock readings (End bit-identical to the clock after the
// stage), so consecutive entries tile the run without float drift.
type CritStage struct {
	Start   simtime.Duration `json:"start_s"`
	End     simtime.Duration `json:"end_s"`
	StageID int              `json:"stage"`
	Attempt int              `json:"attempt"`
	Kind    string           `json:"kind"`
	Phase   string           `json:"phase,omitempty"`
	Tasks   int              `json:"tasks"`
	// Speculative counts speculative copy tasks the stage ran beyond its
	// partition count.
	Speculative int          `json:"speculative,omitempty"`
	Branches    []CritBranch `json:"branches,omitempty"`
}

// CritSegment is one driver-side clock advance (collect, broadcast,
// scheduling overhead, recovery restore) between stages.
type CritSegment struct {
	Start simtime.Duration `json:"start_s"`
	End   simtime.Duration `json:"end_s"`
	// Phase is the critical-path phase the segment is attributed to.
	Phase string `json:"phase"`
	// Name carries the ledger category or call-site detail.
	Name string `json:"name,omitempty"`
}

// critEntry is one recorded interval: exactly one of stage/seg is set.
type critEntry struct {
	start, end simtime.Duration
	stage      *CritStage
	seg        *CritSegment
}

// CritPathRecorder collects the per-context interval timeline the
// critical path is computed from. Like span tracing it is opt-in
// (EnableCritPath): recording allocates per stage.
type CritPathRecorder struct {
	mu    sync.Mutex
	on    bool
	byPid map[int][]critEntry
}

func newCritPathRecorder() *CritPathRecorder {
	return &CritPathRecorder{byPid: make(map[int][]critEntry)}
}

// SetEnabled switches interval recording on or off.
func (r *CritPathRecorder) SetEnabled(on bool) {
	r.mu.Lock()
	r.on = on
	r.mu.Unlock()
}

// Enabled reports whether intervals are being recorded.
func (r *CritPathRecorder) Enabled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.on
}

// RecordStage records one executed stage for pid. No-op while disabled.
func (r *CritPathRecorder) RecordStage(pid int, st CritStage) {
	r.mu.Lock()
	if r.on {
		r.byPid[pid] = append(r.byPid[pid], critEntry{start: st.Start, end: st.End, stage: &st})
	}
	r.mu.Unlock()
}

// RecordSegment records one driver-side advance for pid. No-op while
// disabled.
func (r *CritPathRecorder) RecordSegment(pid int, sg CritSegment) {
	r.mu.Lock()
	if r.on {
		r.byPid[pid] = append(r.byPid[pid], critEntry{start: sg.Start, end: sg.End, seg: &sg})
	}
	r.mu.Unlock()
}

// Pids returns the sorted pids with recorded intervals.
func (r *CritPathRecorder) Pids() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.byPid))
	for pid := range r.byPid {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// CritPathReport is the critical path of one run window: its length,
// the attribution of that length to phases, and how much of the window
// no recorded interval covered (Unattributed ≈ 0 on a healthy run —
// the invariant tests assert it).
type CritPathReport struct {
	// Len is the summed attributed length (= Σ Phases).
	Len simtime.Duration `json:"len_s"`
	// Phases maps each phase to its share of the path.
	Phases map[string]simtime.Duration `json:"phases"`
	// Unattributed is window time no interval covered (clock drift or a
	// missed instrumentation site would surface here).
	Unattributed simtime.Duration `json:"unattributed_s"`
	// Stages and RecoveryStages count stage entries on the path
	// (RecoveryStages = resubmitted attempts, attributed to recovery).
	Stages         int `json:"stages"`
	RecoveryStages int `json:"recovery_stages"`
	// Segments counts driver-side advances on the path.
	Segments int `json:"segments"`
	// Speculative sums speculative copy tasks across path stages.
	Speculative int `json:"speculative_tasks"`
}

// Phase returns one phase's share (0 for unknown phases).
func (r CritPathReport) Phase(p string) simtime.Duration {
	return r.Phases[p]
}

// Compute derives the critical path for pid over the clock window
// [from, to]. The run's stage DAG executes serially on the virtual
// clock (parallelism lives inside stages, across executor cores), so
// the path is the recorded timeline itself; within each stage the
// scheduler's critical (makespan) node is re-derived from the recorded
// branches with the same float-op grouping the scheduler used, and its
// serial io→compute chain attributed to phases.
func (r *CritPathRecorder) Compute(pid int, from, to simtime.Duration) CritPathReport {
	r.mu.Lock()
	entries := append([]critEntry(nil), r.byPid[pid]...)
	r.mu.Unlock()

	rep := CritPathReport{Phases: make(map[string]simtime.Duration, len(CritPhases))}
	add := func(phase string, d simtime.Duration) {
		if d != 0 {
			rep.Phases[phase] += d
			rep.Len += d
		}
	}

	window := make([]critEntry, 0, len(entries))
	for _, e := range entries {
		if e.start >= from && e.start < to {
			window = append(window, e)
		}
	}
	sort.SliceStable(window, func(i, j int) bool { return window[i].start < window[j].start })

	cur := from
	for _, e := range window {
		if e.start > cur {
			rep.Unattributed += e.start - cur
			cur = e.start
		}
		if e.end <= cur {
			continue // fully covered by an earlier interval
		}
		switch {
		case e.stage != nil:
			rep.Stages++
			rep.Speculative += e.stage.Speculative
			attributeStage(e.stage, add)
			if e.stage.Attempt > 0 {
				rep.RecoveryStages++
			}
		case e.seg != nil:
			rep.Segments++
			add(e.seg.Phase, e.end-e.start)
		}
		cur = e.end
	}
	if to > cur {
		rep.Unattributed += to - cur
	}
	return rep
}

// ComputeAll derives the critical path over pid's whole recorded
// timeline (first interval start to last interval end).
func (r *CritPathRecorder) ComputeAll(pid int) CritPathReport {
	r.mu.Lock()
	entries := r.byPid[pid]
	var from, to simtime.Duration
	for i, e := range entries {
		if i == 0 || e.start < from {
			from = e.start
		}
		if e.end > to {
			to = e.end
		}
	}
	r.mu.Unlock()
	return r.Compute(pid, from, to)
}

// attributeStage splits one stage's clock advance across phases. A
// resubmitted attempt is recovery work wholesale; a first attempt
// re-derives the scheduler's critical branch — first maximum of
// (shuffle+shared)+compute in node order, matching sim.RunStageReport's
// float-op grouping bit for bit — and charges its shuffle I/O, shared
// I/O (the broadcast path), spill dilation, remaining compute, and the
// residual (scheduling overhead plus idle wait) in that order.
func attributeStage(st *CritStage, add func(phase string, d simtime.Duration)) {
	total := st.End - st.Start
	if st.Attempt > 0 {
		add(PhaseRecovery, total)
		return
	}
	var crit *CritBranch
	var makespan simtime.Duration
	for i := range st.Branches {
		b := &st.Branches[i]
		if t := (b.ShuffleIO + b.SharedIO) + b.Compute; t > makespan {
			makespan = t
			crit = b
		}
	}
	if crit == nil {
		add(PhaseOverhead, total)
		return
	}
	add(PhaseShuffle, crit.ShuffleIO)
	add(PhaseBroadcast, crit.SharedIO)
	spill := crit.Spill
	if spill > crit.Compute {
		spill = crit.Compute
	}
	add(PhaseSpill, spill)
	add(PhaseCompute, crit.Compute-spill)
	add(PhaseOverhead, total-makespan)
}
