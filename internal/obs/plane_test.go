package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpspark/internal/simtime"
)

// Observability-plane unit tests: the critical-path walk over a
// synthetic timeline, histogram quantiles, the flight-recorder ring and
// the HTTP scrape endpoints.

// TestCritPathSyntheticWalk drives the path computation over a
// hand-built timeline: a driver segment, a two-branch stage, a gap, a
// resubmitted stage and a fully-overlapped entry.
func TestCritPathSyntheticWalk(t *testing.T) {
	r := newCritPathRecorder()
	r.SetEnabled(true)
	const pid = 1

	// [0,2): broadcast segment.
	r.RecordSegment(pid, CritSegment{Start: 0, End: 2 * simtime.Second, Phase: PhaseBroadcast})
	// [2,12): stage, makespan branch is node 1 (3 shuffle + 1 shared + 5
	// compute of which 2 spill = 9); residual overhead 1.
	r.RecordStage(pid, CritStage{
		Start: 2 * simtime.Second, End: 12 * simtime.Second,
		StageID: 0, Tasks: 4, Speculative: 1,
		Branches: []CritBranch{
			{Node: 0, ShuffleIO: 1 * simtime.Second, Compute: 2 * simtime.Second},
			{Node: 1, ShuffleIO: 3 * simtime.Second, SharedIO: 1 * simtime.Second,
				Compute: 5 * simtime.Second, Spill: 2 * simtime.Second},
		},
	})
	// Entry fully covered by the stage above: must be skipped.
	r.RecordSegment(pid, CritSegment{Start: 3 * simtime.Second, End: 4 * simtime.Second, Phase: PhaseCompute})
	// [12,13): uncovered gap. [13,16): resubmitted attempt → recovery.
	r.RecordStage(pid, CritStage{
		Start: 13 * simtime.Second, End: 16 * simtime.Second,
		StageID: 0, Attempt: 1, Tasks: 1,
		Branches: []CritBranch{{Node: 1, Compute: 3 * simtime.Second}},
	})

	rep := r.Compute(pid, 0, 16*simtime.Second)
	want := map[string]simtime.Duration{
		PhaseBroadcast: 3 * simtime.Second, // 2 segment + 1 shared I/O
		PhaseShuffle:   3 * simtime.Second,
		PhaseSpill:     2 * simtime.Second,
		PhaseCompute:   3 * simtime.Second, // 5 − 2 spill
		PhaseOverhead:  1 * simtime.Second, // 10 − 9 makespan
		PhaseRecovery:  3 * simtime.Second,
	}
	for p, d := range want {
		if got := rep.Phase(p); got != d {
			t.Errorf("phase %s = %v, want %v", p, got, d)
		}
	}
	if rep.Len != 15*simtime.Second {
		t.Errorf("Len = %v, want 15s", rep.Len)
	}
	if rep.Unattributed != 1*simtime.Second {
		t.Errorf("Unattributed = %v, want the 1s gap", rep.Unattributed)
	}
	if rep.Stages != 2 || rep.RecoveryStages != 1 || rep.Segments != 1 || rep.Speculative != 1 {
		t.Errorf("counts = %d stages / %d recovery / %d segments / %d spec, want 2/1/1/1",
			rep.Stages, rep.RecoveryStages, rep.Segments, rep.Speculative)
	}

	// ComputeAll spans the recorded timeline exactly.
	all := r.ComputeAll(pid)
	if all.Len != rep.Len || all.Unattributed != rep.Unattributed {
		t.Errorf("ComputeAll = %v/%v, want %v/%v", all.Len, all.Unattributed, rep.Len, rep.Unattributed)
	}

	// A window restricted to the recovery attempt sees only it.
	tail := r.Compute(pid, 13*simtime.Second, 16*simtime.Second)
	if tail.Len != 3*simtime.Second || tail.RecoveryStages != 1 || tail.Unattributed != 0 {
		t.Errorf("tail window = %+v, want pure 3s recovery", tail)
	}
}

// TestCritPathDisabled: the recorder is opt-in — nothing is retained
// while off, and Compute reports the whole window as unattributed.
func TestCritPathDisabled(t *testing.T) {
	r := newCritPathRecorder()
	r.RecordSegment(1, CritSegment{Start: 0, End: simtime.Second, Phase: PhaseCompute})
	r.RecordStage(1, CritStage{Start: 0, End: simtime.Second})
	rep := r.Compute(1, 0, simtime.Second)
	if rep.Len != 0 || rep.Unattributed != simtime.Second {
		t.Errorf("disabled recorder attributed time: %+v", rep)
	}
	if len(r.Pids()) != 0 {
		t.Errorf("disabled recorder retained pids: %v", r.Pids())
	}
}

// TestHistogramQuantile pins the Prometheus-style interpolation and its
// edge cases.
func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()

	// Bounds 1, 2, 4; samples land one per bucket plus one overflow.
	h := reg.Histogram("q_main", nil, ExpBuckets(1, 2, 3))
	for _, v := range []float64{0.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.125, 0.5}, // first bucket interpolates from 0
		{0.25, 1},
		{0.5, 2}, // exact bucket boundary
		{0.9, 4}, // rank in +Inf bucket clamps to highest finite bound
		{1.0, 4}, // same
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}

	// Out-of-range q.
	if got := h.Quantile(-0.1); !math.IsInf(got, -1) {
		t.Errorf("Quantile(-0.1) = %v, want -Inf", got)
	}
	if got := h.Quantile(1.1); !math.IsInf(got, +1) {
		t.Errorf("Quantile(1.1) = %v, want +Inf", got)
	}

	// Empty histogram.
	empty := reg.Histogram("q_empty", nil, ExpBuckets(1, 2, 3))
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile = %v, want NaN", got)
	}

	// Single finite bucket.
	single := reg.Histogram("q_single", nil, []float64{10})
	single.Observe(5)
	single.Observe(20)
	if got := single.Quantile(0.25); got != 5 {
		t.Errorf("single-bucket Quantile(0.25) = %v, want 5", got)
	}
	if got := single.Quantile(0.75); got != 10 {
		t.Errorf("single-bucket Quantile(0.75) = %v, want clamp to 10", got)
	}

	// Only the implicit +Inf bucket: no finite bound to report.
	onlyInf := reg.Histogram("q_inf", nil, nil)
	onlyInf.Observe(1)
	if got := onlyInf.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("+Inf-only Quantile = %v, want NaN", got)
	}
}

// TestFlightRecorderRing: wrap-around, sequence numbers, drop counting,
// Tail and clock stamping.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	clock := simtime.Duration(0)
	f.SetClockSource(func() simtime.Duration { return clock })

	for i := 0; i < 6; i++ {
		clock = simtime.Duration(i) * simtime.Second
		f.Record(Event{Clock: -1, Type: EvStageSubmit, Stage: i, Attempt: 0, Part: -1, Node: -1, Shuffle: -1})
	}
	if f.Len() != 4 {
		t.Errorf("Len = %d, want ring capacity 4", f.Len())
	}
	if f.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", f.Dropped())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot holds %d events, want 4", len(snap))
	}
	for i, ev := range snap {
		wantSeq := uint64(i + 2) // oldest two overwritten
		if ev.Seq != wantSeq || ev.Stage != i+2 {
			t.Errorf("snap[%d] = seq %d stage %d, want seq %d stage %d", i, ev.Seq, ev.Stage, wantSeq, i+2)
		}
		if ev.Clock != float64(i+2) {
			t.Errorf("snap[%d] clock = %v, want stamped %v", i, ev.Clock, i+2)
		}
	}
	tail := f.Tail(2)
	if len(tail) != 2 || tail[0].Seq != 4 || tail[1].Seq != 5 {
		t.Errorf("Tail(2) = %+v, want seqs 4,5 oldest-first", tail)
	}
	if got := f.Tail(100); len(got) != 4 {
		t.Errorf("oversized Tail = %d events, want all 4", len(got))
	}

	// An explicit clock stamp is preserved verbatim.
	f.Record(Event{Clock: 42.5, Type: EvFault, Stage: -1, Part: -1, Node: -1, Shuffle: -1})
	last := f.Tail(1)[0]
	if last.Clock != 42.5 {
		t.Errorf("explicit clock = %v, want 42.5", last.Clock)
	}

	// JSONL round-trip: every line decodes back to the source event.
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL has %d lines, want 4", len(lines))
	}
	var back Event
	if err := json.Unmarshal([]byte(lines[3]), &back); err != nil {
		t.Fatal(err)
	}
	if back != last {
		t.Errorf("JSONL round-trip drifted: %+v vs %+v", back, last)
	}
}

// buildFixedRegistry populates a registry with a deterministic mix of
// every metric type for the exposition-format golden test.
func buildFixedRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("dpspark_stage_total", Labels{"kind": "update"}).Add(7)
	reg.Counter("dpspark_stage_total", Labels{"kind": "result"}).Add(3)
	reg.Gauge("dpspark_critical_path_seconds", Labels{"phase": "compute"}).Set(12.5)
	reg.Gauge("dpspark_critical_path_seconds", Labels{"phase": "total"}).Set(20)
	h := reg.Histogram("dpspark_task_seconds", nil, ExpBuckets(0.5, 2, 3))
	for _, v := range []float64{0.25, 0.75, 3} {
		h.Observe(v)
	}
	return reg
}

// TestPrometheusGolden pins WritePrometheus output byte-for-byte: the
// exposition format is an interface CI and dashboards parse, so drift
// must be deliberate (-update regenerates).
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("prometheus exposition drifted from golden file:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Determinism: a second render is byte-identical.
	var again bytes.Buffer
	if err := buildFixedRegistry().WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of the same registry differ")
	}
}

// TestHTTPEndpoints exercises every scrape route against a populated
// observer: the live /metrics bytes must equal a direct WritePrometheus
// dump, /events must serve well-formed JSON lines, and /debug/critpath
// must expose the per-context reports.
func TestHTTPEndpoints(t *testing.T) {
	o := New()
	o.EnableCritPath(true)
	o.Metrics().Counter("dpspark_stage_total", Labels{"kind": "update"}).Add(2)
	o.Metrics().Gauge("dpspark_clock_seconds", nil).Set(3.5)
	o.Flight().Record(Event{Clock: 1, Type: EvStageSubmit, Stage: 0, Part: -1, Node: -1, Shuffle: -1})
	o.Flight().Record(Event{Clock: 2, Type: EvStageComplete, Stage: 0, Part: -1, Node: -1, Shuffle: -1})
	o.CritPath().RecordStage(7, CritStage{
		Start: 0, End: 2 * simtime.Second, Tasks: 1,
		Branches: []CritBranch{{Compute: 2 * simtime.Second}},
	})

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), body.String()
	}

	if code, _, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, ctype, body := get("/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics = %d, content-type %q", code, ctype)
	}
	var direct bytes.Buffer
	if err := o.Metrics().WritePrometheus(&direct); err != nil {
		t.Fatal(err)
	}
	if body != direct.String() {
		t.Errorf("live /metrics differs from WritePrometheus dump:\n%s\nvs\n%s", body, direct.String())
	}

	code, ctype, body = get("/events?n=1")
	if code != http.StatusOK || ctype != "application/x-ndjson" {
		t.Errorf("/events = %d, content-type %q", code, ctype)
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &ev); err != nil {
		t.Fatalf("/events line is not JSON: %v\n%s", err, body)
	}
	if ev.Type != EvStageComplete {
		t.Errorf("/events?n=1 returned %q, want newest event %q", ev.Type, EvStageComplete)
	}
	if code, _, _ := get("/events?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("/events?n=bogus = %d, want 400", code)
	}

	code, ctype, body = get("/debug/critpath")
	if code != http.StatusOK || ctype != "application/json" {
		t.Errorf("/debug/critpath = %d, content-type %q", code, ctype)
	}
	var dump struct {
		Enabled bool                      `json:"enabled"`
		Pids    map[string]CritPathReport `json:"pids"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/critpath is not JSON: %v\n%s", err, body)
	}
	if !dump.Enabled {
		t.Error("/debug/critpath reports disabled")
	}
	rep, ok := dump.Pids["7"]
	if !ok || rep.Len != 2*simtime.Second || rep.Phase(PhaseCompute) != 2*simtime.Second {
		t.Errorf("/debug/critpath pid 7 = %+v (present %v), want 2s compute", rep, ok)
	}
}

// TestListenAndServe: the real listener binds, serves and closes.
func TestListenAndServe(t *testing.T) {
	o := New()
	srv, err := ListenAndServe("localhost:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz over real listener = %d", resp.StatusCode)
	}
	if _, err := ListenAndServe("256.256.256.256:0", o); err == nil {
		t.Error("bad bind address must error synchronously")
	}
}

// TestFlightRecorderSinceCursor: Since(seq) is the tailing cursor — it
// returns exactly the events newer than the cursor, stays correct across
// ring wrap (where the cursor may point at an already-overwritten seq),
// and returns nothing once the caller is caught up.
func TestFlightRecorderSinceCursor(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 3; i++ {
		f.Record(Event{Type: EvStageSubmit, Stage: i, Attempt: 0, Part: -1, Node: -1, Shuffle: -1})
	}
	got := f.Since(0)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("Since(0) = %+v, want seqs 1,2", got)
	}
	if got := f.Since(2); len(got) != 0 {
		t.Fatalf("caught-up Since = %+v, want empty", got)
	}
	if got := f.Since(100); len(got) != 0 {
		t.Fatalf("future cursor Since = %+v, want empty", got)
	}

	// Wrap the ring: seqs 0-1 are overwritten. A cursor pointing into the
	// dropped range returns everything still held (the reader lost events
	// and the Dropped counter says so); a cursor inside the held range
	// returns the strict suffix.
	for i := 3; i < 6; i++ {
		f.Record(Event{Type: EvStageSubmit, Stage: i, Attempt: 0, Part: -1, Node: -1, Shuffle: -1})
	}
	if got := f.Since(1); len(got) != 4 || got[0].Seq != 2 {
		t.Fatalf("Since(1) after wrap = %d events starting seq %d, want all 4 held from seq 2", len(got), got[0].Seq)
	}
	if got := f.Since(4); len(got) != 1 || got[0].Seq != 5 {
		t.Fatalf("Since(4) after wrap = %+v, want just seq 5", got)
	}
	if f.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", f.Dropped())
	}
}

// TestFlightDropCounter: the observer wires ring overwrites into
// dpspark_flight_events_dropped_total so scrapers notice loss without
// diffing sequence numbers.
func TestFlightDropCounter(t *testing.T) {
	o := New()
	overflow := DefaultFlightCapacity + 7
	for i := 0; i < overflow; i++ {
		o.Flight().Record(Event{Type: EvTaskRetry, Stage: -1, Part: -1, Node: -1, Shuffle: -1})
	}
	if n := o.Metrics().CounterTotal("dpspark_flight_events_dropped_total"); n != 7 {
		t.Fatalf("drop counter = %d, want 7", n)
	}
	if d := o.Flight().Dropped(); d != 7 {
		t.Fatalf("Dropped() = %d, want 7", d)
	}
}

// TestEventsSinceEndpoint: /events?since=SEQ serves the NDJSON suffix
// past the cursor, so pollers scrape incrementally.
func TestEventsSinceEndpoint(t *testing.T) {
	o := New()
	for i := 0; i < 5; i++ {
		o.Flight().Record(Event{Clock: float64(i), Type: EvStageSubmit, Stage: i, Part: -1, Node: -1, Shuffle: -1})
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events?since=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("since=2 returned %d lines, want 2:\n%s", len(lines), body.String())
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if want := uint64(3 + i); ev.Seq != want {
			t.Fatalf("line %d seq = %d, want %d", i, ev.Seq, want)
		}
	}

	if resp, err := http.Get(srv.URL + "/events?since=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("since=bogus = %d, want 400", resp.StatusCode)
		}
	}
}

// TestEventsJobFilter: /events?job=ID serves only one tenant job's
// events, composing with both the ?since cursor and the ?n tail.
func TestEventsJobFilter(t *testing.T) {
	o := New()
	for i := 0; i < 6; i++ {
		job := "job-1"
		if i%2 == 1 {
			job = "job-2"
		}
		o.Flight().Record(Event{Clock: float64(i), Type: EvStageSubmit, Job: job, Stage: i, Part: -1, Node: -1, Shuffle: -1})
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	fetch := func(query string) []Event {
		t.Helper()
		resp, err := http.Get(srv.URL + "/events" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		var out []Event
		for _, line := range strings.Split(strings.TrimSpace(body.String()), "\n") {
			if line == "" {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("line not JSON: %v\n%s", err, line)
			}
			out = append(out, ev)
		}
		return out
	}

	evs := fetch("?job=job-1")
	if len(evs) != 3 {
		t.Fatalf("job=job-1 returned %d events, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev.Job != "job-1" {
			t.Fatalf("foreign event leaked through the job filter: %+v", ev)
		}
	}
	if evs := fetch("?since=2&job=job-2"); len(evs) != 2 {
		t.Fatalf("since=2&job=job-2 returned %d events, want 2", len(evs))
	} else {
		for _, ev := range evs {
			if ev.Job != "job-2" || ev.Seq <= 2 {
				t.Fatalf("cursor+job filter broken: %+v", ev)
			}
		}
	}
	if evs := fetch("?job=job-3"); len(evs) != 0 {
		t.Fatalf("unknown job returned %d events, want 0", len(evs))
	}
}
