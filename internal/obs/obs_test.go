package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dpspark/internal/simtime"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixedObserver assembles a small deterministic trace: one process,
// a driver lane, two core lanes and an io lane, with nested stage/task
// spans.
func buildFixedObserver() *Observer {
	o := New()
	o.EnableTrace(true)
	pid := o.RegisterProcess("dpspark test-cluster×2")
	o.NameThread(pid, 0, "driver")
	o.NameThread(pid, 1, "node0 core0")
	o.NameThread(pid, 2, "node0 core1")
	o.NameThread(pid, 3, "node0 io")
	o.Add(Span{Name: "stage 0 result", Cat: "stage,update", Pid: pid, Tid: 0,
		Start: 0, Dur: 3 * simtime.Second,
		Args: map[string]string{"phase": "update", "tasks": "2"}})
	o.Add(Span{Name: "io stage 0", Cat: "io", Pid: pid, Tid: 3,
		Start: 0, Dur: simtime.Second})
	o.Add(Span{Name: "task 0.0", Cat: "task", Pid: pid, Tid: 1,
		Start: simtime.Second, Dur: simtime.Second})
	o.Add(Span{Name: "task 0.1", Cat: "task", Pid: pid, Tid: 2,
		Start: simtime.Second, Dur: 2 * simtime.Second})
	return o
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedObserver().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("chrome trace drifted from golden file:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedObserver().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if trace.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.Unit)
	}
	var metas, completes int
	var stage, task map[string]any
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			completes++
			name := ev["name"].(string)
			if strings.HasPrefix(name, "stage") {
				stage = ev
			}
			if name == "task 0.1" {
				task = ev
			}
		default:
			t.Errorf("unexpected event phase %v", ev["ph"])
		}
	}
	// process_name + 4×(thread_name + thread_sort_index).
	if metas != 9 {
		t.Errorf("metadata events = %d, want 9", metas)
	}
	if completes != 4 {
		t.Errorf("complete events = %d, want 4", completes)
	}
	// Spans nest: the task interval sits inside the stage interval.
	ts, dur := task["ts"].(float64), task["dur"].(float64)
	sts, sdur := stage["ts"].(float64), stage["dur"].(float64)
	if ts < sts || ts+dur > sts+sdur {
		t.Errorf("task span [%v,%v] not nested in stage span [%v,%v]", ts, ts+dur, sts, sts+sdur)
	}
	// Timestamps are microseconds: 1 virtual second = 1e6.
	if ts != 1e6 || dur != 2e6 {
		t.Errorf("task ts/dur = %v/%v µs, want 1e6/2e6", ts, dur)
	}
}

func TestTraceDisabledCollectsNothing(t *testing.T) {
	o := New()
	o.Add(Span{Name: "x", Pid: 1})
	if n := o.SpanCount(); n != 0 {
		t.Errorf("spans collected while tracing off: %d", n)
	}
	o.EnableTrace(true)
	o.Add(Span{Name: "x", Pid: 1})
	if n := o.SpanCount(); n != 1 {
		t.Errorf("spans = %d after enabling, want 1", n)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("c_total", Labels{"w": string(rune('a' + w%4))}).Inc()
				reg.Gauge("g", nil).SetMax(float64(i))
				reg.Histogram("h_seconds", nil, LinearBuckets(0, 100, 12)).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.CounterTotal("c_total"); got != workers*perWorker {
		t.Errorf("counter total = %d, want %d", got, workers*perWorker)
	}
	h := reg.Histogram("h_seconds", nil, nil)
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if g := reg.Gauge("g", nil).Value(); g != perWorker-1 {
		t.Errorf("gauge high-water = %v, want %v", g, perWorker-1)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE c_total counter",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="+Inf"} 16000`,
		"h_seconds_count 16000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}

func TestObserverConcurrentSpans(t *testing.T) {
	o := New()
	o.EnableTrace(true)
	pid := o.RegisterProcess("p")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o.NameThread(pid, i%4, "lane")
				o.Add(Span{Name: "s", Pid: pid, Tid: i % 4})
			}
		}()
	}
	wg.Wait()
	if n := o.SpanCount(); n != 4000 {
		t.Errorf("spans = %d, want 4000", n)
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on counter/gauge type mismatch")
		}
	}()
	reg := NewRegistry()
	reg.Counter("m", nil)
	reg.Gauge("m", nil)
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", nil, ExpBuckets(1, 2, 3)) // 1, 2, 4
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 104.5 {
		t.Errorf("sum = %v, want 104.5", h.Sum())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="2"} 2`,
		`h_bucket{le="4"} 3`,
		`h_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in:\n%s", want, buf.String())
		}
	}
}
