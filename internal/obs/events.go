package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"dpspark/internal/simtime"
)

// Flight-recorder event types. One constant per instrumentation site so
// dumps can be filtered without parsing Detail strings.
const (
	EvStageSubmit   = "stage-submit"
	EvStageComplete = "stage-complete"
	EvStageResubmit = "stage-resubmit"
	EvTaskRetry     = "task-retry"
	EvFetchFailure  = "fetch-failure"
	EvBlacklist     = "blacklist"
	EvSpeculation   = "speculation"
	EvFault         = "fault-injection"
	EvRestore       = "remote-restore"
	EvCheckpoint    = "checkpoint"
	EvEviction      = "eviction"
	EvReplication   = "replication"
	EvCorrupt       = "corrupt-detected"
	EvJobSubmit     = "job-submit"
	EvJobFinish     = "job-finish"
	EvSuspicion     = "suspicion"
	EvFencedCommit  = "fenced-commit"
	EvThrottle      = "recovery-throttle"
)

// Event is one structured flight-recorder record. Integer fields use -1
// for "not applicable" so that legitimate zero values (stage 0, node 0,
// partition 0) survive JSON round trips unambiguously.
type Event struct {
	// Seq is the record's global sequence number (monotonic, never
	// reset); gaps after a wrap tell the reader how much was dropped.
	Seq uint64 `json:"seq"`
	// Clock is the virtual-clock timestamp in model seconds. Producers
	// that have no clock at hand record -1 and the recorder stamps the
	// current clock from its clock source (0 without one).
	Clock float64 `json:"clock_s"`
	// Type is one of the Ev* constants.
	Type string `json:"type"`
	// Stage, Attempt, Part, Node and Shuffle locate the event in the
	// job's stage DAG; -1 where not applicable.
	Stage   int `json:"stage"`
	Attempt int `json:"attempt"`
	Part    int `json:"part"`
	Node    int `json:"node"`
	Shuffle int `json:"shuffle"`
	// Detail carries free-form context (fault kind, block key, error).
	Detail string `json:"detail,omitempty"`
	// Job labels the event with the owning job's ID when the producing
	// context runs inside a multi-tenant service; empty for standalone
	// runs. /events?job=ID filters on it.
	Job string `json:"job,omitempty"`
}

// DefaultFlightCapacity is the ring size used by New.
const DefaultFlightCapacity = 4096

// FlightRecorder is a bounded ring buffer of structured events: always
// on, lock-cheap (one short mutex hold per record, no allocation after
// the ring fills), and dumpable as JSON lines at any point — including
// concurrently with producers.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []Event
	cap   int
	head  int    // index of the oldest record when full
	n     int    // number of live records (≤ cap)
	seq   uint64 // next sequence number
	clock func() simtime.Duration
	// dropped, when set, mirrors the ring's overwrite count into a
	// metrics counter so scrapers see event loss without reading seqs.
	dropped *Counter
}

// NewFlightRecorder returns an empty recorder holding at most capacity
// events (DefaultFlightCapacity if capacity < 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{cap: capacity}
}

// SetClockSource installs the virtual-clock reader used to stamp events
// recorded with Clock < 0. The function must be safe for concurrent use.
func (f *FlightRecorder) SetClockSource(fn func() simtime.Duration) {
	f.mu.Lock()
	f.clock = fn
	f.mu.Unlock()
}

// SetDropCounter installs a metrics counter incremented every time the
// full ring overwrites (drops) its oldest event.
func (f *FlightRecorder) SetDropCounter(c *Counter) {
	f.mu.Lock()
	f.dropped = c
	f.mu.Unlock()
}

// Record appends one event, stamping Seq and (when ev.Clock < 0) the
// current virtual clock. The oldest event is overwritten once the ring
// is full.
func (f *FlightRecorder) Record(ev Event) {
	f.mu.Lock()
	// The clock source may itself take a lock (the simulator's), but the
	// simulator never calls back into the recorder, so the lock order
	// recorder→sim is acyclic.
	if ev.Clock < 0 {
		ev.Clock = 0
		if f.clock != nil {
			ev.Clock = f.clock().Seconds()
		}
	}
	ev.Seq = f.seq
	f.seq++
	if f.buf == nil {
		f.buf = make([]Event, 0, f.cap)
	}
	if f.n < f.cap {
		f.buf = append(f.buf, ev)
		f.n++
	} else {
		f.buf[f.head] = ev
		f.head = (f.head + 1) % f.cap
		if f.dropped != nil {
			f.dropped.Inc()
		}
	}
	f.mu.Unlock()
}

// Len returns the number of events currently held.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Dropped returns how many events have been overwritten by the ring.
func (f *FlightRecorder) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq - uint64(f.n)
}

// Snapshot returns the held events oldest-first.
func (f *FlightRecorder) Snapshot() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, f.n)
	for i := 0; i < f.n; i++ {
		out = append(out, f.buf[(f.head+i)%f.cap])
	}
	return out
}

// Tail returns the newest n events oldest-first (all of them if n is
// larger than the ring's population, or ≤ 0).
func (f *FlightRecorder) Tail(n int) []Event {
	all := f.Snapshot()
	if n <= 0 || n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// Since returns the held events with Seq > seq, oldest-first — the
// tailing cursor: a scraper remembers the last Seq it saw and asks only
// for what is new, instead of re-reading the whole ring. Since(0) after
// at least one event returns everything held except Seq 0 itself; use
// Snapshot for a full read.
func (f *FlightRecorder) Since(seq uint64) []Event {
	all := f.Snapshot()
	// Seqs are monotonically increasing through the ring, so binary
	// search for the first event past the cursor.
	lo, hi := 0, len(all)
	for lo < hi {
		mid := (lo + hi) / 2
		if all[mid].Seq <= seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return all[lo:]
}

// WriteJSONL dumps the newest n events (all for n ≤ 0) as JSON lines,
// oldest first.
func (f *FlightRecorder) WriteJSONL(w io.Writer, n int) error {
	events := f.Tail(n)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
