package ge

import (
	"math"
	"math/rand"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
)

func newCtx() *rdd.Context {
	return rdd.NewContext(rdd.Conf{Cluster: cluster.Local(4)})
}

func system(m int, rng *rand.Rand) (*matrix.Dense, []float64) {
	a := matrix.NewDense(m)
	a.FillDiagonallyDominant(rng)
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64() * 10
	}
	return a, b
}

func TestSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, cfg := range []core.Config{
		{BlockSize: 8, Driver: core.CB},
		{BlockSize: 6, Driver: core.IM},
		{BlockSize: 8, Driver: core.CB, RecursiveKernel: true, RShared: 2, Base: 4, Threads: 2},
	} {
		a, b := system(23, rng)
		x, stats, err := New(cfg).Solve(newCtx(), a, b)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Time <= 0 {
			t.Fatal("no virtual time")
		}
		if r := Residual(a, x, b); r > 1e-6 {
			t.Fatalf("residual %v too large (driver %v)", r, cfg.Driver)
		}
	}
}

func TestSolveMatchesReferenceElimination(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a, b := system(16, rng)
	tbl, err := Augment(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := tbl.Clone()
	semiring.GaussianEliminationReference(want.Data, want.N)
	got, _, err := New(core.Config{BlockSize: 5, Driver: core.CB}).Eliminate(newCtx(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got.MaxAbsDiff(want); diff > 1e-8 {
		t.Fatalf("elimination diff %v", diff)
	}
}

func TestLUFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := matrix.NewDense(20)
	a.FillDiagonallyDominant(rng)
	elim, _, err := New(core.Config{BlockSize: 5, Driver: core.CB}).Eliminate(newCtx(), a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	l, u := LU(elim)
	// L unit lower triangular, U upper triangular.
	for i := 0; i < a.N; i++ {
		if l.At(i, i) != 1 {
			t.Fatalf("L[%d,%d] = %v", i, i, l.At(i, i))
		}
		for j := i + 1; j < a.N; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("L upper part nonzero at (%d,%d)", i, j)
			}
			if u.At(j, i) != 0 {
				t.Fatalf("U lower part nonzero at (%d,%d)", j, i)
			}
		}
	}
	if diff := MatMul(l, u).MaxAbsDiff(a); diff > 1e-8*float64(a.N) {
		t.Fatalf("L·U − A diff %v", diff)
	}
}

func TestBackSubstituteKnownSystem(t *testing.T) {
	// 2x + y = 5; y = 1 → x = 2 (already upper triangular).
	tbl := matrix.NewDense(3)
	tbl.Set(0, 0, 2)
	tbl.Set(0, 1, 1)
	tbl.Set(0, 2, 5)
	tbl.Set(1, 1, 1)
	tbl.Set(1, 2, 1)
	tbl.Set(2, 2, 1)
	x, err := BackSubstitute(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestBackSubstituteZeroPivot(t *testing.T) {
	tbl := matrix.NewDense(2) // pivot 0
	if _, err := BackSubstitute(tbl); err == nil {
		t.Fatal("expected zero-pivot error")
	}
	if _, err := BackSubstitute(matrix.NewDense(1)); err == nil {
		t.Fatal("expected too-small error")
	}
}

func TestAugmentValidation(t *testing.T) {
	if _, err := Augment(matrix.NewDense(3), []float64{1}); err == nil {
		t.Fatal("expected rhs length error")
	}
	a := matrix.NewDense(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	tbl, err := Augment(a, []float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.N != 3 || tbl.At(0, 2) != 5 || tbl.At(1, 2) != 6 || tbl.At(2, 2) != 1 {
		t.Fatalf("augmented table wrong:\n%v", tbl)
	}
}

func TestEliminateSymbolic(t *testing.T) {
	ctx := rdd.NewContext(rdd.Conf{Cluster: cluster.Skylake16()})
	stats, err := New(core.Config{BlockSize: 512, Driver: core.CB}).EliminateSymbolic(ctx, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Time <= 0 {
		t.Fatal("no virtual time")
	}
}

func TestMissingBlockSize(t *testing.T) {
	if _, _, err := New(core.Config{}).Eliminate(newCtx(), matrix.NewDense(4)); err == nil {
		t.Fatal("expected BlockSize error")
	}
}
