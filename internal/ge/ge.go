// Package ge solves dense linear systems by Gaussian elimination without
// pivoting — the paper's linear-algebra benchmark. Forward elimination is
// the GEP computation executed on the distributed framework; back
// substitution, LU extraction and residual checks run at the driver.
//
// As in the paper (§IV), the system of m equations is represented by an
// n×n DP table with n = m+1: row p holds the coefficients of equation p
// and its right-hand side in the last column. Elimination without
// pivoting is numerically safe for diagonally dominant or symmetric
// positive-definite matrices, the class the paper targets.
package ge

import (
	"fmt"
	"math"

	"dpspark/internal/core"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
)

// Solver configures GE runs.
type Solver struct {
	// Config is the GEP execution configuration; Rule defaults to the
	// Gaussian elimination rule when nil.
	Config core.Config
}

// New returns a solver with the given execution configuration.
func New(cfg core.Config) *Solver {
	if cfg.Rule == nil {
		cfg.Rule = semiring.NewGaussian()
	}
	return &Solver{Config: cfg}
}

// Augment packs A (m×m) and b (length m) into the (m+1)×(m+1) GEP table.
// The final slack row is inert padding (zero coefficients, unit pivot).
func Augment(a *matrix.Dense, b []float64) (*matrix.Dense, error) {
	m := a.N
	if len(b) != m {
		return nil, fmt.Errorf("ge: rhs length %d != %d unknowns", len(b), m)
	}
	t := matrix.NewDense(m + 1)
	for i := 0; i < m; i++ {
		copy(t.Data[i*(m+1):i*(m+1)+m], a.Data[i*m:(i+1)*m])
		t.Set(i, m, b[i])
	}
	t.Set(m, m, 1)
	return t, nil
}

// Eliminate runs distributed forward elimination on an n×n GEP table,
// returning the eliminated table (upper triangle + untouched multipliers).
func (s *Solver) Eliminate(ctx *rdd.Context, x *matrix.Dense) (*matrix.Dense, *core.Stats, error) {
	cfg := s.Config
	if cfg.BlockSize < 1 {
		return nil, nil, fmt.Errorf("ge: BlockSize must be set")
	}
	bl := matrix.Block(x, cfg.BlockSize, cfg.Rule.Pad(), cfg.Rule.PadDiag())
	out, stats, err := core.Run(ctx, bl, cfg)
	if err != nil {
		return nil, stats, err
	}
	return out.ToDense(), stats, nil
}

// EliminateSymbolic prices an n×n elimination on the configured cluster
// without computing (model mode).
func (s *Solver) EliminateSymbolic(ctx *rdd.Context, n int) (*core.Stats, error) {
	bl := matrix.NewSymbolicBlocked(n, s.Config.BlockSize)
	_, stats, err := core.Run(ctx, bl, s.Config)
	return stats, err
}

// Solve solves A·x = b for diagonally dominant or SPD A.
func (s *Solver) Solve(ctx *rdd.Context, a *matrix.Dense, b []float64) ([]float64, *core.Stats, error) {
	t, err := Augment(a, b)
	if err != nil {
		return nil, nil, err
	}
	elim, stats, err := s.Eliminate(ctx, t)
	if err != nil {
		return nil, stats, err
	}
	x, err := BackSubstitute(elim)
	return x, stats, err
}

// BackSubstitute extracts the solution from an eliminated augmented
// table: x[i] = (rhs[i] − Σ_{j>i} U[i,j]·x[j]) / U[i,i].
func BackSubstitute(t *matrix.Dense) ([]float64, error) {
	m := t.N - 1
	if m < 1 {
		return nil, fmt.Errorf("ge: table too small (%d)", t.N)
	}
	x := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		sum := t.At(i, m)
		for j := i + 1; j < m; j++ {
			sum -= t.At(i, j) * x[j]
		}
		piv := t.At(i, i)
		if piv == 0 || math.IsNaN(piv) {
			return nil, fmt.Errorf("ge: zero pivot at row %d (matrix not GE-safe without pivoting)", i)
		}
		x[i] = sum / piv
	}
	return x, nil
}

// LU extracts the factors from an eliminated table (the paper: GE also
// yields the LU decomposition). U is the upper triangle with the pivots;
// L is unit lower triangular with L[i,k] = X[i,k]/X[k,k] — the GEP update
// leaves the multipliers' numerators in the strictly-lower part.
func LU(t *matrix.Dense) (l, u *matrix.Dense) {
	n := t.N
	l = matrix.NewDense(n)
	u = matrix.NewDense(n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < n; j++ {
			switch {
			case j >= i:
				u.Set(i, j, t.At(i, j))
			default:
				l.Set(i, j, t.At(i, j)/t.At(j, j))
			}
		}
	}
	return l, u
}

// Residual returns max_i |A·x − b|_i, the solution quality metric the
// tests assert on.
func Residual(a *matrix.Dense, x, b []float64) float64 {
	var worst float64
	for i := 0; i < a.N; i++ {
		sum := -b[i]
		for j := 0; j < a.N; j++ {
			sum += a.At(i, j) * x[j]
		}
		if r := math.Abs(sum); r > worst {
			worst = r
		}
	}
	return worst
}

// MatMul returns l·u (dense, O(n³)) for factor verification in tests.
func MatMul(a, b *matrix.Dense) *matrix.Dense {
	n := a.N
	out := matrix.NewDense(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += aik * b.At(k, j)
			}
		}
	}
	return out
}
