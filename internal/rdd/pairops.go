package rdd

// Pair-RDD operations. These mirror the PySpark calls of the paper's
// Listings 1–2: partitionBy, combineByKey, mapValues, plus the usual
// conveniences built on them.

// MapValues transforms values while provably keeping keys, so the
// partitioner is preserved (narrow, like Spark's mapValues).
func MapValues[K comparable, V, W any](r *RDD[Pair[K, V]], f func(tc *TaskContext, key K, v V) W) *RDD[Pair[K, W]] {
	parent := r.ds
	ctx := r.ds.ctx
	ds := ctx.newDataset("mapValues<-"+parent.name, parent.parts, parent.part)
	ds.deps = []*dataset{parent}
	ds.narrow = func(tc *TaskContext, split int) []Record {
		in := ctx.iterate(parent, split, tc)
		out := make([]Record, len(in))
		for i, rec := range in {
			p := rec.(Pair[K, V])
			out[i] = Pair[K, W]{Key: p.Key, Value: f(tc, p.Key, p.Value)}
		}
		return out
	}
	return &RDD[Pair[K, W]]{ds: ds}
}

// PartitionBy redistributes the records according to part. If the RDD is
// already partitioned by an equal partitioner this is a no-op (Spark
// skips the shuffle); otherwise it is a wide transformation.
func PartitionBy[K comparable, V any](r *RDD[Pair[K, V]], part Partitioner) *RDD[Pair[K, V]] {
	if r.ds.part != nil && r.ds.part.Equal(part) {
		return r
	}
	ctx := r.ds.ctx
	sd := ctx.newShuffleDep(r.ds, part,
		func(key, val any) Record { return Pair[K, V]{Key: key.(K), Value: val.(V)} },
		nil, nil, nil)
	ds := ctx.newDataset("partitionBy<-"+r.ds.name, part.NumPartitions(), part)
	ds.shuffle = sd
	return &RDD[Pair[K, V]]{ds: ds}
}

// CombineByKey aggregates values per key into combiners of type C with
// map-side combining, shuffling by part — Spark's combineByKey, the wide
// transformation at the heart of the IM driver (Listing 1). If the RDD is
// already partitioned by an equal partitioner the aggregation happens
// in place without a shuffle (narrow), as Spark does.
func CombineByKey[K comparable, V, C any](r *RDD[Pair[K, V]],
	create func(V) C, mergeValue func(C, V) C, mergeCombiners func(C, C) C,
	part Partitioner) *RDD[Pair[K, C]] {

	ctx := r.ds.ctx
	if r.ds.part != nil && r.ds.part.Equal(part) {
		// Co-partitioned: combine within each partition, no data movement.
		parent := r.ds
		ds := ctx.newDataset("combineByKey(narrow)<-"+parent.name, parent.parts, parent.part)
		ds.deps = []*dataset{parent}
		ds.narrow = func(tc *TaskContext, split int) []Record {
			in := ctx.iterate(parent, split, tc)
			combiners := make(map[K]C, len(in))
			order := make([]K, 0, len(in))
			for _, rec := range in {
				p := rec.(Pair[K, V])
				if comb, seen := combiners[p.Key]; seen {
					combiners[p.Key] = mergeValue(comb, p.Value)
				} else {
					combiners[p.Key] = create(p.Value)
					order = append(order, p.Key)
				}
			}
			out := make([]Record, 0, len(order))
			for _, k := range order {
				out = append(out, Pair[K, C]{Key: k, Value: combiners[k]})
			}
			return out
		}
		return &RDD[Pair[K, C]]{ds: ds}
	}

	sd := ctx.newShuffleDep(r.ds, part,
		func(key, val any) Record { return Pair[K, C]{Key: key.(K), Value: val.(C)} },
		func(v any) any { return create(v.(V)) },
		func(c, v any) any { return mergeValue(c.(C), v.(V)) },
		func(a, b any) any { return mergeCombiners(a.(C), b.(C)) })
	ds := ctx.newDataset("combineByKey<-"+r.ds.name, part.NumPartitions(), part)
	ds.shuffle = sd
	return &RDD[Pair[K, C]]{ds: ds}
}

// GroupByKey gathers all values per key (combineByKey with slice
// combiners).
func GroupByKey[K comparable, V any](r *RDD[Pair[K, V]], part Partitioner) *RDD[Pair[K, []V]] {
	return CombineByKey(r,
		func(v V) []V { return []V{v} },
		func(c []V, v V) []V { return append(c, v) },
		func(a, b []V) []V { return append(a, b...) },
		part)
}

// ReduceByKey merges values per key with an associative, commutative op.
func ReduceByKey[K comparable, V any](r *RDD[Pair[K, V]], op func(a, b V) V, part Partitioner) *RDD[Pair[K, V]] {
	return CombineByKey(r,
		func(v V) V { return v },
		op,
		op,
		part)
}

// Keys projects the keys of a pair RDD.
func Keys[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[K] {
	return Map(r, func(_ *TaskContext, p Pair[K, V]) K { return p.Key })
}

// Values projects the values of a pair RDD.
func Values[K comparable, V any](r *RDD[Pair[K, V]]) *RDD[V] {
	return Map(r, func(_ *TaskContext, p Pair[K, V]) V { return p.Value })
}
