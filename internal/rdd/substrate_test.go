package rdd

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dpspark/internal/cluster"
	"dpspark/internal/simtime"
)

func TestSlotSchedulerPriorityOrder(t *testing.T) {
	s := newSlotScheduler(1)
	if !s.acquire(0, nil) {
		t.Fatal("first acquire should get the slot immediately")
	}

	// Queue three waiters: low, high, mid. Releases must serve them
	// high, mid, low — priority first, not arrival order.
	type got struct {
		name string
	}
	order := make(chan got, 3)
	var started sync.WaitGroup
	launch := func(name string, prio int) {
		started.Add(1)
		go func() {
			started.Done()
			s.acquire(prio, nil)
			order <- got{name}
		}()
		started.Wait()
		// Wait until the waiter is actually queued before launching the
		// next, so arrival order is deterministic.
		for i := 0; ; i++ {
			if s.waiting() >= 1 {
				break
			}
			if i > 1000 {
				t.Fatalf("waiter %s never queued", name)
			}
			time.Sleep(time.Millisecond)
		}
	}
	launch("low", 1)
	for s.waiting() < 1 {
		time.Sleep(time.Millisecond)
	}
	launch("high", 9)
	for s.waiting() < 2 {
		time.Sleep(time.Millisecond)
	}
	launch("mid", 5)
	for s.waiting() < 3 {
		time.Sleep(time.Millisecond)
	}

	want := []string{"high", "mid", "low"}
	for _, w := range want {
		s.release()
		g := <-order
		if g.name != w {
			t.Fatalf("release served %q, want %q", g.name, w)
		}
	}
	s.release() // last holder's slot back; no waiters left
	if !s.acquire(0, nil) {
		t.Fatal("slot should be free again")
	}
}

func TestSlotSchedulerFIFOWithinPriority(t *testing.T) {
	s := newSlotScheduler(1)
	s.acquire(0, nil)

	order := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		go func() {
			s.acquire(7, nil)
			order <- i
		}()
		for s.waiting() < i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	for want := 0; want < 3; want++ {
		s.release()
		if got := <-order; got != want {
			t.Fatalf("equal-priority release served %d, want %d (FIFO)", got, want)
		}
	}
}

func TestSlotSchedulerCancel(t *testing.T) {
	s := newSlotScheduler(1)
	s.acquire(0, nil)

	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- s.acquire(0, cancel) }()
	for s.waiting() < 1 {
		time.Sleep(time.Millisecond)
	}
	close(cancel)
	if got := <-done; got {
		t.Fatal("cancelled acquire reported true")
	}
	if s.waiting() != 0 {
		t.Fatalf("cancelled waiter still queued: waiting=%d", s.waiting())
	}
	// The slot must not be lost: release the holder and re-acquire.
	s.release()
	ok := make(chan bool, 1)
	go func() { ok <- s.acquire(0, nil) }()
	select {
	case <-ok:
	case <-time.After(2 * time.Second):
		t.Fatal("slot lost after cancelled acquire")
	}
}

func TestSlotSchedulerCancelReleaseRace(t *testing.T) {
	// Hammer the cancel-vs-release race: a waiter whose cancellation
	// races the slot hand-off must give the slot back, never leak it.
	s := newSlotScheduler(1)
	for i := 0; i < 200; i++ {
		s.acquire(0, nil)
		cancel := make(chan struct{})
		done := make(chan bool, 1)
		go func() { done <- s.acquire(0, cancel) }()
		for s.waiting() < 1 {
			time.Sleep(time.Microsecond)
		}
		go close(cancel)
		s.release()
		if <-done {
			// The waiter won the race and owns the slot; give it back.
			s.release()
		}
		// Either way exactly one slot must be acquirable now.
		got := make(chan struct{})
		go func() { s.acquire(0, nil); close(got) }()
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatalf("iteration %d: slot leaked", i)
		}
		s.release()
	}
}

func TestNewSubstrateValidates(t *testing.T) {
	if _, err := NewSubstrate(SubstrateConf{}); err == nil {
		t.Fatal("nil cluster accepted")
	}
	if _, err := NewSubstrate(SubstrateConf{Cluster: cluster.LocalN(2, 2), KernelThreads: -1}); err == nil {
		t.Fatal("negative KernelThreads accepted")
	}
	if _, err := NewSubstrate(SubstrateConf{Cluster: cluster.LocalN(2, 2), RealParallelism: -1}); err == nil {
		t.Fatal("negative RealParallelism accepted")
	}
	s, err := NewSubstrate(SubstrateConf{Cluster: cluster.LocalN(2, 2), KernelThreads: 2, RealParallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.KernelThreads() != 2 || s.RealParallelism() != 3 {
		t.Fatalf("substrate settings lost: threads=%d par=%d", s.KernelThreads(), s.RealParallelism())
	}
	if len(s.kernelPools) != 2 {
		t.Fatalf("expected one kernel pool per node, got %d", len(s.kernelPools))
	}
}

func TestConfSubstrateNormalization(t *testing.T) {
	sub, err := NewSubstrate(SubstrateConf{Cluster: cluster.LocalN(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*Conf)
		want string
	}{
		{"cluster conflict", func(c *Conf) { c.Cluster = cluster.LocalN(4, 2) }, "Cluster must be unset"},
		{"kernel threads conflict", func(c *Conf) { c.KernelThreads = 4 }, "KernelThreads must be unset"},
		{"priority without substrate", func(c *Conf) { c.Substrate = nil; c.Cluster = cluster.LocalN(2, 2); c.Priority = 1 }, "Priority needs Conf.Substrate"},
	} {
		conf := Conf{Substrate: sub}
		tc.mut(&conf)
		err := conf.normalize()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}

	conf := Conf{Substrate: sub, Priority: 3}
	if err := conf.normalize(); err != nil {
		t.Fatal(err)
	}
	if conf.Cluster != sub.Cluster() {
		t.Fatal("substrate cluster not adopted")
	}
	if conf.RealParallelism != sub.RealParallelism() {
		t.Fatalf("RealParallelism %d, want substrate's %d", conf.RealParallelism, sub.RealParallelism())
	}
}

func TestContextCancel(t *testing.T) {
	ctx := NewContext(Conf{Cluster: cluster.LocalN(2, 2)})
	if ctx.CancelCause() != nil {
		t.Fatal("fresh context reports a cancel cause")
	}
	ctx.Cancel(nil)
	if !errors.Is(ctx.Err(), ErrJobCanceled) {
		t.Fatalf("Err after Cancel = %v, want ErrJobCanceled", ctx.Err())
	}
	// Idempotent: the first cause wins.
	ctx.Cancel(fmt.Errorf("second"))
	if !errors.Is(ctx.CancelCause(), ErrJobCanceled) {
		t.Fatalf("second Cancel overwrote cause: %v", ctx.CancelCause())
	}
	select {
	case <-ctx.Canceled():
	default:
		t.Fatal("Canceled channel not closed")
	}
}

func TestContextCancelStopsStage(t *testing.T) {
	ctx := NewContext(Conf{Cluster: cluster.LocalN(2, 2), RealParallelism: 1})
	cause := fmt.Errorf("deadline exceeded: %w", ErrJobCanceled)
	ran := 0
	ctx.runStage(StageResult, -1, 8, "", func(tc *TaskContext, split int) {
		ran++
		if ran == 2 {
			ctx.Cancel(cause)
		}
	})
	if ran >= 8 {
		t.Fatalf("all %d tasks ran despite mid-stage cancel", ran)
	}
	if !errors.Is(ctx.Err(), ErrJobCanceled) {
		t.Fatalf("Err = %v, want wrapped ErrJobCanceled", ctx.Err())
	}
}

// TestSubstrateSharedContextsDeterministic is the heart of the
// isolation invariant at the rdd layer: two contexts mounted on one
// substrate, running concurrently with different priorities, must each
// produce exactly the results and virtual clock of a solo run.
func TestSubstrateSharedContextsDeterministic(t *testing.T) {
	run := func(conf Conf, n int) ([]int, string) {
		ctx := NewContext(conf)
		data := make([]int, 64)
		for i := range data {
			data[i] = i * n
		}
		out, err := Map(Parallelize(ctx, data, 8), func(tc *TaskContext, v int) int {
			tc.ChargeCompute(simtime.Duration(v)*simtime.Millisecond, 1)
			return v * 2
		}).Collect()
		if err != nil {
			t.Fatal(err)
		}
		return out, ctx.Clock().String()
	}

	soloA, clockA := run(Conf{Cluster: cluster.LocalN(4, 2)}, 3)
	soloB, clockB := run(Conf{Cluster: cluster.LocalN(4, 2)}, 7)

	sub, err := NewSubstrate(SubstrateConf{Cluster: cluster.LocalN(4, 2), RealParallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var gotA, gotB []int
	var gclkA, gclkB string
	wg.Add(2)
	go func() { defer wg.Done(); gotA, gclkA = run(Conf{Substrate: sub, Priority: 2}, 3) }()
	go func() { defer wg.Done(); gotB, gclkB = run(Conf{Substrate: sub, Priority: 1}, 7) }()
	wg.Wait()

	if !equalInts(gotA, soloA) || !equalInts(gotB, soloB) {
		t.Fatal("shared-substrate results differ from solo runs")
	}
	if gclkA != clockA || gclkB != clockB {
		t.Fatalf("virtual clocks perturbed by sharing: %s/%s vs solo %s/%s", gclkA, gclkB, clockA, clockB)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
