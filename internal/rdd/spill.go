package rdd

import (
	"fmt"

	"dpspark/internal/store"
)

// Durable staging: when Conf.DurableDir is set the context owns a block
// store (internal/store) and routes the engine's storage consumers
// through it — non-combining shuffle buckets are encoded and staged as
// checksummed blocks (evicted to disk under Conf.MemoryBudget pressure),
// and broadcast payloads keep a verified durable copy. A block that
// fails verification on read is a lost block: the fetch raises
// FetchFailedError and the PR 3 recovery machinery recomputes exactly
// the indicted map partition, whose fresh Put overwrites the damaged
// file.
//
// Determinism: whether a bucket is *staged* depends only on the data
// (every record codec-encodable), never on memory pressure — the budget
// only moves blocks between the store's tiers, which changes no virtual
// charge and no record content. Decoded records are fresh copies; the
// codec preserves the tiles' ownership generation tags, so the clone-
// elision replay semantics (and therefore the bits) are identical to the
// pointer-sharing in-memory path.

// Codec serializes records for the durable block store. The engine is
// type-agnostic, so the consumer supplies the codec (core's TileCodec
// covers the DP drivers' pair-of-tile records).
type Codec interface {
	// Append encodes rec onto dst and reports whether the codec handles
	// this record type; ok=false leaves the bucket memory-resident.
	Append(dst []byte, rec Record) ([]byte, bool)
	// Decode decodes one record from the front of b, returning the rest.
	// Corrupted input must error, never panic.
	Decode(b []byte) (Record, []byte, error)
}

// Store exposes the context's durable block store (nil when
// Conf.DurableDir is unset). Drivers use it for their own staging (the
// CB driver's collect/redistribute files).
func (c *Context) Store() *store.Store { return c.store }

// StoreStats returns the block store's tier sizes and spill/eviction/
// corruption counters; the zero value when no store is configured.
func (c *Context) StoreStats() store.Stats {
	if c.store == nil {
		return store.Stats{}
	}
	return c.store.Stats()
}

// shuffleBlockKey names the staged block of one (map partition, reduce
// partition) bucket.
func shuffleBlockKey(shuffleID, mapPart, reduce int) string {
	return fmt.Sprintf("shuffle/%d/m%d/r%d", shuffleID, mapPart, reduce)
}

// shufflePrefix is the key prefix of every block of one shuffle.
func shufflePrefix(shuffleID int) string {
	return fmt.Sprintf("shuffle/%d/", shuffleID)
}

// encodeBucket serializes a bucket's records through the spill codec;
// ok=false (bucket stays memory-resident) if any record lacks the
// passthrough original or the codec declines it.
func (c *Context) encodeBucket(recs []keyedRecord) ([]byte, bool) {
	codec := c.conf.SpillCodec
	dst := make([]byte, 0, 64*len(recs))
	for _, kr := range recs {
		if kr.rec == nil {
			return nil, false
		}
		var ok bool
		dst, ok = codec.Append(dst, kr.rec)
		if !ok {
			return nil, false
		}
	}
	return dst, true
}

// readStoredBucket fetches and decodes one staged bucket into out. Any
// verification or decode failure means the block is lost: the read
// panics with a FetchFailedError indicting the bucket's map partition,
// and the recovery path recomputes it (the recompute's Put overwrites
// the damaged block). Called with st.mu read-held, like the in-memory
// path.
func (c *Context) readStoredBucket(sd *shuffleDep, st *shuffleState, ref bucketRef, out []Record) []Record {
	fail := func() {
		panic(&FetchFailedError{
			ShuffleID: sd.id,
			MapPart:   ref.mapPart,
			Node:      st.mapNode[ref.mapPart],
			Epoch:     st.epoch,
			Corrupt:   true,
		})
	}
	blob, err := c.store.Get(ref.key)
	if err != nil {
		fail()
	}
	codec := c.conf.SpillCodec
	n := 0
	for len(blob) > 0 {
		rec, rest, err := codec.Decode(blob)
		if err != nil {
			fail()
		}
		out = append(out, rec)
		blob = rest
		n++
	}
	if n != ref.n {
		fail()
	}
	return out
}

// encodeRecords serializes a broadcast's items; ok=false if the codec
// declines any of them (the broadcast then simply isn't staged durably).
func encodeRecords[T any](c *Context, items []T) ([]byte, bool) {
	codec := c.conf.SpillCodec
	var dst []byte
	for _, it := range items {
		var ok bool
		dst, ok = codec.Append(dst, it)
		if !ok {
			return nil, false
		}
	}
	return dst, true
}

// corruptStagedBlock fires one Corruption event: among the newest
// materialized shuffle that has staged blocks, the event's Block index
// (mod the sorted key count — a deterministic set, since staging depends
// only on the data) selects the victim, which is forced to disk and
// damaged. No-op without a store or staged blocks.
func (c *Context) corruptStagedBlock(ev Corruption) {
	if c.store == nil {
		return
	}
	c.mu.Lock()
	log := append([]int(nil), c.shuffleLog...)
	c.mu.Unlock()
	for i := len(log) - 1; i >= 0; i-- {
		keys := c.store.Keys(shufflePrefix(log[i]))
		if len(keys) == 0 {
			continue
		}
		if c.store.Corrupt(keys[ev.Block%len(keys)], ev.Torn) {
			c.rec.corruptions.Add(1)
			c.recm.injectCorrupt.Inc()
		}
		return
	}
}

// EngineState is the restartable slice of a context's scheduler state: a
// driver checkpoint persists it alongside the data so a resumed run
// continues the global stage/shuffle numbering (fault plans key on stage
// IDs) and does not re-fire plan events that already fired before the
// checkpoint. Blacklist expiry timers are deliberately NOT carried — a
// restarted driver forgets them, as Spark's would — but crash strikes
// are, so repeated crashes keep doubling the backoff.
type EngineState struct {
	NextStage          int    `json:"next_stage"`
	NextShuffle        int    `json:"next_shuffle"`
	CrashFired         []bool `json:"crash_fired,omitempty"`
	DiskFired          []bool `json:"disk_fired,omitempty"`
	StragFired         []bool `json:"strag_fired,omitempty"`
	CorruptFired       []bool `json:"corrupt_fired,omitempty"`
	RemoteCorruptFired []bool `json:"remote_corrupt_fired,omitempty"`
	GCFired            []bool `json:"gc_fired,omitempty"`
	PartFired          []bool `json:"part_fired,omitempty"`
	RackFired          []bool `json:"rack_fired,omitempty"`
	Strikes            []int  `json:"strikes,omitempty"`
}

// EngineState snapshots the context's restartable scheduler state for a
// driver checkpoint.
func (c *Context) EngineState() EngineState {
	c.mu.Lock()
	es := EngineState{NextStage: c.nextStage, NextShuffle: c.nextShuffle}
	c.mu.Unlock()
	if fs := c.faults; fs != nil {
		fs.mu.Lock()
		es.CrashFired = append([]bool(nil), fs.crashFired...)
		es.DiskFired = append([]bool(nil), fs.diskFired...)
		es.StragFired = append([]bool(nil), fs.stragFired...)
		es.CorruptFired = append([]bool(nil), fs.corruptFired...)
		es.RemoteCorruptFired = append([]bool(nil), fs.remoteCorruptFired...)
		es.GCFired = append([]bool(nil), fs.gcFired...)
		es.PartFired = append([]bool(nil), fs.partFired...)
		es.RackFired = append([]bool(nil), fs.rackFired...)
		es.Strikes = append([]int(nil), fs.strikes...)
		fs.mu.Unlock()
	}
	return es
}

// restoreEngineState applies a checkpointed EngineState to a fresh
// context (validated by Conf.normalize).
func (c *Context) restoreEngineState(es *EngineState) {
	c.mu.Lock()
	c.nextStage = es.NextStage
	c.nextShuffle = es.NextShuffle
	c.mu.Unlock()
	if fs := c.faults; fs != nil {
		fs.mu.Lock()
		copy(fs.crashFired, es.CrashFired)
		copy(fs.diskFired, es.DiskFired)
		copy(fs.stragFired, es.StragFired)
		copy(fs.corruptFired, es.CorruptFired)
		copy(fs.remoteCorruptFired, es.RemoteCorruptFired)
		copy(fs.gcFired, es.GCFired)
		copy(fs.partFired, es.PartFired)
		copy(fs.rackFired, es.RackFired)
		copy(fs.strikes, es.Strikes)
		fs.mu.Unlock()
	}
}

// validateRestore checks a Restore snapshot against the Conf's plan and
// cluster (part of Conf.normalize).
func validateRestore(es *EngineState, plan *FaultPlan, nodes int) error {
	if es.NextStage < 0 || es.NextShuffle < 0 {
		return fmt.Errorf("rdd: Conf.Restore has negative stage/shuffle cursor (%d, %d)", es.NextStage, es.NextShuffle)
	}
	check := func(name string, got, want int) error {
		if got != 0 && got != want {
			return fmt.Errorf("rdd: Conf.Restore.%s has %d entries, FaultPlan has %d — restore with the run's original plan", name, got, want)
		}
		return nil
	}
	var crashes, disks, strags, corrupts, remCorrupts, gcs, parts, racks int
	if plan != nil {
		crashes, disks, strags, corrupts = len(plan.Crashes), len(plan.DiskLosses), len(plan.Stragglers), len(plan.Corruptions)
		remCorrupts = len(plan.RemoteCorruptions)
		gcs, parts, racks = len(plan.GCPauses), len(plan.Partitions), len(plan.RackFailures)
	}
	if err := check("CrashFired", len(es.CrashFired), crashes); err != nil {
		return err
	}
	if err := check("DiskFired", len(es.DiskFired), disks); err != nil {
		return err
	}
	if err := check("StragFired", len(es.StragFired), strags); err != nil {
		return err
	}
	if err := check("CorruptFired", len(es.CorruptFired), corrupts); err != nil {
		return err
	}
	if err := check("RemoteCorruptFired", len(es.RemoteCorruptFired), remCorrupts); err != nil {
		return err
	}
	if err := check("GCFired", len(es.GCFired), gcs); err != nil {
		return err
	}
	if err := check("PartFired", len(es.PartFired), parts); err != nil {
		return err
	}
	if err := check("RackFired", len(es.RackFired), racks); err != nil {
		return err
	}
	return check("Strikes", len(es.Strikes), nodes)
}
