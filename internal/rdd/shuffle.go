package rdd

import (
	"fmt"
	"sync"

	"dpspark/internal/obs"
)

// Shuffle staging buffers churn fast: every map task builds a bucket map
// and per-reduce record slices, and every retired shuffle generation
// drops its slices for the GC to sweep. Both are recycled process-wide —
// the maps as soon as their slices have been handed to the shuffle state,
// the slices when their shuffle generation is retired.
var (
	bucketMapPool = sync.Pool{New: func() any {
		return make(map[int][]keyedRecord)
	}}
	recSlicePool sync.Pool // stores *[]keyedRecord
)

// getRecSlice returns an empty pooled record slice, or one presized to
// hint when the pool is empty.
func getRecSlice(hint int) []keyedRecord {
	if p, _ := recSlicePool.Get().(*[]keyedRecord); p != nil {
		return (*p)[:0]
	}
	return make([]keyedRecord, 0, hint)
}

// putRecSlice recycles a record slice, zeroing the elements first so the
// pool does not pin the shuffled keys and values (tiles!) against GC.
func putRecSlice(recs []keyedRecord) {
	for i := range recs {
		recs[i] = keyedRecord{}
	}
	recSlicePool.Put(&recs)
}

// newShuffleDep registers a shuffle dependency.
func (c *Context) newShuffleDep(parent *dataset, part Partitioner,
	rebuild func(key, val any) Record,
	create func(v any) any, mergeValue, mergeComb func(a, b any) any) *shuffleDep {
	c.mu.Lock()
	id := c.nextShuffle
	c.nextShuffle++
	c.mu.Unlock()
	return &shuffleDep{
		id:         id,
		parent:     parent,
		part:       part,
		phase:      c.CurrentPhase(),
		rebuild:    rebuild,
		create:     create,
		mergeValue: mergeValue,
		mergeComb:  mergeComb,
	}
}

// bucketRef is one map task's contribution to one reduce partition —
// either in-process records (recs) or, when the bucket was staged in the
// durable block store, a block key plus record count (stored). Staged or
// not, bytes carries the same sizer-priced payload, so virtual traffic
// charges are identical either way.
type bucketRef struct {
	mapPart int
	recs    []keyedRecord
	bytes   int64
	// stored marks a bucket staged in the durable store under key with n
	// encoded records; recs is nil for stored buckets.
	stored bool
	key    string
	n      int
}

// runMapStage executes the map side of a shuffle: one task per parent
// partition computes the parent's records, keys them, optionally combines
// map-side, buckets them by the target partitioner and stages the buckets
// on the task's local disk (tc.spill). Buckets are indexed by reduce
// partition (sparsely — most of the grid's partitions are empty in any
// one stage) so reduce tasks only touch data that exists. Afterwards old
// shuffle generations are retired, emulating Spark's shuffle cleanup.
func (c *Context) runMapStage(sd *shuffleDep) {
	mapParts := sd.parent.parts
	st := &shuffleState{
		dep:         sd,
		byReduce:    make([][]bucketRef, sd.part.NumPartitions()),
		spillByNode: make([]int64, c.conf.Cluster.Nodes),
		mapNode:     make([]int, mapParts),
		spillByMap:  make([]int64, mapParts),
		refsByMap:   make([]int, mapParts),
	}
	c.mu.Lock()
	st.mapStage = c.nextStage
	c.nextStage++
	c.mu.Unlock()

	c.execMapTasks(st, nil)

	st.mu.Lock()
	// Deterministic reduce-side order: contributions sorted by map task.
	for _, refs := range st.byReduce {
		sortBucketRefs(refs)
	}
	st.done = true
	st.mu.Unlock()
	c.mu.Lock()
	c.shuffles[sd.id] = st
	c.shuffleLog = append(c.shuffleLog, sd.id)
	c.mu.Unlock()
	c.retireOldShuffles()
}

// execMapTasks runs the map tasks of a shuffle and merges their buckets
// into the shuffle state. splits == nil runs the full map stage (every
// parent partition, the initial materialization); a non-nil splits list
// is a resubmission recomputing exactly those (lost) partitions — the
// stage re-executes under its original stage ID with a bumped attempt.
func (c *Context) execMapTasks(st *shuffleState, splits []int) {
	sd := st.dep
	n := len(splits)
	if splits == nil {
		n = sd.parent.parts
	}
	st.mu.Lock()
	st.attempts++
	attempt := st.attempts - 1
	// Take the map-output commit lease: from here on only THIS attempt's
	// buckets may register in the merge. A resubmission after a false
	// suspicion takes the lease away from the still-running zombie
	// attempt, whose late commit the recovery merge then fences.
	st.commitLease = attempt
	st.mu.Unlock()

	perTask := make([]map[int][]keyedRecord, n)
	spillByTask := make([]int64, n)
	nodeByTask := make([]int, n)

	c.execStage(stageSpec{
		kind:      StageShuffleMap,
		shuffleID: sd.id,
		parts:     n,
		phase:     sd.phase,
		stageID:   st.mapStage,
		attempt:   attempt,
		splits:    splits,
	}, func(tc *TaskContext, idx, split int) {
		nodeByTask[idx] = tc.Node
		perTask[idx] = nil
		spillByTask[idx] = 0
		recs := c.iterate(sd.parent, split, tc)
		if len(recs) == 0 {
			return
		}
		buckets := bucketMapPool.Get().(map[int][]keyedRecord)
		var spill int64

		// Presize fresh bucket slices for this task's expected share: the
		// map side emits at most len(recs) records spread over the target
		// partitions.
		hint := 1 + len(recs)/sd.part.NumPartitions()
		emit := func(kr keyedRecord, bytes int64) {
			b := sd.part.Partition(kr.key)
			s, ok := buckets[b]
			if !ok {
				s = getRecSlice(hint)
			}
			buckets[b] = append(s, kr)
			spill += bytes
		}
		if sd.combining() {
			// Map-side combine: per-key combiners in input order.
			combiners := make(map[any]any, len(recs))
			var order []any
			for _, r := range recs {
				pr, ok := r.(pairLike)
				if !ok {
					panic(fmt.Sprintf("rdd: shuffle over non-pair record %T", r))
				}
				k, v := pr.pairKey(), pr.pairValue()
				if comb, seen := combiners[k]; seen {
					combiners[k] = sd.mergeValue(comb, v)
				} else {
					combiners[k] = sd.create(v)
					order = append(order, k)
				}
			}
			for _, k := range order {
				v := combiners[k]
				emit(keyedRecord{key: k, val: v}, c.sizer(k)+c.sizer(v))
			}
		} else {
			for _, r := range recs {
				pr, ok := r.(pairLike)
				if !ok {
					panic(fmt.Sprintf("rdd: shuffle over non-pair record %T", r))
				}
				// Stage the original record alongside the boxed key and
				// value: the key buckets and partitions, key+value price
				// the traffic, and the reduce side hands rec through
				// unchanged (see keyedRecord).
				k, v := pr.pairKey(), pr.pairValue()
				emit(keyedRecord{key: k, val: v, rec: r}, c.sizer(k)+c.sizer(v))
			}
		}

		tc.spill += spill
		perTask[idx] = buckets
		spillByTask[idx] = spill
	})

	st.mu.Lock()
	defer st.mu.Unlock()
	if splits != nil {
		// A recovery merge must replace the recomputed partitions' stale
		// contributions in the same critical section that installs the
		// fresh ones. Dropping them any earlier opens a window where a
		// concurrent readShuffle sees a lost partition's ref simply
		// missing — silently incomplete data instead of a FetchFailed
		// (the lost flags are keyed off refs still present in byReduce).
		recomputed := make(map[int]bool, len(splits))
		for _, s := range splits {
			recomputed[s] = true
		}
		for _, s := range splits {
			staleLease, zombie := st.zombieParts[s]
			if !zombie {
				continue
			}
			// Commit fencing: this partition was invalidated by a FALSE
			// suspicion — its original executor is alive and its staged
			// output is the zombie attempt's commit, registered under the
			// lease staleLease. The current attempt holds the lease now, so
			// the stale registration is rejected (dropped below with the
			// other recomputed refs) instead of racing the fresh output.
			// Without the fence both attempts' buckets would be live at
			// once and results could double-count.
			if staleLease != st.commitLease {
				c.rec.fencedCommits.Add(1)
				c.recm.detFencedCommits.Inc()
				c.recordEvent(obs.Event{
					Clock: -1, Type: obs.EvFencedCommit,
					Stage: st.mapStage, Attempt: attempt, Part: s,
					Node: st.mapNode[s], Shuffle: sd.id,
					Detail: fmt.Sprintf("zombie commit lease %d rejected (current %d)", staleLease, st.commitLease),
				})
			}
			delete(st.zombieParts, s)
		}
		for b, refs := range st.byReduce {
			keep := refs[:0]
			for _, ref := range refs {
				if recomputed[ref.mapPart] {
					if ref.stored {
						// The fresh contribution re-Puts the same key below;
						// deleting first covers a recompute that no longer
						// produces this bucket (and drops a damaged file).
						c.store.Delete(ref.key)
					} else {
						putRecSlice(ref.recs)
					}
				} else {
					keep = append(keep, ref)
				}
			}
			st.byReduce[b] = keep
		}
	}
	for idx := 0; idx < n; idx++ {
		split := idx
		if splits != nil {
			split = splits[idx]
		}
		st.mapNode[split] = nodeByTask[idx]
		st.spillByMap[split] = spillByTask[idx]
		st.spillByNode[nodeByTask[idx]] += spillByTask[idx]
		st.refsByMap[split] = 0
		buckets := perTask[idx]
		if buckets == nil {
			continue
		}
		for b, recs := range buckets {
			var bytes int64
			for _, kr := range recs {
				bytes += c.sizer(kr.key) + c.sizer(kr.val)
			}
			ref := bucketRef{mapPart: split, recs: recs, bytes: bytes}
			if c.store != nil && c.conf.SpillCodec != nil && !sd.combining() {
				// Stage the bucket durably (all-or-nothing per bucket, and
				// purely data-dependent — see spill.go's determinism note).
				if blob, ok := c.encodeBucket(recs); ok {
					key := shuffleBlockKey(sd.id, split, b)
					if err := c.store.Put(key, blob); err == nil {
						putRecSlice(recs)
						ref = bucketRef{mapPart: split, bytes: bytes, stored: true, key: key, n: len(recs)}
					}
				}
			}
			st.byReduce[b] = append(st.byReduce[b], ref)
			st.refsByMap[split]++
		}
		// The slices now belong to the shuffle state (recycled when the
		// generation retires); the map itself recycles immediately.
		clear(buckets)
		bucketMapPool.Put(buckets)
		perTask[idx] = nil
	}
}

// recoverShuffle repairs a shuffle after a reduce-side fetch failure.
// Lost map partitions are first restored from intact remote replicas
// (tryRemoteRestore — every staged block of the partition fetched back
// verified); only the rest fall into the PR 3 path, resubmitting the
// map stage to recompute exactly those partitions. Concurrent failures
// of the same shuffle serialize on recMu; whoever arrives after a
// completed recovery (the epoch advanced past the failure's) returns
// immediately and simply retries its fetch.
func (c *Context) recoverShuffle(ff *FetchFailedError) error {
	c.mu.Lock()
	st := c.shuffles[ff.ShuffleID]
	c.mu.Unlock()
	if st == nil {
		return fmt.Errorf("rdd: shuffle %d vanished during recovery", ff.ShuffleID)
	}
	st.recMu.Lock()
	defer st.recMu.Unlock()

	st.mu.Lock()
	if st.epoch != ff.Epoch {
		st.mu.Unlock()
		return nil // someone else already recovered past this failure
	}
	if st.attempts >= maxStageAttempts {
		st.mu.Unlock()
		return fmt.Errorf("rdd: shuffle %d map stage failed after %d attempts: %v",
			ff.ShuffleID, st.attempts, ff)
	}
	lost := make([]int, 0, len(st.lost)+1)
	for p := range st.lost {
		lost = append(lost, p)
	}
	if ff.Corrupt && ff.MapPart >= 0 && !st.lost[ff.MapPart] {
		// A corrupt staged block indicts its map partition even though no
		// executor output was flagged lost: recompute it too, so the fresh
		// staging overwrites the damaged file.
		lost = append(lost, ff.MapPart)
	}
	sortInts(lost)
	st.mu.Unlock()
	// The invalidated contributions stay visible in byReduce until the
	// recompute's merge swaps them out atomically (see execMapTasks):
	// concurrent reads in the interim still find the lost refs, raise
	// FetchFailed and serialize behind recMu on the epoch guard above.

	toRecompute := lost
	if restored := c.tryRemoteRestore(st, lost); len(restored) > 0 {
		toRecompute = subtractSorted(lost, restored)
	}

	if len(toRecompute) > 0 {
		// Recovery-storm throttling: a resubmission may first have to wait
		// for a token, so a mass failure drains in bounded waves.
		c.takeRecoveryToken()
		c.rec.stageResubmits.Add(1)
		c.recm.stageResubmits.Inc()
		c.recordEvent(obs.Event{
			Clock: -1, Type: obs.EvStageResubmit,
			Stage: -1, Part: -1, Node: -1, Shuffle: ff.ShuffleID,
			Detail: fmt.Sprintf("recompute %d lost map partitions", len(toRecompute)),
		})

		c.execMapTasks(st, toRecompute)

		if c.store != nil && c.store.RemoteAttached() {
			// The restore-vs-recompute ledger: staged blocks rebuilt by
			// the fallback (restored ones were counted in tryRemoteRestore).
			var blocks int64
			st.mu.Lock()
			for _, p := range toRecompute {
				blocks += int64(st.refsByMap[p])
			}
			st.mu.Unlock()
			c.rec.recomputedBlocks.Add(blocks)
			c.recm.recomputedBlocks.Add(blocks)
		}
	}

	st.mu.Lock()
	for _, p := range lost {
		delete(st.lost, p)
	}
	for _, refs := range st.byReduce {
		sortBucketRefs(refs)
	}
	st.epoch++
	st.mu.Unlock()

	c.rec.recomputedParts.Add(int64(len(toRecompute)))
	c.recm.recomputedParts.Add(int64(len(toRecompute)))
	return c.Err()
}

// sortInts is an allocation-free insertion sort for small index lists.
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// sortBucketRefs orders contributions by map partition (insertion is
// already nearly sorted; simple insertion sort keeps it allocation-free).
func sortBucketRefs(refs []bucketRef) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].mapPart < refs[j-1].mapPart; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

// readShuffle is the reduce side: fetch this partition's buckets from the
// map tasks that produced any, charging local-disk vs network traffic by
// locality, then concatenate (PartitionBy) or merge combiners
// (CombineByKey). A bucket whose map output was invalidated (executor
// crash, disk loss) raises FetchFailedError — the task layer catches it
// and resubmits the map stage for the lost partitions. The read holds the
// shuffle's read lock throughout, so a concurrent recovery can only
// rewrite the buckets between whole reads.
func (c *Context) readShuffle(sd *shuffleDep, split int, tc *TaskContext) []Record {
	c.mu.Lock()
	st := c.shuffles[sd.id]
	c.mu.Unlock()
	if st == nil {
		panic(fmt.Sprintf("rdd: shuffle %d read before materialization", sd.id))
	}
	st.mu.RLock()
	defer st.mu.RUnlock() // also released when a lost bucket panics below
	if !st.done {
		panic(fmt.Sprintf("rdd: shuffle %d read before materialization", sd.id))
	}
	if st.retired {
		panic(fmt.Sprintf("rdd: shuffle %d was retired; raise Conf.KeepShuffles", sd.id))
	}

	refs := st.byReduce[split]
	for _, ref := range refs {
		if st.lost[ref.mapPart] {
			panic(&FetchFailedError{
				ShuffleID: sd.id,
				MapPart:   ref.mapPart,
				Node:      st.mapNode[ref.mapPart],
				Epoch:     st.epoch,
			})
		}
	}
	var recs []Record
	if sd.combining() {
		combiners := make(map[any]any)
		var order []any
		for _, ref := range refs {
			c.chargeFetch(tc, st.mapNode[ref.mapPart], ref.bytes)
			for _, kr := range ref.recs {
				if comb, seen := combiners[kr.key]; seen {
					combiners[kr.key] = sd.mergeComb(comb, kr.val)
				} else {
					combiners[kr.key] = kr.val
					order = append(order, kr.key)
				}
			}
		}
		recs = make([]Record, 0, len(order))
		for _, k := range order {
			recs = append(recs, sd.rebuild(k, combiners[k]))
		}
	} else {
		total := 0
		for _, ref := range refs {
			if ref.stored {
				total += ref.n
			} else {
				total += len(ref.recs)
			}
		}
		recs = make([]Record, 0, total)
		for _, ref := range refs {
			c.chargeFetch(tc, st.mapNode[ref.mapPart], ref.bytes)
			if ref.stored {
				recs = c.readStoredBucket(sd, st, ref, recs)
				continue
			}
			for _, kr := range ref.recs {
				if kr.rec != nil {
					recs = append(recs, kr.rec)
				} else {
					recs = append(recs, sd.rebuild(kr.key, kr.val))
				}
			}
		}
	}
	return recs
}

// chargeFetch attributes a bucket read to local disk or the network,
// based on the node the map output actually lives on (after blacklist
// re-placement or recovery that may differ from the partition's home).
func (c *Context) chargeFetch(tc *TaskContext, mapNode int, bytes int64) {
	if bytes == 0 {
		return
	}
	if mapNode == tc.Node {
		tc.fetchLocal += bytes
	} else {
		tc.fetchRemote += bytes
	}
}

// retireOldShuffles drops staged data of all but the most recent
// Conf.KeepShuffles shuffles, freeing simulated disk and real memory.
func (c *Context) retireOldShuffles() {
	c.mu.Lock()
	var toRetire []*shuffleState
	if n := len(c.shuffleLog) - c.conf.KeepShuffles; n > 0 {
		for _, id := range c.shuffleLog[:n] {
			if st := c.shuffles[id]; st != nil {
				toRetire = append(toRetire, st)
			}
		}
	}
	c.mu.Unlock()
	var retiredBuckets [][][]bucketRef
	for _, st := range toRetire {
		st.mu.Lock()
		if st.retired {
			st.mu.Unlock()
			continue
		}
		st.retired = true
		retiredBuckets = append(retiredBuckets, st.byReduce)
		st.byReduce = nil
		spillByNode := st.spillByNode
		st.mu.Unlock()
		for node, bytes := range spillByNode {
			c.simul.ReleaseShuffle(node, bytes)
		}
		if c.store != nil {
			// Retired generations also leave the durable store (their
			// staged blocks would otherwise pin disk forever).
			c.store.DeletePrefix(shufflePrefix(st.dep.id))
		}
	}
	// Recycle the retired staging slices (readShuffle panics on retired
	// generations, so nothing can still be reading them).
	for _, byReduce := range retiredBuckets {
		for _, refs := range byReduce {
			for i := range refs {
				if refs[i].recs != nil {
					putRecSlice(refs[i].recs)
					refs[i].recs = nil
				}
			}
		}
	}
}
