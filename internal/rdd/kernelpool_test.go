package rdd

import (
	"testing"

	"dpspark/internal/cluster"
)

// TestConfKernelThreadsCoTune pins the cores×threads split: when
// ExecutorCores is left unset, KernelThreads > 1 shrinks the task-slot
// default so slots × threads covers the node's cores exactly once; an
// explicit ExecutorCores is never touched.
func TestConfKernelThreadsCoTune(t *testing.T) {
	ctx := NewContext(Conf{Cluster: cluster.LocalN(2, 8), KernelThreads: 4})
	if got := ctx.ExecutorCores(); got != 2 {
		t.Fatalf("co-tuned ExecutorCores = %d, want 8/4 = 2", got)
	}
	if got := ctx.KernelThreads(); got != 4 {
		t.Fatalf("KernelThreads = %d, want 4", got)
	}

	ctx = NewContext(Conf{Cluster: cluster.LocalN(2, 8), KernelThreads: 4, ExecutorCores: 6})
	if got := ctx.ExecutorCores(); got != 6 {
		t.Fatalf("explicit ExecutorCores overridden to %d", got)
	}

	// Threads wider than the node still leave one task slot.
	ctx = NewContext(Conf{Cluster: cluster.LocalN(2, 2), KernelThreads: 8})
	if got := ctx.ExecutorCores(); got != 1 {
		t.Fatalf("ExecutorCores = %d, want floor ≥ 1", got)
	}

	// Default: serial kernels, full-cores slots, no pools.
	ctx = NewContext(Conf{Cluster: cluster.LocalN(2, 8)})
	if ctx.KernelThreads() != 1 || ctx.ExecutorCores() != 8 {
		t.Fatalf("defaults: threads=%d cores=%d, want 1/8", ctx.KernelThreads(), ctx.ExecutorCores())
	}
	if ctx.kernelPool(0) != nil {
		t.Fatal("serial context must not build kernel pools")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("negative KernelThreads must be rejected")
		}
	}()
	NewContext(Conf{Cluster: cluster.LocalN(2, 8), KernelThreads: -1})
}

// TestKernelPoolPerNode: a threaded context owns one pool per node, of
// the configured width, shared by every task placed there.
func TestKernelPoolPerNode(t *testing.T) {
	ctx := NewContext(Conf{Cluster: cluster.LocalN(3, 8), KernelThreads: 2})
	seen := map[interface{}]bool{}
	for n := 0; n < 3; n++ {
		p := ctx.kernelPool(n)
		if p == nil || p.Threads() != 2 {
			t.Fatalf("node %d pool width = %d, want 2", n, p.Threads())
		}
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Fatalf("expected one distinct pool per node, got %d", len(seen))
	}
	if ctx.kernelPool(-1) != nil || ctx.kernelPool(3) != nil {
		t.Fatal("out-of-range node indices must yield no pool")
	}
	tc := &TaskContext{Node: 1, ctx: ctx}
	if tc.KernelPool() != ctx.kernelPool(1) {
		t.Fatal("TaskContext.KernelPool must return its node's shared pool")
	}
	if s, i, h := ctx.KernelPoolStats(); s != 0 || i != 0 || h != 0 {
		t.Fatalf("fresh pools must have zero counters, got %d/%d/%d", s, i, h)
	}
}
