package rdd

import (
	"reflect"
	"testing"
	"time"

	"dpspark/internal/cluster"
	"dpspark/internal/simtime"
)

// TestSubstrateNarrowSlotFaultRecovery: regression test for a real
// deadlock. A reduce task used to hold its substrate slot across
// FetchFailed recovery, but recoverShuffle resubmits the parent map
// stage — whose tasks need slots of their own — so on a one-slot
// substrate (any single-CPU host) the recovery stage waited forever for
// the slot its own child held. Slots are now held only for the real
// execution of an attempt; one slot must suffice for any recovery depth.
func TestSubstrateNarrowSlotFaultRecovery(t *testing.T) {
	clean := NewContext(Conf{Cluster: cluster.LocalN(2, 2)})
	want := collectPairs(t, shuffledDoubles(clean, 4))

	sub, err := NewSubstrate(SubstrateConf{Cluster: cluster.LocalN(2, 2), RealParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(Conf{
		Substrate: sub,
		// The crash fires as the reduce stage starts: node 0's staged map
		// outputs are lost, the reduce-side fetch fails, and the map
		// stage is resubmitted mid-task.
		FaultPlan: &FaultPlan{Crashes: []ExecutorCrash{{Stage: 1, Node: 0}}},
	})
	type res struct {
		got map[int]int
		err error
	}
	done := make(chan res, 1)
	go func() {
		got, err := CollectMap(shuffledDoubles(ctx, 4))
		done <- res{got, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("collect: %v", r.err)
		}
		if !reflect.DeepEqual(r.got, want) {
			t.Fatalf("recovery on a narrow substrate changed results: %v vs %v", r.got, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: recovery stage starved for the slot its parent task held")
	}
	rs := ctx.RecoveryStats()
	if rs.FetchFailures == 0 || rs.StageResubmits == 0 {
		t.Fatalf("the crash must exercise the nested-recovery path: %+v", rs)
	}
}

// TestSpillDilationFeedsSpeculation: the continuous spill model dilates
// every node in proportion to its own staged backlog, and the dilation
// is recorded as slowdown so speculation still prices the healthy
// duration and fires copies — the scheduling loop closes exactly as it
// does for the single-worst-node SpillStraggler model.
func TestSpillDilationFeedsSpeculation(t *testing.T) {
	run := func(factor float64) (RecoveryStats, map[int]int) {
		conf := durableConf(t, 64) // a handful of pairs per block: every stage spills
		conf.Cluster = cluster.LocalN(4, 2)
		conf.SpillDilation = factor
		conf.Speculation = factor > 0
		ctx := NewContext(conf)
		// Shuffle 1 funnels every pair onto partition 0, so one node ends
		// up holding all the data. Re-shuffling from there makes that
		// node the map side staging nearly all of shuffle 2's bytes — a
		// skewed per-node backlog that only the proportional model sees.
		// The result stage's tasks then charge uniform compute: the
		// loaded node's tasks dilate past the speculation threshold, the
		// rest stay healthy.
		funneled := PartitionBy(Map(Parallelize(ctx, ints(20), 8), func(_ *TaskContext, x int) Pair[int, int] {
			return KV(8*x, x)
		}), funnelPartitioner{p: 8})
		spread := PartitionBy(Map(funneled, func(_ *TaskContext, p Pair[int, int]) Pair[int, int] {
			return KV(p.Value, p.Value)
		}), NewHashPartitioner(8))
		r := Map(spread, func(tc *TaskContext, p Pair[int, int]) Pair[int, int] {
			tc.ChargeCompute(10*simtime.Second, 1)
			return p
		})
		got := collectPairs(t, r)
		return ctx.RecoveryStats(), got
	}

	off, _ := run(0)
	if off.SpillStragglers != 0 {
		t.Fatalf("disabled model must dilate nothing: %+v", off)
	}
	on, got := run(32)
	if len(got) != 20 || got[7] != 7 {
		t.Fatalf("collect = %v", got)
	}
	if on.SpillStragglers == 0 {
		t.Fatalf("the backlogged node's tasks must be modelled slow: %+v", on)
	}
	if on.SpeculativeTasks == 0 || on.SpeculationWins == 0 {
		t.Fatalf("spill-dilated tasks must trigger (and lose to) speculation: %+v", on)
	}
}

// funnelPartitioner sends every key to partition 0 — a deliberate worst
// case for load balance that concentrates a shuffle on one node.
type funnelPartitioner struct{ p int }

func (f funnelPartitioner) NumPartitions() int { return f.p }
func (f funnelPartitioner) Partition(any) int  { return 0 }
func (f funnelPartitioner) Equal(o Partitioner) bool {
	of, ok := o.(funnelPartitioner)
	return ok && of == f
}
