package rdd

import (
	"dpspark/internal/kernels"
	"dpspark/internal/simtime"
)

// TaskContext is handed to every task (and through it to user map
// functions). User code charges modelled compute time and shared-storage
// traffic on it; the engine itself records shuffle traffic. After the
// task's real execution, the scheduler turns these charges into a
// simulated task for the virtual clock.
type TaskContext struct {
	// StageID identifies the stage the task belongs to.
	StageID int
	// Partition is the task's partition index.
	Partition int
	// Node is the executor the task runs on.
	Node int

	ctx *Context

	compute simtime.Duration
	// slowed is the portion of compute injected by a FaultPlan straggler;
	// speculative execution subtracts it to estimate the task's healthy
	// duration on another executor.
	slowed simtime.Duration
	// spillSlow is the part of slowed injected by spill-aware scheduling
	// (memory-starved node dilation); the critical-path profiler reports
	// it as spill time rather than compute.
	spillSlow   simtime.Duration
	threads     int
	idleThreads int
	sharedRead  int64
	sharedWrite int64
	fetchLocal  int64
	fetchRemote int64
	spill       int64
}

// Ctx returns the owning engine context (for model/cluster access inside
// map functions).
func (tc *TaskContext) Ctx() *Context { return tc.ctx }

// KernelPool returns the shared kernel worker pool of the task's node —
// the OMP_NUM_THREADS budget each kernel invocation may draw on. Nil when
// the context runs kernels serially (Conf.KernelThreads ≤ 1).
func (tc *TaskContext) KernelPool() *kernels.Pool { return tc.ctx.kernelPool(tc.Node) }

// ChargeCompute adds d of modelled compute occupying the given number of
// worker threads. The task's thread width is the maximum charged.
func (tc *TaskContext) ChargeCompute(d simtime.Duration, threads int) {
	if d < 0 {
		panic("rdd: negative compute charge")
	}
	tc.compute += d
	if threads > tc.threads {
		tc.threads = threads
	}
}

// ChargeIdleThreads records OMP threads the task spawns beyond its
// kernels' exploitable parallelism; they spin at par_for barriers and
// contribute node pressure without throughput.
func (tc *TaskContext) ChargeIdleThreads(n int) {
	if n > tc.idleThreads {
		tc.idleThreads = n
	}
}

// ChargeSharedRead records bytes read from the shared filesystem.
func (tc *TaskContext) ChargeSharedRead(bytes int64) {
	if bytes > 0 {
		tc.sharedRead += bytes
	}
}

// ChargeSharedWrite records bytes written to the shared filesystem.
func (tc *TaskContext) ChargeSharedWrite(bytes int64) {
	if bytes > 0 {
		tc.sharedWrite += bytes
	}
}

// Compute returns the modelled compute charged so far.
func (tc *TaskContext) Compute() simtime.Duration { return tc.compute }

// Threads returns the task's charged thread width (≥1).
func (tc *TaskContext) Threads() int {
	if tc.threads < 1 {
		return 1
	}
	return tc.threads
}
