package rdd

import (
	"fmt"
	"io"

	"dpspark/internal/simtime"
)

// StageKind classifies an executed stage.
type StageKind int

// Stage kinds.
const (
	// StageShuffleMap is the map side of a shuffle (wide dependency).
	StageShuffleMap StageKind = iota
	// StageResult computes a job's final RDD (actions, checkpoints).
	StageResult
)

// String names the kind.
func (k StageKind) String() string {
	if k == StageShuffleMap {
		return "shuffle-map"
	}
	return "result"
}

// StageEvent records one executed stage — the engine's equivalent of a
// Spark UI timeline entry. Tests use the event log to assert the drivers'
// stage structure (e.g. the IM driver runs exactly three shuffles per
// grid iteration); cmd/dpspark -v prints it.
type StageEvent struct {
	// StageID is the global stage counter value. Resubmitted recovery
	// stages reuse their original stage's ID (see Attempt).
	StageID int
	// Attempt is the stage execution's attempt number: 0 for the planned
	// run, ≥ 1 for resubmissions recomputing lost map outputs.
	Attempt int
	// Kind classifies the stage.
	Kind StageKind
	// Tasks is the number of tasks launched (one per partition).
	Tasks int
	// ShuffleID is the materialized shuffle for map stages, -1 otherwise.
	ShuffleID int
	// Phase is the driver phase that built the stage's lineage (set via
	// Context.SetPhase; "" when unlabelled).
	Phase string
	// Start is the virtual clock when the stage began.
	Start simtime.Duration
	// Duration is the stage's modelled makespan.
	Duration simtime.Duration
	// SpillBytes is the shuffle data staged by the stage.
	SpillBytes int64
	// FetchBytes is the shuffle data read by the stage.
	FetchBytes int64
	// MaxTask and MeanTask summarize the stage's raw task durations;
	// MaxTask/MeanTask is its straggler-skew factor.
	MaxTask, MeanTask simtime.Duration
}

// Events returns a copy of the executed-stage log.
func (c *Context) Events() []StageEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StageEvent, len(c.events))
	copy(out, c.events)
	return out
}

// appendEvent records a stage execution.
func (c *Context) appendEvent(ev StageEvent) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// CountStages returns how many stages of the given kind have run.
func (c *Context) CountStages(kind StageKind) int {
	n := 0
	for _, ev := range c.Events() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// WriteTimeline renders the stage timeline, one line per stage, followed
// by a totals footer. The event log is snapshotted once up front, so the
// lines and the footer describe the same set of stages even if jobs are
// still appending events concurrently.
func (c *Context) WriteTimeline(w io.Writer) error {
	events := c.Events()
	var spill, fetch int64
	for _, ev := range events {
		shuffle := ""
		if ev.ShuffleID >= 0 {
			shuffle = fmt.Sprintf(" shuffle=%d", ev.ShuffleID)
		}
		phase := ""
		if ev.Phase != "" {
			phase = " phase=" + ev.Phase
		}
		attempt := ""
		if ev.Attempt > 0 {
			attempt = fmt.Sprintf(" attempt=%d", ev.Attempt)
		}
		if _, err := fmt.Fprintf(w, "stage %4d %-11s tasks=%-5d start=%-10v dur=%-10v spill=%dB fetch=%dB%s%s%s\n",
			ev.StageID, ev.Kind, ev.Tasks, ev.Start, ev.Duration,
			ev.SpillBytes, ev.FetchBytes, shuffle, phase, attempt); err != nil {
			return err
		}
		spill += ev.SpillBytes
		fetch += ev.FetchBytes
	}
	_, err := fmt.Fprintf(w, "total %4d stages spill=%dB fetch=%dB\n",
		len(events), spill, fetch)
	return err
}
