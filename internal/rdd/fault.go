package rdd

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"dpspark/internal/obs"
	"dpspark/internal/simtime"
)

// This file is the engine's whole-executor failure machinery: the
// FaultPlan chaos schedule, the FetchFailed error that surfaces lost map
// outputs on the reduce side, the exponential-backoff executor blacklist
// that drives task re-placement, and the recovery counters the chaos
// harness asserts on.
//
// Everything is keyed on deterministic state — global stage IDs and the
// virtual clock — never wall time, so a seeded plan injects the same
// faults at the same points on every run and the recovered results are
// bit-identical to the fault-free execution.

// ExecutorCrash schedules the loss of one executor at the start of one
// stage: every live shuffle map output staged on the node is invalidated
// (a later reduce-side fetch surfaces a FetchFailed and resubmits the map
// stage for the lost partitions), tasks of the stage placed on the node
// fail their first attempt ("executor lost"), and the node is
// blacklisted.
type ExecutorCrash struct {
	// Stage is the global stage ID at whose start the crash fires.
	Stage int
	// Node is the executor that dies.
	Node int
	// Down is how long the executor stays blacklisted; 0 uses the
	// context's exponential backoff (Conf.BlacklistBackoff doubling per
	// repeated crash of the same node).
	Down simtime.Duration
}

// DiskLoss schedules the loss of one node's shuffle staging disk at the
// start of one stage: staged map outputs on the node are invalidated
// (recovered via stage resubmission, like an executor crash) but the
// executor itself stays schedulable.
type DiskLoss struct {
	// Stage is the global stage ID at whose start the loss fires.
	Stage int
	// Node is the node whose staging disk is wiped.
	Node int
}

// Straggler schedules one slow task: the matching task's compute time is
// dilated by Factor (the injected slowdown is recorded separately, so
// speculative execution can estimate the task's healthy duration).
type Straggler struct {
	// Stage and Partition select the task.
	Stage, Partition int
	// Factor ≥ 1 multiplies the task's charged compute time.
	Factor float64
}

// Corruption schedules the deliberate damage of one durably staged
// shuffle block at the start of one stage: among the newest materialized
// shuffle's staged blocks (sorted keys — a deterministic set, since
// whether a bucket is staged depends only on the data, never on memory
// pressure), index Block modulo the count selects the victim, which is
// forced to disk and damaged — truncated mid-payload when Torn, one
// payload bit flipped otherwise. The next fetch of the block fails its
// CRC32C and flows into the FetchFailed → partial-recompute path,
// exactly like an executor loss of that map partition. No-op without a
// durable store (Conf.DurableDir) or with nothing staged yet.
type Corruption struct {
	// Stage is the global stage ID at whose start the damage happens.
	Stage int
	// Block indexes the victim among the staged blocks (mod the count).
	Block int
	// Torn truncates the block file instead of flipping a bit.
	Torn bool
}

// RemoteOutage takes the remote replica tier down for a window of
// stages: from the start of stage From until (exclusive) the start of
// stage From+Dur, replication parks its queue and recovery skips the
// restore path — the engine degrades to recompute-only. Window
// membership is evaluated against the run's high-water stage ID, so
// resubmitted recovery stages (which reuse old IDs) can never re-open a
// closed window.
type RemoteOutage struct {
	// From is the global stage ID at whose start the outage begins.
	From int
	// Dur is the window length in stages (> 0).
	Dur int
}

// RemoteSlow dilates simulated remote-tier operations by Factor for a
// window of stages ([From, From+Dur), same semantics as RemoteOutage).
// A dilated restore read that exceeds Conf.RemoteOpTimeout times out
// and is retried with exponential backoff up to Conf.RemoteMaxRetries;
// exhausting the retries falls back to recompute.
type RemoteSlow struct {
	// From is the global stage ID at whose start the slowdown begins.
	From int
	// Dur is the window length in stages (> 0).
	Dur int
	// Factor > 1 multiplies simulated remote operation time.
	Factor float64
}

// RemoteCorruption schedules the deliberate damage of one remote
// replica at the start of one stage: pending replication is flushed,
// then among the newest shuffle's replicas (sorted keys) index Block
// modulo the count selects the victim — the same selection rule as the
// local Corruption event, so pairing the two with equal indexes damages
// a block and its replica together (forcing the recompute fallback).
type RemoteCorruption struct {
	// Stage is the global stage ID at whose start the damage happens.
	Stage int
	// Block indexes the victim among the replicas (mod the count).
	Block int
	// Torn truncates the replica file instead of flipping a bit.
	Torn bool
}

// GCPause schedules a stop-the-world pause on one executor: from the
// start of stage From the node stops heartbeating for Dur modelled time
// WITHOUT dying — its staged outputs and cached data survive. With a
// heartbeat failure detector (Conf.HeartbeatInterval > 0) a pause of at
// least one interval makes the scheduler suspect the node; a pause of at
// least HeartbeatMisses intervals makes it falsely declare the node dead,
// invalidate its map outputs and resubmit — and when the pause ends, the
// original "zombie" attempt's commit is rejected by the map-output commit
// lease (attempt-epoch fencing). Requires the detector: plans carrying GC
// pauses are rejected without Conf.HeartbeatInterval.
type GCPause struct {
	// Node is the executor that pauses.
	Node int
	// From is the global stage ID at whose start the pause begins.
	From int
	// Dur is how long the node's heartbeats stall, in modelled time.
	Dur simtime.Duration
}

// Partition schedules a network partition: from the start of stage From
// the named executors are unreachable from the driver for Dur modelled
// time — alive and computing, but silent. Detector semantics are exactly
// GCPause's, applied to every partitioned node: false suspicion, stale
// commits fenced when the partition heals. Requires the detector.
type Partition struct {
	// Nodes are the executors cut off from the driver.
	Nodes []int
	// From is the global stage ID at whose start the partition begins.
	From int
	// Dur is how long the partition lasts, in modelled time.
	Dur simtime.Duration
}

// RackFailure schedules the correlated loss of one fault domain at the
// start of one stage: every executor in the rack dies at once (shared
// ToR switch / PDU), with full per-node crash semantics — staged outputs
// lost, blacklist backoff per node, first-attempt tasks killed. Requires
// a cluster with rack topology (cluster.WithRacks).
type RackFailure struct {
	// Rack is the fault domain that fails.
	Rack int
	// Stage is the global stage ID at whose start the rack dies.
	Stage int
	// Down is how long the rack's executors stay blacklisted; 0 uses the
	// per-node exponential backoff.
	Down simtime.Duration
}

// FaultPlan is a deterministic schedule of injected cluster failures,
// attached via Conf.FaultPlan. Each event fires at most once per context,
// when the named stage starts. Stage IDs are the engine's global stage
// counter (see StageEvent.StageID); resubmitted recovery stages reuse
// their original stage's ID, so planned numbering is identical with and
// without faults.
type FaultPlan struct {
	// Seed records the generator seed for reports (informational).
	Seed int64
	// Crashes are the scheduled executor losses.
	Crashes []ExecutorCrash
	// DiskLosses are the scheduled staging-disk wipes.
	DiskLosses []DiskLoss
	// Stragglers are the scheduled slow tasks.
	Stragglers []Straggler
	// Corruptions are the scheduled durable-block damages.
	Corruptions []Corruption
	// RemoteOutages are the scheduled remote-tier unavailability windows.
	RemoteOutages []RemoteOutage
	// RemoteSlows are the scheduled remote-tier slowdown windows.
	RemoteSlows []RemoteSlow
	// RemoteCorruptions are the scheduled remote-replica damages.
	RemoteCorruptions []RemoteCorruption
	// GCPauses are the scheduled stop-the-world executor pauses
	// (heartbeat stalls without death — false-suspicion fodder).
	GCPauses []GCPause
	// Partitions are the scheduled network partitions.
	Partitions []Partition
	// RackFailures are the scheduled correlated fault-domain losses.
	RackFailures []RackFailure
}

// Empty reports whether the plan schedules nothing.
func (p *FaultPlan) Empty() bool {
	return p == nil || len(p.Crashes)+len(p.DiskLosses)+len(p.Stragglers)+len(p.Corruptions)+
		len(p.RemoteOutages)+len(p.RemoteSlows)+len(p.RemoteCorruptions)+
		len(p.GCPauses)+len(p.Partitions)+len(p.RackFailures) == 0
}

// validate checks the plan against a cluster size and rack count.
func (p *FaultPlan) validate(nodes, racks int) error {
	for _, ev := range p.Crashes {
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("rdd: FaultPlan crash at stage %d names node %d outside the %d-node cluster", ev.Stage, ev.Node, nodes)
		}
		if ev.Stage < 0 {
			return fmt.Errorf("rdd: FaultPlan crash names negative stage %d", ev.Stage)
		}
		if ev.Down < 0 {
			return fmt.Errorf("rdd: FaultPlan crash at stage %d has negative Down %v", ev.Stage, ev.Down)
		}
	}
	for _, ev := range p.DiskLosses {
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("rdd: FaultPlan disk loss at stage %d names node %d outside the %d-node cluster", ev.Stage, ev.Node, nodes)
		}
		if ev.Stage < 0 {
			return fmt.Errorf("rdd: FaultPlan disk loss names negative stage %d", ev.Stage)
		}
	}
	for _, ev := range p.Stragglers {
		if ev.Factor < 1 {
			return fmt.Errorf("rdd: FaultPlan straggler at stage %d task %d has factor %g < 1", ev.Stage, ev.Partition, ev.Factor)
		}
		if ev.Stage < 0 || ev.Partition < 0 {
			return fmt.Errorf("rdd: FaultPlan straggler names negative stage %d / partition %d", ev.Stage, ev.Partition)
		}
	}
	for _, ev := range p.Corruptions {
		if ev.Stage < 0 || ev.Block < 0 {
			return fmt.Errorf("rdd: FaultPlan corruption names negative stage %d / block %d", ev.Stage, ev.Block)
		}
	}
	for _, ev := range p.RemoteOutages {
		if ev.From < 0 || ev.Dur <= 0 {
			return fmt.Errorf("rdd: FaultPlan remote outage window [%d, %d+%d) is invalid (From ≥ 0, Dur > 0)", ev.From, ev.From, ev.Dur)
		}
	}
	for _, ev := range p.RemoteSlows {
		if ev.From < 0 || ev.Dur <= 0 {
			return fmt.Errorf("rdd: FaultPlan remote slowdown window [%d, %d+%d) is invalid (From ≥ 0, Dur > 0)", ev.From, ev.From, ev.Dur)
		}
		if ev.Factor <= 1 {
			return fmt.Errorf("rdd: FaultPlan remote slowdown at stage %d has factor %g ≤ 1", ev.From, ev.Factor)
		}
	}
	for _, ev := range p.RemoteCorruptions {
		if ev.Stage < 0 || ev.Block < 0 {
			return fmt.Errorf("rdd: FaultPlan remote corruption names negative stage %d / block %d", ev.Stage, ev.Block)
		}
	}
	for _, ev := range p.GCPauses {
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("rdd: FaultPlan GC pause at stage %d names node %d outside the %d-node cluster", ev.From, ev.Node, nodes)
		}
		if ev.From < 0 {
			return fmt.Errorf("rdd: FaultPlan GC pause names negative stage %d", ev.From)
		}
		if ev.Dur <= 0 {
			return fmt.Errorf("rdd: FaultPlan GC pause at stage %d has non-positive duration %v", ev.From, ev.Dur)
		}
	}
	for _, ev := range p.Partitions {
		if len(ev.Nodes) == 0 {
			return fmt.Errorf("rdd: FaultPlan network partition at stage %d isolates no nodes", ev.From)
		}
		for _, n := range ev.Nodes {
			if n < 0 || n >= nodes {
				return fmt.Errorf("rdd: FaultPlan network partition at stage %d names node %d outside the %d-node cluster", ev.From, n, nodes)
			}
		}
		if ev.From < 0 {
			return fmt.Errorf("rdd: FaultPlan network partition names negative stage %d", ev.From)
		}
		if ev.Dur <= 0 {
			return fmt.Errorf("rdd: FaultPlan network partition at stage %d has non-positive duration %v", ev.From, ev.Dur)
		}
	}
	for _, ev := range p.RackFailures {
		if racks <= 1 {
			return fmt.Errorf("rdd: FaultPlan rack failure at stage %d needs a cluster with rack topology (cluster.WithRacks)", ev.Stage)
		}
		if ev.Rack < 0 || ev.Rack >= racks {
			return fmt.Errorf("rdd: FaultPlan rack failure at stage %d names rack %d outside the %d-rack cluster", ev.Stage, ev.Rack, racks)
		}
		if ev.Stage < 0 {
			return fmt.Errorf("rdd: FaultPlan rack failure names negative stage %d", ev.Stage)
		}
		if ev.Down < 0 {
			return fmt.Errorf("rdd: FaultPlan rack failure at stage %d has negative Down %v", ev.Stage, ev.Down)
		}
	}
	return nil
}

// RandomFaultPlan draws a seeded schedule of crashes, stragglers and disk
// losses over the first `stages` stages of a run on a `nodes`-node
// cluster. The same seed always yields the same plan, and replaying the
// plan on the same job yields the same recovery trajectory — the chaos
// harness's determinism rests on both.
func RandomFaultPlan(seed int64, stages, nodes, crashes, stragglers, diskLosses int) *FaultPlan {
	if stages < 2 {
		stages = 2
	}
	if nodes < 1 {
		nodes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := &FaultPlan{Seed: seed}
	// Skip stage 0 so every fault hits a run with prior shuffle state to
	// lose (a crash before any map output exists recovers trivially).
	for i := 0; i < crashes; i++ {
		p.Crashes = append(p.Crashes, ExecutorCrash{
			Stage: 1 + rng.Intn(stages-1),
			Node:  rng.Intn(nodes),
		})
	}
	for i := 0; i < stragglers; i++ {
		p.Stragglers = append(p.Stragglers, Straggler{
			Stage:     1 + rng.Intn(stages-1),
			Partition: rng.Intn(nodes * 2),
			Factor:    2 + 4*rng.Float64(),
		})
	}
	for i := 0; i < diskLosses; i++ {
		p.DiskLosses = append(p.DiskLosses, DiskLoss{
			Stage: 1 + rng.Intn(stages-1),
			Node:  rng.Intn(nodes),
		})
	}
	return p
}

// WithRandomCorruptions returns a copy of the plan with n seeded
// corruption events appended, drawn over the first `stages` stages —
// the corruption analogue of RandomFaultPlan (same seed, same events).
func (p *FaultPlan) WithRandomCorruptions(seed int64, stages, n int) *FaultPlan {
	if stages < 2 {
		stages = 2
	}
	rng := rand.New(rand.NewSource(seed))
	q := *p
	q.Corruptions = append([]Corruption(nil), p.Corruptions...)
	for i := 0; i < n; i++ {
		q.Corruptions = append(q.Corruptions, Corruption{
			Stage: 1 + rng.Intn(stages-1),
			Block: rng.Intn(1 << 16),
			Torn:  rng.Intn(2) == 1,
		})
	}
	return &q
}

// WithRandomGCPauses returns a copy of the plan with n seeded GC-pause
// events appended, drawn over the first `stages` stages. Pause durations
// span 2–8 modelled seconds, so against typical heartbeat settings some
// pauses stay below the declaration threshold (suspicion only) and some
// cross it (false declaration + zombie fencing). Fresh generator, same
// chaining contract as WithRandomCorruptions.
func (p *FaultPlan) WithRandomGCPauses(seed int64, stages, nodes, n int) *FaultPlan {
	if stages < 2 {
		stages = 2
	}
	if nodes < 1 {
		nodes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	q := *p
	q.GCPauses = append([]GCPause(nil), p.GCPauses...)
	for i := 0; i < n; i++ {
		q.GCPauses = append(q.GCPauses, GCPause{
			From: 1 + rng.Intn(stages-1),
			Node: rng.Intn(nodes),
			Dur:  simtime.Duration(2+6*rng.Float64()) * simtime.Second,
		})
	}
	return &q
}

// WithRandomPartitions returns a copy of the plan with n seeded network
// partitions appended, each isolating one or two executors for 2–8
// modelled seconds over the first `stages` stages.
func (p *FaultPlan) WithRandomPartitions(seed int64, stages, nodes, n int) *FaultPlan {
	if stages < 2 {
		stages = 2
	}
	if nodes < 1 {
		nodes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	q := *p
	q.Partitions = append([]Partition(nil), p.Partitions...)
	for i := 0; i < n; i++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		cut := []int{a}
		if b != a {
			cut = append(cut, b)
		}
		q.Partitions = append(q.Partitions, Partition{
			From:  1 + rng.Intn(stages-1),
			Nodes: cut,
			Dur:   simtime.Duration(2+6*rng.Float64()) * simtime.Second,
		})
	}
	return &q
}

// WithRandomRackFailures returns a copy of the plan with n seeded rack
// failures appended, drawn over the first `stages` stages of a
// `racks`-domain cluster.
func (p *FaultPlan) WithRandomRackFailures(seed int64, stages, racks, n int) *FaultPlan {
	if stages < 2 {
		stages = 2
	}
	if racks < 1 {
		racks = 1
	}
	rng := rand.New(rand.NewSource(seed))
	q := *p
	q.RackFailures = append([]RackFailure(nil), p.RackFailures...)
	for i := 0; i < n; i++ {
		q.RackFailures = append(q.RackFailures, RackFailure{
			Stage: 1 + rng.Intn(stages-1),
			Rack:  rng.Intn(racks),
		})
	}
	return &q
}

// FetchFailedError is a reduce-side fetch hitting an invalidated map
// output — Spark's FetchFailed. It indicts the parent map stage, not the
// reduce task: the scheduler resubmits the map stage for the lost
// partitions and retries the fetch without consuming a task attempt.
type FetchFailedError struct {
	// ShuffleID names the shuffle whose output is gone.
	ShuffleID int
	// MapPart is the lost map partition the fetch wanted.
	MapPart int
	// Node is the executor that staged (and lost) the output.
	Node int
	// Epoch is the shuffle's recovery epoch at failure time; recovery is
	// skipped when another task already recovered past it.
	Epoch int
	// Corrupt marks a durably staged block that failed checksum
	// verification (rather than an output lost with its executor); the
	// indicted map partition is recomputed all the same and its fresh
	// staging overwrites the damaged block.
	Corrupt bool
}

// Error implements error.
func (e *FetchFailedError) Error() string {
	if e.Corrupt {
		return fmt.Sprintf("rdd: fetch failed: shuffle %d map partition %d block corrupt in durable store", e.ShuffleID, e.MapPart)
	}
	return fmt.Sprintf("rdd: fetch failed: shuffle %d map partition %d lost with executor %d", e.ShuffleID, e.MapPart, e.Node)
}

// maxStageAttempts bounds resubmissions of one map stage (Spark's
// spark.stage.maxConsecutiveAttempts).
const maxStageAttempts = 8

// defaultBlacklistBackoff is the base executor blacklist duration after a
// crash (spark.blacklist-style timeout, in virtual time).
const defaultBlacklistBackoff = 30 * simtime.Second

// faultState is a context's mutable failure bookkeeping: which plan
// events already fired and the per-executor blacklist. The Conf's plan is
// never mutated, so one plan can drive many contexts.
type faultState struct {
	mu                 sync.Mutex
	plan               FaultPlan
	crashFired         []bool
	diskFired          []bool
	stragFired         []bool
	corruptFired       []bool
	slowFired          []bool
	remoteCorruptFired []bool
	gcFired            []bool
	partFired          []bool
	rackFired          []bool
	// downUntil[n] is the virtual time node n's blacklist expires;
	// strikes[n] counts its crashes (exponential backoff doubles per
	// strike).
	downUntil []simtime.Duration
	strikes   []int
	// maxStage is the high-water global stage ID seen by fireStageFaults;
	// remote windows are evaluated against it, so resubmitted recovery
	// stages (which reuse old IDs) can never re-open a closed window.
	maxStage int
	// remoteDown is the outage-window state last applied to the store
	// (transition edges count degraded windows).
	remoteDown bool
}

// newFaultState prepares the per-context bookkeeping for a plan.
func newFaultState(p *FaultPlan, nodes int) *faultState {
	if p.Empty() {
		return nil
	}
	return &faultState{
		plan:               *p,
		crashFired:         make([]bool, len(p.Crashes)),
		diskFired:          make([]bool, len(p.DiskLosses)),
		stragFired:         make([]bool, len(p.Stragglers)),
		corruptFired:       make([]bool, len(p.Corruptions)),
		slowFired:          make([]bool, len(p.RemoteSlows)),
		remoteCorruptFired: make([]bool, len(p.RemoteCorruptions)),
		gcFired:            make([]bool, len(p.GCPauses)),
		partFired:          make([]bool, len(p.Partitions)),
		rackFired:          make([]bool, len(p.RackFailures)),
		downUntil:          make([]simtime.Duration, nodes),
		strikes:            make([]int, nodes),
		maxStage:           -1,
	}
}

// fireStageFaults fires the plan's crash and disk-loss events scheduled
// for this stage (once each): crashed nodes are blacklisted with
// exponential backoff and both event kinds invalidate the node's staged
// map outputs. It returns the set of nodes that crashed at this stage —
// their first-attempt tasks die with the executor.
func (c *Context) fireStageFaults(stageID int) map[int]bool {
	fs := c.faults
	if fs == nil {
		return nil
	}
	now := c.Clock()
	fs.mu.Lock()
	// Remote-tier windows are driven by the high-water stage ID: update
	// it, re-evaluate the outage state, and note (once) any slowdown
	// window this stage enters.
	if stageID > fs.maxStage {
		fs.maxStage = stageID
	}
	remoteWasDown := fs.remoteDown
	remoteDown := false
	for _, ev := range fs.plan.RemoteOutages {
		if fs.maxStage >= ev.From && fs.maxStage < ev.From+ev.Dur {
			remoteDown = true
			break
		}
	}
	fs.remoteDown = remoteDown
	for i := range fs.plan.RemoteSlows {
		ev := &fs.plan.RemoteSlows[i]
		if !fs.slowFired[i] && fs.maxStage >= ev.From && fs.maxStage < ev.From+ev.Dur {
			fs.slowFired[i] = true
			c.recm.injectRemoteSlow.Inc()
		}
	}
	var toCorruptRemote []RemoteCorruption
	for i := range fs.plan.RemoteCorruptions {
		ev := &fs.plan.RemoteCorruptions[i]
		if ev.Stage != stageID || fs.remoteCorruptFired[i] {
			continue
		}
		fs.remoteCorruptFired[i] = true
		toCorruptRemote = append(toCorruptRemote, *ev)
	}
	// det is the heartbeat detector's declaration latency: with the
	// detector on, a dead (or silent) executor becomes scheduler-visible
	// only after HeartbeatMisses consecutive missed leases. 0 keeps the
	// legacy omniscient delivery (faults known the instant they fire).
	det := c.detectionLatency()
	declared := false
	suspect := func(node int, detail string) {
		c.rec.suspicions.Add(1)
		c.recm.detSuspicions.Inc()
		c.recordEvent(obs.Event{
			Clock: now.Seconds(), Type: obs.EvSuspicion,
			Stage: stageID, Part: -1, Node: node, Shuffle: -1,
			Detail: detail,
		})
	}
	var crashed map[int]bool
	var toLose, toZombie, failedRacks []int
	// declareDead applies per-node crash semantics (strike, exponential
	// blacklist backoff — overridden by an explicit down — and staged
	// output loss) shared by solo crashes and rack failures. The blacklist
	// starts at declaration time: detection latency delays it.
	declareDead := func(node int, down simtime.Duration) {
		fs.strikes[node]++
		backoff := c.conf.BlacklistBackoff
		for s := 1; s < fs.strikes[node] && s < 6; s++ {
			backoff *= 2
		}
		if down <= 0 {
			down = backoff
		}
		if until := now + det + down; until > fs.downUntil[node] {
			fs.downUntil[node] = until
		}
		if crashed == nil {
			crashed = make(map[int]bool)
		}
		crashed[node] = true
		toLose = append(toLose, node)
	}
	for i := range fs.plan.Crashes {
		ev := &fs.plan.Crashes[i]
		if ev.Stage != stageID || fs.crashFired[i] {
			continue
		}
		fs.crashFired[i] = true
		declareDead(ev.Node, ev.Down)
		c.rec.execCrashes.Add(1)
		c.recm.injectCrash.Inc()
		if det > 0 {
			declared = true
			suspect(ev.Node, "heartbeats stopped: executor dead")
		}
		c.recordEvent(obs.Event{
			Clock: now.Seconds(), Type: obs.EvFault,
			Stage: stageID, Part: -1, Node: ev.Node, Shuffle: -1,
			Detail: "executor-crash",
		})
	}
	for i := range fs.plan.RackFailures {
		ev := &fs.plan.RackFailures[i]
		if ev.Stage != stageID || fs.rackFired[i] {
			continue
		}
		fs.rackFired[i] = true
		failedRacks = append(failedRacks, ev.Rack)
		members := c.conf.Cluster.RackNodes(ev.Rack)
		for _, node := range members {
			declareDead(node, ev.Down)
			if det > 0 {
				declared = true
				suspect(node, fmt.Sprintf("heartbeats stopped with rack %d", ev.Rack))
			}
		}
		c.rec.rackFailures.Add(1)
		c.recm.injectRack.Inc()
		c.recordEvent(obs.Event{
			Clock: now.Seconds(), Type: obs.EvFault,
			Stage: stageID, Part: -1, Node: -1, Shuffle: -1,
			Detail: fmt.Sprintf("rack-failure rack=%d nodes=%d", ev.Rack, len(members)),
		})
	}
	// stall models an alive executor going silent for dur (stop-the-world
	// GC, network partition): past one missed lease the scheduler suspects
	// it; past the full declaration latency it is falsely declared dead —
	// outputs invalidated, node blacklisted until its heartbeats resume,
	// and the still-running attempts remembered as zombies whose late
	// commits the map-output lease must fence.
	stall := func(node int, dur simtime.Duration, kind string) {
		if dur < c.conf.HeartbeatInterval {
			return // resumes inside one lease: never even suspected
		}
		suspect(node, fmt.Sprintf("%s: heartbeats stalled %s", kind, dur))
		if dur < det {
			return // recovers before the lease count runs out: suspicion only
		}
		declared = true
		c.rec.falseSuspicions.Add(1)
		c.recm.detFalseSuspicions.Inc()
		if until := now + dur; until > fs.downUntil[node] {
			fs.downUntil[node] = until
		}
		toZombie = append(toZombie, node)
	}
	for i := range fs.plan.GCPauses {
		ev := &fs.plan.GCPauses[i]
		if ev.From != stageID || fs.gcFired[i] {
			continue
		}
		fs.gcFired[i] = true
		c.recm.injectGCPause.Inc()
		c.recordEvent(obs.Event{
			Clock: now.Seconds(), Type: obs.EvFault,
			Stage: stageID, Part: -1, Node: ev.Node, Shuffle: -1,
			Detail: fmt.Sprintf("gc-pause dur=%s", ev.Dur),
		})
		stall(ev.Node, ev.Dur, "gc-pause")
	}
	for i := range fs.plan.Partitions {
		ev := &fs.plan.Partitions[i]
		if ev.From != stageID || fs.partFired[i] {
			continue
		}
		fs.partFired[i] = true
		c.recm.injectPartition.Inc()
		c.recordEvent(obs.Event{
			Clock: now.Seconds(), Type: obs.EvFault,
			Stage: stageID, Part: -1, Node: -1, Shuffle: -1,
			Detail: fmt.Sprintf("network-partition nodes=%d dur=%s", len(ev.Nodes), ev.Dur),
		})
		for _, node := range ev.Nodes {
			stall(node, ev.Dur, "network-partition")
		}
	}
	for i := range fs.plan.DiskLosses {
		ev := &fs.plan.DiskLosses[i]
		if ev.Stage != stageID || fs.diskFired[i] {
			continue
		}
		fs.diskFired[i] = true
		toLose = append(toLose, ev.Node)
		c.rec.diskLosses.Add(1)
		c.recm.injectDisk.Inc()
		c.recordEvent(obs.Event{
			Clock: now.Seconds(), Type: obs.EvFault,
			Stage: stageID, Part: -1, Node: ev.Node, Shuffle: -1,
			Detail: "disk-loss",
		})
	}
	var toCorrupt []Corruption
	for i := range fs.plan.Corruptions {
		ev := &fs.plan.Corruptions[i]
		if ev.Stage != stageID || fs.corruptFired[i] {
			continue
		}
		fs.corruptFired[i] = true
		toCorrupt = append(toCorrupt, *ev)
	}
	fs.mu.Unlock()
	if declared && det > 0 {
		// Detection latency: the scheduler learns of the losses only after
		// the missed-heartbeat lease runs out, and that wait is modelled
		// time on the critical path — charged once per stage boundary no
		// matter how many executors were declared together (their leases
		// expire in parallel). The charge lands before the stage reads the
		// clock, so placements already see the post-declaration blacklist.
		c.advanceDriver(det, simtime.Overhead, obs.PhaseDetection)
		c.mu.Lock()
		c.bd.Detection += det
		c.mu.Unlock()
	}
	if c.store != nil && c.store.RemoteAttached() {
		if remoteDown && !remoteWasDown {
			// Entering an outage window: one degraded-mode episode begins —
			// the replication queue parks and recovery falls back to
			// recompute until the window closes.
			c.rec.degradedWindows.Add(1)
			c.recm.degradedWindows.Inc()
			c.recm.injectRemoteOutage.Inc()
			c.recordEvent(obs.Event{
				Clock: now.Seconds(), Type: obs.EvFault,
				Stage: stageID, Part: -1, Node: -1, Shuffle: -1,
				Detail: "remote-outage-enter",
			})
		}
		c.store.SetRemoteAvailable(!remoteDown)
		if !remoteDown {
			// While the tier is up, every block staged before this stage
			// boundary is replicated before any of the stage's faults can
			// lose it — this is what makes restore-vs-recompute decisions
			// (and therefore the recovery stats) deterministic. A reopened
			// tier drains the backlog parked during the outage here too.
			c.store.FlushReplication()
		}
		for _, rack := range failedRacks {
			// A rack failure burns the rack's share of the remote tier too:
			// replicas placed in the failed domain are gone, so restores of
			// those keys fail over to recompute — domain-aware placement
			// guarantees the surviving copy lives elsewhere.
			if n := c.store.DropRemoteDomain(rack); n > 0 {
				c.recordEvent(obs.Event{
					Clock: now.Seconds(), Type: obs.EvFault,
					Stage: stageID, Part: -1, Node: -1, Shuffle: -1,
					Detail: fmt.Sprintf("rack-failure rack=%d dropped %d remote replicas", rack, n),
				})
			}
		}
	}
	for _, node := range toLose {
		c.loseNodeOutputs(node, false)
	}
	for _, node := range toZombie {
		c.loseNodeOutputs(node, true)
	}
	for _, ev := range toCorrupt {
		c.corruptStagedBlock(ev)
	}
	for _, ev := range toCorruptRemote {
		c.corruptRemoteReplica(ev)
	}
	return crashed
}

// detectionLatency returns the heartbeat detector's declaration latency
// (HeartbeatMisses × HeartbeatInterval), or 0 with the detector off.
func (c *Context) detectionLatency() simtime.Duration {
	return simtime.Duration(c.conf.HeartbeatMisses) * c.conf.HeartbeatInterval
}

// remoteSlowFactor returns the active remote-slowdown dilation (≥ 1) at
// the run's current high-water stage.
func (c *Context) remoteSlowFactor() float64 {
	fs := c.faults
	if fs == nil {
		return 1
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := 1.0
	for _, ev := range fs.plan.RemoteSlows {
		if fs.maxStage >= ev.From && fs.maxStage < ev.From+ev.Dur && ev.Factor > f {
			f = ev.Factor
		}
	}
	return f
}

// nodeDown reports whether a node is blacklisted at the given time.
func (c *Context) nodeDown(node int, asOf simtime.Duration) bool {
	fs := c.faults
	if fs == nil {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return asOf < fs.downUntil[node]
}

// placeNode assigns a task its executor: the partition's home node unless
// that node is blacklisted, in which case the next alive node in ring
// order takes it (deterministic re-placement off a flapping executor).
func (c *Context) placeNode(split int, asOf simtime.Duration) int {
	home := c.nodeOf(split)
	if !c.nodeDown(home, asOf) {
		return home
	}
	nodes := c.conf.Cluster.Nodes
	for i := 1; i < nodes; i++ {
		n := (home + i) % nodes
		if !c.nodeDown(n, asOf) {
			c.rec.blacklisted.Add(1)
			c.recm.blacklisted.Inc()
			c.recordEvent(obs.Event{
				Clock: asOf.Seconds(), Type: obs.EvBlacklist,
				Stage: -1, Part: split, Node: n, Shuffle: -1,
				Detail: fmt.Sprintf("home node %d blacklisted", home),
			})
			return n
		}
	}
	return home // every node down: schedule home and let it run
}

// stragglerFactor returns the injected slowdown for a task, or 1, and
// marks the matched events fired. Firing at most once per context matters
// because recovery stages reuse their original stage ID: a recomputed
// lost map partition must not be re-dilated (and re-counted) on every
// resubmission.
func (c *Context) stragglerFactor(stageID, split int) float64 {
	fs := c.faults
	if fs == nil {
		return 1
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	factor := 1.0
	for i := range fs.plan.Stragglers {
		ev := &fs.plan.Stragglers[i]
		if ev.Stage != stageID || ev.Partition != split || fs.stragFired[i] {
			continue
		}
		fs.stragFired[i] = true
		if ev.Factor > factor {
			factor = ev.Factor
		}
	}
	return factor
}

// loseNodeOutputs invalidates every live shuffle map output staged on a
// node: matching bucket refs are flagged lost (a later fetch panics with
// FetchFailedError) and their staged bytes are released from the node's
// simulated disk — the data died with the executor/disk. With zombie set
// the node is NOT actually dead (false suspicion): each invalidated part
// additionally remembers the commit lease it was registered under, so
// the recovery merge can detect — and fence — the stale attempt's late
// commit when the resubmission takes a fresh lease.
func (c *Context) loseNodeOutputs(node int, zombie bool) {
	c.mu.Lock()
	states := make([]*shuffleState, 0, len(c.shuffles))
	for _, st := range c.shuffles {
		states = append(states, st)
	}
	c.mu.Unlock()
	for _, st := range states {
		var lostBytes int64
		st.mu.Lock()
		if st.done && !st.retired {
			for p, n := range st.mapNode {
				if n != node || st.refsByMap[p] == 0 || st.lost[p] {
					continue
				}
				if st.lost == nil {
					st.lost = make(map[int]bool)
				}
				st.lost[p] = true
				lostBytes += st.spillByMap[p]
				if zombie {
					if st.zombieParts == nil {
						st.zombieParts = make(map[int]int)
					}
					st.zombieParts[p] = st.commitLease
				}
			}
			st.spillByNode[node] -= lostBytes
		}
		st.mu.Unlock()
		if lostBytes > 0 {
			c.simul.ReleaseShuffle(node, lostBytes)
		}
	}
}

// recovery holds a context's recovery counters (atomics: tasks update
// them concurrently). The same increments are mirrored into the metrics
// registry via recoveryMetrics; these fields power RecoveryStats for
// tests without scraping.
type recovery struct {
	taskRetries      atomic.Int64
	fetchFailures    atomic.Int64
	stageResubmits   atomic.Int64
	recomputedParts  atomic.Int64
	specLaunched     atomic.Int64
	specWins         atomic.Int64
	blacklisted      atomic.Int64
	execCrashes      atomic.Int64
	diskLosses       atomic.Int64
	stragglers       atomic.Int64
	faultKills       atomic.Int64
	corruptions      atomic.Int64
	restoredBlocks   atomic.Int64
	recomputedBlocks atomic.Int64
	remoteRetries    atomic.Int64
	degradedWindows  atomic.Int64
	remoteCorrupts   atomic.Int64
	spillStragglers  atomic.Int64
	suspicions       atomic.Int64
	falseSuspicions  atomic.Int64
	fencedCommits    atomic.Int64
	stormThrottled   atomic.Int64
	rackFailures     atomic.Int64
}

// recoveryMetrics are the pre-resolved registry handles for the recovery
// counter families (resolved once in NewContext; hot paths only Inc).
type recoveryMetrics struct {
	taskRetries         *obs.Counter
	fetchFailures       *obs.Counter
	stageResubmits      *obs.Counter
	recomputedParts     *obs.Counter
	specLaunched        *obs.Counter
	specWins            *obs.Counter
	blacklisted         *obs.Counter
	recomputedBlocks    *obs.Counter
	remoteRetries       *obs.Counter
	degradedWindows     *obs.Counter
	spillStragglers     *obs.Counter
	detSuspicions       *obs.Counter
	detFalseSuspicions  *obs.Counter
	detFencedCommits    *obs.Counter
	detStormThrottled   *obs.Counter
	injectTask          *obs.Counter
	injectCrash         *obs.Counter
	injectDisk          *obs.Counter
	injectStraggler     *obs.Counter
	injectCorrupt       *obs.Counter
	injectRemoteOutage  *obs.Counter
	injectRemoteSlow    *obs.Counter
	injectRemoteCorrupt *obs.Counter
	injectGCPause       *obs.Counter
	injectPartition     *obs.Counter
	injectRack          *obs.Counter
}

// newRecoveryMetrics resolves the recovery counter families against a
// registry. fault_injections_total is labelled by fault kind; the other
// families are single-series.
func newRecoveryMetrics(reg *obs.Registry) recoveryMetrics {
	return recoveryMetrics{
		taskRetries:     reg.Counter("dpspark_task_retries_total", nil),
		fetchFailures:   reg.Counter("dpspark_fetch_failures_total", nil),
		stageResubmits:  reg.Counter("dpspark_stage_resubmits_total", nil),
		recomputedParts: reg.Counter("dpspark_recomputed_map_partitions_total", nil),
		specLaunched:    reg.Counter("dpspark_speculative_tasks_total", nil),
		specWins:        reg.Counter("dpspark_speculation_wins_total", nil),
		blacklisted:     reg.Counter("dpspark_blacklist_placements_total", nil),
		// dpspark_remote_restored_blocks_total is owned (and incremented)
		// by the store's RestoreFromRemote — no rdd-side handle, so the
		// family is never double-counted.
		recomputedBlocks:    reg.Counter("dpspark_remote_recomputed_blocks_total", nil),
		remoteRetries:       reg.Counter("dpspark_remote_retries_total", nil),
		degradedWindows:     reg.Counter("dpspark_remote_degraded_windows_total", nil),
		spillStragglers:     reg.Counter("dpspark_spill_stragglers_total", nil),
		detSuspicions:       reg.Counter("dpspark_detector_suspicions_total", nil),
		detFalseSuspicions:  reg.Counter("dpspark_detector_false_suspicions_total", nil),
		detFencedCommits:    reg.Counter("dpspark_detector_fenced_commits_total", nil),
		detStormThrottled:   reg.Counter("dpspark_detector_storm_throttled_resubmits_total", nil),
		injectTask:          reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "task"}),
		injectCrash:         reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "executor-crash"}),
		injectDisk:          reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "disk-loss"}),
		injectStraggler:     reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "straggler"}),
		injectCorrupt:       reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "corruption"}),
		injectRemoteOutage:  reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "remote-outage"}),
		injectRemoteSlow:    reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "remote-slow"}),
		injectRemoteCorrupt: reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "remote-corruption"}),
		injectGCPause:       reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "gc-pause"}),
		injectPartition:     reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "network-partition"}),
		injectRack:          reg.Counter("dpspark_fault_injections_total", obs.Labels{"kind": "rack-failure"}),
	}
}

// RecoveryStats is a snapshot of the context's failure/recovery counters.
type RecoveryStats struct {
	// TaskRetries counts task attempts beyond the first (panics, injected
	// task kills, executor-loss kills).
	TaskRetries int64
	// FetchFailures counts reduce-side fetches that hit a lost map output.
	FetchFailures int64
	// StageResubmits counts map-stage resubmissions triggered by fetch
	// failures.
	StageResubmits int64
	// RecomputedMapPartitions counts map partitions recomputed by
	// resubmitted stages (only the lost ones — never the full stage).
	RecomputedMapPartitions int64
	// SpeculativeTasks and SpeculationWins count speculative copies
	// launched and copies that beat the original.
	SpeculativeTasks, SpeculationWins int64
	// BlacklistPlacements counts tasks placed off their home node because
	// it was blacklisted.
	BlacklistPlacements int64
	// ExecutorCrashes, DiskLosses and Stragglers count fired plan events;
	// FaultKills counts task attempts killed by Conf.FaultInjector.
	ExecutorCrashes, DiskLosses, Stragglers, FaultKills int64
	// Corruptions counts fired plan corruption events that actually
	// damaged a staged block (a corruption with nothing staged is a no-op
	// and not counted).
	Corruptions int64
	// RestoredBlocks counts staged shuffle blocks recovery repaired from
	// intact remote replicas instead of recomputing their map partition.
	RestoredBlocks int64
	// RecomputedBlocks counts staged blocks recovery had to rebuild via
	// the partial map-recompute fallback (replica missing, corrupt, the
	// tier down, or the restore retries exhausted).
	RecomputedBlocks int64
	// RemoteRetries counts remote restore reads retried after a simulated
	// timeout (exponential backoff; see Conf.RemoteOpTimeout).
	RemoteRetries int64
	// DegradedWindows counts entries into degraded (recompute-only) mode
	// — one per remote-outage window the run passed through.
	DegradedWindows int64
	// RemoteCorruptions counts fired plan remote-corruption events that
	// actually damaged a replica.
	RemoteCorruptions int64
	// SpillStragglers counts tasks dilated by spill-aware scheduling
	// (Conf.SpillStraggler) because their node was memory-starved.
	SpillStragglers int64
	// Suspicions counts executors the heartbeat detector suspected after a
	// missed lease (0 with the detector off — faults deliver omnisciently).
	Suspicions int64
	// FalseSuspicions counts alive-but-silent executors (GC pause, network
	// partition) the detector falsely declared dead.
	FalseSuspicions int64
	// FencedCommits counts stale (zombie) map-output commits rejected by
	// the attempt-epoch commit lease after a false declaration.
	FencedCommits int64
	// StormThrottledResubmits counts stage resubmissions that had to wait
	// for a recovery-storm token (Conf.RecoveryTokens) before running.
	StormThrottledResubmits int64
	// RackFailures counts fired rack-failure events (each kills a whole
	// fault domain; the per-node losses are not double-counted as
	// ExecutorCrashes).
	RackFailures int64
}

// RecoveryStats returns the context's failure/recovery counters so far.
func (c *Context) RecoveryStats() RecoveryStats {
	return RecoveryStats{
		TaskRetries:             c.rec.taskRetries.Load(),
		FetchFailures:           c.rec.fetchFailures.Load(),
		StageResubmits:          c.rec.stageResubmits.Load(),
		RecomputedMapPartitions: c.rec.recomputedParts.Load(),
		SpeculativeTasks:        c.rec.specLaunched.Load(),
		SpeculationWins:         c.rec.specWins.Load(),
		BlacklistPlacements:     c.rec.blacklisted.Load(),
		ExecutorCrashes:         c.rec.execCrashes.Load(),
		DiskLosses:              c.rec.diskLosses.Load(),
		Stragglers:              c.rec.stragglers.Load(),
		FaultKills:              c.rec.faultKills.Load(),
		Corruptions:             c.rec.corruptions.Load(),
		RestoredBlocks:          c.rec.restoredBlocks.Load(),
		RecomputedBlocks:        c.rec.recomputedBlocks.Load(),
		RemoteRetries:           c.rec.remoteRetries.Load(),
		DegradedWindows:         c.rec.degradedWindows.Load(),
		RemoteCorruptions:       c.rec.remoteCorrupts.Load(),
		SpillStragglers:         c.rec.spillStragglers.Load(),
		Suspicions:              c.rec.suspicions.Load(),
		FalseSuspicions:         c.rec.falseSuspicions.Load(),
		FencedCommits:           c.rec.fencedCommits.Load(),
		StormThrottledResubmits: c.rec.stormThrottled.Load(),
		RackFailures:            c.rec.rackFailures.Load(),
	}
}
