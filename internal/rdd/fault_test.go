package rdd

import (
	"strings"
	"sync/atomic"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/simtime"
)

// TestTaskRetryRecovers: a task that fails twice must be retried from
// lineage and the job must still produce the right answer, charging the
// failed attempts' work.
func TestTaskRetryRecovers(t *testing.T) {
	var injected atomic.Int64
	ctx := NewContext(Conf{
		Cluster: cluster.Local(2),
		FaultInjector: func(stageID, partition, attempt int) bool {
			if partition == 1 && attempt < 2 {
				injected.Add(1)
				return true
			}
			return false
		},
	})
	r := Map(Parallelize(ctx, ints(10), 2), func(tc *TaskContext, x int) int {
		tc.ChargeCompute(simtime.Second, 1)
		return x * 2
	})
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("collect = %d records", len(got))
	}
	if injected.Load() != 2 {
		t.Fatalf("injector fired %d times, want 2", injected.Load())
	}
}

// TestTaskPanicRetried: panics inside user code are treated as task
// failures and retried; a deterministic panic exhausts the attempts and
// surfaces as a job error naming the task.
func TestTaskPanicRetried(t *testing.T) {
	var calls atomic.Int64
	ctx := NewContext(Conf{Cluster: cluster.Local(2), MaxTaskAttempts: 3})
	r := Map(Parallelize(ctx, ints(4), 1), func(_ *TaskContext, x int) int {
		calls.Add(1)
		panic("kaboom")
	})
	_, err := r.Collect()
	if err == nil {
		t.Fatal("expected job failure")
	}
	if !strings.Contains(err.Error(), "attempt 3") {
		t.Fatalf("error = %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("task ran %d times, want 3", calls.Load())
	}
}

// TestTransientPanicRecovered: a panic on the first attempt only.
func TestTransientPanicRecovered(t *testing.T) {
	var first atomic.Bool
	first.Store(true)
	ctx := NewContext(Conf{Cluster: cluster.Local(1)})
	r := Map(Parallelize(ctx, ints(3), 1), func(_ *TaskContext, x int) int {
		if first.Swap(false) {
			panic("transient")
		}
		return x + 1
	})
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("collect = %v", got)
	}
}

// TestFailedAttemptsChargeTime: the virtual clock includes the work lost
// to failed attempts.
func TestFailedAttemptsChargeTime(t *testing.T) {
	run := func(failures int) simtime.Duration {
		ctx := NewContext(Conf{
			Cluster: cluster.Local(1),
			FaultInjector: func(_, _, attempt int) bool {
				// The injector fires before work, so charge-bearing
				// failures need a mid-work panic instead; emulate lost
				// work by failing after the charge via panic below.
				return false
			},
		})
		remaining := failures
		r := Map(Parallelize(ctx, ints(1), 1), func(tc *TaskContext, x int) int {
			tc.ChargeCompute(10*simtime.Second, 1)
			if remaining > 0 {
				remaining--
				panic("lose the work")
			}
			return x
		})
		if _, err := r.Collect(); err != nil {
			t.Fatal(err)
		}
		return ctx.Clock()
	}
	clean := run(0)
	flaky := run(2)
	if flaky < clean+15*simtime.Second {
		t.Fatalf("failed attempts must cost time: clean %v vs flaky %v", clean, flaky)
	}
}
