package rdd

import (
	"runtime"
	"strings"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/costmodel"
	"dpspark/internal/simtime"
)

// TestConfNormalizationAllKnobs: one table across every Conf knob family
// — cluster, fault/retry, speculation, durable store, remote tier, spill
// models, kernels, substrate mounting — so every validation lives (and
// stays) in the single normalize site.
func TestConfNormalizationAllKnobs(t *testing.T) {
	base := func() Conf { return Conf{Cluster: cluster.LocalN(2, 2)} }
	cases := []struct {
		name string
		mut  func(*Conf)
		want string // substring of the normalize error
	}{
		// Cluster family.
		{"missing cluster", func(c *Conf) { c.Cluster = nil }, "Conf.Cluster is required"},

		// Fault / retry family.
		{"negative task attempts", func(c *Conf) { c.MaxTaskAttempts = -1 }, "MaxTaskAttempts"},
		{"negative keep shuffles", func(c *Conf) { c.KeepShuffles = -1 }, "KeepShuffles"},
		{"negative blacklist backoff", func(c *Conf) { c.BlacklistBackoff = -simtime.Second }, "BlacklistBackoff"},
		{"speculation multiplier at 1", func(c *Conf) { c.SpeculationMultiplier = 1 }, "SpeculationMultiplier"},
		{"negative speculation multiplier", func(c *Conf) { c.SpeculationMultiplier = -2 }, "SpeculationMultiplier"},
		{"speculation quantile at 1", func(c *Conf) { c.SpeculationQuantile = 1 }, "SpeculationQuantile"},
		{"negative speculation quantile", func(c *Conf) { c.SpeculationQuantile = -0.5 }, "SpeculationQuantile"},
		{"fault plan names absent node", func(c *Conf) {
			c.FaultPlan = &FaultPlan{Crashes: []ExecutorCrash{{Stage: 0, Node: 9}}}
		}, "outside the 2-node cluster"},
		{"fault plan straggler below 1", func(c *Conf) {
			c.FaultPlan = &FaultPlan{Stragglers: []Straggler{{Stage: 0, Partition: 0, Factor: 0.5}}}
		}, "factor 0.5 < 1"},

		// Durable-store family.
		{"negative memory budget", func(c *Conf) { c.MemoryBudget = -1 }, "MemoryBudget"},
		{"budget without durable dir", func(c *Conf) { c.MemoryBudget = 64 }, "needs Conf.DurableDir"},

		// Remote-tier family.
		{"remote without durable", func(c *Conf) { c.RemoteDir = "somewhere" }, "RemoteDir needs Conf.DurableDir"},
		{"negative remote timeout", func(c *Conf) { c.RemoteOpTimeout = -simtime.Second }, "RemoteOpTimeout"},
		{"negative remote retries", func(c *Conf) { c.RemoteMaxRetries = -1 }, "RemoteMaxRetries"},
		{"negative remote backoff", func(c *Conf) { c.RemoteBackoff = -simtime.Second }, "RemoteBackoff"},

		// Spill-model family.
		{"spill straggler below 1", func(c *Conf) { c.SpillStraggler = 0.9 }, "SpillStraggler"},
		{"negative spill dilation", func(c *Conf) { c.SpillDilation = -1 }, "SpillDilation"},
		{"both spill models", func(c *Conf) {
			c.DurableDir, c.MemoryBudget = t.TempDir(), 64
			c.SpillStraggler, c.SpillDilation = 8, 2
		}, "mutually exclusive"},
		{"dilation without budget", func(c *Conf) { c.SpillDilation = 2 }, "needs Conf.MemoryBudget"},

		// Kernel family.
		{"negative kernel threads", func(c *Conf) { c.KernelThreads = -1 }, "KernelThreads"},

		// Substrate family.
		{"priority without substrate", func(c *Conf) { c.Priority = 3 }, "Priority needs Conf.Substrate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conf := base()
			tc.mut(&conf)
			err := conf.normalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("normalize = %v, want mention of %q", err, tc.want)
			}
		})
	}

	t.Run("substrate conflicts", func(t *testing.T) {
		sub, err := NewSubstrate(SubstrateConf{Cluster: cluster.LocalN(2, 2), KernelThreads: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			name string
			mut  func(*Conf)
			want string
		}{
			{"cluster with substrate", func(c *Conf) { c.Cluster = cluster.LocalN(4, 2) }, "Conf.Cluster must be unset"},
			{"params with substrate", func(c *Conf) {
				p := costmodel.DefaultParams()
				c.Params = &p
			}, "Conf.Params must be unset"},
			{"kernel threads with substrate", func(c *Conf) { c.KernelThreads = 4 }, "Conf.KernelThreads must be unset"},
		} {
			t.Run(tc.name, func(t *testing.T) {
				conf := Conf{Substrate: sub}
				tc.mut(&conf)
				err := conf.normalize()
				if err == nil || !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("normalize = %v, want mention of %q", err, tc.want)
				}
			})
		}

		// Mounting adopts the substrate's shared fields.
		conf := Conf{Substrate: sub, Priority: 5}
		if err := conf.normalize(); err != nil {
			t.Fatal(err)
		}
		if conf.Cluster != sub.Cluster() || conf.KernelThreads != 2 {
			t.Fatalf("mounted conf did not adopt substrate fields: cluster %v kernelThreads %d", conf.Cluster, conf.KernelThreads)
		}
		if conf.RealParallelism != sub.RealParallelism() {
			t.Fatalf("RealParallelism = %d, want substrate's %d", conf.RealParallelism, sub.RealParallelism())
		}
	})

	t.Run("defaults", func(t *testing.T) {
		conf := base()
		if err := conf.normalize(); err != nil {
			t.Fatal(err)
		}
		if conf.MaxTaskAttempts != 4 || conf.KeepShuffles != 8 {
			t.Fatalf("retry defaults: attempts %d keep %d", conf.MaxTaskAttempts, conf.KeepShuffles)
		}
		if conf.SpeculationMultiplier != 1.5 || conf.SpeculationQuantile != 0.75 {
			t.Fatalf("speculation defaults: %g × quantile %g", conf.SpeculationMultiplier, conf.SpeculationQuantile)
		}
		if conf.RemoteOpTimeout != 2*simtime.Second || conf.RemoteMaxRetries != 3 || conf.RemoteBackoff != 500*simtime.Millisecond {
			t.Fatalf("remote defaults: %v / %d / %v", conf.RemoteOpTimeout, conf.RemoteMaxRetries, conf.RemoteBackoff)
		}
		if conf.KernelThreads != 1 || conf.ExecutorCores != conf.Cluster.Node.Cores {
			t.Fatalf("kernel defaults: threads %d cores %d", conf.KernelThreads, conf.ExecutorCores)
		}
		if conf.RealParallelism != runtime.NumCPU() || conf.Sizer == nil {
			t.Fatalf("engine defaults: parallelism %d sizer %v", conf.RealParallelism, conf.Sizer)
		}
	})

	t.Run("kernel cotune splits cores", func(t *testing.T) {
		conf := Conf{Cluster: cluster.LocalN(2, 8), KernelThreads: 4}
		if err := conf.normalize(); err != nil {
			t.Fatal(err)
		}
		if conf.ExecutorCores != 2 {
			t.Fatalf("ExecutorCores = %d, want 8 cores / 4 threads = 2", conf.ExecutorCores)
		}
	})
}
