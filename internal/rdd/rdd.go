package rdd

import "fmt"

// RDD is a typed, lazily evaluated, partitioned distributed dataset —
// transformations build lineage; actions (Collect, Count) trigger jobs.
type RDD[T any] struct {
	ds *dataset
}

// Name returns the dataset's debug name.
func (r *RDD[T]) Name() string { return r.ds.name }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.ds.parts }

// Partitioner returns the dataset's partitioner, or nil if unknown.
func (r *RDD[T]) Partitioner() Partitioner { return r.ds.part }

// Context returns the owning engine context.
func (r *RDD[T]) Context() *Context { return r.ds.ctx }

// Cache marks the RDD's partitions for in-memory materialization on first
// computation (spark .cache()); cached bytes count against executor
// memory. Returns the receiver for chaining.
func (r *RDD[T]) Cache() *RDD[T] {
	r.ds.cacheOn = true
	r.ds.mu.Lock()
	if r.ds.cached == nil {
		r.ds.cached = make(map[int][]Record)
	}
	r.ds.mu.Unlock()
	return r
}

// Checkpoint eagerly materializes the RDD and truncates its lineage: its
// partitions become stored data, upstream shuffles and parents are
// released. Iterative drivers checkpoint each generation of the DP table,
// exactly like the Spark implementations the paper builds on (unbounded
// lineage would otherwise force every action to replay all earlier
// generations' shuffle files). The materialization stage is charged like
// any other.
func (r *RDD[T]) Checkpoint() error {
	ctx := r.ds.ctx
	data := ctx.runJob(r.ds)
	r.ds.source = data
	r.ds.narrow = nil
	r.ds.shuffle = nil
	r.ds.deps = nil
	return ctx.Err()
}

// CheckpointData checkpoints like Checkpoint and additionally returns
// the materialized rows, typed, per partition. It is the durable
// checkpointer's hook: the driver persists exactly the materialization
// the cadence checkpoint runs anyway, so writing to Config.DurableDir
// adds no extra stage — stage numbering, fault-plan firing points and
// the virtual clock are identical with and without a durable dir.
func (r *RDD[T]) CheckpointData() ([][]T, error) {
	ctx := r.ds.ctx
	data := ctx.runJob(r.ds)
	r.ds.source = data
	r.ds.narrow = nil
	r.ds.shuffle = nil
	r.ds.deps = nil
	out := make([][]T, len(data))
	for i, part := range data {
		typed := make([]T, len(part))
		for j, rec := range part {
			typed[j] = rec.(T)
		}
		out[i] = typed
	}
	return out, ctx.Err()
}

// Unpersist drops cached partitions and returns their memory.
func (r *RDD[T]) Unpersist() {
	ds := r.ds
	ds.mu.Lock()
	freed := make(map[int]int64)
	for split, recs := range ds.cached {
		var b int64
		for _, rec := range recs {
			b += ds.ctx.sizer(rec)
		}
		freed[split] = b
	}
	ds.cached = make(map[int][]Record)
	ds.cacheOn = false
	ds.mu.Unlock()
	for split, b := range freed {
		ds.ctx.releaseCacheMemory(ds.ctx.nodeOf(split), b)
	}
}

// Parallelize distributes records across parts partitions (round-robin,
// like sc.parallelize on an unkeyed collection).
func Parallelize[T any](c *Context, recs []T, parts int) *RDD[T] {
	if parts < 1 {
		panic("rdd: Parallelize needs ≥1 partitions")
	}
	ds := c.newDataset(fmt.Sprintf("parallelize[%d]", len(recs)), parts, nil)
	src := make([][]Record, parts)
	for i, rec := range recs {
		p := i % parts
		src[p] = append(src[p], rec)
	}
	ds.source = src
	return &RDD[T]{ds: ds}
}

// ParallelizePairs distributes key-value records into the partitions the
// given partitioner assigns, yielding a co-partitioned pair RDD (like
// sc.parallelize(...).partitionBy(p) without the extra shuffle).
func ParallelizePairs[K comparable, V any](c *Context, recs []Pair[K, V], part Partitioner) *RDD[Pair[K, V]] {
	p := part.NumPartitions()
	ds := c.newDataset(fmt.Sprintf("parallelizePairs[%d]", len(recs)), p, part)
	src := make([][]Record, p)
	for _, rec := range recs {
		b := part.Partition(rec.Key)
		src[b] = append(src[b], rec)
	}
	ds.source = src
	return &RDD[Pair[K, V]]{ds: ds}
}

// Filter returns the records satisfying pred. Narrow; preserves the
// partitioner (keys are untouched).
func (r *RDD[T]) Filter(pred func(T) bool) *RDD[T] {
	parent := r.ds
	ds := r.ds.ctx.newDataset("filter<-"+parent.name, parent.parts, parent.part)
	ds.deps = []*dataset{parent}
	ds.narrow = func(tc *TaskContext, split int) []Record {
		in := r.ds.ctx.iterate(parent, split, tc)
		// Count first: a partition that passes entirely is handed through
		// and one that matches nothing returns nil, so only partitions the
		// predicate actually splits pay for a copy. The grid filters of the
		// DP drivers (pivot row/column/interior selections) fall in the
		// no-copy cases for almost every partition.
		keep := 0
		for _, rec := range in {
			if pred(rec.(T)) {
				keep++
			}
		}
		switch keep {
		case 0:
			return nil
		case len(in):
			return in
		}
		out := make([]Record, 0, keep)
		for _, rec := range in {
			if pred(rec.(T)) {
				out = append(out, rec)
			}
		}
		return out
	}
	return &RDD[T]{ds: ds}
}

// Map applies f to every record. Narrow; clears the partitioner (keys may
// change). f receives the TaskContext to charge modelled kernel time.
func Map[T, U any](r *RDD[T], f func(tc *TaskContext, rec T) U) *RDD[U] {
	parent := r.ds
	ds := r.ds.ctx.newDataset("map<-"+parent.name, parent.parts, nil)
	ds.deps = []*dataset{parent}
	ds.narrow = func(tc *TaskContext, split int) []Record {
		in := r.ds.ctx.iterate(parent, split, tc)
		out := make([]Record, len(in))
		for i, rec := range in {
			out[i] = f(tc, rec.(T))
		}
		return out
	}
	return &RDD[U]{ds: ds}
}

// FlatMap applies f to every record and concatenates the results.
// Narrow; clears the partitioner.
func FlatMap[T, U any](r *RDD[T], f func(tc *TaskContext, rec T) []U) *RDD[U] {
	parent := r.ds
	ds := r.ds.ctx.newDataset("flatMap<-"+parent.name, parent.parts, nil)
	ds.deps = []*dataset{parent}
	ds.narrow = func(tc *TaskContext, split int) []Record {
		in := r.ds.ctx.iterate(parent, split, tc)
		var out []Record
		for _, rec := range in {
			for _, u := range f(tc, rec.(T)) {
				out = append(out, u)
			}
		}
		return out
	}
	return &RDD[U]{ds: ds}
}

// MapPartitions applies f to each whole partition. preservesPartitioning
// keeps the input partitioner (assert keys unchanged), as in Spark.
func MapPartitions[T, U any](r *RDD[T], f func(tc *TaskContext, recs []T) []U, preservesPartitioning bool) *RDD[U] {
	parent := r.ds
	var part Partitioner
	if preservesPartitioning {
		part = parent.part
	}
	ds := r.ds.ctx.newDataset("mapPartitions<-"+parent.name, parent.parts, part)
	ds.deps = []*dataset{parent}
	ds.narrow = func(tc *TaskContext, split int) []Record {
		in := r.ds.ctx.iterate(parent, split, tc)
		typed := make([]T, len(in))
		for i, rec := range in {
			typed[i] = rec.(T)
		}
		us := f(tc, typed)
		out := make([]Record, len(us))
		for i, u := range us {
			out[i] = u
		}
		return out
	}
	return &RDD[U]{ds: ds}
}

// Union concatenates RDDs of the same type. When every input shares one
// equal partitioner, the engine builds a partitioner-aware union (same
// partition count, co-located merge — no shuffle needed downstream);
// otherwise the result has the summed partitions and no partitioner.
func (r *RDD[T]) Union(others ...*RDD[T]) *RDD[T] {
	all := append([]*RDD[T]{r}, others...)
	ctx := r.ds.ctx
	deps := make([]*dataset, len(all))
	for i, rr := range all {
		if rr.ds.ctx != ctx {
			panic("rdd: Union across contexts")
		}
		deps[i] = rr.ds
	}

	aware := r.ds.part != nil
	for _, rr := range all[1:] {
		if rr.ds.part == nil || !rr.ds.part.Equal(r.ds.part) {
			aware = false
			break
		}
	}

	if aware {
		ds := ctx.newDataset(fmt.Sprintf("paUnion[%d]", len(all)), r.ds.parts, r.ds.part)
		ds.deps = deps
		ds.narrow = func(tc *TaskContext, split int) []Record {
			// Compute every input once (iterate charges compute, so no
			// second pass), then merge into an exactly-sized slice; if a
			// single input holds all the records, hand it through.
			ins := make([][]Record, len(deps))
			total, nonEmpty := 0, -1
			for i, p := range deps {
				ins[i] = ctx.iterate(p, split, tc)
				if len(ins[i]) > 0 {
					nonEmpty = i
				}
				total += len(ins[i])
			}
			if total == 0 {
				return nil
			}
			if len(ins[nonEmpty]) == total {
				return ins[nonEmpty]
			}
			out := make([]Record, 0, total)
			for _, in := range ins {
				out = append(out, in...)
			}
			return out
		}
		return &RDD[T]{ds: ds}
	}

	total := 0
	for _, p := range deps {
		total += p.parts
	}
	ds := ctx.newDataset(fmt.Sprintf("union[%d]", len(all)), total, nil)
	ds.deps = deps
	ds.narrow = func(tc *TaskContext, split int) []Record {
		for _, p := range deps {
			if split < p.parts {
				return ctx.iterate(p, split, tc)
			}
			split -= p.parts
		}
		panic("rdd: union split out of range")
	}
	return &RDD[T]{ds: ds}
}
