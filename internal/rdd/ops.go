package rdd

import "math/rand"

// Distinct returns the unique records of an RDD of comparable type,
// deduplicating within partitions first (map-side) and globally through
// a shuffle by record value.
func Distinct[T comparable](r *RDD[T], part Partitioner) *RDD[T] {
	keyed := Map(r, func(_ *TaskContext, v T) Pair[T, struct{}] {
		return KV(v, struct{}{})
	})
	reduced := ReduceByKey(keyed, func(a, _ struct{}) struct{} { return a }, part)
	return Keys(reduced)
}

// Sample returns a Bernoulli sample of the RDD: each record is kept with
// probability fraction. Deterministic for a given seed (each partition
// derives its own stream), narrow, partitioner-preserving is not claimed
// (records are unchanged but Spark also drops the partitioner here).
func Sample[T any](r *RDD[T], fraction float64, seed int64) *RDD[T] {
	if fraction < 0 || fraction > 1 {
		panic("rdd: Sample fraction must be in [0,1]")
	}
	parent := r.ds
	ctx := r.ds.ctx
	ds := ctx.newDataset("sample<-"+parent.name, parent.parts, nil)
	ds.deps = []*dataset{parent}
	ds.narrow = func(tc *TaskContext, split int) []Record {
		rng := rand.New(rand.NewSource(seed + int64(split)*0x9e3779b9))
		in := ctx.iterate(parent, split, tc)
		var out []Record
		for _, rec := range in {
			if rng.Float64() < fraction {
				out = append(out, rec)
			}
		}
		return out
	}
	return &RDD[T]{ds: ds}
}

// Take returns up to n records (driver-side; computes the whole RDD, as
// this engine has no partial-job support).
func (r *RDD[T]) Take(n int) ([]T, error) {
	recs, err := r.Collect()
	if err != nil {
		return nil, err
	}
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs, nil
}

// Reduce folds all records with an associative, commutative op; errors on
// an empty RDD.
func Reduce[T any](r *RDD[T], op func(a, b T) T) (T, error) {
	var zero T
	recs, err := r.Collect()
	if err != nil {
		return zero, err
	}
	if len(recs) == 0 {
		return zero, errEmptyReduce
	}
	acc := recs[0]
	for _, v := range recs[1:] {
		acc = op(acc, v)
	}
	return acc, nil
}

// errEmptyReduce reports Reduce on an empty RDD.
var errEmptyReduce = errorString("rdd: Reduce of empty RDD")

type errorString string

func (e errorString) Error() string { return string(e) }
