package rdd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/obs"
)

// shuffleJob runs one shuffled word-count-style job on the context.
func shuffleJob(t *testing.T, ctx *Context, seed int) {
	t.Helper()
	recs := make([]Pair[int, int], 64)
	for i := range recs {
		recs[i] = KV((seed+i)%8, 1)
	}
	r := ParallelizePairs(ctx, recs, NewHashPartitioner(4))
	shuffled := PartitionBy(r, NewHashPartitioner(2))
	if _, err := shuffled.Collect(); err != nil {
		t.Errorf("job %d: %v", seed, err)
	}
}

// TestParallelJobsOneContext drives several jobs concurrently through a
// single context (run under -race in CI): the event log, the simulator
// and the metrics registry must all tolerate parallel submissions.
func TestParallelJobsOneContext(t *testing.T) {
	ctx := NewContext(Conf{Cluster: cluster.Local(4), RealParallelism: 2})
	ctx.Observer().EnableTrace(true)
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			shuffleJob(t, ctx, j)
		}()
	}
	wg.Wait()

	events := ctx.Events()
	if len(events) != 16 { // 8 jobs × (map + result)
		t.Errorf("events = %d, want 16", len(events))
	}
	if total, clock := ctx.Breakdown().Total(), ctx.Clock(); math.Abs(total.Seconds()-clock.Seconds()) > 1e-9*clock.Seconds() {
		t.Errorf("breakdown total %v != clock %v", total, clock)
	}
	if ctx.Observer().SpanCount() == 0 {
		t.Error("no spans collected with tracing enabled")
	}
}

// TestMetricsMatchEventLog checks the acceptance identity: the metrics
// dump's shuffle-write total equals the sum of SpillBytes over the
// context's stage events (and the same for fetches).
func TestMetricsMatchEventLog(t *testing.T) {
	ctx := NewContext(Conf{Cluster: cluster.Local(4), RealParallelism: 4})
	ctx.SetPhase("update")
	for j := 0; j < 3; j++ {
		shuffleJob(t, ctx, j)
	}
	var spill, fetch int64
	for _, ev := range ctx.Events() {
		spill += ev.SpillBytes
		fetch += ev.FetchBytes
	}
	if spill == 0 {
		t.Fatal("test jobs staged no shuffle data")
	}
	reg := ctx.Observer().Metrics()
	if got := reg.CounterTotal("dpspark_shuffle_write_bytes_total"); got != spill {
		t.Errorf("metrics shuffle write total = %d, events spill sum = %d", got, spill)
	}
	if got := reg.CounterTotal("dpspark_shuffle_fetch_bytes_total"); got != fetch {
		t.Errorf("metrics shuffle fetch total = %d, events fetch sum = %d", got, fetch)
	}
	if got := ctx.Breakdown().ShuffleWriteBytes; got != spill {
		t.Errorf("breakdown write bytes = %d, events spill sum = %d", got, spill)
	}
}

// TestStagePhaseAttribution checks that shuffle stages inherit the phase
// current when their dependency was created, not when they run.
func TestStagePhaseAttribution(t *testing.T) {
	ctx := NewContext(Conf{Cluster: cluster.Local(2), RealParallelism: 1})
	recs := []Pair[int, int]{KV(1, 1), KV(2, 1)}
	r := ParallelizePairs(ctx, recs, NewHashPartitioner(2))
	ctx.SetPhase("pivot")
	shuffled := PartitionBy(r, NewHashPartitioner(1))
	ctx.SetPhase("update") // dep already created under "pivot"
	if _, err := shuffled.Collect(); err != nil {
		t.Fatal(err)
	}
	events := ctx.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Kind != StageShuffleMap || events[0].Phase != "pivot" {
		t.Errorf("map stage phase = %q, want pivot", events[0].Phase)
	}
	if events[1].Kind != StageResult || events[1].Phase != "update" {
		t.Errorf("result stage phase = %q, want update", events[1].Phase)
	}
}

// TestTimelineFooter checks the WriteTimeline totals footer agrees with
// the rendered stage lines.
func TestTimelineFooter(t *testing.T) {
	ctx := NewContext(Conf{Cluster: cluster.Local(2), RealParallelism: 1})
	shuffleJob(t, ctx, 0)
	var buf bytes.Buffer
	if err := ctx.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	events := ctx.Events()
	if len(lines) != len(events)+1 {
		t.Fatalf("timeline lines = %d, want %d stages + footer", len(lines), len(events))
	}
	var spill int64
	for _, ev := range events {
		spill += ev.SpillBytes
	}
	footer := lines[len(lines)-1]
	want := fmt.Sprintf("total %4d stages spill=%dB", len(events), spill)
	if !strings.HasPrefix(footer, want) {
		t.Errorf("footer %q does not start with %q", footer, want)
	}
}

// TestContextTraceExport runs a shuffled job with tracing on and checks
// the exported Chrome trace is valid JSON whose task spans sit on
// executor-core lanes of the context's process.
func TestContextTraceExport(t *testing.T) {
	o := obs.New()
	o.EnableTrace(true)
	ctx := NewContext(Conf{Cluster: cluster.Local(2), RealParallelism: 1, Observer: o, ExecutorCores: 2})
	shuffleJob(t, ctx, 0)
	var buf bytes.Buffer
	if err := o.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	pid := float64(ctx.TracePid())
	var taskSpans, stageSpans int
	for _, ev := range trace.TraceEvents {
		if ev["ph"] != "X" || ev["pid"] != pid {
			continue
		}
		cat := ev["cat"].(string)
		switch {
		case cat == "task":
			taskSpans++
			// Local(2) has 1 node with ExecCores=2: core lanes are tids
			// 1 and 2, the io lane tid 3.
			if tid := ev["tid"].(float64); tid < 1 || tid > 2 {
				t.Errorf("task span on tid %v, want an executor-core lane (1-2)", tid)
			}
		case strings.HasPrefix(cat, "stage"):
			stageSpans++
			if tid := ev["tid"].(float64); tid != 0 {
				t.Errorf("stage span on tid %v, want driver lane 0", tid)
			}
		}
	}
	if taskSpans == 0 || stageSpans == 0 {
		t.Errorf("trace has %d task and %d stage spans, want both > 0", taskSpans, stageSpans)
	}
}
