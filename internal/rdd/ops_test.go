package rdd

import (
	"sort"
	"testing"
)

func TestDistinct(t *testing.T) {
	ctx := testCtx()
	in := []int{1, 2, 2, 3, 3, 3, 1}
	got := sortedCollect(t, Distinct(Parallelize(ctx, in, 3), NewHashPartitioner(2)),
		func(a, b int) bool { return a < b })
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("distinct = %v", got)
	}
}

func TestSampleDeterministicAndProportional(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(2000), 4)
	a, err := Sample(r, 0.25, 42).Collect()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sample(r, 0.25, 42).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed must sample identically: %d vs %d", len(a), len(b))
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must sample identical records")
		}
	}
	if len(a) < 350 || len(a) > 650 {
		t.Fatalf("25%% of 2000 ≈ 500, got %d", len(a))
	}
	c, err := Sample(r, 0.25, 43).Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(c)
	same := len(c) == len(a)
	if same {
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestSampleFractionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sample(Parallelize(testCtx(), ints(4), 1), 1.5, 1)
}

func TestTakeAndReduce(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(10), 3)
	got, err := r.Take(4)
	if err != nil || len(got) != 4 {
		t.Fatalf("take = %v, %v", got, err)
	}
	sum, err := Reduce(r, func(a, b int) int { return a + b })
	if err != nil || sum != 45 {
		t.Fatalf("reduce = %d, %v", sum, err)
	}
	empty := Parallelize(ctx, []int{}, 1)
	if _, err := Reduce(empty, func(a, b int) int { return a + b }); err == nil {
		t.Fatal("empty reduce must error")
	}
}
