package rdd

import "dpspark/internal/matrix"

// Pair is a key-value record; RDDs of Pair support the pair-RDD
// operations (PartitionBy, CombineByKey, MapValues, ...). The paper's DP
// table is a pair RDD from tile coordinate (i,j) to the tile (§IV-C).
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// KV constructs a pair.
func KV[K comparable, V any](k K, v V) Pair[K, V] { return Pair[K, V]{Key: k, Value: v} }

// pairLike lets the untyped engine reach into any Pair instantiation
// (key extraction for shuffles, payload sizing for traffic accounting).
type pairLike interface {
	pairKey() any
	pairValue() any
}

func (p Pair[K, V]) pairKey() any   { return p.Key }
func (p Pair[K, V]) pairValue() any { return p.Value }

// Sizer estimates a record's serialized size in bytes, for shuffle,
// collect and broadcast traffic accounting.
type Sizer func(rec any) int64

// DefaultSizer prices tiles by payload, coordinates and scalars by a
// small fixed size, and unknown records conservatively.
func DefaultSizer(rec any) int64 {
	if p, ok := rec.(pairLike); ok {
		return DefaultSizer(p.pairKey()) + DefaultSizer(p.pairValue())
	}
	switch v := rec.(type) {
	case *matrix.Tile:
		if v == nil {
			return 0
		}
		return v.Bytes()
	case matrix.Coord:
		return 16
	case nil:
		return 0
	case int, int64, float64, uint64:
		return 8
	case string:
		return int64(len(v))
	case sized:
		return v.SizeBytes()
	default:
		return 64
	}
}

// sized lets record types report their own serialized size (e.g. the GEP
// drivers' tagged tile messages).
type sized interface {
	SizeBytes() int64
}
