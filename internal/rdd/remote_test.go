package rdd

import (
	"reflect"
	"strings"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/simtime"
)

// Remote-tier tests: replicas restore lost shuffle outputs before the
// recompute fallback fires, outage/slowdown windows degrade the engine
// to recompute-only without wedging it, and the new Conf knobs and plan
// events validate in the usual single sites.

// remoteConf is durableConf plus a remote replica tier rooted in its own
// temp directory.
func remoteConf(t *testing.T, budget int64) Conf {
	t.Helper()
	conf := durableConf(t, budget)
	conf.RemoteDir = t.TempDir()
	return conf
}

// TestRemoteRestoreAfterCrash: an executor crash that loses staged map
// outputs recovers by re-installing the blocks from their remote
// replicas — no stage resubmission, bit-identical result.
func TestRemoteRestoreAfterCrash(t *testing.T) {
	clean := NewContext(Conf{Cluster: cluster.LocalN(2, 2)})
	want := collectPairs(t, shuffledDoubles(clean, 4))

	conf := remoteConf(t, 0)
	conf.FaultPlan = &FaultPlan{Crashes: []ExecutorCrash{{Stage: 1, Node: 0}}}
	ctx := NewContext(conf)
	got := collectPairs(t, shuffledDoubles(ctx, 4))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restore changed results: %v vs %v", got, want)
	}

	rs := ctx.RecoveryStats()
	if rs.FetchFailures == 0 {
		t.Fatalf("crash must surface a fetch failure: %+v", rs)
	}
	if rs.RestoredBlocks == 0 {
		t.Fatalf("lost outputs must restore from replicas: %+v", rs)
	}
	if rs.RecomputedBlocks != 0 || rs.StageResubmits != 0 || rs.RecomputedMapPartitions != 0 {
		t.Fatalf("restore must preempt the recompute path entirely: %+v", rs)
	}
	reg := ctx.Observer().Metrics()
	if n := reg.CounterTotal("dpspark_remote_restored_blocks_total"); n != rs.RestoredBlocks {
		t.Fatalf("restored counter = %d, want %d", n, rs.RestoredBlocks)
	}
	if st := ctx.StoreStats(); st.RemoteRestored != rs.RestoredBlocks {
		t.Fatalf("store restored %d blocks, recovery saw %d", st.RemoteRestored, rs.RestoredBlocks)
	}
	// The restore re-homed the lost outputs: every staged block verifies.
	for _, key := range ctx.Store().Keys("shuffle/") {
		if _, err := ctx.Store().Get(key); err != nil {
			t.Fatalf("block %q unreadable after restore: %v", key, err)
		}
	}
	// The simulated remote reads were charged to the clock as recovery
	// time (overlapping the shared-fs component, like recompute stages).
	if ctx.Breakdown().Recovery <= 0 {
		t.Fatalf("restore reads must cost recovery time: %+v", ctx.Breakdown())
	}
}

// TestRemoteOutageDegradesToRecompute: with the tier down for the whole
// job, replication parks, restore is skipped, and recovery falls back to
// the PR 3 resubmission path; a later job whose stages close the window
// brings the tier back and drains the parked queue.
func TestRemoteOutageDegradesToRecompute(t *testing.T) {
	conf := remoteConf(t, 0)
	conf.FaultPlan = &FaultPlan{
		Crashes:       []ExecutorCrash{{Stage: 1, Node: 0}},
		RemoteOutages: []RemoteOutage{{From: 0, Dur: 2}},
	}
	ctx := NewContext(conf)
	got := collectPairs(t, shuffledDoubles(ctx, 4))
	if len(got) != 20 || got[7] != 14 {
		t.Fatalf("collect = %v", got)
	}
	rs := ctx.RecoveryStats()
	if rs.RestoredBlocks != 0 {
		t.Fatalf("restore must be skipped while the tier is down: %+v", rs)
	}
	if rs.RecomputedBlocks == 0 || rs.StageResubmits == 0 {
		t.Fatalf("degraded mode must fall back to recompute: %+v", rs)
	}
	if rs.DegradedWindows != 1 {
		t.Fatalf("degraded windows = %d, want 1: %+v", rs.DegradedWindows, rs)
	}
	if st := ctx.StoreStats(); st.ReplicatedBlocks != 0 || st.RemoteQueue == 0 {
		t.Fatalf("replication must park, not drop, during the outage: %+v", st)
	}

	// Stages 2 and 3 lie past the window: the tier recovers, the parked
	// queue drains, and the second job's outputs replicate too.
	got = collectPairs(t, shuffledDoubles(ctx, 4))
	if len(got) != 20 {
		t.Fatalf("post-outage collect = %v", got)
	}
	ctx.Store().FlushReplication()
	if st := ctx.StoreStats(); st.ReplicatedBlocks == 0 || st.RemoteQueue != 0 {
		t.Fatalf("queue must drain once the window closes: %+v", st)
	}
	reg := ctx.Observer().Metrics()
	if n := reg.CounterTotal("dpspark_remote_degraded_windows_total"); n != 1 {
		t.Fatalf("degraded-window counter = %d, want 1", n)
	}
	if n := reg.CounterTotal("dpspark_remote_recomputed_blocks_total"); n != rs.RecomputedBlocks {
		t.Fatalf("recomputed counter = %d, want %d", n, rs.RecomputedBlocks)
	}
}

// TestRemoteSlowTimeoutFallsBack: a slowdown window dilating remote reads
// past Conf.RemoteOpTimeout exhausts the retry budget (exponential
// backoff) and recovery falls back to recompute.
func TestRemoteSlowTimeoutFallsBack(t *testing.T) {
	conf := remoteConf(t, 0)
	conf.FaultPlan = &FaultPlan{
		Crashes:     []ExecutorCrash{{Stage: 1, Node: 0}},
		RemoteSlows: []RemoteSlow{{From: 0, Dur: 4, Factor: 1e12}},
	}
	ctx := NewContext(conf)
	got := collectPairs(t, shuffledDoubles(ctx, 4))
	if len(got) != 20 {
		t.Fatalf("collect = %v", got)
	}
	rs := ctx.RecoveryStats()
	if rs.RemoteRetries == 0 {
		t.Fatalf("dilated reads must time out and retry: %+v", rs)
	}
	if rs.RestoredBlocks != 0 || rs.RecomputedBlocks == 0 {
		t.Fatalf("exhausted retries must fall back to recompute: %+v", rs)
	}
	reg := ctx.Observer().Metrics()
	if n := reg.CounterTotal("dpspark_remote_retries_total"); n != rs.RemoteRetries {
		t.Fatalf("retry counter = %d, want %d", n, rs.RemoteRetries)
	}
	// Timeouts and backoffs are modelled costs, not wall time: each
	// failed attempt charged at least the op timeout.
	if ctx.Breakdown().Recovery < 2*simtime.Second {
		t.Fatalf("timed-out attempts must cost at least one deadline: %+v", ctx.Breakdown())
	}
}

// TestRemoteCorruptReplicaForcesRecompute: damaging a staged block AND
// its replica (the paired selection rule) defeats the restore path; the
// checksum failure on the replica is detected and recovery recomputes.
func TestRemoteCorruptReplicaForcesRecompute(t *testing.T) {
	clean := NewContext(Conf{Cluster: cluster.LocalN(2, 2)})
	want := collectPairs(t, shuffledDoubles(clean, 4))

	conf := remoteConf(t, 0)
	conf.FaultPlan = &FaultPlan{
		Corruptions:       []Corruption{{Stage: 1, Block: 1}},
		RemoteCorruptions: []RemoteCorruption{{Stage: 1, Block: 1}},
	}
	ctx := NewContext(conf)
	got := collectPairs(t, shuffledDoubles(ctx, 4))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("corrupt replica changed results: %v vs %v", got, want)
	}
	rs := ctx.RecoveryStats()
	if rs.Corruptions != 1 || rs.RemoteCorruptions != 1 {
		t.Fatalf("both corruption events must fire: %+v", rs)
	}
	if rs.RecomputedBlocks == 0 || rs.StageResubmits == 0 {
		t.Fatalf("a corrupt replica must force the recompute fallback: %+v", rs)
	}
	reg := ctx.Observer().Metrics()
	if n := reg.CounterTotal("dpspark_remote_corrupt_replicas_detected_total"); n == 0 {
		t.Fatal("replica checksum failure went undetected")
	}
}

// TestRemoteFaultPlanRunsAreDeterministic: the remote events join the
// determinism contract — same plan, same clock/counters/event log.
func TestRemoteFaultPlanRunsAreDeterministic(t *testing.T) {
	plan := &FaultPlan{
		Crashes:     []ExecutorCrash{{Stage: 1, Node: 0}},
		RemoteSlows: []RemoteSlow{{From: 0, Dur: 4, Factor: 2}},
	}
	run := func() (simtime.Duration, RecoveryStats, []StageEvent) {
		conf := remoteConf(t, 0)
		conf.FaultPlan = plan
		ctx := NewContext(conf)
		collectPairs(t, shuffledDoubles(ctx, 4))
		return ctx.Clock(), ctx.RecoveryStats(), ctx.Events()
	}
	c1, r1, e1 := run()
	c2, r2, e2 := run()
	if c1 != c2 {
		t.Fatalf("clocks differ: %v vs %v", c1, c2)
	}
	if r1 != r2 {
		t.Fatalf("recovery stats differ:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("event logs differ:\n%+v\n%+v", e1, e2)
	}
	if r1.RestoredBlocks == 0 {
		t.Fatalf("a gentle slowdown must not defeat the restore: %+v", r1)
	}
}

// TestSpillStragglerFeedsSpeculation: a memory-starved node (real spill
// wall observed between stages) is modelled slow, and speculation places
// the winning copy on a healthy one — the scheduling loop ISSUE 5's
// satellite closes.
func TestSpillStragglerFeedsSpeculation(t *testing.T) {
	run := func(factor float64) (RecoveryStats, map[int]int) {
		conf := durableConf(t, 64) // a handful of pairs per block: stage 0 spills
		// Four nodes, eight partitions: only a quarter of the result
		// stage's tasks land on the starved node, keeping the speculation
		// quantile anchored to the healthy duration.
		conf.Cluster = cluster.LocalN(4, 2)
		conf.SpillStraggler = factor
		conf.Speculation = factor > 1
		ctx := NewContext(conf)
		r := Map(shuffledDoubles(ctx, 8), func(tc *TaskContext, p Pair[int, int]) Pair[int, int] {
			tc.ChargeCompute(10*simtime.Second, 1)
			return p
		})
		got := collectPairs(t, r)
		return ctx.RecoveryStats(), got
	}

	off, _ := run(0)
	if off.SpillStragglers != 0 {
		t.Fatalf("disabled model must dilate nothing: %+v", off)
	}
	on, got := run(8)
	if len(got) != 20 || got[7] != 14 {
		t.Fatalf("collect = %v", got)
	}
	if on.SpillStragglers == 0 {
		t.Fatalf("the spilling node's tasks must be modelled slow: %+v", on)
	}
	if on.SpeculativeTasks == 0 || on.SpeculationWins == 0 {
		t.Fatalf("spill-dilated tasks must trigger (and lose to) speculation: %+v", on)
	}
}

// TestConfNormalizeRemoteKnobs: the remote/scheduling knobs validate in
// the same single normalize site, and the defaults land.
func TestConfNormalizeRemoteKnobs(t *testing.T) {
	base := func() Conf { return Conf{Cluster: cluster.LocalN(2, 2)} }
	cases := []struct {
		name string
		mut  func(*Conf)
		want string
	}{
		{"remote without durable", func(c *Conf) { c.RemoteDir = "somewhere" }, "RemoteDir"},
		{"negative op timeout", func(c *Conf) { c.RemoteOpTimeout = -simtime.Second }, "RemoteOpTimeout"},
		{"negative retries", func(c *Conf) { c.RemoteMaxRetries = -1 }, "RemoteMaxRetries"},
		{"negative backoff", func(c *Conf) { c.RemoteBackoff = -simtime.Second }, "RemoteBackoff"},
		{"spill straggler below 1", func(c *Conf) { c.SpillStraggler = 0.5 }, "SpillStraggler"},
		{"spill straggler at 1", func(c *Conf) { c.SpillStraggler = 1 }, "SpillStraggler"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conf := base()
			tc.mut(&conf)
			err := conf.normalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("normalize = %v, want mention of %s", err, tc.want)
			}
		})
	}

	t.Run("defaults", func(t *testing.T) {
		conf := base()
		conf.DurableDir = t.TempDir()
		conf.RemoteDir = t.TempDir()
		if err := conf.normalize(); err != nil {
			t.Fatalf("normalize: %v", err)
		}
		if conf.RemoteOpTimeout != 2*simtime.Second || conf.RemoteMaxRetries != 3 ||
			conf.RemoteBackoff != 500*simtime.Millisecond {
			t.Fatalf("defaults = %+v", conf)
		}
	})
}

// TestFaultPlanValidateRemoteEvents: malformed remote windows and
// corruption events are rejected; a remote-only plan is not Empty.
func TestFaultPlanValidateRemoteEvents(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		want string
	}{
		{"outage negative from", FaultPlan{RemoteOutages: []RemoteOutage{{From: -1, Dur: 1}}}, "remote outage"},
		{"outage zero dur", FaultPlan{RemoteOutages: []RemoteOutage{{From: 0, Dur: 0}}}, "remote outage"},
		{"slow zero dur", FaultPlan{RemoteSlows: []RemoteSlow{{From: 0, Dur: 0, Factor: 2}}}, "remote slowdown"},
		{"slow factor at 1", FaultPlan{RemoteSlows: []RemoteSlow{{From: 0, Dur: 2, Factor: 1}}}, "factor"},
		{"corruption negative stage", FaultPlan{RemoteCorruptions: []RemoteCorruption{{Stage: -1}}}, "remote corruption"},
		{"corruption negative block", FaultPlan{RemoteCorruptions: []RemoteCorruption{{Stage: 1, Block: -2}}}, "remote corruption"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.validate(4, 1)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validate = %v, want mention of %q", err, tc.want)
			}
		})
	}
	if (&FaultPlan{RemoteOutages: []RemoteOutage{{From: 0, Dur: 1}}}).Empty() {
		t.Fatal("a remote-only plan is not empty")
	}
}

// TestEngineStateRemoteCorruptFired: fired remote-corruption events
// round-trip through EngineState — a resumed context does not re-fire
// them — and a mismatched Restore vector is rejected.
func TestEngineStateRemoteCorruptFired(t *testing.T) {
	plan := &FaultPlan{RemoteCorruptions: []RemoteCorruption{{Stage: 1, Block: 0}}}
	conf := remoteConf(t, 0)
	conf.FaultPlan = plan
	ctx := NewContext(conf)
	collectPairs(t, shuffledDoubles(ctx, 4))
	if rs := ctx.RecoveryStats(); rs.RemoteCorruptions != 1 {
		t.Fatalf("corruption must fire: %+v", rs)
	}
	es := ctx.EngineState()
	if len(es.RemoteCorruptFired) != 1 || !es.RemoteCorruptFired[0] {
		t.Fatalf("snapshot = %+v", es)
	}

	bad := Conf{Cluster: cluster.LocalN(2, 2), FaultPlan: plan,
		Restore: &EngineState{RemoteCorruptFired: []bool{true, false}}}
	if err := bad.normalize(); err == nil || !strings.Contains(err.Error(), "RemoteCorruptFired") {
		t.Fatalf("normalize = %v, want RemoteCorruptFired mismatch", err)
	}

	resumed := NewContext(Conf{Cluster: cluster.LocalN(2, 2), FaultPlan: plan, Restore: &es})
	collectPairs(t, shuffledDoubles(resumed, 4))
	if rs := resumed.RecoveryStats(); rs.RemoteCorruptions != 0 {
		t.Fatalf("restored context re-fired the corruption: %+v", rs)
	}
}
