package rdd

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dpspark/internal/cluster"
)

// Durable-staging tests: shuffle buckets routed through the block store
// must read back identically (memory- or disk-resident), seeded
// corruption must flow into the FetchFailed → partial-recompute path,
// and the new Conf knobs must be validated in normalize.

// intPairCodec serializes Pair[int, int] records as two u64s — the
// engine-level stand-in for core's tile codec (rdd cannot import core).
type intPairCodec struct{}

func (intPairCodec) Append(dst []byte, rec Record) ([]byte, bool) {
	p, ok := rec.(Pair[int, int])
	if !ok {
		return dst, false
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Key))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Value))
	return dst, true
}

func (intPairCodec) Decode(b []byte) (Record, []byte, error) {
	if len(b) < 16 {
		return nil, nil, fmt.Errorf("intPairCodec: %d bytes left, want 16", len(b))
	}
	return KV(int(binary.LittleEndian.Uint64(b)), int(binary.LittleEndian.Uint64(b[8:]))), b[16:], nil
}

// durableConf is a 2×2 cluster Conf with the block store enabled.
func durableConf(t *testing.T, budget int64) Conf {
	t.Helper()
	return Conf{
		Cluster:      cluster.LocalN(2, 2),
		DurableDir:   t.TempDir(),
		MemoryBudget: budget,
		SpillCodec:   intPairCodec{},
	}
}

// TestShuffleDurableStaging: with a store configured, non-combining
// shuffle buckets are staged as blocks and the job's results are
// unchanged; retiring the shuffle cleans its blocks up.
func TestShuffleDurableStaging(t *testing.T) {
	ctx := NewContext(durableConf(t, 0))
	got := collectPairs(t, shuffledDoubles(ctx, 4))
	if len(got) != 20 || got[7] != 14 {
		t.Fatalf("collect = %v", got)
	}
	keys := ctx.Store().Keys(shufflePrefix(0))
	if len(keys) == 0 {
		t.Fatal("no blocks staged for shuffle 0")
	}
	// Push KeepShuffles more shuffles through so shuffle 0 retires.
	for i := 0; i < ctx.KeepShuffles(); i++ {
		collectPairs(t, shuffledDoubles(ctx, 2))
	}
	if keys := ctx.Store().Keys(shufflePrefix(0)); len(keys) != 0 {
		t.Fatalf("retired shuffle left blocks: %v", keys)
	}
}

// TestShuffleEvictionBitIdentical: a tiny MemoryBudget forces blocks to
// disk mid-run; results must equal the unbounded run's and the eviction
// counters must show the pressure was real.
func TestShuffleEvictionBitIdentical(t *testing.T) {
	free := NewContext(durableConf(t, 0))
	want := collectPairs(t, shuffledDoubles(free, 4))

	tight := NewContext(durableConf(t, 64)) // a handful of pairs per block
	got := collectPairs(t, shuffledDoubles(tight, 4))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("eviction changed results: %v vs %v", got, want)
	}
	st := tight.StoreStats()
	if st.Evicted == 0 || st.Spilled == 0 {
		t.Fatalf("no eviction under a 64-byte budget: %+v", st)
	}
	if free.StoreStats().Evicted != 0 {
		t.Fatalf("unbounded run evicted: %+v", free.StoreStats())
	}
}

// TestCorruptionRecoversViaRecompute: a seeded corruption event damages
// a staged block; the reduce-side read must fail its checksum, indict
// the map partition, and recover through the PR 3 resubmission path —
// with the right counters on both the store and the recovery side.
func TestCorruptionRecoversViaRecompute(t *testing.T) {
	for _, torn := range []bool{false, true} {
		t.Run(fmt.Sprintf("torn=%v", torn), func(t *testing.T) {
			conf := durableConf(t, 0)
			// Stage 0 stages the map outputs; the corruption fires as the
			// collecting stage 1 starts, so the damaged block is read (and
			// repaired) within that very stage.
			conf.FaultPlan = &FaultPlan{Corruptions: []Corruption{{Stage: 1, Block: 2, Torn: torn}}}
			ctx := NewContext(conf)
			got := collectPairs(t, shuffledDoubles(ctx, 4))
			if len(got) != 20 || got[7] != 14 {
				t.Fatalf("collect = %v", got)
			}
			rs := ctx.RecoveryStats()
			if rs.Corruptions != 1 {
				t.Fatalf("corruptions = %d, want 1: %+v", rs.Corruptions, rs)
			}
			if rs.FetchFailures == 0 || rs.StageResubmits == 0 || rs.RecomputedMapPartitions == 0 {
				t.Fatalf("corruption must recover through resubmission: %+v", rs)
			}
			reg := ctx.Observer().Metrics()
			if n := reg.CounterTotal("dpspark_corrupt_blocks_detected_total"); n == 0 {
				t.Fatal("store detected no corruption")
			}
			if n := reg.CounterTotal("dpspark_fault_injections_total"); n != 1 {
				t.Fatalf("fault injections = %d, want 1", n)
			}
			// The recompute overwrote the damaged block: every staged block
			// verifies now.
			for _, key := range ctx.Store().Keys("shuffle/") {
				if _, err := ctx.Store().Get(key); err != nil {
					t.Fatalf("block %q still damaged after recovery: %v", key, err)
				}
			}
		})
	}
}

// TestCorruptionPlusCrashSameRun: corruption and an executor crash in
// one run still recover to the exact fault-free result (the chaos-suite
// combination at engine level).
func TestCorruptionPlusCrashSameRun(t *testing.T) {
	clean := NewContext(Conf{Cluster: cluster.LocalN(2, 2)})
	want := collectPairs(t, shuffledDoubles(clean, 4))

	conf := durableConf(t, 0)
	conf.FaultPlan = &FaultPlan{
		Crashes:     []ExecutorCrash{{Stage: 1, Node: 0}},
		Corruptions: []Corruption{{Stage: 1, Block: 1}},
	}
	ctx := NewContext(conf)
	got := collectPairs(t, shuffledDoubles(ctx, 4))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("corruption+crash changed results: %v vs %v", got, want)
	}
	rs := ctx.RecoveryStats()
	if rs.Corruptions != 1 || rs.ExecutorCrashes != 1 {
		t.Fatalf("both events must fire: %+v", rs)
	}
}

// TestBroadcastDurableSelfHeal: a broadcast's durable copy that fails
// verification is re-written from the driver-held items on the next
// first-per-(node,stage) fetch.
func TestBroadcastDurableSelfHeal(t *testing.T) {
	ctx := NewContext(durableConf(t, 0))
	bc := NewBroadcast(ctx, []Pair[int, int]{KV(1, 10), KV(2, 20)})
	if !ctx.Store().Has("bc/0") {
		t.Fatal("broadcast not staged durably")
	}
	if !ctx.Store().Corrupt("bc/0", false) {
		t.Fatal("could not damage broadcast block")
	}
	items := bc.Get(&TaskContext{StageID: 3, Node: 1, ctx: ctx})
	if len(items) != 2 || items[1].Value != 20 {
		t.Fatalf("Get after corruption = %v", items)
	}
	if _, err := ctx.Store().Get("bc/0"); err != nil {
		t.Fatalf("broadcast block not self-healed: %v", err)
	}
	if n := ctx.Observer().Metrics().CounterTotal("dpspark_corrupt_blocks_detected_total"); n != 1 {
		t.Fatalf("corrupt detections = %d, want 1", n)
	}
}

// TestConfNormalizeStoreKnobs: the new knobs are validated in the same
// single normalize site as PR 3's.
func TestConfNormalizeStoreKnobs(t *testing.T) {
	base := func() Conf { return Conf{Cluster: cluster.LocalN(2, 2)} }
	cases := []struct {
		name string
		mut  func(*Conf)
		want string
	}{
		{"negative budget", func(c *Conf) { c.MemoryBudget = -1 }, "MemoryBudget"},
		{"budget without dir", func(c *Conf) { c.MemoryBudget = 1 << 20 }, "DurableDir"},
		{"restore negative cursor", func(c *Conf) { c.Restore = &EngineState{NextStage: -1} }, "Restore"},
		{"restore plan mismatch", func(c *Conf) {
			c.FaultPlan = &FaultPlan{Crashes: []ExecutorCrash{{Stage: 1, Node: 0}}}
			c.Restore = &EngineState{CrashFired: []bool{true, false}}
		}, "CrashFired"},
		{"restore strikes mismatch", func(c *Conf) {
			c.Restore = &EngineState{Strikes: []int{0, 0, 0}}
		}, "Strikes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conf := base()
			tc.mut(&conf)
			err := conf.normalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("normalize = %v, want mention of %s", err, tc.want)
			}
		})
	}

	t.Run("uncreatable durable dir", func(t *testing.T) {
		occupied := filepath.Join(t.TempDir(), "file")
		if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		conf := base()
		conf.DurableDir = filepath.Join(occupied, "sub")
		if err := conf.normalize(); err == nil || !strings.Contains(err.Error(), "DurableDir") {
			t.Fatalf("normalize = %v, want DurableDir error", err)
		}
	})

	t.Run("valid durable conf", func(t *testing.T) {
		conf := base()
		conf.DurableDir = t.TempDir()
		conf.MemoryBudget = 1 << 20
		if err := conf.normalize(); err != nil {
			t.Fatalf("normalize: %v", err)
		}
	})
}

// TestEngineStateResume: a snapshot taken mid-run seeds a fresh context
// that continues the stage/shuffle numbering and does not re-fire
// already-fired plan events.
func TestEngineStateResume(t *testing.T) {
	plan := &FaultPlan{Crashes: []ExecutorCrash{{Stage: 1, Node: 0}}}
	ctx := NewContext(Conf{Cluster: cluster.LocalN(2, 2), FaultPlan: plan})
	collectPairs(t, shuffledDoubles(ctx, 4))
	es := ctx.EngineState()
	if es.NextStage < 2 || es.NextShuffle != 1 {
		t.Fatalf("snapshot = %+v", es)
	}
	if len(es.CrashFired) != 1 || !es.CrashFired[0] {
		t.Fatalf("crash not marked fired: %+v", es)
	}
	if es.Strikes[0] != 1 {
		t.Fatalf("strikes = %v, want node 0 at 1", es.Strikes)
	}

	resumed := NewContext(Conf{Cluster: cluster.LocalN(2, 2), FaultPlan: plan, Restore: &es})
	got := collectPairs(t, shuffledDoubles(resumed, 4))
	if len(got) != 20 {
		t.Fatalf("resumed collect = %v", got)
	}
	if rs := resumed.RecoveryStats(); rs.ExecutorCrashes != 0 {
		t.Fatalf("restored context re-fired the crash: %+v", rs)
	}
	// Stage numbering continued: the resumed run's first stage is the
	// snapshot's cursor.
	if first := resumed.Events()[0].StageID; first != es.NextStage {
		t.Fatalf("resumed first stage = %d, want %d", first, es.NextStage)
	}
}

// TestWithRandomCorruptionsDeterministic: the seeded corruption schedule
// is reproducible and validates.
func TestWithRandomCorruptionsDeterministic(t *testing.T) {
	base := RandomFaultPlan(42, 12, 4, 1, 1, 1)
	a := base.WithRandomCorruptions(99, 12, 3)
	b := base.WithRandomCorruptions(99, 12, 3)
	if !reflect.DeepEqual(a.Corruptions, b.Corruptions) {
		t.Fatalf("same seed, different corruption schedule: %+v vs %+v", a.Corruptions, b.Corruptions)
	}
	if len(a.Corruptions) != 3 || len(base.Corruptions) != 0 {
		t.Fatalf("append went wrong: %+v / %+v", a.Corruptions, base.Corruptions)
	}
	if err := a.validate(4, 1); err != nil {
		t.Fatalf("validate: %v", err)
	}
	c := base.WithRandomCorruptions(100, 12, 3)
	if reflect.DeepEqual(a.Corruptions, c.Corruptions) {
		t.Fatal("different seeds must differ")
	}
}
