package rdd

import (
	"reflect"
	"strings"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/simtime"
)

// Reduce-side fault-injection tests: executor crashes and staging-disk
// losses invalidate shuffle map outputs, a later fetch surfaces a
// FetchFailed, and the scheduler resubmits the parent map stage for
// exactly the lost partitions — Spark's recovery path, on the simulated
// engine.

// shuffledDoubles builds a one-shuffle job: `parts` map partitions stage
// buckets (the Map discards the source partitioner, so the PartitionBy is
// a real shuffle), then a result stage fetches every bucket.
func shuffledDoubles(ctx *Context, parts int) *RDD[Pair[int, int]] {
	in := Map(Parallelize(ctx, ints(20), parts), func(_ *TaskContext, x int) Pair[int, int] {
		return KV(x, 2*x)
	})
	return PartitionBy(in, NewHashPartitioner(parts))
}

// collectSorted collects the pairs into a key-indexed map.
func collectPairs(t *testing.T, r *RDD[Pair[int, int]]) map[int]int {
	t.Helper()
	got, err := CollectMap(r)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return got
}

// TestFetchFailureResubmitsMapStage: a crash firing at the reduce stage
// invalidates the crashed node's map outputs; the reduce-side fetch must
// fail, the map stage must be resubmitted for only the lost partitions,
// and the job must still produce the right answer.
func TestFetchFailureResubmitsMapStage(t *testing.T) {
	const parts = 4
	// Stage 0 is the shuffle map stage, stage 1 the collecting result
	// stage; the crash fires as stage 1 starts, after the map outputs
	// were staged (partitions 0 and 2 live on node 0).
	ctx := NewContext(Conf{
		Cluster:   cluster.LocalN(2, 2),
		FaultPlan: &FaultPlan{Crashes: []ExecutorCrash{{Stage: 1, Node: 0}}},
	})
	got := collectPairs(t, shuffledDoubles(ctx, parts))
	if len(got) != 20 || got[7] != 14 {
		t.Fatalf("collect = %v", got)
	}

	rs := ctx.RecoveryStats()
	if rs.ExecutorCrashes != 1 {
		t.Fatalf("crashes = %d, want 1", rs.ExecutorCrashes)
	}
	if rs.FetchFailures == 0 {
		t.Fatalf("reduce-side fetch must fail after the crash: %+v", rs)
	}
	if rs.StageResubmits == 0 {
		t.Fatalf("map stage must be resubmitted: %+v", rs)
	}
	// Only node 0's two map partitions are recomputed — never the full
	// stage.
	if rs.RecomputedMapPartitions == 0 || rs.RecomputedMapPartitions >= int64(parts)*rs.StageResubmits {
		t.Fatalf("resubmission must recompute only the lost partitions: %+v", rs)
	}

	// The event log shows the resubmission: same stage ID, attempt 1,
	// fewer tasks than the planned run.
	var planned, resubmitted *StageEvent
	for i := range ctx.Events() {
		ev := &ctx.Events()[i]
		if ev.Kind != StageShuffleMap {
			continue
		}
		switch ev.Attempt {
		case 0:
			planned = ev
		default:
			resubmitted = ev
		}
	}
	if planned == nil || resubmitted == nil {
		t.Fatalf("events = %+v", ctx.Events())
	}
	if resubmitted.StageID != planned.StageID {
		t.Fatalf("resubmission must reuse the stage ID: %d vs %d", resubmitted.StageID, planned.StageID)
	}
	if resubmitted.Tasks >= planned.Tasks {
		t.Fatalf("resubmission reran %d of %d tasks", resubmitted.Tasks, planned.Tasks)
	}
}

// TestConcurrentFetchDuringRecovery: reduce tasks fetching while another
// task's FetchFailed recovery is mid-recompute must never observe a
// bucket with a lost partition's contribution silently missing — the
// stale refs stay visible (and keep raising FetchFailed) until the
// recompute's merge replaces them atomically. Many reduce tasks race one
// recovery here; repetitions make the drop-to-merge window, if it ever
// reopens, a reliable failure instead of a rare flake.
func TestConcurrentFetchDuringRecovery(t *testing.T) {
	for rep := 0; rep < 25; rep++ {
		ctx := NewContext(Conf{
			Cluster:         cluster.LocalN(2, 2),
			RealParallelism: 8,
			FaultPlan:       &FaultPlan{Crashes: []ExecutorCrash{{Stage: 1, Node: 0}}},
		})
		got := collectPairs(t, shuffledDoubles(ctx, 16))
		if len(got) != 20 {
			t.Fatalf("rep %d: result lost records: %d of 20: %v", rep, len(got), got)
		}
		for k, v := range got {
			if v != 2*k {
				t.Fatalf("rep %d: got[%d] = %d, want %d", rep, k, v, 2*k)
			}
		}
	}
}

// TestDiskLossRecoveredWithoutBlacklist: a staging-disk loss invalidates
// the node's map outputs like a crash, but the executor stays schedulable
// (no blacklist placements).
func TestDiskLossRecoveredWithoutBlacklist(t *testing.T) {
	ctx := NewContext(Conf{
		Cluster:   cluster.LocalN(2, 2),
		FaultPlan: &FaultPlan{DiskLosses: []DiskLoss{{Stage: 1, Node: 1}}},
	})
	got := collectPairs(t, shuffledDoubles(ctx, 4))
	if len(got) != 20 {
		t.Fatalf("collect = %v", got)
	}
	rs := ctx.RecoveryStats()
	if rs.DiskLosses != 1 || rs.StageResubmits == 0 {
		t.Fatalf("disk loss must trigger resubmission: %+v", rs)
	}
	if rs.BlacklistPlacements != 0 {
		t.Fatalf("disk loss must not blacklist the executor: %+v", rs)
	}
}

// TestCrashedExecutorTasksRePlaced: tasks of the crashing stage die with
// the executor ("executor lost"), are retried, and the retry lands on
// another node because the crashed one is blacklisted.
func TestCrashedExecutorTasksRePlaced(t *testing.T) {
	ctx := NewContext(Conf{
		Cluster:   cluster.LocalN(2, 2),
		FaultPlan: &FaultPlan{Crashes: []ExecutorCrash{{Stage: 0, Node: 1}}},
	})
	got := collectPairs(t, shuffledDoubles(ctx, 4))
	if len(got) != 20 {
		t.Fatalf("collect = %v", got)
	}
	rs := ctx.RecoveryStats()
	if rs.TaskRetries == 0 {
		t.Fatalf("first attempts must die with the executor: %+v", rs)
	}
	if rs.BlacklistPlacements == 0 {
		t.Fatalf("retries must be placed off the blacklisted node: %+v", rs)
	}
}

// TestBlacklistBackoffDoubles: repeated crashes of the same node extend
// the blacklist exponentially.
func TestBlacklistBackoffDoubles(t *testing.T) {
	ctx := NewContext(Conf{
		Cluster:          cluster.LocalN(2, 2),
		BlacklistBackoff: 10 * simtime.Second,
		FaultPlan: &FaultPlan{Crashes: []ExecutorCrash{
			{Stage: 0, Node: 1},
			{Stage: 1, Node: 1},
		}},
	})
	start := ctx.Clock()
	ctx.fireStageFaults(0)
	first := ctx.faults.downUntil[1] - start
	mid := ctx.Clock()
	ctx.fireStageFaults(1)
	second := ctx.faults.downUntil[1] - mid
	if first != 10*simtime.Second {
		t.Fatalf("first backoff = %v", first)
	}
	if second != 20*simtime.Second {
		t.Fatalf("second backoff must double: %v", second)
	}
}

// TestStragglerDilatesAndSpeculationRecovers: an injected straggler must
// slow the job, and enabling speculation must claw most of that time back
// (the copy on a healthy executor wins).
func TestStragglerDilatesAndSpeculationRecovers(t *testing.T) {
	run := func(plan *FaultPlan, speculate bool) (simtime.Duration, RecoveryStats) {
		ctx := NewContext(Conf{
			Cluster:     cluster.LocalN(2, 2),
			FaultPlan:   plan,
			Speculation: speculate,
		})
		r := Map(Parallelize(ctx, ints(8), 4), func(tc *TaskContext, x int) int {
			tc.ChargeCompute(10*simtime.Second, 1)
			return x
		})
		if _, err := r.Collect(); err != nil {
			t.Fatal(err)
		}
		return ctx.Clock(), ctx.RecoveryStats()
	}

	plan := &FaultPlan{Stragglers: []Straggler{{Stage: 0, Partition: 1, Factor: 8}}}
	clean, _ := run(nil, false)
	slow, srs := run(plan, false)
	spec, prs := run(plan, true)

	if srs.Stragglers != 1 {
		t.Fatalf("straggler injections = %+v", srs)
	}
	if slow < clean+60*simtime.Second {
		t.Fatalf("factor-8 straggler on a 10s task must add ~70s: clean %v, slow %v", clean, slow)
	}
	if prs.SpeculativeTasks == 0 || prs.SpeculationWins == 0 {
		t.Fatalf("speculation must launch and win a copy: %+v", prs)
	}
	if spec >= slow {
		t.Fatalf("speculation must beat the straggler: %v vs %v", spec, slow)
	}
	if spec < clean {
		t.Fatalf("the losing copy's work is not free: %v vs clean %v", spec, clean)
	}
}

// TestRecoveryMetricsExported: the recovery counters are mirrored into
// the metrics registry (task_retries_total, fault_injections_total and
// the resubmission families).
func TestRecoveryMetricsExported(t *testing.T) {
	ctx := NewContext(Conf{
		Cluster: cluster.LocalN(2, 2),
		FaultPlan: &FaultPlan{
			Crashes:    []ExecutorCrash{{Stage: 1, Node: 0}},
			Stragglers: []Straggler{{Stage: 0, Partition: 1, Factor: 2}},
		},
		FaultInjector: func(stageID, partition, attempt int) bool {
			return stageID == 0 && partition == 3 && attempt == 0
		},
	})
	collectPairs(t, shuffledDoubles(ctx, 4))

	reg := ctx.Observer().Metrics()
	rs := ctx.RecoveryStats()
	for name, want := range map[string]int64{
		"dpspark_task_retries_total":              rs.TaskRetries,
		"dpspark_fetch_failures_total":            rs.FetchFailures,
		"dpspark_stage_resubmits_total":           rs.StageResubmits,
		"dpspark_recomputed_map_partitions_total": rs.RecomputedMapPartitions,
		"dpspark_fault_injections_total":          rs.ExecutorCrashes + rs.DiskLosses + rs.Stragglers + rs.FaultKills,
	} {
		if got := reg.CounterTotal(name); got != want || want == 0 {
			t.Fatalf("%s = %d, want %d (nonzero)", name, got, want)
		}
	}
}

// TestRandomFaultPlanDeterministic: the same seed yields the same plan;
// the plan passes its own validation for the cluster it was drawn for.
func TestRandomFaultPlanDeterministic(t *testing.T) {
	a := RandomFaultPlan(42, 12, 4, 2, 2, 1)
	b := RandomFaultPlan(42, 12, 4, 2, 2, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	c := RandomFaultPlan(43, 12, 4, 2, 2, 1)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
	if err := a.validate(4, 1); err != nil {
		t.Fatalf("drawn plan invalid: %v", err)
	}
	if len(a.Crashes) != 2 || len(a.Stragglers) != 2 || len(a.DiskLosses) != 1 {
		t.Fatalf("plan = %+v", a)
	}

	// The detector-era event kinds generate behind chained opts, equally
	// deterministic, without disturbing the base plan's draws.
	d := a.WithRandomGCPauses(5, 12, 4, 2).WithRandomPartitions(6, 12, 4, 1).WithRandomRackFailures(7, 12, 2, 1)
	e := a.WithRandomGCPauses(5, 12, 4, 2).WithRandomPartitions(6, 12, 4, 1).WithRandomRackFailures(7, 12, 2, 1)
	if !reflect.DeepEqual(d, e) {
		t.Fatalf("same seeds, different chained plans:\n%+v\n%+v", d, e)
	}
	if len(d.GCPauses) != 2 || len(d.Partitions) != 1 || len(d.RackFailures) != 1 {
		t.Fatalf("chained plan = %+v", d)
	}
	if len(a.GCPauses)+len(a.Partitions)+len(a.RackFailures) != 0 {
		t.Fatalf("chaining must copy, not mutate: %+v", a)
	}
	if err := d.validate(4, 2); err != nil {
		t.Fatalf("chained plan invalid for a 2-rack cluster: %v", err)
	}
	if err := d.validate(4, 1); err == nil {
		t.Fatal("rack failures must be rejected without rack topology")
	}
}

// TestConfNormalization: Conf validation is centralized — bad settings
// panic out of NewContext with an error naming the field.
func TestConfNormalization(t *testing.T) {
	cases := []struct {
		name string
		conf Conf
		want string
	}{
		{"negative attempts", Conf{Cluster: cluster.Local(2), MaxTaskAttempts: -1}, "MaxTaskAttempts"},
		{"negative keep", Conf{Cluster: cluster.Local(2), KeepShuffles: -2}, "KeepShuffles"},
		{"negative backoff", Conf{Cluster: cluster.Local(2), BlacklistBackoff: -simtime.Second}, "BlacklistBackoff"},
		{"multiplier below 1", Conf{Cluster: cluster.Local(2), SpeculationMultiplier: 0.5}, "SpeculationMultiplier"},
		{"quantile at 1", Conf{Cluster: cluster.Local(2), SpeculationQuantile: 1}, "SpeculationQuantile"},
		{"plan outside cluster", Conf{Cluster: cluster.Local(2),
			FaultPlan: &FaultPlan{Crashes: []ExecutorCrash{{Stage: 1, Node: 7}}}}, "node 7"},
		{"straggler factor", Conf{Cluster: cluster.Local(2),
			FaultPlan: &FaultPlan{Stragglers: []Straggler{{Stage: 1, Partition: 0, Factor: 0.5}}}}, "factor"},
		{"no cluster", Conf{}, "Cluster"},
		{"negative heartbeat", Conf{Cluster: cluster.Local(2), HeartbeatInterval: -simtime.Second}, "HeartbeatInterval"},
		{"misses without interval", Conf{Cluster: cluster.Local(2), HeartbeatMisses: 3}, "HeartbeatMisses"},
		{"negative tokens", Conf{Cluster: cluster.Local(2), RecoveryTokens: -1}, "RecoveryTokens"},
		{"refill without tokens", Conf{Cluster: cluster.Local(2), RecoveryRefill: simtime.Second}, "RecoveryRefill"},
		{"gc pause without detector", Conf{Cluster: cluster.Local(2),
			FaultPlan: &FaultPlan{GCPauses: []GCPause{{Node: 0, From: 1, Dur: simtime.Second}}}}, "failure detector"},
		{"rack failure without racks", Conf{Cluster: cluster.Local(2),
			HeartbeatInterval: simtime.Second,
			FaultPlan:         &FaultPlan{RackFailures: []RackFailure{{Rack: 0, Stage: 1}}}}, "rack topology"},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("%s: NewContext must panic", tc.name)
				}
				err, ok := p.(error)
				if !ok || !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("%s: panic = %v, want mention of %q", tc.name, p, tc.want)
				}
			}()
			NewContext(tc.conf)
		}()
	}
	// And the defaults land where Spark's do.
	conf := Conf{Cluster: cluster.Local(2)}
	if err := conf.normalize(); err != nil {
		t.Fatal(err)
	}
	if conf.MaxTaskAttempts != 4 || conf.KeepShuffles != 8 ||
		conf.BlacklistBackoff != 30*simtime.Second ||
		conf.SpeculationMultiplier != 1.5 || conf.SpeculationQuantile != 0.75 {
		t.Fatalf("defaults = %+v", conf)
	}
	// Detector defaults: off entirely at interval 0; 2 missed leases and
	// a 1s refill once their gate knob is set.
	if conf.HeartbeatMisses != 0 || conf.RecoveryRefill != 0 {
		t.Fatalf("detector knobs must stay zero while off: %+v", conf)
	}
	det := Conf{Cluster: cluster.Local(2), HeartbeatInterval: simtime.Second, RecoveryTokens: 2}
	if err := det.normalize(); err != nil {
		t.Fatal(err)
	}
	if det.HeartbeatMisses != 2 || det.RecoveryRefill != simtime.Second {
		t.Fatalf("detector defaults = %+v", det)
	}
}

// TestFaultPlanRunsAreDeterministic: two contexts driven by the same plan
// produce identical clocks, recovery counters and event logs.
func TestFaultPlanRunsAreDeterministic(t *testing.T) {
	plan := RandomFaultPlan(7, 2, 2, 1, 1, 1)
	run := func() (simtime.Duration, RecoveryStats, []StageEvent) {
		ctx := NewContext(Conf{Cluster: cluster.LocalN(2, 2), FaultPlan: plan, Speculation: true})
		collectPairs(t, shuffledDoubles(ctx, 4))
		return ctx.Clock(), ctx.RecoveryStats(), ctx.Events()
	}
	c1, r1, e1 := run()
	c2, r2, e2 := run()
	if c1 != c2 {
		t.Fatalf("clocks differ: %v vs %v", c1, c2)
	}
	if r1 != r2 {
		t.Fatalf("recovery stats differ:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("event logs differ:\n%+v\n%+v", e1, e2)
	}
}
