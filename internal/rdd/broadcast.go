package rdd

import (
	"fmt"
	"sync"

	"dpspark/internal/obs"
	"dpspark/internal/simtime"
)

// Broadcast distributes driver-held items to the executors through the
// shared persistent filesystem — the mechanism of the Collect-Broadcast
// driver (Listing 2): the driver collects blocks and writes them "tofile";
// each executor then reads the file once per stage it needs it in.
//
// Creating a Broadcast charges the driver-side shared-storage write.
// Get charges the shared-storage read the first time each (executor,
// stage) touches the handle, matching per-executor broadcast fetches.
type Broadcast[T any] struct {
	ctx   *Context
	items []T
	bytes int64
	// key names the broadcast's durable block when staged is true: the
	// payload's encoded, checksummed copy in the context's block store.
	// The driver-held items stay the source of truth — the durable copy
	// is verified on each first-per-(node,stage) fetch and re-written
	// from items when damaged (the driver self-heals its own file, like
	// Spark's driver re-serving a lost broadcast block).
	key    string
	staged bool

	mu      sync.Mutex
	fetched map[[2]int]bool // (node, stage) → already read
}

// NewBroadcast stages items on the shared filesystem.
func NewBroadcast[T any](ctx *Context, items []T) *Broadcast[T] {
	var bytes int64
	for _, it := range items {
		bytes += ctx.sizer(it)
	}
	start := ctx.Clock()
	ctx.AdvanceDriver(ctx.model.SharedWriteTime(bytes), simtime.SharedFS)
	ctx.Ledger().AddBytes(simtime.SharedFS, bytes)
	ctx.addBroadcastBytes(bytes)
	ctx.Observer().Metrics().
		Counter("dpspark_broadcast_bytes_total", obs.Labels{"phase": ctx.CurrentPhase()}).
		Add(bytes)
	ctx.EmitDriverSpan("broadcast write", "broadcast", start,
		map[string]string{"bytes": fmt.Sprintf("%d", bytes)})
	b := &Broadcast[T]{
		ctx:     ctx,
		items:   items,
		bytes:   bytes,
		fetched: make(map[[2]int]bool),
	}
	if ctx.store != nil && ctx.conf.SpillCodec != nil {
		if blob, ok := encodeRecords(ctx, items); ok {
			ctx.mu.Lock()
			id := ctx.nextBroadcast
			ctx.nextBroadcast++
			ctx.mu.Unlock()
			b.key = fmt.Sprintf("bc/%d", id)
			if err := ctx.store.Put(b.key, blob); err == nil {
				b.staged = true
			}
		}
	}
	return b
}

// Get returns the broadcast items inside a task, charging the executor's
// shared-filesystem fetch on first access per (node, stage). When the
// payload is durably staged, the first fetch also verifies the block's
// checksum and re-writes it from the driver-held items on damage.
func (b *Broadcast[T]) Get(tc *TaskContext) []T {
	key := [2]int{tc.Node, tc.StageID}
	b.mu.Lock()
	first := !b.fetched[key]
	if first {
		b.fetched[key] = true
	}
	b.mu.Unlock()
	if first {
		tc.ChargeSharedRead(b.bytes)
		if b.staged {
			if _, err := b.ctx.store.Get(b.key); err != nil {
				if blob, ok := encodeRecords(b.ctx, b.items); ok {
					b.ctx.store.Put(b.key, blob)
				}
			}
		}
	}
	return b.items
}

// Bytes returns the staged payload size.
func (b *Broadcast[T]) Bytes() int64 { return b.bytes }
