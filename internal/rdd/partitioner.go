// Package rdd is a from-scratch, Spark-like distributed dataflow engine:
// lazily evaluated, lineage-tracked distributed datasets with narrow and
// wide (shuffle) transformations, a DAG scheduler that splits jobs into
// stages at wide dependencies and launches one task per partition, hash
// and grid partitioners, driver-side collect, and broadcast through a
// shared filesystem.
//
// The engine executes every job twice over, in one pass: it *really*
// computes the records (so laptop-scale runs produce validated results)
// and it *prices* the run against a cluster cost model (internal/sim),
// advancing a virtual clock. Paper-scale experiments use symbolic tiles
// as record payloads, which makes the real computation free while the
// stage/task structure, byte accounting and virtual timing stay identical.
package rdd

import (
	"fmt"
	"hash/fnv"

	"dpspark/internal/matrix"
)

// Partitioner assigns pair-RDD keys to partitions, like
// org.apache.spark.Partitioner. Two RDDs co-partitioned by equal
// partitioners can be combined without a shuffle (paper §II, footnote 1).
type Partitioner interface {
	// NumPartitions returns the partition count.
	NumPartitions() int
	// Partition maps a key to [0, NumPartitions).
	Partition(key any) int
	// Equal reports whether other partitions keys identically.
	Equal(other Partitioner) bool
}

// HashPartitioner is Spark's default partitioner: hash(key) mod p.
type HashPartitioner struct {
	// P is the number of partitions.
	P int
}

// NewHashPartitioner returns the default partitioner with p partitions.
func NewHashPartitioner(p int) HashPartitioner {
	if p < 1 {
		panic(fmt.Sprintf("rdd: partitioner needs ≥1 partitions, got %d", p))
	}
	return HashPartitioner{P: p}
}

// NumPartitions implements Partitioner.
func (h HashPartitioner) NumPartitions() int { return h.P }

// Partition implements Partitioner.
func (h HashPartitioner) Partition(key any) int {
	return int(hashKey(key) % uint64(h.P))
}

// Equal implements Partitioner.
func (h HashPartitioner) Equal(other Partitioner) bool {
	o, ok := other.(HashPartitioner)
	return ok && o.P == h.P
}

// GridPartitioner is the custom partitioner the paper names as future
// work (§VI): it exploits the tile-grid key structure, placing tile (i,j)
// of an R×R grid deterministically so that block rows stay together and
// consecutive partitions land on distinct executors. Compared to hashing
// it removes the "probabilistic nature of the default partitioner" the
// paper blames for load imbalance.
type GridPartitioner struct {
	// P is the number of partitions.
	P int
	// R is the tile-grid dimension.
	R int
}

// NewGridPartitioner returns a grid-aware partitioner.
func NewGridPartitioner(p, r int) GridPartitioner {
	if p < 1 || r < 1 {
		panic(fmt.Sprintf("rdd: bad grid partitioner (p=%d, r=%d)", p, r))
	}
	return GridPartitioner{P: p, R: r}
}

// NumPartitions implements Partitioner.
func (g GridPartitioner) NumPartitions() int { return g.P }

// Partition implements Partitioner. Non-Coord keys fall back to hashing.
func (g GridPartitioner) Partition(key any) int {
	c, ok := key.(matrix.Coord)
	if !ok {
		return int(hashKey(key) % uint64(g.P))
	}
	// Linearize row-major, then spread contiguous runs of tiles across
	// partitions evenly (round-robin over equal-size chunks).
	idx := c.I*g.R + c.J
	return idx % g.P
}

// Equal implements Partitioner.
func (g GridPartitioner) Equal(other Partitioner) bool {
	o, ok := other.(GridPartitioner)
	return ok && o == g
}

// hashKey hashes the supported key types. Tile coordinates get a cheap
// direct path; other comparable keys hash their printed form.
func hashKey(key any) uint64 {
	switch k := key.(type) {
	case matrix.Coord:
		// SplitMix-style scramble of the packed coordinate.
		x := uint64(uint32(k.I))<<32 | uint64(uint32(k.J))
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		x *= 0xc4ceb9fe1a85ec53
		x ^= x >> 33
		return x
	case int:
		x := uint64(k) * 0x9e3779b97f4a7c15
		return x ^ (x >> 29)
	case string:
		h := fnv.New64a()
		h.Write([]byte(k))
		return h.Sum64()
	default:
		h := fnv.New64a()
		fmt.Fprintf(h, "%v", key)
		return h.Sum64()
	}
}
