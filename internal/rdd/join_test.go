package rdd

import (
	"sort"
	"testing"
)

func TestCoGroup(t *testing.T) {
	ctx := testCtx()
	part := NewHashPartitioner(3)
	left := Parallelize(ctx, []Pair[string, int]{KV("a", 1), KV("a", 2), KV("b", 3)}, 2)
	right := Parallelize(ctx, []Pair[string, string]{KV("a", "x"), KV("c", "y")}, 2)
	g, err := CollectMap(CoGroup(left, right, part))
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(g["a"].Left)
	if len(g) != 3 {
		t.Fatalf("keys = %d", len(g))
	}
	if len(g["a"].Left) != 2 || g["a"].Left[0] != 1 || len(g["a"].Right) != 1 || g["a"].Right[0] != "x" {
		t.Fatalf(`g["a"] = %+v`, g["a"])
	}
	if len(g["b"].Left) != 1 || len(g["b"].Right) != 0 {
		t.Fatalf(`g["b"] = %+v`, g["b"])
	}
	if len(g["c"].Left) != 0 || len(g["c"].Right) != 1 {
		t.Fatalf(`g["c"] = %+v`, g["c"])
	}
}

func TestJoin(t *testing.T) {
	ctx := testCtx()
	part := NewHashPartitioner(2)
	left := Parallelize(ctx, []Pair[int, string]{KV(1, "a"), KV(1, "b"), KV(2, "c")}, 2)
	right := Parallelize(ctx, []Pair[int, int]{KV(1, 10), KV(1, 20), KV(3, 30)}, 1)
	joined, err := Join(left, right, part).Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Key 1: 2 left × 2 right = 4 matches; keys 2, 3 unmatched.
	if len(joined) != 4 {
		t.Fatalf("join produced %d rows: %v", len(joined), joined)
	}
	for _, row := range joined {
		if row.Key != 1 {
			t.Fatalf("unexpected key %d", row.Key)
		}
		if row.Value.Left != "a" && row.Value.Left != "b" {
			t.Fatalf("bad left %q", row.Value.Left)
		}
		if row.Value.Right != 10 && row.Value.Right != 20 {
			t.Fatalf("bad right %d", row.Value.Right)
		}
	}
}

func TestJoinEmptySides(t *testing.T) {
	ctx := testCtx()
	part := NewHashPartitioner(2)
	left := Parallelize(ctx, []Pair[int, int]{KV(1, 1)}, 1)
	right := Parallelize(ctx, []Pair[int, int]{KV(2, 2)}, 1)
	joined, err := Join(left, right, part).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 0 {
		t.Fatalf("disjoint keys must join empty, got %v", joined)
	}
}
