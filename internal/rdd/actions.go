package rdd

import (
	"fmt"

	"dpspark/internal/obs"
	"dpspark/internal/simtime"
)

// Collect runs a job computing every partition and gathers the records at
// the driver, charging the transfer across the driver's network link.
// It returns the engine's failure state (staging disk full, executor
// memory exceeded) alongside the data.
func (r *RDD[T]) Collect() ([]T, error) {
	ctx := r.ds.ctx
	parts := ctx.runJob(r.ds)
	var out []T
	var bytes int64
	for _, recs := range parts {
		for _, rec := range recs {
			out = append(out, rec.(T))
			bytes += ctx.sizer(rec)
		}
	}
	start := ctx.Clock()
	ctx.AdvanceDriver(ctx.model.NetTime(bytes), simtime.Network)
	ctx.AdvanceDriver(ctx.model.SerializeTime(bytes), simtime.Overhead)
	ctx.Observer().Metrics().
		Counter("dpspark_collect_bytes_total", obs.Labels{"phase": ctx.CurrentPhase()}).
		Add(bytes)
	ctx.EmitDriverSpan("collect", "collect", start,
		map[string]string{"bytes": fmt.Sprintf("%d", bytes)})
	return out, ctx.Err()
}

// Count runs a job and returns the total number of records. Only the
// counts travel to the driver.
func (r *RDD[T]) Count() (int, error) {
	ctx := r.ds.ctx
	parts := ctx.runJob(r.ds)
	n := 0
	for _, recs := range parts {
		n += len(recs)
	}
	ctx.AdvanceDriver(ctx.model.NetTime(int64(8*r.ds.parts)), simtime.Network)
	return n, ctx.Err()
}

// CollectMap collects a pair RDD into a driver-side map. Duplicate keys
// keep the last record (like collectAsMap).
func CollectMap[K comparable, V any](r *RDD[Pair[K, V]]) (map[K]V, error) {
	recs, err := r.Collect()
	out := make(map[K]V, len(recs))
	for _, p := range recs {
		out[p.Key] = p.Value
	}
	return out, err
}
