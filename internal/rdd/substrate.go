package rdd

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"

	"dpspark/internal/cluster"
	"dpspark/internal/costmodel"
	"dpspark/internal/kernels"
)

// This file is the shared scheduler/executor substrate behind
// multi-tenant serving (`dpspark serve`): several concurrent engine
// contexts — one per job — mount one Substrate, which owns everything
// that models the physical cluster the jobs share, while each Context
// keeps everything that is logically per-job: lineage, shuffle state,
// fault plans and fired-event bookkeeping, the virtual clock, and the
// breakdown/recovery accounting.
//
// Concretely the Substrate owns:
//
//   - the cluster spec and cost-model calibration (all jobs price
//     against the same hardware),
//   - the per-node kernel worker pools (Conf.KernelThreads wide), so
//     real intra-kernel concurrency is bounded per node across ALL
//     jobs, not per job, and
//   - the real task-slot scheduler: a bounded pool of task-execution
//     slots (Conf.RealParallelism of a solo run) that stages from
//     different jobs acquire per task, highest job priority first,
//     FIFO within a priority.
//
// Isolation invariant: because the virtual clock, lineage and fault
// state stay per-job, a job's modelled time, recovery trajectory and
// result bits are identical whether it runs solo or next to any number
// of sibling jobs — sharing the substrate only interleaves the REAL
// execution. The serve-layer tests pin this bit-for-bit.

// SubstrateConf configures a shared substrate.
type SubstrateConf struct {
	// Cluster describes the (simulated) hardware every mounted job
	// shares. Required.
	Cluster *cluster.Cluster
	// Params overrides the cost-model calibration; nil uses defaults.
	Params *costmodel.Params
	// KernelThreads is the width of the shared per-node kernel pools
	// (see Conf.KernelThreads). Default 1: serial kernels, no pools.
	KernelThreads int
	// RealParallelism bounds the task-execution goroutines across every
	// job mounted on the substrate. Default: runtime.NumCPU().
	RealParallelism int
}

// Substrate is the shared scheduler/executor layer of a multi-job
// process. Create one with NewSubstrate, then mount any number of
// concurrent Contexts on it via Conf.Substrate.
type Substrate struct {
	cluster       *cluster.Cluster
	params        *costmodel.Params
	kernelThreads int
	realPar       int

	// kernelPools is one shared kernel worker pool per node: tasks of
	// EVERY mounted job running on a node draw on the same pool, so
	// total kernel workers per node never exceed KernelThreads even
	// with many tenants.
	kernelPools []*kernels.Pool

	sched *slotScheduler
}

// NewSubstrate validates the conf and builds the shared substrate.
func NewSubstrate(conf SubstrateConf) (*Substrate, error) {
	if conf.Cluster == nil {
		return nil, fmt.Errorf("rdd: SubstrateConf.Cluster is required")
	}
	if conf.KernelThreads < 0 {
		return nil, fmt.Errorf("rdd: SubstrateConf.KernelThreads must be ≥ 0 (0 means serial kernels), got %d", conf.KernelThreads)
	}
	if conf.KernelThreads == 0 {
		conf.KernelThreads = 1
	}
	if conf.RealParallelism < 0 {
		return nil, fmt.Errorf("rdd: SubstrateConf.RealParallelism must be ≥ 0 (0 means NumCPU), got %d", conf.RealParallelism)
	}
	if conf.RealParallelism == 0 {
		conf.RealParallelism = runtime.NumCPU()
	}
	s := &Substrate{
		cluster:       conf.Cluster,
		params:        conf.Params,
		kernelThreads: conf.KernelThreads,
		realPar:       conf.RealParallelism,
		sched:         newSlotScheduler(conf.RealParallelism),
	}
	if conf.KernelThreads > 1 {
		s.kernelPools = make([]*kernels.Pool, conf.Cluster.Nodes)
		for n := range s.kernelPools {
			s.kernelPools[n] = kernels.NewPool(conf.KernelThreads)
		}
	}
	return s, nil
}

// Cluster returns the shared cluster spec.
func (s *Substrate) Cluster() *cluster.Cluster { return s.cluster }

// KernelThreads returns the shared per-node kernel pool width.
func (s *Substrate) KernelThreads() int { return s.kernelThreads }

// RealParallelism returns the substrate-wide task-slot budget.
func (s *Substrate) RealParallelism() int { return s.realPar }

// Waiting reports how many tasks are currently queued for a slot —
// the serve layer's backpressure signal.
func (s *Substrate) Waiting() int { return s.sched.waiting() }

// slotScheduler is a bounded pool of real task-execution slots with
// priority admission: acquire blocks until a slot frees (or the caller
// cancels), and freed slots go to the highest-priority waiter, FIFO
// within a priority. This is the point where stages from different
// jobs interleave on the shared executors.
type slotScheduler struct {
	mu      sync.Mutex
	free    int
	seq     uint64
	waiters waiterQueue
}

// slotWaiter is one blocked acquire. The channel has capacity 1 so a
// release can hand the slot over without blocking; a waiter that loses
// the race against its own cancellation returns the slot (see acquire).
type slotWaiter struct {
	priority int
	seq      uint64
	ch       chan struct{}
	index    int
}

// waiterQueue is a max-heap by (priority, then FIFO seq).
type waiterQueue []*slotWaiter

func (q waiterQueue) Len() int { return len(q) }
func (q waiterQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q waiterQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *waiterQueue) Push(x any) {
	w := x.(*slotWaiter)
	w.index = len(*q)
	*q = append(*q, w)
}
func (q *waiterQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return w
}

// newSlotScheduler returns a scheduler with `slots` concurrent slots
// (min 1).
func newSlotScheduler(slots int) *slotScheduler {
	if slots < 1 {
		slots = 1
	}
	return &slotScheduler{free: slots}
}

// acquire takes one slot, blocking until one frees. cancel (may be
// nil) aborts the wait; acquire then reports false and the caller must
// NOT release. Freed slots go to the highest-priority waiter first.
func (s *slotScheduler) acquire(priority int, cancel <-chan struct{}) bool {
	s.mu.Lock()
	if s.free > 0 {
		s.free--
		s.mu.Unlock()
		return true
	}
	w := &slotWaiter{priority: priority, seq: s.seq, ch: make(chan struct{}, 1)}
	s.seq++
	heap.Push(&s.waiters, w)
	s.mu.Unlock()

	if cancel == nil {
		<-w.ch
		return true
	}
	select {
	case <-w.ch:
		return true
	case <-cancel:
		s.mu.Lock()
		if w.index >= 0 {
			// Still queued: withdraw before anyone hands us a slot.
			heap.Remove(&s.waiters, w.index)
			s.mu.Unlock()
			return false
		}
		s.mu.Unlock()
		// A release already dequeued us; the slot may race our
		// cancellation through the buffered channel. Reclaim it if it
		// arrived (or will arrive — the send never blocks), and give
		// it back.
		<-w.ch
		s.release()
		return false
	}
}

// release returns a slot, handing it to the best waiter if any.
func (s *slotScheduler) release() {
	s.mu.Lock()
	if s.waiters.Len() > 0 {
		w := heap.Pop(&s.waiters).(*slotWaiter)
		w.index = -1
		s.mu.Unlock()
		w.ch <- struct{}{}
		return
	}
	s.free++
	s.mu.Unlock()
}

// waiting reports the queued-acquire count.
func (s *slotScheduler) waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters.Len()
}
