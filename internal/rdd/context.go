package rdd

import (
	"fmt"
	"runtime"
	"sync"

	"dpspark/internal/cluster"
	"dpspark/internal/costmodel"
	"dpspark/internal/obs"
	"dpspark/internal/sim"
	"dpspark/internal/simtime"
)

// Conf configures an engine context — the spark-submit settings of the
// paper's experiments.
type Conf struct {
	// Cluster describes the (simulated) hardware. Required.
	Cluster *cluster.Cluster
	// Params overrides the cost-model calibration; nil uses defaults.
	Params *costmodel.Params
	// ExecutorCores is the number of concurrent task slots per executor
	// (spark.executor.cores). Default: all physical cores per node.
	ExecutorCores int
	// RealParallelism bounds the goroutines that actually execute tasks
	// in this process. Default: runtime.NumCPU().
	RealParallelism int
	// Sizer prices records for traffic accounting. Default: DefaultSizer.
	Sizer Sizer
	// KeepShuffles is how many most-recent shuffles stay staged before
	// the engine emulates Spark's shuffle cleanup (old generations are
	// deleted from the local disks). Default: 8.
	KeepShuffles int
	// FaultInjector, when set, is consulted before each task attempt;
	// returning true makes that attempt fail (for resilience testing).
	// Failed tasks are retried like Spark's, up to MaxTaskAttempts.
	FaultInjector func(stageID, partition, attempt int) bool
	// MaxTaskAttempts bounds task retries (default 4, Spark's
	// spark.task.maxFailures).
	MaxTaskAttempts int
	// Observer receives the context's spans and metrics. Nil creates a
	// private observer; pass a shared one to aggregate several contexts
	// (e.g. a sweep) into one trace/metrics export.
	Observer *obs.Observer
}

// Context is the engine's driver: it owns the lineage graph, the shuffle
// store, the virtual clock and the failure state. It corresponds to a
// SparkContext.
type Context struct {
	conf  Conf
	model *costmodel.Model
	simul *sim.Sim
	sizer Sizer
	obsv  *obs.Observer
	pid   int

	laneNames sync.Once

	mu          sync.Mutex
	nextDataset int
	nextShuffle int
	nextStage   int
	shuffles    map[int]*shuffleState
	shuffleLog  []int
	memUsed     []int64
	memErr      error
	taskErr     error
	events      []StageEvent
	phase       string
	bd          Breakdown

	// stageMetrics caches resolved stage-metric handles per (stage kind,
	// phase): the registry lookup encodes and hashes a label map per
	// call, which is pure overhead for the handful of label combinations
	// a run produces, looked up once per executed stage.
	stageMetrics sync.Map // stageMetricsKey → *stageMetricHandles
}

// stageMetricsKey identifies one stage-metric label combination.
type stageMetricsKey struct {
	kind  StageKind
	phase string
}

// stageMetricHandles holds the resolved metric family handles for one
// (kind, phase) combination.
type stageMetricHandles struct {
	stages, tasks, write, fetch *obs.Counter
	taskSeconds                 *obs.Histogram
	skewHist                    *obs.Histogram
	skewGauge                   *obs.Gauge
}

// Breakdown is the context's accumulated critical-path time decomposition
// plus traffic counters. Unlike the Ledger's overlapping resource-seconds,
// the four time components sum exactly to the virtual clock: every stage
// contributes its makespan node's split (sim.StageReport) and every
// driver-side advance is attributed by category.
type Breakdown struct {
	// Compute is kernel/task compute time on the critical path.
	Compute simtime.Duration
	// Shuffle is shuffle I/O (local-disk staging + network fetches).
	Shuffle simtime.Duration
	// Broadcast is collect/broadcast movement: shared-filesystem traffic
	// plus driver-side collect transfers.
	Broadcast simtime.Duration
	// Overhead is scheduling overhead (job, stage, task launch is inside
	// Compute; driver bookkeeping lands here).
	Overhead simtime.Duration
	// ShuffleWriteBytes and ShuffleFetchBytes count shuffle traffic.
	ShuffleWriteBytes, ShuffleFetchBytes int64
	// BroadcastBytes counts shared-filesystem traffic (staged + fetched).
	BroadcastBytes int64
}

// Total sums the four time components (equals the clock advance they
// were accumulated over).
func (b Breakdown) Total() simtime.Duration {
	return b.Compute + b.Shuffle + b.Broadcast + b.Overhead
}

// Sub returns the component-wise difference b − other (for deltas
// between two snapshots).
func (b Breakdown) Sub(other Breakdown) Breakdown {
	return Breakdown{
		Compute:           b.Compute - other.Compute,
		Shuffle:           b.Shuffle - other.Shuffle,
		Broadcast:         b.Broadcast - other.Broadcast,
		Overhead:          b.Overhead - other.Overhead,
		ShuffleWriteBytes: b.ShuffleWriteBytes - other.ShuffleWriteBytes,
		ShuffleFetchBytes: b.ShuffleFetchBytes - other.ShuffleFetchBytes,
		BroadcastBytes:    b.BroadcastBytes - other.BroadcastBytes,
	}
}

// shuffleState is a materialized shuffle, indexed by reduce partition.
type shuffleState struct {
	dep         *shuffleDep
	byReduce    [][]bucketRef
	spillByNode []int64
	done        bool
	retired     bool
}

// NewContext creates an engine context.
func NewContext(conf Conf) *Context {
	if conf.Cluster == nil {
		panic("rdd: Conf.Cluster is required")
	}
	if conf.ExecutorCores <= 0 {
		conf.ExecutorCores = conf.Cluster.Node.Cores
	}
	if conf.RealParallelism <= 0 {
		conf.RealParallelism = runtime.NumCPU()
	}
	if conf.Sizer == nil {
		conf.Sizer = DefaultSizer
	}
	if conf.KeepShuffles <= 0 {
		conf.KeepShuffles = 8
	}
	if conf.MaxTaskAttempts <= 0 {
		conf.MaxTaskAttempts = 4
	}
	m := costmodel.New(conf.Cluster)
	if conf.Params != nil {
		m.P = *conf.Params
	}
	if conf.Observer == nil {
		conf.Observer = obs.New()
	}
	c := &Context{
		conf:     conf,
		model:    m,
		simul:    sim.New(m, conf.ExecutorCores),
		sizer:    conf.Sizer,
		obsv:     conf.Observer,
		shuffles: make(map[int]*shuffleState),
		memUsed:  make([]int64, conf.Cluster.Nodes),
	}
	c.pid = c.obsv.RegisterProcess(fmt.Sprintf("dpspark %s×%d", conf.Cluster, conf.ExecutorCores))
	c.obsv.NameThread(c.pid, 0, "driver")
	return c
}

// Observer returns the context's observability sink (tracer + metrics).
func (c *Context) Observer() *obs.Observer { return c.obsv }

// TracePid is the context's trace process id (one lane group per context
// in the Chrome trace).
func (c *Context) TracePid() int { return c.pid }

// SetPhase labels subsequent work for observability: shuffle dependencies
// capture the phase current at their creation (so lazily materialized
// stages are attributed to the driver phase that built them), result
// stages the phase current at execution.
func (c *Context) SetPhase(name string) {
	c.mu.Lock()
	c.phase = name
	c.mu.Unlock()
}

// CurrentPhase returns the active phase label.
func (c *Context) CurrentPhase() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase
}

// Breakdown returns a snapshot of the accumulated critical-path time
// decomposition; Breakdown().Total() equals Clock().
func (c *Context) Breakdown() Breakdown {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bd
}

// EmitDriverSpan records a span on the context's driver lane running from
// start to the current virtual clock (no-op while tracing is off).
func (c *Context) EmitDriverSpan(name, cat string, start simtime.Duration, args map[string]string) {
	if !c.obsv.TraceEnabled() {
		return
	}
	c.obsv.Add(obs.Span{
		Name: name, Cat: cat, Pid: c.pid, Tid: 0,
		Start: start, Dur: c.Clock() - start, Args: args,
	})
}

// Model returns the cost model (map functions price kernels against it).
func (c *Context) Model() *costmodel.Model { return c.model }

// Cluster returns the cluster spec.
func (c *Context) Cluster() *cluster.Cluster { return c.conf.Cluster }

// ExecutorCores returns the per-executor task-slot setting.
func (c *Context) ExecutorCores() int { return c.conf.ExecutorCores }

// Clock returns the job's virtual time so far.
func (c *Context) Clock() simtime.Duration { return c.simul.Now() }

// Ledger returns the virtual resource-time ledger.
func (c *Context) Ledger() *simtime.Ledger { return c.simul.Ledger }

// TimedOut reports whether the virtual clock passed the 8-hour bound.
func (c *Context) TimedOut() bool { return c.simul.TimedOut() }

// Err returns the first failure (staging disk full, executor memory
// exceeded), if any.
func (c *Context) Err() error {
	c.mu.Lock()
	memErr, taskErr := c.memErr, c.taskErr
	c.mu.Unlock()
	if taskErr != nil {
		return taskErr
	}
	if memErr != nil {
		return memErr
	}
	return c.simul.Err()
}

// recordTaskErr keeps the first task failure for the next action to
// surface.
func (c *Context) recordTaskErr(err error) {
	c.mu.Lock()
	if c.taskErr == nil {
		c.taskErr = err
	}
	c.mu.Unlock()
}

// AdvanceDriver charges driver-side virtual time (used by broadcast and
// the drivers' per-iteration bookkeeping) and attributes it in the
// breakdown: network and shared-fs charges are collect/broadcast data
// movement, local-disk charges are shuffle I/O, the rest splits between
// compute and overhead.
func (c *Context) AdvanceDriver(d simtime.Duration, cat simtime.Category) {
	c.simul.AdvanceDriver(d, cat)
	c.mu.Lock()
	switch cat {
	case simtime.Network, simtime.SharedFS:
		c.bd.Broadcast += d
	case simtime.LocalDisk:
		c.bd.Shuffle += d
	case simtime.Compute:
		c.bd.Compute += d
	default:
		c.bd.Overhead += d
	}
	c.mu.Unlock()
}

// addBroadcastBytes accounts driver-staged broadcast payload bytes.
func (c *Context) addBroadcastBytes(n int64) {
	c.mu.Lock()
	c.bd.BroadcastBytes += n
	c.mu.Unlock()
}

// nodeOf places a partition on an executor.
func (c *Context) nodeOf(split int) int {
	n := split % c.conf.Cluster.Nodes
	if n < 0 {
		n += c.conf.Cluster.Nodes
	}
	return n
}

// chargeCacheMemory accounts cached records against executor memory.
func (c *Context) chargeCacheMemory(node int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memUsed[node] += bytes
	if c.memErr == nil && c.memUsed[node] > c.conf.Cluster.ExecutorMemBytes {
		c.memErr = fmt.Errorf("rdd: executor memory exceeded on node %d: %d cached bytes > %d budget",
			node, c.memUsed[node], c.conf.Cluster.ExecutorMemBytes)
	}
}

// releaseCacheMemory returns cached bytes to the executor budget.
func (c *Context) releaseCacheMemory(node int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memUsed[node] -= bytes
	if c.memUsed[node] < 0 {
		c.memUsed[node] = 0
	}
}

// laneTid maps an executor core (or, at lane == ExecutorCores, the
// node's I/O lane) to its trace thread id. tid 0 is the driver lane.
func (c *Context) laneTid(node, lane int) int {
	return 1 + node*(c.conf.ExecutorCores+1) + lane
}

// nameTraceLanes registers the per-core and per-node-IO trace lane names
// (done once, on the first traced stage).
func (c *Context) nameTraceLanes() {
	cores := c.conf.ExecutorCores
	for n := 0; n < c.conf.Cluster.Nodes; n++ {
		for l := 0; l < cores; l++ {
			c.obsv.NameThread(c.pid, c.laneTid(n, l), fmt.Sprintf("node%d core%d", n, l))
		}
		c.obsv.NameThread(c.pid, c.laneTid(n, cores), fmt.Sprintf("node%d io", n))
	}
}

// runStage executes one stage: `parts` tasks running `work`, really (in
// parallel goroutines) and virtually (through the cluster simulator).
// phase labels the stage for observability (the driver phase that built
// the stage's lineage).
func (c *Context) runStage(kind StageKind, shuffleID, parts int, phase string, work func(tc *TaskContext, split int)) {
	c.mu.Lock()
	stageID := c.nextStage
	c.nextStage++
	c.mu.Unlock()

	tcs := make([]*TaskContext, parts)
	// runOne executes one task with Spark-style retries: an injected
	// fault or a panic fails the attempt; the task restarts from its
	// lineage (a fresh TaskContext — charges of failed attempts still
	// cost virtual time, accumulated via lostCompute).
	runOne := func(split int) {
		var lost simtime.Duration
		for attempt := 0; attempt < c.conf.MaxTaskAttempts; attempt++ {
			tc := &TaskContext{
				StageID:   stageID,
				Partition: split,
				Node:      c.nodeOf(split),
				ctx:       c,
			}
			tcs[split] = tc
			err := func() (err error) {
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("rdd: task %d of stage %d failed (attempt %d): %v",
							split, stageID, attempt+1, p)
					}
				}()
				if c.conf.FaultInjector != nil && c.conf.FaultInjector(stageID, split, attempt) {
					return fmt.Errorf("rdd: task %d of stage %d killed by fault injector (attempt %d)",
						split, stageID, attempt+1)
				}
				work(tc, split)
				return nil
			}()
			if err == nil {
				tc.compute += lost // failed attempts' work is not free
				return
			}
			lost += tc.compute
			if attempt == c.conf.MaxTaskAttempts-1 {
				c.recordTaskErr(err)
			}
		}
	}

	workers := c.conf.RealParallelism
	if workers > parts {
		workers = parts
	}
	if workers <= 1 {
		for split := 0; split < parts; split++ {
			runOne(split)
		}
	} else {
		var wg sync.WaitGroup
		splits := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for split := range splits {
					runOne(split)
				}
			}()
		}
		for split := 0; split < parts; split++ {
			splits <- split
		}
		close(splits)
		wg.Wait()
	}

	var spill, fetch, shared int64
	tasks := make([]sim.Task, parts)
	for i, tc := range tcs {
		spill += tc.spill
		fetch += tc.fetchLocal + tc.fetchRemote
		shared += tc.sharedRead + tc.sharedWrite
		tasks[i] = sim.Task{
			Node:        tc.Node,
			Compute:     tc.compute,
			Threads:     tc.Threads(),
			IdleThreads: tc.idleThreads,
			FetchLocal:  tc.fetchLocal,
			FetchRemote: tc.fetchRemote,
			Spill:       tc.spill,
			SharedRead:  tc.sharedRead,
			SharedWrite: tc.sharedWrite,
		}
	}
	rep := c.simul.RunStageReport(tasks)

	c.mu.Lock()
	c.bd.Compute += rep.Compute
	c.bd.Shuffle += rep.ShuffleIO
	c.bd.Broadcast += rep.SharedIO
	c.bd.Overhead += rep.Overhead
	c.bd.ShuffleWriteBytes += spill
	c.bd.ShuffleFetchBytes += fetch
	c.bd.BroadcastBytes += shared
	c.mu.Unlock()

	skew := 0.0
	if rep.MeanTask > 0 {
		skew = rep.MaxTask.Seconds() / rep.MeanTask.Seconds()
	}
	c.recordStageMetrics(kind, phase, parts, spill, fetch, skew, rep)
	if c.obsv.TraceEnabled() {
		c.emitStageSpans(kind, phase, stageID, spill, fetch, rep)
	}

	c.appendEvent(StageEvent{
		StageID:    stageID,
		Kind:       kind,
		Tasks:      parts,
		ShuffleID:  shuffleID,
		Phase:      phase,
		Start:      rep.Start,
		Duration:   rep.Total,
		SpillBytes: spill,
		FetchBytes: fetch,
		MaxTask:    rep.MaxTask,
		MeanTask:   rep.MeanTask,
	})
}

// recordStageMetrics updates the always-on metric families for one
// executed stage.
func (c *Context) recordStageMetrics(kind StageKind, phase string, parts int, spill, fetch int64, skew float64, rep sim.StageReport) {
	m := c.stageMetricHandles(kind, phase)
	m.stages.Inc()
	m.tasks.Add(int64(parts))
	m.write.Add(spill)
	m.fetch.Add(fetch)
	for _, ts := range rep.Tasks {
		m.taskSeconds.Observe(ts.Raw.Seconds())
	}
	if skew > 0 {
		m.skewHist.Observe(skew)
		m.skewGauge.SetMax(skew)
	}
}

// stageMetricHandles resolves (and caches) the stage-metric handles for
// one (kind, phase) combination.
func (c *Context) stageMetricHandles(kind StageKind, phase string) *stageMetricHandles {
	key := stageMetricsKey{kind: kind, phase: phase}
	if m, ok := c.stageMetrics.Load(key); ok {
		return m.(*stageMetricHandles)
	}
	reg := c.obsv.Metrics()
	kl := obs.Labels{"kind": kind.String(), "phase": phase}
	m := &stageMetricHandles{
		stages:      reg.Counter("dpspark_stages_total", kl),
		tasks:       reg.Counter("dpspark_tasks_total", kl),
		write:       reg.Counter("dpspark_shuffle_write_bytes_total", kl),
		fetch:       reg.Counter("dpspark_shuffle_fetch_bytes_total", kl),
		taskSeconds: reg.Histogram("dpspark_task_seconds", obs.Labels{"kind": kind.String()}, taskSecondsBuckets),
		skewHist:    reg.Histogram("dpspark_stage_skew", nil, stageSkewBuckets),
		skewGauge:   reg.Gauge("dpspark_max_task_skew", nil),
	}
	actual, _ := c.stageMetrics.LoadOrStore(key, m)
	return actual.(*stageMetricHandles)
}

// Bucket layouts for the stage metric histograms: task durations span
// ~100 µs kernels to multi-minute stragglers; skew is MaxTask/MeanTask
// so it starts at 1 (perfect balance).
var (
	taskSecondsBuckets = obs.ExpBuckets(1e-4, 2, 24)
	stageSkewBuckets   = obs.LinearBuckets(1, 0.25, 24)
)

// emitStageSpans renders one stage into trace spans: a stage span on the
// driver lane, an I/O span per active node, and one span per task on its
// executor-core lane.
func (c *Context) emitStageSpans(kind StageKind, phase string, stageID int, spill, fetch int64, rep sim.StageReport) {
	c.laneNames.Do(c.nameTraceLanes)
	cat := "stage"
	if phase != "" {
		cat = "stage," + phase
	}
	c.obsv.Add(obs.Span{
		Name: fmt.Sprintf("stage %d %s", stageID, kind), Cat: cat,
		Pid: c.pid, Tid: 0, Start: rep.Start, Dur: rep.Total,
		Args: map[string]string{
			"phase": phase,
			"tasks": fmt.Sprint(len(rep.Tasks)),
			"spill": fmt.Sprintf("%dB", spill),
			"fetch": fmt.Sprintf("%dB", fetch),
		},
	})
	for n, io := range rep.NodeIO {
		if io > 0 {
			c.obsv.Add(obs.Span{
				Name: fmt.Sprintf("io stage %d", stageID), Cat: "io",
				Pid: c.pid, Tid: c.laneTid(n, c.conf.ExecutorCores),
				Start: rep.Start, Dur: io,
			})
		}
	}
	for _, ts := range rep.Tasks {
		if ts.Dur <= 0 {
			continue
		}
		c.obsv.Add(obs.Span{
			Name: fmt.Sprintf("task %d.%d", stageID, ts.Index), Cat: "task",
			Pid: c.pid, Tid: c.laneTid(ts.Node, ts.Lane),
			Start: rep.Start + ts.Start, Dur: ts.Dur,
			Args: map[string]string{"raw": ts.Raw.String()},
		})
	}
}

// ensureUpstream materializes every shuffle the dataset's lineage needs,
// parents first. Traversal stops at fully cached datasets and at already
// materialized shuffles — exactly Spark's stage-skipping behaviour.
func (c *Context) ensureUpstream(ds *dataset, visited map[*dataset]bool) {
	if visited[ds] {
		return
	}
	visited[ds] = true
	if ds.fullyCached() {
		return
	}
	if ds.shuffle != nil {
		sd := ds.shuffle
		c.mu.Lock()
		st := c.shuffles[sd.id]
		c.mu.Unlock()
		if st != nil && st.done {
			return
		}
		c.ensureUpstream(sd.parent, visited)
		c.runMapStage(sd)
		return
	}
	for _, p := range ds.deps {
		c.ensureUpstream(p, visited)
	}
}

// runJob computes every partition of ds and returns the records.
func (c *Context) runJob(ds *dataset) [][]Record {
	c.AdvanceDriver(c.model.JobOverhead(), simtime.Overhead)
	c.ensureUpstream(ds, make(map[*dataset]bool))
	out := make([][]Record, ds.parts)
	c.runStage(StageResult, -1, ds.parts, c.CurrentPhase(), func(tc *TaskContext, split int) {
		out[split] = c.iterate(ds, split, tc)
	})
	return out
}
