package rdd

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"dpspark/internal/cluster"
	"dpspark/internal/costmodel"
	"dpspark/internal/kernels"
	"dpspark/internal/obs"
	"dpspark/internal/sim"
	"dpspark/internal/simtime"
	"dpspark/internal/store"
)

// Conf configures an engine context — the spark-submit settings of the
// paper's experiments.
type Conf struct {
	// Substrate mounts the context on a shared scheduler/executor
	// substrate (multi-tenant serving): the cluster spec, cost-model
	// calibration, kernel pools and real task slots come from the
	// substrate, so Cluster, Params and KernelThreads must be left zero.
	// Lineage, shuffle state, fault plans and the virtual clock stay
	// per-context. Nil (the default) gives the context its own substrate
	// ingredients, exactly as before.
	Substrate *Substrate
	// Priority orders this context's tasks against sibling contexts on
	// the same Substrate when real task slots are contended: higher wins,
	// FIFO within a priority. Ignored without a Substrate.
	Priority int
	// Cluster describes the (simulated) hardware. Required unless
	// Substrate is set (the substrate supplies it).
	Cluster *cluster.Cluster
	// Params overrides the cost-model calibration; nil uses defaults.
	Params *costmodel.Params
	// ExecutorCores is the number of concurrent task slots per executor
	// (spark.executor.cores). Default: all physical cores per node, or
	// cores/KernelThreads when KernelThreads > 1 — the paper's
	// cores×threads split keeps task-slots × kernel-threads equal to the
	// physical core count.
	ExecutorCores int
	// KernelThreads is the OMP_NUM_THREADS analogue: the width of the
	// shared per-node kernel worker pool handed to every task's kernel
	// invocations (TaskContext.KernelPool). 1 (the default) runs kernels
	// serially and creates no pools; negative values are rejected. The
	// pool bounds real intra-kernel concurrency per node — tasks on one
	// node share it, so total kernel workers never exceed this width.
	KernelThreads int
	// RealParallelism bounds the goroutines that actually execute tasks
	// in this process. Default: runtime.NumCPU().
	RealParallelism int
	// Sizer prices records for traffic accounting. Default: DefaultSizer.
	Sizer Sizer
	// KeepShuffles is how many most-recent shuffles stay staged before
	// the engine emulates Spark's shuffle cleanup (old generations are
	// deleted from the local disks). Default: 8.
	KeepShuffles int
	// FaultInjector, when set, is consulted before each task attempt;
	// returning true makes that attempt fail (for resilience testing).
	// Failed tasks are retried like Spark's, up to MaxTaskAttempts.
	FaultInjector func(stageID, partition, attempt int) bool
	// FaultPlan, when set, schedules deterministic whole-executor
	// failures: crashes (map outputs lost + blacklist), staging-disk
	// losses and slow-task stragglers. See RandomFaultPlan. The plan is
	// never mutated, so one plan can drive several contexts.
	FaultPlan *FaultPlan
	// MaxTaskAttempts bounds task retries (default 4, Spark's
	// spark.task.maxFailures). Negative values are rejected.
	MaxTaskAttempts int
	// BlacklistBackoff is the base executor blacklist duration after a
	// crash, doubling per repeated crash of the same node (default 30
	// virtual seconds).
	BlacklistBackoff simtime.Duration
	// Speculation enables speculative execution: after a stage's tasks
	// finish computing, tasks slower than SpeculationMultiplier × the
	// SpeculationQuantile task duration get a copy launched on another
	// executor; the first result wins and the loser is killed at the
	// winner's finish time — its work is still charged to the cost model
	// (spark.speculation).
	Speculation bool
	// SpeculationMultiplier is the straggler threshold factor (default
	// 1.5, spark.speculation.multiplier). Values in (0, 1] are rejected.
	SpeculationMultiplier float64
	// SpeculationQuantile is the task-duration quantile the threshold is
	// relative to (default 0.75, spark.speculation.quantile).
	SpeculationQuantile float64
	// Observer receives the context's spans and metrics. Nil creates a
	// private observer; pass a shared one to aggregate several contexts
	// (e.g. a sweep) into one trace/metrics export.
	Observer *obs.Observer
	// DurableDir roots the durable block store: non-combining shuffle
	// buckets and broadcast payloads are staged as checksummed blocks
	// under it, and MemoryBudget-pressure eviction spills them to disk.
	// Empty (the default) disables the store entirely. The directory must
	// be creatable; each context expects its own.
	DurableDir string
	// MemoryBudget caps the bytes the durable block store holds in memory
	// before evicting least-recently-used blocks to disk. Default 0 means
	// unbounded (blocks only reach disk via fault injection); negative
	// values are rejected, and a positive budget requires DurableDir.
	MemoryBudget int64
	// SpillCodec serializes records for the durable store (core supplies
	// a tile codec). Without one, shuffle/broadcast staging is skipped
	// even when DurableDir is set.
	SpillCodec Codec
	// RemoteDir roots the shared remote replica tier (store.FSTier)
	// behind the durable store: staged shuffle blocks are asynchronously
	// replicated under it, and recovery restores lost blocks from intact
	// replicas before falling back to recompute. Empty (the default)
	// disables the tier; a non-empty value requires DurableDir (the tier
	// replicates the durable store). The directory is shared — several
	// contexts (or a restarted driver) may point at the same one.
	RemoteDir string
	// RemoteOpTimeout is the per-operation deadline for simulated remote
	// restore reads: a read whose (slowdown-dilated) cost exceeds it
	// times out, is charged the timeout and retried. Default 2 virtual
	// seconds; negative values are rejected.
	RemoteOpTimeout simtime.Duration
	// RemoteMaxRetries bounds restore-read retries after timeouts
	// (exponential backoff, see RemoteBackoff). Default 3; negative
	// values are rejected.
	RemoteMaxRetries int
	// RemoteBackoff is the base delay charged before a restore retry,
	// doubling per attempt. Default 500 virtual milliseconds; negative
	// values are rejected.
	RemoteBackoff simtime.Duration
	// SpillStraggler > 1 enables spill-aware scheduling: when the block
	// store's cumulative spill wall time grew since the last stage, the
	// node holding the most staged shuffle bytes is modelled as
	// memory-starved — its tasks are dilated by this factor so the
	// speculation path sees them as stragglers. 0 (the default)
	// disables it; values in (0, 1] are rejected. Note the trigger reads
	// real spill timing, so enabling this trades clock determinism for
	// memory-pressure fidelity (results stay bit-identical either way).
	SpillStraggler float64
	// SpillDilation > 0 enables continuous spill-aware dilation: instead
	// of SpillStraggler's single worst-node factor, EVERY node's tasks
	// are dilated by 1 + SpillDilation × (staged shuffle bytes on the
	// node / MemoryBudget) when the block store shows fresh spill
	// pressure — a node with twice the backlog runs twice as degraded.
	// Requires MemoryBudget > 0 (the backlog is measured against it) and
	// is mutually exclusive with SpillStraggler. 0 (the default)
	// disables it; negative values are rejected. Like SpillStraggler the
	// trigger reads real spill timing, so clock determinism is traded
	// for memory-pressure fidelity (result bits are unaffected).
	SpillDilation float64
	// HeartbeatInterval enables the heartbeat/lease failure detector:
	// executors heartbeat the driver every HeartbeatInterval modelled
	// seconds, the scheduler suspects a node after one missed lease and
	// declares it dead after HeartbeatMisses consecutive misses — so every
	// declared loss charges HeartbeatMisses × HeartbeatInterval of
	// detection latency to the modelled clock (Breakdown.Detection,
	// critical-path phase "detection") before recovery can begin. 0 (the
	// default) keeps the legacy omniscient delivery: injected faults are
	// scheduler-visible the instant they fire, with zero latency. Negative
	// values are rejected. Required for FaultPlan GC pauses and network
	// partitions — false suspicion only exists with a detector.
	HeartbeatInterval simtime.Duration
	// HeartbeatMisses is how many consecutive missed heartbeats turn a
	// suspect node into a declared-dead one (default 2 when the detector
	// is on). Needs HeartbeatInterval; negative values are rejected.
	HeartbeatMisses int
	// RecoveryTokens enables recovery-storm throttling: a token bucket of
	// this capacity gates stage resubmissions, so a mass failure (rack
	// loss) drains in bounded waves instead of stampeding recompute. Each
	// resubmission takes a token; an empty bucket charges the modelled
	// wait until the next refill. 0 (the default) disables throttling;
	// negative values are rejected.
	RecoveryTokens int
	// RecoveryRefill is the modelled interval at which the storm bucket
	// mints one token back (default 1 virtual second when RecoveryTokens
	// is set). Needs RecoveryTokens; negative values are rejected.
	RecoveryRefill simtime.Duration
	// JobLabel tags every flight-recorder event this context produces with
	// a job ID, so multi-tenant observers can filter /events?job=ID down
	// to one tenant. Empty (the default) leaves events unlabelled.
	JobLabel string
	// Restore seeds a fresh context with a checkpointed EngineState so a
	// resumed run continues the stage/shuffle numbering and skips fault
	// events that fired before the checkpoint. Validated against the
	// FaultPlan and cluster size.
	Restore *EngineState
}

// normalize is the single place Conf is validated and defaulted — every
// context construction path goes through it, so a hand-built Conf can
// never smuggle an unnormalized value past NewContext.
func (conf *Conf) normalize() error {
	if conf.Substrate != nil {
		// The substrate owns everything shared across mounted jobs; a
		// per-job override of those fields would silently diverge from
		// what siblings see, so they must be left zero.
		if conf.Cluster != nil && conf.Cluster != conf.Substrate.cluster {
			return fmt.Errorf("rdd: Conf.Cluster must be unset with Conf.Substrate — the substrate supplies the cluster")
		}
		if conf.Params != nil && conf.Params != conf.Substrate.params {
			return fmt.Errorf("rdd: Conf.Params must be unset with Conf.Substrate — the substrate supplies the calibration")
		}
		if conf.KernelThreads != 0 && conf.KernelThreads != conf.Substrate.kernelThreads {
			return fmt.Errorf("rdd: Conf.KernelThreads must be unset with Conf.Substrate — the substrate owns the kernel pools")
		}
		conf.Cluster = conf.Substrate.cluster
		conf.Params = conf.Substrate.params
		conf.KernelThreads = conf.Substrate.kernelThreads
		if conf.RealParallelism <= 0 {
			conf.RealParallelism = conf.Substrate.realPar
		}
	} else if conf.Priority != 0 {
		return fmt.Errorf("rdd: Conf.Priority needs Conf.Substrate — priorities order jobs contending for shared task slots")
	}
	if conf.Cluster == nil {
		return fmt.Errorf("rdd: Conf.Cluster is required")
	}
	if conf.MaxTaskAttempts < 0 {
		return fmt.Errorf("rdd: Conf.MaxTaskAttempts must be ≥ 0 (0 means the default 4, Spark's spark.task.maxFailures), got %d", conf.MaxTaskAttempts)
	}
	if conf.KeepShuffles < 0 {
		return fmt.Errorf("rdd: Conf.KeepShuffles must be ≥ 0 (0 means the default 8), got %d", conf.KeepShuffles)
	}
	if conf.BlacklistBackoff < 0 {
		return fmt.Errorf("rdd: Conf.BlacklistBackoff must be ≥ 0, got %v", conf.BlacklistBackoff)
	}
	if conf.SpeculationMultiplier < 0 || (conf.SpeculationMultiplier > 0 && conf.SpeculationMultiplier <= 1) {
		return fmt.Errorf("rdd: Conf.SpeculationMultiplier must be > 1 (0 means the default 1.5), got %g", conf.SpeculationMultiplier)
	}
	if conf.SpeculationQuantile < 0 || conf.SpeculationQuantile >= 1 {
		return fmt.Errorf("rdd: Conf.SpeculationQuantile must be in [0, 1) (0 means the default 0.75), got %g", conf.SpeculationQuantile)
	}
	if conf.HeartbeatInterval < 0 {
		return fmt.Errorf("rdd: Conf.HeartbeatInterval must be ≥ 0 (0 disables the failure detector), got %v", conf.HeartbeatInterval)
	}
	if conf.HeartbeatMisses < 0 {
		return fmt.Errorf("rdd: Conf.HeartbeatMisses must be ≥ 0 (0 means the default 2), got %d", conf.HeartbeatMisses)
	}
	if conf.HeartbeatMisses > 0 && conf.HeartbeatInterval == 0 {
		return fmt.Errorf("rdd: Conf.HeartbeatMisses needs Conf.HeartbeatInterval — the lease count is meaningless without a heartbeat period")
	}
	if conf.HeartbeatInterval > 0 && conf.HeartbeatMisses == 0 {
		conf.HeartbeatMisses = 2
	}
	if conf.RecoveryTokens < 0 {
		return fmt.Errorf("rdd: Conf.RecoveryTokens must be ≥ 0 (0 disables recovery-storm throttling), got %d", conf.RecoveryTokens)
	}
	if conf.RecoveryRefill < 0 {
		return fmt.Errorf("rdd: Conf.RecoveryRefill must be ≥ 0 (0 means the default 1s), got %v", conf.RecoveryRefill)
	}
	if conf.RecoveryRefill > 0 && conf.RecoveryTokens == 0 {
		return fmt.Errorf("rdd: Conf.RecoveryRefill needs Conf.RecoveryTokens — a refill interval without a bucket throttles nothing")
	}
	if conf.RecoveryTokens > 0 && conf.RecoveryRefill == 0 {
		conf.RecoveryRefill = 1 * simtime.Second
	}
	if conf.FaultPlan != nil {
		if err := conf.FaultPlan.validate(conf.Cluster.Nodes, conf.Cluster.Racks); err != nil {
			return err
		}
		if conf.HeartbeatInterval == 0 && (len(conf.FaultPlan.GCPauses) > 0 || len(conf.FaultPlan.Partitions) > 0) {
			return fmt.Errorf("rdd: FaultPlan GC pauses / network partitions need Conf.HeartbeatInterval > 0 — false suspicion only exists with a heartbeat failure detector")
		}
	}
	if conf.MemoryBudget < 0 {
		return fmt.Errorf("rdd: Conf.MemoryBudget must be ≥ 0 (0 means unbounded), got %d", conf.MemoryBudget)
	}
	if conf.MemoryBudget > 0 && conf.DurableDir == "" {
		return fmt.Errorf("rdd: Conf.MemoryBudget %d needs Conf.DurableDir — eviction has nowhere to spill", conf.MemoryBudget)
	}
	if conf.DurableDir != "" {
		if err := os.MkdirAll(conf.DurableDir, 0o755); err != nil {
			return fmt.Errorf("rdd: Conf.DurableDir %q is not creatable: %w", conf.DurableDir, err)
		}
	}
	if conf.RemoteDir != "" && conf.DurableDir == "" {
		return fmt.Errorf("rdd: Conf.RemoteDir needs Conf.DurableDir — the remote tier replicates the durable store")
	}
	if conf.RemoteOpTimeout < 0 {
		return fmt.Errorf("rdd: Conf.RemoteOpTimeout must be ≥ 0 (0 means the default 2s), got %v", conf.RemoteOpTimeout)
	}
	if conf.RemoteMaxRetries < 0 {
		return fmt.Errorf("rdd: Conf.RemoteMaxRetries must be ≥ 0 (0 means the default 3), got %d", conf.RemoteMaxRetries)
	}
	if conf.RemoteBackoff < 0 {
		return fmt.Errorf("rdd: Conf.RemoteBackoff must be ≥ 0 (0 means the default 500ms), got %v", conf.RemoteBackoff)
	}
	if conf.SpillStraggler < 0 || (conf.SpillStraggler > 0 && conf.SpillStraggler <= 1) {
		return fmt.Errorf("rdd: Conf.SpillStraggler must be > 1 (0 disables spill-aware scheduling), got %g", conf.SpillStraggler)
	}
	if conf.SpillDilation < 0 {
		return fmt.Errorf("rdd: Conf.SpillDilation must be ≥ 0 (0 disables continuous spill dilation), got %g", conf.SpillDilation)
	}
	if conf.SpillDilation > 0 && conf.SpillStraggler > 0 {
		return fmt.Errorf("rdd: Conf.SpillDilation and Conf.SpillStraggler are mutually exclusive — pick the continuous or the worst-node model")
	}
	if conf.SpillDilation > 0 && conf.MemoryBudget <= 0 {
		return fmt.Errorf("rdd: Conf.SpillDilation %g needs Conf.MemoryBudget > 0 — the backlog is measured against the budget", conf.SpillDilation)
	}
	if conf.Restore != nil {
		if err := validateRestore(conf.Restore, conf.FaultPlan, conf.Cluster.Nodes); err != nil {
			return err
		}
	}
	if conf.KernelThreads < 0 {
		return fmt.Errorf("rdd: Conf.KernelThreads must be ≥ 0 (0 means the default 1, serial kernels), got %d", conf.KernelThreads)
	}
	if conf.KernelThreads == 0 {
		conf.KernelThreads = 1
	}
	if conf.ExecutorCores <= 0 {
		conf.ExecutorCores = conf.Cluster.Node.Cores
		if conf.KernelThreads > 1 {
			// Co-tune the split: k-thread kernels shrink the task-slot
			// budget so slots × threads covers the cores exactly once.
			conf.ExecutorCores = conf.Cluster.Node.Cores / conf.KernelThreads
			if conf.ExecutorCores < 1 {
				conf.ExecutorCores = 1
			}
		}
	}
	if conf.RealParallelism <= 0 {
		conf.RealParallelism = runtime.NumCPU()
	}
	if conf.Sizer == nil {
		conf.Sizer = DefaultSizer
	}
	if conf.KeepShuffles == 0 {
		conf.KeepShuffles = 8
	}
	if conf.MaxTaskAttempts == 0 {
		conf.MaxTaskAttempts = 4
	}
	if conf.BlacklistBackoff == 0 {
		conf.BlacklistBackoff = defaultBlacklistBackoff
	}
	if conf.SpeculationMultiplier == 0 {
		conf.SpeculationMultiplier = 1.5
	}
	if conf.SpeculationQuantile == 0 {
		conf.SpeculationQuantile = 0.75
	}
	if conf.RemoteOpTimeout == 0 {
		conf.RemoteOpTimeout = 2 * simtime.Second
	}
	if conf.RemoteMaxRetries == 0 {
		conf.RemoteMaxRetries = 3
	}
	if conf.RemoteBackoff == 0 {
		conf.RemoteBackoff = 500 * simtime.Millisecond
	}
	return nil
}

// Context is the engine's driver: it owns the lineage graph, the shuffle
// store, the virtual clock and the failure state. It corresponds to a
// SparkContext.
type Context struct {
	conf  Conf
	model *costmodel.Model
	simul *sim.Sim
	sizer Sizer
	obsv  *obs.Observer
	pid   int

	// store is the durable block store (nil without Conf.DurableDir); it
	// stages shuffle buckets and broadcast payloads as checksummed blocks.
	store *store.Store

	// kernelPools holds one shared kernel worker pool per node (nil slice
	// when Conf.KernelThreads ≤ 1): every task running on a node hands the
	// node's pool to its kernel invocations, so intra-kernel workers are
	// bounded per node, not per task.
	kernelPools []*kernels.Pool

	// substrate is the shared scheduler/executor layer (nil for solo
	// contexts): when set, every real task execution first acquires one
	// of its slots, so concurrent sibling jobs interleave on a bounded
	// executor pool instead of each spawning RealParallelism goroutines.
	substrate *Substrate

	// cancel is closed by Cancel (idempotent); cancelErr is the cause,
	// written under mu before the close so readers that observe the
	// closed channel always see it.
	cancel     chan struct{}
	cancelOnce sync.Once
	cancelErr  error

	// faults is the fired-event/blacklist state for Conf.FaultPlan (nil
	// without a plan); rec are the recovery counters, recm their
	// pre-resolved registry mirrors.
	faults *faultState
	rec    recovery
	recm   recoveryMetrics

	laneNames sync.Once

	// stormMu guards the recovery-storm token bucket (Conf.RecoveryTokens):
	// stormTokens is the current token count, stormLast the virtual time
	// tokens were last minted. Separate from mu because the take charges
	// driver time (advanceDriver) while held.
	stormMu     sync.Mutex
	stormTokens int
	stormLast   simtime.Duration

	mu            sync.Mutex
	spillWallSeen time.Duration
	nextDataset   int
	nextShuffle   int
	nextStage     int
	nextBroadcast int
	shuffles      map[int]*shuffleState
	shuffleLog    []int
	memUsed       []int64
	memErr        error
	taskErr       error
	events        []StageEvent
	phase         string
	bd            Breakdown

	// stageMetrics caches resolved stage-metric handles per (stage kind,
	// phase): the registry lookup encodes and hashes a label map per
	// call, which is pure overhead for the handful of label combinations
	// a run produces, looked up once per executed stage.
	stageMetrics sync.Map // stageMetricsKey → *stageMetricHandles
}

// stageMetricsKey identifies one stage-metric label combination.
type stageMetricsKey struct {
	kind  StageKind
	phase string
}

// stageMetricHandles holds the resolved metric family handles for one
// (kind, phase) combination.
type stageMetricHandles struct {
	stages, tasks, write, fetch *obs.Counter
	taskSeconds                 *obs.Histogram
	skewHist                    *obs.Histogram
	skewGauge                   *obs.Gauge
}

// Breakdown is the context's accumulated critical-path time decomposition
// plus traffic counters. Unlike the Ledger's overlapping resource-seconds,
// the four time components sum exactly to the virtual clock: every stage
// contributes its makespan node's split (sim.StageReport) and every
// driver-side advance is attributed by category.
type Breakdown struct {
	// Compute is kernel/task compute time on the critical path.
	Compute simtime.Duration
	// Shuffle is shuffle I/O (local-disk staging + network fetches).
	Shuffle simtime.Duration
	// Broadcast is collect/broadcast movement: shared-filesystem traffic
	// plus driver-side collect transfers.
	Broadcast simtime.Duration
	// Overhead is scheduling overhead (job, stage, task launch is inside
	// Compute; driver bookkeeping lands here).
	Overhead simtime.Duration
	// Recovery is the clock time spent in resubmitted (recovery) stages —
	// recomputing map outputs lost to executor crashes or disk losses. It
	// overlaps the four components above (recovery stages attribute their
	// time there too) and is therefore NOT part of Total(); it answers
	// "how much of the run was failure recovery".
	Recovery simtime.Duration
	// Detection is the clock time spent waiting for the heartbeat failure
	// detector to declare losses (Conf.HeartbeatInterval ×
	// Conf.HeartbeatMisses per declaration wave). Like Recovery it is an
	// overlapping attribution (the wait also lands in Overhead) and NOT
	// part of Total(); it answers "how much of the run was failure
	// detection latency". Always 0 with the detector off.
	Detection simtime.Duration
	// ShuffleWriteBytes and ShuffleFetchBytes count shuffle traffic.
	ShuffleWriteBytes, ShuffleFetchBytes int64
	// BroadcastBytes counts shared-filesystem traffic (staged + fetched).
	BroadcastBytes int64
}

// Total sums the four time components (equals the clock advance they
// were accumulated over).
func (b Breakdown) Total() simtime.Duration {
	return b.Compute + b.Shuffle + b.Broadcast + b.Overhead
}

// Sub returns the component-wise difference b − other (for deltas
// between two snapshots).
func (b Breakdown) Sub(other Breakdown) Breakdown {
	return Breakdown{
		Compute:           b.Compute - other.Compute,
		Shuffle:           b.Shuffle - other.Shuffle,
		Broadcast:         b.Broadcast - other.Broadcast,
		Overhead:          b.Overhead - other.Overhead,
		Recovery:          b.Recovery - other.Recovery,
		Detection:         b.Detection - other.Detection,
		ShuffleWriteBytes: b.ShuffleWriteBytes - other.ShuffleWriteBytes,
		ShuffleFetchBytes: b.ShuffleFetchBytes - other.ShuffleFetchBytes,
		BroadcastBytes:    b.BroadcastBytes - other.BroadcastBytes,
	}
}

// shuffleState is a materialized shuffle, indexed by reduce partition.
// The mutable fields are guarded by mu (an RWMutex: reduce-side reads
// take the read lock so a concurrent recovery can rewrite the lost
// buckets under the write lock); recMu serializes recoveries of this
// shuffle so concurrent fetch failures trigger one resubmission.
type shuffleState struct {
	dep *shuffleDep
	// mapStage is the global stage ID of the shuffle's map stage;
	// resubmissions reuse it (with a bumped attempt), like Spark, so
	// planned stage numbering is identical with and without faults.
	mapStage int

	mu          sync.RWMutex
	byReduce    [][]bucketRef
	spillByNode []int64
	// mapNode, spillByMap and refsByMap record where each map partition's
	// output lives, its staged bytes and whether it produced any buckets —
	// what executor-loss invalidation and fetch attribution key on.
	mapNode    []int
	spillByMap []int64
	refsByMap  []int
	// lost flags map partitions whose staged output is gone (executor
	// crash / disk loss); fetches touching them raise FetchFailedError.
	lost map[int]bool
	// epoch increments on every completed recovery; a FetchFailedError
	// carrying an older epoch means someone else already recovered.
	epoch int
	// attempts counts map-stage executions (1 = initial run).
	attempts int
	// commitLease is the attempt index currently holding the map-output
	// commit lease: only that attempt's buckets may register in the merge.
	// Each map-stage execution takes the lease as it launches, so a
	// resubmission triggered by a false suspicion revokes the zombie
	// attempt's right to commit before its late output can land.
	commitLease int
	// zombieParts maps a map partition invalidated by a false suspicion to
	// the commit lease its stale output was registered under. The recovery
	// merge consults it: dropping the stale refs is the zombie's commit
	// arriving late, and the lease mismatch fences it (counted, evented).
	zombieParts map[int]int
	done        bool
	retired     bool

	recMu sync.Mutex
}

// isDone reports whether the shuffle's map side has materialized.
func (st *shuffleState) isDone() bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.done
}

// NewContext creates an engine context. The Conf is validated and
// defaulted by Conf.normalize; invalid settings (negative
// MaxTaskAttempts, out-of-range speculation parameters, a fault plan
// naming nodes outside the cluster) panic with a clear error.
func NewContext(conf Conf) *Context {
	if err := conf.normalize(); err != nil {
		panic(err)
	}
	m := costmodel.New(conf.Cluster)
	if conf.Params != nil {
		m.P = *conf.Params
	}
	if conf.Observer == nil {
		conf.Observer = obs.New()
	}
	c := &Context{
		conf:      conf,
		model:     m,
		simul:     sim.New(m, conf.ExecutorCores),
		sizer:     conf.Sizer,
		obsv:      conf.Observer,
		substrate: conf.Substrate,
		cancel:    make(chan struct{}),
		shuffles:  make(map[int]*shuffleState),
		memUsed:   make([]int64, conf.Cluster.Nodes),
	}
	c.stormTokens = conf.RecoveryTokens
	if conf.FaultPlan != nil {
		c.faults = newFaultState(conf.FaultPlan, conf.Cluster.Nodes)
	}
	if conf.Substrate != nil {
		// Mounted jobs share the substrate's per-node kernel pools so
		// real kernel workers stay bounded per node across all tenants.
		c.kernelPools = conf.Substrate.kernelPools
	} else if conf.KernelThreads > 1 {
		c.kernelPools = make([]*kernels.Pool, conf.Cluster.Nodes)
		for n := range c.kernelPools {
			c.kernelPools[n] = kernels.NewPool(conf.KernelThreads)
		}
	}
	if conf.DurableDir != "" {
		st, err := store.Open(conf.DurableDir, store.Options{
			MemoryBudget: conf.MemoryBudget,
			Registry:     conf.Observer.Metrics(),
			Flight:       conf.Observer.Flight(),
		})
		if err != nil {
			panic(err)
		}
		c.store = st
	}
	if conf.RemoteDir != "" {
		tier, err := store.NewFSTier(conf.RemoteDir)
		if err != nil {
			panic(err)
		}
		// Only shuffle blocks replicate: broadcast payloads and driver
		// staging files are cheap to rebuild, lost map outputs are not.
		c.store.AttachRemote(tier, func(key string) bool {
			return strings.HasPrefix(key, "shuffle/")
		})
		if cl := conf.Cluster; cl.Racks > 1 {
			// Domain-aware replica placement: a replica must never share a
			// fault domain with the block it protects, or a rack failure
			// takes both. Origin domain = the rack of the map partition's
			// home executor, parsed from the shuffle block key.
			c.store.SetReplicaDomains(cl.Racks, func(key string) int {
				var id, m, r int
				if _, err := fmt.Sscanf(key, "shuffle/%d/m%d/r%d", &id, &m, &r); err != nil {
					return 0
				}
				return cl.RackOf(c.nodeOf(m))
			})
		}
	}
	if conf.Restore != nil {
		c.restoreEngineState(conf.Restore)
	}
	c.recm = newRecoveryMetrics(conf.Observer.Metrics())
	// Flight-recorder events without an explicit timestamp stamp the
	// virtual clock; with several sequential contexts on one observer the
	// latest context's clock wins, matching the events being recorded.
	c.obsv.Flight().SetClockSource(c.Clock)
	c.pid = c.obsv.RegisterProcess(fmt.Sprintf("dpspark %s×%d", conf.Cluster, conf.ExecutorCores))
	c.obsv.NameThread(c.pid, 0, "driver")
	return c
}

// Observer returns the context's observability sink (tracer + metrics).
func (c *Context) Observer() *obs.Observer { return c.obsv }

// TracePid is the context's trace process id (one lane group per context
// in the Chrome trace).
func (c *Context) TracePid() int { return c.pid }

// SetPhase labels subsequent work for observability: shuffle dependencies
// capture the phase current at their creation (so lazily materialized
// stages are attributed to the driver phase that built them), result
// stages the phase current at execution.
func (c *Context) SetPhase(name string) {
	c.mu.Lock()
	c.phase = name
	c.mu.Unlock()
}

// CurrentPhase returns the active phase label.
func (c *Context) CurrentPhase() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase
}

// Breakdown returns a snapshot of the accumulated critical-path time
// decomposition; Breakdown().Total() equals Clock().
func (c *Context) Breakdown() Breakdown {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bd
}

// EmitDriverSpan records a span on the context's driver lane running from
// start to the current virtual clock (no-op while tracing is off).
func (c *Context) EmitDriverSpan(name, cat string, start simtime.Duration, args map[string]string) {
	if !c.obsv.TraceEnabled() {
		return
	}
	c.obsv.Add(obs.Span{
		Name: name, Cat: cat, Pid: c.pid, Tid: 0,
		Start: start, Dur: c.Clock() - start, Args: args,
	})
}

// Model returns the cost model (map functions price kernels against it).
func (c *Context) Model() *costmodel.Model { return c.model }

// Cluster returns the cluster spec.
func (c *Context) Cluster() *cluster.Cluster { return c.conf.Cluster }

// ExecutorCores returns the per-executor task-slot setting.
func (c *Context) ExecutorCores() int { return c.conf.ExecutorCores }

// KernelThreads returns the per-invocation kernel thread budget (the
// width of the shared per-node kernel pools; 1 means serial kernels).
func (c *Context) KernelThreads() int { return c.conf.KernelThreads }

// kernelPool returns the node's shared kernel worker pool (nil when
// KernelThreads ≤ 1 or the node index is out of range).
func (c *Context) kernelPool(node int) *kernels.Pool {
	if node < 0 || node >= len(c.kernelPools) {
		return nil
	}
	return c.kernelPools[node]
}

// KernelPoolStats sums the scheduling counters of every node's kernel
// pool: branches spawned on their own goroutine, branches inlined on the
// caller, and barrier token hand-offs. All zero when KernelThreads ≤ 1.
func (c *Context) KernelPoolStats() (spawned, inlined, handoffs int64) {
	for _, p := range c.kernelPools {
		s, i, h := p.Stats()
		spawned += s
		inlined += i
		handoffs += h
	}
	return spawned, inlined, handoffs
}

// KeepShuffles returns how many recent shuffle generations stay staged
// (drivers with multi-iteration lineage windows must fit inside it).
func (c *Context) KeepShuffles() int { return c.conf.KeepShuffles }

// Clock returns the job's virtual time so far.
func (c *Context) Clock() simtime.Duration { return c.simul.Now() }

// Ledger returns the virtual resource-time ledger.
func (c *Context) Ledger() *simtime.Ledger { return c.simul.Ledger }

// TimedOut reports whether the virtual clock passed the 8-hour bound.
func (c *Context) TimedOut() bool { return c.simul.TimedOut() }

// ErrJobCanceled is the default cancellation cause: Context.Err (and
// action results) wrap or equal it after Cancel, so callers distinguish
// a cancelled job from a failed one with errors.Is.
var ErrJobCanceled = fmt.Errorf("rdd: job canceled")

// Cancel requests cooperative cancellation: in-flight tasks finish
// their current attempt, queued tasks (and slot waiters on a shared
// Substrate) abort, and Err reports the cause from then on — so driver
// loops checking Err at iteration boundaries stop promptly. A nil
// cause means ErrJobCanceled; wrap ErrJobCanceled to attach context
// (e.g. a deadline) while keeping errors.Is working. Idempotent: the
// first cause wins.
func (c *Context) Cancel(cause error) {
	c.cancelOnce.Do(func() {
		if cause == nil {
			cause = ErrJobCanceled
		}
		c.mu.Lock()
		c.cancelErr = cause
		c.mu.Unlock()
		close(c.cancel)
	})
}

// Canceled returns a channel closed once the context is cancelled.
func (c *Context) Canceled() <-chan struct{} { return c.cancel }

// CancelCause returns the cancellation cause, or nil if the context is
// not cancelled.
func (c *Context) CancelCause() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelErr
}

// acquireSlot takes one substrate-wide real-execution slot (highest
// Conf.Priority first), or reports false if the context is cancelled
// while waiting. Always true without a mounted substrate.
func (c *Context) acquireSlot() bool {
	if c.substrate == nil {
		return true
	}
	return c.substrate.sched.acquire(c.conf.Priority, c.cancel)
}

// releaseSlot returns a slot taken by acquireSlot.
func (c *Context) releaseSlot() {
	if c.substrate != nil {
		c.substrate.sched.release()
	}
}

// Err returns the first failure (staging disk full, executor memory
// exceeded, cancellation), if any.
func (c *Context) Err() error {
	c.mu.Lock()
	memErr, taskErr, cancelErr := c.memErr, c.taskErr, c.cancelErr
	c.mu.Unlock()
	if taskErr != nil {
		return taskErr
	}
	if memErr != nil {
		return memErr
	}
	if cancelErr != nil {
		return cancelErr
	}
	return c.simul.Err()
}

// recordTaskErr keeps the first task failure for the next action to
// surface.
func (c *Context) recordTaskErr(err error) {
	c.mu.Lock()
	if c.taskErr == nil {
		c.taskErr = err
	}
	c.mu.Unlock()
}

// AdvanceDriver charges driver-side virtual time (used by broadcast and
// the drivers' per-iteration bookkeeping) and attributes it in the
// breakdown: network and shared-fs charges are collect/broadcast data
// movement, local-disk charges are shuffle I/O, the rest splits between
// compute and overhead.
func (c *Context) AdvanceDriver(d simtime.Duration, cat simtime.Category) {
	c.advanceDriver(d, cat, critPhaseOf(cat))
}

// critPhaseOf maps a ledger category to the critical-path phase driver
// advances under it belong to — mirroring the breakdown attribution.
func critPhaseOf(cat simtime.Category) string {
	switch cat {
	case simtime.Network, simtime.SharedFS:
		return obs.PhaseBroadcast
	case simtime.LocalDisk:
		return obs.PhaseShuffle
	case simtime.Compute:
		return obs.PhaseCompute
	default:
		return obs.PhaseOverhead
	}
}

// advanceDriver is AdvanceDriver with an explicit critical-path phase,
// so recovery paths can charge standard breakdown categories while the
// profiler attributes the advance to recovery.
func (c *Context) advanceDriver(d simtime.Duration, cat simtime.Category, critPhase string) {
	start, end := c.simul.Advance(d, cat)
	c.mu.Lock()
	switch cat {
	case simtime.Network, simtime.SharedFS:
		c.bd.Broadcast += d
	case simtime.LocalDisk:
		c.bd.Shuffle += d
	case simtime.Compute:
		c.bd.Compute += d
	default:
		c.bd.Overhead += d
	}
	c.mu.Unlock()
	if cp := c.obsv.CritPath(); cp.Enabled() {
		cp.RecordSegment(c.pid, obs.CritSegment{
			Start: start, End: end, Phase: critPhase, Name: string(cat),
		})
	}
}

// recordEvent forwards one flight-recorder event, stamped with the
// context's job label (Conf.JobLabel) so multi-tenant observers can
// filter /events down to one tenant. Every rdd-side producer goes
// through it; events from contexts without a label stay unlabelled.
func (c *Context) recordEvent(ev obs.Event) {
	ev.Job = c.conf.JobLabel
	c.obsv.Flight().Record(ev)
}

// takeRecoveryToken implements recovery-storm throttling
// (Conf.RecoveryTokens): each stage resubmission consumes one token from
// a bucket refilled at one token per Conf.RecoveryRefill of modelled
// time. An empty bucket charges the wait until the next refill to the
// modelled clock (overhead, attributed to recovery), so a mass failure —
// a rack loss invalidating many shuffles at once — drains in bounded
// waves instead of stampeding recompute. No-op with throttling off.
func (c *Context) takeRecoveryToken() {
	if c.conf.RecoveryTokens <= 0 {
		return
	}
	c.stormMu.Lock()
	defer c.stormMu.Unlock()
	now := c.Clock()
	if now > c.stormLast {
		if minted := int((now - c.stormLast) / c.conf.RecoveryRefill); minted > 0 {
			c.stormTokens += minted
			if c.stormTokens > c.conf.RecoveryTokens {
				c.stormTokens = c.conf.RecoveryTokens
			}
			c.stormLast += simtime.Duration(minted) * c.conf.RecoveryRefill
		}
	}
	if c.stormTokens > 0 {
		c.stormTokens--
		return
	}
	// Bucket empty: this resubmission waits out the next refill on the
	// modelled clock. Holding stormMu across the charge serializes
	// concurrent waiters, so each consumes a successive refill slot.
	wait := c.stormLast + c.conf.RecoveryRefill - now
	if wait < 0 {
		wait = 0
	}
	c.stormLast += c.conf.RecoveryRefill
	c.rec.stormThrottled.Add(1)
	c.recm.detStormThrottled.Inc()
	c.recordEvent(obs.Event{
		Clock: now.Seconds(), Type: obs.EvThrottle,
		Stage: -1, Part: -1, Node: -1, Shuffle: -1,
		Detail: fmt.Sprintf("recovery-storm bucket empty, waiting %s for a token", wait),
	})
	if wait > 0 {
		c.advanceDriver(wait, simtime.Overhead, obs.PhaseRecovery)
		c.mu.Lock()
		c.bd.Recovery += wait
		c.mu.Unlock()
	}
}

// addBroadcastBytes accounts driver-staged broadcast payload bytes.
func (c *Context) addBroadcastBytes(n int64) {
	c.mu.Lock()
	c.bd.BroadcastBytes += n
	c.mu.Unlock()
}

// nodeOf places a partition on an executor.
func (c *Context) nodeOf(split int) int {
	n := split % c.conf.Cluster.Nodes
	if n < 0 {
		n += c.conf.Cluster.Nodes
	}
	return n
}

// chargeCacheMemory accounts cached records against executor memory.
func (c *Context) chargeCacheMemory(node int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memUsed[node] += bytes
	if c.memErr == nil && c.memUsed[node] > c.conf.Cluster.ExecutorMemBytes {
		c.memErr = fmt.Errorf("rdd: executor memory exceeded on node %d: %d cached bytes > %d budget",
			node, c.memUsed[node], c.conf.Cluster.ExecutorMemBytes)
	}
}

// releaseCacheMemory returns cached bytes to the executor budget.
func (c *Context) releaseCacheMemory(node int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memUsed[node] -= bytes
	if c.memUsed[node] < 0 {
		c.memUsed[node] = 0
	}
}

// laneTid maps an executor core (or, at lane == ExecutorCores, the
// node's I/O lane) to its trace thread id. tid 0 is the driver lane.
func (c *Context) laneTid(node, lane int) int {
	return 1 + node*(c.conf.ExecutorCores+1) + lane
}

// nameTraceLanes registers the per-core and per-node-IO trace lane names
// (done once, on the first traced stage).
func (c *Context) nameTraceLanes() {
	cores := c.conf.ExecutorCores
	for n := 0; n < c.conf.Cluster.Nodes; n++ {
		for l := 0; l < cores; l++ {
			c.obsv.NameThread(c.pid, c.laneTid(n, l), fmt.Sprintf("node%d core%d", n, l))
		}
		c.obsv.NameThread(c.pid, c.laneTid(n, cores), fmt.Sprintf("node%d io", n))
	}
}

// stageSpec describes one stage execution for execStage.
type stageSpec struct {
	kind      StageKind
	shuffleID int
	parts     int
	phase     string
	// stageID < 0 allocates a fresh global stage ID; resubmitted recovery
	// stages pass their original map stage's ID instead (attempt > 0), so
	// planned stage numbering never shifts under faults.
	stageID int
	attempt int
	// splits maps task index → partition; nil means the identity (task i
	// computes partition i). Recovery stages pass only the lost
	// partitions.
	splits []int
}

// split returns the partition task index idx computes.
func (sp *stageSpec) split(idx int) int {
	if sp.splits != nil {
		return sp.splits[idx]
	}
	return idx
}

// runStage executes one full stage: `parts` tasks running `work`, really
// (in parallel goroutines) and virtually (through the cluster simulator).
// phase labels the stage for observability (the driver phase that built
// the stage's lineage).
func (c *Context) runStage(kind StageKind, shuffleID, parts int, phase string, work func(tc *TaskContext, split int)) {
	c.execStage(stageSpec{kind: kind, shuffleID: shuffleID, parts: parts, phase: phase, stageID: -1},
		func(tc *TaskContext, _, split int) { work(tc, split) })
}

// execStage is the stage driver behind runStage and the shuffle map /
// recovery paths. Before tasks launch it fires the fault plan's events
// scheduled for this stage; each task then runs with Spark-style retry
// semantics (placement off blacklisted executors, FetchFailed triggering
// parent-stage resubmission without consuming a task attempt); and after
// the real execution, straggler dilation and speculative execution shape
// the virtual tasks handed to the cluster simulator.
func (c *Context) execStage(spec stageSpec, work func(tc *TaskContext, idx, split int)) {
	stageID := spec.stageID
	if stageID < 0 {
		c.mu.Lock()
		stageID = c.nextStage
		c.nextStage++
		c.mu.Unlock()
	}
	crashed := c.fireStageFaults(stageID)
	asOf := c.Clock()
	spillNode := c.spillStragglerNode()
	spillFactors := c.spillDilationFactors()
	parts := spec.parts
	c.recordEvent(obs.Event{
		Clock: asOf.Seconds(), Type: obs.EvStageSubmit,
		Stage: stageID, Attempt: spec.attempt, Part: -1, Node: -1,
		Shuffle: spec.shuffleID,
		Detail:  fmt.Sprintf("%s tasks=%d phase=%s", spec.kind, parts, spec.phase),
	})

	tcs := make([]*TaskContext, parts)
	// runOne executes one task with Spark-style retries: an injected
	// fault or a panic fails the attempt and the task restarts from its
	// lineage on a freshly placed executor (charges of failed attempts
	// still cost virtual time, accumulated via lost). A FetchFailedError
	// indicts the parent map stage instead: the shuffle is recovered and
	// the fetch retried without consuming one of this task's attempts.
	runOne := func(idx int) {
		split := spec.split(idx)
		var lost simtime.Duration
		failures := 0
		for {
			select {
			case <-c.cancel:
				// Cooperative cancellation: abandon the task between
				// attempts; the recorded cause makes the next action (and
				// the driver loop's Err check) surface the cancellation.
				c.recordTaskErr(c.CancelCause())
				return
			default:
			}
			// On a shared Substrate each attempt holds one substrate-wide
			// task slot for its real execution only. Recovery and retry run
			// slot-free: recoverShuffle resubmits the parent map stage,
			// whose tasks need slots of their own, so holding one across it
			// would self-deadlock on a narrow substrate (one slot suffices
			// for any recovery depth this way). A cancelled wait abandons
			// the task; the cause surfaces through Err like a task failure.
			if !c.acquireSlot() {
				c.recordTaskErr(c.CancelCause())
				return
			}
			node := c.placeNode(split, asOf)
			if failures == 0 && crashed[c.nodeOf(split)] {
				// The executor dies under its running first attempts; the
				// retry re-places them (the node is now blacklisted).
				node = c.nodeOf(split)
			}
			tc := &TaskContext{
				StageID:   stageID,
				Partition: split,
				Node:      node,
				ctx:       c,
			}
			tcs[idx] = tc
			err := func() (err error) {
				defer func() {
					if p := recover(); p != nil {
						if ff, ok := p.(*FetchFailedError); ok {
							err = ff
							return
						}
						err = fmt.Errorf("rdd: task %d of stage %d failed (attempt %d): %v",
							split, stageID, failures+1, p)
					}
				}()
				if failures == 0 && crashed[node] {
					return fmt.Errorf("rdd: task %d of stage %d lost with executor %d",
						split, stageID, node)
				}
				if c.conf.FaultInjector != nil && c.conf.FaultInjector(stageID, split, failures) {
					c.rec.faultKills.Add(1)
					c.recm.injectTask.Inc()
					return fmt.Errorf("rdd: task %d of stage %d killed by fault injector (attempt %d)",
						split, stageID, failures+1)
				}
				work(tc, idx, split)
				return nil
			}()
			if err == nil {
				if factor := c.stragglerFactor(stageID, split); factor > 1 {
					extra := simtime.Duration(tc.compute.Seconds() * (factor - 1))
					tc.slowed = extra
					tc.compute += extra
					c.rec.stragglers.Add(1)
					c.recm.injectStraggler.Inc()
				}
				if spillNode >= 0 && tc.Node == spillNode && tc.compute > 0 {
					// Spill-aware scheduling: the memory-starved node's
					// tasks run dilated; the slowdown is recorded in
					// slowed, so speculation prices their healthy
					// duration and fires copies elsewhere.
					extra := simtime.Duration(tc.compute.Seconds() * (c.conf.SpillStraggler - 1))
					tc.slowed += extra
					tc.spillSlow = extra
					tc.compute += extra
					c.rec.spillStragglers.Add(1)
					c.recm.spillStragglers.Inc()
				}
				if tc.Node >= 0 && tc.Node < len(spillFactors) && spillFactors[tc.Node] > 1 && tc.compute > 0 {
					// Continuous spill-aware dilation: every node degrades
					// in proportion to its own staged backlog. Recorded in
					// slowed like the worst-node model, so speculation
					// still prices the healthy duration and fires copies.
					extra := simtime.Duration(tc.compute.Seconds() * (spillFactors[tc.Node] - 1))
					tc.slowed += extra
					tc.spillSlow += extra
					tc.compute += extra
					c.rec.spillStragglers.Add(1)
					c.recm.spillStragglers.Inc()
				}
				tc.compute += lost // failed attempts' work is not free
				c.releaseSlot()
				return
			}
			c.releaseSlot()
			lost += tc.compute
			var ff *FetchFailedError
			if ffe, ok := err.(*FetchFailedError); ok {
				ff = ffe
			}
			if ff != nil {
				c.rec.fetchFailures.Add(1)
				c.recm.fetchFailures.Inc()
				c.recordEvent(obs.Event{
					Clock: -1, Type: obs.EvFetchFailure,
					Stage: stageID, Attempt: spec.attempt, Part: split,
					Node: ff.Node, Shuffle: ff.ShuffleID,
				})
				if rerr := c.recoverShuffle(ff); rerr != nil {
					c.recordTaskErr(rerr)
					return
				}
				continue
			}
			failures++
			if failures >= c.conf.MaxTaskAttempts {
				c.recordTaskErr(err)
				return
			}
			c.rec.taskRetries.Add(1)
			c.recm.taskRetries.Inc()
			c.recordEvent(obs.Event{
				Clock: -1, Type: obs.EvTaskRetry,
				Stage: stageID, Attempt: spec.attempt, Part: split,
				Node: tc.Node, Shuffle: -1, Detail: err.Error(),
			})
		}
	}

	workers := c.conf.RealParallelism
	if workers > parts {
		workers = parts
	}
	if workers <= 1 {
		for idx := 0; idx < parts; idx++ {
			runOne(idx)
		}
	} else {
		var wg sync.WaitGroup
		idxs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range idxs {
					runOne(idx)
				}
			}()
		}
		for idx := 0; idx < parts; idx++ {
			idxs <- idx
		}
		close(idxs)
		wg.Wait()
	}

	var spill, fetch, shared int64
	tasks := make([]sim.Task, parts, parts+parts/4)
	for i, tc := range tcs {
		if tc == nil {
			// The task was abandoned before its first attempt (cancelled
			// mid-stage); model it as an empty task so the stage report
			// stays well-formed while Err carries the cause.
			tc = &TaskContext{StageID: stageID, Partition: spec.split(i), Node: c.nodeOf(spec.split(i)), ctx: c}
			tcs[i] = tc
		}
		spill += tc.spill
		fetch += tc.fetchLocal + tc.fetchRemote
		shared += tc.sharedRead + tc.sharedWrite
		tasks[i] = sim.Task{
			Node:        tc.Node,
			Compute:     tc.compute,
			Threads:     tc.Threads(),
			IdleThreads: tc.idleThreads,
			FetchLocal:  tc.fetchLocal,
			FetchRemote: tc.fetchRemote,
			Spill:       tc.spill,
			SharedRead:  tc.sharedRead,
			SharedWrite: tc.sharedWrite,
		}
	}
	if c.conf.Speculation {
		tasks = c.speculate(tcs, tasks, asOf)
	}
	rep := c.simul.RunStageReport(tasks)

	c.mu.Lock()
	c.bd.Compute += rep.Compute
	c.bd.Shuffle += rep.ShuffleIO
	c.bd.Broadcast += rep.SharedIO
	c.bd.Overhead += rep.Overhead
	if spec.attempt > 0 {
		c.bd.Recovery += rep.Total
	}
	c.bd.ShuffleWriteBytes += spill
	c.bd.ShuffleFetchBytes += fetch
	c.bd.BroadcastBytes += shared
	c.mu.Unlock()

	if cp := c.obsv.CritPath(); cp.Enabled() {
		// Per-node spill dilation, so the profiler can split the critical
		// branch's compute into healthy compute vs spill backpressure.
		spillSlow := make([]simtime.Duration, len(rep.NodeCompute))
		for _, tc := range tcs {
			if tc.spillSlow > 0 && tc.Node >= 0 && tc.Node < len(spillSlow) {
				spillSlow[tc.Node] += tc.spillSlow
			}
		}
		branches := make([]obs.CritBranch, 0, 4)
		for n := range rep.NodeCompute {
			comp, sh, sf := rep.NodeCompute[n], rep.NodeShuffleIO[n], rep.NodeSharedIO[n]
			if comp == 0 && sh == 0 && sf == 0 {
				continue
			}
			branches = append(branches, obs.CritBranch{
				Node: n, ShuffleIO: sh, SharedIO: sf, Compute: comp, Spill: spillSlow[n],
			})
		}
		cp.RecordStage(c.pid, obs.CritStage{
			Start: rep.Start, End: rep.Start + rep.Total,
			StageID: stageID, Attempt: spec.attempt,
			Kind: spec.kind.String(), Phase: spec.phase,
			Tasks: parts, Speculative: len(tasks) - parts,
			Branches: branches,
		})
	}
	c.recordEvent(obs.Event{
		Clock: (rep.Start + rep.Total).Seconds(), Type: obs.EvStageComplete,
		Stage: stageID, Attempt: spec.attempt, Part: -1, Node: -1,
		Shuffle: spec.shuffleID,
		Detail:  fmt.Sprintf("%s dur=%s tasks=%d", spec.kind, rep.Total, len(tasks)),
	})

	skew := 0.0
	if rep.MeanTask > 0 {
		skew = rep.MaxTask.Seconds() / rep.MeanTask.Seconds()
	}
	c.recordStageMetrics(spec.kind, spec.phase, parts, spill, fetch, skew, rep)
	if c.obsv.TraceEnabled() {
		c.emitStageSpans(spec.kind, spec.phase, stageID, spill, fetch, rep)
	}

	c.appendEvent(StageEvent{
		StageID:    stageID,
		Kind:       spec.kind,
		Attempt:    spec.attempt,
		Tasks:      parts,
		ShuffleID:  spec.shuffleID,
		Phase:      spec.phase,
		Start:      rep.Start,
		Duration:   rep.Total,
		SpillBytes: spill,
		FetchBytes: fetch,
		MaxTask:    rep.MaxTask,
		MeanTask:   rep.MeanTask,
	})
}

// spillStragglerNode implements spill-aware scheduling
// (Conf.SpillStraggler): before a stage launches, if the block store's
// cumulative spill wall time grew since the last check — real evidence
// the memory budget is forcing blocks to disk — the node holding the
// most staged shuffle bytes (newest materialized shuffle, ties to the
// lowest node) is modelled as memory-starved for this stage. Returns -1
// when the feature is off or no pressure was seen.
func (c *Context) spillStragglerNode() int {
	if c.conf.SpillStraggler <= 1 || c.store == nil {
		return -1
	}
	// Settle pending async spill writes so the pressure signal covers
	// everything the previous stages queued.
	c.store.Flush()
	sw := c.store.Stats().SpillWall
	c.mu.Lock()
	grew := sw > c.spillWallSeen
	if grew {
		c.spillWallSeen = sw
	}
	var st *shuffleState
	if grew {
		for i := len(c.shuffleLog) - 1; i >= 0 && st == nil; i-- {
			st = c.shuffles[c.shuffleLog[i]]
		}
	}
	c.mu.Unlock()
	if st == nil {
		return -1
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if !st.done || st.retired {
		return -1
	}
	node, best := -1, int64(0)
	for n, b := range st.spillByNode {
		if b > best {
			node, best = n, b
		}
	}
	return node
}

// spillDilationFactors implements continuous spill-aware dilation
// (Conf.SpillDilation): under the same fresh-spill-pressure trigger as
// spillStragglerNode, every node's dilation factor is
// 1 + SpillDilation × (its staged shuffle bytes across live shuffles /
// MemoryBudget) — proportional degradation instead of a single
// worst-node penalty. Returns nil when the feature is off or no new
// pressure was seen; entries ≤ 1 mean no dilation for that node.
func (c *Context) spillDilationFactors() []float64 {
	if c.conf.SpillDilation <= 0 || c.store == nil {
		return nil
	}
	c.store.Flush()
	sw := c.store.Stats().SpillWall
	c.mu.Lock()
	grew := sw > c.spillWallSeen
	if grew {
		c.spillWallSeen = sw
	}
	var live []*shuffleState
	if grew {
		live = make([]*shuffleState, 0, len(c.shuffleLog))
		for _, id := range c.shuffleLog {
			if st := c.shuffles[id]; st != nil {
				live = append(live, st)
			}
		}
	}
	c.mu.Unlock()
	if live == nil {
		return nil
	}
	backlog := make([]int64, c.conf.Cluster.Nodes)
	for _, st := range live {
		st.mu.RLock()
		if st.done && !st.retired {
			for n, b := range st.spillByNode {
				if n < len(backlog) {
					backlog[n] += b
				}
			}
		}
		st.mu.RUnlock()
	}
	factors := make([]float64, len(backlog))
	budget := float64(c.conf.MemoryBudget)
	for n, b := range backlog {
		factors[n] = 1 + c.conf.SpillDilation*float64(b)/budget
	}
	return factors
}

// speculate applies speculative execution to a stage's virtual tasks:
// tasks slower than SpeculationMultiplier × the SpeculationQuantile task
// duration get a copy on the next alive executor. The copy's healthy
// duration is the task's compute minus any injected straggler dilation
// (plus a task launch); whichever of original and copy finishes first
// wins, the loser is killed at that moment — so BOTH executors are
// charged the winner's duration, exactly Spark's first-result-wins with
// non-free losers.
func (c *Context) speculate(tcs []*TaskContext, tasks []sim.Task, asOf simtime.Duration) []sim.Task {
	if len(tcs) < 2 {
		return tasks
	}
	durs := make([]simtime.Duration, len(tcs))
	for i, tc := range tcs {
		durs[i] = tc.compute
	}
	sortDurations(durs)
	quantile := durs[int(c.conf.SpeculationQuantile*float64(len(durs)-1))]
	threshold := simtime.Duration(quantile.Seconds() * c.conf.SpeculationMultiplier)
	if threshold <= 0 {
		return tasks
	}
	for i, tc := range tcs {
		if tc.compute <= threshold {
			continue
		}
		// The copy needs a live executor other than the straggler's own;
		// without one (single-node cluster, or every other node
		// blacklisted) the task is left to finish where it runs. With rack
		// topology the scan prefers a node OFF the straggler's fault
		// domain — slowness indicts the domain (shared ToR/PDU, a rack-wide
		// GC of a noisy neighbour), so the copy must not share it — and
		// falls back to the plain ring scan when no such node is alive.
		nodes := c.conf.Cluster.Nodes
		copyNode := -1
		if cl := c.conf.Cluster; cl.Racks > 1 {
			home := cl.RackOf(tc.Node)
			for j := 1; j < nodes; j++ {
				if n := (tc.Node + j) % nodes; !c.nodeDown(n, asOf) && cl.RackOf(n) != home {
					copyNode = n
					break
				}
			}
		}
		if copyNode < 0 {
			for j := 1; j < nodes; j++ {
				if n := (tc.Node + j) % nodes; !c.nodeDown(n, asOf) {
					copyNode = n
					break
				}
			}
		}
		if copyNode < 0 {
			continue
		}
		healthy := tc.compute - tc.slowed + c.model.TaskOverhead()
		winner := simtime.Min(tc.compute, healthy)
		c.rec.specLaunched.Add(1)
		c.recm.specLaunched.Inc()
		if healthy < tc.compute {
			c.rec.specWins.Add(1)
			c.recm.specWins.Inc()
		}
		c.recordEvent(obs.Event{
			Clock: asOf.Seconds(), Type: obs.EvSpeculation,
			Stage: tc.StageID, Part: tc.Partition, Node: copyNode, Shuffle: -1,
			Detail: fmt.Sprintf("copy of node %d task (slowed %s)", tc.Node, tc.slowed),
		})
		tasks[i].Compute = winner
		// The copy re-runs the task's compute on another executor until
		// the winner finishes; its shuffle I/O stays with the original
		// (the copy's partial fetches are not separately modelled).
		tasks = append(tasks, sim.Task{
			Node:        copyNode,
			Compute:     winner,
			Threads:     tc.Threads(),
			IdleThreads: tc.idleThreads,
		})
	}
	return tasks
}

// sortDurations is an insertion sort (stage task counts are small and the
// hot path stays allocation-free).
func sortDurations(d []simtime.Duration) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// recordStageMetrics updates the always-on metric families for one
// executed stage.
func (c *Context) recordStageMetrics(kind StageKind, phase string, parts int, spill, fetch int64, skew float64, rep sim.StageReport) {
	m := c.stageMetricHandles(kind, phase)
	m.stages.Inc()
	m.tasks.Add(int64(parts))
	m.write.Add(spill)
	m.fetch.Add(fetch)
	for _, ts := range rep.Tasks {
		m.taskSeconds.Observe(ts.Raw.Seconds())
	}
	if skew > 0 {
		m.skewHist.Observe(skew)
		m.skewGauge.SetMax(skew)
	}
}

// stageMetricHandles resolves (and caches) the stage-metric handles for
// one (kind, phase) combination.
func (c *Context) stageMetricHandles(kind StageKind, phase string) *stageMetricHandles {
	key := stageMetricsKey{kind: kind, phase: phase}
	if m, ok := c.stageMetrics.Load(key); ok {
		return m.(*stageMetricHandles)
	}
	reg := c.obsv.Metrics()
	kl := obs.Labels{"kind": kind.String(), "phase": phase}
	m := &stageMetricHandles{
		stages:      reg.Counter("dpspark_stages_total", kl),
		tasks:       reg.Counter("dpspark_tasks_total", kl),
		write:       reg.Counter("dpspark_shuffle_write_bytes_total", kl),
		fetch:       reg.Counter("dpspark_shuffle_fetch_bytes_total", kl),
		taskSeconds: reg.Histogram("dpspark_task_seconds", obs.Labels{"kind": kind.String()}, taskSecondsBuckets),
		skewHist:    reg.Histogram("dpspark_stage_skew", nil, stageSkewBuckets),
		skewGauge:   reg.Gauge("dpspark_max_task_skew", nil),
	}
	actual, _ := c.stageMetrics.LoadOrStore(key, m)
	return actual.(*stageMetricHandles)
}

// Bucket layouts for the stage metric histograms: task durations span
// ~100 µs kernels to multi-minute stragglers; skew is MaxTask/MeanTask
// so it starts at 1 (perfect balance).
var (
	taskSecondsBuckets = obs.ExpBuckets(1e-4, 2, 24)
	stageSkewBuckets   = obs.LinearBuckets(1, 0.25, 24)
)

// emitStageSpans renders one stage into trace spans: a stage span on the
// driver lane, an I/O span per active node, and one span per task on its
// executor-core lane.
func (c *Context) emitStageSpans(kind StageKind, phase string, stageID int, spill, fetch int64, rep sim.StageReport) {
	c.laneNames.Do(c.nameTraceLanes)
	cat := "stage"
	if phase != "" {
		cat = "stage," + phase
	}
	c.obsv.Add(obs.Span{
		Name: fmt.Sprintf("stage %d %s", stageID, kind), Cat: cat,
		Pid: c.pid, Tid: 0, Start: rep.Start, Dur: rep.Total,
		Args: map[string]string{
			"phase": phase,
			"tasks": fmt.Sprint(len(rep.Tasks)),
			"spill": fmt.Sprintf("%dB", spill),
			"fetch": fmt.Sprintf("%dB", fetch),
		},
	})
	for n, io := range rep.NodeIO {
		if io > 0 {
			c.obsv.Add(obs.Span{
				Name: fmt.Sprintf("io stage %d", stageID), Cat: "io",
				Pid: c.pid, Tid: c.laneTid(n, c.conf.ExecutorCores),
				Start: rep.Start, Dur: io,
			})
		}
	}
	for _, ts := range rep.Tasks {
		if ts.Dur <= 0 {
			continue
		}
		c.obsv.Add(obs.Span{
			Name: fmt.Sprintf("task %d.%d", stageID, ts.Index), Cat: "task",
			Pid: c.pid, Tid: c.laneTid(ts.Node, ts.Lane),
			Start: rep.Start + ts.Start, Dur: ts.Dur,
			Args: map[string]string{"raw": ts.Raw.String()},
		})
	}
}

// ensureUpstream materializes every shuffle the dataset's lineage needs,
// parents first. Traversal stops at fully cached datasets and at already
// materialized shuffles — exactly Spark's stage-skipping behaviour.
func (c *Context) ensureUpstream(ds *dataset, visited map[*dataset]bool) {
	if visited[ds] {
		return
	}
	visited[ds] = true
	if ds.fullyCached() {
		return
	}
	if ds.shuffle != nil {
		sd := ds.shuffle
		c.mu.Lock()
		st := c.shuffles[sd.id]
		c.mu.Unlock()
		if st != nil && st.isDone() {
			return
		}
		c.ensureUpstream(sd.parent, visited)
		c.runMapStage(sd)
		return
	}
	for _, p := range ds.deps {
		c.ensureUpstream(p, visited)
	}
}

// runJob computes every partition of ds and returns the records.
func (c *Context) runJob(ds *dataset) [][]Record {
	c.AdvanceDriver(c.model.JobOverhead(), simtime.Overhead)
	c.ensureUpstream(ds, make(map[*dataset]bool))
	out := make([][]Record, ds.parts)
	c.runStage(StageResult, -1, ds.parts, c.CurrentPhase(), func(tc *TaskContext, split int) {
		out[split] = c.iterate(ds, split, tc)
	})
	return out
}
