package rdd

import (
	"fmt"
	"runtime"
	"sync"

	"dpspark/internal/cluster"
	"dpspark/internal/costmodel"
	"dpspark/internal/sim"
	"dpspark/internal/simtime"
)

// Conf configures an engine context — the spark-submit settings of the
// paper's experiments.
type Conf struct {
	// Cluster describes the (simulated) hardware. Required.
	Cluster *cluster.Cluster
	// Params overrides the cost-model calibration; nil uses defaults.
	Params *costmodel.Params
	// ExecutorCores is the number of concurrent task slots per executor
	// (spark.executor.cores). Default: all physical cores per node.
	ExecutorCores int
	// RealParallelism bounds the goroutines that actually execute tasks
	// in this process. Default: runtime.NumCPU().
	RealParallelism int
	// Sizer prices records for traffic accounting. Default: DefaultSizer.
	Sizer Sizer
	// KeepShuffles is how many most-recent shuffles stay staged before
	// the engine emulates Spark's shuffle cleanup (old generations are
	// deleted from the local disks). Default: 8.
	KeepShuffles int
	// FaultInjector, when set, is consulted before each task attempt;
	// returning true makes that attempt fail (for resilience testing).
	// Failed tasks are retried like Spark's, up to MaxTaskAttempts.
	FaultInjector func(stageID, partition, attempt int) bool
	// MaxTaskAttempts bounds task retries (default 4, Spark's
	// spark.task.maxFailures).
	MaxTaskAttempts int
}

// Context is the engine's driver: it owns the lineage graph, the shuffle
// store, the virtual clock and the failure state. It corresponds to a
// SparkContext.
type Context struct {
	conf  Conf
	model *costmodel.Model
	simul *sim.Sim
	sizer Sizer

	mu          sync.Mutex
	nextDataset int
	nextShuffle int
	nextStage   int
	shuffles    map[int]*shuffleState
	shuffleLog  []int
	memUsed     []int64
	memErr      error
	taskErr     error
	events      []StageEvent
}

// shuffleState is a materialized shuffle, indexed by reduce partition.
type shuffleState struct {
	dep         *shuffleDep
	byReduce    [][]bucketRef
	spillByNode []int64
	done        bool
	retired     bool
}

// NewContext creates an engine context.
func NewContext(conf Conf) *Context {
	if conf.Cluster == nil {
		panic("rdd: Conf.Cluster is required")
	}
	if conf.ExecutorCores <= 0 {
		conf.ExecutorCores = conf.Cluster.Node.Cores
	}
	if conf.RealParallelism <= 0 {
		conf.RealParallelism = runtime.NumCPU()
	}
	if conf.Sizer == nil {
		conf.Sizer = DefaultSizer
	}
	if conf.KeepShuffles <= 0 {
		conf.KeepShuffles = 8
	}
	if conf.MaxTaskAttempts <= 0 {
		conf.MaxTaskAttempts = 4
	}
	m := costmodel.New(conf.Cluster)
	if conf.Params != nil {
		m.P = *conf.Params
	}
	return &Context{
		conf:     conf,
		model:    m,
		simul:    sim.New(m, conf.ExecutorCores),
		sizer:    conf.Sizer,
		shuffles: make(map[int]*shuffleState),
		memUsed:  make([]int64, conf.Cluster.Nodes),
	}
}

// Model returns the cost model (map functions price kernels against it).
func (c *Context) Model() *costmodel.Model { return c.model }

// Cluster returns the cluster spec.
func (c *Context) Cluster() *cluster.Cluster { return c.conf.Cluster }

// ExecutorCores returns the per-executor task-slot setting.
func (c *Context) ExecutorCores() int { return c.conf.ExecutorCores }

// Clock returns the job's virtual time so far.
func (c *Context) Clock() simtime.Duration { return c.simul.Clock }

// Ledger returns the virtual resource-time ledger.
func (c *Context) Ledger() *simtime.Ledger { return c.simul.Ledger }

// TimedOut reports whether the virtual clock passed the 8-hour bound.
func (c *Context) TimedOut() bool { return c.simul.TimedOut() }

// Err returns the first failure (staging disk full, executor memory
// exceeded), if any.
func (c *Context) Err() error {
	c.mu.Lock()
	memErr, taskErr := c.memErr, c.taskErr
	c.mu.Unlock()
	if taskErr != nil {
		return taskErr
	}
	if memErr != nil {
		return memErr
	}
	return c.simul.Err()
}

// recordTaskErr keeps the first task failure for the next action to
// surface.
func (c *Context) recordTaskErr(err error) {
	c.mu.Lock()
	if c.taskErr == nil {
		c.taskErr = err
	}
	c.mu.Unlock()
}

// AdvanceDriver charges driver-side virtual time (used by broadcast and
// the drivers' per-iteration bookkeeping).
func (c *Context) AdvanceDriver(d simtime.Duration, cat simtime.Category) {
	c.simul.AdvanceDriver(d, cat)
}

// nodeOf places a partition on an executor.
func (c *Context) nodeOf(split int) int {
	n := split % c.conf.Cluster.Nodes
	if n < 0 {
		n += c.conf.Cluster.Nodes
	}
	return n
}

// chargeCacheMemory accounts cached records against executor memory.
func (c *Context) chargeCacheMemory(node int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memUsed[node] += bytes
	if c.memErr == nil && c.memUsed[node] > c.conf.Cluster.ExecutorMemBytes {
		c.memErr = fmt.Errorf("rdd: executor memory exceeded on node %d: %d cached bytes > %d budget",
			node, c.memUsed[node], c.conf.Cluster.ExecutorMemBytes)
	}
}

// releaseCacheMemory returns cached bytes to the executor budget.
func (c *Context) releaseCacheMemory(node int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memUsed[node] -= bytes
	if c.memUsed[node] < 0 {
		c.memUsed[node] = 0
	}
}

// runStage executes one stage: `parts` tasks running `work`, really (in
// parallel goroutines) and virtually (through the cluster simulator).
func (c *Context) runStage(kind StageKind, shuffleID, parts int, work func(tc *TaskContext, split int)) {
	c.mu.Lock()
	stageID := c.nextStage
	c.nextStage++
	c.mu.Unlock()

	tcs := make([]*TaskContext, parts)
	// runOne executes one task with Spark-style retries: an injected
	// fault or a panic fails the attempt; the task restarts from its
	// lineage (a fresh TaskContext — charges of failed attempts still
	// cost virtual time, accumulated via lostCompute).
	runOne := func(split int) {
		var lost simtime.Duration
		for attempt := 0; attempt < c.conf.MaxTaskAttempts; attempt++ {
			tc := &TaskContext{
				StageID:   stageID,
				Partition: split,
				Node:      c.nodeOf(split),
				ctx:       c,
			}
			tcs[split] = tc
			err := func() (err error) {
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("rdd: task %d of stage %d failed (attempt %d): %v",
							split, stageID, attempt+1, p)
					}
				}()
				if c.conf.FaultInjector != nil && c.conf.FaultInjector(stageID, split, attempt) {
					return fmt.Errorf("rdd: task %d of stage %d killed by fault injector (attempt %d)",
						split, stageID, attempt+1)
				}
				work(tc, split)
				return nil
			}()
			if err == nil {
				tc.compute += lost // failed attempts' work is not free
				return
			}
			lost += tc.compute
			if attempt == c.conf.MaxTaskAttempts-1 {
				c.recordTaskErr(err)
			}
		}
	}

	workers := c.conf.RealParallelism
	if workers > parts {
		workers = parts
	}
	if workers <= 1 {
		for split := 0; split < parts; split++ {
			runOne(split)
		}
	} else {
		var wg sync.WaitGroup
		splits := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for split := range splits {
					runOne(split)
				}
			}()
		}
		for split := 0; split < parts; split++ {
			splits <- split
		}
		close(splits)
		wg.Wait()
	}

	start := c.simul.Clock
	var spill, fetch int64
	tasks := make([]sim.Task, parts)
	for i, tc := range tcs {
		spill += tc.spill
		fetch += tc.fetchLocal + tc.fetchRemote
		tasks[i] = sim.Task{
			Node:        tc.Node,
			Compute:     tc.compute,
			Threads:     tc.Threads(),
			IdleThreads: tc.idleThreads,
			FetchLocal:  tc.fetchLocal,
			FetchRemote: tc.fetchRemote,
			Spill:       tc.spill,
			SharedRead:  tc.sharedRead,
			SharedWrite: tc.sharedWrite,
		}
	}
	dur := c.simul.RunStage(tasks)
	c.appendEvent(StageEvent{
		StageID:    stageID,
		Kind:       kind,
		Tasks:      parts,
		ShuffleID:  shuffleID,
		Start:      start,
		Duration:   dur,
		SpillBytes: spill,
		FetchBytes: fetch,
	})
}

// ensureUpstream materializes every shuffle the dataset's lineage needs,
// parents first. Traversal stops at fully cached datasets and at already
// materialized shuffles — exactly Spark's stage-skipping behaviour.
func (c *Context) ensureUpstream(ds *dataset, visited map[*dataset]bool) {
	if visited[ds] {
		return
	}
	visited[ds] = true
	if ds.fullyCached() {
		return
	}
	if ds.shuffle != nil {
		sd := ds.shuffle
		c.mu.Lock()
		st := c.shuffles[sd.id]
		c.mu.Unlock()
		if st != nil && st.done {
			return
		}
		c.ensureUpstream(sd.parent, visited)
		c.runMapStage(sd)
		return
	}
	for _, p := range ds.deps {
		c.ensureUpstream(p, visited)
	}
}

// runJob computes every partition of ds and returns the records.
func (c *Context) runJob(ds *dataset) [][]Record {
	c.simul.AdvanceDriver(c.model.JobOverhead(), simtime.Overhead)
	c.ensureUpstream(ds, make(map[*dataset]bool))
	out := make([][]Record, ds.parts)
	c.runStage(StageResult, -1, ds.parts, func(tc *TaskContext, split int) {
		out[split] = c.iterate(ds, split, tc)
	})
	return out
}
