package rdd

import (
	"fmt"
	"sync"
)

// Record is the engine's untyped record; the generic RDD[T] layer wraps it.
type Record = any

// keyedRecord is a shuffled record: extracted key plus payload (the raw
// value for PartitionBy, a combiner for CombineByKey). Non-combining
// shuffles also set rec, the original typed record: the engine stages
// pointers rather than serialized bytes, so the reduce side hands the
// record straight through instead of re-boxing a rebuilt pair per record.
type keyedRecord struct {
	key any
	val any
	rec Record
}

// dataset is the untyped lineage node behind every RDD[T]. Exactly one of
// source, narrow or shuffle is set:
//
//   - source: driver-parallelized records, pre-split into partitions;
//   - narrow: computed per-partition from parent datasets without data
//     movement (map, filter, flatMap, mapPartitions, union);
//   - shuffle: read from a shuffle's reduce-side buckets (the output of
//     PartitionBy / CombineByKey — a wide dependency).
type dataset struct {
	ctx   *Context
	id    int
	name  string
	parts int
	// part is the dataset's partitioner, nil if unknown. Narrow
	// transformations that cannot change keys preserve it (filter,
	// mapValues, partitioner-aware union); map/flatMap clear it.
	part Partitioner

	source  [][]Record
	narrow  func(tc *TaskContext, split int) []Record
	shuffle *shuffleDep

	// deps are narrow parents (stage building walks through them).
	deps []*dataset

	cacheOn bool
	mu      sync.Mutex
	cached  map[int][]Record
}

// shuffleDep is a wide dependency: the parent's records are keyed,
// optionally map-side combined, partitioned by part and staged; the child
// reads the reduce-side buckets.
type shuffleDep struct {
	id     int
	parent *dataset
	part   Partitioner
	// phase is the driver phase active when the dependency was created;
	// the lazily-run map stage is attributed to it.
	phase string
	// rebuild turns (key, payload) back into a typed record.
	rebuild func(key, val any) Record
	// Combiner hooks; nil for plain PartitionBy.
	create     func(v any) any
	mergeValue func(c, v any) any
	mergeComb  func(a, b any) any
}

func (sd *shuffleDep) combining() bool { return sd.create != nil }

// newDataset registers a lineage node with the context.
func (c *Context) newDataset(name string, parts int, part Partitioner) *dataset {
	if parts < 1 {
		panic(fmt.Sprintf("rdd: dataset %q needs ≥1 partitions", name))
	}
	c.mu.Lock()
	id := c.nextDataset
	c.nextDataset++
	c.mu.Unlock()
	return &dataset{ctx: c, id: id, name: name, parts: parts, part: part}
}

// iterate computes one partition of the dataset within a running task.
func (c *Context) iterate(ds *dataset, split int, tc *TaskContext) []Record {
	if split < 0 || split >= ds.parts {
		panic(fmt.Sprintf("rdd: partition %d outside dataset %q (%d partitions)", split, ds.name, ds.parts))
	}
	if ds.cacheOn {
		ds.mu.Lock()
		recs, ok := ds.cached[split]
		ds.mu.Unlock()
		if ok {
			return recs
		}
	}
	var recs []Record
	switch {
	case ds.source != nil:
		recs = ds.source[split]
	case ds.shuffle != nil:
		recs = c.readShuffle(ds.shuffle, split, tc)
	case ds.narrow != nil:
		recs = ds.narrow(tc, split)
	default:
		panic(fmt.Sprintf("rdd: dataset %q has no compute", ds.name))
	}
	if ds.cacheOn {
		var bytes int64
		for _, r := range recs {
			bytes += c.sizer(r)
		}
		ds.mu.Lock()
		_, dup := ds.cached[split]
		if !dup {
			ds.cached[split] = recs
		}
		ds.mu.Unlock()
		if !dup {
			c.chargeCacheMemory(c.nodeOf(split), bytes)
		}
	}
	return recs
}

// fullyCached reports whether every partition is materialized in cache.
func (ds *dataset) fullyCached() bool {
	if !ds.cacheOn {
		return false
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return len(ds.cached) == ds.parts
}
