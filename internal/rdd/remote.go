package rdd

import (
	"fmt"

	"dpspark/internal/obs"
	"dpspark/internal/simtime"
)

// Restore-before-recompute: when a reduce-side fetch hits a lost map
// output, recovery first tries to repair the lost partition's staged
// blocks from intact remote replicas (Conf.RemoteDir) and only falls
// back to the PR 3 partial map-recompute when that cannot work — the
// replica is missing or corrupt, the tier is inside an outage window,
// or the simulated restore reads exhaust their timeout/retry budget.
// Restored bytes are bit-identical to recomputed ones (the recompute is
// deterministic), so the two paths differ only in stats and clock.
//
// Determinism of the *decision*: fireStageFaults flushes the
// replication queue at every stage boundary while the tier is up, so
// the replica set at any fault is exactly "every block staged before
// the last up-tier stage boundary" — a function of the plan and the
// data, never of background-writer timing.

// corruptRemoteReplica fires one RemoteCorruption event: pending
// replication is flushed (the victim set must be the full deterministic
// replica set), then among the newest shuffle generation with replicas
// the event's Block index (mod the sorted key count) selects the
// victim. No-op without an attached remote tier or with no replicas.
func (c *Context) corruptRemoteReplica(ev RemoteCorruption) {
	if c.store == nil || !c.store.RemoteAttached() {
		return
	}
	c.store.FlushReplication()
	c.mu.Lock()
	log := append([]int(nil), c.shuffleLog...)
	c.mu.Unlock()
	for i := len(log) - 1; i >= 0; i-- {
		keys := c.store.RemoteKeys(shufflePrefix(log[i]))
		if len(keys) == 0 {
			continue
		}
		if c.store.CorruptRemote(keys[ev.Block%len(keys)], ev.Torn) {
			c.rec.remoteCorrupts.Add(1)
			c.recm.injectRemoteCorrupt.Inc()
		}
		return
	}
}

// restorableBlock is one staged block a lost map partition needs back,
// with its sizer-priced payload (what the simulated restore read costs).
type restorableBlock struct {
	key   string
	bytes int64
}

// tryRemoteRestore attempts to repair the lost map partitions from
// remote replicas, returning the (sorted) subset it fully restored —
// recoverShuffle recomputes only the rest. A partition is restorable
// only if every one of its contributions was durably staged (stored
// refs); partitions with in-memory buckets died with their executor and
// must be recomputed. Within a restorable partition every block must
// come back intact — a single missing/corrupt/timed-out replica fails
// the partition over to recompute (partial restores are harmless: the
// recompute's fresh staging overwrites them).
func (c *Context) tryRemoteRestore(st *shuffleState, lost []int) []int {
	if c.store == nil || !c.store.RemoteAvailable() || len(lost) == 0 {
		return nil
	}
	restorable := make(map[int]bool, len(lost))
	wasLost := make(map[int]bool, len(lost))
	blocksByPart := make(map[int][]restorableBlock, len(lost))
	spillByPart := make(map[int]int64, len(lost))
	st.mu.RLock()
	for _, p := range lost {
		restorable[p] = true
		// A corrupt-block partition (indicted by checksum, not executor
		// loss) keeps its map node and disk accounting — restore only
		// repairs the damaged file; a truly lost partition was released
		// by loseNodeOutputs and must be re-homed on success.
		wasLost[p] = st.lost[p]
		spillByPart[p] = st.spillByMap[p]
	}
	for _, refs := range st.byReduce {
		for _, ref := range refs {
			if !restorable[ref.mapPart] {
				continue
			}
			if !ref.stored {
				restorable[ref.mapPart] = false
				delete(blocksByPart, ref.mapPart)
				continue
			}
			blocksByPart[ref.mapPart] = append(blocksByPart[ref.mapPart], restorableBlock{ref.key, ref.bytes})
		}
	}
	st.mu.RUnlock()

	var restored []int
	for _, p := range lost {
		blocks := blocksByPart[p]
		if !restorable[p] || len(blocks) == 0 {
			continue
		}
		ok := true
		for _, b := range blocks {
			if !c.restoreBlock(b.key, b.bytes) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if wasLost[p] {
			node := c.placeNode(p, c.Clock())
			st.mu.Lock()
			st.mapNode[p] = node
			st.spillByNode[node] += spillByPart[p]
			st.mu.Unlock()
			c.simul.AcquireShuffle(node, spillByPart[p])
		}
		restored = append(restored, p)
		c.rec.restoredBlocks.Add(int64(len(blocks)))
		c.recordEvent(obs.Event{
			Clock: -1, Type: obs.EvRestore,
			Stage: -1, Part: p, Node: -1, Shuffle: st.dep.id,
			Detail: fmt.Sprintf("restored %d staged blocks from remote replicas", len(blocks)),
		})
	}
	return restored
}

// restoreBlock fetches one replica back into the local store, charging
// the simulated shared-storage read (dilated by any active RemoteSlow
// window) with per-operation timeout and exponentially backed-off
// retries. False means recovery must recompute: the replica is missing
// or corrupt (retrying cannot help), the tier went down, or the retry
// budget ran out against a persistent slowdown.
func (c *Context) restoreBlock(key string, bytes int64) bool {
	factor := c.remoteSlowFactor()
	backoff := c.conf.RemoteBackoff
	for attempt := 0; attempt <= c.conf.RemoteMaxRetries; attempt++ {
		if attempt > 0 {
			c.chargeRestore(backoff)
			backoff *= 2
			c.rec.remoteRetries.Add(1)
			c.recm.remoteRetries.Inc()
		}
		cost := simtime.Duration(c.model.SharedReadTime(bytes).Seconds() * factor)
		if cost > c.conf.RemoteOpTimeout {
			// The dilated read would blow the per-op deadline: the run
			// pays the timeout, not the full read, and retries.
			c.chargeRestore(c.conf.RemoteOpTimeout)
			continue
		}
		c.chargeRestore(cost)
		if !c.store.RemoteAvailable() {
			return false
		}
		if _, err := c.store.RestoreFromRemote(key); err != nil {
			return false
		}
		return true
	}
	return false
}

// chargeRestore advances the driver clock for a simulated remote
// operation, attributed as shared-storage traffic and mirrored into the
// Recovery overlap (restore time IS failure-repair time).
func (c *Context) chargeRestore(d simtime.Duration) {
	c.advanceDriver(d, simtime.SharedFS, obs.PhaseRecovery)
	c.mu.Lock()
	c.bd.Recovery += d
	c.mu.Unlock()
}

// subtractSorted returns the elements of sorted a not present in sorted b.
func subtractSorted(a, b []int) []int {
	var out []int
	i := 0
	for _, v := range a {
		for i < len(b) && b[i] < v {
			i++
		}
		if i < len(b) && b[i] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}
