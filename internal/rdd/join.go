package rdd

// CoGrouped holds the grouped values of both sides for one key.
type CoGrouped[V, W any] struct {
	Left  []V
	Right []W
}

// either carries one side's value through the common shuffle.
type either[V, W any] struct {
	left    V
	right   W
	isRight bool
}

// CoGroup groups two pair RDDs by key: for every key present in either
// input, the result holds all left values and all right values. Built
// from union + combineByKey, so co-partitioned inputs group without a
// shuffle.
func CoGroup[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]], part Partitioner) *RDD[Pair[K, CoGrouped[V, W]]] {
	ae := Map(a, func(_ *TaskContext, p Pair[K, V]) Pair[K, either[V, W]] {
		return KV(p.Key, either[V, W]{left: p.Value})
	})
	be := Map(b, func(_ *TaskContext, p Pair[K, W]) Pair[K, either[V, W]] {
		return KV(p.Key, either[V, W]{right: p.Value, isRight: true})
	})
	merged := ae.Union(be)
	return CombineByKey(merged,
		func(e either[V, W]) CoGrouped[V, W] {
			return CoGrouped[V, W]{}.add(e)
		},
		func(g CoGrouped[V, W], e either[V, W]) CoGrouped[V, W] {
			return g.add(e)
		},
		func(x, y CoGrouped[V, W]) CoGrouped[V, W] {
			x.Left = append(x.Left, y.Left...)
			x.Right = append(x.Right, y.Right...)
			return x
		},
		part)
}

func (g CoGrouped[V, W]) add(e either[V, W]) CoGrouped[V, W] {
	if e.isRight {
		g.Right = append(g.Right, e.right)
	} else {
		g.Left = append(g.Left, e.left)
	}
	return g
}

// Joined is one inner-join match.
type Joined[V, W any] struct {
	Left  V
	Right W
}

// Join inner-joins two pair RDDs on key (the cross product of matching
// values per key).
func Join[K comparable, V, W any](a *RDD[Pair[K, V]], b *RDD[Pair[K, W]], part Partitioner) *RDD[Pair[K, Joined[V, W]]] {
	return FlatMap(CoGroup(a, b, part),
		func(_ *TaskContext, p Pair[K, CoGrouped[V, W]]) []Pair[K, Joined[V, W]] {
			if len(p.Value.Left) == 0 || len(p.Value.Right) == 0 {
				return nil
			}
			out := make([]Pair[K, Joined[V, W]], 0, len(p.Value.Left)*len(p.Value.Right))
			for _, l := range p.Value.Left {
				for _, r := range p.Value.Right {
					out = append(out, KV(p.Key, Joined[V, W]{Left: l, Right: r}))
				}
			}
			return out
		})
}
