package rdd

import (
	"sort"
	"sync/atomic"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/matrix"
	"dpspark/internal/simtime"
)

func testCtx() *Context {
	return NewContext(Conf{Cluster: cluster.Local(4), RealParallelism: 4})
}

func clusterCtx() *Context {
	return NewContext(Conf{Cluster: cluster.Skylake16()})
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sortedCollect[T any](t *testing.T, r *RDD[T], less func(a, b T) bool) []T {
	t.Helper()
	recs, err := r.Collect()
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	sort.Slice(recs, func(i, j int) bool { return less(recs[i], recs[j]) })
	return recs
}

func TestParallelizeCollect(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(100), 7)
	if r.NumPartitions() != 7 {
		t.Fatalf("parts = %d", r.NumPartitions())
	}
	got := sortedCollect(t, r, func(a, b int) bool { return a < b })
	if len(got) != 100 || got[0] != 0 || got[99] != 99 {
		t.Fatalf("collect = %v...", got[:5])
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, ints(20), 4)
	sq := Map(r, func(_ *TaskContext, x int) int { return x * x })
	even := sq.Filter(func(x int) bool { return x%2 == 0 })
	dup := FlatMap(even, func(_ *TaskContext, x int) []int { return []int{x, x} })
	got := sortedCollect(t, dup, func(a, b int) bool { return a < b })
	if len(got) != 20 { // 10 even squares, duplicated
		t.Fatalf("len = %d", len(got))
	}
	if got[0] != 0 || got[1] != 0 || got[19] != 324 {
		t.Fatalf("got = %v", got)
	}
}

func TestMapPartitionsPreservesPartitioner(t *testing.T) {
	ctx := testCtx()
	part := NewHashPartitioner(5)
	pairs := make([]Pair[int, int], 30)
	for i := range pairs {
		pairs[i] = KV(i, i)
	}
	r := ParallelizePairs(ctx, pairs, part)
	mp := MapPartitions(r, func(_ *TaskContext, recs []Pair[int, int]) []Pair[int, int] {
		out := make([]Pair[int, int], len(recs))
		for i, p := range recs {
			out[i] = KV(p.Key, p.Value*10)
		}
		return out
	}, true)
	if mp.Partitioner() == nil || !mp.Partitioner().Equal(part) {
		t.Fatal("preservesPartitioning must keep the partitioner")
	}
	lost := MapPartitions(r, func(_ *TaskContext, recs []Pair[int, int]) []Pair[int, int] { return recs }, false)
	if lost.Partitioner() != nil {
		t.Fatal("partitioner must be dropped without the flag")
	}
}

func TestCountAndCollectMap(t *testing.T) {
	ctx := testCtx()
	pairs := []Pair[string, int]{KV("a", 1), KV("b", 2), KV("a", 3)}
	r := Parallelize(ctx, pairs, 2)
	n, err := r.Count()
	if err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
	m, err := CollectMap(ReduceByKey(r, func(a, b int) int { return a + b }, NewHashPartitioner(2)))
	if err != nil {
		t.Fatal(err)
	}
	if m["a"] != 4 || m["b"] != 2 {
		t.Fatalf("reduceByKey map = %v", m)
	}
}

func TestPartitionByPlacesByKey(t *testing.T) {
	ctx := testCtx()
	part := NewHashPartitioner(4)
	var pairs []Pair[int, string]
	for i := 0; i < 40; i++ {
		pairs = append(pairs, KV(i, "v"))
	}
	r := Parallelize(ctx, pairs, 3) // no partitioner
	if r.Partitioner() != nil {
		t.Fatal("fresh parallelize must have no partitioner")
	}
	pb := PartitionBy(r, part)
	if pb.NumPartitions() != 4 || !pb.Partitioner().Equal(part) {
		t.Fatal("partitionBy metadata wrong")
	}
	// Records must land in the partitioner-assigned partition: verify via
	// mapPartitions that observes its split.
	ok := MapPartitions(pb, func(tc *TaskContext, recs []Pair[int, string]) []bool {
		for _, rec := range recs {
			if part.Partition(rec.Key) != tc.Partition {
				return []bool{false}
			}
		}
		return []bool{true}
	}, false)
	got, err := ok.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if !b {
			t.Fatal("record in wrong partition after partitionBy")
		}
	}
}

func TestPartitionByNoOpWhenCoPartitioned(t *testing.T) {
	ctx := testCtx()
	part := NewHashPartitioner(4)
	r := ParallelizePairs(ctx, []Pair[int, int]{KV(1, 1), KV(2, 2)}, part)
	shufflesBefore := ctx.nextShuffle
	pb := PartitionBy(r, NewHashPartitioner(4))
	if pb != r {
		t.Fatal("partitionBy with equal partitioner must be the identity")
	}
	if ctx.nextShuffle != shufflesBefore {
		t.Fatal("no shuffle may be registered")
	}
}

func TestCombineByKeyWideAndNarrow(t *testing.T) {
	ctx := testCtx()
	part := NewHashPartitioner(3)
	var pairs []Pair[int, int]
	for i := 0; i < 30; i++ {
		pairs = append(pairs, KV(i%5, 1))
	}

	// Wide: input not co-partitioned.
	wide := Parallelize(ctx, pairs, 4)
	sums := CombineByKey(wide,
		func(v int) int { return v },
		func(c, v int) int { return c + v },
		func(a, b int) int { return a + b },
		part)
	m, err := CollectMap(sums)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if m[k] != 6 {
			t.Fatalf("wide combine: m[%d] = %d", k, m[k])
		}
	}

	// Narrow: co-partitioned input must not create a shuffle.
	coparted := ParallelizePairs(ctx, pairs, part)
	before := ctx.nextShuffle
	sums2 := CombineByKey(coparted,
		func(v int) int { return v },
		func(c, v int) int { return c + v },
		func(a, b int) int { return a + b },
		part)
	if ctx.nextShuffle != before {
		t.Fatal("co-partitioned combineByKey must be narrow")
	}
	m2, err := CollectMap(sums2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if m2[k] != 6 {
			t.Fatalf("narrow combine: m[%d] = %d", k, m2[k])
		}
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := testCtx()
	pairs := []Pair[string, int]{KV("x", 1), KV("y", 2), KV("x", 3)}
	g, err := CollectMap(GroupByKey(Parallelize(ctx, pairs, 2), NewHashPartitioner(2)))
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(g["x"])
	if len(g["x"]) != 2 || g["x"][0] != 1 || g["x"][1] != 3 || len(g["y"]) != 1 {
		t.Fatalf("groupByKey = %v", g)
	}
}

func TestUnionPartitionerAware(t *testing.T) {
	ctx := testCtx()
	part := NewHashPartitioner(4)
	a := ParallelizePairs(ctx, []Pair[int, int]{KV(1, 1)}, part)
	b := ParallelizePairs(ctx, []Pair[int, int]{KV(2, 2)}, part)
	u := a.Union(b)
	if u.NumPartitions() != 4 || u.Partitioner() == nil {
		t.Fatal("co-partitioned union must stay partitioner-aware")
	}
	recs, err := u.Collect()
	if err != nil || len(recs) != 2 {
		t.Fatalf("union collect: %v %v", recs, err)
	}

	c := Parallelize(ctx, []Pair[int, int]{KV(3, 3)}, 2) // no partitioner
	u2 := a.Union(c)
	if u2.Partitioner() != nil || u2.NumPartitions() != 6 {
		t.Fatalf("mixed union: part=%v n=%d", u2.Partitioner(), u2.NumPartitions())
	}
	recs2, err := u2.Collect()
	if err != nil || len(recs2) != 2 {
		t.Fatalf("mixed union collect: %v %v", recs2, err)
	}
}

func TestKeysValues(t *testing.T) {
	ctx := testCtx()
	r := Parallelize(ctx, []Pair[int, string]{KV(1, "a"), KV(2, "b")}, 1)
	ks := sortedCollect(t, Keys(r), func(a, b int) bool { return a < b })
	if len(ks) != 2 || ks[0] != 1 || ks[1] != 2 {
		t.Fatalf("keys = %v", ks)
	}
	vs := sortedCollect(t, Values(r), func(a, b string) bool { return a < b })
	if len(vs) != 2 || vs[0] != "a" {
		t.Fatalf("values = %v", vs)
	}
}

func TestMapValuesPreservesPartitioner(t *testing.T) {
	ctx := testCtx()
	part := NewHashPartitioner(3)
	r := ParallelizePairs(ctx, []Pair[int, int]{KV(1, 10), KV(2, 20)}, part)
	mv := MapValues(r, func(_ *TaskContext, k, v int) int { return v + k })
	if mv.Partitioner() == nil || !mv.Partitioner().Equal(part) {
		t.Fatal("mapValues must preserve the partitioner")
	}
	m, err := CollectMap(mv)
	if err != nil || m[1] != 11 || m[2] != 22 {
		t.Fatalf("mapValues = %v, %v", m, err)
	}
}

func TestCacheAvoidsRecompute(t *testing.T) {
	ctx := testCtx()
	var computes atomic.Int64
	r := Map(Parallelize(ctx, ints(10), 2), func(_ *TaskContext, x int) int {
		computes.Add(1)
		return x
	}).Cache()
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	first := computes.Load()
	if first != 10 {
		t.Fatalf("first pass computed %d", first)
	}
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != first {
		t.Fatalf("cached collect recomputed: %d → %d", first, computes.Load())
	}
	r.Unpersist()
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 2*first {
		t.Fatalf("unpersisted collect must recompute: %d", computes.Load())
	}
}

func TestCheckpointTruncatesLineage(t *testing.T) {
	ctx := NewContext(Conf{Cluster: cluster.Local(2), KeepShuffles: 1})
	part := NewHashPartitioner(2)
	var computes atomic.Int64
	r := PartitionBy(Map(Parallelize(ctx, ints(6), 2), func(_ *TaskContext, x int) Pair[int, int] {
		computes.Add(1)
		return KV(x, x)
	}), part)
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	first := computes.Load()
	if first != 6 {
		t.Fatalf("checkpoint computed %d records", first)
	}
	// Retire the underlying shuffle; the checkpointed RDD must still be
	// readable (its data is stored, lineage gone).
	s2 := PartitionBy(Map(r, func(_ *TaskContext, p Pair[int, int]) Pair[int, int] {
		return KV(p.Key+1, p.Value)
	}), part)
	if _, err := s2.Collect(); err != nil {
		t.Fatal(err)
	}
	got, err := r.Collect()
	if err != nil {
		t.Fatalf("checkpointed RDD must survive shuffle retirement: %v", err)
	}
	if len(got) != 6 {
		t.Fatalf("collect = %d records", len(got))
	}
	if computes.Load() != first {
		t.Fatal("checkpointed RDD must not recompute")
	}
}

func TestEventsRecorded(t *testing.T) {
	ctx := testCtx()
	r := PartitionBy(Map(Parallelize(ctx, ints(10), 2), func(_ *TaskContext, x int) Pair[int, int] {
		return KV(x, x)
	}), NewHashPartitioner(3))
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	if got := ctx.CountStages(StageShuffleMap); got != 1 {
		t.Fatalf("map stages = %d", got)
	}
	if got := ctx.CountStages(StageResult); got != 1 {
		t.Fatalf("result stages = %d", got)
	}
	evs := ctx.Events()
	if evs[0].Kind != StageShuffleMap || evs[0].ShuffleID != 0 || evs[0].SpillBytes == 0 {
		t.Fatalf("map event = %+v", evs[0])
	}
	if evs[1].Kind != StageResult || evs[1].FetchBytes != evs[0].SpillBytes {
		t.Fatalf("result event = %+v", evs[1])
	}
	if StageShuffleMap.String() != "shuffle-map" || StageResult.String() != "result" {
		t.Fatal("kind names")
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	ctx := clusterCtx()
	r := Map(Parallelize(ctx, ints(64), 32), func(tc *TaskContext, x int) int {
		tc.ChargeCompute(simtime.Second, 1)
		return x
	})
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	if ctx.Clock() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
	if ctx.Ledger().Time(simtime.Compute) < 2*simtime.Second {
		t.Fatalf("compute ledger = %v", ctx.Ledger().Time(simtime.Compute))
	}
}

func TestShuffleTrafficAccounted(t *testing.T) {
	ctx := clusterCtx()
	tile := matrix.NewTile(64)
	var pairs []Pair[matrix.Coord, *matrix.Tile]
	for i := 0; i < 32; i++ {
		pairs = append(pairs, KV(matrix.Coord{I: i, J: 0}, tile.Clone()))
	}
	r := Parallelize(ctx, pairs, 8)
	pb := PartitionBy(r, NewHashPartitioner(8))
	if _, err := pb.Collect(); err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(32) * (tile.Bytes() + 16)
	if got := ctx.Ledger().Bytes(simtime.LocalDisk); got != wantBytes {
		t.Fatalf("spilled bytes = %d, want %d", got, wantBytes)
	}
	if ctx.Ledger().Bytes(simtime.Network) == 0 {
		t.Fatal("some shuffle traffic must be remote on a 16-node cluster")
	}
}

func TestBroadcastChargesOncePerNodeStage(t *testing.T) {
	ctx := clusterCtx()
	b := NewBroadcast(ctx, []*matrix.Tile{matrix.NewTile(64)})
	if b.Bytes() != 64*64*8 {
		t.Fatalf("broadcast bytes = %d", b.Bytes())
	}
	sharedAfterWrite := ctx.Ledger().Bytes(simtime.SharedFS)
	if sharedAfterWrite != b.Bytes() {
		t.Fatalf("driver write not charged: %d", sharedAfterWrite)
	}
	// 64 partitions on 16 nodes: 4 tasks per node, one stage → exactly
	// 16 node-fetches.
	r := Map(Parallelize(ctx, ints(64), 64), func(tc *TaskContext, x int) int {
		_ = b.Get(tc)
		_ = b.Get(tc) // second access is free
		return x
	})
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	var fetched int64
	for _, tcBytes := range []int64{} {
		fetched += tcBytes
	}
	_ = fetched
	// The shared-read traffic appears in the simulator's ledger.
	got := ctx.Ledger().Bytes(simtime.SharedFS) - sharedAfterWrite
	if got != 16*b.Bytes() {
		t.Fatalf("shared reads = %d, want %d", got, 16*b.Bytes())
	}
}

func TestGridPartitioner(t *testing.T) {
	g := NewGridPartitioner(8, 4)
	if g.NumPartitions() != 8 {
		t.Fatal("NumPartitions")
	}
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			p := g.Partition(matrix.Coord{I: i, J: j})
			if p < 0 || p >= 8 {
				t.Fatalf("partition %d out of range", p)
			}
			seen[p] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("grid partitioner must use all partitions: %d", len(seen))
	}
	if !g.Equal(NewGridPartitioner(8, 4)) || g.Equal(NewGridPartitioner(8, 5)) {
		t.Fatal("Equal")
	}
	if g.Equal(NewHashPartitioner(8)) {
		t.Fatal("grid != hash")
	}
	// Non-coord keys fall back to hashing in range.
	if p := g.Partition("other"); p < 0 || p >= 8 {
		t.Fatal("fallback out of range")
	}
}

func TestHashPartitionerSpread(t *testing.T) {
	h := NewHashPartitioner(16)
	counts := make([]int, 16)
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			counts[h.Partition(matrix.Coord{I: i, J: j})]++
		}
	}
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d empty for 1024 coords", p)
		}
	}
	if !h.Equal(NewHashPartitioner(16)) || h.Equal(NewHashPartitioner(8)) {
		t.Fatal("Equal")
	}
}

func TestExecutorMemoryFailure(t *testing.T) {
	small := cluster.Local(2)
	small.ExecutorMemBytes = 1 << 10 // 1 KiB budget
	ctx := NewContext(Conf{Cluster: small})
	tiles := []Pair[matrix.Coord, *matrix.Tile]{KV(matrix.Coord{}, matrix.NewTile(64))}
	r := Parallelize(ctx, tiles, 1).Cache()
	if _, err := r.Collect(); err == nil {
		t.Fatal("expected executor-memory failure")
	}
}

func TestShuffleRetirement(t *testing.T) {
	ctx := NewContext(Conf{Cluster: cluster.Local(2), KeepShuffles: 1})
	part := NewHashPartitioner(2)
	r := Parallelize(ctx, []Pair[int, int]{KV(1, 1), KV(2, 2)}, 2)
	a := PartitionBy(r, part)
	if _, err := a.Collect(); err != nil {
		t.Fatal(err)
	}
	// A second shuffle retires the first.
	b := PartitionBy(Map(a, func(_ *TaskContext, p Pair[int, int]) Pair[int, int] {
		return KV(p.Key+10, p.Value)
	}), part)
	if _, err := b.Collect(); err != nil {
		t.Fatal(err)
	}
	// Reading the retired shuffle must surface a job error.
	if _, err := a.Collect(); err == nil {
		t.Fatal("expected retired-shuffle error")
	}
}

func TestUnionAcrossContextsPanics(t *testing.T) {
	a := Parallelize(testCtx(), ints(2), 1)
	b := Parallelize(testCtx(), ints(2), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Union(b)
}

func TestDefaultSizer(t *testing.T) {
	tile := matrix.NewTile(8)
	if DefaultSizer(tile) != 8*8*8 {
		t.Fatal("tile size")
	}
	if DefaultSizer(KV(matrix.Coord{I: 1, J: 2}, tile)) != 16+512 {
		t.Fatal("pair size")
	}
	if DefaultSizer(nil) != 0 || DefaultSizer(3) != 8 || DefaultSizer("abcd") != 4 {
		t.Fatal("scalar sizes")
	}
	var nilTile *matrix.Tile
	if DefaultSizer(nilTile) != 0 {
		t.Fatal("nil tile")
	}
	if DefaultSizer(struct{ X int }{1}) != 64 {
		t.Fatal("default size")
	}
}
