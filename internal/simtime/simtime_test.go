package simtime

import (
	"strings"
	"sync"
	"testing"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{3 * Nanosecond, "3.0ns"},
		{15 * Microsecond, "15.0µs"},
		{2500 * Microsecond, "2.50ms"},
		{1.5 * Second, "1.50s"},
		{300 * Second, "5.0min"},
		{3 * Hour, "3.00h"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Fatalf("%v.String() = %q, want %q", float64(c.d), got, c.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(3, 2) != 3 {
		t.Fatal("Max broken")
	}
	if Min(1, 2) != 1 || Min(3, 2) != 2 {
		t.Fatal("Min broken")
	}
}

func TestLedgerAccumulation(t *testing.T) {
	l := NewLedger()
	l.Add(Compute, 2*Second)
	l.Add(Compute, 3*Second)
	l.Add(Network, 1*Second)
	l.AddBytes(Network, 1000)
	l.CountTask()
	l.CountTask()
	l.CountStage()
	l.ObserveDisk(500)
	l.ObserveDisk(200)

	if l.Time(Compute) != 5*Second {
		t.Fatalf("compute = %v", l.Time(Compute))
	}
	if l.Total() != 6*Second {
		t.Fatalf("total = %v", l.Total())
	}
	if l.Bytes(Network) != 1000 {
		t.Fatalf("bytes = %d", l.Bytes(Network))
	}
	if l.Tasks() != 2 || l.Stages() != 1 {
		t.Fatalf("tasks/stages = %d/%d", l.Tasks(), l.Stages())
	}
	if l.MaxStagedDisk() != 500 {
		t.Fatalf("maxDisk = %d", l.MaxStagedDisk())
	}
}

func TestLedgerMerge(t *testing.T) {
	a := NewLedger()
	a.Add(Compute, Second)
	a.ObserveDisk(10)
	b := NewLedger()
	b.Add(Compute, 2*Second)
	b.Add(Overhead, Second)
	b.AddBytes(SharedFS, 42)
	b.CountTask()
	b.ObserveDisk(99)
	a.Merge(b)
	if a.Time(Compute) != 3*Second || a.Time(Overhead) != Second {
		t.Fatalf("merge times wrong: %v", a)
	}
	if a.Bytes(SharedFS) != 42 || a.Tasks() != 1 || a.MaxStagedDisk() != 99 {
		t.Fatalf("merge counters wrong: %v", a)
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Add(Compute, Millisecond)
				l.CountTask()
			}
		}()
	}
	wg.Wait()
	if l.Tasks() != 8000 {
		t.Fatalf("tasks = %d", l.Tasks())
	}
	if diff := float64(l.Time(Compute) - 8*Second); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("compute = %v", l.Time(Compute))
	}
}

func TestLedgerString(t *testing.T) {
	l := NewLedger()
	l.Add(Compute, Second)
	l.Add(Network, Second)
	s := l.String()
	if !strings.Contains(s, "compute=") || !strings.Contains(s, "network=") {
		t.Fatalf("String = %q", s)
	}
}
