// Package simtime provides the virtual-time primitives used by the cluster
// simulator: a Duration type measured in model seconds, and a Ledger that
// attributes time and traffic to cost categories (compute, network, disk,
// scheduler overhead) so experiments can report breakdowns.
//
// Virtual time is deliberately decoupled from wall-clock time: the same
// engine code path accumulates simtime when replaying paper-scale
// experiments in model mode and when executing small problems for real.
package simtime

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Duration is a span of virtual time in seconds. float64 keeps the model
// closed under the analytic cost formulas without unit juggling.
type Duration float64

// Common durations.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
)

// Seconds returns d as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// String formats the duration with a human-appropriate unit.
func (d Duration) String() string {
	s := float64(d)
	abs := math.Abs(s)
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.1fns", s*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case abs < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	case abs < 120:
		return fmt.Sprintf("%.2fs", s)
	case abs < 2*3600:
		return fmt.Sprintf("%.1fmin", s/60)
	default:
		return fmt.Sprintf("%.2fh", s/3600)
	}
}

// Max returns the larger of two durations.
func Max(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of two durations.
func Min(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// Category labels a ledger entry. The categories match the cost components
// the paper discusses: kernel compute, shuffle/collect network traffic,
// local-disk staging, shared-storage traffic, and Spark scheduling overhead.
type Category string

// Ledger categories.
const (
	Compute   Category = "compute"
	Network   Category = "network"
	LocalDisk Category = "local-disk"
	SharedFS  Category = "shared-fs"
	Overhead  Category = "overhead"
)

// Ledger accumulates virtual time per category plus traffic counters.
// It is safe for concurrent use; tasks executing in parallel report into
// the job's ledger.
type Ledger struct {
	mu      sync.Mutex
	time    map[Category]Duration
	bytes   map[Category]int64
	tasks   int
	stages  int
	maxDisk int64 // high-water mark of staged shuffle bytes on any node
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		time:  make(map[Category]Duration),
		bytes: make(map[Category]int64),
	}
}

// Add charges d of virtual time to category c.
func (l *Ledger) Add(c Category, d Duration) {
	l.mu.Lock()
	l.time[c] += d
	l.mu.Unlock()
}

// AddBytes records b bytes of traffic under category c.
func (l *Ledger) AddBytes(c Category, b int64) {
	l.mu.Lock()
	l.bytes[c] += b
	l.mu.Unlock()
}

// CountTask increments the executed-task counter.
func (l *Ledger) CountTask() {
	l.mu.Lock()
	l.tasks++
	l.mu.Unlock()
}

// CountStage increments the executed-stage counter.
func (l *Ledger) CountStage() {
	l.mu.Lock()
	l.stages++
	l.mu.Unlock()
}

// ObserveDisk records a per-node staged-bytes observation, keeping the max.
func (l *Ledger) ObserveDisk(bytes int64) {
	l.mu.Lock()
	if bytes > l.maxDisk {
		l.maxDisk = bytes
	}
	l.mu.Unlock()
}

// Time returns the accumulated time for category c.
func (l *Ledger) Time(c Category) Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.time[c]
}

// Bytes returns the accumulated traffic for category c.
func (l *Ledger) Bytes(c Category) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes[c]
}

// Tasks returns the number of tasks recorded.
func (l *Ledger) Tasks() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tasks
}

// Stages returns the number of stages recorded.
func (l *Ledger) Stages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stages
}

// MaxStagedDisk returns the high-water mark of staged shuffle bytes.
func (l *Ledger) MaxStagedDisk() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxDisk
}

// Total returns the sum of all categories. Note that wall-clock style
// job time is tracked by the scheduler, not by summing the ledger: the
// ledger is resource-seconds, which overlap across cores.
func (l *Ledger) Total() Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t Duration
	for _, d := range l.time {
		t += d
	}
	return t
}

// Snapshot returns a copy of the per-category times.
func (l *Ledger) Snapshot() map[Category]Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[Category]Duration, len(l.time))
	for c, d := range l.time {
		out[c] = d
	}
	return out
}

// String renders the ledger as a single line, categories sorted by name.
func (l *Ledger) String() string {
	snap := l.Snapshot()
	cats := make([]string, 0, len(snap))
	for c := range snap {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	var b strings.Builder
	for i, c := range cats {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%s", c, snap[Category(c)])
	}
	fmt.Fprintf(&b, " tasks=%d stages=%d", l.Tasks(), l.Stages())
	return b.String()
}

// Merge adds every counter of other into l.
func (l *Ledger) Merge(other *Ledger) {
	other.mu.Lock()
	times := make(map[Category]Duration, len(other.time))
	for c, d := range other.time {
		times[c] = d
	}
	bytesBy := make(map[Category]int64, len(other.bytes))
	for c, b := range other.bytes {
		bytesBy[c] = b
	}
	tasks, stages, maxDisk := other.tasks, other.stages, other.maxDisk
	other.mu.Unlock()

	l.mu.Lock()
	defer l.mu.Unlock()
	for c, d := range times {
		l.time[c] += d
	}
	for c, b := range bytesBy {
		l.bytes[c] += b
	}
	l.tasks += tasks
	l.stages += stages
	if maxDisk > l.maxDisk {
		l.maxDisk = maxDisk
	}
}
