// Package semimat implements dense matrix algebra over closed semirings:
// the ⊕/⊙ matrix product and the closure by repeated squaring that the
// paper's related work reduces path problems to (R-Kleene, Aho et al.).
// It serves as an independent O(n³ log n) oracle for validating the GEP
// solvers and as the slow comparator in benchmarks.
package semimat

import (
	"fmt"

	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// Mul returns the semiring matrix product C = A ⊙ B with
// C[i,j] = ⊕_k A[i,k] ⊙ B[k,j].
func Mul(s semiring.Semiring, a, b *matrix.Dense) *matrix.Dense {
	if a.N != b.N {
		panic(fmt.Sprintf("semimat: dimension mismatch %d vs %d", a.N, b.N))
	}
	n := a.N
	out := matrix.NewDense(n)
	for i := range out.Data {
		out.Data[i] = s.Zero
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.At(i, k)
			if aik == s.Zero {
				continue // 0̄ annihilates
			}
			orow := out.Data[i*n:]
			brow := b.Data[k*n:]
			for j := 0; j < n; j++ {
				orow[j] = s.Plus(orow[j], s.Times(aik, brow[j]))
			}
		}
	}
	return out
}

// Add returns A ⊕ B elementwise.
func Add(s semiring.Semiring, a, b *matrix.Dense) *matrix.Dense {
	if a.N != b.N {
		panic(fmt.Sprintf("semimat: dimension mismatch %d vs %d", a.N, b.N))
	}
	out := matrix.NewDense(a.N)
	for i := range out.Data {
		out.Data[i] = s.Plus(a.Data[i], b.Data[i])
	}
	return out
}

// Identity returns the semiring identity matrix (1̄ diagonal, 0̄ off).
func Identity(s semiring.Semiring, n int) *matrix.Dense {
	out := matrix.NewDense(n)
	for i := range out.Data {
		out.Data[i] = s.Zero
	}
	for i := 0; i < n; i++ {
		out.Set(i, i, s.One)
	}
	return out
}

// Closure computes A* = I ⊕ A ⊕ A² ⊕ … by repeated squaring of (I ⊕ A):
// for idempotent semirings, (I⊕A)^(2^⌈log₂ n⌉) is the closure. With the
// min-plus semiring and A the edge-weight matrix this is all-pairs
// shortest paths (assuming no negative cycles); with the boolean semiring
// it is transitive closure.
func Closure(s semiring.Semiring, a *matrix.Dense) *matrix.Dense {
	cur := Add(s, Identity(s, a.N), a)
	for span := 1; span < a.N; span *= 2 {
		cur = Mul(s, cur, cur)
	}
	return cur
}

// Power returns Aᵏ under the semiring (k ≥ 0; A⁰ = I). With min-plus it
// yields shortest paths using at most k edges — useful for
// bounded-hop queries and for tests.
func Power(s semiring.Semiring, a *matrix.Dense, k int) *matrix.Dense {
	if k < 0 {
		panic("semimat: negative power")
	}
	result := Identity(s, a.N)
	base := a.Clone()
	for k > 0 {
		if k&1 == 1 {
			result = Mul(s, result, base)
		}
		k >>= 1
		if k > 0 {
			base = Mul(s, base, base)
		}
	}
	return result
}
