package semimat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dpspark/internal/graph"
	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, s := range []semiring.Semiring{semiring.MinPlus(), semiring.Boolean(), semiring.MaxMin()} {
		n := 12
		a := randomSemiringMatrix(s, n, rng)
		id := Identity(s, n)
		left := Mul(s, id, a)
		right := Mul(s, a, id)
		if a.MaxAbsDiff(left) != 0 || a.MaxAbsDiff(right) != 0 {
			t.Fatalf("%s: identity law fails", s.Name())
		}
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	s := semiring.MinPlus()
	n := 10
	a := randomSemiringMatrix(s, n, rng)
	b := randomSemiringMatrix(s, n, rng)
	c := randomSemiringMatrix(s, n, rng)
	left := Mul(s, Mul(s, a, b), c)
	right := Mul(s, a, Mul(s, b, c))
	if diff := left.MaxAbsDiff(right); diff > 1e-9 {
		t.Fatalf("associativity diff %v", diff)
	}
}

func TestClosureEqualsFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	s := semiring.MinPlus()
	for trial := 0; trial < 5; trial++ {
		g := graph.Random(20, 0.2, 1, 9, rng)
		d := g.DistanceMatrix()
		want := d.Clone()
		semiring.FloydWarshallReference(want.Data, want.N)
		// Closure takes the edge matrix with 0̄ off-diagonal defaults; the
		// distance matrix already has 1̄ (0) diagonal which I⊕A preserves.
		got := Closure(s, d)
		if diff := got.MaxAbsDiff(want); diff > 1e-9 {
			t.Fatalf("trial %d: closure vs FW diff %v", trial, diff)
		}
	}
}

func TestBooleanClosureIsTransitiveClosure(t *testing.T) {
	s := semiring.Boolean()
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	adj := g.AdjacencyBool()
	got := Closure(s, adj)
	if got.At(0, 2) != 1 || got.At(2, 0) != 0 || got.At(3, 3) != 1 {
		t.Fatalf("closure wrong:\n%v", got)
	}
}

func TestPowerBoundedHops(t *testing.T) {
	// Path 0→1→2→3 with unit weights: A^k reaches exactly k hops.
	s := semiring.MinPlus()
	n := 4
	a := matrix.NewDense(n)
	for i := range a.Data {
		a.Data[i] = s.Zero
	}
	for i := 0; i+1 < n; i++ {
		a.Set(i, i+1, 1)
	}
	p2 := Power(s, a, 2)
	if p2.At(0, 2) != 2 {
		t.Fatalf("A²[0,2] = %v", p2.At(0, 2))
	}
	if !math.IsInf(p2.At(0, 3), 1) {
		t.Fatal("A² must not reach 3 hops")
	}
	p0 := Power(s, a, 0)
	if p0.MaxAbsDiff(Identity(s, n)) != 0 {
		t.Fatal("A⁰ must be the identity")
	}
}

func TestClosureIdempotentProperty(t *testing.T) {
	// Property: closing a closed matrix changes nothing.
	s := semiring.MinPlus()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.Random(12, 0.25, 1, 5, rng)
		c := Closure(s, g.DistanceMatrix())
		// Tolerance: re-closing may re-associate float path sums.
		return c.MaxAbsDiff(Closure(s, c)) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(semiring.MinPlus(), matrix.NewDense(2), matrix.NewDense(3))
}

func randomSemiringMatrix(s semiring.Semiring, n int, rng *rand.Rand) *matrix.Dense {
	d := matrix.NewDense(n)
	for i := range d.Data {
		switch {
		case rng.Float64() < 0.3:
			d.Data[i] = s.Zero
		case s.Name() == "boolean":
			d.Data[i] = 1
		default:
			d.Data[i] = math.Floor(rng.Float64() * 10)
		}
	}
	return d
}
