package matrix

import (
	"sync"
	"testing"
)

func TestTilePoolAllocRelease(t *testing.T) {
	p := NewTilePool()
	a := p.Alloc(8)
	if a.B != 8 || len(a.Data) != 64 {
		t.Fatalf("Alloc(8) = B=%d len=%d", a.B, len(a.Data))
	}
	a.SetGen(7)
	p.Release(a)
	b := p.Alloc(8)
	if b.Gen() != 0 {
		t.Fatalf("pooled tile gen = %d, want 0", b.Gen())
	}
	// Different size classes never mix.
	c := p.Alloc(4)
	if c.B != 4 || len(c.Data) != 16 {
		t.Fatalf("Alloc(4) = B=%d len=%d", c.B, len(c.Data))
	}
}

func TestTilePoolReleaseIgnoresNilAndSymbolic(t *testing.T) {
	p := NewTilePool()
	p.Release(nil)
	p.Release(NewSymbolicTile(8)) // must not land in the size class
	got := p.Alloc(8)
	if got.Symbolic() {
		t.Fatal("Alloc returned a symbolic tile")
	}
}

func TestTilePoolClone(t *testing.T) {
	p := NewTilePool()
	src := NewTile(4)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	src.SetGen(3)
	cl := p.Clone(src)
	if cl == src {
		t.Fatal("Clone returned the source tile")
	}
	if cl.Gen() != 0 {
		t.Fatalf("clone gen = %d, want 0", cl.Gen())
	}
	for i := range src.Data {
		if cl.Data[i] != src.Data[i] {
			t.Fatalf("clone differs at %d", i)
		}
	}
	cl.Data[0] = -1
	if src.Data[0] == -1 {
		t.Fatal("clone shares storage with source")
	}
	if sym := p.Clone(NewSymbolicTile(4)); !sym.Symbolic() {
		t.Fatal("symbolic clone is not symbolic")
	}
}

func TestTilePoolTranspose(t *testing.T) {
	p := NewTilePool()
	src := NewTile(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			src.Set(i, j, float64(10*i+j))
		}
	}
	tr := p.Transpose(src)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != src.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	want := src.Transpose()
	for i := range want.Data {
		if tr.Data[i] != want.Data[i] {
			t.Fatalf("pooled transpose differs from Tile.Transpose at %d", i)
		}
	}
	if sym := p.Transpose(NewSymbolicTile(3)); !sym.Symbolic() {
		t.Fatal("symbolic transpose is not symbolic")
	}
}

// TestTilePoolConcurrent hammers one pool from many goroutines (run under
// -race): each worker repeatedly allocates, stamps, verifies and releases
// slabs of two size classes.
func TestTilePoolConcurrent(t *testing.T) {
	p := NewTilePool()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				b := 4 + 4*(iter%2)
				tile := p.Alloc(b)
				stamp := float64(w*1000 + iter)
				for i := range tile.Data {
					tile.Data[i] = stamp
				}
				for i := range tile.Data {
					if tile.Data[i] != stamp {
						t.Errorf("worker %d saw torn tile", w)
						return
					}
				}
				p.Release(tile)
			}
		}()
	}
	wg.Wait()
}
