package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// codecTiles builds a spread of tricky tiles: NaN payloads, infinities,
// signed zeros, subnormals and plain values across dimensions and gens.
func codecTiles() []*Tile {
	rng := rand.New(rand.NewSource(7))
	var out []*Tile
	for _, b := range []int{1, 2, 7, 16} {
		t := NewTile(b)
		for i := range t.Data {
			switch i % 7 {
			case 0:
				t.Data[i] = math.NaN()
			case 1:
				t.Data[i] = math.Inf(1)
			case 2:
				t.Data[i] = math.Inf(-1)
			case 3:
				t.Data[i] = math.Copysign(0, -1)
			case 4:
				t.Data[i] = 5e-324 // smallest subnormal
			default:
				t.Data[i] = rng.NormFloat64()
			}
		}
		t.SetGen(uint32(b))
		out = append(out, t)
	}
	s := NewSymbolicTile(8)
	s.SetGen(3)
	out = append(out, s, NewSymbolicTile(1), NewTile(4))
	return out
}

// TestTileCodecRoundTrip: decode(encode(t)) must be bit-identical,
// preserve the gen tag, and consume exactly the encoded bytes.
func TestTileCodecRoundTrip(t *testing.T) {
	for _, tile := range codecTiles() {
		enc := EncodeTile(tile)
		if len(enc) != tile.EncodedTileLen() {
			t.Fatalf("b=%d: encoded %d bytes, EncodedTileLen says %d", tile.B, len(enc), tile.EncodedTileLen())
		}
		got, rest, err := DecodeTile(enc)
		if err != nil {
			t.Fatalf("b=%d: decode: %v", tile.B, err)
		}
		if len(rest) != 0 {
			t.Fatalf("b=%d: %d trailing bytes", tile.B, len(rest))
		}
		assertTilesBitIdentical(t, tile, got)
	}
}

// TestTileCodecStream: several tiles appended into one block decode in
// order, each handing the remainder to the next.
func TestTileCodecStream(t *testing.T) {
	tiles := codecTiles()
	var blob []byte
	for _, tile := range tiles {
		blob = AppendTile(blob, tile)
	}
	rest := blob
	for i, want := range tiles {
		var got *Tile
		var err error
		got, rest, err = DecodeTile(rest)
		if err != nil {
			t.Fatalf("tile %d: %v", i, err)
		}
		assertTilesBitIdentical(t, want, got)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after stream", len(rest))
	}
}

// TestTileCodecCorruption: truncations at every length and single-byte
// flips in the header region must error, never panic, never yield a
// wrong-shaped tile.
func TestTileCodecCorruption(t *testing.T) {
	src := NewTile(5)
	for i := range src.Data {
		src.Data[i] = float64(i) * 1.5
	}
	src.SetGen(9)
	enc := EncodeTile(src)

	for cut := 0; cut < len(enc); cut++ {
		if tile, _, err := DecodeTile(enc[:cut]); err == nil {
			if tile.B != src.B || tile.Symbolic() != src.Symbolic() {
				t.Fatalf("truncation at %d returned malformed tile %+v", cut, tile)
			}
			// A cut can only succeed if it kept the full encoding.
			if cut < len(enc) {
				t.Fatalf("truncation at %d of %d decoded successfully", cut, len(enc))
			}
		}
	}

	// Flips in the framing bytes (length, magic, dim, kind) must be caught
	// by the codec itself; payload flips are the store checksum's job.
	for _, off := range []int{0, 1, 4, 5, 8, 16} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0xff
		tile, _, err := DecodeTile(bad)
		if err == nil && (tile.B != src.B || tile.Symbolic()) {
			t.Fatalf("flip at %d yielded malformed tile %+v", off, tile)
		}
	}

	if _, _, err := DecodeTile(nil); err == nil {
		t.Fatal("nil input must error")
	}
}

// FuzzTileRoundTrip fuzzes the decoder: arbitrary bytes must never panic,
// and any input that decodes must re-encode to an equivalent tile
// (decode∘encode∘decode is the identity on the decoded value).
func FuzzTileRoundTrip(f *testing.F) {
	for _, tile := range codecTiles() {
		f.Add(EncodeTile(tile))
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(make([]byte, tileHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		tile, rest, err := DecodeTile(data)
		if err != nil {
			return
		}
		if tile == nil || tile.B <= 0 {
			t.Fatalf("decode returned malformed tile %+v", tile)
		}
		if !tile.Symbolic() && len(tile.Data) != tile.B*tile.B {
			t.Fatalf("short tile: b=%d but %d elements", tile.B, len(tile.Data))
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew: %d > %d", len(rest), len(data))
		}
		again, rest2, err := DecodeTile(EncodeTile(tile))
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encode left %d trailing bytes", len(rest2))
		}
		assertTilesBitIdentical(t, tile, again)
	})
}

// assertTilesBitIdentical compares dimension, symbolic-ness, gen and every
// element's float64 bit pattern.
func assertTilesBitIdentical(t *testing.T, want, got *Tile) {
	t.Helper()
	if got.B != want.B || got.Symbolic() != want.Symbolic() || got.Gen() != want.Gen() {
		t.Fatalf("shape mismatch: want b=%d sym=%v gen=%d, got b=%d sym=%v gen=%d",
			want.B, want.Symbolic(), want.Gen(), got.B, got.Symbolic(), got.Gen())
	}
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("element %d differs: %x vs %x", i,
				math.Float64bits(want.Data[i]), math.Float64bits(got.Data[i]))
		}
	}
}
