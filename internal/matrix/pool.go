package matrix

import "sync"

// TilePool recycles b×b tile slabs. The engine's hot path clones a tile
// per kernel call and buffers shuffle copies per stage; without pooling
// every one of those slabs is a fresh allocation the GC must trace and
// sweep. The pool is size-classed (one sync.Pool per tile dimension) so a
// run mixing block sizes never hands a kernel a short slab.
//
// All methods are safe for concurrent use: tasks allocate and release
// tiles from parallel goroutines.
type TilePool struct {
	mu      sync.Mutex
	classes map[int]*sync.Pool
}

// NewTilePool returns an empty pool.
func NewTilePool() *TilePool {
	return &TilePool{classes: make(map[int]*sync.Pool)}
}

// DefaultPool is the process-wide pool the drivers allocate from.
var DefaultPool = NewTilePool()

// class returns the sync.Pool for dimension b, creating it on first use.
func (p *TilePool) class(b int) *sync.Pool {
	p.mu.Lock()
	sp := p.classes[b]
	if sp == nil {
		sp = &sync.Pool{New: func() any {
			return &Tile{B: b, Data: make([]float64, b*b)}
		}}
		p.classes[b] = sp
	}
	p.mu.Unlock()
	return sp
}

// Alloc returns a b×b tile with unspecified element contents and gen 0.
// Callers must fully overwrite Data before reading it.
func (p *TilePool) Alloc(b int) *Tile {
	if b <= 0 {
		panic("matrix: tile dimension must be positive")
	}
	t := p.class(b).Get().(*Tile)
	t.gen = 0
	return t
}

// Release returns a tile to the pool for reuse. The caller must hold the
// only live reference: a released slab will be handed out again by Alloc
// and overwritten. nil and symbolic tiles are ignored (symbolic tiles
// carry no slab to recycle).
func (p *TilePool) Release(t *Tile) {
	if t == nil || t.Symbolic() {
		return
	}
	t.gen = 0
	p.class(t.B).Put(t)
}

// Clone returns a pooled deep copy of t with gen 0; a symbolic tile
// clones to a fresh symbolic tile.
func (p *TilePool) Clone(t *Tile) *Tile {
	if t.Symbolic() {
		return NewSymbolicTile(t.B)
	}
	out := p.Alloc(t.B)
	copy(out.Data, t.Data)
	return out
}

// Transpose returns a pooled transpose of t; a symbolic tile transposes
// to a fresh symbolic tile.
func (p *TilePool) Transpose(t *Tile) *Tile {
	if t.Symbolic() {
		return NewSymbolicTile(t.B)
	}
	out := p.Alloc(t.B)
	t.TransposeInto(out)
	return out
}
