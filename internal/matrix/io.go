package matrix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary formats: little-endian, a small magic+dimension header followed by
// raw float64 payload. Tiles and matrices round-trip exactly (bit-level),
// including infinities used by the min-plus semiring. The CB driver stages
// tiles through shared storage in this format.

const (
	tileMagic  = uint32(0x44505431) // "DPT1"
	denseMagic = uint32(0x44504431) // "DPD1"
)

// WriteTile serializes t to w. Symbolic tiles cannot be serialized.
func WriteTile(w io.Writer, t *Tile) error {
	if t.Symbolic() {
		return fmt.Errorf("matrix: cannot serialize a symbolic tile")
	}
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], tileMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(t.B))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeFloats(bw, t.Data); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTile deserializes a tile written by WriteTile.
func ReadTile(r io.Reader) (*Tile, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != tileMagic {
		return nil, fmt.Errorf("matrix: bad tile magic %#x", m)
	}
	b := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if b <= 0 || b > 1<<20 {
		return nil, fmt.Errorf("matrix: unreasonable tile dimension %d", b)
	}
	t := NewTile(b)
	if err := readFloats(br, t.Data); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteDense serializes d to w.
func WriteDense(w io.Writer, d *Dense) error {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], denseMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(d.N))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeFloats(bw, d.Data); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDense deserializes a matrix written by WriteDense.
func ReadDense(r io.Reader) (*Dense, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != denseMagic {
		return nil, fmt.Errorf("matrix: bad dense magic %#x", m)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:8]))
	if n < 0 || n > 1<<18 {
		return nil, fmt.Errorf("matrix: unreasonable dimension %d", n)
	}
	d := NewDense(n)
	if err := readFloats(br, d.Data); err != nil {
		return nil, err
	}
	return d, nil
}

func writeFloats(w io.Writer, xs []float64) error {
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func readFloats(r io.Reader, xs []float64) error {
	var buf [8]byte
	for i := range xs {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return err
		}
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return nil
}
