// Package matrix provides the dense-matrix substrate for the GEP solvers:
// square row-major matrices, b×b tiles with strided sub-views (the unit the
// recursive r-way kernels divide), blocked matrices with virtual padding
// (paper §IV), symbolic tiles for model-mode simulation, and binary I/O.
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a square row-major n×n matrix of float64.
type Dense struct {
	N    int
	Data []float64
}

// NewDense allocates a zeroed n×n matrix.
func NewDense(n int) *Dense {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// FromSlice wraps a row-major slice of length n*n as a Dense without
// copying. The caller must not alias d.Data elsewhere if mutation matters.
func FromSlice(n int, data []float64) *Dense {
	if len(data) != n*n {
		panic(fmt.Sprintf("matrix: FromSlice length %d != %d*%d", len(data), n, n))
	}
	return &Dense{N: n, Data: data}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.N+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.N+j] = v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.N)
	copy(out.Data, d.Data)
	return out
}

// Fill sets every element to f(i, j).
func (d *Dense) Fill(f func(i, j int) float64) {
	for i := 0; i < d.N; i++ {
		for j := 0; j < d.N; j++ {
			d.Data[i*d.N+j] = f(i, j)
		}
	}
}

// FillRandom fills the matrix with uniform values in [lo, hi) drawn from rng.
func (d *Dense) FillRandom(rng *rand.Rand, lo, hi float64) {
	for i := range d.Data {
		d.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// FillDiagonallyDominant fills the matrix with random values in [1, 2) and
// boosts the diagonal above the row sums, producing a matrix on which
// Gaussian elimination without pivoting is numerically safe (the class the
// paper's GE benchmark targets).
func (d *Dense) FillDiagonallyDominant(rng *rand.Rand) {
	n := d.N
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			v := 1 + rng.Float64()
			d.Data[i*n+j] = v
			sum += math.Abs(v)
		}
		d.Data[i*n+i] = sum + 1
	}
}

// Equal reports whether d and other agree elementwise within tol,
// treating equal infinities as equal.
func (d *Dense) Equal(other *Dense, tol float64) bool {
	if d.N != other.N {
		return false
	}
	for i, v := range d.Data {
		w := other.Data[i]
		if v == w { // covers matching infinities
			continue
		}
		if math.Abs(v-w) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest |d−other| over all elements (0 for equal
// infinities) and panics on dimension mismatch.
func (d *Dense) MaxAbsDiff(other *Dense) float64 {
	if d.N != other.N {
		panic("matrix: MaxAbsDiff dimension mismatch")
	}
	var m float64
	for i, v := range d.Data {
		w := other.Data[i]
		if v == w {
			continue
		}
		diff := math.Abs(v - w)
		if math.IsNaN(diff) || math.IsInf(diff, 0) {
			return math.Inf(1)
		}
		if diff > m {
			m = diff
		}
	}
	return m
}

// Bytes returns the in-memory payload size of the matrix.
func (d *Dense) Bytes() int64 { return int64(d.N) * int64(d.N) * 8 }

// String renders small matrices for debugging; large ones are summarized.
func (d *Dense) String() string {
	if d.N > 8 {
		return fmt.Sprintf("Dense(%d×%d)", d.N, d.N)
	}
	s := ""
	for i := 0; i < d.N; i++ {
		for j := 0; j < d.N; j++ {
			s += fmt.Sprintf("%8.3g ", d.At(i, j))
		}
		s += "\n"
	}
	return s
}
