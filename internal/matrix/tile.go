package matrix

import "fmt"

// Coord addresses a tile in the r×r block decomposition of the DP table.
// It is the key of the pair RDD in the Spark drivers (paper §IV-C).
type Coord struct {
	I, J int
}

// String formats the coordinate as "(i,j)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.I, c.J) }

// Tile is one b×b block of the DP table: the unit of distribution in the
// top-level Spark program and the unit of work for the kernels.
//
// A Tile may be *symbolic*: Data == nil while B is still meaningful. The
// cluster simulator runs paper-scale experiments (32K×32K) on symbolic
// tiles — the drivers and schedulers execute the identical code path and
// byte accounting, but no element arithmetic happens.
type Tile struct {
	B    int
	Data []float64

	// gen is the engine-ownership tag used for copy-on-write clone
	// elision: 0 means the tile is not owned by the executing driver
	// (user input, pooled-fresh, or handed back to the user) and must be
	// defensively cloned before mutation; a non-zero value names the
	// driver iteration that produced the tile's current contents, letting
	// lineage replays recognize an already-applied kernel.
	gen uint32
}

// Gen returns the ownership generation tag.
func (t *Tile) Gen() uint32 { return t.gen }

// SetGen assigns the ownership generation tag (0 disowns the tile).
func (t *Tile) SetGen(g uint32) { t.gen = g }

// NewTile allocates a zeroed b×b tile.
func NewTile(b int) *Tile {
	if b <= 0 {
		panic("matrix: tile dimension must be positive")
	}
	return &Tile{B: b, Data: make([]float64, b*b)}
}

// NewSymbolicTile returns a data-free tile of dimension b for model mode.
func NewSymbolicTile(b int) *Tile {
	if b <= 0 {
		panic("matrix: tile dimension must be positive")
	}
	return &Tile{B: b}
}

// Symbolic reports whether the tile carries no payload.
func (t *Tile) Symbolic() bool { return t.Data == nil }

// At returns element (i, j) of the tile.
func (t *Tile) At(i, j int) float64 { return t.Data[i*t.B+j] }

// Set assigns element (i, j) of the tile.
func (t *Tile) Set(i, j int, v float64) { t.Data[i*t.B+j] = v }

// FillConst sets every element, with the diagonal getting diag instead of
// off. Used to materialize virtual-padding tiles.
func (t *Tile) FillConst(off, diag float64) {
	for i := 0; i < t.B; i++ {
		for j := 0; j < t.B; j++ {
			if i == j {
				t.Data[i*t.B+j] = diag
			} else {
				t.Data[i*t.B+j] = off
			}
		}
	}
}

// Transpose returns a new tile with rows and columns exchanged; a
// symbolic tile transposes to a symbolic tile. Used by solvers that
// exploit symmetry (undirected APSP keeps only the upper block triangle
// and transposes on demand).
func (t *Tile) Transpose() *Tile {
	if t.Symbolic() {
		return NewSymbolicTile(t.B)
	}
	out := NewTile(t.B)
	t.TransposeInto(out)
	return out
}

// TransposeInto writes the transpose of t into dst, which must be a real
// tile of equal dimension.
func (t *Tile) TransposeInto(dst *Tile) {
	if dst.B != t.B || dst.Symbolic() || t.Symbolic() {
		panic("matrix: TransposeInto needs real tiles of equal dimension")
	}
	b := t.B
	for i := 0; i < b; i++ {
		row := t.Data[i*b : i*b+b]
		for j, x := range row {
			dst.Data[j*b+i] = x
		}
	}
}

// Clone deep-copies the tile; a symbolic tile clones to a symbolic tile.
func (t *Tile) Clone() *Tile {
	if t.Symbolic() {
		return NewSymbolicTile(t.B)
	}
	out := NewTile(t.B)
	copy(out.Data, t.Data)
	return out
}

// Bytes returns the serialized payload size of the tile (meaningful for
// symbolic tiles too — the simulator charges traffic by this value).
func (t *Tile) Bytes() int64 { return int64(t.B) * int64(t.B) * 8 }

// View returns a strided view covering the whole tile. It panics for
// symbolic tiles, which have no elements to view.
func (t *Tile) View() View {
	if t.Symbolic() {
		panic("matrix: View of a symbolic tile")
	}
	return View{Data: t.Data, N: t.B, Stride: t.B}
}

// View is an n×n window into a larger row-major buffer, with the given row
// stride. Views are how the recursive r-way kernels address subtiles
// without copying: Sub slices the window into an r×r grid of child views.
type View struct {
	Data   []float64
	N      int
	Stride int
}

// At returns element (i, j) of the view.
func (v View) At(i, j int) float64 { return v.Data[i*v.Stride+j] }

// Set assigns element (i, j) of the view.
func (v View) Set(i, j int, x float64) { v.Data[i*v.Stride+j] = x }

// Sub returns the n×n sub-view whose top-left corner is (i0, j0).
func (v View) Sub(i0, j0, n int) View {
	if i0 < 0 || j0 < 0 || i0+n > v.N || j0+n > v.N {
		panic(fmt.Sprintf("matrix: Sub(%d,%d,%d) outside %d×%d view", i0, j0, n, v.N, v.N))
	}
	return View{
		Data:   v.Data[i0*v.Stride+j0:],
		N:      n,
		Stride: v.Stride,
	}
}

// Quadrant returns the (qi, qj)-th of r×r equal subdivisions of the view.
// v.N must be divisible by r (the r-way algorithms guarantee this through
// virtual padding).
func (v View) Quadrant(qi, qj, r int) View {
	if v.N%r != 0 {
		panic(fmt.Sprintf("matrix: view dim %d not divisible by r=%d", v.N, r))
	}
	s := v.N / r
	return v.Sub(qi*s, qj*s, s)
}

// CopyTo copies the view's elements into dst, which must have equal N.
func (v View) CopyTo(dst View) {
	if v.N != dst.N {
		panic("matrix: CopyTo dimension mismatch")
	}
	for i := 0; i < v.N; i++ {
		copy(dst.Data[i*dst.Stride:i*dst.Stride+v.N], v.Data[i*v.Stride:i*v.Stride+v.N])
	}
}
