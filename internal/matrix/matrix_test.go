package matrix

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(3)
	d.Set(1, 2, 7.5)
	if d.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2) = %v", d.At(1, 2))
	}
	c := d.Clone()
	c.Set(1, 2, 0)
	if d.At(1, 2) != 7.5 {
		t.Fatal("Clone is not deep")
	}
	if d.Bytes() != 3*3*8 {
		t.Fatalf("Bytes = %d", d.Bytes())
	}
}

func TestDenseEqualWithInfinities(t *testing.T) {
	a := NewDense(2)
	b := NewDense(2)
	a.Set(0, 1, math.Inf(1))
	b.Set(0, 1, math.Inf(1))
	if !a.Equal(b, 0) {
		t.Fatal("equal infinities should compare equal")
	}
	b.Set(1, 0, 1e-13)
	if !a.Equal(b, 1e-12) {
		t.Fatal("within-tolerance values should compare equal")
	}
	if a.Equal(b, 1e-14) {
		t.Fatal("outside-tolerance values should differ")
	}
}

func TestDenseMaxAbsDiff(t *testing.T) {
	a := NewDense(2)
	b := NewDense(2)
	a.Set(0, 0, 1)
	b.Set(0, 0, 3)
	a.Set(1, 1, math.Inf(1))
	b.Set(1, 1, math.Inf(1))
	if got := a.MaxAbsDiff(b); got != 2 {
		t.Fatalf("MaxAbsDiff = %v, want 2", got)
	}
	b.Set(1, 1, 5)
	if got := a.MaxAbsDiff(b); !math.IsInf(got, 1) {
		t.Fatalf("MaxAbsDiff with inf mismatch = %v, want +Inf", got)
	}
}

func TestFillDiagonallyDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense(16)
	d.FillDiagonallyDominant(rng)
	for i := 0; i < d.N; i++ {
		var off float64
		for j := 0; j < d.N; j++ {
			if i != j {
				off += math.Abs(d.At(i, j))
			}
		}
		if d.At(i, i) <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestTileBasics(t *testing.T) {
	tl := NewTile(4)
	tl.Set(2, 3, -1)
	if tl.At(2, 3) != -1 {
		t.Fatal("tile At/Set broken")
	}
	if tl.Symbolic() {
		t.Fatal("real tile reported symbolic")
	}
	s := NewSymbolicTile(4)
	if !s.Symbolic() {
		t.Fatal("symbolic tile not symbolic")
	}
	if s.Bytes() != tl.Bytes() {
		t.Fatal("symbolic tile must account the same bytes")
	}
	if sc := s.Clone(); !sc.Symbolic() || sc.B != 4 {
		t.Fatal("symbolic clone wrong")
	}
}

func TestTileFillConst(t *testing.T) {
	tl := NewTile(3)
	tl.FillConst(9, 1)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 9.0
			if i == j {
				want = 1
			}
			if tl.At(i, j) != want {
				t.Fatalf("FillConst: (%d,%d) = %v", i, j, tl.At(i, j))
			}
		}
	}
}

func TestViewSubAndQuadrant(t *testing.T) {
	tl := NewTile(8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			tl.Set(i, j, float64(10*i+j))
		}
	}
	v := tl.View()
	q := v.Quadrant(1, 1, 2) // bottom-right 4×4
	if q.N != 4 || q.At(0, 0) != 44 || q.At(3, 3) != 77 {
		t.Fatalf("Quadrant wrong: N=%d corner=%v/%v", q.N, q.At(0, 0), q.At(3, 3))
	}
	qq := q.Quadrant(0, 1, 2) // its top-right 2×2
	if qq.At(0, 0) != 46 || qq.At(1, 1) != 57 {
		t.Fatalf("nested Quadrant wrong: %v %v", qq.At(0, 0), qq.At(1, 1))
	}
	qq.Set(0, 0, -5)
	if tl.At(4, 6) != -5 {
		t.Fatal("views must alias the tile buffer")
	}
}

func TestViewCopyTo(t *testing.T) {
	src := NewTile(4)
	src.View().Set(1, 2, 42)
	dst := NewTile(6)
	src.View().CopyTo(dst.View().Sub(2, 2, 4))
	if dst.At(3, 4) != 42 {
		t.Fatalf("CopyTo misplaced: %v", dst.At(3, 4))
	}
}

func TestViewBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Sub")
		}
	}()
	NewTile(4).View().Sub(2, 2, 3)
}

func TestGrid(t *testing.T) {
	cases := []struct{ n, b, want int }{
		{8, 4, 2}, {9, 4, 3}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2},
	}
	for _, c := range cases {
		if got := Grid(c.n, c.b); got != c.want {
			t.Fatalf("Grid(%d,%d) = %d, want %d", c.n, c.b, got, c.want)
		}
	}
}

func TestBlockRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 4, 7, 8, 13} {
		for _, b := range []int{1, 2, 3, 4, 5, 8} {
			d := NewDense(n)
			d.FillRandom(rng, -10, 10)
			bl := Block(d, b, math.Inf(1), 0)
			back := bl.ToDense()
			if !d.Equal(back, 0) {
				t.Fatalf("n=%d b=%d: round trip differs", n, b)
			}
		}
	}
}

func TestBlockPadding(t *testing.T) {
	d := NewDense(3)
	d.FillRandom(rand.New(rand.NewSource(12)), 1, 2)
	bl := Block(d, 2, 99, -1) // pads to 4×4
	if bl.R != 2 {
		t.Fatalf("R = %d", bl.R)
	}
	last := bl.Tile(Coord{1, 1})
	if last.At(1, 1) != -1 {
		t.Fatalf("padded diagonal = %v, want -1", last.At(1, 1))
	}
	if last.At(0, 1) != 99 || last.At(1, 0) != 99 {
		t.Fatalf("padded off-diagonal = %v/%v, want 99", last.At(0, 1), last.At(1, 0))
	}
	// Real cell (2,2) lives in tile (1,1) at (0,0).
	if last.At(0, 0) != d.At(2, 2) {
		t.Fatal("real cell misplaced by padding")
	}
}

func TestBlockedProperty(t *testing.T) {
	// Property: blocking then unblocking is identity for any n, b.
	f := func(nRaw, bRaw uint8, seed int64) bool {
		n := int(nRaw)%24 + 1
		b := int(bRaw)%9 + 1
		d := NewDense(n)
		d.FillRandom(rand.New(rand.NewSource(seed)), -5, 5)
		return d.Equal(Block(d, b, 0, 1).ToDense(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolicBlocked(t *testing.T) {
	bl := NewSymbolicBlocked(10, 4)
	if !bl.Symbolic() {
		t.Fatal("not symbolic")
	}
	if bl.R != 3 {
		t.Fatalf("R = %d", bl.R)
	}
	if bl.Bytes() != 9*4*4*8 {
		t.Fatalf("Bytes = %d", bl.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ToDense on symbolic must panic")
		}
	}()
	bl.ToDense()
}

func TestBlockedCloneAndCoords(t *testing.T) {
	bl := NewBlocked(4, 2)
	bl.Tile(Coord{0, 1}).Set(0, 0, 5)
	cl := bl.Clone()
	cl.Tile(Coord{0, 1}).Set(0, 0, 6)
	if bl.Tile(Coord{0, 1}).At(0, 0) != 5 {
		t.Fatal("Clone not deep")
	}
	if len(bl.Coords()) != 4 {
		t.Fatalf("Coords = %v", bl.Coords())
	}
}

func TestTileIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tl := NewTile(5)
	for i := range tl.Data {
		tl.Data[i] = rng.NormFloat64()
	}
	tl.Set(0, 1, math.Inf(1)) // infinities must survive
	var buf bytes.Buffer
	if err := WriteTile(&buf, tl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.B != tl.B {
		t.Fatalf("B = %d", got.B)
	}
	for i := range tl.Data {
		if got.Data[i] != tl.Data[i] && !(math.IsInf(got.Data[i], 1) && math.IsInf(tl.Data[i], 1)) {
			t.Fatalf("payload differs at %d", i)
		}
	}
}

func TestDenseIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := NewDense(7)
	d.FillRandom(rng, -100, 100)
	var buf bytes.Buffer
	if err := WriteDense(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(got, 0) {
		t.Fatal("dense round trip differs")
	}
}

func TestTileIOErrors(t *testing.T) {
	if err := WriteTile(&bytes.Buffer{}, NewSymbolicTile(4)); err == nil {
		t.Fatal("expected error serializing symbolic tile")
	}
	if _, err := ReadTile(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("expected error on truncated input")
	}
	bad := bytes.NewBuffer(nil)
	_ = WriteDense(bad, NewDense(1))
	if _, err := ReadTile(bad); err == nil {
		t.Fatal("expected magic mismatch error")
	}
}
