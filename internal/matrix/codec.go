package matrix

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Tile codec: the length-prefixed on-disk representation of one tile,
// used by the durable block store (internal/store) for shuffle spill,
// broadcast staging and driver checkpoints. The encoding is exact — every
// float64 travels as its IEEE-754 bit pattern, so decode(encode(t)) is
// bit-identical including NaN payloads, infinities and signed zeros — and
// it preserves the engine-ownership generation tag, because a spilled
// tile read back mid-run must keep its replay semantics (a decoded tile
// that dropped its tag would be re-applied by a lineage replay and
// corrupt the result).
//
// Layout (all integers little-endian):
//
//	u32 length   — bytes that follow (the length prefix itself excluded)
//	u32 magic    — blockTileMagic, guards against foreign/shifted bytes
//	u32 b        — tile dimension
//	u32 gen      — ownership generation tag
//	u8  kind     — 0 symbolic (no payload), 1 real (b·b float64 bits)
//	... payload
//
// Decoding is defensive end to end: any truncated, oversized or
// inconsistent input returns an error — never a panic, never a short
// tile. Integrity against bit flips is the store's job (CRC32C per
// block); the codec's magic and length checks catch framing bugs.

// blockTileMagic marks the start of a length-prefixed encoded tile
// ("DPT2"; "DPT1" is io.go's header-plus-raw-floats stream format).
const blockTileMagic = 0x44505432

// tileHeaderLen is the encoded size of a tile minus its payload: the
// length prefix plus magic, dimension, gen and kind.
const tileHeaderLen = 4 + 4 + 4 + 4 + 1

const (
	tileKindSymbolic = 0
	tileKindReal     = 1
)

// maxTileDim bounds the accepted tile dimension on decode, rejecting
// absurd length claims from corrupted input before any allocation.
const maxTileDim = 1 << 16

// EncodedTileLen returns the exact encoded size of the tile.
func (t *Tile) EncodedTileLen() int {
	if t.Symbolic() {
		return tileHeaderLen
	}
	return tileHeaderLen + 8*t.B*t.B
}

// AppendTile appends the tile's encoding to dst and returns the extended
// slice (append-style, so callers batch many tiles into one block).
func AppendTile(dst []byte, t *Tile) []byte {
	body := t.EncodedTileLen() - 4
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = binary.LittleEndian.AppendUint32(dst, blockTileMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(t.B))
	dst = binary.LittleEndian.AppendUint32(dst, t.gen)
	if t.Symbolic() {
		return append(dst, tileKindSymbolic)
	}
	dst = append(dst, tileKindReal)
	for _, v := range t.Data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// EncodeTile returns the tile's encoding as a fresh slice.
func EncodeTile(t *Tile) []byte {
	return AppendTile(make([]byte, 0, t.EncodedTileLen()), t)
}

// DecodeTile decodes one tile from the front of b, returning the tile and
// the remaining bytes. Corrupted or truncated input errors; it never
// panics and never returns a tile shorter than its header claims.
func DecodeTile(b []byte) (*Tile, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("matrix: tile truncated: %d bytes, want ≥4", len(b))
	}
	body := int(binary.LittleEndian.Uint32(b))
	rest := b[4:]
	if body < tileHeaderLen-4 {
		return nil, nil, fmt.Errorf("matrix: tile length %d shorter than header", body)
	}
	if body > len(rest) {
		return nil, nil, fmt.Errorf("matrix: tile truncated: length prefix %d, %d bytes left", body, len(rest))
	}
	if m := binary.LittleEndian.Uint32(rest); m != blockTileMagic {
		return nil, nil, fmt.Errorf("matrix: bad tile magic %#x", m)
	}
	dim := int(binary.LittleEndian.Uint32(rest[4:]))
	gen := binary.LittleEndian.Uint32(rest[8:])
	kind := rest[12]
	payload := rest[tileHeaderLen-4 : body]
	switch kind {
	case tileKindSymbolic:
		if len(payload) != 0 {
			return nil, nil, fmt.Errorf("matrix: symbolic tile carries %d payload bytes", len(payload))
		}
		if dim <= 0 || dim > maxTileDim {
			return nil, nil, fmt.Errorf("matrix: tile dimension %d out of range", dim)
		}
		t := NewSymbolicTile(dim)
		t.gen = gen
		return t, rest[body:], nil
	case tileKindReal:
		if dim <= 0 || dim > maxTileDim {
			return nil, nil, fmt.Errorf("matrix: tile dimension %d out of range", dim)
		}
		if want := 8 * dim * dim; len(payload) != want {
			return nil, nil, fmt.Errorf("matrix: tile payload %d bytes, want %d for b=%d", len(payload), want, dim)
		}
		t := NewTile(dim)
		for i := range t.Data {
			t.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		t.gen = gen
		return t, rest[body:], nil
	default:
		return nil, nil, fmt.Errorf("matrix: unknown tile kind %d", kind)
	}
}
