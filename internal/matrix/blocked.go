package matrix

import "fmt"

// Blocked is the r×r tile decomposition of an n×n DP table. If n is not
// divisible by the tile size b, the table is *virtually padded* (paper
// §IV) up to R·b with rule-specific padding elements so the blocked
// algorithms never see a ragged edge; ToDense strips the padding again.
type Blocked struct {
	// N is the logical (unpadded) problem size.
	N int
	// B is the tile dimension.
	B int
	// R is the grid dimension: R = ceil(N/B).
	R int
	// Tiles holds the R×R tile grid, row-major.
	Tiles []*Tile
}

// Grid returns the grid dimension r for problem size n and tile size b.
func Grid(n, b int) int {
	if b <= 0 || n <= 0 {
		panic("matrix: Grid requires positive n and b")
	}
	return (n + b - 1) / b
}

// NewBlocked allocates an R×R grid of zeroed b×b tiles for an n×n table.
func NewBlocked(n, b int) *Blocked {
	r := Grid(n, b)
	bl := &Blocked{N: n, B: b, R: r, Tiles: make([]*Tile, r*r)}
	for i := range bl.Tiles {
		bl.Tiles[i] = NewTile(b)
	}
	return bl
}

// NewSymbolicBlocked allocates an R×R grid of symbolic tiles: the shape of
// a paper-scale DP table without its 8·n² bytes of payload.
func NewSymbolicBlocked(n, b int) *Blocked {
	r := Grid(n, b)
	bl := &Blocked{N: n, B: b, R: r, Tiles: make([]*Tile, r*r)}
	for i := range bl.Tiles {
		bl.Tiles[i] = NewSymbolicTile(b)
	}
	return bl
}

// Block decomposes d into b×b tiles, filling any padded region with the
// given off-diagonal and diagonal padding elements (take them from the
// GEP rule's Pad/PadDiag so padded cells are inert).
func Block(d *Dense, b int, padOff, padDiag float64) *Blocked {
	bl := NewBlocked(d.N, b)
	np := bl.R * b
	for bi := 0; bi < bl.R; bi++ {
		for bj := 0; bj < bl.R; bj++ {
			t := bl.Tiles[bi*bl.R+bj]
			for i := 0; i < b; i++ {
				gi := bi*b + i
				for j := 0; j < b; j++ {
					gj := bj*b + j
					switch {
					case gi < d.N && gj < d.N:
						t.Data[i*b+j] = d.At(gi, gj)
					case gi == gj && gi < np:
						t.Data[i*b+j] = padDiag
					default:
						t.Data[i*b+j] = padOff
					}
				}
			}
		}
	}
	return bl
}

// Tile returns the tile at grid coordinate c.
func (bl *Blocked) Tile(c Coord) *Tile {
	bl.check(c)
	return bl.Tiles[c.I*bl.R+c.J]
}

// SetTile replaces the tile at grid coordinate c.
func (bl *Blocked) SetTile(c Coord, t *Tile) {
	bl.check(c)
	if t.B != bl.B {
		panic(fmt.Sprintf("matrix: SetTile dimension %d != %d", t.B, bl.B))
	}
	bl.Tiles[c.I*bl.R+c.J] = t
}

func (bl *Blocked) check(c Coord) {
	if c.I < 0 || c.I >= bl.R || c.J < 0 || c.J >= bl.R {
		panic(fmt.Sprintf("matrix: coordinate %v outside %d×%d grid", c, bl.R, bl.R))
	}
}

// Coords returns all grid coordinates in row-major order.
func (bl *Blocked) Coords() []Coord {
	out := make([]Coord, 0, bl.R*bl.R)
	for i := 0; i < bl.R; i++ {
		for j := 0; j < bl.R; j++ {
			out = append(out, Coord{i, j})
		}
	}
	return out
}

// Symbolic reports whether the decomposition carries symbolic tiles.
func (bl *Blocked) Symbolic() bool {
	return len(bl.Tiles) > 0 && bl.Tiles[0].Symbolic()
}

// ToDense reassembles the logical n×n matrix, dropping virtual padding.
func (bl *Blocked) ToDense() *Dense {
	if bl.Symbolic() {
		panic("matrix: ToDense of a symbolic blocked matrix")
	}
	d := NewDense(bl.N)
	for bi := 0; bi < bl.R; bi++ {
		for bj := 0; bj < bl.R; bj++ {
			t := bl.Tiles[bi*bl.R+bj]
			for i := 0; i < bl.B; i++ {
				gi := bi*bl.B + i
				if gi >= bl.N {
					break
				}
				for j := 0; j < bl.B; j++ {
					gj := bj*bl.B + j
					if gj >= bl.N {
						break
					}
					d.Set(gi, gj, t.At(i, j))
				}
			}
		}
	}
	return d
}

// Clone deep-copies the blocked matrix.
func (bl *Blocked) Clone() *Blocked {
	out := &Blocked{N: bl.N, B: bl.B, R: bl.R, Tiles: make([]*Tile, len(bl.Tiles))}
	for i, t := range bl.Tiles {
		out.Tiles[i] = t.Clone()
	}
	return out
}

// Bytes returns the total payload size across all tiles.
func (bl *Blocked) Bytes() int64 {
	var n int64
	for _, t := range bl.Tiles {
		n += t.Bytes()
	}
	return n
}
