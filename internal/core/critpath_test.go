package core

import (
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dpspark/internal/cluster"
	"dpspark/internal/matrix"
	"dpspark/internal/obs"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// Critical-path profiler integration: the attributed path must account
// for the whole virtual-clock advance of a run — clean and under chaos,
// for both rules and both drivers — and turning the profiler (or any of
// the observability plane) on must not move the modelled clock or a
// single result bit.

// dumpFlightOnFailure registers a cleanup that writes the context's
// flight-recorder contents to $DPSPARK_FLIGHT_DIR when the test fails.
// The CI chaos job sets the variable and uploads the directory as an
// artifact, so a red run ships its own black box.
func dumpFlightOnFailure(t *testing.T, ctx *rdd.Context) {
	t.Cleanup(func() {
		dir := os.Getenv("DPSPARK_FLIGHT_DIR")
		if dir == "" || !t.Failed() {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		path := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+".flight.jsonl")
		f, err := os.Create(path)
		if err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		defer f.Close()
		if err := ctx.Observer().Flight().WriteJSONL(f, 0); err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		t.Logf("flight recorder dumped to %s", path)
	})
}

// critRun executes one observed run (critical-path recorder on) and
// returns its outcome plus the context.
func critRun(t *testing.T, rule semiring.Rule, driver DriverKind, in *matrix.Dense, plan *rdd.FaultPlan) (chaosOut, *rdd.Context) {
	t.Helper()
	o := obs.New()
	o.EnableCritPath(true)
	ctx := rdd.NewContext(rdd.Conf{
		Cluster:     cluster.LocalN(4, 2),
		FaultPlan:   plan,
		Speculation: true,
		Observer:    o,
	})
	dumpFlightOnFailure(t, ctx)
	cfg := Config{Rule: rule, BlockSize: 8, Driver: driver, Partitions: 8}
	bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	out, stats, err := Run(ctx, bl, cfg)
	if err != nil {
		t.Fatalf("observed Run(%v): %v", driver, err)
	}
	return chaosOut{dense: out.ToDense(), stats: stats, rs: ctx.RecoveryStats(), event: ctx.Events()}, ctx
}

// TestChaosCritPathInvariant: for FW and GE under both drivers, clean
// and under the chaos plan, the profiler's path length must equal the
// run's virtual-clock advance with no unattributed gap; chaos runs must
// show recovery on the path; and the observed run must match the
// unobserved run's clock and bits exactly.
func TestChaosCritPathInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 32, rng)
		for _, driver := range []DriverKind{IM, CB} {
			for _, chaos := range []bool{false, true} {
				var plan *rdd.FaultPlan
				if chaos {
					plan = chaosPlan()
				}
				plain := chaosRun(t, rule, driver, in, plan)
				seen, ctx := critRun(t, rule, driver, in, plan)

				// Observability neutrality: same clock, same bits.
				if seen.stats.Time != plain.stats.Time {
					t.Fatalf("%s %v chaos=%v: profiler moved the clock: %v vs %v",
						rule.Name(), driver, chaos, seen.stats.Time, plain.stats.Time)
				}
				if !bitIdentical(seen.dense, plain.dense) {
					t.Fatalf("%s %v chaos=%v: profiler changed result bits", rule.Name(), driver, chaos)
				}

				rep := seen.stats.CritPath
				if rep == nil {
					t.Fatalf("%s %v chaos=%v: Stats.CritPath missing with recorder enabled", rule.Name(), driver, chaos)
				}
				if plain.stats.CritPath != nil {
					t.Fatalf("%s %v chaos=%v: unobserved run grew a critical path", rule.Name(), driver, chaos)
				}

				// The invariant: path length = virtual-clock wall, gap ≈ 0.
				wall := seen.stats.Time.Seconds()
				if diff := rep.Len.Seconds() - wall; diff > 1e-9*wall || diff < -1e-9*wall {
					t.Fatalf("%s %v chaos=%v: path %.12g s != clock %.12g s",
						rule.Name(), driver, chaos, rep.Len.Seconds(), wall)
				}
				if gap := rep.Unattributed.Seconds(); gap > 1e-9 {
					t.Fatalf("%s %v chaos=%v: %.3g s of the window unattributed", rule.Name(), driver, chaos, gap)
				}

				// Phase shares sum back to the path length (up to float
				// reassociation: Len accumulates in timeline order, this
				// sum per phase).
				var sum simtime.Duration
				for _, p := range obs.CritPhases {
					sum += rep.Phase(p)
				}
				if d := (sum - rep.Len).Seconds(); d > 1e-9 || d < -1e-9 {
					t.Fatalf("%s %v chaos=%v: phase sum %v != len %v", rule.Name(), driver, chaos, sum, rep.Len)
				}

				if chaos {
					if rep.RecoveryStages == 0 || rep.Phase(obs.PhaseRecovery) <= 0 {
						t.Fatalf("%s %v: chaos path shows no recovery: %+v", rule.Name(), driver, rep)
					}
				} else if rep.RecoveryStages != 0 || rep.Phase(obs.PhaseRecovery) != 0 {
					t.Fatalf("%s %v: clean path shows recovery: %+v", rule.Name(), driver, rep)
				}

				// The scrape gauges mirror the report.
				reg := ctx.Observer().Metrics()
				if got := reg.Gauge("dpspark_critical_path_seconds", obs.Labels{"phase": "total"}).Value(); got != rep.Len.Seconds() {
					t.Fatalf("%s %v chaos=%v: total gauge %v != path %v", rule.Name(), driver, chaos, got, rep.Len.Seconds())
				}
			}
		}
	}
}

// TestChaosFlightRecorderEvents: a chaos run's flight recorder holds the
// full causal story — submissions, completions, injected faults, fetch
// failures and the resubmission — stamped in nondecreasing clock order.
func TestChaosFlightRecorderEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	_, ctx := critRun(t, rule, IM, in, chaosPlan())

	events := ctx.Observer().Flight().Snapshot()
	if len(events) == 0 {
		t.Fatal("flight recorder empty after a chaos run")
	}
	byType := map[string]int{}
	lastSeq := uint64(0)
	for i, ev := range events {
		byType[ev.Type]++
		if i > 0 && ev.Seq <= lastSeq {
			t.Fatalf("sequence numbers not monotonic: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	for _, want := range []string{
		obs.EvStageSubmit, obs.EvStageComplete, obs.EvFault,
		obs.EvFetchFailure, obs.EvStageResubmit, obs.EvBlacklist,
	} {
		if byType[want] == 0 {
			t.Errorf("no %q events recorded; got %v", want, byType)
		}
	}
	if byType[obs.EvStageSubmit] < byType[obs.EvStageComplete] {
		t.Errorf("more completions than submissions: %v", byType)
	}
}

// TestCritPathConcurrentScrape hammers the live HTTP endpoints from
// several goroutines while a solve runs (the -race configuration this
// repo tests under), then checks the scraped plane never perturbed the
// run: modelled clock and result bits match the unobserved baseline,
// and the final /metrics body equals a direct registry dump.
func TestCritPathConcurrentScrape(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 96, rng)
	base := chaosRun(t, rule, IM, in, nil)

	o := obs.New()
	o.EnableCritPath(true)
	ctx := rdd.NewContext(rdd.Conf{Cluster: cluster.LocalN(4, 2), Speculation: true, Observer: o})
	srv, err := obs.ListenAndServe("localhost:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes atomic.Int64
	paths := []string{"/metrics", "/events?n=64", "/debug/critpath", "/healthz"}
	for i := range paths {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + srv.Addr() + path)
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					scrapes.Add(1)
				}
			}
		}(paths[i])
	}

	cfg := Config{Rule: rule, BlockSize: 8, Driver: IM, Partitions: 8}
	bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	out, stats, runErr := Run(ctx, bl, cfg)
	// On a machine that finishes the solve before the first request
	// lands, let the scrapers catch up so the success assertion below is
	// about the endpoints, not host speed.
	for deadline := time.Now().Add(5 * time.Second); scrapes.Load() == 0 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if runErr != nil {
		t.Fatalf("Run under scrape load: %v", runErr)
	}

	if scrapes.Load() == 0 {
		t.Fatal("no successful scrapes landed")
	}
	if stats.Time != base.stats.Time {
		t.Fatalf("scraping moved the modelled clock: %v vs %v", stats.Time, base.stats.Time)
	}
	if !bitIdentical(out.ToDense(), base.dense) {
		t.Fatal("scraping changed result bits")
	}

	// Quiesced, the live endpoint and a direct dump agree byte for byte.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	live, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var direct strings.Builder
	if err := o.Metrics().WritePrometheus(&direct); err != nil {
		t.Fatal(err)
	}
	if string(live) != direct.String() {
		t.Fatalf("live /metrics differs from WritePrometheus dump:\n%s\nvs\n%s", live, direct.String())
	}
}
