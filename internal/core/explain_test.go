package core

import (
	"strings"
	"testing"

	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

func TestExplainKernelCounts(t *testing.T) {
	// FW at r=4: per iteration 1 A, 3 B, 3 C, 9 D → totals ×4.
	plan, err := Explain(4096, Config{Rule: semiring.NewFloydWarshall(), BlockSize: 1024, Driver: IM})
	if err != nil {
		t.Fatal(err)
	}
	if plan.R != 4 {
		t.Fatalf("R = %d", plan.R)
	}
	if plan.KernelCalls[semiring.KindA] != 4 ||
		plan.KernelCalls[semiring.KindB] != 12 ||
		plan.KernelCalls[semiring.KindD] != 36 {
		t.Fatalf("kernel calls = %v", plan.KernelCalls)
	}
	// GE at r=4: Σ_k rest(k)² D kernels = 9+4+1+0 = 14.
	ge, err := Explain(4096, Config{Rule: semiring.NewGaussian(), BlockSize: 1024, Driver: CB})
	if err != nil {
		t.Fatal(err)
	}
	if ge.KernelCalls[semiring.KindD] != 14 || ge.KernelCalls[semiring.KindB] != 6 {
		t.Fatalf("GE kernel calls = %v", ge.KernelCalls)
	}
}

func TestExplainCopyCountsMatchPaper(t *testing.T) {
	// §IV-C: in iteration k of GE, function A makes 2(r−k−1) + (r−k−1)²
	// copies of the pivot tile.
	plan, err := Explain(8192, Config{Rule: semiring.NewGaussian(), BlockSize: 1024, Driver: IM})
	if err != nil {
		t.Fatal(err)
	}
	r := plan.R
	for _, it := range plan.Iterations {
		rest := r - it.K - 1
		pivotCopies := 2*rest + rest*rest
		rowColCopies := 2 * rest * rest
		if it.Copies != pivotCopies+rowColCopies {
			t.Fatalf("iter %d: copies = %d, want %d pivot + %d row/col",
				it.K, it.Copies, pivotCopies, rowColCopies)
		}
	}
	// CB replicates nothing.
	cb, _ := Explain(8192, Config{Rule: semiring.NewGaussian(), BlockSize: 1024, Driver: CB})
	if cb.CopyTiles != 0 {
		t.Fatalf("CB copies = %d", cb.CopyTiles)
	}
	// FW's IM copies exclude the pivot→interior replication.
	fw, _ := Explain(8192, Config{Rule: semiring.NewFloydWarshall(), BlockSize: 1024, Driver: IM})
	rest := fw.R - 1
	if fw.Iterations[0].Copies != 2*rest+2*rest*rest {
		t.Fatalf("FW iter-0 copies = %d", fw.Iterations[0].Copies)
	}
}

// TestExplainMatchesEngineBytes cross-checks the analytic plan against
// the engine: the IM driver's actual shuffled bytes equal the plan's
// moved bytes.
func TestExplainMatchesEngineBytes(t *testing.T) {
	cfg := Config{Rule: semiring.NewGaussian(), BlockSize: 512, Driver: IM}
	n := 2048
	plan, err := Explain(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := clusterCtx()
	bl := matrix.NewSymbolicBlocked(n, cfg.BlockSize)
	if _, _, err := Run(ctx, bl, cfg); err != nil {
		t.Fatal(err)
	}
	var spilled int64
	for _, ev := range ctx.Events() {
		spilled += ev.SpillBytes
	}
	// The engine's records carry key/tag framing (≈17 B per 2 MiB tile),
	// so the volumes agree to well under a percent.
	ratio := float64(spilled) / float64(plan.MovedBytes)
	if ratio < 0.999 || ratio > 1.001 {
		t.Fatalf("engine shuffled %d bytes, plan says %d (ratio %.4f)",
			spilled, plan.MovedBytes, ratio)
	}
}

func TestExplainRender(t *testing.T) {
	plan, err := Explain(32768, Config{Rule: semiring.NewGaussian(), BlockSize: 1024, Driver: IM})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := plan.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"grid=32×32", "kernels:", "replicated", "more iterations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExplainValidation(t *testing.T) {
	if _, err := Explain(16, Config{BlockSize: 4}); err == nil {
		t.Fatal("missing rule must fail")
	}
	if _, err := Explain(16, Config{Rule: semiring.NewGaussian()}); err == nil {
		t.Fatal("missing block size must fail")
	}
}
