package core

import (
	"fmt"

	"dpspark/internal/matrix"
)

// Role tags a tile message flowing through the IM driver's stages.
type Role uint8

// Message roles.
const (
	// RoleSelf is a target block's current (pre-update) value, selected
	// out of the DP RDD by a FilterX predicate.
	RoleSelf Role = iota
	// RoleDone is a block already updated in an earlier stage of this
	// iteration, passing through to the iteration's output.
	RoleDone
	// RolePivot is a copy of the updated pivot tile A(k,k), addressed to
	// a consumer block (the w operand of B, C and D).
	RolePivot
	// RoleRow is a copy of an updated row-panel tile B(k,j), addressed to
	// the D blocks of column j (the v operand of D).
	RoleRow
	// RoleCol is a copy of an updated column-panel tile C(i,k), addressed
	// to the D blocks of row i (the u operand of D).
	RoleCol
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleSelf:
		return "self"
	case RoleDone:
		return "done"
	case RolePivot:
		return "pivot"
	case RoleRow:
		return "row"
	case RoleCol:
		return "col"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Msg is a tagged tile: the unit the IM driver's flatMaps emit and its
// combineByKeys assemble. The copies a kernel makes of its updated output
// tile — the paper's "2(r−k−1) + (r−k−1)² copies" — are Msgs with
// RolePivot/RoleRow/RoleCol addressed to the consumers' coordinates.
type Msg struct {
	Role Role
	Tile *matrix.Tile
}

// SizeBytes implements the engine sizer hook: a tagged tile costs its
// payload plus the tag.
func (m Msg) SizeBytes() int64 {
	if m.Tile == nil {
		return 1
	}
	return m.Tile.Bytes() + 1
}

// Operands is the assembled operand set for one target block — the value
// type produced by combineByKey in Listing 1.
type Operands struct {
	Self  *matrix.Tile
	Done  *matrix.Tile
	Pivot *matrix.Tile
	Row   *matrix.Tile
	Col   *matrix.Tile
}

// SizeBytes implements the engine sizer hook.
func (o Operands) SizeBytes() int64 {
	var n int64
	for _, t := range []*matrix.Tile{o.Self, o.Done, o.Pivot, o.Row, o.Col} {
		if t != nil {
			n += t.Bytes()
		}
	}
	return n + 1
}

// absorb merges one message into the operand set; duplicate roles for one
// key indicate a driver bug and panic loudly.
func (o Operands) absorb(m Msg) Operands {
	switch m.Role {
	case RoleSelf:
		if o.Self != nil {
			panic("core: duplicate self operand")
		}
		o.Self = m.Tile
	case RoleDone:
		if o.Done != nil {
			panic("core: duplicate done operand")
		}
		o.Done = m.Tile
	case RolePivot:
		if o.Pivot != nil {
			panic("core: duplicate pivot operand")
		}
		o.Pivot = m.Tile
	case RoleRow:
		if o.Row != nil {
			panic("core: duplicate row operand")
		}
		o.Row = m.Tile
	case RoleCol:
		if o.Col != nil {
			panic("core: duplicate col operand")
		}
		o.Col = m.Tile
	default:
		panic(fmt.Sprintf("core: unknown role %v", m.Role))
	}
	return o
}

// merge combines two operand sets (mergeCombiners).
func (o Operands) merge(other Operands) Operands {
	for _, m := range other.messages() {
		o = o.absorb(m)
	}
	return o
}

// messages decomposes the set back into tagged tiles.
func (o Operands) messages() []Msg {
	var out []Msg
	if o.Self != nil {
		out = append(out, Msg{RoleSelf, o.Self})
	}
	if o.Done != nil {
		out = append(out, Msg{RoleDone, o.Done})
	}
	if o.Pivot != nil {
		out = append(out, Msg{RolePivot, o.Pivot})
	}
	if o.Row != nil {
		out = append(out, Msg{RoleRow, o.Row})
	}
	if o.Col != nil {
		out = append(out, Msg{RoleCol, o.Col})
	}
	return out
}
