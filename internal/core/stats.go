package core

import (
	"time"

	"dpspark/internal/obs"
	"dpspark/internal/rdd"
	"dpspark/internal/simtime"
	"dpspark/internal/store"
)

// Stats reports a run's virtual cost and outcome.
type Stats struct {
	// Time is the modelled job time on the configured cluster.
	Time simtime.Duration
	// Wall is the real elapsed time of this process (interesting for
	// real-mode runs; incidental for symbolic runs).
	Wall time.Duration
	// Iterations is the grid dimension r the run used.
	Iterations int
	// TimedOut reports whether Time exceeded the paper's 8-hour bound.
	TimedOut bool

	// ComputeTime, ShuffleTime, BroadcastTime and OverheadTime decompose
	// Time along the critical path: kernel/task compute, shuffle I/O
	// (local-disk staging + fetches), collect/broadcast data movement
	// (shared-fs + driver network) and scheduling overhead. They sum to
	// Time (see rdd.Breakdown).
	ComputeTime, ShuffleTime, BroadcastTime, OverheadTime simtime.Duration
	// RecoveryTime is the clock time spent in resubmitted stages
	// recomputing lost shuffle map outputs. It overlaps the four
	// components above (recovery stages attribute their time there too)
	// and is excluded from their sum; 0 on fault-free runs.
	RecoveryTime simtime.Duration
	// ShuffleBytes is the shuffle data the run staged (write side: equal
	// to the sum of SpillBytes over the run's stage events).
	ShuffleBytes int64
	// BroadcastBytes is the collect/broadcast data the run moved through
	// the shared filesystem (driver-staged payloads + executor fetches).
	BroadcastBytes int64
	// MaxTaskSkew is the worst per-stage straggler ratio MaxTask/MeanTask
	// observed during the run (1 = perfectly balanced, 0 = no stages).
	MaxTaskSkew float64

	// KernelSpawned, KernelInlined and KernelHandoffs attribute the run's
	// real kernel-thread occupancy: branches the shared per-node kernel
	// pools ran on their own goroutine, branches inlined on the caller
	// because every spare token was busy, and barrier token hand-offs.
	// All zero when Conf.KernelThreads ≤ 1 (serial kernels) and for
	// symbolic runs (no real kernel executions).
	KernelSpawned, KernelInlined, KernelHandoffs int64

	// SpilledBlocks, EvictedBlocks and CorruptBlocks count the durable
	// block store's activity during the run: blocks written to the
	// checksummed disk tier (forced spills + evictions), blocks evicted
	// under Conf.MemoryBudget pressure, and blocks whose verification
	// failed on read (repaired through the recompute path). All zero
	// without Conf.DurableDir.
	SpilledBlocks, EvictedBlocks, CorruptBlocks int64
	// SpillWall is the real time spent writing spill files — wall, not
	// modelled: durable staging is host I/O the cluster model does not
	// price (the modelled charges are identical with and without it).
	SpillWall time.Duration

	// ReplicatedBlocks counts blocks the run copied to the remote replica
	// tier (Config.RemoteDir); zero without one.
	ReplicatedBlocks int64
	// RestoredBlocks and RecomputedBlocks split the run's block repairs
	// by path: staged shuffle blocks restored from intact remote replicas
	// vs rebuilt by the partial map-recompute fallback (replica missing,
	// corrupt, the tier down, or restore retries exhausted).
	RestoredBlocks, RecomputedBlocks int64
	// RemoteRetries counts remote restore reads retried after a simulated
	// timeout; DegradedWindows counts entries into recompute-only
	// degraded mode (one per remote-outage window passed through).
	RemoteRetries, DegradedWindows int64

	// DetectionTime is the modelled clock spent waiting for the
	// heartbeat failure detector to declare executors dead (latency =
	// Config.HeartbeatMisses × Config.HeartbeatInterval per declaring
	// stage boundary). Like RecoveryTime it overlaps the component sum
	// (the wait is also attributed to OverheadTime); 0 with the detector
	// off or no declarations.
	DetectionTime simtime.Duration
	// Suspicions and FalseSuspicions count failure-detector verdicts:
	// executors suspected after a missed heartbeat lease, and alive
	// executors (GC pause, network partition) wrongly declared dead
	// after the full lease count. FencedCommits counts zombie-attempt
	// map outputs rejected by the commit lease. All zero with the
	// detector off.
	Suspicions, FalseSuspicions, FencedCommits int64
	// StormThrottledResubmits counts stage resubmissions delayed by the
	// recovery-storm token bucket (Config.RecoveryTokens); RackFailures
	// counts fired correlated fault-domain losses.
	StormThrottledResubmits, RackFailures int64

	// CritPath is the run's critical-path report (nil unless the
	// observer's critical-path recorder was enabled for the run). Its Len
	// equals Time up to virtual-clock float resolution.
	CritPath *obs.CritPathReport
}

// RunMark snapshots an engine context before a run so StatsSince can
// report the run's delta. It is the single place Stats (including Wall)
// is derived, shared by core.Run and the baseline solver.
type RunMark struct {
	wall   time.Time
	clock  simtime.Duration
	bd     rdd.Breakdown
	events int
	st     store.Stats
	rs     rdd.RecoveryStats

	poolSpawned, poolInlined, poolHandoffs int64
}

// MarkRun captures the context state at the start of a run.
func MarkRun(ctx *rdd.Context) RunMark {
	m := RunMark{
		wall:   time.Now(),
		clock:  ctx.Clock(),
		bd:     ctx.Breakdown(),
		events: len(ctx.Events()),
		st:     ctx.StoreStats(),
		rs:     ctx.RecoveryStats(),
	}
	m.poolSpawned, m.poolInlined, m.poolHandoffs = ctx.KernelPoolStats()
	return m
}

// StatsSince builds the run's Stats from everything the context did since
// the mark.
func (m RunMark) StatsSince(ctx *rdd.Context, iterations int) *Stats {
	now := ctx.Clock()
	elapsed := now - m.clock
	bd := ctx.Breakdown().Sub(m.bd)
	st := ctx.StoreStats()
	rs := ctx.RecoveryStats()
	skew := 0.0
	if events := ctx.Events(); m.events < len(events) {
		for _, ev := range events[m.events:] {
			if ev.MeanTask > 0 {
				if s := ev.MaxTask.Seconds() / ev.MeanTask.Seconds(); s > skew {
					skew = s
				}
			}
		}
	}
	s := &Stats{
		Time:           elapsed,
		Wall:           time.Since(m.wall),
		Iterations:     iterations,
		TimedOut:       elapsed > 8*simtime.Hour,
		ComputeTime:    bd.Compute,
		ShuffleTime:    bd.Shuffle,
		BroadcastTime:  bd.Broadcast,
		OverheadTime:   bd.Overhead,
		RecoveryTime:   bd.Recovery,
		ShuffleBytes:   bd.ShuffleWriteBytes,
		BroadcastBytes: bd.BroadcastBytes,
		MaxTaskSkew:    skew,
		SpilledBlocks:  st.Spilled - m.st.Spilled,
		EvictedBlocks:  st.Evicted - m.st.Evicted,
		CorruptBlocks:  st.CorruptDetected - m.st.CorruptDetected,
		SpillWall:      st.SpillWall - m.st.SpillWall,

		ReplicatedBlocks: st.ReplicatedBlocks - m.st.ReplicatedBlocks,
		RestoredBlocks:   rs.RestoredBlocks - m.rs.RestoredBlocks,
		RecomputedBlocks: rs.RecomputedBlocks - m.rs.RecomputedBlocks,
		RemoteRetries:    rs.RemoteRetries - m.rs.RemoteRetries,
		DegradedWindows:  rs.DegradedWindows - m.rs.DegradedWindows,

		DetectionTime:           bd.Detection,
		Suspicions:              rs.Suspicions - m.rs.Suspicions,
		FalseSuspicions:         rs.FalseSuspicions - m.rs.FalseSuspicions,
		FencedCommits:           rs.FencedCommits - m.rs.FencedCommits,
		StormThrottledResubmits: rs.StormThrottledResubmits - m.rs.StormThrottledResubmits,
		RackFailures:            rs.RackFailures - m.rs.RackFailures,
	}
	ps, pi, ph := ctx.KernelPoolStats()
	s.KernelSpawned = ps - m.poolSpawned
	s.KernelInlined = pi - m.poolInlined
	s.KernelHandoffs = ph - m.poolHandoffs
	if cp := ctx.Observer().CritPath(); cp.Enabled() {
		rep := cp.Compute(ctx.TracePid(), m.clock, now)
		s.CritPath = &rep
		reg := ctx.Observer().Metrics()
		for _, p := range obs.CritPhases {
			reg.Gauge("dpspark_critical_path_seconds", obs.Labels{"phase": p}).Set(rep.Phase(p).Seconds())
		}
		reg.Gauge("dpspark_critical_path_seconds", obs.Labels{"phase": "total"}).Set(rep.Len.Seconds())
	}
	return s
}
