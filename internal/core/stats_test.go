package core

import (
	"math"
	"testing"

	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// TestStatsPhaseBreakdown checks the acceptance identity on a symbolic
// cluster run: the four phase components decompose Stats.Time to within
// 1%, and the traffic/skew/wall fields are populated.
func TestStatsPhaseBreakdown(t *testing.T) {
	const n, b = 8192, 1024
	for _, driver := range []DriverKind{IM, CB} {
		t.Run(driver.String(), func(t *testing.T) {
			ctx := clusterCtx()
			bl := matrix.NewSymbolicBlocked(n, b)
			_, stats, err := Run(ctx, bl, Config{
				Rule: semiring.NewFloydWarshall(), BlockSize: b, Driver: driver,
				RecursiveKernel: true, RShared: 16, Threads: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum := stats.ComputeTime + stats.ShuffleTime + stats.BroadcastTime + stats.OverheadTime
			if diff := math.Abs(sum.Seconds() - stats.Time.Seconds()); diff > 0.01*stats.Time.Seconds() {
				t.Errorf("phase sum %v != Time %v (diff %.3gs, >1%%)", sum, stats.Time, diff)
			}
			if stats.ComputeTime <= 0 || stats.ShuffleTime <= 0 {
				t.Errorf("compute %v / shuffle %v phases must be positive", stats.ComputeTime, stats.ShuffleTime)
			}
			if stats.ShuffleBytes <= 0 {
				t.Errorf("ShuffleBytes = %d, want > 0", stats.ShuffleBytes)
			}
			if stats.MaxTaskSkew < 1 {
				t.Errorf("MaxTaskSkew = %v, want ≥ 1", stats.MaxTaskSkew)
			}
			if stats.Wall <= 0 {
				t.Errorf("Wall = %v, want > 0", stats.Wall)
			}
			// The write-side shuffle total must agree with the event log.
			var spill int64
			for _, ev := range ctx.Events() {
				spill += ev.SpillBytes
			}
			if stats.ShuffleBytes != spill {
				t.Errorf("Stats.ShuffleBytes = %d, events spill sum = %d", stats.ShuffleBytes, spill)
			}
		})
	}
}

// TestStatsSinceDelta checks stats are deltas from the mark, not
// context-lifetime totals, when two runs share one context.
func TestStatsSinceDelta(t *testing.T) {
	ctx := clusterCtx()
	bl := matrix.NewSymbolicBlocked(4096, 1024)
	cfg := Config{Rule: semiring.NewFloydWarshall(), BlockSize: 1024, Driver: IM}
	_, first, err := Run(ctx, bl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clockAfterFirst := ctx.Clock()
	_, second, err := Run(ctx, matrix.NewSymbolicBlocked(4096, 1024), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Time <= 0 {
		t.Fatalf("second run time = %v, want > 0", second.Time)
	}
	if got, want := second.Time.Seconds(), (ctx.Clock() - clockAfterFirst).Seconds(); math.Abs(got-want) > 1e-9*math.Max(1, want) {
		t.Errorf("second run Time = %v, want clock delta %v", second.Time, ctx.Clock()-clockAfterFirst)
	}
	if second.ShuffleBytes >= first.ShuffleBytes*2 {
		t.Errorf("second run ShuffleBytes = %d looks cumulative (first = %d)", second.ShuffleBytes, first.ShuffleBytes)
	}
}
