// Package core is the paper's primary contribution: the execution of
// GEP-form dynamic programs (Fig. 1) on a Spark-like engine via parametric
// r-way recursive divide-&-conquer algorithms (Fig. 4).
//
// The DP table is decomposed into an r×r grid of b×b tiles held in a pair
// RDD keyed by tile coordinate (§IV-C). Each top-level iteration k runs
// three kernel stages with the dependency structure of Fig. 7:
//
//	A(k,k)  ──────►  B(k,j) ∀j   ─┐
//	   │                          ├──►  D(i,j) ∀i,j
//	   └──────────►  C(i,k) ∀i   ─┘
//
// (A feeds B, C and D; B feeds the D blocks below it in its column; C
// feeds the D blocks beside it in its row.) Which i, j participate is the
// update rule's Restricted range: every non-pivot index for semiring GEP
// (Floyd-Warshall), only the trailing submatrix for Gaussian elimination.
//
// Two drivers move tiles between stages:
//
//   - IM (In-Memory, Listing 1): kernels emit copies of their freshly
//     updated tile addressed to every consumer; combineByKey assembles
//     each target tile's operand set. All movement is RDD shuffles staged
//     on node-local disks.
//   - CB (Collect-Broadcast, Listing 2): updated pivot/panel tiles are
//     collected to the driver and redistributed through shared persistent
//     storage; only the end-of-iteration partitionBy shuffles data.
//
// Kernels inside executors are either iterative loops or parallel
// recursive r_shared-way R-DP (internal/kernels) — the paper's OpenMP
// offload, realized as a bounded goroutine pool.
package core

import (
	"fmt"
	"os"
	"time"

	"dpspark/internal/costmodel"
	"dpspark/internal/kernels"
	"dpspark/internal/matrix"
	"dpspark/internal/obs"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
)

// Block is one DP-table tile record: the pair RDD element of §IV-C.
type Block = rdd.Pair[matrix.Coord, *matrix.Tile]

// DriverKind selects the tile-movement strategy.
type DriverKind int

// Driver kinds.
const (
	// IM is the In-Memory driver (Listing 1).
	IM DriverKind = iota
	// CB is the Collect-Broadcast driver (Listing 2).
	CB
)

// String names the driver.
func (d DriverKind) String() string {
	if d == CB {
		return "CB"
	}
	return "IM"
}

// Config carries the paper's tunables for one run.
type Config struct {
	// Rule is the GEP update rule (Floyd-Warshall, Gaussian, ...).
	Rule semiring.Rule
	// BlockSize is the tile dimension b; the grid dimension r follows
	// from the problem size (with virtual padding).
	BlockSize int
	// Driver selects IM or CB.
	Driver DriverKind
	// RecursiveKernel selects r_shared-way R-DP kernels; false runs
	// iterative loop kernels.
	RecursiveKernel bool
	// RShared is the recursive kernel fan-out (≥2).
	RShared int
	// Base is the recursive base-case size (default 64).
	Base int
	// Threads is OMP_NUM_THREADS for recursive kernels. 0 inherits
	// KernelThreads.
	Threads int
	// KernelThreads is the per-invocation kernel thread budget — the
	// cores×threads split of the paper's OpenMP experiments, applied to
	// both kernel families (for iterative kernels it drives the row-band
	// parallel split of the blocked fast paths). 0 (the default) inherits
	// the engine's rdd.Conf.KernelThreads; an explicit value must not
	// exceed it, because the shared per-node pools are sized by the Conf.
	KernelThreads int
	// Partitions is the RDD partition count (default: 2× total cores,
	// the paper's guideline).
	Partitions int
	// Partitioner overrides the default hash partitioner (the paper's
	// future-work grid partitioner lives in internal/rdd).
	Partitioner rdd.Partitioner
	// CheckpointEvery is the IM driver's lineage-truncation cadence: the
	// DP table is checkpointed every K iterations (and always after the
	// last), bounding recompute depth under failure to K iterations'
	// shuffles. Default 1 — per-iteration, the Spark FW implementations'
	// behaviour. The CB driver ignores it for truncation (its
	// collect/broadcast staging already persists each iteration's panels
	// outside the lineage) but honours it as the durable-checkpoint
	// cadence when DurableDir is set.
	CheckpointEvery int
	// DurableDir, when non-empty, makes every CheckpointEvery boundary
	// durable: the driver persists the full tile grid, the iteration
	// cursor and the engine's restartable scheduler state as an
	// atomically-written, per-section-checksummed checkpoint file under
	// this directory (see internal/store). Resume restarts from the
	// newest intact checkpoint, bit-identical to the uninterrupted run.
	// Default "": checkpoints only truncate lineage in memory.
	DurableDir string
	// KeepCheckpoints, when > 0, bounds durable checkpoint retention:
	// after each boundary's checkpoint is written, only the newest K
	// intact ckpt-*.ck files are retained — older ones are deleted, and
	// never before a newer checkpoint has verified, so a crash landing
	// anywhere inside the GC window still leaves a resumable set (see
	// store.GCCheckpoints). Requires DurableDir. Default 0: keep every
	// checkpoint.
	KeepCheckpoints int
	// StopAfter, when >0, stops the driver loop cleanly after that many
	// iterations and returns the partial table — the kill switch of
	// checkpoint–restart demos and tests (`dpspark durable -stop`): a
	// later Resume picks up from the last durable boundary. Default 0:
	// run to completion.
	StopAfter int
	// StopRequested, when set, is polled at each iteration boundary: once
	// it reports true the driver stops like StopAfter — but first forces
	// a durable checkpoint at the stop boundary (when DurableDir is set),
	// even off the CheckpointEvery cadence, so no finished iteration is
	// lost. This is the cooperative hook behind graceful SIGTERM handling
	// and server drain: a later Resume continues from the stop boundary,
	// bit-identical. The function must be safe for concurrent use (it is
	// typically an atomic flag set from a signal handler).
	StopRequested func() bool
	// OnCheckpoint, when set with DurableDir, is called after each durable
	// checkpoint file has been atomically written (and after retention
	// GC), with the boundary's iteration cursor. The serve layer journals
	// these transitions so a restarted server knows a resumable boundary
	// exists without scanning directories. Called from the driver
	// goroutine; it must not call back into the run.
	OnCheckpoint func(iteration int)
}

// normalize fills Config defaults and validates.
func (cfg *Config) normalize(ctx *rdd.Context) error {
	if cfg.Rule == nil {
		return fmt.Errorf("core: Config.Rule is required")
	}
	if cfg.BlockSize < 1 {
		return fmt.Errorf("core: BlockSize must be ≥1, got %d", cfg.BlockSize)
	}
	if cfg.KernelThreads < 0 {
		return fmt.Errorf("core: KernelThreads must be ≥ 0 (0 inherits the engine's Conf.KernelThreads), got %d", cfg.KernelThreads)
	}
	if cfg.KernelThreads == 0 {
		cfg.KernelThreads = ctx.KernelThreads()
	}
	if cfg.KernelThreads > ctx.KernelThreads() {
		return fmt.Errorf("core: KernelThreads %d exceeds the engine's per-node kernel pool width %d; raise rdd.Conf.KernelThreads",
			cfg.KernelThreads, ctx.KernelThreads())
	}
	if cfg.RecursiveKernel {
		if cfg.RShared < 2 {
			return fmt.Errorf("core: RShared must be ≥2 for recursive kernels, got %d", cfg.RShared)
		}
		if cfg.Base < 1 {
			cfg.Base = 64
		}
		if cfg.Threads < 1 {
			cfg.Threads = cfg.KernelThreads
		}
	}
	if cfg.Partitions < 1 {
		cfg.Partitions = ctx.Cluster().DefaultPartitions()
	}
	if cfg.Partitioner == nil {
		cfg.Partitioner = rdd.NewHashPartitioner(cfg.Partitions)
	}
	if cfg.CheckpointEvery < 0 {
		return fmt.Errorf("core: CheckpointEvery must be ≥ 0 (0 means every iteration), got %d", cfg.CheckpointEvery)
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 1
	}
	// A K-iteration lineage window keeps 3K shuffles alive (pivot,
	// row-col, update per iteration); the engine's shuffle cleanup must
	// not retire them while a later action (or failure recovery) can
	// still replay them.
	if cfg.Driver == IM && 3*cfg.CheckpointEvery > ctx.KeepShuffles() {
		return fmt.Errorf("core: CheckpointEvery %d needs %d live shuffles but Conf.KeepShuffles is %d; raise KeepShuffles to ≥ %d",
			cfg.CheckpointEvery, 3*cfg.CheckpointEvery, ctx.KeepShuffles(), 3*cfg.CheckpointEvery)
	}
	if cfg.StopAfter < 0 {
		return fmt.Errorf("core: StopAfter must be ≥ 0 (0 runs to completion), got %d", cfg.StopAfter)
	}
	if cfg.KeepCheckpoints < 0 {
		return fmt.Errorf("core: KeepCheckpoints must be ≥ 0 (0 keeps every checkpoint), got %d", cfg.KeepCheckpoints)
	}
	if cfg.KeepCheckpoints > 0 && cfg.DurableDir == "" {
		return fmt.Errorf("core: KeepCheckpoints %d needs DurableDir — there are no checkpoint files to retire", cfg.KeepCheckpoints)
	}
	if cfg.DurableDir != "" {
		if err := os.MkdirAll(cfg.DurableDir, 0o755); err != nil {
			return fmt.Errorf("core: DurableDir %s not creatable: %w", cfg.DurableDir, err)
		}
	}
	return nil
}

// KernelName describes the kernel configuration for reports.
func (cfg Config) KernelName() string {
	if cfg.RecursiveKernel {
		return fmt.Sprintf("rec%d-way(omp=%d)", cfg.RShared, cfg.Threads)
	}
	if cfg.KernelThreads > 1 {
		return fmt.Sprintf("iterative(threads=%d)", cfg.KernelThreads)
	}
	return "iterative"
}

// Run executes the GEP computation over the blocked DP table on the
// engine and returns the resulting table (nil for symbolic inputs), the
// run stats and the first failure, if any. The input is not mutated.
func Run(ctx *rdd.Context, bl *matrix.Blocked, cfg Config) (*matrix.Blocked, *Stats, error) {
	if bl.B != cfg.BlockSize {
		return nil, nil, fmt.Errorf("core: blocked matrix tile size %d != Config.BlockSize %d", bl.B, cfg.BlockSize)
	}
	if err := cfg.normalize(ctx); err != nil {
		return nil, nil, err
	}
	return execute(ctx, bl, cfg, 0, true)
}

// execute runs the (normalized) driver loop from iteration startK.
// disown resets every input tile's ownership tag so the first kernel to
// touch one takes a defensive copy — Run's contract that the caller's
// matrix is never mutated; Resume instead keeps the checkpointed tags,
// whose replay semantics the resumed run must continue.
func execute(ctx *rdd.Context, bl *matrix.Blocked, cfg Config, startK int, disown bool) (*matrix.Blocked, *Stats, error) {
	mark := MarkRun(ctx)
	jobStart := ctx.Clock()

	var blocks []Block
	if disown {
		blocks = BlocksFromMatrix(bl)
	} else {
		blocks = blocksKeepingGen(bl)
	}
	dp := rdd.ParallelizePairs(ctx, blocks, cfg.Partitioner)
	run := &runner{ctx: ctx, cfg: cfg, r: bl.R, n: bl.N, startK: startK}

	var err error
	switch cfg.Driver {
	case CB:
		dp, err = run.collectBroadcast(dp)
	default:
		dp, err = run.inMemory(dp)
	}
	if err != nil {
		return nil, mark.StatsSince(ctx, bl.R), err
	}

	ctx.SetPhase("result")
	defer ctx.SetPhase("")
	var out *matrix.Blocked
	if bl.Symbolic() {
		// Materialize the final generation without hauling 8·n² bytes to
		// the driver (count is the terminal action).
		if _, err = dp.Count(); err != nil {
			return nil, mark.StatsSince(ctx, bl.R), err
		}
	} else {
		blocks, cerr := dp.Collect()
		if cerr != nil {
			return nil, mark.StatsSince(ctx, bl.R), cerr
		}
		out, err = MatrixFromBlocks(bl.N, bl.B, bl.R, blocks)
		if err != nil {
			return nil, mark.StatsSince(ctx, bl.R), err
		}
	}
	ctx.EmitDriverSpan(fmt.Sprintf("%s %s run r=%d", cfg.Driver, cfg.KernelName(), bl.R),
		"run", jobStart, map[string]string{"driver": cfg.Driver.String(), "kernel": cfg.KernelName()})
	return out, mark.StatsSince(ctx, bl.R), nil
}

// BlocksFromMatrix flattens a blocked matrix into pair records. The tiles
// are disowned (gen 0) so the first kernel to touch one takes a defensive
// copy — Run's contract is that the input is never mutated.
func BlocksFromMatrix(bl *matrix.Blocked) []Block {
	out := make([]Block, 0, bl.R*bl.R)
	for _, c := range bl.Coords() {
		t := bl.Tile(c)
		t.SetGen(0)
		out = append(out, rdd.KV(c, t))
	}
	return out
}

// MatrixFromBlocks reassembles a blocked matrix from pair records,
// verifying that exactly the full grid is present.
func MatrixFromBlocks(n, b, r int, blocks []Block) (*matrix.Blocked, error) {
	out := matrix.NewSymbolicBlocked(n, b)
	if out.R != r {
		return nil, fmt.Errorf("core: grid %d does not match expected %d", out.R, r)
	}
	seen := make(map[matrix.Coord]bool, len(blocks))
	for _, blk := range blocks {
		if seen[blk.Key] {
			return nil, fmt.Errorf("core: duplicate block %v in result", blk.Key)
		}
		seen[blk.Key] = true
		// Disown the tile: it now belongs to the caller, and feeding it
		// into a later Run must force a fresh defensive copy.
		blk.Value.SetGen(0)
		out.SetTile(blk.Key, blk.Value)
	}
	if len(seen) != r*r {
		return nil, fmt.Errorf("core: result has %d blocks, want %d", len(seen), r*r)
	}
	return out, nil
}

// runner holds one Run's shared state.
type runner struct {
	ctx *rdd.Context
	cfg Config
	r   int
	// n is the unpadded problem size, recorded in durable checkpoints.
	n int
	// startK is the first iteration the driver loop runs: 0 for Run,
	// the checkpoint's iteration cursor for Resume.
	startK int
}

// kernelConfig builds the cost-model description of the configured kernel.
func (run *runner) kernelConfig() costmodel.KernelConfig {
	threads := run.cfg.KernelThreads
	if run.cfg.RecursiveKernel {
		threads = run.cfg.Threads
	}
	return costmodel.KernelConfig{
		Recursive: run.cfg.RecursiveKernel,
		RShared:   run.cfg.RShared,
		Base:      run.cfg.Base,
		Threads:   threads,
		CoTasks:   run.ctx.ExecutorCores(),
	}
}

// newKernelRunner builds the run's kernel applicator: the configured exec
// (instrumented for wall-time metrics), the cost-model kernel description
// and the per-(exec, kind) metric handles, resolved once here instead of a
// map-build-plus-registry-lookup per kernel call.
func (run *runner) newKernelRunner() *kernelRunner {
	var e kernels.Exec
	if run.cfg.RecursiveKernel {
		e = kernels.NewRecursiveExec(run.cfg.Rule, run.cfg.RShared, run.cfg.Base, run.cfg.Threads)
	} else {
		e = kernels.NewIterativePool(run.cfg.Rule, run.cfg.KernelThreads)
	}
	reg := run.ctx.Observer().Metrics()
	var sink metricsSink
	kr := &kernelRunner{
		kc:   run.kernelConfig(),
		pool: matrix.DefaultPool,
	}
	for kind := semiring.KindA; kind <= semiring.KindD; kind++ {
		l := obs.Labels{"exec": e.Name(), "kind": kind.String()}
		kr.m[kind] = kindMetrics{
			calls: reg.Counter("dpspark_kernel_calls_total", l),
			cost:  reg.Histogram("dpspark_kernel_seconds", l, kernelSecondsBuckets),
			occ:   reg.Gauge("dpspark_kernel_occupancy", l),
		}
		sink.wall[kind] = reg.Histogram("dpspark_kernel_wall_seconds", l, kernelSecondsBuckets)
	}
	kr.exec = kernels.Instrument(e, sink)
	kr.pexec, _ = kr.exec.(kernels.PoolExec)
	return kr
}

// metricsSink routes measured kernel wall times into pre-resolved
// histograms — one per kernel kind for the run's single exec.
type metricsSink struct{ wall [4]*obs.Histogram }

// ObserveKernel implements kernels.Sink.
func (s metricsSink) ObserveKernel(name string, kind semiring.Kind, b int, wall time.Duration) {
	s.wall[kind].Observe(wall.Seconds())
}

// kindMetrics holds the resolved modelled-cost metric handles for one
// kernel kind.
type kindMetrics struct {
	calls *obs.Counter
	cost  *obs.Histogram
	occ   *obs.Gauge
}

// kernelRunner applies kernels for one driver run.
type kernelRunner struct {
	exec kernels.Exec
	// pexec is exec's pool-aware face (nil if the exec cannot take a
	// caller-supplied pool): real-tile invocations go through it with the
	// task node's shared kernel pool.
	pexec kernels.PoolExec
	kc    costmodel.KernelConfig
	pool  *matrix.TilePool
	m     [4]kindMetrics
}

// apply prices and (for real tiles) executes one kernel call, returning
// the updated tile. gen is the calling iteration's ownership tag
// (uint32(k)+1), captured by the driver's closures — not read from
// mutable runner state, because stage resubmission can replay an older
// iteration's kernels while the driver has already advanced. RDD records
// must behave as immutable values under lineage recomputation (which the
// CB driver performs every iteration, exactly like Spark without
// .cache(), and which failure recovery performs for lost map outputs),
// but a deep copy per call is only needed when a replay could still
// observe the input. The gen tag tracks that: gen 0 marks a tile the
// engine does not own (user input — clone it into a pooled slab before
// mutating; a replay clones again and reproduces the identical result
// from the untouched input); a tile owned by a strictly earlier iteration
// is mutated in place, because first executions always advance the tag to
// at least this generation — 0 < tag < gen can only be a first execution;
// and a tile tagged with this generation or later already contains this
// kernel's effect — the call is a lineage replay (CB's deliberate
// recompute, a task retry, or a recovery recompute of an older stage) and
// returns it unchanged. Either way the modelled cost is charged in full:
// Spark really does recompute. The charged thread width is the kernel's
// occupancy — OMP threads beyond its exploitable parallelism sleep and do
// not contend for the node's cores.
func (kr *kernelRunner) apply(tc *rdd.TaskContext, gen uint32, kind semiring.Kind,
	x, u, v, w *matrix.Tile) *matrix.Tile {
	model := tc.Ctx().Model()
	cost := model.KernelTime(kr.exec.Rule(), kind, x.B, kr.kc)
	occ := model.Occupancy(kind, kr.kc)
	tc.ChargeCompute(cost, occ)
	tc.ChargeIdleThreads(model.IdleThreads(kind, kr.kc))
	km := &kr.m[kind]
	km.calls.Inc()
	km.cost.Observe(cost.Seconds())
	km.occ.SetMax(float64(occ))

	tag := x.Gen()
	if tag != 0 && tag >= gen {
		return x // replay of an already-applied kernel
	}
	out := x
	if tag == 0 {
		out = kr.pool.Clone(x)
	}
	if !out.Symbolic() {
		if kr.pexec != nil {
			kr.pexec.ApplyWith(tc.KernelPool(), kind, out, u, v, w)
		} else {
			kr.exec.Apply(kind, out, u, v, w)
		}
	}
	out.SetGen(gen)
	return out
}

// kernelSecondsBuckets spans sub-millisecond base cases to multi-minute
// monolithic tiles.
var kernelSecondsBuckets = obs.ExpBuckets(1e-4, 2, 22)
