package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
)

// Chaos harness: full FW-APSP and GE runs under a deterministic fault
// plan — an executor crash mid-run, a slow-task straggler and a
// staging-disk loss — must recover through stage resubmission and produce
// results bit-identical to the fault-free execution, with bounded
// modelled-time overhead and a reproducible recovery trajectory.

// chaosPlan targets the drivers' shared stage period: both IM and CB run
// 4 stages per iteration with a shuffle map at stage 4k+2 (IM also at 4k
// and 4k+1) and the checkpoint result stage at 4k+3 reading the shuffle
// staged at 4k+2. Crash and disk loss fire at result stages 7 and 11
// (iterations 1 and 2), so freshly staged map outputs are lost exactly
// when the reduce side is about to fetch them; the straggler slows a task
// of the iteration-1 update stage.
func chaosPlan() *rdd.FaultPlan {
	return &rdd.FaultPlan{
		Seed:       1,
		Crashes:    []rdd.ExecutorCrash{{Stage: 7, Node: 1}},
		DiskLosses: []rdd.DiskLoss{{Stage: 11, Node: 2}},
		Stragglers: []rdd.Straggler{{Stage: 6, Partition: 0, Factor: 3}},
	}
}

// chaosRun executes one n=32, b=8 (r=4) run under the given plan and
// returns the result, stats and recovery counters.
type chaosOut struct {
	dense *matrix.Dense
	stats *Stats
	rs    rdd.RecoveryStats
	event []rdd.StageEvent
}

func chaosRun(t *testing.T, rule semiring.Rule, driver DriverKind, in *matrix.Dense, plan *rdd.FaultPlan) chaosOut {
	t.Helper()
	ctx := rdd.NewContext(rdd.Conf{
		Cluster:     cluster.LocalN(4, 2),
		FaultPlan:   plan,
		Speculation: true,
	})
	cfg := Config{Rule: rule, BlockSize: 8, Driver: driver, Partitions: 8}
	bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	out, stats, err := Run(ctx, bl, cfg)
	if err != nil {
		t.Fatalf("Run(%v) under faults: %v", driver, err)
	}
	return chaosOut{dense: out.ToDense(), stats: stats, rs: ctx.RecoveryStats(), event: ctx.Events()}
}

// bitIdentical compares two dense matrices bit for bit (MaxAbsDiff would
// mask NaN/Inf and signed-zero drift).
func bitIdentical(a, b *matrix.Dense) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestChaosRecoveryBitIdentical: both drivers × FW and GE under the chaos
// plan must (a) fire every fault kind, (b) recover via partial map-stage
// resubmission, (c) reproduce the fault-free bits exactly, and (d) stay
// within a bounded modelled-time overhead.
func TestChaosRecoveryBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 32, rng)
		for _, driver := range []DriverKind{IM, CB} {
			clean := chaosRun(t, rule, driver, in, nil)
			chaos := chaosRun(t, rule, driver, in, chaosPlan())

			if !bitIdentical(clean.dense, chaos.dense) {
				t.Fatalf("%s %v: recovered result differs from fault-free bits", rule.Name(), driver)
			}

			rs := chaos.rs
			if rs.ExecutorCrashes != 1 || rs.DiskLosses != 1 || rs.Stragglers == 0 {
				t.Fatalf("%s %v: plan did not fully fire: %+v", rule.Name(), driver, rs)
			}
			if rs.FetchFailures == 0 || rs.StageResubmits == 0 || rs.RecomputedMapPartitions == 0 {
				t.Fatalf("%s %v: lost outputs must recover via resubmission: %+v", rule.Name(), driver, rs)
			}

			// Resubmissions recompute only the lost partitions: every
			// attempt>0 stage event reruns fewer tasks than its planned
			// execution.
			planned := make(map[int]int)
			for _, ev := range chaos.event {
				if ev.Kind == rdd.StageShuffleMap && ev.Attempt == 0 {
					planned[ev.StageID] = ev.Tasks
				}
			}
			resubmits := 0
			for _, ev := range chaos.event {
				if ev.Attempt == 0 {
					continue
				}
				resubmits++
				if full, ok := planned[ev.StageID]; !ok || ev.Tasks >= full {
					t.Fatalf("%s %v: resubmitted stage %d reran %d of %d tasks",
						rule.Name(), driver, ev.StageID, ev.Tasks, full)
				}
			}
			if int64(resubmits) != rs.StageResubmits {
				t.Fatalf("%s %v: %d resubmit events vs %d counted", rule.Name(), driver, resubmits, rs.StageResubmits)
			}

			// Recovery is visible in the breakdown and bounded: the run
			// must cost more than fault-free but stay within 3×.
			if chaos.stats.RecoveryTime <= 0 {
				t.Fatalf("%s %v: recovery time missing from breakdown: %+v", rule.Name(), driver, chaos.stats)
			}
			if chaos.stats.Time <= clean.stats.Time {
				t.Fatalf("%s %v: faults must cost time: %v vs %v", rule.Name(), driver, chaos.stats.Time, clean.stats.Time)
			}
			if chaos.stats.Time > 3*clean.stats.Time {
				t.Fatalf("%s %v: recovery overhead unbounded: %v vs %v", rule.Name(), driver, chaos.stats.Time, clean.stats.Time)
			}
			if clean.stats.RecoveryTime != 0 {
				t.Fatalf("%s %v: fault-free run reports recovery time %v", rule.Name(), driver, clean.stats.RecoveryTime)
			}
		}
	}
}

// TestChaosDeterministic: the same plan replayed on the same job yields
// an identical recovery trajectory — clock, counters and event log.
func TestChaosDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	a := chaosRun(t, rule, IM, in, chaosPlan())
	b := chaosRun(t, rule, IM, in, chaosPlan())
	if a.stats.Time != b.stats.Time {
		t.Fatalf("clocks differ: %v vs %v", a.stats.Time, b.stats.Time)
	}
	if a.rs != b.rs {
		t.Fatalf("recovery stats differ:\n%+v\n%+v", a.rs, b.rs)
	}
	if !reflect.DeepEqual(a.event, b.event) {
		t.Fatal("event logs differ")
	}
	if !bitIdentical(a.dense, b.dense) {
		t.Fatal("results differ")
	}
}

// TestChaosSeededPlan: a RandomFaultPlan-driven run (the CI chaos-smoke
// configuration) recovers and matches the fault-free bits.
func TestChaosSeededPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rule := semiring.NewGaussian()
	in := randomInput(rule, 32, rng)
	// 16 planned stages (4 iterations × 4 stages), 4 nodes.
	plan := rdd.RandomFaultPlan(20260805, 16, 4, 2, 2, 1)
	clean := chaosRun(t, rule, IM, in, nil)
	chaos := chaosRun(t, rule, IM, in, plan)
	if !bitIdentical(clean.dense, chaos.dense) {
		t.Fatal("seeded chaos run must reproduce the fault-free bits")
	}
	if chaos.rs.ExecutorCrashes == 0 && chaos.rs.DiskLosses == 0 && chaos.rs.Stragglers == 0 {
		t.Fatalf("seeded plan fired nothing: %+v", chaos.rs)
	}
}

// TestCheckpointCadence: a multi-iteration lineage window (CheckpointEvery
// 2) must still recover to identical bits — recovery replays kernels from
// older generations, exercised here with a crash landing inside the
// window — and an over-wide window must be rejected against KeepShuffles.
func TestCheckpointCadence(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)

	run := func(plan *rdd.FaultPlan) chaosOut {
		ctx := rdd.NewContext(rdd.Conf{
			Cluster:      cluster.LocalN(4, 2),
			KeepShuffles: 12,
			FaultPlan:    plan,
		})
		cfg := Config{Rule: rule, BlockSize: 8, Driver: IM, Partitions: 8, CheckpointEvery: 2}
		bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
		out, stats, err := Run(ctx, bl, cfg)
		if err != nil {
			t.Fatalf("Run with CheckpointEvery=2: %v", err)
		}
		return chaosOut{dense: out.ToDense(), stats: stats, rs: ctx.RecoveryStats()}
	}

	// With K=2 the stage period is 3,3,4 per checkpoint window; crash at
	// a mid-window stage so recompute crosses an iteration boundary.
	plan := &rdd.FaultPlan{Crashes: []rdd.ExecutorCrash{{Stage: 5, Node: 1}}}
	clean := run(nil)
	chaos := run(plan)
	if chaos.rs.ExecutorCrashes != 1 {
		t.Fatalf("crash did not fire: %+v", chaos.rs)
	}
	if !bitIdentical(clean.dense, chaos.dense) {
		t.Fatal("recovery across a checkpoint window must be bit-identical")
	}

	// Fault-free K=2 must also match K=1 exactly (cadence is a pure
	// scheduling choice).
	ctxK1 := rdd.NewContext(rdd.Conf{Cluster: cluster.LocalN(4, 2)})
	bl := matrix.Block(in, 8, rule.Pad(), rule.PadDiag())
	outK1, _, err := Run(ctxK1, bl, Config{Rule: rule, BlockSize: 8, Driver: IM, Partitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(outK1.ToDense(), clean.dense) {
		t.Fatal("checkpoint cadence changed the answer")
	}

	// The window must fit the shuffle-retention budget.
	ctx := rdd.NewContext(rdd.Conf{Cluster: cluster.LocalN(4, 2)}) // KeepShuffles 8
	_, _, err = Run(ctx, bl, Config{Rule: rule, BlockSize: 8, Driver: IM, CheckpointEvery: 4})
	if err == nil {
		t.Fatal("CheckpointEvery 4 with KeepShuffles 8 must be rejected")
	}

	if _, _, err := Run(ctx, bl, Config{Rule: rule, BlockSize: 8, CheckpointEvery: -1}); err == nil {
		t.Fatal("negative CheckpointEvery must be rejected")
	}
}

// remoteChaosConf wires the remote replica tier into a durable chaos
// context: the chaos suite again, with lost staged outputs now eligible
// for restore-from-replica before the recompute fallback.
func remoteChaosConf(t *testing.T, plan *rdd.FaultPlan) rdd.Conf {
	t.Helper()
	conf := durableConf(t.TempDir(), 0, plan, nil)
	conf.RemoteDir = t.TempDir()
	return conf
}

// TestRemoteChaosBitIdentical: FW and GE under both drivers, with the
// remote tier attached, recover the chaos plan's losses through replica
// restore and still reproduce the fault-free bits exactly.
func TestRemoteChaosBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 32, rng)
		for _, driver := range []DriverKind{IM, CB} {
			clean := chaosRun(t, rule, driver, in, nil)
			out, ctx := durableChaosRun(t, rule, driver, in, remoteChaosConf(t, chaosPlan()), "")
			if !bitIdentical(clean.dense, out.dense) {
				t.Fatalf("%s %v: remote-backed recovery differs from fault-free bits", rule.Name(), driver)
			}
			rs := out.rs
			if rs.ExecutorCrashes != 1 || rs.DiskLosses != 1 {
				t.Fatalf("%s %v: plan did not fully fire: %+v", rule.Name(), driver, rs)
			}
			if rs.RestoredBlocks == 0 {
				t.Fatalf("%s %v: lost staged outputs must restore from replicas: %+v", rule.Name(), driver, rs)
			}
			st := out.stats
			if st.ReplicatedBlocks == 0 {
				t.Fatalf("%s %v: nothing replicated: %+v", rule.Name(), driver, st)
			}
			if st.RestoredBlocks != rs.RestoredBlocks || st.RecomputedBlocks != rs.RecomputedBlocks {
				t.Fatalf("%s %v: Stats disagrees with recovery counters: %+v vs %+v", rule.Name(), driver, st, rs)
			}
			reg := ctx.Observer().Metrics()
			if reg.CounterTotal("dpspark_remote_replicated_blocks_total") != st.ReplicatedBlocks ||
				reg.CounterTotal("dpspark_remote_restored_blocks_total") != st.RestoredBlocks {
				t.Fatalf("%s %v: remote counters disagree with stats: %+v", rule.Name(), driver, st)
			}
		}
	}
}

// TestRemoteChaosDeterministic: the restore path joins the determinism
// contract — same plan, same clock, counters, event log and bits.
func TestRemoteChaosDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	a, _ := durableChaosRun(t, rule, IM, in, remoteChaosConf(t, chaosPlan()), "")
	b, _ := durableChaosRun(t, rule, IM, in, remoteChaosConf(t, chaosPlan()), "")
	if a.stats.Time != b.stats.Time {
		t.Fatalf("clocks differ: %v vs %v", a.stats.Time, b.stats.Time)
	}
	if a.rs != b.rs {
		t.Fatalf("recovery stats differ:\n%+v\n%+v", a.rs, b.rs)
	}
	if !reflect.DeepEqual(a.event, b.event) {
		t.Fatal("event logs differ")
	}
	if !bitIdentical(a.dense, b.dense) {
		t.Fatal("results differ")
	}
}

// TestRemoteOutageMidRunFallsBack: an outage window swallowing the crash
// degrades that recovery to recompute-only; the disk loss firing after
// the window closes restores from replicas again — one run exercising
// both paths, still bit-identical.
func TestRemoteOutageMidRunFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	clean := chaosRun(t, rule, IM, in, nil)
	plan := chaosPlan()
	plan.RemoteOutages = []rdd.RemoteOutage{{From: 6, Dur: 4}} // covers the stage-7 crash
	out, ctx := durableChaosRun(t, rule, IM, in, remoteChaosConf(t, plan), "")
	if !bitIdentical(clean.dense, out.dense) {
		t.Fatal("degraded-mode recovery differs from fault-free bits")
	}
	rs := out.rs
	if rs.DegradedWindows != 1 {
		t.Fatalf("degraded windows = %d, want 1: %+v", rs.DegradedWindows, rs)
	}
	if rs.RecomputedBlocks == 0 {
		t.Fatalf("the crash inside the window must fall back to recompute: %+v", rs)
	}
	if rs.RestoredBlocks == 0 {
		t.Fatalf("the disk loss past the window must restore from replicas: %+v", rs)
	}
	st := out.stats
	if st.DegradedWindows != 1 || st.RecomputedBlocks != rs.RecomputedBlocks {
		t.Fatalf("Stats disagrees with recovery counters: %+v vs %+v", st, rs)
	}
	if n := ctx.Observer().Metrics().CounterTotal("dpspark_remote_degraded_windows_total"); n != 1 {
		t.Fatalf("degraded-window counter = %d, want 1", n)
	}
}

// TestRemoteCorruptReplicaFallsBack: damaging a staged block and its
// replica together (the paired selection rule) defeats the restore; the
// replica's checksum failure is detected and recompute repairs the run.
func TestRemoteCorruptReplicaFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	rule := semiring.NewGaussian()
	in := randomInput(rule, 32, rng)
	clean := chaosRun(t, rule, IM, in, nil)
	plan := &rdd.FaultPlan{
		Corruptions:       []rdd.Corruption{{Stage: 7, Block: 1}},
		RemoteCorruptions: []rdd.RemoteCorruption{{Stage: 7, Block: 1}},
	}
	out, ctx := durableChaosRun(t, rule, IM, in, remoteChaosConf(t, plan), "")
	if !bitIdentical(clean.dense, out.dense) {
		t.Fatal("corrupt-replica recovery differs from fault-free bits")
	}
	rs := out.rs
	if rs.Corruptions != 1 || rs.RemoteCorruptions != 1 {
		t.Fatalf("both corruption events must fire: %+v", rs)
	}
	if rs.RecomputedBlocks == 0 {
		t.Fatalf("a corrupt replica must force the recompute fallback: %+v", rs)
	}
	if n := ctx.Observer().Metrics().CounterTotal("dpspark_remote_corrupt_replicas_detected_total"); n == 0 {
		t.Fatal("replica checksum failure went undetected")
	}
}

// TestRecoveryTimeInStats: the recovery share surfaces through
// Stats.RecoveryTime and overlaps (never inflates) the phase sum.
func TestRecoveryTimeInStats(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	chaos := chaosRun(t, rule, IM, in, chaosPlan())
	st := chaos.stats
	sum := st.ComputeTime + st.ShuffleTime + st.BroadcastTime + st.OverheadTime
	if d := (sum - st.Time).Seconds(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("phase sum %v != time %v", sum, st.Time)
	}
	if st.RecoveryTime <= 0 || st.RecoveryTime >= st.Time {
		t.Fatalf("recovery time out of range: %+v", st)
	}
}
