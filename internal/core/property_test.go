package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
)

// TestPropertyDriversMatchReference: randomized shapes, drivers, kernels
// and tunables — every combination must reproduce the Fig. 1 reference.
func TestPropertyDriversMatchReference(t *testing.T) {
	f := func(seed int64, nRaw, bRaw, driverRaw, kernelRaw, partsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(nRaw)%28 // 4..31
		b := 1 + int(bRaw)%10 // 1..10
		driver := IM
		if driverRaw%2 == 1 {
			driver = CB
		}
		var rule semiring.Rule
		switch seed % 3 {
		case 0:
			rule = semiring.NewFloydWarshall()
		case 1:
			rule = semiring.NewGaussian()
		default:
			rule = semiring.NewTransitiveClosure()
		}
		in := randomInput(rule, n, rng)
		want := reference(rule, in)

		cfg := Config{
			Rule:       rule,
			BlockSize:  b,
			Driver:     driver,
			Partitions: 1 + int(partsRaw)%9,
		}
		if kernelRaw%2 == 1 {
			cfg.RecursiveKernel = true
			cfg.RShared = 2 + int(kernelRaw)%3 // 2..4
			cfg.Base = 1 + int(kernelRaw)%4
			cfg.Threads = 1 + int(kernelRaw)%3
		}
		bl := matrix.Block(in, b, rule.Pad(), rule.PadDiag())
		out, _, err := Run(newCtx(), bl, cfg)
		if err != nil {
			t.Logf("seed=%d n=%d b=%d: %v", seed, n, b, err)
			return false
		}
		diff := out.ToDense().MaxAbsDiff(want)
		if diff > tolFor(rule, n) {
			t.Logf("seed=%d n=%d b=%d driver=%v cfg=%+v: diff=%v", seed, n, b, driver, cfg, diff)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPaddingInert: virtual padding never leaks into results —
// solving the same problem at any tile size that forces padding gives
// identical logical tables.
func TestPropertyPaddingInert(t *testing.T) {
	f := func(seed int64, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rule := semiring.NewFloydWarshall()
		n := 17 // prime: no tile size divides it
		in := randomInput(rule, n, rng)
		want := reference(rule, in)
		b := 2 + int(bRaw)%9
		bl := matrix.Block(in, b, rule.Pad(), rule.PadDiag())
		out, _, err := Run(newCtx(), bl, Config{Rule: rule, BlockSize: b, Driver: IM})
		if err != nil {
			return false
		}
		return out.ToDense().MaxAbsDiff(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStageCountsDeterministic: repeated runs of one config
// produce identical stage structures (the scheduler is deterministic).
func TestPropertyStageCountsDeterministic(t *testing.T) {
	shape := func() []rdd.StageEvent {
		rng := rand.New(rand.NewSource(5))
		rule := semiring.NewGaussian()
		in := randomInput(rule, 16, rng)
		ctx := newCtx()
		bl := matrix.Block(in, 4, rule.Pad(), rule.PadDiag())
		if _, _, err := Run(ctx, bl, Config{Rule: rule, BlockSize: 4, Driver: IM}); err != nil {
			t.Fatal(err)
		}
		return ctx.Events()
	}
	a, b := shape(), shape()
	if len(a) != len(b) {
		t.Fatalf("stage counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Tasks != b[i].Tasks ||
			a[i].SpillBytes != b[i].SpillBytes || a[i].FetchBytes != b[i].FetchBytes {
			t.Fatalf("stage %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
