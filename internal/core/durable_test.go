package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/store"
)

// Durable chaos harness: the full FW-APSP and GE runs of the chaos suite
// again, this time with the block store and driver checkpointer wired in
// — staging, spill-to-disk eviction, seeded block corruption and
// kill/resume must all leave the result bits identical to the plain
// in-memory execution.

// durableConf builds a chaos-suite context whose engine stages through a
// durable block store under the given memory budget (0 = unbounded).
func durableConf(dir string, budget int64, plan *rdd.FaultPlan, restore *rdd.EngineState) rdd.Conf {
	return rdd.Conf{
		Cluster:      cluster.LocalN(4, 2),
		FaultPlan:    plan,
		Speculation:  true,
		DurableDir:   dir,
		MemoryBudget: budget,
		SpillCodec:   TileCodec{},
		Restore:      restore,
	}
}

// durableChaosRun mirrors chaosRun with a durable context.
func durableChaosRun(t *testing.T, rule semiring.Rule, driver DriverKind, in *matrix.Dense,
	conf rdd.Conf, dir string) (chaosOut, *rdd.Context) {
	t.Helper()
	ctx := rdd.NewContext(conf)
	cfg := Config{Rule: rule, BlockSize: 8, Driver: driver, Partitions: 8, DurableDir: dir}
	bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	out, stats, err := Run(ctx, bl, cfg)
	if err != nil {
		t.Fatalf("durable Run(%v): %v", driver, err)
	}
	return chaosOut{dense: out.ToDense(), stats: stats, rs: ctx.RecoveryStats(), event: ctx.Events()}, ctx
}

// TestDurableKillResumeSweep is the kill-at-every-checkpoint-boundary
// sweep: for FW and GE under both drivers, a durable run must (a) match
// the plain run's bits exactly, and (b) be resumable from EVERY saved
// checkpoint boundary — as if the driver had been killed right after
// writing it — with each resumed run reproducing the same final bits.
func TestDurableKillResumeSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 32, rng)
		for _, driver := range []DriverKind{IM, CB} {
			clean := chaosRun(t, rule, driver, in, nil)
			dir := t.TempDir()
			durable, _ := durableChaosRun(t, rule, driver, in, durableConf(dir, 0, nil, nil), dir)
			if !bitIdentical(clean.dense, durable.dense) {
				t.Fatalf("%s %v: durable run differs from plain bits", rule.Name(), driver)
			}
			ids := store.ListCheckpoints(dir)
			if len(ids) != 4 { // r=4, CheckpointEvery 1
				t.Fatalf("%s %v: expected 4 checkpoints, got %v", rule.Name(), driver, ids)
			}
			for _, id := range ids {
				meta, bl, err := LoadCheckpointAt(dir, id)
				if err != nil {
					t.Fatalf("%s %v: load checkpoint %d: %v", rule.Name(), driver, id, err)
				}
				if meta.Iteration != id {
					t.Fatalf("%s %v: checkpoint %d has cursor %d", rule.Name(), driver, id, meta.Iteration)
				}
				ctx := rdd.NewContext(durableConf(dir, 0, nil, &meta.Engine))
				cfg := Config{Rule: rule, BlockSize: meta.B, Driver: driver,
					Partitions: meta.Partitions, CheckpointEvery: meta.CheckpointEvery, DurableDir: dir}
				out, _, err := Resume(ctx, meta, bl, cfg)
				if err != nil {
					t.Fatalf("%s %v: resume from %d: %v", rule.Name(), driver, id, err)
				}
				if !bitIdentical(clean.dense, out.ToDense()) {
					t.Fatalf("%s %v: resume from checkpoint %d differs from plain bits", rule.Name(), driver, id)
				}
			}
		}
	}
}

// TestDurableResumeUnderFaults kills the driver at every boundary of a
// faulted run: the resumed contexts restore the fired-event flags and
// stage cursors, so the plan's remaining events fire at the same stages
// and the bits still match the fault-free run.
func TestDurableResumeUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	plan := chaosPlan()
	plan.Corruptions = []rdd.Corruption{{Stage: 7, Block: 0}}

	clean := chaosRun(t, rule, IM, in, nil)
	dir := t.TempDir()
	durable, ctx := durableChaosRun(t, rule, IM, in, durableConf(dir, 0, plan, nil), dir)
	if !bitIdentical(clean.dense, durable.dense) {
		t.Fatal("faulted durable run differs from fault-free bits")
	}
	if rs := durable.rs; rs.ExecutorCrashes != 1 || rs.DiskLosses != 1 || rs.Corruptions != 1 {
		t.Fatalf("plan did not fully fire: %+v", rs)
	}
	if n := ctx.Observer().Metrics().CounterTotal("dpspark_corrupt_blocks_detected_total"); n == 0 {
		t.Fatal("corruption must be detected by checksum verification")
	}

	for _, id := range store.ListCheckpoints(dir) {
		meta, bl, err := LoadCheckpointAt(dir, id)
		if err != nil {
			t.Fatalf("load checkpoint %d: %v", id, err)
		}
		rctx := rdd.NewContext(durableConf(dir, 0, chaosPlanWithCorruption(), &meta.Engine))
		cfg := Config{Rule: rule, BlockSize: meta.B, Driver: IM,
			Partitions: meta.Partitions, CheckpointEvery: meta.CheckpointEvery, DurableDir: dir}
		out, _, err := Resume(rctx, meta, bl, cfg)
		if err != nil {
			t.Fatalf("resume from %d under faults: %v", id, err)
		}
		if !bitIdentical(clean.dense, out.ToDense()) {
			t.Fatalf("faulted resume from checkpoint %d differs from fault-free bits", id)
		}
	}
}

// chaosPlanWithCorruption rebuilds the faulted sweep's plan (each resume
// needs its own copy: fired flags are validated against plan lengths).
func chaosPlanWithCorruption() *rdd.FaultPlan {
	p := chaosPlan()
	p.Corruptions = []rdd.Corruption{{Stage: 7, Block: 0}}
	return p
}

// TestDurableCorruptionPlusCrash: a seeded block corruption and an
// executor crash in the same run must both recover — corruption detected
// by checksum, repaired through the partial-recompute path — and land on
// the fault-free bits, for both update rules.
func TestDurableCorruptionPlusCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 32, rng)
		clean := chaosRun(t, rule, IM, in, nil)
		dir := t.TempDir()
		plan := &rdd.FaultPlan{
			Crashes:     []rdd.ExecutorCrash{{Stage: 7, Node: 1}},
			Corruptions: []rdd.Corruption{{Stage: 11, Block: 1, Torn: true}},
		}
		chaos, ctx := durableChaosRun(t, rule, IM, in, durableConf(dir, 0, plan, nil), dir)
		if !bitIdentical(clean.dense, chaos.dense) {
			t.Fatalf("%s: corruption+crash run differs from fault-free bits", rule.Name())
		}
		rs := chaos.rs
		if rs.ExecutorCrashes != 1 || rs.Corruptions != 1 {
			t.Fatalf("%s: both events must fire: %+v", rule.Name(), rs)
		}
		if rs.FetchFailures == 0 || rs.StageResubmits == 0 || rs.RecomputedMapPartitions == 0 {
			t.Fatalf("%s: damage must recover via partial recompute: %+v", rule.Name(), rs)
		}
		st := chaos.stats
		if st.CorruptBlocks == 0 {
			t.Fatalf("%s: corrupt block not detected in store stats: %+v", rule.Name(), st)
		}
		reg := ctx.Observer().Metrics()
		if n := reg.CounterTotal("dpspark_corrupt_blocks_detected_total"); n == 0 {
			t.Fatalf("%s: dpspark_corrupt_blocks_detected_total not incremented", rule.Name())
		}
		if n := reg.CounterTotal("dpspark_spilled_blocks_total"); n == 0 {
			t.Fatalf("%s: corruption forces a spill; dpspark_spilled_blocks_total is 0", rule.Name())
		}
	}
}

// TestDurableEvictionPressure: a tiny memory budget forces heavy
// spill-to-disk eviction; the bits must be identical to the unbounded
// store (and to the plain run) for FW and GE under both drivers, because
// tier placement changes no virtual charge and no record content.
func TestDurableEvictionPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 32, rng)
		for _, driver := range []DriverKind{IM, CB} {
			clean := chaosRun(t, rule, driver, in, nil)
			free, _ := durableChaosRun(t, rule, driver, in, durableConf(t.TempDir(), 0, nil, nil), "")
			dir := t.TempDir()
			tight, ctx := durableChaosRun(t, rule, driver, in, durableConf(dir, 2048, nil, nil), "")
			if !bitIdentical(clean.dense, free.dense) || !bitIdentical(clean.dense, tight.dense) {
				t.Fatalf("%s %v: eviction pressure changed the bits", rule.Name(), driver)
			}
			ss := ctx.StoreStats()
			if ss.Evicted == 0 || ss.Spilled == 0 {
				t.Fatalf("%s %v: 2KiB budget must evict: %+v", rule.Name(), driver, ss)
			}
			if tight.stats.EvictedBlocks != ss.Evicted || tight.stats.SpilledBlocks != ss.Spilled {
				t.Fatalf("%s %v: Stats disagrees with store: %+v vs %+v", rule.Name(), driver, tight.stats, ss)
			}
			if reg := ctx.Observer().Metrics(); reg.CounterTotal("dpspark_evicted_blocks_total") != ss.Evicted {
				t.Fatalf("%s %v: eviction counter mismatch", rule.Name(), driver)
			}
		}
	}
}

// TestDurableStopAfter: StopAfter cleanly stops the loop mid-run, the
// partial table's checkpoint is on disk, and the CLI-style resume (load
// newest, rebuild Config from meta) completes to the full-run bits.
func TestDurableStopAfter(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	rule := semiring.NewGaussian()
	in := randomInput(rule, 32, rng)
	full := chaosRun(t, rule, CB, in, nil)

	dir := t.TempDir()
	ctx := rdd.NewContext(durableConf(dir, 0, nil, nil))
	cfg := Config{Rule: rule, BlockSize: 8, Driver: CB, Partitions: 8, DurableDir: dir, StopAfter: 2}
	bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	if _, _, err := Run(ctx, bl, cfg); err != nil {
		t.Fatalf("stopped run: %v", err)
	}
	meta, tbl, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint after stop: %v", err)
	}
	if meta.Iteration != 2 {
		t.Fatalf("newest checkpoint cursor = %d, want 2", meta.Iteration)
	}
	rctx := rdd.NewContext(durableConf(dir, 0, nil, &meta.Engine))
	rcfg := Config{Rule: rule, BlockSize: meta.B, Driver: CB,
		Partitions: meta.Partitions, CheckpointEvery: meta.CheckpointEvery, DurableDir: dir}
	out, _, err := Resume(rctx, meta, tbl, rcfg)
	if err != nil {
		t.Fatalf("resume after stop: %v", err)
	}
	if !bitIdentical(full.dense, out.ToDense()) {
		t.Fatal("stop+resume differs from the uninterrupted bits")
	}
}

// TestDurableStopRequested: the cooperative stop hook (the signal
// handler's path) stops the loop at the next iteration boundary and
// forces a durable checkpoint there even off the CheckpointEvery
// cadence, so resume continues from the stop point bit-identically.
func TestDurableStopRequested(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	rule := semiring.NewGaussian()
	in := randomInput(rule, 32, rng)
	full := chaosRun(t, rule, CB, in, nil)

	dir := t.TempDir()
	ctx := rdd.NewContext(durableConf(dir, 0, nil, nil))
	// The flag flips after the first boundary poll: the run stops at
	// iteration 2 — off the every-3 cadence, so the checkpoint there
	// exists only because the stop forced it.
	var polls int
	cfg := Config{Rule: rule, BlockSize: 8, Driver: CB, Partitions: 8,
		DurableDir: dir, CheckpointEvery: 3,
		StopRequested: func() bool { polls++; return polls > 1 }}
	bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	if _, _, err := Run(ctx, bl, cfg); err != nil {
		t.Fatalf("stopped run: %v", err)
	}
	meta, tbl, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint after stop: %v", err)
	}
	if meta.Iteration != 2 {
		t.Fatalf("stop boundary checkpoint cursor = %d, want the forced off-cadence 2", meta.Iteration)
	}
	rctx := rdd.NewContext(durableConf(dir, 0, nil, &meta.Engine))
	rcfg := Config{Rule: rule, BlockSize: meta.B, Driver: CB,
		Partitions: meta.Partitions, CheckpointEvery: meta.CheckpointEvery, DurableDir: dir}
	out, _, err := Resume(rctx, meta, tbl, rcfg)
	if err != nil {
		t.Fatalf("resume after stop: %v", err)
	}
	if !bitIdentical(full.dense, out.ToDense()) {
		t.Fatal("stop+resume differs from the uninterrupted bits")
	}
}

// TestCheckpointGCRetention: KeepCheckpoints bounds the on-disk
// checkpoint set to the newest K intact boundaries, without changing the
// bits, and the pruned directory still resumes.
func TestCheckpointGCRetention(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	rule := semiring.NewGaussian()
	in := randomInput(rule, 32, rng)
	clean := chaosRun(t, rule, IM, in, nil)

	dir := t.TempDir()
	ctx := rdd.NewContext(durableConf(dir, 0, nil, nil))
	cfg := Config{Rule: rule, BlockSize: 8, Driver: IM, Partitions: 8,
		DurableDir: dir, KeepCheckpoints: 2}
	bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	out, _, err := Run(ctx, bl, cfg)
	if err != nil {
		t.Fatalf("Run with retention: %v", err)
	}
	if !bitIdentical(clean.dense, out.ToDense()) {
		t.Fatal("retention changed the bits")
	}
	// r=4 boundaries were written; only the newest two survive.
	if ids := store.ListCheckpoints(dir); len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Fatalf("ListCheckpoints = %v, want [3 4]", ids)
	}

	// The pruned directory resumes from its oldest surviving boundary.
	meta, tbl, err := LoadCheckpointAt(dir, 3)
	if err != nil {
		t.Fatalf("load pruned checkpoint: %v", err)
	}
	rctx := rdd.NewContext(durableConf(dir, 0, nil, &meta.Engine))
	rcfg := Config{Rule: rule, BlockSize: meta.B, Driver: IM, Partitions: meta.Partitions,
		CheckpointEvery: meta.CheckpointEvery, DurableDir: dir, KeepCheckpoints: 2}
	resumed, _, err := Resume(rctx, meta, tbl, rcfg)
	if err != nil {
		t.Fatalf("resume from pruned dir: %v", err)
	}
	if !bitIdentical(clean.dense, resumed.ToDense()) {
		t.Fatal("resume from pruned dir differs from fault-free bits")
	}

	// The knob validates in core's normalize.
	vctx := rdd.NewContext(rdd.Conf{Cluster: cluster.LocalN(4, 2)})
	vbl := matrix.Block(in, 8, rule.Pad(), rule.PadDiag())
	if _, _, err := Run(vctx, vbl, Config{Rule: rule, BlockSize: 8, KeepCheckpoints: -1}); err == nil {
		t.Fatal("negative KeepCheckpoints must be rejected")
	}
	if _, _, err := Run(vctx, vbl, Config{Rule: rule, BlockSize: 8, KeepCheckpoints: 2}); err == nil {
		t.Fatal("KeepCheckpoints without DurableDir must be rejected")
	}
}

// TestCheckpointGCCrashWindowResume: a driver killed after writing a new
// boundary but before GC finished deleting an old one leaves a stale
// checkpoint behind; the restarted driver still resumes from the newest
// boundary and its next retention pass sweeps the leftover.
func TestCheckpointGCCrashWindowResume(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	clean := chaosRun(t, rule, IM, in, nil)

	runInto := func(dir string, keep int) {
		ctx := rdd.NewContext(durableConf(dir, 0, nil, nil))
		cfg := Config{Rule: rule, BlockSize: 8, Driver: IM, Partitions: 8,
			DurableDir: dir, KeepCheckpoints: keep}
		bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
		if _, _, err := Run(ctx, bl, cfg); err != nil {
			t.Fatalf("run into %s: %v", dir, err)
		}
	}
	keepAll, pruned := t.TempDir(), t.TempDir()
	runInto(keepAll, 0)
	runInto(pruned, 2)

	// Reconstruct the crash window: boundary 1 (deleted by the pruned
	// run's GC) reappears next to the surviving [3 4].
	stale := fmt.Sprintf("ckpt-%06d.ck", 1)
	raw, err := os.ReadFile(filepath.Join(keepAll, stale))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pruned, stale), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The restarted driver ignores the stale boundary: newest wins.
	meta, tbl, err := LoadCheckpoint(pruned)
	if err != nil {
		t.Fatalf("load after crash window: %v", err)
	}
	if meta.Iteration != 4 {
		t.Fatalf("newest checkpoint cursor = %d, want 4", meta.Iteration)
	}
	// Resume one iteration earlier so a boundary persists and retention
	// runs again — the stale file must be gone afterwards.
	meta, tbl, err = LoadCheckpointAt(pruned, 3)
	if err != nil {
		t.Fatal(err)
	}
	rctx := rdd.NewContext(durableConf(pruned, 0, nil, &meta.Engine))
	rcfg := Config{Rule: rule, BlockSize: meta.B, Driver: IM, Partitions: meta.Partitions,
		CheckpointEvery: meta.CheckpointEvery, DurableDir: pruned, KeepCheckpoints: 2}
	out, _, err := Resume(rctx, meta, tbl, rcfg)
	if err != nil {
		t.Fatalf("resume across the crash window: %v", err)
	}
	if !bitIdentical(clean.dense, out.ToDense()) {
		t.Fatal("crash-window resume differs from fault-free bits")
	}
	if ids := store.ListCheckpoints(pruned); len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Fatalf("stale checkpoint not swept: %v", ids)
	}
}

// TestResumeValidation: Resume refuses mismatched rule, driver,
// partitions or cadence, and core's normalize rejects the new knobs'
// invalid values.
func TestResumeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	dir := t.TempDir()
	durableChaosRun(t, rule, IM, in, durableConf(dir, 0, nil, nil), dir)
	meta, bl, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}

	try := func(name string, mutate func(*Config)) {
		ctx := rdd.NewContext(durableConf(t.TempDir(), 0, nil, &meta.Engine))
		cfg := Config{Rule: rule, BlockSize: meta.B, Driver: IM,
			Partitions: meta.Partitions, CheckpointEvery: meta.CheckpointEvery}
		mutate(&cfg)
		if _, _, err := Resume(ctx, meta, bl.Clone(), cfg); err == nil {
			t.Fatalf("%s: Resume must reject the mismatch", name)
		}
	}
	try("rule", func(c *Config) { c.Rule = semiring.NewGaussian() })
	try("driver", func(c *Config) { c.Driver = CB })
	try("partitions", func(c *Config) { c.Partitions = 4 })
	try("cadence", func(c *Config) { c.CheckpointEvery = 2 })

	ctx := rdd.NewContext(rdd.Conf{Cluster: cluster.LocalN(4, 2)})
	blk := matrix.Block(in, 8, rule.Pad(), rule.PadDiag())
	if _, _, err := Run(ctx, blk, Config{Rule: rule, BlockSize: 8, StopAfter: -1}); err == nil {
		t.Fatal("negative StopAfter must be rejected")
	}
}
