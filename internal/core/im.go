package core

import (
	"fmt"

	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// inMemory is the IM driver — Listing 1. Per iteration k it runs three
// stages. Every kernel emits, besides its updated tile (RoleDone), copies
// of that tile addressed to the consumers of the next stage; partitionBy
// moves the copies (a shuffle: flatMap discards the partitioner) and a
// co-partitioned combineByKey assembles each target's operand set without
// further movement.
func (run *runner) inMemory(dp *rdd.RDD[Block]) (*rdd.RDD[Block], error) {
	ctx := run.ctx
	part := run.cfg.Partitioner
	kr := run.newKernelRunner()
	rule := run.cfg.Rule

	for k := run.startK; k < run.r; k++ {
		k := k
		f := newFilters(rule, k, run.r)
		rest := rule.Restricted(k, run.r)
		iterStart := ctx.Clock()
		// The iteration's ownership tag, captured by the kernel closures:
		// replays (retries, CB recompute, recovery resubmission) must see
		// the generation the kernel belongs to, not the driver's current
		// one.
		gen := uint32(k) + 1

		// Stage 1: A updates the pivot tile and replicates it to its
		// consumers: the B and C panels always, and the D blocks only
		// when the update rule reads the pivot value (GE's division —
		// the paper's (r−k−1)² extra copies; FW's min-plus update never
		// reads c[k,k], the "lighter dependencies" of Fig. 7).
		ctx.SetPhase("pivot")
		aIn := dp.Filter(func(b Block) bool { return f.A(b.Key) })
		pivotToD := rule.UsesPivot()
		aBlocks := rdd.PartitionBy(
			rdd.FlatMap(aIn, func(tc *rdd.TaskContext, b Block) []rdd.Pair[matrix.Coord, Msg] {
				updated := kr.apply(tc, gen, semiring.KindA, b.Value, nil, nil, nil)
				// One Done record, a pivot copy per B and per C panel, and
				// the (r−k−1)² D-addressed copies only when the rule reads
				// the pivot (FW's min-plus never does — reserving for them
				// would quadruple the emit slice for nothing).
				emits := 1 + 2*len(rest)
				if pivotToD {
					emits += len(rest) * len(rest)
				}
				out := make([]rdd.Pair[matrix.Coord, Msg], 0, emits)
				out = append(out, rdd.KV(b.Key, Msg{RoleDone, updated}))
				for _, j := range rest {
					out = append(out, rdd.KV(matrix.Coord{I: k, J: j}, Msg{RolePivot, updated}))
				}
				for _, i := range rest {
					out = append(out, rdd.KV(matrix.Coord{I: i, J: k}, Msg{RolePivot, updated}))
				}
				if pivotToD {
					for _, i := range rest {
						for _, j := range rest {
							out = append(out, rdd.KV(matrix.Coord{I: i, J: j}, Msg{RolePivot, updated}))
						}
					}
				}
				return out
			}),
			part)

		// Stage 2: B and C update the panels using the pivot copies and
		// replicate their outputs to the D blocks of their column/row.
		// Pivot copies addressed to D blocks pass through.
		ctx.SetPhase("row-col")
		bcSelf := rdd.MapValues(
			dp.Filter(func(b Block) bool { return f.B(b.Key) || f.C(b.Key) }),
			func(_ *rdd.TaskContext, _ matrix.Coord, t *matrix.Tile) Msg { return Msg{RoleSelf, t} })
		abcBlocks := rdd.PartitionBy(
			rdd.FlatMap(combineMsgs(bcSelf.Union(aBlocks), part),
				func(tc *rdd.TaskContext, p rdd.Pair[matrix.Coord, Operands]) []rdd.Pair[matrix.Coord, Msg] {
					key, ops := p.Key, p.Value
					switch {
					case key.I == k && key.J == k:
						return []rdd.Pair[matrix.Coord, Msg]{rdd.KV(key, Msg{RoleDone, ops.Done})}
					case key.I == k:
						updated := kr.apply(tc, gen, semiring.KindB, ops.Self, ops.Pivot, nil, ops.Pivot)
						out := make([]rdd.Pair[matrix.Coord, Msg], 0, 1+len(rest))
						out = append(out, rdd.KV(key, Msg{RoleDone, updated}))
						for _, i := range rest {
							out = append(out, rdd.KV(matrix.Coord{I: i, J: key.J}, Msg{RoleRow, updated}))
						}
						return out
					case key.J == k:
						updated := kr.apply(tc, gen, semiring.KindC, ops.Self, nil, ops.Pivot, ops.Pivot)
						out := make([]rdd.Pair[matrix.Coord, Msg], 0, 1+len(rest))
						out = append(out, rdd.KV(key, Msg{RoleDone, updated}))
						for _, j := range rest {
							out = append(out, rdd.KV(matrix.Coord{I: key.I, J: j}, Msg{RoleCol, updated}))
						}
						return out
					default:
						// D-addressed pivot copy: forward to stage 3.
						return []rdd.Pair[matrix.Coord, Msg]{rdd.KV(key, Msg{RolePivot, ops.Pivot})}
					}
				}),
			part)

		// Stage 3: D updates the interior from its assembled operand set;
		// the already-updated A/B/C tiles pass through. mapPartitions, as
		// in Listing 1.
		ctx.SetPhase("update")
		dSelf := rdd.MapValues(
			dp.Filter(func(b Block) bool { return f.D(b.Key) }),
			func(_ *rdd.TaskContext, _ matrix.Coord, t *matrix.Tile) Msg { return Msg{RoleSelf, t} })
		abcdBlocks := rdd.PartitionBy(
			rdd.MapPartitions(combineMsgs(dSelf.Union(abcBlocks), part),
				func(tc *rdd.TaskContext, recs []rdd.Pair[matrix.Coord, Operands]) []Block {
					out := make([]Block, 0, len(recs))
					for _, p := range recs {
						ops := p.Value
						if ops.Self != nil {
							updated := kr.apply(tc, gen, semiring.KindD, ops.Self, ops.Col, ops.Row, ops.Pivot)
							out = append(out, rdd.KV(p.Key, updated))
						} else {
							out = append(out, rdd.KV(p.Key, ops.Done))
						}
					}
					return out
				}, false),
			part)

		// Prepare the next generation: untouched blocks plus this
		// iteration's outputs (the union is partitioner-aware, so the
		// closing partitionBy is the no-op Spark would also skip).
		prev := dp.Filter(func(b Block) bool { return !f.Touched(b.Key) })
		dp = rdd.PartitionBy(prev.Union(abcdBlocks), part)

		// Truncate lineage every CheckpointEvery iterations (and after the
		// last): without this every later action would replay all earlier
		// generations' shuffle files (the Spark FW-APSP implementations
		// checkpoint per generation for the same reason). A longer cadence
		// trades checkpoint stages against deeper recompute under failure.
		// With DurableDir set the same materialization is also persisted
		// for checkpoint–restart.
		stop := run.cfg.StopRequested != nil && run.cfg.StopRequested()
		if (k+1)%run.cfg.CheckpointEvery == 0 || k == run.r-1 || stop {
			// A requested stop forces the checkpoint even off-cadence, so
			// the graceful-shutdown path never loses a finished iteration.
			ctx.SetPhase("checkpoint")
			if err := run.checkpoint(dp, k, true); err != nil {
				return dp, err
			}
		}
		ctx.AdvanceDriver(ctx.Model().DriverIterOverhead(), simtime.Overhead)
		ctx.EmitDriverSpan(fmt.Sprintf("IM iter %d", k), "iteration", iterStart, nil)
		if err := ctx.Err(); err != nil {
			return dp, err
		}
		if stop {
			break
		}
		if run.cfg.StopAfter > 0 && k+1 >= run.cfg.StopAfter {
			break
		}
	}
	ctx.SetPhase("")
	return dp, nil
}

// combineMsgs assembles tagged tiles into per-key operand sets — the
// combineByKey(..) calls of Listing 1. The inputs are co-partitioned, so
// this aggregates in place (Spark skips the shuffle too, §II footnote 1).
func combineMsgs(in *rdd.RDD[rdd.Pair[matrix.Coord, Msg]], part rdd.Partitioner) *rdd.RDD[rdd.Pair[matrix.Coord, Operands]] {
	return rdd.CombineByKey(in,
		func(m Msg) Operands { return Operands{}.absorb(m) },
		func(o Operands, m Msg) Operands { return o.absorb(m) },
		func(a, b Operands) Operands { return a.merge(b) },
		part)
}
