package core

import (
	"fmt"
	"io"

	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// Plan describes the execution structure a configuration implies, without
// running it: per-iteration kernel counts, the IM driver's replication
// volume (the paper's copy-count analysis, §IV-C) and the data each
// iteration moves. cmd/dpspark's `explain` prints it.
type Plan struct {
	// N and BlockSize echo the problem; R is the grid dimension.
	N, BlockSize, R int
	// Driver echoes the tile-movement strategy.
	Driver DriverKind
	// Iterations holds per-iteration structure.
	Iterations []IterPlan
	// KernelCalls totals kernel invocations by kind over the run.
	KernelCalls map[semiring.Kind]int64
	// CopyTiles totals the IM driver's replicated tiles (0 for CB).
	CopyTiles int64
	// MovedBytes totals the bytes moved between stages: shuffled tiles
	// for IM, collected+broadcast+shuffled tiles for CB.
	MovedBytes int64
}

// IterPlan is one grid iteration's structure.
type IterPlan struct {
	// K is the iteration index.
	K int
	// A, B, C, D count the kernel invocations.
	A, B, C, D int
	// Copies counts replicated tiles (IM): pivot copies to the panels
	// (and to the interior when the rule reads the pivot) plus row and
	// column copies to the interior.
	Copies int
	// MovedTiles counts tiles crossing a stage boundary this iteration.
	MovedTiles int
}

// Explain analyses a configuration for an n×n problem.
func Explain(n int, cfg Config) (*Plan, error) {
	if cfg.Rule == nil {
		return nil, fmt.Errorf("core: Config.Rule is required")
	}
	if cfg.BlockSize < 1 {
		return nil, fmt.Errorf("core: BlockSize must be ≥1")
	}
	r := matrix.Grid(n, cfg.BlockSize)
	plan := &Plan{
		N: n, BlockSize: cfg.BlockSize, R: r,
		Driver:      cfg.Driver,
		KernelCalls: make(map[semiring.Kind]int64),
	}
	tileBytes := int64(cfg.BlockSize) * int64(cfg.BlockSize) * 8
	usesPivot := cfg.Rule.UsesPivot()

	for k := 0; k < r; k++ {
		rest := len(cfg.Rule.Restricted(k, r))
		it := IterPlan{K: k, A: 1, B: rest, C: rest, D: rest * rest}
		switch cfg.Driver {
		case CB:
			// Collect a + panels; broadcast reads are per executor, not
			// per tile; the closing partitionBy moves every live block.
			it.MovedTiles = 1 + 2*rest + (1 + 2*rest + rest*rest)
		default: // IM
			it.Copies = 2*rest + 2*rest*rest // pivot→panels + row/col→interior
			pivotToD := 0
			if usesPivot {
				pivotToD = rest * rest // pivot→interior (GE's division)
				it.Copies += pivotToD
			}
			// Stage outputs shuffled: the a-stage ships the updated pivot
			// plus its copies; the panel stage forwards the pivot, ships
			// the 2·rest updated panels, their row/column copies and the
			// interior-addressed pivot copies; the interior stage ships
			// every updated block.
			aStage := 1 + 2*rest + rest*rest*boolInt(usesPivot)
			panelStage := 1 + 2*rest + 2*rest*rest + pivotToD
			interiorStage := 1 + 2*rest + rest*rest
			it.MovedTiles = aStage + panelStage + interiorStage
		}
		plan.Iterations = append(plan.Iterations, it)
		plan.KernelCalls[semiring.KindA]++
		plan.KernelCalls[semiring.KindB] += int64(it.B)
		plan.KernelCalls[semiring.KindC] += int64(it.C)
		plan.KernelCalls[semiring.KindD] += int64(it.D)
		plan.CopyTiles += int64(it.Copies)
		plan.MovedBytes += int64(it.MovedTiles) * tileBytes
	}
	return plan, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Render writes a human-readable summary.
func (p *Plan) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "plan: n=%d block=%d grid=%d×%d driver=%v\n",
		p.N, p.BlockSize, p.R, p.R, p.Driver); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "kernels: A=%d B=%d C=%d D=%d\n",
		p.KernelCalls[semiring.KindA], p.KernelCalls[semiring.KindB],
		p.KernelCalls[semiring.KindC], p.KernelCalls[semiring.KindD]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "replicated tiles (IM copies): %d\n", p.CopyTiles); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "moved between stages: %.2f GiB (%.2f× the table)\n",
		float64(p.MovedBytes)/(1<<30),
		float64(p.MovedBytes)/(float64(p.N)*float64(p.N)*8)); err != nil {
		return err
	}
	show := len(p.Iterations)
	if show > 3 {
		show = 3
	}
	for _, it := range p.Iterations[:show] {
		if _, err := fmt.Fprintf(w, "  iter %d: A=%d B=%d C=%d D=%d copies=%d moved=%d tiles\n",
			it.K, it.A, it.B, it.C, it.D, it.Copies, it.MovedTiles); err != nil {
			return err
		}
	}
	if len(p.Iterations) > show {
		if _, err := fmt.Fprintf(w, "  ... %d more iterations\n", len(p.Iterations)-show); err != nil {
			return err
		}
	}
	return nil
}
