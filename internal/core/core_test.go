package core

import (
	"math"
	"math/rand"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

func newCtx() *rdd.Context {
	return rdd.NewContext(rdd.Conf{Cluster: cluster.Local(4)})
}

func clusterCtx() *rdd.Context {
	return rdd.NewContext(rdd.Conf{Cluster: cluster.Skylake16()})
}

func randomInput(rule semiring.Rule, n int, rng *rand.Rand) *matrix.Dense {
	d := matrix.NewDense(n)
	if _, ok := rule.(semiring.GaussianRule); ok {
		d.FillDiagonallyDominant(rng)
		return d
	}
	d.Fill(func(i, j int) float64 {
		switch {
		case i == j:
			return 0
		case rng.Float64() < 0.3:
			return math.Inf(1)
		default:
			return 1 + math.Floor(rng.Float64()*9)
		}
	})
	return d
}

func reference(rule semiring.Rule, d *matrix.Dense) *matrix.Dense {
	out := d.Clone()
	semiring.RunGEP(out.Data, out.N, rule)
	return out
}

func tolFor(rule semiring.Rule, n int) float64 {
	if _, ok := rule.(semiring.GaussianRule); ok {
		return 1e-7 * float64(n)
	}
	return 0
}

func runOnce(t *testing.T, ctx *rdd.Context, in *matrix.Dense, cfg Config) *matrix.Dense {
	t.Helper()
	bl := matrix.Block(in, cfg.BlockSize, cfg.Rule.Pad(), cfg.Rule.PadDiag())
	out, stats, err := Run(ctx, bl, cfg)
	if err != nil {
		t.Fatalf("Run(%v, %s): %v", cfg.Driver, cfg.KernelName(), err)
	}
	if stats.Time <= 0 {
		t.Fatalf("virtual time must advance, got %v", stats.Time)
	}
	return out.ToDense()
}

// TestDriversMatchReference is the central integration test: both drivers
// × both kernel types × all rules × several grid shapes must reproduce
// the reference GEP semantics exactly.
func TestDriversMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rules := []semiring.Rule{
		semiring.NewFloydWarshall(),
		semiring.NewGaussian(),
		semiring.NewTransitiveClosure(),
	}
	for _, rule := range rules {
		for _, driver := range []DriverKind{IM, CB} {
			for _, recursive := range []bool{false, true} {
				for _, shape := range []struct{ n, b int }{{16, 8}, {24, 8}, {17, 5}, {8, 8}} {
					in := randomInput(rule, shape.n, rng)
					want := reference(rule, in)
					cfg := Config{
						Rule:      rule,
						BlockSize: shape.b,
						Driver:    driver,
					}
					if recursive {
						cfg.RecursiveKernel = true
						cfg.RShared = 2
						cfg.Base = 4
						cfg.Threads = 2
					}
					got := runOnce(t, newCtx(), in, cfg)
					if diff := got.MaxAbsDiff(want); diff > tolFor(rule, shape.n) {
						t.Fatalf("%s %v %s n=%d b=%d: diff %v",
							rule.Name(), driver, cfg.KernelName(), shape.n, shape.b, diff)
					}
				}
			}
		}
	}
}

// TestDriversAgreeExactly: IM and CB must produce bit-identical tables
// (they execute the same kernel sequence).
func TestDriversAgreeExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 20, rng)
		cfg := Config{Rule: rule, BlockSize: 5}
		im := runOnce(t, newCtx(), in, withDriver(cfg, IM))
		cb := runOnce(t, newCtx(), in, withDriver(cfg, CB))
		if im.MaxAbsDiff(cb) != 0 {
			t.Fatalf("%s: IM and CB disagree", rule.Name())
		}
	}
}

func withDriver(cfg Config, d DriverKind) Config {
	cfg.Driver = d
	return cfg
}

// TestResultIndependentOfTuning: r, partitions, partitioner, executor
// count and kernel threads must never change the answer — only the time.
func TestResultIndependentOfTuning(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 24, rng)
	want := reference(rule, in)

	cfgs := []Config{
		{Rule: rule, BlockSize: 24, Driver: IM},                // r = 1
		{Rule: rule, BlockSize: 4, Driver: IM, Partitions: 3},  // r = 6, odd partitions
		{Rule: rule, BlockSize: 6, Driver: CB, Partitions: 17}, // r = 4
		{Rule: rule, BlockSize: 8, Driver: IM, Partitioner: rdd.NewGridPartitioner(8, 3)},
		{Rule: rule, BlockSize: 8, Driver: CB, RecursiveKernel: true, RShared: 4, Base: 2, Threads: 3},
	}
	for i, cfg := range cfgs {
		got := runOnce(t, newCtx(), in, cfg)
		if diff := got.MaxAbsDiff(want); diff != 0 {
			t.Fatalf("config %d: diff %v", i, diff)
		}
	}
}

func TestSymbolicRunProducesTimingOnly(t *testing.T) {
	ctx := clusterCtx()
	bl := matrix.NewSymbolicBlocked(4096, 1024)
	cfg := Config{
		Rule: semiring.NewFloydWarshall(), BlockSize: 1024, Driver: IM,
		RecursiveKernel: true, RShared: 4, Threads: 8,
	}
	out, stats, err := Run(ctx, bl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Fatal("symbolic run must not return a table")
	}
	if stats.Time <= 0 || stats.Iterations != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	if ctx.Ledger().Bytes(simtime.LocalDisk) == 0 {
		t.Fatal("IM run must stage shuffle bytes")
	}
}

func TestCBUsesSharedStorageIMUsesShuffle(t *testing.T) {
	mk := func(driver DriverKind) *rdd.Context {
		ctx := clusterCtx()
		bl := matrix.NewSymbolicBlocked(4096, 512)
		_, _, err := Run(ctx, bl, Config{Rule: semiring.NewGaussian(), BlockSize: 512, Driver: driver})
		if err != nil {
			t.Fatal(err)
		}
		return ctx
	}
	im := mk(IM)
	cb := mk(CB)
	if im.Ledger().Bytes(simtime.SharedFS) != 0 {
		t.Fatal("IM must not touch shared storage")
	}
	if cb.Ledger().Bytes(simtime.SharedFS) == 0 {
		t.Fatal("CB must stage blocks on shared storage")
	}
	if cb.Ledger().Bytes(simtime.LocalDisk) >= im.Ledger().Bytes(simtime.LocalDisk) {
		t.Fatalf("CB must shuffle less than IM: %d vs %d",
			cb.Ledger().Bytes(simtime.LocalDisk), im.Ledger().Bytes(simtime.LocalDisk))
	}
}

// TestIMReplicationCounts verifies the paper's copy count: stage A of
// iteration k ships 2(r−k−1) + (r−k−1)² pivot copies for GE.
func TestIMReplicationCounts(t *testing.T) {
	rule := semiring.NewGaussian()
	r := 4
	k := 1
	rest := rule.Restricted(k, r)
	want := 2*(r-k-1) + (r-k-1)*(r-k-1)
	if got := 2*len(rest) + len(rest)*len(rest); got != want {
		t.Fatalf("copies = %d, want %d", got, want)
	}
	// FW replicates to every non-pivot index instead.
	fw := semiring.NewFloydWarshall()
	if got := len(fw.Restricted(k, r)); got != r-1 {
		t.Fatalf("FW restricted = %d", got)
	}
}

func TestConfigValidation(t *testing.T) {
	ctx := newCtx()
	bl := matrix.NewBlocked(8, 4)
	if _, _, err := Run(ctx, bl, Config{BlockSize: 4}); err == nil {
		t.Fatal("missing rule must fail")
	}
	if _, _, err := Run(ctx, bl, Config{Rule: semiring.NewGaussian(), BlockSize: 2}); err == nil {
		t.Fatal("mismatched block size must fail")
	}
	if _, _, err := Run(ctx, bl, Config{Rule: semiring.NewGaussian(), BlockSize: 4,
		RecursiveKernel: true, RShared: 1}); err == nil {
		t.Fatal("r_shared < 2 must fail")
	}
}

func TestKernelName(t *testing.T) {
	if (Config{}).KernelName() != "iterative" {
		t.Fatal("iterative name")
	}
	cfg := Config{RecursiveKernel: true, RShared: 4, Threads: 8}
	if cfg.KernelName() != "rec4-way(omp=8)" {
		t.Fatalf("name = %q", cfg.KernelName())
	}
	if IM.String() != "IM" || CB.String() != "CB" {
		t.Fatal("driver names")
	}
}

func TestMatrixFromBlocksValidation(t *testing.T) {
	blocks := []Block{
		rdd.KV(matrix.Coord{I: 0, J: 0}, matrix.NewTile(4)),
		rdd.KV(matrix.Coord{I: 0, J: 0}, matrix.NewTile(4)),
	}
	if _, err := MatrixFromBlocks(8, 4, 2, blocks); err == nil {
		t.Fatal("duplicate blocks must fail")
	}
	if _, err := MatrixFromBlocks(8, 4, 2, blocks[:1]); err == nil {
		t.Fatal("missing blocks must fail")
	}
}

func TestOperandsAbsorbPanicsOnDuplicates(t *testing.T) {
	tile := matrix.NewTile(2)
	o := Operands{}.absorb(Msg{RolePivot, tile})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.absorb(Msg{RolePivot, tile})
}

func TestMsgSizeBytes(t *testing.T) {
	if (Msg{RolePivot, nil}).SizeBytes() != 1 {
		t.Fatal("nil msg size")
	}
	m := Msg{RoleSelf, matrix.NewTile(4)}
	if m.SizeBytes() != 4*4*8+1 {
		t.Fatalf("msg size = %d", m.SizeBytes())
	}
	o := Operands{Self: matrix.NewTile(2), Pivot: matrix.NewTile(2)}
	if o.SizeBytes() != 2*32+1 {
		t.Fatalf("operands size = %d", o.SizeBytes())
	}
	if len(o.messages()) != 2 {
		t.Fatal("messages")
	}
}

func TestRoleString(t *testing.T) {
	for role, want := range map[Role]string{
		RoleSelf: "self", RoleDone: "done", RolePivot: "pivot",
		RoleRow: "row", RoleCol: "col", Role(9): "role(9)",
	} {
		if role.String() != want {
			t.Fatalf("%d → %q", role, role.String())
		}
	}
}
