package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"dpspark/internal/matrix"
	"dpspark/internal/obs"
	"dpspark/internal/rdd"
	"dpspark/internal/store"
)

// Driver checkpoint–restart: with Config.DurableDir set, every
// CheckpointEvery boundary the drivers already materialize for lineage
// truncation is additionally persisted — the full tile grid through the
// matrix codec plus a JSON meta section holding the iteration cursor,
// the problem shape and the engine's restartable scheduler state
// (stage/shuffle numbering, fired fault-plan events, crash strikes).
// Files are written atomically and checksummed per section
// (store.WriteCheckpoint), so a driver killed mid-write leaves the
// previous boundary intact. Resume restarts the loop at the cursor;
// because the persisted tiles carry their ownership generation tags and
// the restored engine state continues the global stage numbering, the
// resumed run's remaining fault events fire at the same points and the
// result is bit-identical to the uninterrupted run.

// CheckpointMeta describes one durable driver checkpoint.
type CheckpointMeta struct {
	// Iteration is the number of completed iterations — the k Resume
	// restarts the driver loop at.
	Iteration int `json:"iteration"`
	// N, B and R are the problem size, tile size and grid dimension.
	N int `json:"n"`
	B int `json:"b"`
	R int `json:"r"`
	// Rule and Driver name the update rule and tile-movement strategy;
	// Resume refuses a Config that does not match.
	Rule   string `json:"rule"`
	Driver string `json:"driver"`
	// Partitions and CheckpointEvery pin the scheduling shape: both
	// change stage numbering or record routing, so Resume requires the
	// same values the interrupted run used.
	Partitions      int `json:"partitions"`
	CheckpointEvery int `json:"checkpoint_every"`
	// Engine is the scheduler state to restore via rdd.Conf.Restore.
	Engine rdd.EngineState `json:"engine"`
}

// checkpoint truncates dp's lineage at iteration k's boundary — the
// cadence materialization both drivers run anyway — and, when durable,
// persists the materialized grid and engine state. CheckpointData
// returns the rows the truncation stage computed, so the durable path
// adds no stage: numbering, fault firing points and the virtual clock
// are identical with and without DurableDir.
func (run *runner) checkpoint(dp *rdd.RDD[Block], k int, durable bool) error {
	if !durable || run.cfg.DurableDir == "" {
		return dp.Checkpoint()
	}
	parts, err := dp.CheckpointData()
	if err != nil {
		return err
	}
	return run.persist(parts, k)
}

// persist writes the checkpoint file for iteration k's boundary.
func (run *runner) persist(parts [][]Block, k int) error {
	blocks := make([]Block, 0, run.r*run.r)
	for _, p := range parts {
		blocks = append(blocks, p...)
	}
	if len(blocks) != run.r*run.r {
		return fmt.Errorf("core: checkpoint %d has %d blocks, want %d", k+1, len(blocks), run.r*run.r)
	}
	// Row-major order makes the blocks section a pure function of the
	// grid contents, independent of partition layout.
	sort.Slice(blocks, func(i, j int) bool {
		a, b := blocks[i].Key, blocks[j].Key
		if a.I != b.I {
			return a.I < b.I
		}
		return a.J < b.J
	})
	size := 0
	for _, b := range blocks {
		size += 8 + b.Value.EncodedTileLen()
	}
	buf := make([]byte, 0, size)
	for _, b := range blocks {
		buf = appendCoord(buf, b.Key)
		buf = matrix.AppendTile(buf, b.Value)
	}
	meta := CheckpointMeta{
		Iteration:       k + 1,
		N:               run.n,
		B:               run.cfg.BlockSize,
		R:               run.r,
		Rule:            run.cfg.Rule.Name(),
		Driver:          run.cfg.Driver.String(),
		Partitions:      run.cfg.Partitions,
		CheckpointEvery: run.cfg.CheckpointEvery,
		Engine:          run.ctx.EngineState(),
	}
	mj, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("core: checkpoint meta: %w", err)
	}
	if err := store.WriteCheckpoint(run.cfg.DurableDir, k+1, mj, buf); err != nil {
		return err
	}
	run.ctx.Observer().Flight().Record(obs.Event{
		Clock: run.ctx.Clock().Seconds(), Type: obs.EvCheckpoint,
		Stage: -1, Part: -1, Node: -1, Shuffle: -1,
		Detail: fmt.Sprintf("iteration %d (%d blocks, %d bytes)", k+1, len(blocks), len(buf)),
	})
	if run.cfg.KeepCheckpoints > 0 {
		// Retention runs only after the new boundary verified (GC re-reads
		// it); a crash anywhere in here leaves at least the newest K
		// intact files on disk.
		store.GCCheckpoints(run.cfg.DurableDir, run.cfg.KeepCheckpoints)
	}
	if run.cfg.OnCheckpoint != nil {
		run.cfg.OnCheckpoint(k + 1)
	}
	return nil
}

// CanResume reports whether dir holds at least one intact checkpoint —
// the cheap existence probe a restarting job service uses to decide
// between checkpoint resume and a clean re-run before committing to
// either path.
func CanResume(dir string) bool {
	_, _, _, ok := store.LatestCheckpoint(dir)
	return ok
}

// LoadCheckpoint returns the newest intact checkpoint under dir (torn or
// corrupt files are skipped, exactly as a restarted driver must).
func LoadCheckpoint(dir string) (*CheckpointMeta, *matrix.Blocked, error) {
	id, meta, blocks, ok := store.LatestCheckpoint(dir)
	if !ok {
		return nil, nil, fmt.Errorf("core: no usable checkpoint under %s", dir)
	}
	return decodeCheckpoint(id, meta, blocks)
}

// LoadCheckpointAt loads one specific checkpoint id — the
// kill-at-every-boundary sweep's hook.
func LoadCheckpointAt(dir string, id int) (*CheckpointMeta, *matrix.Blocked, error) {
	meta, blocks, err := store.ReadCheckpoint(dir, id)
	if err != nil {
		return nil, nil, err
	}
	return decodeCheckpoint(id, meta, blocks)
}

// decodeCheckpoint validates the meta section and rebuilds the grid.
func decodeCheckpoint(id int, metaRaw, blockRaw []byte) (*CheckpointMeta, *matrix.Blocked, error) {
	var meta CheckpointMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil, nil, fmt.Errorf("core: checkpoint %d meta: %w", id, err)
	}
	if meta.Iteration != id {
		return nil, nil, fmt.Errorf("core: checkpoint %d claims iteration %d", id, meta.Iteration)
	}
	if meta.N < 1 || meta.B < 1 || meta.R != matrix.Grid(meta.N, meta.B) {
		return nil, nil, fmt.Errorf("core: checkpoint %d has inconsistent shape n=%d b=%d r=%d", id, meta.N, meta.B, meta.R)
	}
	if meta.Iteration < 0 || meta.Iteration > meta.R {
		return nil, nil, fmt.Errorf("core: checkpoint %d iteration out of range (r=%d)", id, meta.R)
	}
	bl := matrix.NewSymbolicBlocked(meta.N, meta.B)
	rest := blockRaw
	seen := make(map[matrix.Coord]bool, meta.R*meta.R)
	for i := 0; i < meta.R*meta.R; i++ {
		if len(rest) < 8 {
			return nil, nil, fmt.Errorf("core: checkpoint %d blocks truncated at %d of %d", id, i, meta.R*meta.R)
		}
		var c matrix.Coord
		c, rest = decodeCoord(rest)
		if c.I < 0 || c.I >= meta.R || c.J < 0 || c.J >= meta.R || seen[c] {
			return nil, nil, fmt.Errorf("core: checkpoint %d has invalid or duplicate block %v", id, c)
		}
		seen[c] = true
		var t *matrix.Tile
		var err error
		t, rest, err = matrix.DecodeTile(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("core: checkpoint %d block %v: %w", id, c, err)
		}
		if t.B != meta.B {
			return nil, nil, fmt.Errorf("core: checkpoint %d block %v has tile size %d, want %d", id, c, t.B, meta.B)
		}
		bl.SetTile(c, t)
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("core: checkpoint %d has %d trailing bytes", id, len(rest))
	}
	return &meta, bl, nil
}

// check validates a Resume Config against the checkpoint it restarts.
func (m *CheckpointMeta) check(bl *matrix.Blocked, cfg Config) error {
	if m.Rule != cfg.Rule.Name() {
		return fmt.Errorf("core: checkpoint was written by rule %q, Config has %q", m.Rule, cfg.Rule.Name())
	}
	if m.Driver != cfg.Driver.String() {
		return fmt.Errorf("core: checkpoint was written by the %s driver, Config has %s", m.Driver, cfg.Driver)
	}
	if m.N != bl.N || m.B != bl.B || m.R != bl.R {
		return fmt.Errorf("core: checkpoint shape n=%d b=%d r=%d does not match table n=%d b=%d r=%d",
			m.N, m.B, m.R, bl.N, bl.B, bl.R)
	}
	if m.Partitions != cfg.Partitions {
		return fmt.Errorf("core: checkpoint used %d partitions, Config has %d — routing must match for a faithful resume",
			m.Partitions, cfg.Partitions)
	}
	if m.CheckpointEvery != cfg.CheckpointEvery {
		return fmt.Errorf("core: checkpoint used CheckpointEvery %d, Config has %d — stage numbering must match for a faithful resume",
			m.CheckpointEvery, cfg.CheckpointEvery)
	}
	return nil
}

// Resume continues a Run from a checkpoint loaded by LoadCheckpoint or
// LoadCheckpointAt: the driver loop restarts at meta.Iteration over the
// persisted grid. ctx must have been built with Conf.Restore =
// &meta.Engine (and, under a fault plan, the interrupted run's plan), so
// stage numbering continues and already-fired events stay fired; the
// resumed result is then bit-identical to the uninterrupted run's.
// Resume takes ownership of bl — the decoded tiles keep their
// checkpointed generation tags so replay semantics continue exactly
// where the interrupted run left them.
func Resume(ctx *rdd.Context, meta *CheckpointMeta, bl *matrix.Blocked, cfg Config) (*matrix.Blocked, *Stats, error) {
	if bl.B != cfg.BlockSize {
		return nil, nil, fmt.Errorf("core: blocked matrix tile size %d != Config.BlockSize %d", bl.B, cfg.BlockSize)
	}
	if err := cfg.normalize(ctx); err != nil {
		return nil, nil, err
	}
	if err := meta.check(bl, cfg); err != nil {
		return nil, nil, err
	}
	return execute(ctx, bl, cfg, meta.Iteration, false)
}

// blocksKeepingGen flattens a checkpointed grid without disowning the
// tiles (contrast BlocksFromMatrix): the persisted generation tags are
// the replay-semantics state of the interrupted run.
func blocksKeepingGen(bl *matrix.Blocked) []Block {
	out := make([]Block, 0, bl.R*bl.R)
	for _, c := range bl.Coords() {
		out = append(out, rdd.KV(c, bl.Tile(c)))
	}
	return out
}
