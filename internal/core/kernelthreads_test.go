package core

import (
	"math/rand"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
)

// ktCtx builds a context whose per-node kernel pools are threads wide
// (8-core nodes, so threads=4 co-tunes ExecutorCores to 2).
func ktCtx(threads int) *rdd.Context {
	return rdd.NewContext(rdd.Conf{Cluster: cluster.LocalN(2, 8), KernelThreads: threads})
}

// TestKernelThreadsBitIdentical is the engine-level contract of
// intra-tile parallelism: FW and GE through both drivers with
// KernelThreads=4 must reproduce the serial run bit for bit. BlockSize 64
// reaches the row-band parallel split (tiles below the crossover floor
// stay serial by construction), and the threaded run must actually have
// used the shared pools — Stats' occupancy attribution shows scheduling
// activity.
func TestKernelThreadsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 128, rng)
		for _, driver := range []DriverKind{IM, CB} {
			cfg := Config{Rule: rule, BlockSize: 64, Driver: driver}
			serial := runOnce(t, ktCtx(1), in, cfg)

			ctx := ktCtx(4)
			bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
			out, stats, err := Run(ctx, bl, cfg)
			if err != nil {
				t.Fatalf("%s %v threads=4: %v", rule.Name(), driver, err)
			}
			if !bitIdentical(serial, out.ToDense()) {
				t.Fatalf("%s %v: KernelThreads=4 diverges from serial bits", rule.Name(), driver)
			}
			if stats.KernelSpawned+stats.KernelInlined == 0 {
				t.Fatalf("%s %v: threaded run never consulted the kernel pools", rule.Name(), driver)
			}
		}
	}
}

// TestKernelThreadsRecursiveSharedPool: recursive kernels inherit
// Threads from KernelThreads and fork on the node's shared pool; results
// must stay bit-identical to the fully serial recursive run.
func TestKernelThreadsRecursiveSharedPool(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 128, rng)
	cfg := Config{Rule: rule, BlockSize: 64, Driver: IM, RecursiveKernel: true, RShared: 2, Base: 16}
	serial := runOnce(t, ktCtx(1), in, cfg)

	ctx := ktCtx(4)
	bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	out, stats, err := Run(ctx, bl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bitIdentical(serial, out.ToDense()) {
		t.Fatal("recursive kernels on the shared pool diverge from serial bits")
	}
	if stats.KernelSpawned+stats.KernelInlined == 0 {
		t.Fatal("recursive threaded run never consulted the kernel pools")
	}
}

// TestChaosKernelThreadsBitIdentical extends the chaos harness to
// parallel kernels: the full fault plan (crash, disk loss, straggler)
// over b=64 tiles with KernelThreads=4 must recover to exactly the bits
// of (a) the fault-free threaded run and (b) the fault-free serial run —
// recovery replays parallel kernels, and the replays must be as
// deterministic as first executions.
func TestChaosKernelThreadsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	run := func(rule semiring.Rule, driver DriverKind, in *matrix.Dense, threads int, plan *rdd.FaultPlan) *matrix.Dense {
		t.Helper()
		ctx := rdd.NewContext(rdd.Conf{
			Cluster:       cluster.LocalN(4, 8),
			KernelThreads: threads,
			FaultPlan:     plan,
			Speculation:   true,
		})
		cfg := Config{Rule: rule, BlockSize: 64, Driver: driver, Partitions: 8}
		bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
		out, _, err := Run(ctx, bl, cfg)
		if err != nil {
			t.Fatalf("Run(%v, threads=%d): %v", driver, threads, err)
		}
		return out.ToDense()
	}
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 256, rng)
		for _, driver := range []DriverKind{IM, CB} {
			serial := run(rule, driver, in, 1, nil)
			clean := run(rule, driver, in, 4, nil)
			chaos := run(rule, driver, in, 4, chaosPlan())
			if !bitIdentical(serial, clean) {
				t.Fatalf("%s %v: threaded clean run differs from serial bits", rule.Name(), driver)
			}
			if !bitIdentical(clean, chaos) {
				t.Fatalf("%s %v: threaded chaos run differs from fault-free bits", rule.Name(), driver)
			}
		}
	}
}

// TestKernelThreadsConfig pins the knob's validation and defaulting:
// inheritance from the engine conf, the exceeds-pool-width rejection,
// the recursive Threads inheritance and the kernel names reports use.
func TestKernelThreadsConfig(t *testing.T) {
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 16, rand.New(rand.NewSource(74)))
	bl := matrix.Block(in, 8, rule.Pad(), rule.PadDiag())

	// Explicit KernelThreads above the engine's pool width is rejected.
	cfg := Config{Rule: rule, BlockSize: 8, KernelThreads: 8}
	if _, _, err := Run(ktCtx(2), bl, cfg); err == nil {
		t.Fatal("KernelThreads above the node pool width must be rejected")
	}
	// Negative is rejected.
	cfg.KernelThreads = -1
	if _, _, err := Run(ktCtx(2), bl, cfg); err == nil {
		t.Fatal("negative KernelThreads must be rejected")
	}
	// Inheritance: cfg 0 takes the context's width.
	cfg.KernelThreads = 0
	if _, _, err := Run(ktCtx(2), bl, cfg); err != nil {
		t.Fatal(err)
	}

	if got := (Config{KernelThreads: 4}).KernelName(); got != "iterative(threads=4)" {
		t.Fatalf("KernelName = %q", got)
	}
	if got := (Config{}).KernelName(); got != "iterative" {
		t.Fatalf("KernelName = %q", got)
	}
	if got := (Config{RecursiveKernel: true, RShared: 4, Threads: 8}).KernelName(); got != "rec4-way(omp=8)" {
		t.Fatalf("KernelName = %q", got)
	}
}
