package core

import (
	"encoding/binary"
	"fmt"

	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
)

// TileCodec implements rdd.Codec for the records the DP drivers move:
// grid blocks (Pair[Coord, *Tile]) and the IM driver's tagged tile
// messages (Pair[Coord, Msg]). With it set as Conf.SpillCodec the engine
// can stage the drivers' shuffle buckets and broadcast payloads in the
// durable block store — the tile payload goes through the length-
// prefixed matrix codec, so ownership generation tags survive the round
// trip and decoded records replay bit-identically to in-memory ones.
//
// CombineByKey buckets (the IM driver's operand assembly) never reach
// the codec: combining shuffles stay memory-resident by design.
type TileCodec struct{}

// Record kind tags of the codec's framing.
const (
	recBlock = 0 // Pair[Coord, *Tile]
	recMsg   = 1 // Pair[Coord, Msg]
)

// Append implements rdd.Codec.
func (TileCodec) Append(dst []byte, rec rdd.Record) ([]byte, bool) {
	switch r := rec.(type) {
	case Block:
		if r.Value == nil {
			return dst, false
		}
		dst = append(dst, recBlock)
		dst = appendCoord(dst, r.Key)
		return matrix.AppendTile(dst, r.Value), true
	case rdd.Pair[matrix.Coord, Msg]:
		if r.Value.Tile == nil {
			return dst, false
		}
		dst = append(dst, recMsg)
		dst = appendCoord(dst, r.Key)
		dst = append(dst, byte(r.Value.Role))
		return matrix.AppendTile(dst, r.Value.Tile), true
	}
	return dst, false
}

// Decode implements rdd.Codec.
func (TileCodec) Decode(b []byte) (rdd.Record, []byte, error) {
	if len(b) < 1+8 {
		return nil, nil, fmt.Errorf("core: tile codec: truncated record header")
	}
	kind := b[0]
	c, rest := decodeCoord(b[1:])
	switch kind {
	case recBlock:
		t, rest, err := matrix.DecodeTile(rest)
		if err != nil {
			return nil, nil, err
		}
		return rdd.KV(c, t), rest, nil
	case recMsg:
		if len(rest) < 1 {
			return nil, nil, fmt.Errorf("core: tile codec: truncated message role")
		}
		role := Role(rest[0])
		t, rest, err := matrix.DecodeTile(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		return rdd.KV(c, Msg{role, t}), rest, nil
	default:
		return nil, nil, fmt.Errorf("core: tile codec: unknown record kind %d", kind)
	}
}

// appendCoord encodes a grid coordinate (two little-endian u32s — grid
// dimensions are bounded well below 2³²).
func appendCoord(dst []byte, c matrix.Coord) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.I))
	return binary.LittleEndian.AppendUint32(dst, uint32(c.J))
}

// decodeCoord decodes appendCoord's encoding; the caller has checked the
// length.
func decodeCoord(b []byte) (matrix.Coord, []byte) {
	i := binary.LittleEndian.Uint32(b)
	j := binary.LittleEndian.Uint32(b[4:])
	return matrix.Coord{I: int(i), J: int(j)}, b[8:]
}
