package core

import (
	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// The FilterX predicates of Listings 1–2: they select the blocks each
// kernel stage of iteration k updates. Their shape comes from the loop
// bounds of the top-level function A in Fig. 4 — the Restricted range of
// the update rule (all non-pivot indices for semiring GEP, the trailing
// submatrix for GE).

// restrictedSet returns membership of the rule's Restricted(k, r) range.
func restrictedSet(rule semiring.Rule, k, r int) map[int]bool {
	idx := rule.Restricted(k, r)
	set := make(map[int]bool, len(idx))
	for _, i := range idx {
		set[i] = true
	}
	return set
}

// filters bundles the four predicates for iteration k.
type filters struct {
	k    int
	rest map[int]bool
}

// newFilters builds iteration k's predicates for an r×r grid.
func newFilters(rule semiring.Rule, k, r int) filters {
	return filters{k: k, rest: restrictedSet(rule, k, r)}
}

// A selects the pivot block (k,k).
func (f filters) A(c matrix.Coord) bool { return c.I == f.k && c.J == f.k }

// B selects the row-panel blocks (k,j) for participating j.
func (f filters) B(c matrix.Coord) bool { return c.I == f.k && f.rest[c.J] }

// C selects the column-panel blocks (i,k) for participating i.
func (f filters) C(c matrix.Coord) bool { return c.J == f.k && f.rest[c.I] }

// D selects the interior blocks (i,j) for participating i and j.
func (f filters) D(c matrix.Coord) bool { return f.rest[c.I] && f.rest[c.J] }

// Touched reports whether iteration k updates the block at all.
func (f filters) Touched(c matrix.Coord) bool {
	return f.A(c) || f.B(c) || f.C(c) || f.D(c)
}
