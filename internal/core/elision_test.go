package core

import (
	"math/rand"
	"testing"

	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"

	"dpspark/internal/cluster"
)

// TestRunDoesNotMutateInput pins Run's immutability contract now that
// kernels elide defensive clones: the caller's blocked matrix must be
// byte-identical after a real-mode run (the first kernel to touch an
// engine-unowned tile takes a pooled copy).
func TestRunDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 24, rng)
	bl := matrix.Block(in, 8, rule.Pad(), rule.PadDiag())
	snapshot := make(map[matrix.Coord][]float64)
	for _, c := range bl.Coords() {
		snapshot[c] = append([]float64(nil), bl.Tile(c).Data...)
	}
	for _, driver := range []DriverKind{IM, CB} {
		if _, _, err := Run(newCtx(), bl, Config{Rule: rule, BlockSize: 8, Driver: driver}); err != nil {
			t.Fatalf("%v: %v", driver, err)
		}
		for _, c := range bl.Coords() {
			for i, want := range snapshot[c] {
				if bl.Tile(c).Data[i] != want {
					t.Fatalf("%v mutated input tile %v at %d", driver, c, i)
				}
			}
		}
	}
}

// TestRunOutputReusableAsInput: result tiles are disowned on the way out,
// so feeding one run's output into a second run must neither corrupt the
// first result nor break the second (FW is idempotent: FW(FW(d)) =
// FW(d)).
func TestRunOutputReusableAsInput(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 16, rng)
	want := reference(rule, in)
	cfg := Config{Rule: rule, BlockSize: 8, Driver: IM}

	bl := matrix.Block(in, 8, rule.Pad(), rule.PadDiag())
	out1, _, err := Run(newCtx(), bl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := out1.ToDense()
	out2, _, err := Run(newCtx(), out1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := out2.ToDense().MaxAbsDiff(want); diff != 0 {
		t.Fatalf("second run diverged from fixpoint by %v", diff)
	}
	if diff := out1.ToDense().MaxAbsDiff(first); diff != 0 {
		t.Fatalf("second run mutated first run's result by %v", diff)
	}
}

// TestRealModeFaultRetryMatchesReference: task retries replay kernels on
// live data — with clone elision the replay must recognize
// already-applied kernels (the gen tag) and still produce exact results.
// Every stage's first attempt of partition 0 is killed, for both drivers.
func TestRealModeFaultRetryMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 24, rng)
		want := reference(rule, in)
		for _, driver := range []DriverKind{IM, CB} {
			ctx := rdd.NewContext(rdd.Conf{
				Cluster: cluster.Local(4),
				FaultInjector: func(stageID, partition, attempt int) bool {
					return partition == 0 && attempt == 0
				},
			})
			got := runOnce(t, ctx, in, Config{Rule: rule, BlockSize: 8, Driver: driver})
			if diff := got.MaxAbsDiff(want); diff > tolFor(rule, 24) {
				t.Fatalf("%s %v under retries: diff %v", rule.Name(), driver, diff)
			}
		}
	}
}

// TestCBRecomputeElisionExact: CB deliberately recomputes the A and B/C
// kernels through the closing shuffle's lineage replay. The elided replay
// must return the identical tile (not a re-application), keeping IM and
// CB bit-identical in real mode.
func TestCBRecomputeElisionExact(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	rule := semiring.NewGaussian()
	in := randomInput(rule, 24, rng)
	im := runOnce(t, newCtx(), in, Config{Rule: rule, BlockSize: 8, Driver: IM})
	cb := runOnce(t, newCtx(), in, Config{Rule: rule, BlockSize: 8, Driver: CB})
	if diff := im.MaxAbsDiff(cb); diff != 0 {
		t.Fatalf("IM and CB diverged by %v", diff)
	}
}
