package core

import (
	"errors"
	"math/rand"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/sim"
)

// Failure-injection tests: the paper reports two failure modes for large
// runs — local staging disks filling with shuffle data (IM, §IV-C) and
// the 8-hour experiment timeout (missing bars in Figs. 6 and 8). The
// engine must surface both.

// TestIMFailsWhenStagingDiskFull shrinks the SSDs until the IM driver's
// shuffle staging overflows; the run must fail with ErrDiskFull and the
// CB driver (which barely stages) must still pass.
func TestIMFailsWhenStagingDiskFull(t *testing.T) {
	cl := cluster.Skylake16()
	// Between the two drivers' staging footprints: IM stages several
	// table volumes across its live shuffle generations, CB roughly one.
	cl.Node.Disk.Capacity = 128 << 20

	run := func(driver DriverKind) error {
		ctx := rdd.NewContext(rdd.Conf{Cluster: cl})
		bl := matrix.NewSymbolicBlocked(4096, 512)
		_, _, err := Run(ctx, bl, Config{
			Rule:      semiring.NewGaussian(),
			BlockSize: 512,
			Driver:    driver,
		})
		return err
	}

	err := run(IM)
	if err == nil {
		t.Fatal("IM with tiny staging disks must fail")
	}
	var diskErr sim.ErrDiskFull
	if !errors.As(err, &diskErr) {
		t.Fatalf("expected ErrDiskFull, got %v", err)
	}
	if diskErr.Cap != 128<<20 {
		t.Fatalf("error carries wrong capacity: %+v", diskErr)
	}

	if err := run(CB); err != nil {
		t.Fatalf("CB must survive small staging disks (it broadcasts instead): %v", err)
	}
}

// TestTimeoutMarking: big iterative huge-block runs on the weaker cluster
// exceed the 8-hour bound and must be flagged (the missing bars of
// Fig. 8; in this calibration the paper's 32K cells land at 3–4.6h, so
// the test uses 48K — see EXPERIMENTS.md "Known residuals").
func TestTimeoutMarking(t *testing.T) {
	ctx := rdd.NewContext(rdd.Conf{Cluster: cluster.Haswell16()})
	bl := matrix.NewSymbolicBlocked(49152, 4096)
	_, stats, err := Run(ctx, bl, Config{
		Rule:      semiring.NewGaussian(),
		BlockSize: 4096,
		Driver:    IM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.TimedOut {
		t.Fatalf("48K iterative/4096 on the Haswell cluster must exceed 8h, got %v", stats.Time)
	}
}

// TestExecutorMemoryFailureSurfaced: a cached working set beyond the
// executor budget must fail the job.
func TestExecutorMemoryFailureSurfaced(t *testing.T) {
	cl := cluster.Local(2)
	cl.ExecutorMemBytes = 8 << 10 // 8 KiB: below the 4×4-tile table's 32 KiB
	ctx := rdd.NewContext(rdd.Conf{Cluster: cl})

	rng := rand.New(rand.NewSource(1))
	in := randomInput(semiring.NewFloydWarshall(), 64, rng)
	bl := matrix.Block(in, 16, semiring.NewFloydWarshall().Pad(), 0)
	blocks := BlocksFromMatrix(bl)
	dp := rdd.ParallelizePairs(ctx, blocks, rdd.NewHashPartitioner(4)).Cache()
	if _, err := dp.Collect(); err == nil {
		t.Fatal("expected executor-memory failure")
	}
}
