package core

import (
	"math/rand"
	"strings"
	"testing"

	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// These tests pin the drivers' Spark-level structure via the engine's
// stage event log — the faithfulness contract with Listings 1 and 2.

func runStructured(t *testing.T, driver DriverKind, rule semiring.Rule) (*rdd.Context, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	in := randomInput(rule, 16, rng)
	ctx := newCtx()
	bl := matrix.Block(in, 4, rule.Pad(), rule.PadDiag()) // r = 4
	_, _, err := Run(ctx, bl, Config{Rule: rule, BlockSize: 4, Driver: driver})
	if err != nil {
		t.Fatal(err)
	}
	return ctx, bl.R
}

// TestIMStageStructure: the IM driver runs exactly three shuffles per
// grid iteration (aBlocks partitionBy, abcBlocks partitionBy, abcdBlocks
// partitionBy — the combineByKeys are co-partitioned and narrow) plus the
// checkpoint's result stage.
func TestIMStageStructure(t *testing.T) {
	ctx, r := runStructured(t, IM, semiring.NewGaussian())
	mapStages := ctx.CountStages(rdd.StageShuffleMap)
	if mapStages != 3*r {
		t.Fatalf("IM ran %d shuffle-map stages, want 3r = %d", mapStages, 3*r)
	}
	// One checkpoint result stage per iteration plus the final collect.
	results := ctx.CountStages(rdd.StageResult)
	if results != r+1 {
		t.Fatalf("IM ran %d result stages, want r+1 = %d", results, r+1)
	}
}

// TestCBStageStructure: the CB driver shuffles exactly once per iteration
// (the closing partitionBy) and runs three jobs per iteration (two
// collects plus the checkpoint).
func TestCBStageStructure(t *testing.T) {
	ctx, r := runStructured(t, CB, semiring.NewGaussian())
	mapStages := ctx.CountStages(rdd.StageShuffleMap)
	if mapStages != r {
		t.Fatalf("CB ran %d shuffle-map stages, want r = %d", mapStages, r)
	}
	results := ctx.CountStages(rdd.StageResult)
	if results != 3*r+1 {
		t.Fatalf("CB ran %d result stages, want 3r+1 = %d", results, 3*r+1)
	}
}

// TestFWShufflesLessThanGE: without pivot copies to the D blocks (the
// min-plus update never reads c[k,k]), the FW IM driver must stage fewer
// shuffle bytes per block than GE on an identical grid, even though FW
// touches all r² blocks each iteration and GE only the trailing
// submatrix.
func TestFWShufflesLessThanGE(t *testing.T) {
	spillPerUpdate := func(rule semiring.Rule) float64 {
		ctx, _ := runStructured(t, IM, rule)
		var spill int64
		for _, ev := range ctx.Events() {
			spill += ev.SpillBytes
		}
		return float64(spill)
	}
	fw := spillPerUpdate(semiring.NewFloydWarshall())
	ge := spillPerUpdate(semiring.NewGaussian())
	// FW updates ~3× the blocks of GE; if it still shipped pivot copies
	// to D its spill would exceed GE's scaled volume by far.
	if fw > 3.2*ge {
		t.Fatalf("FW spill %v vs GE %v: pivot copies leaking into FW's D stage?", fw, ge)
	}
}

// TestTimelineRendering covers the debug timeline output.
func TestTimelineRendering(t *testing.T) {
	ctx, _ := runStructured(t, IM, semiring.NewFloydWarshall())
	var sb strings.Builder
	if err := ctx.WriteTimeline(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "shuffle-map") || !strings.Contains(out, "result") {
		t.Fatalf("timeline:\n%s", out)
	}
	events := ctx.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	prevStart := simtime.Duration(-1)
	for _, ev := range events {
		if ev.Start < prevStart {
			t.Fatal("events must be ordered by start time")
		}
		prevStart = ev.Start
		if ev.Tasks <= 0 || ev.Duration <= 0 {
			t.Fatalf("bad event %+v", ev)
		}
		if ev.Kind == rdd.StageShuffleMap && ev.ShuffleID < 0 {
			t.Fatal("map stage without shuffle id")
		}
	}
}

// TestCBRecomputesPanelKernels: without caching, the CB driver's closing
// shuffle replays the A and B/C kernels (Spark lineage recomputation) —
// the engine must charge that compute. The IM driver computes each
// kernel exactly once.
func TestCBRecomputesPanelKernels(t *testing.T) {
	computeOf := func(driver DriverKind) simtime.Duration {
		ctx, _ := runStructured(t, driver, semiring.NewGaussian())
		return ctx.Ledger().Time(simtime.Compute)
	}
	im := computeOf(IM)
	cb := computeOf(CB)
	if cb <= im {
		t.Fatalf("CB must charge recomputed panel kernels: CB %v vs IM %v", cb, im)
	}
}
