package core

import (
	"fmt"

	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// collectBroadcast is the CB driver — Listing 2. Instead of shuffling
// tile copies, each stage's outputs are collected to the driver and
// redistributed through the shared filesystem; consumer kernels read them
// from there (once per executor per stage). Only the end-of-iteration
// partitionBy moves RDD data. Like the listing (which never caches), the
// A and B/C kernels are recomputed by the closing shuffle's map stage —
// the engine replays lineage exactly as Spark would.
func (run *runner) collectBroadcast(dp *rdd.RDD[Block]) (*rdd.RDD[Block], error) {
	ctx := run.ctx
	part := run.cfg.Partitioner
	kr := run.newKernelRunner()
	rule := run.cfg.Rule

	for k := run.startK; k < run.r; k++ {
		k := k
		f := newFilters(rule, k, run.r)
		pivotKey := matrix.Coord{I: k, J: k}
		iterStart := ctx.Clock()
		// Captured ownership tag; see the IM driver.
		gen := uint32(k) + 1

		// Stage 1: A, collected and staged on shared storage.
		ctx.SetPhase("pivot")
		aBlock := rdd.Map(dp.Filter(func(b Block) bool { return f.A(b.Key) }),
			func(tc *rdd.TaskContext, b Block) Block {
				return rdd.KV(b.Key, kr.apply(tc, gen, semiring.KindA, b.Value, nil, nil, nil))
			})
		aCollected, err := aBlock.Collect()
		if err != nil {
			return dp, err
		}
		bcA := rdd.NewBroadcast(ctx, aCollected)
		aIdx := indexBlocks(aCollected)

		// Stage 2: B and C read the pivot from shared storage.
		ctx.SetPhase("row-col")
		bcBlocks := rdd.Map(dp.Filter(func(b Block) bool { return f.B(b.Key) || f.C(b.Key) }),
			func(tc *rdd.TaskContext, b Block) Block {
				bcA.Get(tc)
				pivot := mustTile(aIdx, pivotKey)
				if b.Key.I == k {
					return rdd.KV(b.Key, kr.apply(tc, gen, semiring.KindB, b.Value, pivot, nil, pivot))
				}
				return rdd.KV(b.Key, kr.apply(tc, gen, semiring.KindC, b.Value, nil, pivot, pivot))
			})
		bcCollected, err := bcBlocks.Collect()
		if err != nil {
			return dp, err
		}
		bcPanels := rdd.NewBroadcast(ctx, bcCollected)
		panelIdx := indexBlocks(bcCollected)

		// Stage 3: D reads the row and column panels — plus the pivot,
		// when the rule divides by it — from shared storage; computed
		// lazily by the closing shuffle.
		ctx.SetPhase("update")
		usesPivot := rule.UsesPivot()
		dBlocks := rdd.Map(dp.Filter(func(b Block) bool { return f.D(b.Key) }),
			func(tc *rdd.TaskContext, b Block) Block {
				var pivot *matrix.Tile
				if usesPivot {
					bcA.Get(tc)
					pivot = mustTile(aIdx, pivotKey)
				}
				bcPanels.Get(tc)
				row := mustTile(panelIdx, matrix.Coord{I: k, J: b.Key.J})
				col := mustTile(panelIdx, matrix.Coord{I: b.Key.I, J: k})
				return rdd.KV(b.Key, kr.apply(tc, gen, semiring.KindD, b.Value, col, row, pivot))
			})

		prev := dp.Filter(func(b Block) bool { return !f.Touched(b.Key) })
		dp = rdd.PartitionBy(prev.Union(aBlock, bcBlocks, dBlocks), part)

		// Truncate lineage per generation (see the IM driver); durable
		// checkpoints follow the CheckpointEvery cadence.
		ctx.SetPhase("checkpoint")
		stop := run.cfg.StopRequested != nil && run.cfg.StopRequested()
		// A requested stop makes the boundary durable even off-cadence,
		// so the graceful-shutdown path never loses a finished iteration.
		durable := (k+1)%run.cfg.CheckpointEvery == 0 || k == run.r-1 || stop
		if err := run.checkpoint(dp, k, durable); err != nil {
			return dp, err
		}
		ctx.AdvanceDriver(ctx.Model().DriverIterOverhead(), simtime.Overhead)
		ctx.EmitDriverSpan(fmt.Sprintf("CB iter %d", k), "iteration", iterStart, nil)
		if err := ctx.Err(); err != nil {
			return dp, err
		}
		if stop {
			break
		}
		if run.cfg.StopAfter > 0 && k+1 >= run.cfg.StopAfter {
			break
		}
	}
	ctx.SetPhase("")
	return dp, nil
}

// indexBlocks builds a coordinate index over collected blocks.
func indexBlocks(blocks []Block) map[matrix.Coord]*matrix.Tile {
	idx := make(map[matrix.Coord]*matrix.Tile, len(blocks))
	for _, b := range blocks {
		idx[b.Key] = b.Value
	}
	return idx
}

// mustTile fetches a staged tile, failing loudly on driver bugs.
func mustTile(idx map[matrix.Coord]*matrix.Tile, c matrix.Coord) *matrix.Tile {
	t, ok := idx[c]
	if !ok {
		panic(fmt.Sprintf("core: staged tile %v missing from broadcast", c))
	}
	return t
}
