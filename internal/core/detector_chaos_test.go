package core

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// Failure-detector chaos harness: heartbeat/lease suspicion, detection-
// latency charging, zombie-attempt fencing under false suspicion, rack
// failures with domain-aware replicas, and recovery-storm throttling.
// Every scenario must reproduce the fault-free bits and a deterministic
// modelled clock — the detector changes when losses are *learned*, never
// what the job computes.

// detectorRun executes one n=32, b=8 run under the given Conf (detector
// knobs and fault plan included) and returns the output plus the
// context, for counter assertions.
func detectorRun(t *testing.T, rule semiring.Rule, driver DriverKind, in *matrix.Dense, conf rdd.Conf) (chaosOut, *rdd.Context) {
	t.Helper()
	ctx := rdd.NewContext(conf)
	cfg := Config{Rule: rule, BlockSize: 8, Driver: driver, Partitions: 8}
	bl := matrix.Block(in, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	out, stats, err := Run(ctx, bl, cfg)
	if err != nil {
		t.Fatalf("Run(%v) under detector chaos: %v", driver, err)
	}
	return chaosOut{dense: out.ToDense(), stats: stats, rs: ctx.RecoveryStats(), event: ctx.Events()}, ctx
}

// detectorConf is the baseline heartbeat detector: 2s lease interval,
// dead after 2 missed leases (4s detection latency).
func detectorConf(plan *rdd.FaultPlan) rdd.Conf {
	return rdd.Conf{
		Cluster:           cluster.LocalN(4, 2),
		FaultPlan:         plan,
		Speculation:       true,
		HeartbeatInterval: 2 * simtime.Second,
		HeartbeatMisses:   2,
	}
}

// TestChaosFalseSuspicionFenced: for FW and GE under both drivers, a
// stop-the-world GC pause longer than the detection latency falsely
// declares an alive executor dead. The scheduler invalidates its map
// outputs and resubmits; the zombie attempt's late commits are fenced
// by the map-output commit lease; the bits match fault-free exactly.
func TestChaosFalseSuspicionFenced(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		in := randomInput(rule, 32, rng)
		for _, driver := range []DriverKind{IM, CB} {
			clean := chaosRun(t, rule, driver, in, nil)
			// The pause fires at result stage 7, which fetches the shuffle
			// staged at stage 6 — node 1's freshly staged outputs are
			// invalidated exactly when the reduce side needs them.
			plan := &rdd.FaultPlan{GCPauses: []rdd.GCPause{{Node: 1, From: 7, Dur: 6 * simtime.Second}}}
			chaos, ctx := detectorRun(t, rule, driver, in, detectorConf(plan))

			if !bitIdentical(clean.dense, chaos.dense) {
				t.Fatalf("%s %v: false-suspicion recovery differs from fault-free bits", rule.Name(), driver)
			}
			rs := chaos.rs
			if rs.Suspicions == 0 || rs.FalseSuspicions != 1 {
				t.Fatalf("%s %v: pause must be suspected then falsely declared: %+v", rule.Name(), driver, rs)
			}
			if rs.ExecutorCrashes != 0 {
				t.Fatalf("%s %v: a GC pause is not a crash: %+v", rule.Name(), driver, rs)
			}
			if rs.StageResubmits == 0 || rs.RecomputedMapPartitions == 0 {
				t.Fatalf("%s %v: invalidated outputs must recover via resubmission: %+v", rule.Name(), driver, rs)
			}
			if rs.FencedCommits == 0 {
				t.Fatalf("%s %v: the zombie attempt's commits must be fenced: %+v", rule.Name(), driver, rs)
			}
			st := chaos.stats
			if st.DetectionTime <= 0 {
				t.Fatalf("%s %v: detection latency missing from stats: %+v", rule.Name(), driver, st)
			}
			if st.Suspicions != rs.Suspicions || st.FalseSuspicions != rs.FalseSuspicions || st.FencedCommits != rs.FencedCommits {
				t.Fatalf("%s %v: Stats disagrees with recovery counters: %+v vs %+v", rule.Name(), driver, st, rs)
			}
			reg := ctx.Observer().Metrics()
			if reg.CounterTotal("dpspark_detector_suspicions_total") != rs.Suspicions ||
				reg.CounterTotal("dpspark_detector_false_suspicions_total") != rs.FalseSuspicions ||
				reg.CounterTotal("dpspark_detector_fenced_commits_total") != rs.FencedCommits {
				t.Fatalf("%s %v: detector metrics disagree with counters: %+v", rule.Name(), driver, rs)
			}
			if chaos.stats.Time <= clean.stats.Time {
				t.Fatalf("%s %v: false suspicion must cost time: %v vs %v", rule.Name(), driver, chaos.stats.Time, clean.stats.Time)
			}
			if chaos.stats.Time > 3*clean.stats.Time {
				t.Fatalf("%s %v: recovery overhead unbounded: %v vs %v", rule.Name(), driver, chaos.stats.Time, clean.stats.Time)
			}
		}
	}
}

// TestChaosDetectionLatencyCharged: with the detector on, a real crash
// is learned only after the missed-heartbeat lease runs out — exactly
// HeartbeatMisses × HeartbeatInterval of modelled clock, attributed to
// DetectionTime, overlapping (never inflating) the phase sum.
func TestChaosDetectionLatencyCharged(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	plan := &rdd.FaultPlan{Crashes: []rdd.ExecutorCrash{{Stage: 7, Node: 1}}}

	instant := chaosRun(t, rule, IM, in, plan)
	detected, _ := detectorRun(t, rule, IM, in, detectorConf(plan))

	if !bitIdentical(instant.dense, detected.dense) {
		t.Fatal("detection latency changed the answer")
	}
	want := 2 * 2 * simtime.Second // misses × interval, one declaring boundary
	if detected.stats.DetectionTime != want {
		t.Fatalf("DetectionTime = %v, want %v", detected.stats.DetectionTime, want)
	}
	if instant.stats.DetectionTime != 0 {
		t.Fatalf("instant detection must charge nothing: %v", instant.stats.DetectionTime)
	}
	if detected.stats.Time <= instant.stats.Time {
		t.Fatalf("waiting out the lease must cost time: %v vs %v", detected.stats.Time, instant.stats.Time)
	}
	st := detected.stats
	sum := st.ComputeTime + st.ShuffleTime + st.BroadcastTime + st.OverheadTime
	if d := (sum - st.Time).Seconds(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("phase sum %v != time %v", sum, st.Time)
	}
	if st.DetectionTime > st.OverheadTime {
		t.Fatalf("detection wait must overlap overhead: %+v", st)
	}
}

// TestChaosRackFailureDomainAwareRestore: a correlated rack failure on a
// two-rack cluster kills half the executors at once and burns the
// failed domain's share of the remote replica tier. Domain-aware
// placement (replica never co-located with its origin's rack) keeps the
// lost nodes' staged outputs restorable from the surviving domain.
func TestChaosRackFailureDomainAwareRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rule := semiring.NewGaussian()
	in := randomInput(rule, 32, rng)
	clean := chaosRun(t, rule, IM, in, nil)

	plan := &rdd.FaultPlan{RackFailures: []rdd.RackFailure{{Rack: 1, Stage: 7}}}
	conf := durableConf(t.TempDir(), 0, plan, nil)
	conf.Cluster = cluster.LocalN(4, 2).WithRacks(2)
	conf.RemoteDir = t.TempDir()
	conf.HeartbeatInterval = 2 * simtime.Second
	conf.HeartbeatMisses = 2
	chaos, ctx := detectorRun(t, rule, IM, in, conf)

	if !bitIdentical(clean.dense, chaos.dense) {
		t.Fatal("rack-failure recovery differs from fault-free bits")
	}
	rs := chaos.rs
	if rs.RackFailures != 1 {
		t.Fatalf("rack failure did not fire: %+v", rs)
	}
	if rs.ExecutorCrashes != 0 {
		t.Fatalf("a rack failure is counted as one correlated event, not per-node crashes: %+v", rs)
	}
	if rs.Suspicions < 2 {
		t.Fatalf("every rack member must be suspected: %+v", rs)
	}
	if rs.FetchFailures == 0 {
		t.Fatalf("the rack's staged outputs must be lost and recovered: %+v", rs)
	}
	if rs.RestoredBlocks == 0 || rs.RecomputedMapPartitions != 0 {
		t.Fatalf("anti-affine replicas must survive the rack loss and make recovery restore-only: %+v", rs)
	}
	if chaos.stats.RackFailures != 1 || chaos.stats.DetectionTime <= 0 {
		t.Fatalf("Stats must surface the rack failure and detection wait: %+v", chaos.stats)
	}
	if n := ctx.Observer().Metrics().CounterTotal("dpspark_fault_injections_total"); n == 0 {
		t.Fatal("rack failure missing from injection metrics")
	}
	// The failed domain's replicas burned with its executors: the drop
	// must be visible in the flight ring.
	dropped := false
	for _, ev := range ctx.Observer().Flight().Snapshot() {
		if strings.Contains(ev.Detail, "dropped") && strings.Contains(ev.Detail, "remote replicas") {
			dropped = true
			break
		}
	}
	if !dropped {
		t.Fatal("rack failure must drop the failed domain's remote replicas")
	}
}

// TestChaosDetectorDeterministic: suspicion, false declaration, fencing
// and throttling all key off the virtual clock — the same plan replayed
// yields the identical clock, counters, event log and bits.
func TestChaosDetectorDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	plan := &rdd.FaultPlan{
		GCPauses:   []rdd.GCPause{{Node: 1, From: 7, Dur: 6 * simtime.Second}},
		Partitions: []rdd.Partition{{Nodes: []int{2}, From: 11, Dur: 5 * simtime.Second}},
	}
	conf := detectorConf(plan)
	conf.RecoveryTokens = 1
	conf.RecoveryRefill = 10 * simtime.Second
	a, _ := detectorRun(t, rule, IM, in, conf)
	b, _ := detectorRun(t, rule, IM, in, conf)
	if a.stats.Time != b.stats.Time {
		t.Fatalf("clocks differ: %v vs %v", a.stats.Time, b.stats.Time)
	}
	if a.rs != b.rs {
		t.Fatalf("recovery stats differ:\n%+v\n%+v", a.rs, b.rs)
	}
	if !reflect.DeepEqual(a.event, b.event) {
		t.Fatal("event logs differ")
	}
	if !bitIdentical(a.dense, b.dense) {
		t.Fatal("results differ")
	}
	if a.rs.FalseSuspicions != 2 {
		t.Fatalf("both stalls must be falsely declared: %+v", a.rs)
	}
}

// TestChaosRecoveryStormThrottled: with a one-token bucket and a slow
// refill, the second of two resubmissions in quick succession must wait
// out a refill slot on the modelled clock — throttled, charged, and
// still bit-identical.
func TestChaosRecoveryStormThrottled(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	rule := semiring.NewFloydWarshall()
	in := randomInput(rule, 32, rng)
	clean := chaosRun(t, rule, IM, in, nil)

	plan := chaosPlan() // crash at stage 7, disk loss at 11: two recovery waves
	conf := rdd.Conf{
		Cluster:        cluster.LocalN(4, 2),
		FaultPlan:      plan,
		Speculation:    true,
		RecoveryTokens: 1,
		RecoveryRefill: 10 * simtime.Second,
	}
	chaos, ctx := detectorRun(t, rule, IM, in, conf)

	if !bitIdentical(clean.dense, chaos.dense) {
		t.Fatal("throttled recovery differs from fault-free bits")
	}
	rs := chaos.rs
	if rs.StageResubmits < 2 {
		t.Fatalf("need two recovery waves to exercise the bucket: %+v", rs)
	}
	if rs.StormThrottledResubmits == 0 {
		t.Fatalf("second wave must hit an empty bucket: %+v", rs)
	}
	if chaos.stats.StormThrottledResubmits != rs.StormThrottledResubmits {
		t.Fatalf("Stats disagrees with recovery counters: %+v vs %+v", chaos.stats, rs)
	}
	if got := ctx.Observer().Metrics().CounterTotal("dpspark_detector_storm_throttled_resubmits_total"); got != rs.StormThrottledResubmits {
		t.Fatalf("throttle metric = %d, want %d", got, rs.StormThrottledResubmits)
	}
	if chaos.stats.Time <= clean.stats.Time {
		t.Fatalf("throttle waits must cost time: %v vs %v", chaos.stats.Time, clean.stats.Time)
	}
	// The whole point: recovery drains in bounded waves, not a stampede —
	// the run still lands well inside the chaos suite's overhead budget
	// plus the explicit refill waits it was forced to take.
	if limit := 3*clean.stats.Time + simtime.Duration(rs.StormThrottledResubmits)*conf.RecoveryRefill; chaos.stats.Time > limit {
		t.Fatalf("throttled recovery unbounded: %v vs limit %v", chaos.stats.Time, limit)
	}
}

// fuzzEnvInt reads an integer knob for the nightly chaos-fuzz job from
// the environment, falling back to a fixed default so regular CI runs
// stay deterministic.
func fuzzEnvInt(t *testing.T, key string, def int64) int64 {
	t.Helper()
	env := os.Getenv(key)
	if env == "" {
		return def
	}
	v, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("%s=%q: %v", key, env, err)
	}
	return v
}

// TestChaosFuzz is the nightly chaos-fuzz entry point. DPSPARK_CHAOS_SEED
// (fixed default on regular runs) seeds DPSPARK_CHAOS_ROUNDS rounds of a
// random fault plan mixing crashes, disk losses, stragglers, GC pauses,
// network partitions and a rack failure on a two-rack cluster, all under
// the heartbeat detector with a storm-throttle bucket. Whatever the seed
// draws, the run must reproduce the fault-free bits, replay to an
// identical clock/counter/event trajectory, and stay inside the recovery
// overhead budget.
func TestChaosFuzz(t *testing.T) {
	seed := fuzzEnvInt(t, "DPSPARK_CHAOS_SEED", 20260808)
	rounds := int(fuzzEnvInt(t, "DPSPARK_CHAOS_ROUNDS", 1))
	rules := []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()}
	drivers := []DriverKind{IM, CB}
	for i := 0; i < rounds; i++ {
		s := seed + int64(i)
		t.Run("seed"+strconv.FormatInt(s, 10), func(t *testing.T) {
			rule, driver := rules[i%2], drivers[(i/2)%2]
			rng := rand.New(rand.NewSource(s))
			in := randomInput(rule, 32, rng)
			// 16 planned stages: 4 iterations × 4 stages at n=32, b=8.
			plan := rdd.RandomFaultPlan(s, 16, 4, 2, 2, 1).
				WithRandomGCPauses(s+1, 16, 4, 2).
				WithRandomPartitions(s+2, 16, 4, 1).
				WithRandomRackFailures(s+3, 16, 2, 1)
			conf := detectorConf(plan)
			conf.Cluster = cluster.LocalN(4, 2).WithRacks(2)
			conf.RecoveryTokens = 2
			conf.RecoveryRefill = 5 * simtime.Second

			clean := chaosRun(t, rule, driver, in, nil)
			a, _ := detectorRun(t, rule, driver, in, conf)
			b, _ := detectorRun(t, rule, driver, in, conf)

			if !bitIdentical(clean.dense, a.dense) {
				t.Fatalf("%s %v: fuzzed chaos run differs from fault-free bits", rule.Name(), driver)
			}
			if a.stats.Time != b.stats.Time || a.rs != b.rs {
				t.Fatalf("replay diverged:\n%+v\n%+v", a.rs, b.rs)
			}
			if !reflect.DeepEqual(a.event, b.event) {
				t.Fatal("replay event logs differ")
			}
			rs := a.rs
			if rs.ExecutorCrashes == 0 && rs.DiskLosses == 0 && rs.RackFailures == 0 {
				t.Fatalf("fuzzed plan fired no hard faults: %+v", rs)
			}
			if rs.Suspicions == 0 {
				t.Fatalf("rack members and stalled nodes must be suspected: %+v", rs)
			}
			limit := 4*clean.stats.Time +
				simtime.Duration(rs.StormThrottledResubmits)*conf.RecoveryRefill +
				a.stats.DetectionTime
			if a.stats.Time > limit {
				t.Fatalf("fuzzed recovery unbounded: %v vs limit %v (clean %v)", a.stats.Time, limit, clean.stats.Time)
			}
		})
	}
}
