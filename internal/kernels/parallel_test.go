package kernels

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// TestParallelBlockedMatchesGeneric: the row-band parallel split must be
// bit-identical to the serial fast path and agree with the generic
// interface-dispatch loop, across odd tile sizes (including b not
// divisible by the band/unroll width), thread counts wider than the tile
// and all the rules the engine runs. This is the parallel counterpart of
// TestLoopBlockedMatchesGeneric.
func TestParallelBlockedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	rules := []semiring.Rule{
		semiring.NewFloydWarshall(),
		semiring.NewGaussian(),
		semiring.NewTransitiveClosure(), // exercises the generic band
	}
	for _, rule := range rules {
		for _, n := range []int{1, 3, 7, 13, 31, 33, 63, 64, 65, 96, 100, 127, 129} {
			x0 := randomOperandTile(rule, n, rng)
			u := randomOperandTile(rule, n, rng)
			v := randomOperandTile(rule, n, rng)
			w := randomOperandTile(rule, n, rng)

			serial := x0.Clone()
			Loop(rule, semiring.KindD, serial.View(), u.View(), v.View(), w.View())

			generic := x0.Clone()
			Loop(genericRule{rule}, semiring.KindD, generic.View(), u.View(), v.View(), w.View())

			for _, threads := range []int{1, 2, 3, 4, 8} {
				pool := NewPool(threads)
				par := x0.Clone()
				LoopPool(pool, rule, semiring.KindD, par.View(), u.View(), v.View(), w.View())

				for i := range par.Data {
					if math.Float64bits(par.Data[i]) != math.Float64bits(serial.Data[i]) {
						t.Fatalf("%s n=%d threads=%d: parallel diverges from serial at %d: %v vs %v",
							rule.Name(), n, threads, i, par.Data[i], serial.Data[i])
					}
				}
				tol := 1e-10 * float64(n)
				for i := range par.Data {
					rel := math.Abs(par.Data[i]-generic.Data[i]) /
						math.Max(1, math.Abs(generic.Data[i]))
					if rel > tol &&
						!(math.IsInf(par.Data[i], 1) && math.IsInf(generic.Data[i], 1)) {
						t.Fatalf("%s n=%d threads=%d: parallel diverges from generic at %d: %v vs %v",
							rule.Name(), n, threads, i, par.Data[i], generic.Data[i])
					}
				}
			}
		}
	}
}

// TestLoopPoolAliasedStaysSerial: shapes whose operands alias x (kinds A,
// B, C as the engine wires them) must produce the serial result even when
// a wide pool is supplied.
func TestLoopPoolAliasedStaysSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		n := 96
		pool := NewPool(4)
		for _, kind := range []semiring.Kind{semiring.KindA, semiring.KindB, semiring.KindC} {
			x0 := randomOperandTile(rule, n, rng)
			u := randomOperandTile(rule, n, rng)
			v := randomOperandTile(rule, n, rng)
			w := randomOperandTile(rule, n, rng)
			wire := func(tile *matrix.Tile) (a, b, c matrix.View) {
				switch kind {
				case semiring.KindA:
					return tile.View(), tile.View(), tile.View()
				case semiring.KindB:
					return u.View(), tile.View(), w.View()
				default:
					return tile.View(), v.View(), w.View()
				}
			}
			serial := x0.Clone()
			su, sv, sw := wire(serial)
			Loop(rule, kind, serial.View(), su, sv, sw)
			par := x0.Clone()
			pu, pv, pw := wire(par)
			LoopPool(pool, rule, kind, par.View(), pu, pv, pw)
			for i := range par.Data {
				if math.Float64bits(par.Data[i]) != math.Float64bits(serial.Data[i]) {
					t.Fatalf("%s kind %v: pooled aliased kernel diverges at %d", rule.Name(), kind, i)
				}
			}
		}
		spawned, _, _ := pool.Stats()
		if spawned != 0 {
			t.Fatalf("%s: aliased kernels spawned %d workers, want 0", rule.Name(), spawned)
		}
	}
}

// TestAliasedPivotParallel: pivot-ignoring rules reach the kernels with
// w wired back to x (their kind D carries no pivot tile, so
// Exec.normalize aliases the omitted operand). The parallel paths must
// never LOAD the aliased w[k,k] — a sibling quadrant writes it
// concurrently — and must still match the serial result bit for bit.
// Run under -race this is the regression test for the recursive
// interior-group race on the aliased pivot quadrant.
func TestAliasedPivotParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	rule := semiring.NewTransitiveClosure() // generic (non-min-plus) path
	for _, n := range []int{64, 96} {
		x0 := randomOperandTile(rule, n, rng)
		u := randomOperandTile(rule, n, rng)
		v := randomOperandTile(rule, n, rng)

		serial := x0.Clone()
		Loop(rule, semiring.KindD, serial.View(), u.View(), v.View(), serial.View())

		// Recursive kernels share one pool across the par_for groups —
		// the engine shape that raced before pivot loads were gated.
		rec := x0.Clone()
		NewRecursive(rule, 2, 16, NewPool(4)).Run(
			semiring.KindD, rec.View(), u.View(), v.View(), rec.View())
		for i := range rec.Data {
			if math.Float64bits(rec.Data[i]) != math.Float64bits(serial.Data[i]) {
				t.Fatalf("n=%d: recursive aliased-pivot kernel diverges at %d", n, i)
			}
		}

		// The banded iterative path now splits this shape too (w is not
		// read, so the aliased pivot no longer forces serial).
		pool := NewPool(4)
		band := x0.Clone()
		LoopPool(pool, rule, semiring.KindD, band.View(), u.View(), v.View(), band.View())
		for i := range band.Data {
			if math.Float64bits(band.Data[i]) != math.Float64bits(serial.Data[i]) {
				t.Fatalf("n=%d: banded aliased-pivot kernel diverges at %d", n, i)
			}
		}
		if spawned, inlined, _ := pool.Stats(); spawned+inlined == 0 {
			t.Fatalf("n=%d: aliased-pivot band split never consulted the pool", n)
		}
	}
}

// specialValues mixes NaN, infinities, signed zeros, denormals and
// ordinary magnitudes — the operand classes where a SIMD min or
// multiply-subtract could legally diverge from the scalar expression if
// the instruction selection were wrong.
func specialValues(rng *rand.Rand) float64 {
	switch rng.Intn(8) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return math.Inf(-1)
	case 3:
		return math.Copysign(0, -1)
	case 4:
		return 0
	case 5:
		return 5e-324 // smallest denormal
	default:
		return (rng.Float64() - 0.5) * 1e3
	}
}

// TestSIMDBricksMatchScalar pins the assembly bodies to the scalar ones
// bit for bit on adversarial inputs: VMINPD must keep x on ties and NaN
// sums exactly like `if t < x`, and the GE brick must stay an unfused
// multiply-subtract.
func TestSIMDBricksMatchScalar(t *testing.T) {
	if !setSIMDForTest(true) {
		t.Skip("no AVX2 on this machine")
	}
	rng := rand.New(rand.NewSource(303))
	for _, n := range []int{8, 13, 16, 37, 64} {
		mk := func() *matrix.Tile {
			tl := matrix.NewTile(n)
			for i := range tl.Data {
				tl.Data[i] = specialValues(rng)
			}
			return tl
		}
		x0, u, v := mk(), mk(), mk()
		// A well-conditioned diagonal for the GE divisors, everything else
		// adversarial.
		w := mk()
		for i := 0; i < n; i++ {
			w.Set(i, i, 1+rng.Float64())
		}

		check := func(name string, run func(x *matrix.Tile)) {
			t.Helper()
			setSIMDForTest(true)
			vec := x0.Clone()
			run(vec)
			setSIMDForTest(false)
			scalar := x0.Clone()
			run(scalar)
			setSIMDForTest(true)
			for i := range vec.Data {
				if math.Float64bits(vec.Data[i]) != math.Float64bits(scalar.Data[i]) {
					t.Fatalf("%s n=%d: SIMD diverges from scalar at %d: %x vs %x",
						name, n, i, math.Float64bits(vec.Data[i]), math.Float64bits(scalar.Data[i]))
				}
			}
		}
		check("min-plus", func(x *matrix.Tile) {
			loopMinPlusBlocked(x.View(), u.View(), v.View())
		})
		check("gauss", func(x *matrix.Tile) {
			loopGaussianBlocked(x.View(), u.View(), v.View(), w.View())
		})
	}
}

// TestPoolWidthOneNeverSpawns is the threads=1 deep-recursion regression
// for the token hand-off fix: a width-1 pool has no spare tokens, so a
// deep r-way recursion must run entirely on the caller — zero goroutines,
// no possibility of deadlock — and still produce the serial result.
func TestPoolWidthOneNeverSpawns(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	rule := semiring.NewFloydWarshall()
	n := 256
	x0 := randomOperandTile(rule, n, rng)
	u, v := randomOperandTile(rule, n, rng), randomOperandTile(rule, n, rng)

	want := x0.Clone()
	Loop(rule, semiring.KindD, want.View(), u.View(), v.View(), v.View())

	pool := NewPool(1)
	rec := NewRecursive(rule, 2, 4, pool) // depth ~6, stage width up to 4
	got := x0.Clone()
	rec.Run(semiring.KindD, got.View(), u.View(), v.View(), v.View())

	spawned, inlined, handoffs := pool.Stats()
	if spawned != 0 || handoffs != 0 {
		t.Fatalf("width-1 pool: spawned=%d handoffs=%d, want 0/0", spawned, handoffs)
	}
	if inlined == 0 {
		t.Fatal("width-1 pool: expected inlined branches in a deep recursion")
	}
	for i := range got.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("width-1 pooled recursion diverges at %d", i)
		}
	}
}

// TestPoolTokenHandoff forces the hand-off deterministically: with width
// 3 (two spare tokens) a spawned worker that spawns a child of its own
// must donate its token at the barrier while the child still runs, and
// take one back afterwards.
func TestPoolTokenHandoff(t *testing.T) {
	p := NewPool(3)
	aGate := make(chan struct{})
	dGate := make(chan struct{})

	// Closer: wait until the hand-off happened, then release everyone.
	go func() {
		deadline := time.After(10 * time.Second)
		for {
			if _, _, h := p.Stats(); h >= 1 {
				break
			}
			select {
			case <-deadline:
				// Let the test fail on the counter check instead of hanging.
				close(dGate)
				close(aGate)
				return
			case <-time.After(time.Millisecond):
			}
		}
		close(dGate)
		close(aGate)
	}()

	p.parallel(false, []func(bool){
		func(bool) { <-aGate }, // keeps the caller busy below
		func(held bool) { // spawned: holds spare token 1
			if !held {
				t.Error("second branch should have been spawned with a token")
			}
			p.parallel(held, []func(bool){
				func(bool) {},          // inline on the worker
				func(bool) { <-dGate }, // spawned: holds spare token 2
			})
		},
	})

	spawned, _, handoffs := p.Stats()
	if spawned != 2 {
		t.Fatalf("spawned = %d, want 2", spawned)
	}
	if handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1 (worker must donate its token at the barrier)", handoffs)
	}
}

// TestPoolSharedAcrossTasks: many goroutines hammering one pool (the
// per-node sharing the engine does) must stay correct and never exceed
// the width bound in spawned workers at a time; run with -race this also
// checks the counters and hand-off for data races.
func TestPoolSharedAcrossTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	rule := semiring.NewFloydWarshall()
	const n = 64
	x0 := randomOperandTile(rule, n, rng)
	u, v := randomOperandTile(rule, n, rng), randomOperandTile(rule, n, rng)
	want := x0.Clone()
	Loop(rule, semiring.KindD, want.View(), u.View(), v.View(), v.View())

	pool := NewPool(4)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for iter := 0; iter < 10; iter++ {
				got := x0.Clone()
				LoopPool(pool, rule, semiring.KindD, got.View(), u.View(), v.View(), v.View())
				for i := range got.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
						done <- errSharedDiverge
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errSharedDiverge = errShared("shared-pool kernel diverged from serial result")

type errShared string

func (e errShared) Error() string { return string(e) }

// TestLoopPoolMinPlusIgnoresW is the regression for the engine's FW kind
// D shape: min-plus carries no pivot operand, so Exec.normalize wires w
// back to x. The band split must not mistake that for real aliasing —
// min-plus never reads w — and still run parallel, bit-identical.
func TestLoopPoolMinPlusIgnoresW(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	rule := semiring.NewFloydWarshall()
	n := 96
	x0 := randomOperandTile(rule, n, rng)
	u, v := randomOperandTile(rule, n, rng), randomOperandTile(rule, n, rng)

	serial := x0.Clone()
	Loop(rule, semiring.KindD, serial.View(), u.View(), v.View(), serial.View())

	pool := NewPool(4)
	par := x0.Clone()
	LoopPool(pool, rule, semiring.KindD, par.View(), u.View(), v.View(), par.View())

	if spawned, inlined, _ := pool.Stats(); spawned+inlined == 0 {
		t.Fatal("w-aliased min-plus must still take the parallel band split")
	}
	for i := range par.Data {
		if math.Float64bits(par.Data[i]) != math.Float64bits(serial.Data[i]) {
			t.Fatalf("diverges from serial at %d", i)
		}
	}
}
