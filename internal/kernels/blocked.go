package kernels

import "dpspark/internal/matrix"

// Cache-blocked fast paths for the unaliased kernel shapes.
//
// The straight kij loops stream the whole x tile through the cache once
// per k — at b = 1024 that is 8 MB of x traffic per pivot row, far beyond
// L2. Blocking k in chunks of kBlock keeps a small set of x rows resident
// across kBlock consecutive pivots, and unrolling i by 4 reuses each
// loaded v element across four output rows. Column tiling (jBlock) bounds
// the working set further for very large tiles.
//
// These paths apply only when x does not alias u or v. For kinds A, B and
// C, Fig. 4 wires x into the operand list (u = v = w = x for A, v = x for
// B, u = x for C), making the kernel a true in-place DP whose later pivots
// must observe earlier updates — those stay on the ordered kij loops. The
// D update reads only u, v and w, so the k loop is a pure reduction over
// an unchanging operand set and any evaluation order is valid:
//
//   - min-plus: x[i,j] = min over k of u[i,k]+v[k,j] (and the original
//     x[i,j]). min is exact in floating point, so every order produces
//     bit-identical results.
//   - Gaussian elimination: x[i,j] -= (u[i,k]/w[k,k])·v[k,j] must apply
//     ascending in k per element to keep the rounding sequence of the
//     unblocked loop. The blocked loop keeps k ascending inside each
//     block and visits blocks in ascending order, so each element sees
//     the exact update sequence of loopGaussian — bit-identical again.
//
// The recursive kernels' quadrant views make the same gating sound: child
// views of one slab are either identical or fully disjoint, so comparing
// the address of the first element decides aliasing exactly.
const (
	// kBlock is the pivot-block depth: 4 unrolled x rows × kBlock v rows
	// × 8 bytes stays L1-resident at jBlock columns.
	kBlock = 32
	// jBlock is the column tile width for tiles wider than it.
	jBlock = 512
)

// sameView reports whether two views address the same region. Views
// produced by the tile/quadrant decomposition are identical or disjoint,
// never partially overlapping, so first-element identity is exact.
func sameView(a, b matrix.View) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

// loopMinPlusBlocked is the k-blocked, 4×-i-unrolled min-plus update for
// x not aliased with u or v.
func loopMinPlusBlocked(x, u, v matrix.View) {
	n := x.N
	for k0 := 0; k0 < n; k0 += kBlock {
		kHi := k0 + kBlock
		if kHi > n {
			kHi = n
		}
		for j0 := 0; j0 < n; j0 += jBlock {
			jHi := j0 + jBlock
			if jHi > n {
				jHi = n
			}
			i := 0
			for ; i+4 <= n; i += 4 {
				x0 := x.Data[i*x.Stride : i*x.Stride+n]
				x1 := x.Data[(i+1)*x.Stride : (i+1)*x.Stride+n]
				x2 := x.Data[(i+2)*x.Stride : (i+2)*x.Stride+n]
				x3 := x.Data[(i+3)*x.Stride : (i+3)*x.Stride+n]
				for k := k0; k < kHi; k++ {
					u0 := u.At(i, k)
					u1 := u.At(i+1, k)
					u2 := u.At(i+2, k)
					u3 := u.At(i+3, k)
					vrow := v.Data[k*v.Stride : k*v.Stride+n]
					for j := j0; j < jHi; j++ {
						vj := vrow[j]
						if t := u0 + vj; t < x0[j] {
							x0[j] = t
						}
						if t := u1 + vj; t < x1[j] {
							x1[j] = t
						}
						if t := u2 + vj; t < x2[j] {
							x2[j] = t
						}
						if t := u3 + vj; t < x3[j] {
							x3[j] = t
						}
					}
				}
			}
			for ; i < n; i++ {
				xrow := x.Data[i*x.Stride : i*x.Stride+n]
				for k := k0; k < kHi; k++ {
					uik := u.At(i, k)
					vrow := v.Data[k*v.Stride : k*v.Stride+n]
					for j := j0; j < jHi; j++ {
						if t := uik + vrow[j]; t < xrow[j] {
							xrow[j] = t
						}
					}
				}
			}
		}
	}
}

// loopGaussianBlocked is the k-blocked, 4×-i-unrolled elimination update
// for the unaliased full-range shape (kind D: ILow = JLow = 0). Each
// element receives its updates in ascending k, exactly as loopGaussian
// applies them, with the same per-update expression f·v[k,j] for
// f = u[i,k]/w[k,k] — the results are bit-identical.
func loopGaussianBlocked(x, u, v, w matrix.View) {
	n := x.N
	for k0 := 0; k0 < n; k0 += kBlock {
		kHi := k0 + kBlock
		if kHi > n {
			kHi = n
		}
		i := 0
		for ; i+4 <= n; i += 4 {
			x0 := x.Data[i*x.Stride : i*x.Stride+n]
			x1 := x.Data[(i+1)*x.Stride : (i+1)*x.Stride+n]
			x2 := x.Data[(i+2)*x.Stride : (i+2)*x.Stride+n]
			x3 := x.Data[(i+3)*x.Stride : (i+3)*x.Stride+n]
			for k := k0; k < kHi; k++ {
				wkk := w.At(k, k)
				f0 := u.At(i, k) / wkk
				f1 := u.At(i+1, k) / wkk
				f2 := u.At(i+2, k) / wkk
				f3 := u.At(i+3, k) / wkk
				vrow := v.Data[k*v.Stride : k*v.Stride+n]
				for j := 0; j < n; j++ {
					vj := vrow[j]
					x0[j] -= f0 * vj
					x1[j] -= f1 * vj
					x2[j] -= f2 * vj
					x3[j] -= f3 * vj
				}
			}
		}
		for ; i < n; i++ {
			xrow := x.Data[i*x.Stride : i*x.Stride+n]
			for k := k0; k < kHi; k++ {
				f := u.At(i, k) / w.At(k, k)
				vrow := v.Data[k*v.Stride : k*v.Stride+n]
				for j := 0; j < n; j++ {
					xrow[j] -= f * vrow[j]
				}
			}
		}
	}
}
