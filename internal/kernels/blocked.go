package kernels

import "dpspark/internal/matrix"

// Cache-blocked fast paths for the unaliased kernel shapes.
//
// The straight kij loops stream the whole x tile through the cache once
// per k — at b = 1024 that is 8 MB of x traffic per pivot row, far beyond
// L2. Blocking k in chunks of kBlock keeps a small set of x rows resident
// across kBlock consecutive pivots; rows are processed in groups of four
// whose per-(row,k) scalar operands are gathered into a brick buffer and
// handed to the AVX2 bodies in simd_amd64.s (which hold a 4×8 x block in
// registers across the whole k block), with 8×-unrolled scalar code
// covering machines without AVX2 and the row/column remainders. Column
// tiling (jBlock) bounds the working set further for very large tiles.
//
// These paths apply only when x does not alias u or v. For kinds A, B and
// C, Fig. 4 wires x into the operand list (u = v = w = x for A, v = x for
// B, u = x for C), making the kernel a true in-place DP whose later pivots
// must observe earlier updates — those stay on the ordered kij loops. The
// D update reads only u, v and w, so the k loop is a pure reduction over
// an unchanging operand set and any evaluation order is valid:
//
//   - min-plus: x[i,j] = min over k of u[i,k]+v[k,j] (and the original
//     x[i,j]). min is exact in floating point, so every order produces
//     bit-identical results.
//   - Gaussian elimination: x[i,j] -= (u[i,k]/w[k,k])·v[k,j] must apply
//     ascending in k per element to keep the rounding sequence of the
//     unblocked loop. The blocked loop keeps k ascending inside each
//     block and visits blocks in ascending order, so each element sees
//     the exact update sequence of loopGaussian — bit-identical again.
//
// Because rows of x are mutually independent under the unaliased shapes,
// the same band functions also carry the intra-tile parallel split: each
// pool worker runs a band [i0,i1) of rows through the identical code, so
// the parallel result is bit-identical to the serial one (LoopPool).
//
// The recursive kernels' quadrant views make the same gating sound: child
// views of one slab are either identical or fully disjoint, so comparing
// the address of the first element decides aliasing exactly.
const (
	// kBlock is the pivot-block depth: 4 x rows × kBlock scalar operands
	// fit the brick buffer while the v block stays cache-resident.
	kBlock = 32
	// jBlock is the column tile width for tiles wider than it.
	jBlock = 512
)

// sameView reports whether two views address the same region. Views
// produced by the tile/quadrant decomposition are identical or disjoint,
// never partially overlapping, so first-element identity is exact.
func sameView(a, b matrix.View) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

// loopMinPlusBlocked is the whole-tile serial entry: one band spanning
// every row.
func loopMinPlusBlocked(x, u, v matrix.View) {
	minPlusBand(x, u, v, 0, x.N)
}

// loopGaussianBlocked is the whole-tile serial entry for the unaliased
// full-range shape (kind D: ILow = JLow = 0).
func loopGaussianBlocked(x, u, v, w matrix.View) {
	gaussianBand(x, u, v, w, 0, x.N)
}

// minPlusRow8 applies x[j] = min(x[j], s + v[j]) over [j0,j1) with an
// 8×-unrolled straight-line body (hoisted bounds, no aliasing).
func minPlusRow8(xrow, vrow []float64, s float64, j0, j1 int) {
	j := j0
	for ; j+8 <= j1; j += 8 {
		xs := xrow[j : j+8 : j+8]
		vs := vrow[j : j+8 : j+8]
		if t := s + vs[0]; t < xs[0] {
			xs[0] = t
		}
		if t := s + vs[1]; t < xs[1] {
			xs[1] = t
		}
		if t := s + vs[2]; t < xs[2] {
			xs[2] = t
		}
		if t := s + vs[3]; t < xs[3] {
			xs[3] = t
		}
		if t := s + vs[4]; t < xs[4] {
			xs[4] = t
		}
		if t := s + vs[5]; t < xs[5] {
			xs[5] = t
		}
		if t := s + vs[6]; t < xs[6] {
			xs[6] = t
		}
		if t := s + vs[7]; t < xs[7] {
			xs[7] = t
		}
	}
	for ; j < j1; j++ {
		if t := s + vrow[j]; t < xrow[j] {
			xrow[j] = t
		}
	}
}

// gaussRow8 applies x[j] -= f * v[j] over [j0,j1), 8×-unrolled. The body
// is the exact expression of the ordered loop (unfused multiply-subtract),
// so results stay bit-identical.
func gaussRow8(xrow, vrow []float64, f float64, j0, j1 int) {
	j := j0
	for ; j+8 <= j1; j += 8 {
		xs := xrow[j : j+8 : j+8]
		vs := vrow[j : j+8 : j+8]
		xs[0] -= f * vs[0]
		xs[1] -= f * vs[1]
		xs[2] -= f * vs[2]
		xs[3] -= f * vs[3]
		xs[4] -= f * vs[4]
		xs[5] -= f * vs[5]
		xs[6] -= f * vs[6]
		xs[7] -= f * vs[7]
	}
	for ; j < j1; j++ {
		xrow[j] -= f * vrow[j]
	}
}

// minPlusBand runs the k-blocked min-plus update on rows [i0,i1) of x.
// Rows are independent (x aliases neither u nor v), so disjoint bands
// compose to the full tile in any order or in parallel.
func minPlusBand(x, u, v matrix.View, i0, i1 int) {
	n := x.N
	var b [4 * kBlock]float64
	for k0 := 0; k0 < n; k0 += kBlock {
		kHi := k0 + kBlock
		if kHi > n {
			kHi = n
		}
		klen := kHi - k0
		for j0 := 0; j0 < n; j0 += jBlock {
			jHi := j0 + jBlock
			if jHi > n {
				jHi = n
			}
			i := i0
			if useAVX2 && jHi-j0 >= 8 {
				jv := j0 + (jHi-j0)&^7
				for ; i+4 <= i1; i += 4 {
					for r := 0; r < 4; r++ {
						urow := u.Data[(i+r)*u.Stride:]
						copy(b[r*klen:(r+1)*klen], urow[k0:kHi])
					}
					minplusBrickAVX2(x.Data[i*x.Stride+j0:], b[:4*klen],
						v.Data[k0*v.Stride+j0:], x.Stride, v.Stride, klen, jv-j0)
					for r := 0; jv < jHi && r < 4; r++ {
						xrow := x.Data[(i+r)*x.Stride : (i+r)*x.Stride+n]
						for kk := 0; kk < klen; kk++ {
							vrow := v.Data[(k0+kk)*v.Stride : (k0+kk)*v.Stride+n]
							minPlusRow8(xrow, vrow, b[r*klen+kk], jv, jHi)
						}
					}
				}
			}
			for ; i < i1; i++ {
				xrow := x.Data[i*x.Stride : i*x.Stride+n]
				urow := u.Data[i*u.Stride:]
				for k := k0; k < kHi; k++ {
					vrow := v.Data[k*v.Stride : k*v.Stride+n]
					minPlusRow8(xrow, vrow, urow[k], j0, jHi)
				}
			}
		}
	}
}

// gaussianBand runs the k-blocked elimination update on rows [i0,i1) of
// x for the unaliased full-range shape. Each element receives its updates
// in ascending k with the per-update expression f·v[k,j] for
// f = u[i,k]/w[k,k], exactly as loopGaussian applies them — bit-identical
// serially and across disjoint bands.
func gaussianBand(x, u, v, w matrix.View, i0, i1 int) {
	n := x.N
	var b [4 * kBlock]float64
	for k0 := 0; k0 < n; k0 += kBlock {
		kHi := k0 + kBlock
		if kHi > n {
			kHi = n
		}
		klen := kHi - k0
		i := i0
		if useAVX2 && n >= 8 {
			jv := n &^ 7
			for ; i+4 <= i1; i += 4 {
				for r := 0; r < 4; r++ {
					urow := u.Data[(i+r)*u.Stride:]
					for kk := 0; kk < klen; kk++ {
						b[r*klen+kk] = urow[k0+kk] / w.At(k0+kk, k0+kk)
					}
				}
				gaussBrickAVX2(x.Data[i*x.Stride:], b[:4*klen],
					v.Data[k0*v.Stride:], x.Stride, v.Stride, klen, jv)
				for r := 0; jv < n && r < 4; r++ {
					xrow := x.Data[(i+r)*x.Stride : (i+r)*x.Stride+n]
					for kk := 0; kk < klen; kk++ {
						vrow := v.Data[(k0+kk)*v.Stride : (k0+kk)*v.Stride+n]
						gaussRow8(xrow, vrow, b[r*klen+kk], jv, n)
					}
				}
			}
		}
		for ; i < i1; i++ {
			xrow := x.Data[i*x.Stride : i*x.Stride+n]
			urow := u.Data[i*u.Stride:]
			for k := k0; k < kHi; k++ {
				f := urow[k] / w.At(k, k)
				vrow := v.Data[k*v.Stride : k*v.Stride+n]
				gaussRow8(xrow, vrow, f, 0, n)
			}
		}
	}
}
