package kernels

import (
	"math"
	"math/rand"
	"testing"

	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// randomInput builds an n×n dense input suitable for the rule: random
// sparse distances for semiring rules, a diagonally dominant system for GE.
func randomInput(rule semiring.Rule, n int, rng *rand.Rand) *matrix.Dense {
	d := matrix.NewDense(n)
	switch rule.(type) {
	case semiring.GaussianRule:
		d.FillDiagonallyDominant(rng)
	default:
		sr := rule.(semiring.SemiringRule)
		if sr.S.Name() == "boolean" {
			d.Fill(func(i, j int) float64 {
				if i == j || rng.Float64() < 0.2 {
					return 1
				}
				return 0
			})
			return d
		}
		d.Fill(func(i, j int) float64 {
			switch {
			case i == j:
				return 0
			case rng.Float64() < 0.35:
				return math.Inf(1)
			default:
				return 1 + math.Floor(rng.Float64()*9)
			}
		})
	}
	return d
}

func reference(rule semiring.Rule, d *matrix.Dense) *matrix.Dense {
	out := d.Clone()
	semiring.RunGEP(out.Data, out.N, rule)
	return out
}

func tolFor(rule semiring.Rule, n int) float64 {
	if _, ok := rule.(semiring.GaussianRule); ok {
		return 1e-7 * float64(n)
	}
	return 0
}

func rules() []semiring.Rule {
	return []semiring.Rule{
		semiring.NewFloydWarshall(),
		semiring.NewGaussian(),
		semiring.NewTransitiveClosure(),
	}
}

// TestLoopKernelWholeTable: running the iterative A kernel on the whole
// table must equal the reference GEP.
func TestLoopKernelWholeTable(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, rule := range rules() {
		for _, n := range []int{1, 2, 5, 16, 33} {
			in := randomInput(rule, n, rng)
			want := reference(rule, in)
			got := in.Clone()
			v := matrix.View{Data: got.Data, N: n, Stride: n}
			Loop(rule, semiring.KindA, v, v, v, v)
			if diff := got.MaxAbsDiff(want); diff > tolFor(rule, n) {
				t.Fatalf("%s n=%d: loop A kernel diff %v", rule.Name(), n, diff)
			}
		}
	}
}

// TestRunLocalIterative: the blocked driver with iterative kernels must
// equal the reference for every rule, size and tile size, including
// non-dividing tile sizes (virtual padding).
func TestRunLocalIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, rule := range rules() {
		for _, n := range []int{1, 3, 8, 16, 21, 32} {
			for _, b := range []int{1, 2, 4, 5, 8, 16} {
				in := randomInput(rule, n, rng)
				want := reference(rule, in)
				bl := matrix.Block(in, b, rule.Pad(), rule.PadDiag())
				RunLocal(bl, NewIterative(rule))
				got := bl.ToDense()
				if diff := got.MaxAbsDiff(want); diff > tolFor(rule, n) {
					t.Fatalf("%s n=%d b=%d: blocked iterative diff %v", rule.Name(), n, b, diff)
				}
			}
		}
	}
}

// TestRunLocalRecursive: the blocked driver with recursive r-way kernels
// must equal the reference for every r_shared, base size and thread count.
func TestRunLocalRecursive(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, rule := range rules() {
		for _, rShared := range []int{2, 3, 4, 8} {
			for _, threads := range []int{1, 4} {
				n, b := 32, 16
				in := randomInput(rule, n, rng)
				want := reference(rule, in)
				bl := matrix.Block(in, b, rule.Pad(), rule.PadDiag())
				RunLocal(bl, NewRecursiveExec(rule, rShared, 4, threads))
				got := bl.ToDense()
				if diff := got.MaxAbsDiff(want); diff > tolFor(rule, n) {
					t.Fatalf("%s r=%d threads=%d: recursive diff %v", rule.Name(), rShared, threads, diff)
				}
			}
		}
	}
}

// TestRecursiveMatchesIterativePerKind exercises each kernel kind in
// isolation, comparing recursive to iterative on operands that satisfy
// the kind's preconditions (B/C/D require an A-completed pivot tile, D
// additionally C/B-completed panels — exactly the state the blocked
// driver hands them).
func TestRecursiveMatchesIterativePerKind(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, rule := range rules() {
		n, b := 32, 16
		in := randomInput(rule, n, rng)
		bl := matrix.Block(in, b, rule.Pad(), rule.PadDiag())
		it := NewIterative(rule)

		pivot := bl.Tile(matrix.Coord{I: 0, J: 0})
		it.Apply(semiring.KindA, pivot, nil, nil, nil)

		for _, rShared := range []int{2, 4} {
			rec := NewRecursiveExec(rule, rShared, 4, 2)
			compare := func(kind semiring.Kind, x *matrix.Tile, u, v *matrix.Tile) *matrix.Tile {
				t.Helper()
				x1, x2 := x.Clone(), x.Clone()
				it.Apply(kind, x1, u, v, pivot)
				rec.Apply(kind, x2, u, v, pivot)
				for i := range x1.Data {
					if math.Abs(x1.Data[i]-x2.Data[i]) > 1e-8 &&
						!(math.IsInf(x1.Data[i], 1) && math.IsInf(x2.Data[i], 1)) {
						t.Fatalf("%s kind %v r=%d: mismatch at %d: %v vs %v",
							rule.Name(), kind, rShared, i, x1.Data[i], x2.Data[i])
					}
				}
				return x1
			}
			rowPanel := compare(semiring.KindB, bl.Tile(matrix.Coord{I: 0, J: 1}), pivot, nil)
			colPanel := compare(semiring.KindC, bl.Tile(matrix.Coord{I: 1, J: 0}), nil, pivot)
			compare(semiring.KindD, bl.Tile(matrix.Coord{I: 1, J: 1}), colPanel, rowPanel)
		}
	}
}

// TestRecursiveFallbackNonDividing: when the size does not divide by r the
// recursion must fall back to the loop kernel and stay correct.
func TestRecursiveFallbackNonDividing(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	rule := semiring.NewFloydWarshall()
	n := 30 // not divisible by r=4
	in := randomInput(rule, n, rng)
	want := reference(rule, in)
	bl := matrix.Block(in, 15, rule.Pad(), rule.PadDiag())
	RunLocal(bl, NewRecursiveExec(rule, 4, 2, 4))
	if diff := bl.ToDense().MaxAbsDiff(want); diff > 0 {
		t.Fatalf("fallback recursion diff %v", diff)
	}
}

// genericRule strips the concrete type so Loop takes its generic path.
type genericRule struct{ semiring.Rule }

// TestLoopFastPathsMatchGeneric: the specialized min-plus and GE inner
// loops must agree with the generic interface-dispatch path (up to the
// GE multiplier hoist's rounding).
func TestLoopFastPathsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		for _, kind := range []semiring.Kind{semiring.KindA, semiring.KindB, semiring.KindC, semiring.KindD} {
			n := 24
			in := randomInput(rule, n, rng)
			bl := matrix.Block(in, n, rule.Pad(), rule.PadDiag())
			x1 := bl.Tile(matrix.Coord{I: 0, J: 0})
			mk := func() *matrix.Tile {
				tl := matrix.NewTile(n)
				for i := range tl.Data {
					tl.Data[i] = 1 + math.Floor(rng.Float64()*5)
				}
				for i := 0; i < n; i++ {
					tl.Set(i, i, rule.PadDiag())
				}
				return tl
			}
			u, v, w := mk(), mk(), mk()
			wire := func(tile *matrix.Tile) (a, b, c matrix.View) {
				switch kind {
				case semiring.KindA:
					return tile.View(), tile.View(), tile.View()
				case semiring.KindB:
					return u.View(), tile.View(), w.View()
				case semiring.KindC:
					return tile.View(), v.View(), w.View()
				default:
					return u.View(), v.View(), w.View()
				}
			}
			fast := x1.Clone()
			fu, fv, fw := wire(fast)
			Loop(rule, kind, fast.View(), fu, fv, fw)
			slow := x1.Clone()
			su, sv, sw := wire(slow)
			Loop(genericRule{rule}, kind, slow.View(), su, sv, sw)
			for i := range fast.Data {
				if math.Abs(fast.Data[i]-slow.Data[i]) > 1e-9 &&
					!(math.IsInf(fast.Data[i], 1) && math.IsInf(slow.Data[i], 1)) {
					t.Fatalf("%s %v: fast path diverges at %d: %v vs %v",
						rule.Name(), kind, i, fast.Data[i], slow.Data[i])
				}
			}
		}
	}
}

func TestUpdatesFormulas(t *testing.T) {
	fw := semiring.NewFloydWarshall()
	ge := semiring.NewGaussian()
	n := 16
	n64 := int64(n)
	for _, kind := range []semiring.Kind{semiring.KindA, semiring.KindB, semiring.KindC, semiring.KindD} {
		if got := Updates(fw, kind, n); got != n64*n64*n64 {
			t.Fatalf("FW %v updates = %d, want n³", kind, got)
		}
	}
	// GE closed forms: A: Σ m², B/C: Σ m·n, D: n³ with m = n-1-k.
	var sumM2, sumM int64
	for k := 0; k < n; k++ {
		m := int64(n - 1 - k)
		sumM2 += m * m
		sumM += m
	}
	if got := Updates(ge, semiring.KindA, n); got != sumM2 {
		t.Fatalf("GE A updates = %d, want %d", got, sumM2)
	}
	if got := Updates(ge, semiring.KindB, n); got != sumM*n64 {
		t.Fatalf("GE B updates = %d, want %d", got, sumM*n64)
	}
	if got := Updates(ge, semiring.KindC, n); got != sumM*n64 {
		t.Fatalf("GE C updates = %d, want %d", got, sumM*n64)
	}
	if got := Updates(ge, semiring.KindD, n); got != n64*n64*n64 {
		t.Fatalf("GE D updates = %d, want n³", got)
	}
}

func TestUpdatesMatchesCountedLoop(t *testing.T) {
	// Property: Updates must equal the number of Apply calls Loop makes.
	for _, rule := range rules() {
		for _, kind := range []semiring.Kind{semiring.KindA, semiring.KindB, semiring.KindC, semiring.KindD} {
			n := 9
			count := int64(0)
			counter := countingRule{Rule: rule, n: &count}
			tl := matrix.NewTile(n)
			for i := 0; i < n; i++ {
				tl.Set(i, i, rule.PadDiag())
			}
			v := tl.View()
			Loop(counter, kind, v, v, v, v)
			if want := Updates(rule, kind, n); count != want {
				t.Fatalf("%s %v: loop made %d updates, formula says %d", rule.Name(), kind, count, want)
			}
		}
	}
}

// countingRule wraps a rule, counting Apply invocations.
type countingRule struct {
	semiring.Rule
	n *int64
}

func (c countingRule) Apply(x, u, v, w float64) float64 {
	*c.n++
	return c.Rule.Apply(x, u, v, w)
}

func TestPoolParallel(t *testing.T) {
	p := NewPool(3)
	if p.Threads() != 3 {
		t.Fatalf("Threads = %d", p.Threads())
	}
	var nilPool *Pool
	if nilPool.Threads() != 1 {
		t.Fatal("nil pool must report 1 thread")
	}
	ran := make([]bool, 20)
	fns := make([]func(bool), 20)
	for i := range fns {
		i := i
		fns[i] = func(bool) { ran[i] = true }
	}
	p.parallel(false, fns)
	for i, r := range ran {
		if !r {
			t.Fatalf("fn %d did not run", i)
		}
	}
	// Serial path.
	count := 0
	nilPool.parallel(false, []func(bool){func(bool) { count++ }, func(bool) { count++ }})
	if count != 2 {
		t.Fatal("nil pool parallel must run serially")
	}
	if NewPool(0).Threads() != 1 {
		t.Fatal("NewPool clamps to 1")
	}
}

func TestNewRecursiveValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewRecursive(semiring.NewGaussian(), 1, 4, nil) },
		func() { NewRecursive(semiring.NewGaussian(), 2, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestNormalizePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIterative(semiring.NewGaussian()).Apply(semiring.KindD,
		matrix.NewTile(4), matrix.NewTile(5), matrix.NewTile(4), matrix.NewTile(4))
}

func TestExecNames(t *testing.T) {
	if NewIterative(semiring.NewGaussian()).Name() != "iterative" {
		t.Fatal("iterative name")
	}
	name := NewRecursiveExec(semiring.NewGaussian(), 4, 64, 8).Name()
	if name != "recursive(r=4,base=64,threads=8)" {
		t.Fatalf("recursive name = %q", name)
	}
}
