package kernels

import (
	"time"

	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// Sink receives real-execution kernel timings from an instrumented Exec.
// Implementations must be safe for concurrent use: tasks apply kernels
// from parallel goroutines.
type Sink interface {
	// ObserveKernel reports one real Apply: the exec's name, the kernel
	// kind, the tile dimension and the measured wall time.
	ObserveKernel(name string, kind semiring.Kind, b int, wall time.Duration)
}

// Instrument wraps an Exec so every real Apply reports its wall-clock
// duration to the sink — the measured counterpart of the cost model's
// predicted kernel time (symbolic runs never call Apply, so they report
// nothing). A nil sink returns the exec unchanged.
func Instrument(e Exec, sink Sink) Exec {
	if sink == nil {
		return e
	}
	return instrumented{inner: e, sink: sink}
}

type instrumented struct {
	inner Exec
	sink  Sink
}

// Name implements Exec.
func (x instrumented) Name() string { return x.inner.Name() }

// Rule implements Exec.
func (x instrumented) Rule() semiring.Rule { return x.inner.Rule() }

// Apply implements Exec, timing the wrapped kernel.
func (x instrumented) Apply(kind semiring.Kind, xt, u, v, w *matrix.Tile) {
	start := time.Now()
	x.inner.Apply(kind, xt, u, v, w)
	x.sink.ObserveKernel(x.inner.Name(), kind, xt.B, time.Since(start))
}

// ApplyWith implements PoolExec, timing the wrapped kernel. When the
// inner exec cannot use a pool the invocation degrades to Apply.
func (x instrumented) ApplyWith(pool *Pool, kind semiring.Kind, xt, u, v, w *matrix.Tile) {
	start := time.Now()
	if pe, ok := x.inner.(PoolExec); ok {
		pe.ApplyWith(pool, kind, xt, u, v, w)
	} else {
		x.inner.Apply(kind, xt, u, v, w)
	}
	x.sink.ObserveKernel(x.inner.Name(), kind, xt.B, time.Since(start))
}
