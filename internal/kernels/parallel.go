package kernels

import (
	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// parMinDim is the static floor below which LoopPool never splits: a full
// band over a tile smaller than this costs less than waking a worker.
// The measured serial↔parallel crossover for a given machine lives in
// internal/autotune (KernelProfile.BestThreads); callers consult it when
// choosing KernelThreads, and this constant only guards against
// pathological tiny-tile splits.
const parMinDim = 64

// LoopPool runs the iterative GEP kernel like Loop, splitting the update
// into row bands executed on the pool when that is provably bit-identical
// to the serial order:
//
//   - x must alias none of the operands the rule's update reads (u and v
//     for semiring rules, whose UsesPivot is false; u, v and w for
//     pivot-reading rules). Then x's rows are mutually independent —
//     every update to x[i,j] reads only those operands and x[i,j]
//     itself — and each
//     element still receives its updates in ascending k inside its band,
//     so the result equals the serial loop bit for bit.
//   - Aliased shapes (kind A always; B, C and semiring-rule kernels
//     whose operands are wired back to x) are true in-place DPs whose
//     later pivots observe earlier updates; they run the ordered serial
//     Loop regardless of the pool.
//
// A nil or width-1 pool, or a tile below the parallel crossover floor,
// falls through to Loop unchanged.
func LoopPool(pool *Pool, rule semiring.Rule, kind semiring.Kind, x, u, v, w matrix.View) {
	n := x.N
	if u.N != n || v.N != n || w.N != n {
		panic("kernels: LoopPool operand dimensions differ")
	}
	if pool.Threads() <= 1 || n < parMinDim {
		Loop(rule, kind, x, u, v, w)
		return
	}
	// The aliasing requirement is per rule: the band split needs x's rows
	// independent of every operand the update READS. Semiring rules never
	// read w (Exec.normalize wires an omitted w to x, which must not force
	// the serial path — their kind D carries no pivot operand at all);
	// Gaussian elimination and pivot-reading generic rules read all three.
	switch r := rule.(type) {
	case semiring.SemiringRule:
		if r.S.Name() == "min-plus" {
			if !sameView(x, u) && !sameView(x, v) {
				bandParallel(pool, n, func(i0, i1 int) {
					minPlusBand(x, u, v, i0, i1)
				})
				return
			}
		} else if !sameView(x, u) && !sameView(x, v) {
			// Other semirings run the generic per-element update. Like
			// min-plus they never read w (UsesPivot is false — genericBand
			// skips the load), so an aliased w does not force serial.
			bandParallel(pool, n, func(i0, i1 int) {
				genericBand(rule, kind, x, u, v, w, i0, i1)
			})
			return
		}
	case semiring.GaussianRule:
		// Kind B/C hoist the row multiplier out of the j loop in the
		// serial path; banding them through the per-element generic
		// update would change the rounding reference. They are never the
		// hot shape, so only the full-range kind D splits.
		if kind == semiring.KindD && !sameView(x, u) && !sameView(x, v) && !sameView(x, w) {
			bandParallel(pool, n, func(i0, i1 int) {
				gaussianBand(x, u, v, w, i0, i1)
			})
			return
		}
	default:
		if !sameView(x, u) && !sameView(x, v) && (!rule.UsesPivot() || !sameView(x, w)) {
			bandParallel(pool, n, func(i0, i1 int) {
				genericBand(rule, kind, x, u, v, w, i0, i1)
			})
			return
		}
	}
	Loop(rule, kind, x, u, v, w)
}

// bandParallel partitions the n rows into one band per pool thread
// (boundaries rounded to multiples of four so the SIMD quad groups do
// not fragment) and runs the bands through the pool's par_for.
func bandParallel(pool *Pool, n int, band func(i0, i1 int)) {
	parts := pool.Threads()
	if parts > n/4 {
		parts = n / 4
	}
	if parts <= 1 {
		band(0, n)
		return
	}
	fns := make([]func(bool), parts)
	lo := 0
	for p := 0; p < parts; p++ {
		hi := n
		if p < parts-1 {
			hi = (n * (p + 1) / parts) &^ 3
		}
		i0, i1 := lo, hi
		fns[p] = func(bool) { band(i0, i1) }
		lo = hi
	}
	pool.parallel(false, fns)
}

// genericBand is the interface-dispatch kernel restructured with the row
// loop outermost, covering rows [i0,i1). Per element the visited (k, j)
// set and the ascending-k order match Loop's generic path exactly; only
// the interleaving across rows differs, which cannot be observed when x
// aliases no operand.
func genericBand(rule semiring.Rule, kind semiring.Kind, x, u, v, w matrix.View, i0, i1 int) {
	n := x.N
	usesW := rule.UsesPivot()
	for i := i0; i < i1; i++ {
		xrow := x.Data[i*x.Stride:]
		for k := 0; k < n; k++ {
			if i < rule.ILow(kind, k) {
				continue
			}
			var wkk float64
			if usesW {
				wkk = w.At(k, k)
			}
			uik := u.At(i, k)
			vrow := v.Data[k*v.Stride:]
			for j := rule.JLow(kind, k); j < n; j++ {
				xrow[j] = rule.Apply(xrow[j], uik, vrow[j], wkk)
			}
		}
	}
}
