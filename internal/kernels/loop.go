package kernels

import (
	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// Loop runs the iterative (loop-based) GEP kernel of the given kind on the
// b×b views, updating x in place:
//
//	for k; for i ≥ rule.ILow(kind,k); for j ≥ rule.JLow(kind,k):
//	    x[i,j] = f(x[i,j], u[i,k], v[k,j], w[k,k])
//
// Aliasing follows Fig. 4's kernel signatures: for kind A the caller
// passes u = v = w = x; for kind B the v operand is x itself (the row
// panel reads its own pivot row); for kind C the u operand is x itself.
// Exec.Apply wires these automatically.
//
// All views must have equal dimension. This is the base case of the
// recursive kernels and, used directly on whole tiles, the paper's
// "iterative kernel" configuration.
func Loop(rule semiring.Rule, kind semiring.Kind, x, u, v, w matrix.View) {
	n := x.N
	if u.N != n || v.N != n || w.N != n {
		panic("kernels: Loop operand dimensions differ")
	}
	// Specialized inner loops for the two benchmark rules: the generic
	// path pays an interface call per element update, which dominates
	// real-mode runs. The fast paths are semantically identical
	// (TestLoopFastPathsMatchGeneric pins this).
	switch r := rule.(type) {
	case semiring.SemiringRule:
		if r.S.Name() == "min-plus" {
			loopMinPlus(x, u, v)
			return
		}
	case semiring.GaussianRule:
		loopGaussian(r, kind, x, u, v, w)
		return
	}
	// Rules that never read the pivot operand must not load it either:
	// when the engine carries no pivot tile for them (FW's kind D has
	// lighter dependencies, Fig. 7) normalize wires w back to x, and the
	// recursive kernels run sibling quadrant updates concurrently — a
	// load of the aliased w[k,k] would race with the (k,k) quadrant's
	// writer. Apply ignores the argument, so skipping the load is
	// bit-identical.
	usesW := rule.UsesPivot()
	for k := 0; k < n; k++ {
		var wkk float64
		if usesW {
			wkk = w.At(k, k)
		}
		for i := rule.ILow(kind, k); i < n; i++ {
			uik := u.At(i, k)
			xrow := x.Data[i*x.Stride:]
			vrow := v.Data[k*v.Stride:]
			for j := rule.JLow(kind, k); j < n; j++ {
				xrow[j] = rule.Apply(xrow[j], uik, vrow[j], wkk)
			}
		}
	}
}

// loopMinPlus is the Floyd-Warshall inner loop: x[i,j] = min(x, u[i,k] +
// v[k,j]) over the full cube (semiring rules have zero loop lower bounds
// and ignore the pivot operand). When x aliases neither u nor v (kind D,
// and the recursive kernels' interior sub-updates) the k loop is a pure
// min-reduction over fixed operands and runs cache-blocked; min is exact,
// so the result is bit-identical to the ordered loop.
func loopMinPlus(x, u, v matrix.View) {
	if !sameView(x, u) && !sameView(x, v) {
		loopMinPlusBlocked(x, u, v)
		return
	}
	n := x.N
	for k := 0; k < n; k++ {
		vrow := v.Data[k*v.Stride:]
		for i := 0; i < n; i++ {
			uik := u.At(i, k)
			xrow := x.Data[i*x.Stride:]
			for j := 0; j < n; j++ {
				if t := uik + vrow[j]; t < xrow[j] {
					xrow[j] = t
				}
			}
		}
	}
}

// loopGaussian is the elimination inner loop with the row multiplier
// u[i,k]/w[k,k] hoisted out of the j loop (one division per row instead
// of per element — the classic GE formulation of Fig. 2).
func loopGaussian(rule semiring.GaussianRule, kind semiring.Kind, x, u, v, w matrix.View) {
	// Kind D has full-range loop bounds (i > k, j > k constrain only
	// pivot-row/column kernels) and never aliases x with an operand, so
	// it takes the k-blocked path; see blocked.go for the bit-identity
	// argument.
	if kind == semiring.KindD && !sameView(x, u) && !sameView(x, v) && !sameView(x, w) {
		loopGaussianBlocked(x, u, v, w)
		return
	}
	n := x.N
	for k := 0; k < n; k++ {
		wkk := w.At(k, k)
		vrow := v.Data[k*v.Stride:]
		jLow := rule.JLow(kind, k)
		for i := rule.ILow(kind, k); i < n; i++ {
			f := u.At(i, k) / wkk
			xrow := x.Data[i*x.Stride:]
			for j := jLow; j < n; j++ {
				xrow[j] -= f * vrow[j]
			}
		}
	}
}

// Updates returns the number of element updates a kernel of the given kind
// performs on an n×n operand under the given rule — the work measure the
// cost model charges for. For semiring rules every kind costs n³; for GE
// kind A costs ~n³/3, B and C ~n³/2 and D n³.
func Updates(rule semiring.Rule, kind semiring.Kind, n int) int64 {
	var total int64
	for k := 0; k < n; k++ {
		rows := int64(n - rule.ILow(kind, k))
		cols := int64(n - rule.JLow(kind, k))
		if rows > 0 && cols > 0 {
			total += rows * cols
		}
	}
	return total
}
