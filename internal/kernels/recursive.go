package kernels

import (
	"fmt"

	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// Recursive executes the parametric r-way recursive divide-&-conquer
// GEP kernels of Fig. 4. Each invocation subdivides its operands into
// R×R sub-views and issues the A/B/C/D sub-calls of the figure, running
// par_for groups in parallel on the Pool; once an operand reaches Base
// (or stops dividing evenly by R) the iterative Loop kernel finishes it.
//
// R is the paper's r_shared tunable: larger R means wider fan-out
// (coarse-grained parallelism) and smaller sub-blocks sooner. The
// algorithms are cache-oblivious in the 2-way case and remain I/O
// efficient for any fixed R.
type Recursive struct {
	Rule semiring.Rule
	// R is the fan-out per recursion level (r_shared ≥ 2).
	R int
	// Base is the base-case size: operands of dimension ≤ Base run Loop.
	Base int
	// Pool bounds leaf parallelism; nil runs serially.
	Pool *Pool
}

// NewRecursive returns a recursive kernel runner, validating parameters.
func NewRecursive(rule semiring.Rule, r, base int, pool *Pool) *Recursive {
	if r < 2 {
		panic(fmt.Sprintf("kernels: r_shared must be ≥ 2, got %d", r))
	}
	if base < 1 {
		panic(fmt.Sprintf("kernels: base size must be ≥ 1, got %d", base))
	}
	return &Recursive{Rule: rule, R: r, Base: base, Pool: pool}
}

// Run executes the kernel of the given kind on x (updating it in place)
// with panel/pivot operands u, v, w wired as in Fig. 4. As with Loop,
// kind A expects u = v = w = x, kind B expects v = x, kind C expects u = x.
func (rc *Recursive) Run(kind semiring.Kind, x, u, v, w matrix.View) {
	rc.run(false, kind, x, u, v, w)
}

// run is Run with the pool-token state of the executing goroutine
// threaded through, so nested par_for barriers can hand their token off
// while waiting (see Pool.parallel).
func (rc *Recursive) run(held bool, kind semiring.Kind, x, u, v, w matrix.View) {
	n := x.N
	if n <= rc.Base || n%rc.R != 0 {
		Loop(rc.Rule, kind, x, u, v, w)
		return
	}
	r := rc.R
	q := func(view matrix.View, i, j int) matrix.View { return view.Quadrant(i, j, r) }

	for k := 0; k < r; k++ {
		rest := rc.Rule.Restricted(k, r)
		switch kind {
		case semiring.KindA:
			// A(X_kk), then {B(X_kj), C(X_ik)} in parallel, then D(X_ij).
			xkk := q(x, k, k)
			rc.run(held, semiring.KindA, xkk, xkk, xkk, xkk)
			var panel []func(bool)
			for _, j := range rest {
				j := j
				panel = append(panel, func(h bool) {
					rc.run(h, semiring.KindB, q(x, k, j), xkk, q(x, k, j), xkk)
				})
			}
			for _, i := range rest {
				i := i
				panel = append(panel, func(h bool) {
					rc.run(h, semiring.KindC, q(x, i, k), q(x, i, k), xkk, xkk)
				})
			}
			rc.Pool.parallel(held, panel)
			var interior []func(bool)
			for _, i := range rest {
				for _, j := range rest {
					i, j := i, j
					interior = append(interior, func(h bool) {
						rc.run(h, semiring.KindD, q(x, i, j), q(x, i, k), q(x, k, j), xkk)
					})
				}
			}
			rc.Pool.parallel(held, interior)

		case semiring.KindB:
			// B(X_kj, U_kk, W_kk) ∀j, then D(X_ij, U_ik, X_kj, W_kk)
			// for restricted i, ∀j.
			ukk, wkk := q(u, k, k), q(w, k, k)
			var row []func(bool)
			for j := 0; j < r; j++ {
				j := j
				row = append(row, func(h bool) {
					rc.run(h, semiring.KindB, q(x, k, j), ukk, q(x, k, j), wkk)
				})
			}
			rc.Pool.parallel(held, row)
			var interior []func(bool)
			for _, i := range rest {
				for j := 0; j < r; j++ {
					i, j := i, j
					interior = append(interior, func(h bool) {
						rc.run(h, semiring.KindD, q(x, i, j), q(u, i, k), q(x, k, j), wkk)
					})
				}
			}
			rc.Pool.parallel(held, interior)

		case semiring.KindC:
			// C(X_ik, V_kk, W_kk) ∀i, then D(X_ij, X_ik, V_kj, W_kk)
			// ∀i, restricted j.
			vkk, wkk := q(v, k, k), q(w, k, k)
			var col []func(bool)
			for i := 0; i < r; i++ {
				i := i
				col = append(col, func(h bool) {
					rc.run(h, semiring.KindC, q(x, i, k), q(x, i, k), vkk, wkk)
				})
			}
			rc.Pool.parallel(held, col)
			var interior []func(bool)
			for i := 0; i < r; i++ {
				for _, j := range rest {
					i, j := i, j
					interior = append(interior, func(h bool) {
						rc.run(h, semiring.KindD, q(x, i, j), q(x, i, k), q(v, k, j), wkk)
					})
				}
			}
			rc.Pool.parallel(held, interior)

		case semiring.KindD:
			// D(X_ij, U_ik, V_kj, W_kk) ∀i,j. (Fig. 4 prints the second
			// operand as X_ik; that is a typo for U_ik — with X_ik the
			// update would read the output tile's own column, which is
			// only correct for kind C.)
			wkk := q(w, k, k)
			var interior []func(bool)
			for i := 0; i < r; i++ {
				for j := 0; j < r; j++ {
					i, j := i, j
					interior = append(interior, func(h bool) {
						rc.run(h, semiring.KindD, q(x, i, j), q(u, i, k), q(v, k, j), wkk)
					})
				}
			}
			rc.Pool.parallel(held, interior)
		}
	}
}
