// Package kernels implements the compute kernels of the paper's Fig. 4:
// the four GEP kernel functions A, B, C and D in both an iterative
// (loop-based, the Schoeneman–Zola / Numba style) and a parametric r-way
// recursive divide-&-conquer (R-DP) form, generic over the GEP update rule.
//
// Parallelism inside a kernel invocation — the paper's OpenMP environment
// with OMP_NUM_THREADS — is provided by a Pool of worker tokens: the
// recursive kernels fork goroutines along the par_for structure of Fig. 4
// and gate base-case execution on pool tokens, so at most Threads leaf
// kernels compute simultaneously.
package kernels

import "sync"

// Pool bounds the number of concurrently executing base-case kernels.
// It is the OMP_NUM_THREADS analogue: one Pool per kernel invocation
// context, shared across the recursion. A nil *Pool means fully serial
// execution (no goroutines at all), which the engine uses when many
// kernel tasks already run concurrently.
type Pool struct {
	threads int
	sem     chan struct{}
}

// NewPool returns a pool admitting up to threads concurrent leaf kernels.
// threads < 1 is treated as 1.
func NewPool(threads int) *Pool {
	if threads < 1 {
		threads = 1
	}
	return &Pool{threads: threads, sem: make(chan struct{}, threads)}
}

// Threads returns the pool's concurrency bound.
func (p *Pool) Threads() int {
	if p == nil {
		return 1
	}
	return p.threads
}

// leaf runs fn while holding a worker token. Tokens are held only across
// base-case work, never across recursive calls, so recursion depth cannot
// deadlock the pool.
func (p *Pool) leaf(fn func()) {
	if p == nil {
		fn()
		return
	}
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	fn()
}

// parallel runs all fns, concurrently when a pool is present (the caller's
// goroutine executes the first one). It returns when every fn finished —
// the stage barrier of Fig. 4's par_for groups.
func (p *Pool) parallel(fns []func()) {
	if p == nil || len(fns) <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}
