// Package kernels implements the compute kernels of the paper's Fig. 4:
// the four GEP kernel functions A, B, C and D in both an iterative
// (loop-based, the Schoeneman–Zola / Numba style) and a parametric r-way
// recursive divide-&-conquer (R-DP) form, generic over the GEP update rule.
//
// Parallelism inside a kernel invocation — the paper's OpenMP environment
// with OMP_NUM_THREADS — is provided by a Pool of worker tokens: the
// recursive kernels fork goroutines along the par_for structure of Fig. 4,
// and the iterative blocked fast paths split into independent row bands,
// so at most Threads subtrees compute simultaneously.
package kernels

import (
	"sync"
	"sync/atomic"
)

// Pool bounds the number of concurrently executing kernel workers. It is
// the OMP_NUM_THREADS analogue: one Pool per node, handed to each kernel
// invocation, shared across recursion levels and across the node's
// concurrently running tasks. A nil *Pool means fully serial execution
// (no goroutines at all).
//
// Token discipline: the calling goroutine always has the right to compute
// (it occupies the task's own core), so a pool of width t carries t−1
// spare tokens. parallel spawns a goroutine for a branch only when a spare
// token is immediately available; otherwise the branch runs inline on the
// caller — acquisition never blocks, so recursion depth cannot deadlock
// the pool and a pool shared by many tasks degrades gracefully to serial
// instead of oversubscribing.
//
// Hand-off: a spawned worker that reaches a par_for barrier of its own is
// about to block in Wait doing no work. It donates its token back to the
// pool for the duration of the wait and re-acquires one before resuming,
// so threads stay busy even when the recursion is deeper than it is wide
// (the threads < stage-width case). The caller chain below one token
// always holds at most that one token, and every donated token is
// re-acquired only after the waiter's children finished, so the
// release/re-acquire pairs balance and total concurrency never exceeds
// the pool width.
type Pool struct {
	threads int
	// sem counts in-use spare tokens: send = acquire, receive = release.
	// Capacity threads−1; a full channel means every spare token is busy.
	sem chan struct{}

	spawned  atomic.Int64 // branches that got their own goroutine
	inlined  atomic.Int64 // branches run on the caller (no spare token free)
	handoffs atomic.Int64 // tokens donated by a parent blocked at a barrier
}

// NewPool returns a pool admitting up to threads concurrently computing
// workers, the caller included. threads < 1 is treated as 1 (a width-1
// pool never spawns and is equivalent to nil).
func NewPool(threads int) *Pool {
	if threads < 1 {
		threads = 1
	}
	return &Pool{threads: threads, sem: make(chan struct{}, threads-1)}
}

// Threads returns the pool's concurrency bound.
func (p *Pool) Threads() int {
	if p == nil {
		return 1
	}
	return p.threads
}

// Stats returns cumulative scheduling counters: branches spawned on their
// own goroutine, branches inlined on the caller, and barrier token
// hand-offs. Counters are monotone and safe to read concurrently.
func (p *Pool) Stats() (spawned, inlined, handoffs int64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.spawned.Load(), p.inlined.Load(), p.handoffs.Load()
}

// parallel runs all fns and returns when every one finished — the stage
// barrier of Fig. 4's par_for groups. Each fn receives whether it runs
// under a pool token (true for spawned workers and for branches inlined
// on a token-holding caller), which it must pass through to any nested
// parallel call so the barrier hand-off stays balanced.
//
// held reports whether the *calling* goroutine occupies a spare token.
// Top-level entry points pass false (the caller's right to compute is
// implicit, not a pool token).
func (p *Pool) parallel(held bool, fns []func(held bool)) {
	if p == nil || len(fns) <= 1 {
		for _, fn := range fns {
			fn(held)
		}
		return
	}
	var wg sync.WaitGroup
	waiting := false
	for _, fn := range fns[1:] {
		select {
		case p.sem <- struct{}{}:
			p.spawned.Add(1)
			waiting = true
			wg.Add(1)
			go func(f func(bool)) {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				f(true)
			}(fn)
		default:
			p.inlined.Add(1)
			fn(held)
		}
	}
	fns[0](held)
	if held && waiting {
		// The caller holds a spare token and is about to block: donate it
		// while waiting so a sibling subtree can use the thread, then take
		// one back before resuming. The receive cannot block — the
		// caller's own acquisition put at least one element in sem, and
		// releases are matched 1:1 with prior acquisitions.
		<-p.sem
		p.handoffs.Add(1)
		wg.Wait()
		p.sem <- struct{}{}
	} else if waiting {
		wg.Wait()
	}
}
