//go:build amd64

package kernels

// Hand-written AVX2 bodies for the two hot inner loops (min-plus and GE
// elimination), used by the blocked fast paths when the CPU supports
// them. Both operate on a 4-row × jlen-column × klen-pivot brick with the
// per-(row,k) scalar operands pre-gathered into b (see blocked.go), and
// both are bit-identical to the scalar bodies they replace:
//
//   - minplusBrickAVX2: x[r,j] = min(x[r,j], b[r,k] + v[k,j]). VADDPD is
//     the IEEE double add, and VMINPD(t, x) returns x when the operands
//     compare unordered or equal — exactly the scalar
//     `if t := s + vj; t < x { x = t }`, including NaN and ±0 behaviour
//     (TestSIMDBricksMatchScalar pins this on the special values).
//   - gaussBrickAVX2: x[r,j] -= b[r,k] * v[k,j] as an unfused
//     VMULPD + VSUBPD pair, matching the scalar `x -= f * vj` (gc does
//     not fuse multiply-add on amd64, so no FMA contraction differences).
//
// Per element the k updates apply in ascending order, preserving the
// rounding sequence of the ordered loops. jlen must be a positive
// multiple of 8 (the caller handles column tails in scalar code), klen
// must be ≥ 1, b must hold 4·klen values laid out row-major, and x/v are
// the top-left corners of the brick with the given strides (in elements).

// useAVX2 gates the assembly bodies; tests may flip it through
// setSIMDForTest to compare both implementations on the same machine.
var useAVX2 = cpuHasAVX2()

// setSIMDForTest forces the scalar (enabled=false) or SIMD (enabled=true)
// blocked bodies, returning the previous setting. Enabling on a machine
// without AVX2 is the caller's responsibility; only tests use this.
func setSIMDForTest(enabled bool) (prev bool) {
	prev = useAVX2
	useAVX2 = enabled && cpuHasAVX2()
	return prev
}

// cpuHasAVX2 reports AVX2 support including the OS having enabled YMM
// state saving (OSXSAVE + XCR0 bits 1–2), per the Intel detection recipe.
func cpuHasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)

// minplusBrickAVX2 applies x[r,j] = min(x[r,j], b[r*klen+k] + v[k,j]) for
// r in [0,4), j in [0,jlen), k in [0,klen), ascending k per element.
//
//go:noescape
func minplusBrickAVX2(x, b, v []float64, xstride, vstride, klen, jlen int)

// gaussBrickAVX2 applies x[r,j] -= b[r*klen+k] * v[k,j] for r in [0,4),
// j in [0,jlen), k in [0,klen), ascending k per element, unfused.
//
//go:noescape
func gaussBrickAVX2(x, b, v []float64, xstride, vstride, klen, jlen int)
