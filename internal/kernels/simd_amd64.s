//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// Both bricks share one register plan. GP registers (R14, R15 and BP are
// left untouched — R14 is the goroutine register under the internal ABI):
//
//	DI  x tile pointer, advanced 64 bytes per 8-column tile
//	DX  v base pointer, advanced in lockstep with DI
//	R13 v row pointer inside the k loop (DX + k·vstride·8)
//	SI  b base (row-major 4×klen scalar operands)
//	AX  b row-0 pointer inside the k loop (SI + k·8)
//	CX  b row-0 end pointer (SI + klen·8)
//	R10 klen·8   (b row offset: row r scalar at AX + r·R10)
//	R11 3·klen·8
//	R8  xstride·8
//	BX  3·xstride·8
//	R9  vstride·8
//	R12 remaining columns
//
// Vector registers: Y0–Y7 hold the 4×8 x block across the whole k loop
// (x is loaded and stored once per 8-column tile), Y8/Y9 the current v
// row pair, Y10 the broadcast scalar, Y11 the product/sum temporary.

#define LOAD_X \
	VMOVUPD (DI), Y0 \
	VMOVUPD 32(DI), Y1 \
	VMOVUPD (DI)(R8*1), Y2 \
	VMOVUPD 32(DI)(R8*1), Y3 \
	VMOVUPD (DI)(R8*2), Y4 \
	VMOVUPD 32(DI)(R8*2), Y5 \
	VMOVUPD (DI)(BX*1), Y6 \
	VMOVUPD 32(DI)(BX*1), Y7

#define STORE_X \
	VMOVUPD Y0, (DI) \
	VMOVUPD Y1, 32(DI) \
	VMOVUPD Y2, (DI)(R8*1) \
	VMOVUPD Y3, 32(DI)(R8*1) \
	VMOVUPD Y4, (DI)(R8*2) \
	VMOVUPD Y5, 32(DI)(R8*2) \
	VMOVUPD Y6, (DI)(BX*1) \
	VMOVUPD Y7, 32(DI)(BX*1)

// func minplusBrickAVX2(x, b, v []float64, xstride, vstride, klen, jlen int)
//
// x[r,j] = min(x[r,j], b[r,k] + v[k,j]). The VMINPD operand order below is
// Go syntax for Intel MINPD(src1 = t, src2 = x): on unordered or equal
// operands the instruction returns src2, i.e. x survives ties and NaN sums
// exactly like the scalar `if t := s + vj; t < x { x = t }`.
TEXT ·minplusBrickAVX2(SB), NOSPLIT, $0-104
	MOVQ x_base+0(FP), DI
	MOVQ b_base+24(FP), SI
	MOVQ v_base+48(FP), DX
	MOVQ xstride+72(FP), R8
	SHLQ $3, R8
	LEAQ (R8)(R8*2), BX
	MOVQ vstride+80(FP), R9
	SHLQ $3, R9
	MOVQ klen+88(FP), R10
	SHLQ $3, R10
	LEAQ (R10)(R10*2), R11
	LEAQ (SI)(R10*1), CX
	MOVQ jlen+96(FP), R12

mp_jtile:
	LOAD_X
	MOVQ DX, R13
	MOVQ SI, AX

mp_kloop:
	VMOVUPD      (R13), Y8
	VMOVUPD      32(R13), Y9
	VBROADCASTSD (AX), Y10
	VADDPD       Y8, Y10, Y11
	VMINPD       Y0, Y11, Y0
	VADDPD       Y9, Y10, Y11
	VMINPD       Y1, Y11, Y1
	VBROADCASTSD (AX)(R10*1), Y10
	VADDPD       Y8, Y10, Y11
	VMINPD       Y2, Y11, Y2
	VADDPD       Y9, Y10, Y11
	VMINPD       Y3, Y11, Y3
	VBROADCASTSD (AX)(R10*2), Y10
	VADDPD       Y8, Y10, Y11
	VMINPD       Y4, Y11, Y4
	VADDPD       Y9, Y10, Y11
	VMINPD       Y5, Y11, Y5
	VBROADCASTSD (AX)(R11*1), Y10
	VADDPD       Y8, Y10, Y11
	VMINPD       Y6, Y11, Y6
	VADDPD       Y9, Y10, Y11
	VMINPD       Y7, Y11, Y7
	ADDQ         R9, R13
	ADDQ         $8, AX
	CMPQ         AX, CX
	JCS          mp_kloop

	STORE_X
	ADDQ $64, DI
	ADDQ $64, DX
	SUBQ $8, R12
	JGT  mp_jtile

	VZEROUPPER
	RET

// func gaussBrickAVX2(x, b, v []float64, xstride, vstride, klen, jlen int)
//
// x[r,j] -= b[r,k] * v[k,j], unfused multiply-then-subtract to match the
// scalar path bit for bit (gc does not contract mul-add on amd64).
TEXT ·gaussBrickAVX2(SB), NOSPLIT, $0-104
	MOVQ x_base+0(FP), DI
	MOVQ b_base+24(FP), SI
	MOVQ v_base+48(FP), DX
	MOVQ xstride+72(FP), R8
	SHLQ $3, R8
	LEAQ (R8)(R8*2), BX
	MOVQ vstride+80(FP), R9
	SHLQ $3, R9
	MOVQ klen+88(FP), R10
	SHLQ $3, R10
	LEAQ (R10)(R10*2), R11
	LEAQ (SI)(R10*1), CX
	MOVQ jlen+96(FP), R12

ge_jtile:
	LOAD_X
	MOVQ DX, R13
	MOVQ SI, AX

ge_kloop:
	VMOVUPD      (R13), Y8
	VMOVUPD      32(R13), Y9
	VBROADCASTSD (AX), Y10
	VMULPD       Y8, Y10, Y11
	VSUBPD       Y11, Y0, Y0
	VMULPD       Y9, Y10, Y11
	VSUBPD       Y11, Y1, Y1
	VBROADCASTSD (AX)(R10*1), Y10
	VMULPD       Y8, Y10, Y11
	VSUBPD       Y11, Y2, Y2
	VMULPD       Y9, Y10, Y11
	VSUBPD       Y11, Y3, Y3
	VBROADCASTSD (AX)(R10*2), Y10
	VMULPD       Y8, Y10, Y11
	VSUBPD       Y11, Y4, Y4
	VMULPD       Y9, Y10, Y11
	VSUBPD       Y11, Y5, Y5
	VBROADCASTSD (AX)(R11*1), Y10
	VMULPD       Y8, Y10, Y11
	VSUBPD       Y11, Y6, Y6
	VMULPD       Y9, Y10, Y11
	VSUBPD       Y11, Y7, Y7
	ADDQ         R9, R13
	ADDQ         $8, AX
	CMPQ         AX, CX
	JCS          ge_kloop

	STORE_X
	ADDQ $64, DI
	ADDQ $64, DX
	SUBQ $8, R12
	JGT  ge_jtile

	VZEROUPPER
	RET
