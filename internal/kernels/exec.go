package kernels

import (
	"fmt"

	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// Exec is a kernel implementation choice: the paper's experiments compare
// an Iterative exec (loop kernels) against RecursiveExec (r_shared-way
// R-DP kernels run on an OMP-style pool). Apply updates tile x in place;
// u, v, w may be nil where Fig. 4's signature omits them (A takes only X,
// B takes X,U,W, C takes X,V,W) and are then wired to x.
type Exec interface {
	// Name describes the kernel configuration, e.g. "iterative" or
	// "recursive(r=4,threads=8)".
	Name() string
	// Rule returns the GEP update rule the kernels apply.
	Rule() semiring.Rule
	// Apply runs the kernel of the given kind on x.
	Apply(kind semiring.Kind, x, u, v, w *matrix.Tile)
}

// normalize fills Fig. 4's implicit operands and validates dimensions.
func normalize(x, u, v, w *matrix.Tile) (xv, uv, vv, wv matrix.View) {
	if u == nil {
		u = x
	}
	if v == nil {
		v = x
	}
	if w == nil {
		w = x
	}
	if u.B != x.B || v.B != x.B || w.B != x.B {
		panic(fmt.Sprintf("kernels: operand tile sizes differ: %d/%d/%d/%d", x.B, u.B, v.B, w.B))
	}
	return x.View(), u.View(), v.View(), w.View()
}

// PoolExec is implemented by execs that can run one kernel invocation on
// a caller-supplied worker pool — the paper's OMP_NUM_THREADS seam. The
// engine hands every task the node's shared pool so a single task can
// occupy k cores while the executor-cores budget shrinks accordingly.
type PoolExec interface {
	Exec
	// ApplyWith is Apply using pool for intra-kernel parallelism. A nil
	// pool falls back to the exec's own configuration (exactly Apply).
	// Results are bit-identical to Apply for any pool width.
	ApplyWith(pool *Pool, kind semiring.Kind, x, u, v, w *matrix.Tile)
}

// Iterative runs loop kernels — the baseline kernel type (Schoeneman–Zola
// / Numba style). With a Pool, the unaliased blocked fast paths split
// into row bands so one invocation uses up to Pool.Threads() cores;
// without one, each invocation is single-threaded.
type Iterative struct {
	R semiring.Rule
	// Pool provides intra-kernel parallelism for plain Apply calls; nil
	// runs serially. ApplyWith overrides it per invocation.
	Pool *Pool
}

// NewIterative returns a serial iterative kernel exec for the rule.
func NewIterative(rule semiring.Rule) Iterative { return Iterative{R: rule} }

// NewIterativePool returns an iterative exec whose Apply uses a private
// pool of the given width (≤1 ⇒ serial).
func NewIterativePool(rule semiring.Rule, threads int) Iterative {
	var pool *Pool
	if threads > 1 {
		pool = NewPool(threads)
	}
	return Iterative{R: rule, Pool: pool}
}

// Name implements Exec.
func (e Iterative) Name() string {
	if e.Pool.Threads() > 1 {
		return fmt.Sprintf("iterative(threads=%d)", e.Pool.Threads())
	}
	return "iterative"
}

// Rule implements Exec.
func (e Iterative) Rule() semiring.Rule { return e.R }

// Apply implements Exec.
func (e Iterative) Apply(kind semiring.Kind, x, u, v, w *matrix.Tile) {
	xv, uv, vv, wv := normalize(x, u, v, w)
	LoopPool(e.Pool, e.R, kind, xv, uv, vv, wv)
}

// ApplyWith implements PoolExec (nil pool ⇒ the exec's own).
func (e Iterative) ApplyWith(pool *Pool, kind semiring.Kind, x, u, v, w *matrix.Tile) {
	if pool == nil {
		pool = e.Pool
	}
	xv, uv, vv, wv := normalize(x, u, v, w)
	LoopPool(pool, e.R, kind, xv, uv, vv, wv)
}

// RecursiveExec runs the r_shared-way recursive R-DP kernels on a worker
// pool of Threads goroutines (the OMP_NUM_THREADS analogue).
type RecursiveExec struct {
	rec *Recursive
}

// NewRecursiveExec returns a recursive kernel exec. rShared is the fan-out
// (≥2), base the base-case size, threads the pool width (≤1 ⇒ serial).
func NewRecursiveExec(rule semiring.Rule, rShared, base, threads int) RecursiveExec {
	var pool *Pool
	if threads > 1 {
		pool = NewPool(threads)
	}
	return RecursiveExec{rec: NewRecursive(rule, rShared, base, pool)}
}

// Name implements Exec.
func (e RecursiveExec) Name() string {
	return fmt.Sprintf("recursive(r=%d,base=%d,threads=%d)", e.rec.R, e.rec.Base, e.rec.Pool.Threads())
}

// Rule implements Exec.
func (e RecursiveExec) Rule() semiring.Rule { return e.rec.Rule }

// RShared returns the kernel fan-out.
func (e RecursiveExec) RShared() int { return e.rec.R }

// Threads returns the pool width.
func (e RecursiveExec) Threads() int { return e.rec.Pool.Threads() }

// Apply implements Exec.
func (e RecursiveExec) Apply(kind semiring.Kind, x, u, v, w *matrix.Tile) {
	xv, uv, vv, wv := normalize(x, u, v, w)
	e.rec.Run(kind, xv, uv, vv, wv)
}

// ApplyWith implements PoolExec, running the recursion's par_for groups
// on the supplied pool instead of the exec's own (nil ⇒ the exec's own).
func (e RecursiveExec) ApplyWith(pool *Pool, kind semiring.Kind, x, u, v, w *matrix.Tile) {
	if pool == nil {
		e.Apply(kind, x, u, v, w)
		return
	}
	xv, uv, vv, wv := normalize(x, u, v, w)
	rec := *e.rec
	rec.Pool = pool
	rec.Run(kind, xv, uv, vv, wv)
}

// RunLocal executes the full top-level blocked GEP algorithm on a single
// machine: for each grid iteration k it applies A to the pivot tile, B/C
// to the panels and D to the interior, exactly the stage structure the
// distributed drivers replay over the engine. It is the single-machine
// reference implementation used throughout the tests.
func RunLocal(bl *matrix.Blocked, exec Exec) {
	rule := exec.Rule()
	for k := 0; k < bl.R; k++ {
		pivot := bl.Tile(matrix.Coord{I: k, J: k})
		exec.Apply(semiring.KindA, pivot, nil, nil, nil)
		rest := rule.Restricted(k, bl.R)
		for _, j := range rest {
			exec.Apply(semiring.KindB, bl.Tile(matrix.Coord{I: k, J: j}), pivot, nil, pivot)
		}
		for _, i := range rest {
			exec.Apply(semiring.KindC, bl.Tile(matrix.Coord{I: i, J: k}), nil, pivot, pivot)
		}
		for _, i := range rest {
			for _, j := range rest {
				exec.Apply(semiring.KindD,
					bl.Tile(matrix.Coord{I: i, J: j}),
					bl.Tile(matrix.Coord{I: i, J: k}),
					bl.Tile(matrix.Coord{I: k, J: j}),
					pivot)
			}
		}
	}
}
