//go:build !amd64

package kernels

// Non-amd64 builds have no SIMD bodies; the blocked fast paths use the
// 8×-unrolled scalar code unconditionally.
var useAVX2 = false

func setSIMDForTest(enabled bool) (prev bool) { return false }

func minplusBrickAVX2(x, b, v []float64, xstride, vstride, klen, jlen int) {
	panic("kernels: SIMD brick on non-amd64 build")
}

func gaussBrickAVX2(x, b, v []float64, xstride, vstride, klen, jlen int) {
	panic("kernels: SIMD brick on non-amd64 build")
}
