package kernels

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// randomOperandTile builds a tile of small positive values with the
// rule's diagonal identity, so GE pivots stay well away from zero.
func randomOperandTile(rule semiring.Rule, n int, rng *rand.Rand) *matrix.Tile {
	tl := matrix.NewTile(n)
	for i := range tl.Data {
		tl.Data[i] = 1 + math.Floor(rng.Float64()*5)
	}
	for i := 0; i < n; i++ {
		tl.Set(i, i, rule.PadDiag())
	}
	return tl
}

// TestLoopBlockedMatchesGeneric: the cache-blocked fast paths must agree
// with the generic interface-dispatch loop across odd and non-power-of-two
// sizes (exercising the unroll remainder and partial k/j blocks), all
// four kernel kinds and both benchmark rules.
func TestLoopBlockedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	for _, rule := range []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()} {
		for _, n := range []int{1, 3, 17, 33, 47, 66, 101} {
			for _, kind := range []semiring.Kind{semiring.KindA, semiring.KindB, semiring.KindC, semiring.KindD} {
				x0 := randomOperandTile(rule, n, rng)
				u, v, w := randomOperandTile(rule, n, rng), randomOperandTile(rule, n, rng), randomOperandTile(rule, n, rng)
				wire := func(tile *matrix.Tile) (a, b, c matrix.View) {
					switch kind {
					case semiring.KindA:
						return tile.View(), tile.View(), tile.View()
					case semiring.KindB:
						return u.View(), tile.View(), w.View()
					case semiring.KindC:
						return tile.View(), v.View(), w.View()
					default:
						return u.View(), v.View(), w.View()
					}
				}
				fast := x0.Clone()
				fu, fv, fw := wire(fast)
				Loop(rule, kind, fast.View(), fu, fv, fw)
				slow := x0.Clone()
				su, sv, sw := wire(slow)
				Loop(genericRule{rule}, kind, slow.View(), su, sv, sw)
				// GE's fast paths hoist the row multiplier u/w out of the
				// j loop; the reassociation error is relative and grows
				// with n and with the magnitude elimination pumps into
				// the trailing entries.
				tol := 1e-10 * float64(n)
				for i := range fast.Data {
					rel := math.Abs(fast.Data[i]-slow.Data[i]) /
						math.Max(1, math.Abs(slow.Data[i]))
					if rel > tol &&
						!(math.IsInf(fast.Data[i], 1) && math.IsInf(slow.Data[i], 1)) {
						t.Fatalf("%s %v n=%d: blocked path diverges at %d: %v vs %v",
							rule.Name(), kind, n, i, fast.Data[i], slow.Data[i])
					}
				}
			}
		}
	}
}

// TestLoopBlockedMinPlusBitIdentical: min is exact, so the blocked
// min-plus path must match the ordered kij loop bit for bit on the
// unaliased D shape (this is what keeps distributed DP results identical
// to the pre-blocking engine).
func TestLoopBlockedMinPlusBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	rule := semiring.NewFloydWarshall()
	for _, n := range []int{5, 37, 129} {
		x0 := randomOperandTile(rule, n, rng)
		u, v := randomOperandTile(rule, n, rng), randomOperandTile(rule, n, rng)
		blocked := x0.Clone()
		loopMinPlusBlocked(blocked.View(), u.View(), v.View())
		ordered := x0.Clone()
		ov := ordered.View()
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				uik := u.At(i, k)
				for j := 0; j < n; j++ {
					if t := uik + v.At(k, j); t < ov.At(i, j) {
						ov.Set(i, j, t)
					}
				}
			}
		}
		for i := range blocked.Data {
			if blocked.Data[i] != ordered.Data[i] {
				t.Fatalf("n=%d: blocked min-plus not bit-identical at %d: %v vs %v",
					n, i, blocked.Data[i], ordered.Data[i])
			}
		}
	}
}

// TestTilePoolUnderParallelKernels (run with -race): many goroutines
// clone pooled tiles, run the recursive kernels' Pool.parallel fan-out on
// them, verify the result against a serially computed reference and
// release the slabs back for the next goroutine to reuse.
func TestTilePoolUnderParallelKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(209))
	rule := semiring.NewFloydWarshall()
	const n = 64
	x0 := randomOperandTile(rule, n, rng)
	u, v := randomOperandTile(rule, n, rng), randomOperandTile(rule, n, rng)

	want := x0.Clone()
	NewIterative(rule).Apply(semiring.KindD, want, u, v, nil)

	pool := matrix.NewTilePool()
	exec := NewRecursiveExec(rule, 2, 8, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				x := pool.Clone(x0)
				exec.Apply(semiring.KindD, x, u, v, nil)
				for i := range x.Data {
					if x.Data[i] != want.Data[i] {
						t.Errorf("pooled parallel kernel diverges at %d", i)
						return
					}
				}
				pool.Release(x)
			}
		}()
	}
	wg.Wait()
}
