package sim

import (
	"strings"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/costmodel"
	"dpspark/internal/simtime"
)

func newSim(execCores int) *Sim {
	return New(costmodel.New(cluster.Skylake16()), execCores)
}

func TestRunStageMakespanIsSlowestNode(t *testing.T) {
	s := newSim(32)
	tasks := []Task{
		{Node: 0, Compute: 1 * simtime.Second, Threads: 1},
		{Node: 1, Compute: 5 * simtime.Second, Threads: 1},
	}
	d := s.RunStage(tasks)
	// Node 1 dominates: 5s + task overhead; plus stage overhead.
	min := 5 * simtime.Second
	max := 6 * simtime.Second
	if d < min || d > max {
		t.Fatalf("stage time = %v", d)
	}
	if s.Clock != d {
		t.Fatal("clock must advance by stage time")
	}
}

func TestWavesSerializeBeyondExecCores(t *testing.T) {
	s := newSim(2) // two slots per node
	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, Task{Node: 0, Compute: simtime.Second, Threads: 1})
	}
	d := s.RunStage(tasks)
	if d < 3*simtime.Second || d > 4*simtime.Second {
		t.Fatalf("6 tasks in waves of 2 should take ~3s, got %v", d)
	}
}

func TestOversubscriptionDilates(t *testing.T) {
	// 32 concurrent tasks × 8 threads = 256 demanded on 32 cores: ≥8×.
	sub := newSim(32)
	var tasks []Task
	for i := 0; i < 32; i++ {
		tasks = append(tasks, Task{Node: 0, Compute: simtime.Second, Threads: 8})
	}
	dOver := sub.RunStage(tasks)

	fit := newSim(4) // 4 tasks × 8 threads = 32 = cores: no dilation, 8 waves
	fitTasks := make([]Task, 32)
	copy(fitTasks, tasks)
	dFit := fit.RunStage(fitTasks)

	if dOver <= dFit {
		t.Fatalf("oversubscribed wave must be slower than fitting waves: %v vs %v", dOver, dFit)
	}
}

func TestSharedAndShuffleCharges(t *testing.T) {
	s := newSim(32)
	gb := int64(1) << 30
	s.RunStage([]Task{{
		Node: 0, Compute: 0, Threads: 1,
		FetchLocal: gb, FetchRemote: gb, Spill: gb,
		SharedRead: gb, SharedWrite: gb,
	}})
	if s.Ledger.Bytes(simtime.Network) != gb {
		t.Fatalf("network bytes = %d", s.Ledger.Bytes(simtime.Network))
	}
	if s.Ledger.Bytes(simtime.LocalDisk) != gb {
		t.Fatalf("disk bytes = %d", s.Ledger.Bytes(simtime.LocalDisk))
	}
	if s.Ledger.Bytes(simtime.SharedFS) != 2*gb {
		t.Fatalf("shared bytes = %d", s.Ledger.Bytes(simtime.SharedFS))
	}
	// 1 GiB over GbE alone is ~8.6 s; clock must reflect I/O.
	if s.Clock < 8*simtime.Second {
		t.Fatalf("clock = %v", s.Clock)
	}
}

func TestDiskFullFailure(t *testing.T) {
	s := newSim(32)
	huge := 2 * cluster.Skylake16().Node.Disk.Capacity
	s.RunStage([]Task{{Node: 3, Spill: huge, Threads: 1}})
	err := s.Err()
	if err == nil {
		t.Fatal("expected disk-full failure")
	}
	if !strings.Contains(err.Error(), "node 3") {
		t.Fatalf("error = %v", err)
	}
}

func TestReleaseShuffleFreesDisk(t *testing.T) {
	s := newSim(32)
	s.RunStage([]Task{{Node: 0, Spill: 1000, Threads: 1}})
	if s.DiskUsed(0) != 1000 {
		t.Fatalf("disk used = %d", s.DiskUsed(0))
	}
	s.ReleaseShuffle(0, 400)
	if s.DiskUsed(0) != 600 {
		t.Fatalf("disk used = %d", s.DiskUsed(0))
	}
	s.ReleaseShuffle(0, 10000)
	if s.DiskUsed(0) != 0 {
		t.Fatal("disk used must clamp at 0")
	}
	if s.DiskUsed(99) != 0 {
		t.Fatal("out-of-range node reads 0")
	}
}

func TestAdvanceDriverAndTimeout(t *testing.T) {
	s := newSim(32)
	s.AdvanceDriver(2*simtime.Hour, simtime.Overhead)
	if s.TimedOut() {
		t.Fatal("2h is within the 8h budget")
	}
	s.AdvanceDriver(7*simtime.Hour, simtime.Overhead)
	if !s.TimedOut() {
		t.Fatal("9h must time out")
	}
}

func TestEmptyStage(t *testing.T) {
	s := newSim(32)
	d := s.RunStage(nil)
	if d != s.Model.StageOverhead() {
		t.Fatalf("empty stage should cost exactly the stage overhead, got %v", d)
	}
}

func TestTaskCountLedger(t *testing.T) {
	s := newSim(32)
	s.RunStage(make([]Task, 7))
	if s.Ledger.Tasks() != 7 || s.Ledger.Stages() != 1 {
		t.Fatalf("ledger tasks/stages = %d/%d", s.Ledger.Tasks(), s.Ledger.Stages())
	}
}
