// Package sim is the deterministic cluster scheduler used for model-mode
// runs: it places the tasks of each stage on their executors, processes
// each executor's queue in waves of executor-cores concurrent tasks,
// dilates compute when the wave oversubscribes the node's physical cores
// (the OMP_NUM_THREADS × executor-cores interaction of Tables I–II), and
// charges network, local-disk staging and shared-storage traffic from the
// cost model. It also enforces the failure conditions the paper reports:
// local staging disks filling up (IM on large inputs) and the 8-hour
// experiment timeout.
package sim

import (
	"fmt"
	"sync"

	"dpspark/internal/costmodel"
	"dpspark/internal/simtime"
)

// Task is one schedulable unit: a stage task bound to an executor.
type Task struct {
	// Node is the executor index the task runs on.
	Node int
	// Compute is the task's standalone compute time (kernel times already
	// include intra-kernel thread speedup).
	Compute simtime.Duration
	// Threads is the number of worker threads the task keeps busy while
	// computing (kernel occupancy; 1 for iterative kernels).
	Threads int
	// IdleThreads counts spawned OMP threads beyond the kernel's
	// exploitable parallelism: they spin at the recursion's par_for
	// barriers, adding node pressure without throughput.
	IdleThreads int
	// FetchLocal and FetchRemote are shuffle-read bytes served from the
	// local disk vs across the network.
	FetchLocal, FetchRemote int64
	// Spill is the shuffle-write bytes staged on the local disk.
	Spill int64
	// SharedRead and SharedWrite are shared-filesystem bytes (CB driver).
	SharedRead, SharedWrite int64
}

// Timeout is the paper's experiment wall-clock bound: runs exceeding it
// are reported as missing bars / timed-out cells.
const Timeout = 8 * simtime.Hour

// ErrDiskFull reports a node-local staging disk overflowing.
type ErrDiskFull struct {
	Node   int
	Staged int64
	Cap    int64
}

func (e ErrDiskFull) Error() string {
	return fmt.Sprintf("sim: staging disk full on node %d: %d bytes staged, capacity %d",
		e.Node, e.Staged, e.Cap)
}

// Sim accumulates virtual time across the stages of a job. Methods are
// safe for concurrent use (parallel jobs on one engine context serialize
// their stage submissions on the internal mutex); direct field reads are
// only safe while no stage is in flight.
type Sim struct {
	Model *costmodel.Model
	// ExecCores is the number of concurrent task slots per executor
	// (the executor-cores setting).
	ExecCores int
	// OversubPenalty is the extra dilation per unit of core
	// oversubscription by busy threads (fair time-slicing cost).
	OversubPenalty float64
	// SpinQuad scales the quadratic thrash penalty of spinning idle
	// threads; calibrated against the OMP_NUM_THREADS=16/32 columns of
	// Tables I–II.
	SpinQuad float64
	// Clock is the job's virtual time so far.
	Clock simtime.Duration
	// Ledger attributes resource-seconds by category.
	Ledger *simtime.Ledger

	mu       sync.Mutex
	diskUsed []int64
	failure  error
}

// TaskSpan places one task of a stage on its executor's core lanes for
// tracing: Start is relative to the stage's begin, Dur is the task's
// share of the node's fluid compute time, Raw its standalone duration
// (compute plus shuffle (de)serialization — the skew signal).
type TaskSpan struct {
	// Index is the task's position in the stage's task slice.
	Index int
	// Node is the executor, Lane the core slot within it.
	Node, Lane int
	// Start is the lane-relative begin offset from the stage start.
	Start simtime.Duration
	// Dur is the scheduled (scaled) duration on the lane.
	Dur simtime.Duration
	// Raw is the task's unscaled standalone duration.
	Raw simtime.Duration
}

// StageReport decomposes one executed stage. The breakdown follows the
// stage's critical (makespan) node, so Compute + ShuffleIO + SharedIO +
// Overhead equals Total exactly — summing the per-stage reports of a job
// therefore reproduces the job's clock advance, unlike the Ledger's
// overlapping resource-seconds.
type StageReport struct {
	// Start is the virtual clock when the stage began.
	Start simtime.Duration
	// Total is the stage's clock advance: makespan plus stage overhead.
	Total simtime.Duration
	// Compute is the critical node's compute time (incl. task launch).
	Compute simtime.Duration
	// ShuffleIO is the critical node's shuffle I/O: local-disk staging
	// reads/writes plus remote fetches over the network.
	ShuffleIO simtime.Duration
	// SharedIO is the critical node's shared-filesystem traffic time
	// (the Collect-Broadcast redistribution path).
	SharedIO simtime.Duration
	// Overhead is the per-stage scheduling overhead.
	Overhead simtime.Duration
	// MaxTask and MeanTask summarize the raw task durations across all
	// nodes; MaxTask/MeanTask is the stage's straggler-skew factor.
	MaxTask, MeanTask simtime.Duration
	// NodeIO is each node's I/O time (zero for idle nodes).
	NodeIO []simtime.Duration
	// NodeCompute, NodeShuffleIO and NodeSharedIO are every node's time
	// decomposition (not just the critical node's): the critical-path
	// profiler re-derives the makespan branch from these, so they use the
	// same values — and the same float-op grouping — as the makespan
	// comparison below.
	NodeCompute   []simtime.Duration
	NodeShuffleIO []simtime.Duration
	NodeSharedIO  []simtime.Duration
	// Tasks is the per-task lane schedule for tracing.
	Tasks []TaskSpan
}

// New returns a simulator for the model's cluster.
func New(m *costmodel.Model, execCores int) *Sim {
	if execCores < 1 {
		execCores = 1
	}
	return &Sim{
		Model:          m,
		ExecCores:      execCores,
		OversubPenalty: 0.015,
		SpinQuad:       0.00128,
		Ledger:         simtime.NewLedger(),
		diskUsed:       make([]int64, m.C.Nodes),
	}
}

// Err returns the first failure observed (disk full), if any.
func (s *Sim) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failure
}

// Now returns the current virtual clock.
func (s *Sim) Now() simtime.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Clock
}

// TimedOut reports whether the virtual clock passed the 8-hour bound.
func (s *Sim) TimedOut() bool { return s.Now() > Timeout }

// AdvanceDriver charges driver-side time (collect/broadcast, scheduling).
func (s *Sim) AdvanceDriver(d simtime.Duration, cat simtime.Category) {
	s.Advance(d, cat)
}

// Advance charges driver-side time like AdvanceDriver and returns the
// clock readings immediately before and after the advance, so callers
// recording the segment (the critical-path profiler) see bit-exact
// boundaries.
func (s *Sim) Advance(d simtime.Duration, cat simtime.Category) (start, end simtime.Duration) {
	s.mu.Lock()
	start = s.Clock
	s.Clock += d
	end = s.Clock
	s.mu.Unlock()
	s.Ledger.Add(cat, d)
	return start, end
}

// AcquireShuffle re-stages shuffle bytes on a node outside a stage run —
// the restore-from-replica recovery path re-homing a lost map output.
func (s *Sim) AcquireShuffle(node int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node >= 0 && node < len(s.diskUsed) {
		s.diskUsed[node] += bytes
	}
}

// ReleaseShuffle frees staged shuffle bytes (Spark's shuffle cleanup when
// an old RDD generation is no longer referenced).
func (s *Sim) ReleaseShuffle(node int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node >= 0 && node < len(s.diskUsed) {
		s.diskUsed[node] -= bytes
		if s.diskUsed[node] < 0 {
			s.diskUsed[node] = 0
		}
	}
}

// DiskUsed returns the staged bytes currently on a node.
func (s *Sim) DiskUsed(node int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if node < 0 || node >= len(s.diskUsed) {
		return 0
	}
	return s.diskUsed[node]
}

// RunStage schedules one stage's tasks and advances the clock by the
// stage's makespan (slowest node) plus the stage overhead.
func (s *Sim) RunStage(tasks []Task) simtime.Duration {
	return s.RunStageReport(tasks).Total
}

// RunStageReport is RunStage plus the stage's observability report: the
// critical-node time decomposition, the straggler-skew summary and the
// per-task lane schedule the tracer renders.
func (s *Sim) RunStageReport(tasks []Task) StageReport {
	s.mu.Lock()
	defer s.mu.Unlock()

	nodes := s.Model.C.Nodes
	cores := s.Model.C.Node.Cores
	// Two passes so every per-node queue is allocated exactly once (the
	// scheduler runs per stage, and append-growth here shows up in engine
	// allocation counts).
	counts := make([]int, nodes)
	nodeOf := func(t Task) int {
		n := t.Node % nodes
		if n < 0 {
			n += nodes
		}
		return n
	}
	for _, t := range tasks {
		counts[nodeOf(t)]++
	}
	perNode := make([][]Task, nodes)
	perNodeIdx := make([][]int, nodes)
	for n, c := range counts {
		if c > 0 {
			perNode[n] = make([]Task, 0, c)
			perNodeIdx[n] = make([]int, 0, c)
		}
	}
	for i, t := range tasks {
		n := nodeOf(t)
		perNode[n] = append(perNode[n], t)
		perNodeIdx[n] = append(perNodeIdx[n], i)
	}

	rep := StageReport{
		Start:         s.Clock,
		NodeIO:        make([]simtime.Duration, nodes),
		NodeCompute:   make([]simtime.Duration, nodes),
		NodeShuffleIO: make([]simtime.Duration, nodes),
		NodeSharedIO:  make([]simtime.Duration, nodes),
		Tasks:         make([]TaskSpan, 0, len(tasks)),
	}
	var rawSum simtime.Duration
	var makespan simtime.Duration
	for n, q := range perNode {
		if len(q) == 0 {
			continue
		}
		var fetchLocal, fetchRemote, spill, sharedR, sharedW int64
		for _, t := range q {
			fetchLocal += t.FetchLocal
			fetchRemote += t.FetchRemote
			spill += t.Spill
			sharedR += t.SharedRead
			sharedW += t.SharedWrite
		}

		// Node-level I/O: shuffle reads come off disks and (for remote
		// chunks) through the node's link; shuffle writes and shared-fs
		// traffic are serial with compute.
		shuffleIO := s.Model.DiskReadTime(fetchLocal+fetchRemote) +
			s.Model.NetTime(fetchRemote) +
			s.Model.DiskWriteTime(spill)
		sharedIO := s.Model.SharedReadTime(sharedR) + s.Model.SharedWriteTime(sharedW)
		io := shuffleIO + sharedIO
		s.Ledger.Add(simtime.LocalDisk, s.Model.DiskReadTime(fetchLocal+fetchRemote)+s.Model.DiskWriteTime(spill))
		s.Ledger.Add(simtime.Network, s.Model.NetTime(fetchRemote))
		s.Ledger.Add(simtime.SharedFS, s.Model.SharedReadTime(sharedR)+s.Model.SharedWriteTime(sharedW))
		s.Ledger.AddBytes(simtime.Network, fetchRemote)
		s.Ledger.AddBytes(simtime.LocalDisk, spill)
		s.Ledger.AddBytes(simtime.SharedFS, sharedR+sharedW)

		// Compute via a fluid list-scheduling bound: the executor keeps
		// ExecCores task slots busy (Spark dispatches a new task as soon
		// as a slot frees), each running task occupies Threads workers,
		// and the node cannot exceed its physical cores — demanding more
		// adds a thread-switching (spin) penalty. The stage's node time
		// is the larger of the bandwidth bound W/throughput and the
		// longest single task (the straggler bound).
		var workThreadSec float64 // Σ compute_i × busy threads_i
		var idleThreadSec float64
		var sumCompute float64
		var longest simtime.Duration
		var busyTasks int
		overhead := s.Model.TaskOverhead()
		raw := make([]simtime.Duration, len(q))
		for i, t := range q {
			th := t.Threads
			if th < 1 {
				th = 1
			}
			// Shuffled bytes pay single-core (de)serialization inside
			// the task (pySpark pickling).
			ser := s.Model.SerializeTime(t.Spill + t.FetchLocal + t.FetchRemote)
			c := t.Compute + ser
			raw[i] = c
			workThreadSec += t.Compute.Seconds()*float64(th) + ser.Seconds()
			idleThreadSec += t.Compute.Seconds() * float64(t.IdleThreads)
			sumCompute += c.Seconds()
			if c > 0 {
				busyTasks++
			}
			if c > longest {
				longest = c
			}
			rawSum += c
			if c > rep.MaxTask {
				rep.MaxTask = c
			}
		}
		var compute simtime.Duration
		if workThreadSec > 0 {
			conc := busyTasks
			if conc > s.ExecCores {
				conc = s.ExecCores
			}
			avgOcc := workThreadSec / sumCompute
			avgIdle := idleThreadSec / sumCompute
			demandBusy := float64(conc) * avgOcc
			demandIdle := float64(conc) * avgIdle
			usable := demandBusy
			if usable > float64(cores) {
				usable = float64(cores)
			}
			spin := 1.0
			if ratio := demandBusy / float64(cores); ratio > 1 {
				spin += s.OversubPenalty * (ratio - 1)
			}
			if total := demandBusy + demandIdle; demandIdle > 0 && total > float64(cores) {
				// Spinning hurts superlinearly in how outnumbered the
				// busy threads are: a 4-wide kernel run with 32 OMP
				// threads (idle/busy = 7) thrashes far worse than a
				// 16-wide kernel with the same thread count (idle/busy
				// = 1) — the Tables I vs II omp=32 contrast.
				pressure := total / float64(cores)
				outnumber := demandIdle / demandBusy
				spin += s.SpinQuad * pressure * outnumber * outnumber
			}
			throughput := usable / spin
			compute = simtime.Duration(workThreadSec / throughput)
			if longest > compute {
				compute = longest
			}
		}
		fluid := compute
		// Task launch overhead amortizes across slots.
		slots := s.ExecCores
		if slots > len(q) {
			slots = len(q)
		}
		if slots < 1 {
			slots = 1
		}
		compute += simtime.Duration(float64(len(q)) / float64(slots) * overhead.Seconds())
		s.Ledger.Add(simtime.Compute, compute)

		s.diskUsed[n] += spill
		s.Ledger.ObserveDisk(s.diskUsed[n])
		if s.failure == nil && s.diskUsed[n] > s.Model.C.Node.Disk.Capacity {
			s.failure = ErrDiskFull{Node: n, Staged: s.diskUsed[n], Cap: s.Model.C.Node.Disk.Capacity}
		}

		// Lane schedule for the tracer: list-schedule the node's tasks
		// greedily onto its executor-core lanes, each task's length its
		// share of the node's fluid compute window, lanes starting after
		// the node's serial I/O (matching the model's io + compute order).
		rep.NodeIO[n] = io
		rep.NodeCompute[n] = compute
		rep.NodeShuffleIO[n] = shuffleIO
		rep.NodeSharedIO[n] = sharedIO
		lanes := s.ExecCores
		if busyTasks > 0 && busyTasks < lanes {
			lanes = busyTasks
		}
		if lanes < 1 {
			lanes = 1
		}
		scale := 0.0
		if sumCompute > 0 {
			scale = fluid.Seconds() * float64(lanes) / sumCompute
		}
		laneEnd := make([]simtime.Duration, lanes)
		for i := range laneEnd {
			laneEnd[i] = io
		}
		for i := range q {
			lane := 0
			for l := 1; l < lanes; l++ {
				if laneEnd[l] < laneEnd[lane] {
					lane = l
				}
			}
			dur := simtime.Duration(raw[i].Seconds() * scale)
			rep.Tasks = append(rep.Tasks, TaskSpan{
				Index: perNodeIdx[n][i],
				Node:  n,
				Lane:  lane,
				Start: laneEnd[lane],
				Dur:   dur,
				Raw:   raw[i],
			})
			laneEnd[lane] += dur
		}

		if total := io + compute; total > makespan {
			makespan = total
			rep.Compute = compute
			rep.ShuffleIO = shuffleIO
			rep.SharedIO = sharedIO
		}
	}

	rep.Overhead = s.Model.StageOverhead()
	rep.Total = makespan + rep.Overhead
	if len(tasks) > 0 {
		rep.MeanTask = rawSum / simtime.Duration(float64(len(tasks)))
	}
	s.Clock += rep.Total
	s.Ledger.Add(simtime.Overhead, rep.Overhead)
	s.Ledger.CountStage()
	for range tasks {
		s.Ledger.CountTask()
	}
	return rep
}
