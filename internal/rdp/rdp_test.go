package rdp

import (
	"math"
	"math/rand"
	"testing"

	"dpspark/internal/kernels"
	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

func rules() []semiring.Rule {
	return []semiring.Rule{semiring.NewFloydWarshall(), semiring.NewGaussian()}
}

func TestParametricShapes(t *testing.T) {
	fw := semiring.NewFloydWarshall()
	ge := semiring.NewGaussian()

	// FW at r=2: 6 stages (A, panel, interior per iteration).
	if s := Parametric(fw, semiring.KindA, 2); s.Stages() != 6 {
		t.Fatalf("FW A r=2 stages = %d\n%s", s.Stages(), s)
	}
	// GE at r=2: iteration k=1 has no panel/interior → 4 stages.
	if s := Parametric(ge, semiring.KindA, 2); s.Stages() != 4 {
		t.Fatalf("GE A r=2 stages = %d\n%s", s.Stages(), s)
	}
	// Call counts: FW touches all r² tiles per iteration.
	if got := len(Parametric(fw, semiring.KindA, 4).Calls()); got != 4*16 {
		t.Fatalf("FW A r=4 calls = %d", got)
	}
	// D at any r: r³ calls in r stages.
	s := Parametric(fw, semiring.KindD, 4)
	if len(s.Calls()) != 64 || s.Stages() != 4 {
		t.Fatalf("FW D r=4: %d calls in %d stages", len(s.Calls()), s.Stages())
	}
}

func TestParametricValidates(t *testing.T) {
	for _, rule := range rules() {
		for _, kind := range []semiring.Kind{semiring.KindA, semiring.KindB, semiring.KindC, semiring.KindD} {
			for _, r := range []int{2, 4, 8} {
				if err := Parametric(rule, kind, r).Validate(); err != nil {
					t.Fatalf("%s %v r=%d: %v", rule.Name(), kind, r, err)
				}
			}
		}
	}
}

// TestDeriveMatchesParametricGE is §IV-A's punchline for the paper's
// running example: inlining the 2-way GE algorithm and re-scheduling
// under the stated dependency rules gives exactly the parametric Fig. 4
// algorithm — at r = 4 (Fig. 3's refinement) and at r = 8.
func TestDeriveMatchesParametricGE(t *testing.T) {
	rule := semiring.NewGaussian()
	for _, tc := range []struct{ levels, r int }{{1, 2}, {2, 4}, {3, 8}} {
		derived := Derive(rule, tc.levels)
		want := Parametric(rule, semiring.KindA, tc.r)
		if derived.GridDim() != tc.r {
			t.Fatalf("t=%d: grid %d, want %d", tc.levels, derived.GridDim(), tc.r)
		}
		if !derived.Equal(want) {
			t.Fatalf("t=%d: derived schedule differs from Fig. 4 at r=%d\nderived:\n%swant:\n%s",
				tc.levels, tc.r, derived, want)
		}
	}
}

// TestDeriveFWConservative: Floyd-Warshall rewrites every tile in every
// iteration, so the conservative rules (which preserve read-before-write
// order) cannot compact the inlined program to Fig. 4's three stages per
// iteration — compaction needs the semiring-algebraic reorderings of the
// prior-work derivations [34–36]. The derived schedule is nevertheless a
// valid, semantically correct r-way algorithm; this test pins its shape.
func TestDeriveFWConservative(t *testing.T) {
	rule := semiring.NewFloydWarshall()
	derived := Derive(rule, 2)
	if derived.GridDim() != 4 {
		t.Fatalf("grid = %d", derived.GridDim())
	}
	if err := derived.Validate(); err != nil {
		t.Fatal(err)
	}
	param := Parametric(rule, semiring.KindA, 4)
	if derived.Stages() <= param.Stages() {
		t.Fatalf("conservative FW derivation should be deeper than Fig. 4: %d vs %d",
			derived.Stages(), param.Stages())
	}
	if len(derived.Calls()) != len(param.Calls()) {
		t.Fatalf("derivation changed the call count: %d vs %d",
			len(derived.Calls()), len(param.Calls()))
	}
}

// TestInlinePreservesWork: refinement never changes the total number of
// element updates.
func TestInlinePreservesWork(t *testing.T) {
	for _, rule := range rules() {
		base := Parametric(rule, semiring.KindA, 2)
		refined := InlineOnce(rule, base)
		// base on 2×2 grid of 2b-tiles ≡ refined on 4×4 grid of b-tiles.
		b := 8
		if w0, w1 := WorkCount(base, rule, 2*b), WorkCount(refined, rule, b); w0 != w1 {
			t.Fatalf("%s: work changed under refinement: %d → %d", rule.Name(), w0, w1)
		}
	}
}

// TestScheduleGreedyRespectsDependencies via a hand-built program:
// two writes to the same tile must serialize; independent writes must
// coalesce into one stage.
func TestScheduleGreedyRespectsDependencies(t *testing.T) {
	a := Call{Kind: semiring.KindA, X: xt(0, 0), U: xt(0, 0), V: xt(0, 0), W: xt(0, 0)}
	bSame := Call{Kind: semiring.KindB, X: xt(0, 1), U: xt(0, 0), V: xt(0, 1), W: xt(0, 0)} // reads A's output
	cInd := Call{Kind: semiring.KindC, X: xt(1, 0), U: xt(1, 0), V: xt(0, 0), W: xt(0, 0)}  // also reads A's output
	dup := Call{Kind: semiring.KindD, X: xt(0, 1), U: xt(1, 0), V: xt(0, 1), W: xt(0, 0)}   // writes B's tile

	s := ScheduleGreedy([]Call{a, bSame, cInd, dup})
	if s.Stages() != 3 {
		t.Fatalf("stages = %d\n%s", s.Stages(), s)
	}
	if len(s[1]) != 2 {
		t.Fatalf("B and C must share a stage:\n%s", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestExecuteDerivedSchedules: running any derived schedule with loop
// kernels reproduces the reference GEP semantics.
func TestExecuteDerivedSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, rule := range rules() {
		for levels := 1; levels <= 3; levels++ {
			r := 1 << levels
			b := 4
			n := r * b
			in := matrix.NewDense(n)
			if _, ok := rule.(semiring.GaussianRule); ok {
				in.FillDiagonallyDominant(rng)
			} else {
				in.Fill(func(i, j int) float64 {
					if i == j {
						return 0
					}
					if rng.Float64() < 0.3 {
						return math.Inf(1)
					}
					return 1 + math.Floor(rng.Float64()*9)
				})
			}
			want := in.Clone()
			semiring.RunGEP(want.Data, n, rule)

			bl := matrix.Block(in, b, rule.Pad(), rule.PadDiag())
			Execute(Derive(rule, levels), bl, kernels.NewIterative(rule))
			got := bl.ToDense()
			tol := 0.0
			if _, ok := rule.(semiring.GaussianRule); ok {
				tol = 1e-8
			}
			if diff := got.MaxAbsDiff(want); diff > tol {
				t.Fatalf("%s t=%d: executed derivation differs by %v", rule.Name(), levels, diff)
			}
		}
	}
}

// TestParallelismGrows: refinement increases exploitable parallelism
// (the reason §IV-A derives wider fan-outs).
func TestParallelismGrows(t *testing.T) {
	rule := semiring.NewFloydWarshall()
	avg2, max2 := Derive(rule, 1).Parallelism()
	avg4, max4 := Derive(rule, 2).Parallelism()
	if !(avg4 > avg2 && max4 > max2) {
		t.Fatalf("parallelism must grow: avg %.2f→%.2f max %d→%d", avg2, avg4, max2, max4)
	}
}

func TestExecutePanicsOnNonX(t *testing.T) {
	s := Schedule{{{Kind: semiring.KindD, X: xt(0, 0), U: ut(0, 0), V: vt(0, 0), W: wt(0, 0)}}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-X operand")
		}
	}()
	Execute(s, matrix.NewBlocked(4, 4), kernels.NewIterative(semiring.NewFloydWarshall()))
}

func TestTileAndCallStrings(t *testing.T) {
	c := Call{Kind: semiring.KindD, X: xt(1, 2), U: ut(1, 0), V: vt(0, 2), W: wt(0, 0)}
	want := "D[X(1,2) u=U(1,0) v=V(0,2) w=W(0,0)]"
	if c.String() != want {
		t.Fatalf("call string = %q", c.String())
	}
}
