package rdp

import (
	"fmt"

	"dpspark/internal/kernels"
	"dpspark/internal/matrix"
	"dpspark/internal/semiring"
)

// Execute runs a kind-A schedule (every operand an X-subtile) on a
// blocked DP table with the given kernel implementation — the symbolic
// derivation made concrete. Panics if the schedule addresses tiles
// outside the table's grid or uses non-X operands.
func Execute(s Schedule, bl *matrix.Blocked, exec kernels.Exec) {
	tile := func(t Tile) *matrix.Tile {
		if t.Sub != OpX {
			panic(fmt.Sprintf("rdp: Execute requires X-space tiles, got %v", t))
		}
		return bl.Tile(matrix.Coord{I: t.I, J: t.J})
	}
	for _, stage := range s {
		// Stage members are independent; sequential execution of a stage
		// is a valid schedule.
		for _, c := range stage {
			x := tile(c.X)
			var u, v, w *matrix.Tile
			if c.U != c.X {
				u = tile(c.U)
			}
			if c.V != c.X {
				v = tile(c.V)
			}
			if c.W != c.X {
				w = tile(c.W)
			}
			exec.Apply(c.Kind, x, u, v, w)
		}
	}
}

// Validate checks a schedule's internal consistency: within every stage
// no two calls may conflict (write-write, read-write in either
// direction). Returns the first violation found.
func (s Schedule) Validate() error {
	for si, stage := range s {
		for i := 0; i < len(stage); i++ {
			for j := i + 1; j < len(stage); j++ {
				if stage[j].conflictsWith(stage[i]) {
					return fmt.Errorf("rdp: stage %d: %v conflicts with %v", si, stage[i], stage[j])
				}
			}
		}
	}
	return nil
}

// Parallelism returns the average and maximum stage widths — the measure
// §IV-A optimizes when it moves calls to the earliest stage.
func (s Schedule) Parallelism() (avg float64, max int) {
	if len(s) == 0 {
		return 0, 0
	}
	total := 0
	for _, stage := range s {
		total += len(stage)
		if len(stage) > max {
			max = len(stage)
		}
	}
	return float64(total) / float64(len(s)), max
}

// WorkCount returns the modelled element updates of one schedule run on
// b-sized tiles under the rule — for sanity checks that derivation never
// changes total work.
func WorkCount(s Schedule, rule semiring.Rule, b int) int64 {
	var total int64
	for _, c := range s.Calls() {
		total += kernels.Updates(rule, c.Kind, b)
	}
	return total
}
