// Package rdp implements the paper's first design methodology (§IV-A):
// deriving parametric r-way recursive divide-&-conquer DP algorithms by
// "inline and optimize". Starting from the 2-way R-DP specification (the
// AutoGen/Bellmania output), each refinement step
//
//  1. inlines every recursive call by one level of its 2-way body, and
//  2. re-schedules the resulting calls into the fewest parallel stages
//     that respect the paper's dependency rules (for functions F₁ before
//     F₂ in program order, with W(F) the written subtable and R(F) the
//     read subtables):
//     – W(F₁) ≠ W(F₂) ∧ W(F₁) ∈ R(F₂)  ⇒ F₁ → F₂ (true dependence);
//     – W(F₁) = W(F₂)                   ⇒ ordered, never parallel (the
//     ↔ rule: flexible updates commute but cannot race);
//     – W(F₂) ∈ R(F₁)                   ⇒ F₁ → F₂ (anti-dependence:
//     F₁ must read the old value);
//     – otherwise                        ⇒ F₁ ∥ F₂.
//
// The derived schedules are symbolic (tile-indexed kernel calls grouped
// into stages) and executable. Tests verify the central claim of §IV-A:
// refining the 2-way algorithm and re-scheduling yields exactly the
// parametric Fig. 4 algorithm at r = 4 — and executing any derived
// schedule with loop kernels reproduces the reference GEP semantics.
package rdp

import (
	"fmt"
	"sort"

	"dpspark/internal/semiring"
)

// Operand tags the DP subtable a symbolic tile belongs to. A kernel
// call's X, U, V and W may live in distinct subtables (for the panel and
// interior kernels); the dependency analysis must never confuse X's
// (0,0) subtile with U's.
type Operand uint8

// Operand spaces.
const (
	// OpX is the written (in/out) subtable.
	OpX Operand = iota
	// OpU is the u-panel operand subtable.
	OpU
	// OpV is the v-panel operand subtable.
	OpV
	// OpW is the pivot operand subtable.
	OpW
)

// Tile addresses a subtile of an operand subtable in the current
// refinement's grid.
type Tile struct {
	Sub  Operand
	I, J int
}

// String formats the tile as "X(i,j)" etc.
func (t Tile) String() string {
	names := [...]string{"X", "U", "V", "W"}
	return fmt.Sprintf("%s(%d,%d)", names[t.Sub], t.I, t.J)
}

// embed maps this local tile (from a 2-way body) into the caller's
// operand tiles: the body's X-space subtiles refine the caller's X, its
// U-space the caller's U, and so on.
func (t Tile) embed(c Call) Tile {
	var base Tile
	switch t.Sub {
	case OpU:
		base = c.U
	case OpV:
		base = c.V
	case OpW:
		base = c.W
	default:
		base = c.X
	}
	return Tile{Sub: base.Sub, I: 2*base.I + t.I, J: 2*base.J + t.J}
}

// Call is one kernel invocation: Kind's Fig. 4 signature applied to
// symbolic tiles. X is updated in place; U, V, W are the panel/pivot
// operands (equal to X where Fig. 4's signature omits them).
type Call struct {
	Kind       semiring.Kind
	X, U, V, W Tile
}

// String renders the call like Fig. 4.
func (c Call) String() string {
	return fmt.Sprintf("%v[%v u=%v v=%v w=%v]", c.Kind, c.X, c.U, c.V, c.W)
}

// Writes returns the output subtable W(F).
func (c Call) Writes() Tile { return c.X }

// reads reports whether the call reads tile t (a GEP update always reads
// the cell it writes, so X counts).
func (c Call) reads(t Tile) bool {
	return c.X == t || c.U == t || c.V == t || c.W == t
}

// conflictsWith reports whether c (later in program order) must run after
// e (earlier): same output, true dependence, or anti-dependence.
func (c Call) conflictsWith(e Call) bool {
	return c.X == e.X || c.reads(e.X) || e.reads(c.X)
}

// Schedule is a sequence of parallel stages.
type Schedule [][]Call

// Calls returns the schedule flattened in stage order.
func (s Schedule) Calls() []Call {
	var out []Call
	for _, stage := range s {
		out = append(out, stage...)
	}
	return out
}

// Stages returns the number of parallel stages.
func (s Schedule) Stages() int { return len(s) }

// String renders one stage per line.
func (s Schedule) String() string {
	out := ""
	for i, stage := range s {
		out += fmt.Sprintf("stage %d:", i)
		for _, c := range stage {
			out += " " + c.String()
		}
		out += "\n"
	}
	return out
}

// Canonical sorts every stage (for set-wise comparison of schedules).
func (s Schedule) Canonical() Schedule {
	out := make(Schedule, len(s))
	for i, stage := range s {
		cp := append([]Call(nil), stage...)
		sort.Slice(cp, func(a, b int) bool { return cp[a].String() < cp[b].String() })
		out[i] = cp
	}
	return out
}

// Equal reports stage-wise set equality of two schedules.
func (s Schedule) Equal(other Schedule) bool {
	if len(s) != len(other) {
		return false
	}
	a, b := s.Canonical(), other.Canonical()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// tiles in the four operand spaces.
func xt(i, j int) Tile { return Tile{Sub: OpX, I: i, J: j} }
func ut(i, j int) Tile { return Tile{Sub: OpU, I: i, J: j} }
func vt(i, j int) Tile { return Tile{Sub: OpV, I: i, J: j} }
func wt(i, j int) Tile { return Tile{Sub: OpW, I: i, J: j} }

// Parametric builds the Fig. 4 algorithm for the given kernel kind at
// fan-out r, operating on r×r operand grids. For kind A every operand is
// an X subtile (the figure's A(X)); B reads U and W, C reads V and W, D
// all three. The per-iteration structure is A, then the panel stage,
// then the interior stage — exactly the figure.
func Parametric(rule semiring.Rule, kind semiring.Kind, r int) Schedule {
	var s Schedule
	add := func(stage []Call) {
		if len(stage) > 0 {
			s = append(s, stage)
		}
	}
	for k := 0; k < r; k++ {
		rest := rule.Restricted(k, r)
		switch kind {
		case semiring.KindA:
			kk := xt(k, k)
			add([]Call{{Kind: semiring.KindA, X: kk, U: kk, V: kk, W: kk}})
			var panel []Call
			for _, j := range rest {
				panel = append(panel, Call{Kind: semiring.KindB, X: xt(k, j), U: kk, V: xt(k, j), W: kk})
			}
			for _, i := range rest {
				panel = append(panel, Call{Kind: semiring.KindC, X: xt(i, k), U: xt(i, k), V: kk, W: kk})
			}
			add(panel)
			var interior []Call
			for _, i := range rest {
				for _, j := range rest {
					interior = append(interior, Call{Kind: semiring.KindD, X: xt(i, j), U: xt(i, k), V: xt(k, j), W: kk})
				}
			}
			add(interior)

		case semiring.KindB:
			var row []Call
			for j := 0; j < r; j++ {
				row = append(row, Call{Kind: semiring.KindB, X: xt(k, j), U: ut(k, k), V: xt(k, j), W: wt(k, k)})
			}
			add(row)
			var interior []Call
			for _, i := range rest {
				for j := 0; j < r; j++ {
					interior = append(interior, Call{Kind: semiring.KindD, X: xt(i, j), U: ut(i, k), V: xt(k, j), W: wt(k, k)})
				}
			}
			add(interior)

		case semiring.KindC:
			var col []Call
			for i := 0; i < r; i++ {
				col = append(col, Call{Kind: semiring.KindC, X: xt(i, k), U: xt(i, k), V: vt(k, k), W: wt(k, k)})
			}
			add(col)
			var interior []Call
			for i := 0; i < r; i++ {
				for _, j := range rest {
					interior = append(interior, Call{Kind: semiring.KindD, X: xt(i, j), U: xt(i, k), V: vt(k, j), W: wt(k, k)})
				}
			}
			add(interior)

		default: // KindD
			var interior []Call
			for i := 0; i < r; i++ {
				for j := 0; j < r; j++ {
					interior = append(interior, Call{Kind: semiring.KindD, X: xt(i, j), U: ut(i, k), V: vt(k, j), W: wt(k, k)})
				}
			}
			add(interior)
		}
	}
	return s
}

// InlineOnce performs one refinement step of §IV-A: every call is
// replaced by its 2-way body (its kind's Parametric schedule at r = 2)
// with the body's operand tiles embedded into the caller's tiles, and
// the resulting flat program is re-scheduled greedily into the earliest
// legal stages.
func InlineOnce(rule semiring.Rule, s Schedule) Schedule {
	var flat []Call
	for _, call := range s.Calls() {
		body := Parametric(rule, call.Kind, 2)
		for _, sub := range body.Calls() {
			flat = append(flat, Call{
				Kind: sub.Kind,
				X:    sub.X.embed(call),
				U:    sub.U.embed(call),
				V:    sub.V.embed(call),
				W:    sub.W.embed(call),
			})
		}
	}
	return ScheduleGreedy(flat)
}

// ScheduleGreedy packs a sequential program into parallel stages: each
// call lands in the earliest stage after every earlier call it conflicts
// with (the dependency rules in the package comment). This is the
// "execute in as few parallel stages as possible" optimization of §IV-A.
func ScheduleGreedy(seq []Call) Schedule {
	stageOf := make([]int, len(seq))
	maxStage := -1
	for i, c := range seq {
		stage := 0
		for j := 0; j < i; j++ {
			if c.conflictsWith(seq[j]) && stageOf[j] >= stage {
				stage = stageOf[j] + 1
			}
		}
		stageOf[i] = stage
		if stage > maxStage {
			maxStage = stage
		}
	}
	out := make(Schedule, maxStage+1)
	for i, c := range seq {
		out[stageOf[i]] = append(out[stageOf[i]], c)
	}
	return out
}

// Derive produces the 2ᵗ-way algorithm for the full GEP (kind A) by t
// refinement steps from the trivial one-call program, as §IV-A
// prescribes.
func Derive(rule semiring.Rule, t int) Schedule {
	root := xt(0, 0)
	s := Schedule{{{Kind: semiring.KindA, X: root, U: root, V: root, W: root}}}
	for level := 0; level < t; level++ {
		s = InlineOnce(rule, s)
	}
	return s
}

// GridDim returns the operand grid dimension a kind-A schedule addresses
// (max tile index + 1).
func (s Schedule) GridDim() int {
	n := 0
	for _, c := range s.Calls() {
		for _, t := range []Tile{c.X, c.U, c.V, c.W} {
			if t.I+1 > n {
				n = t.I + 1
			}
			if t.J+1 > n {
				n = t.J + 1
			}
		}
	}
	return n
}
