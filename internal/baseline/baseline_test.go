package baseline

import (
	"math/rand"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/graph"
	"dpspark/internal/rdd"
	"dpspark/internal/simtime"
)

func newCtx() *rdd.Context {
	return rdd.NewContext(rdd.Conf{Cluster: cluster.Local(4)})
}

func TestDirectedMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := graph.Random(25, 0.25, 1, 9, rng)
	got, stats, err := Solve(newCtx(), g.DistanceMatrix(), Config{BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Time <= 0 {
		t.Fatal("no virtual time")
	}
	if diff := got.MaxAbsDiff(g.APSPReference()); diff > 1e-9 {
		t.Fatalf("baseline vs Dijkstra diff %v", diff)
	}
}

func TestUndirectedMatchesDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g := graph.Grid(5, 5, 1, 10, rng) // grid generator is not symmetric per edge pair
	// Symmetrize: same weight both directions.
	sym := graph.New(g.N)
	for _, es := range g.Adj {
		for _, e := range es {
			if e.From < e.To {
				sym.AddEdge(e.From, e.To, e.Weight)
				sym.AddEdge(e.To, e.From, e.Weight)
			}
		}
	}
	d := sym.DistanceMatrix()
	directed, _, err := Solve(newCtx(), d, Config{BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	undirected, _, err := Solve(newCtx(), d, Config{BlockSize: 8, Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if diff := undirected.MaxAbsDiff(directed); diff > 1e-9 {
		t.Fatalf("undirected optimization changed the answer: diff %v", diff)
	}
}

func TestUndirectedHalvesComputeAndTraffic(t *testing.T) {
	n := 2048
	full := rdd.NewContext(rdd.Conf{Cluster: cluster.Skylake16()})
	if _, err := SolveSymbolic(full, n, Config{BlockSize: 256}); err != nil {
		t.Fatal(err)
	}
	half := rdd.NewContext(rdd.Conf{Cluster: cluster.Skylake16()})
	if _, err := SolveSymbolic(half, n, Config{BlockSize: 256, Undirected: true}); err != nil {
		t.Fatal(err)
	}
	fullC := full.Ledger().Time(simtime.Compute)
	halfC := half.Ledger().Time(simtime.Compute)
	if halfC >= fullC {
		t.Fatalf("undirected compute %v not below directed %v", halfC, fullC)
	}
	if half.Ledger().Bytes(simtime.LocalDisk) >= full.Ledger().Bytes(simtime.LocalDisk) {
		t.Fatal("undirected mode must shuffle fewer bytes")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := SolveSymbolic(newCtx(), 64, Config{}); err == nil {
		t.Fatal("expected BlockSize error")
	}
}
