// Package baseline is an independent implementation of the blocked
// Floyd-Warshall APSP solver of Schoeneman & Zola (ICPP'19) — the
// state-of-the-art Spark FW-APSP solver the paper benchmarks against. It
// uses iterative kernels only and, in its original form, exploits
// undirected symmetry by storing just the upper block triangle of the
// distance matrix and transposing panel tiles on demand; directed mode is
// the generalization the paper contributes.
//
// The solver is written directly against the engine (collect/broadcast
// tile movement, one partitionBy per iteration) so benchmark comparisons
// against internal/core are code-vs-code, not configuration-vs-
// configuration.
package baseline

import (
	"fmt"

	"dpspark/internal/core"
	"dpspark/internal/costmodel"
	"dpspark/internal/kernels"
	"dpspark/internal/matrix"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// Config tunes the baseline solver.
type Config struct {
	// BlockSize is the tile dimension.
	BlockSize int
	// Partitions is the RDD partition count (default 2× total cores).
	Partitions int
	// Undirected enables the symmetric upper-triangle optimization of
	// the original solver. The input matrix must be symmetric.
	Undirected bool
}

// Block is a tile record.
type Block = rdd.Pair[matrix.Coord, *matrix.Tile]

// Solve runs blocked FW-APSP on a dense distance matrix.
func Solve(ctx *rdd.Context, d *matrix.Dense, cfg Config) (*matrix.Dense, *core.Stats, error) {
	if cfg.BlockSize < 1 {
		return nil, nil, fmt.Errorf("baseline: BlockSize must be set")
	}
	rule := semiring.NewFloydWarshall()
	bl := matrix.Block(d, cfg.BlockSize, rule.Pad(), rule.PadDiag())
	out, stats, err := run(ctx, bl, cfg)
	if err != nil {
		return nil, stats, err
	}
	return out.ToDense(), stats, nil
}

// SolveSymbolic prices an n-vertex run without computing distances.
func SolveSymbolic(ctx *rdd.Context, n int, cfg Config) (*core.Stats, error) {
	if cfg.BlockSize < 1 {
		return nil, fmt.Errorf("baseline: BlockSize must be set")
	}
	bl := matrix.NewSymbolicBlocked(n, cfg.BlockSize)
	_, stats, err := run(ctx, bl, cfg)
	return stats, err
}

func run(ctx *rdd.Context, bl *matrix.Blocked, cfg Config) (*matrix.Blocked, *core.Stats, error) {
	if cfg.Partitions < 1 {
		cfg.Partitions = ctx.Cluster().DefaultPartitions()
	}
	mark := core.MarkRun(ctx)
	rule := semiring.NewFloydWarshall()
	exec := kernels.NewIterative(rule)
	kc := costmodel.KernelConfig{CoTasks: ctx.ExecutorCores()}
	part := rdd.NewHashPartitioner(cfg.Partitions)
	r := bl.R

	blocks := make([]Block, 0, r*r)
	for _, c := range bl.Coords() {
		if cfg.Undirected && c.I > c.J {
			continue // keep only the upper block triangle
		}
		blocks = append(blocks, rdd.KV(c, bl.Tile(c)))
	}
	dp := rdd.ParallelizePairs(ctx, blocks, part)

	pool := matrix.DefaultPool
	apply := func(tc *rdd.TaskContext, kind semiring.Kind, x, u, v, w *matrix.Tile) *matrix.Tile {
		out := pool.Clone(x)
		tc.ChargeCompute(ctx.Model().KernelTime(rule, kind, x.B, kc), 1)
		if !out.Symbolic() {
			exec.Apply(kind, out, u, v, w)
		}
		return out
	}

	for k := 0; k < r; k++ {
		k := k

		// Phase 1: diagonal block.
		ctx.SetPhase("pivot")
		diag := rdd.Map(dp.Filter(func(b Block) bool { return b.Key.I == k && b.Key.J == k }),
			func(tc *rdd.TaskContext, b Block) Block {
				return rdd.KV(b.Key, apply(tc, semiring.KindA, b.Value, nil, nil, nil))
			})
		diagCollected, err := diag.Collect()
		if err != nil {
			return nil, mark.StatsSince(ctx, r), err
		}
		diagBC := rdd.NewBroadcast(ctx, diagCollected)
		pivot := func() *matrix.Tile { return diagCollected[0].Value }

		// Phase 2: row and column panels (only kept blocks in
		// undirected mode; the missing strip is the transpose).
		isPanel := func(c matrix.Coord) bool {
			return (c.I == k) != (c.J == k)
		}
		ctx.SetPhase("row-col")
		panels := rdd.Map(dp.Filter(func(b Block) bool { return isPanel(b.Key) }),
			func(tc *rdd.TaskContext, b Block) Block {
				diagBC.Get(tc)
				if b.Key.I == k {
					return rdd.KV(b.Key, apply(tc, semiring.KindB, b.Value, pivot(), nil, pivot()))
				}
				return rdd.KV(b.Key, apply(tc, semiring.KindC, b.Value, nil, pivot(), pivot()))
			})
		panelsCollected, err := panels.Collect()
		if err != nil {
			return nil, mark.StatsSince(ctx, r), err
		}
		panelBC := rdd.NewBroadcast(ctx, panelsCollected)
		panelIdx := make(map[matrix.Coord]*matrix.Tile, len(panelsCollected))
		for _, b := range panelsCollected {
			panelIdx[b.Key] = b.Value
		}
		// lookup serves (i,k)/(k,j) tiles, transposing the mirror tile
		// into a pooled temporary when only the other triangle is stored;
		// the second result reports whether the caller must release it.
		lookup := func(c matrix.Coord) (*matrix.Tile, bool) {
			if t, ok := panelIdx[c]; ok {
				return t, false
			}
			if cfg.Undirected {
				if t, ok := panelIdx[matrix.Coord{I: c.J, J: c.I}]; ok {
					return pool.Transpose(t), true
				}
			}
			panic(fmt.Sprintf("baseline: panel tile %v missing", c))
		}

		// Phase 3: remaining blocks. The min-plus D update never reads
		// the pivot tile, so phase 3 only fetches the panel broadcast.
		ctx.SetPhase("update")
		interior := rdd.Map(dp.Filter(func(b Block) bool { return b.Key.I != k && b.Key.J != k }),
			func(tc *rdd.TaskContext, b Block) Block {
				panelBC.Get(tc)
				u, uTmp := lookup(matrix.Coord{I: b.Key.I, J: k})
				v, vTmp := lookup(matrix.Coord{I: k, J: b.Key.J})
				out := rdd.KV(b.Key, apply(tc, semiring.KindD, b.Value, u, v, nil))
				// The kernel only reads its operands; transposed
				// temporaries recycle as soon as it returns.
				if uTmp {
					pool.Release(u)
				}
				if vTmp {
					pool.Release(v)
				}
				return out
			})

		dp = rdd.PartitionBy(diag.Union(panels, interior), part)
		ctx.SetPhase("checkpoint")
		if err := dp.Checkpoint(); err != nil {
			return nil, mark.StatsSince(ctx, r), err
		}
		ctx.AdvanceDriver(ctx.Model().DriverIterOverhead(), simtime.Overhead)
	}

	ctx.SetPhase("")
	stats := mark.StatsSince(ctx, r)
	if bl.Symbolic() {
		if _, err := dp.Count(); err != nil {
			return nil, mark.StatsSince(ctx, r), err
		}
		return nil, mark.StatsSince(ctx, r), nil
	}
	final, err := dp.Collect()
	if err != nil {
		return nil, stats, err
	}
	out := matrix.NewSymbolicBlocked(bl.N, bl.B)
	for _, b := range final {
		out.SetTile(b.Key, b.Value)
		if cfg.Undirected && b.Key.I != b.Key.J {
			out.SetTile(matrix.Coord{I: b.Key.J, J: b.Key.I}, b.Value.Transpose())
		}
	}
	return out, mark.StatsSince(ctx, r), nil
}
