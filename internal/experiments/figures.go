package experiments

import (
	"fmt"
	"math"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/report"
)

// fig6Blocks is the block-size sweep of §V-C.
var fig6Blocks = []int{256, 512, 1024, 2048, 4096}

// fig6RShared is the recursive-kernel fan-out sweep.
var fig6RShared = []int{2, 4, 8, 16}

// fig6Threads returns the OMP candidates tried per block size. Small
// blocks replay only the paper's typical winner to bound harness cost;
// large blocks (cheap to price) try the contenders of Tables I–II.
func fig6Threads(block int) []int {
	if block >= 1024 {
		return []int{8, 16}
	}
	return []int{8}
}

// Fig6 regenerates one panel of Fig. 6: every implementation (IM/CB ×
// iterative/recursive r_shared ∈ {2,4,8,16}) across block sizes, best
// OMP_NUM_THREADS reported per recursive cell. n=0 runs the paper size.
func Fig6(bench Benchmark, n int) (*report.BarChart, []Result) {
	chart := &report.BarChart{
		Title: fmt.Sprintf("Fig. 6 (%s): runtime by implementation and block size", bench),
		Unit:  "s",
	}
	var results []Result
	for _, block := range fig6Blocks {
		group := report.Group{Label: fmt.Sprintf("block %d", block)}
		for _, driver := range []core.DriverKind{core.IM, core.CB} {
			iter := Run(Cell{Bench: bench, N: n, Driver: driver, Block: block})
			results = append(results, iter)
			group.Bars = append(group.Bars, report.Bar{
				Name:  fmt.Sprintf("%s iter", driver),
				Value: iter.Time.Seconds(),
				Note:  iter.Note(),
			})
			for _, rs := range fig6RShared {
				r := RunBestThreads(Cell{
					Bench: bench, N: n, Driver: driver, Block: block,
					Recursive: true, RShared: rs,
				}, fig6Threads(block))
				results = append(results, r)
				group.Bars = append(group.Bars, report.Bar{
					Name:  fmt.Sprintf("%s rec%d (omp%d)", driver, rs, r.Threads),
					Value: r.Time.Seconds(),
					Note:  r.Note(),
				})
			}
		}
		chart.Group = append(chart.Group, group)
	}
	return chart, results
}

// Fig8 regenerates Fig. 8: the FW-APSP portability comparison between
// the Skylake cluster (cluster #1) and the weaker Haswell cluster
// (cluster #2, 640 partitions, spinning disks). Per cluster it prices
// IM/CB × iterative and 4-way recursive (OMP 8) kernels over the block
// sweep. n=0 runs the paper size.
func Fig8(n int) (*report.BarChart, []Result) {
	chart := &report.BarChart{
		Title: "Fig. 8: FW-APSP on cluster #1 (Skylake/SSD) vs cluster #2 (Haswell/HDD)",
		Unit:  "s",
	}
	clusters := []*cluster.Cluster{cluster.Skylake16(), cluster.Haswell16()}
	var results []Result
	for _, block := range fig6Blocks {
		group := report.Group{Label: fmt.Sprintf("block %d", block)}
		for ci, cl := range clusters {
			for _, driver := range []core.DriverKind{core.IM, core.CB} {
				iter := Run(Cell{Cluster: cl, Bench: FW, N: n, Driver: driver, Block: block})
				results = append(results, iter)
				group.Bars = append(group.Bars, report.Bar{
					Name:  fmt.Sprintf("c%d %s iter", ci+1, driver),
					Value: iter.Time.Seconds(),
					Note:  iter.Note(),
				})
				rec := Run(Cell{Cluster: cl, Bench: FW, N: n, Driver: driver, Block: block,
					Recursive: true, RShared: 4, Threads: 8})
				results = append(results, rec)
				group.Bars = append(group.Bars, report.Bar{
					Name:  fmt.Sprintf("c%d %s rec4 (omp8)", ci+1, driver),
					Value: rec.Time.Seconds(),
					Note:  rec.Note(),
				})
			}
		}
		chart.Group = append(chart.Group, group)
	}
	return chart, results
}

// fig9Nodes is the weak-scaling node sweep.
var fig9Nodes = []int{1, 8, 64}

// Fig9 regenerates Fig. 9: weak scaling with fixed work per node —
// N³/p = (4K)³ for FW-APSP and (8K)³ for GE (§V-C). Configurations
// follow the paper: FW compares IM iterative (block 512) against IM
// 4-way recursive (block 1024, OMP 8); GE compares the same kernels
// under the CB driver.
func Fig9() (*report.LineChart, []Result) {
	chart := &report.LineChart{Title: "Fig. 9: weak scaling (seconds per run)", Unit: "s"}
	var results []Result

	type series struct {
		name     string
		bench    Benchmark
		driver   core.DriverKind
		baseN    int
		makeCell func(n int, cl *cluster.Cluster) Cell
	}
	mk := func(bench Benchmark, driver core.DriverKind, baseN int, recursive bool) series {
		name := fmt.Sprintf("%s %s iter b512", bench, driver)
		if recursive {
			name = fmt.Sprintf("%s %s rec4 b1024 omp8", bench, driver)
		}
		return series{
			name: name, bench: bench, driver: driver, baseN: baseN,
			makeCell: func(n int, cl *cluster.Cluster) Cell {
				c := Cell{Cluster: cl, Bench: bench, N: n, Driver: driver, Block: 512}
				if recursive {
					c.Block = 1024
					c.Recursive = true
					c.RShared = 4
					c.Threads = 8
				}
				return c
			},
		}
	}
	all := []series{
		mk(FW, core.IM, 4096, false),
		mk(FW, core.IM, 4096, true),
		mk(GE, core.CB, 8192, false),
		mk(GE, core.CB, 8192, true),
	}

	for _, s := range all {
		line := report.Line{Name: s.name}
		for _, p := range fig9Nodes {
			// Fixed work per node: N = baseN · p^(1/3), rounded to the
			// block grid.
			n := int(math.Round(float64(s.baseN) * math.Cbrt(float64(p))))
			n = (n / 1024) * 1024
			cl := cluster.Skylake16().WithNodes(p)
			r := Run(s.makeCell(n, cl))
			results = append(results, r)
			line.Points = append(line.Points, report.Point{
				Label: fmt.Sprintf("%d nodes", p),
				Value: r.Time.Seconds(),
				Note:  r.Note(),
			})
		}
		chart.Lines = append(chart.Lines, line)
	}
	return chart, results
}

// Headline derives the paper's headline claim from Fig. 6 results: the
// best iterative-kernel and best recursive-kernel runtimes per benchmark
// and the resulting speedup (§I: "2–5× speedup of the DP benchmarks").
type Headline struct {
	Bench     Benchmark
	BestIter  Result
	BestRec   Result
	Speedup   float64
	BestIterS float64
	BestRecS  float64
}

// ComputeHeadline extracts the headline numbers from a Fig. 6 result set.
func ComputeHeadline(bench Benchmark, results []Result) Headline {
	h := Headline{Bench: bench, Speedup: math.NaN()}
	var haveIter, haveRec bool
	for _, r := range results {
		if r.Note() != "" {
			continue
		}
		if r.Recursive {
			if !haveRec || r.Time < h.BestRec.Time {
				h.BestRec = r
				haveRec = true
			}
		} else if !haveIter || r.Time < h.BestIter.Time {
			h.BestIter = r
			haveIter = true
		}
	}
	if haveIter && haveRec && h.BestRec.Time > 0 {
		h.BestIterS = h.BestIter.Time.Seconds()
		h.BestRecS = h.BestRec.Time.Seconds()
		h.Speedup = h.BestIterS / h.BestRecS
	}
	return h
}
