package experiments

import (
	"strings"
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/simtime"
)

// testN is a reduced problem size keeping the unit tests quick while
// preserving grid shapes (r = testN / block).
const testN = 8192

func TestRunCellDefaults(t *testing.T) {
	r := Run(Cell{Bench: FW, N: testN, Driver: core.IM, Block: 1024})
	if r.Err != nil || r.Time <= 0 {
		t.Fatalf("cell: %+v", r)
	}
	if r.N != testN || r.Cluster == nil {
		t.Fatal("defaults not filled")
	}
	if r.Breakdown[simtime.Compute] <= 0 {
		t.Fatal("breakdown missing compute")
	}
}

func TestRunBestThreadsPicksFastest(t *testing.T) {
	cell := Cell{Bench: GE, N: testN, Driver: core.CB, Block: 1024, Recursive: true, RShared: 4}
	best := RunBestThreads(cell, []int{2, 8})
	r2 := Run(withThreads(cell, 2))
	r8 := Run(withThreads(cell, 8))
	want := r2
	if r8.Time < r2.Time {
		want = r8
	}
	if best.Threads != want.Threads {
		t.Fatalf("best threads = %d, want %d (t2=%v t8=%v)", best.Threads, want.Threads, r2.Time, r8.Time)
	}
}

func withThreads(c Cell, th int) Cell {
	c.Threads = th
	return c
}

func TestTableIShape(t *testing.T) {
	tbl, results := TableI(testN)
	if len(results) != len(tableGridThreads)*len(tableGridCores) {
		t.Fatalf("results = %d", len(results))
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table I") {
		t.Fatal("title missing")
	}

	// The paper's qualitative claims about the grid:
	at := func(threads, cores int) Result {
		for _, r := range results {
			if r.Threads == threads && r.ExecutorCores == cores {
				return r
			}
		}
		t.Fatalf("cell omp=%d cores=%d missing", threads, cores)
		return Result{}
	}
	// (1) More executor-cores helps at fixed OMP.
	if !(at(8, 32).Time < at(8, 2).Time) {
		t.Fatal("cores=32 must beat cores=2 at omp=8")
	}
	// (2) At high cores, omp=8 beats omp=2 (thread offload pays)…
	if !(at(8, 32).Time < at(2, 32).Time) {
		t.Fatal("omp=8 must beat omp=2 at cores=32")
	}
	// (3) …and omp=32 oversubscribes and regresses.
	if !(at(32, 32).Time > at(8, 32).Time) {
		t.Fatal("omp=32 must regress vs omp=8 at cores=32")
	}
	// (4) Single-slot executors are the worst column at omp=2.
	if !(at(2, 1).Time > at(2, 32).Time) {
		t.Fatal("cores=1 must be far worse at omp=2")
	}
}

func TestTableIIShape(t *testing.T) {
	// 16K keeps r = 16: enough interior tasks per node for the
	// oversubscription effects of the paper-scale grid to appear.
	_, results := TableII(16384)
	at := func(threads, cores int) Result {
		for _, r := range results {
			if r.Threads == threads && r.ExecutorCores == cores {
				return r
			}
		}
		t.Fatalf("cell missing")
		return Result{}
	}
	if !(at(8, 32).Time < at(2, 32).Time) {
		t.Fatal("omp=8 must beat omp=2 at cores=32")
	}
	if !(at(32, 32).Time > at(8, 32).Time) {
		t.Fatal("omp=32 must regress at cores=32")
	}
	if !(at(2, 1).Time > at(8, 32).Time) {
		t.Fatal("(omp=2, cores=1) must be among the worst cells")
	}
}

// TestFig6CrossoverAndWinners checks §V-C's central claims on a reduced
// sweep: iterative ≈ recursive at small blocks (in-L2), recursive wins
// clearly at 1024+, and the right driver wins per benchmark.
func TestFig6CrossoverAndWinners(t *testing.T) {
	find := func(results []Result, driver core.DriverKind, rec bool, rs, block int) Result {
		for _, r := range results {
			if r.Driver == driver && r.Recursive == rec && r.RShared == rs && r.Block == block {
				return r
			}
		}
		t.Fatalf("cell %v rec=%v rs=%d b=%d missing", driver, rec, rs, block)
		return Result{}
	}

	_, fw := Fig6(FW, testN)
	// Recursive clearly beats iterative at block 1024 for FW.
	fwIter := find(fw, core.IM, false, 0, 1024)
	fwRec := find(fw, core.IM, true, 16, 1024)
	if !(fwRec.Time < fwIter.Time) {
		t.Fatalf("FW: recursive (%v) must beat iterative (%v) at block 1024", fwRec.Time, fwIter.Time)
	}
	// At block 256 they are comparable (within 2×).
	smallIter := find(fw, core.IM, false, 0, 256)
	smallRec := find(fw, core.IM, true, 16, 256)
	ratio := smallIter.Time.Seconds() / smallRec.Time.Seconds()
	if ratio > 2.0 || ratio < 0.5 {
		t.Fatalf("FW at block 256: iter/rec = %.2f, want comparable", ratio)
	}

	_, ge := Fig6(GE, testN)

	// Headline speedups in the paper's 2–5× band (allowing slack for the
	// reduced problem size).
	hFW := ComputeHeadline(FW, fw)
	hGE := ComputeHeadline(GE, ge)
	if hFW.Speedup < 1.3 {
		t.Fatalf("FW headline speedup = %.2f, want > 1.3", hFW.Speedup)
	}
	if hGE.Speedup < 2 {
		t.Fatalf("GE headline speedup = %.2f, want > 2", hGE.Speedup)
	}
	if hGE.Speedup < hFW.Speedup {
		t.Fatal("GE must gain more from recursive kernels than FW (heavier dependencies)")
	}
}

// TestGEDriverWinner verifies §V-C's driver asymmetry at paper scale,
// where the pivot-copy replication volume dominates: GE runs faster under
// CB, while FW (no pivot copies to D, Fig. 7) runs faster under IM.
func TestGEDriverWinner(t *testing.T) {
	geIM := Run(Cell{Bench: GE, Driver: core.IM, Block: 512})
	geCB := Run(Cell{Bench: GE, Driver: core.CB, Block: 512})
	if !(geCB.Time < geIM.Time) {
		t.Fatalf("GE at paper scale: CB (%v) must beat IM (%v)", geCB.Time, geIM.Time)
	}
	// For FW the paper reports IM ahead "in most of the cases"; the model
	// prices the two within a small factor of each other (CB's broadcast
	// distribution costs are the least-constrained part of the
	// calibration — see EXPERIMENTS.md "Known residuals"). Assert the
	// drivers stay comparable and that the GE gap is the much larger one.
	fwIM := Run(Cell{Bench: FW, Driver: core.IM, Block: 256})
	fwCB := Run(Cell{Bench: FW, Driver: core.CB, Block: 256})
	fwGap := fwIM.Time.Seconds() / fwCB.Time.Seconds()
	if fwGap > 2 || fwGap < 0.5 {
		t.Fatalf("FW drivers must stay comparable: IM %v vs CB %v", fwIM.Time, fwCB.Time)
	}
	geGap := geIM.Time.Seconds() / geCB.Time.Seconds()
	if geGap < fwGap {
		t.Fatalf("the IM→CB gain must be larger for GE (%.2f) than FW (%.2f)", geGap, fwGap)
	}
}

func TestFig8PortabilityShape(t *testing.T) {
	_, results := Fig8(testN)
	// Same configuration must be slower on the Haswell cluster.
	var c1, c2 Result
	for _, r := range results {
		if r.Block == 1024 && r.Recursive && r.Driver == core.IM {
			if r.Cluster.Name == cluster.Skylake16().Name {
				c1 = r
			} else {
				c2 = r
			}
		}
	}
	if c1.Cluster == nil || c2.Cluster == nil {
		t.Fatal("fig8 cells missing")
	}
	if !(c2.Time > 2*c1.Time) {
		t.Fatalf("cluster #2 must be ≥2× slower for IM rec4 b1024: %v vs %v", c2.Time, c1.Time)
	}
}

func TestFig9WeakScaling(t *testing.T) {
	chart, results := Fig9()
	if len(chart.Lines) != 4 {
		t.Fatalf("lines = %d", len(chart.Lines))
	}
	for _, l := range chart.Lines {
		if len(l.Points) != len(fig9Nodes) {
			t.Fatalf("series %s has %d points", l.Name, len(l.Points))
		}
	}
	// The recursive GE series must scale no worse than the iterative one:
	// compare the 64-node/1-node growth factors.
	growth := func(name string) float64 {
		for _, l := range chart.Lines {
			if l.Name == name {
				return l.Points[2].Value / l.Points[0].Value
			}
		}
		t.Fatalf("series %q missing", name)
		return 0
	}
	if g1, g2 := growth("GE CB rec4 b1024 omp8"), growth("GE CB iter b512"); g1 > g2*1.5 {
		t.Fatalf("GE recursive weak scaling (%.2f) must not be much worse than iterative (%.2f)", g1, g2)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("fig9 cell failed: %+v", r)
		}
	}
}
