package experiments

import (
	"strings"
	"testing"
)

func TestAblationsBundle(t *testing.T) {
	s := Ablations(8192)
	if len(s.Tables) != 4 {
		t.Fatalf("tables = %d", len(s.Tables))
	}
	if len(s.Results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range s.Results {
		if r.Err != nil {
			t.Fatalf("ablation cell failed: %+v", r)
		}
	}
	var sb strings.Builder
	for _, tbl := range s.Tables {
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	out := sb.String()
	for _, want := range []string{"partitioner", "RDD partitions", "r_shared", "Baseline", "MPI-style"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations missing %q", want)
		}
	}
}

func TestAblationPartitionsSweetSpot(t *testing.T) {
	// The 1×/2×/4× multipliers must stay within a narrow band — the
	// paper's guideline is a mild tuning knob, not a cliff.
	_, results := AblationPartitions(8192)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	lo, hi := results[0].Time, results[0].Time
	for _, r := range results[1:] {
		if r.Time < lo {
			lo = r.Time
		}
		if r.Time > hi {
			hi = r.Time
		}
	}
	if hi.Seconds() > 1.5*lo.Seconds() {
		t.Fatalf("partition multiplier swing too wide: %v .. %v", lo, hi)
	}
}

func TestAblationBaselineOrdering(t *testing.T) {
	_, results := AblationBaseline(8192)
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	szDirected, szUndirected := results[0].Time, results[1].Time
	thisIter, thisRec, mpi := results[2].Time, results[3].Time, results[4].Time
	if !(szUndirected < szDirected) {
		t.Fatal("undirected optimization must help the baseline")
	}
	if !(thisRec < thisIter) {
		t.Fatal("recursive kernels must beat iterative")
	}
	if !(mpi < thisRec) {
		t.Fatal("the MPI-style comparator must be the fastest")
	}
}
