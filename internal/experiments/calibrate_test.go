package experiments

import (
	"testing"

	"dpspark/internal/cluster"
	"dpspark/internal/core"
)

// TestCalibrationProbe prints model times for the paper's anchor numbers.
// Run with: go test ./internal/experiments/ -run Probe -v -tags ignore
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	probe := func(name string, want float64, c Cell) {
		r := Run(c)
		t.Logf("%-36s paper=%6.0fs model=%8.0fs note=%s breakdown=%v",
			name, want, r.Time.Seconds(), r.Note(), r.Breakdown)
	}
	probe("FW IM iter b256", 651, Cell{Bench: FW, Driver: core.IM, Block: 256})
	probe("FW IM iter b512", 800, Cell{Bench: FW, Driver: core.IM, Block: 512})
	probe("FW IM iter b4096", 14530, Cell{Bench: FW, Driver: core.IM, Block: 4096})
	probe("FW CB iter b4096", 14480, Cell{Bench: FW, Driver: core.CB, Block: 4096})
	probe("FW IM rec16 b1024 omp8", 302, Cell{Bench: FW, Driver: core.IM, Block: 1024, Recursive: true, RShared: 16, Threads: 8})
	probe("FW CB rec16 b1024 omp8", 400, Cell{Bench: FW, Driver: core.CB, Block: 1024, Recursive: true, RShared: 16, Threads: 8})
	probe("GE CB iter b512", 1032, Cell{Bench: GE, Driver: core.CB, Block: 512})
	probe("GE IM iter b512", 2000, Cell{Bench: GE, Driver: core.IM, Block: 512})
	probe("GE CB rec4 b2048 omp16", 204, Cell{Bench: GE, Driver: core.CB, Block: 2048, Recursive: true, RShared: 4, Threads: 16})
	probe("GE IM iter b4096", 11344, Cell{Bench: GE, Driver: core.IM, Block: 4096})
	probe("GE CB iter b4096", 15548, Cell{Bench: GE, Driver: core.CB, Block: 4096})
	// Table I corners (GE CB rec4 b1024): (omp, cores)
	probe("T1 omp8 cores32", 213, Cell{Bench: GE, Driver: core.CB, Block: 1024, Recursive: true, RShared: 4, Threads: 8, ExecutorCores: 32})
	probe("T1 omp2 cores32", 381, Cell{Bench: GE, Driver: core.CB, Block: 1024, Recursive: true, RShared: 4, Threads: 2, ExecutorCores: 32})
	probe("T1 omp32 cores32", 581, Cell{Bench: GE, Driver: core.CB, Block: 1024, Recursive: true, RShared: 4, Threads: 32, ExecutorCores: 32})
	probe("T1 omp2 cores1", 1302, Cell{Bench: GE, Driver: core.CB, Block: 1024, Recursive: true, RShared: 4, Threads: 2, ExecutorCores: 1})
	probe("T1 omp32 cores1", 829, Cell{Bench: GE, Driver: core.CB, Block: 1024, Recursive: true, RShared: 4, Threads: 32, ExecutorCores: 1})
	// Table II corners (FW IM rec16 b1024)
	probe("T2 omp8 cores32", 302, Cell{Bench: FW, Driver: core.IM, Block: 1024, Recursive: true, RShared: 16, Threads: 8, ExecutorCores: 32})
	probe("T2 omp2 cores1", 2233, Cell{Bench: FW, Driver: core.IM, Block: 1024, Recursive: true, RShared: 16, Threads: 2, ExecutorCores: 1})
	probe("T2 omp32 cores32", 360, Cell{Bench: FW, Driver: core.IM, Block: 1024, Recursive: true, RShared: 16, Threads: 32, ExecutorCores: 32})
	// Fig 8 cluster 2
	probe("c2 FW IM rec4 b1024 omp8", 3144, Cell{Cluster: cluster.Haswell16(), Bench: FW, Driver: core.IM, Block: 1024, Recursive: true, RShared: 4, Threads: 8})
	probe("c2 FW IM iter b512", 1500, Cell{Cluster: cluster.Haswell16(), Bench: FW, Driver: core.IM, Block: 512})
}
