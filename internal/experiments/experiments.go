// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the cluster model: Tables I–II (the executor-cores ×
// OMP_NUM_THREADS grids), Fig. 6 (implementation × kernel × block-size
// sweeps for FW-APSP and GE), Fig. 8 (portability across the Skylake and
// Haswell clusters) and Fig. 9 (weak scaling), plus the headline
// iterative-vs-recursive speedups and the ablations DESIGN.md lists.
//
// Runs are symbolic (model mode): the drivers execute their real code
// path over symbolic tiles and the cluster simulator prices every stage;
// see EXPERIMENTS.md for paper-vs-model numbers.
package experiments

import (
	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/matrix"
	"dpspark/internal/obs"
	"dpspark/internal/rdd"
	"dpspark/internal/semiring"
	"dpspark/internal/simtime"
)

// PaperN is the evaluation's problem size: a 32K×32K DP table.
const PaperN = 32768

// obsv, when set, is shared by every experiment context so a whole sweep
// aggregates into one trace/metrics export (cmd/dpspark -trace/-metrics).
var obsv *obs.Observer

// SetObserver routes the spans and metrics of all subsequent experiment
// runs into o; nil restores per-run private observers.
func SetObserver(o *obs.Observer) { obsv = o }

// Benchmark selects one of the paper's two GEP benchmarks.
type Benchmark int

// Benchmarks.
const (
	// FW is Floyd-Warshall all-pairs shortest paths.
	FW Benchmark = iota
	// GE is Gaussian elimination without pivoting.
	GE
)

// String names the benchmark.
func (b Benchmark) String() string {
	if b == GE {
		return "GE"
	}
	return "FW-APSP"
}

// Rule returns the benchmark's GEP update rule.
func (b Benchmark) Rule() semiring.Rule {
	if b == GE {
		return semiring.NewGaussian()
	}
	return semiring.NewFloydWarshall()
}

// Cell is one experiment configuration.
type Cell struct {
	// Cluster to price on (nil → Skylake16).
	Cluster *cluster.Cluster
	// Bench selects the update rule.
	Bench Benchmark
	// N is the problem size (0 → PaperN).
	N int
	// Driver is IM or CB.
	Driver core.DriverKind
	// Block is the tile size b.
	Block int
	// Recursive selects r_shared-way R-DP kernels.
	Recursive bool
	// RShared and Threads configure recursive kernels.
	RShared, Threads int
	// ExecutorCores overrides the per-executor task slots (0 → all).
	ExecutorCores int
	// Partitions overrides the RDD partition count (0 → 2× cores).
	Partitions int
}

// Result is a priced cell.
type Result struct {
	Cell
	// Time is the modelled job time.
	Time simtime.Duration
	// TimedOut marks runs beyond the paper's 8-hour bound.
	TimedOut bool
	// Err reports modelled failures (e.g. staging disk full).
	Err error
	// Breakdown attributes resource-seconds by cost category.
	Breakdown map[simtime.Category]simtime.Duration
	// Stats is the run's full report (critical-path phase decomposition,
	// traffic totals, straggler skew); nil when the run failed to start.
	Stats *core.Stats
}

// Note renders the failure annotation for charts ("" when the run is
// valid).
func (r Result) Note() string {
	switch {
	case r.Err != nil:
		return "failed"
	case r.TimedOut:
		return "timeout"
	default:
		return ""
	}
}

// Run prices one cell.
func Run(c Cell) Result {
	if c.Cluster == nil {
		c.Cluster = cluster.Skylake16()
	}
	if c.N == 0 {
		c.N = PaperN
	}
	ctx := rdd.NewContext(rdd.Conf{
		Cluster:       c.Cluster,
		ExecutorCores: c.ExecutorCores,
		Observer:      obsv,
	})
	cfg := core.Config{
		Rule:            c.Bench.Rule(),
		BlockSize:       c.Block,
		Driver:          c.Driver,
		RecursiveKernel: c.Recursive,
		RShared:         c.RShared,
		Threads:         c.Threads,
		Partitions:      c.Partitions,
	}
	bl := matrix.NewSymbolicBlocked(c.N, c.Block)
	_, stats, err := core.Run(ctx, bl, cfg)
	res := Result{Cell: c, Err: err, Breakdown: ctx.Ledger().Snapshot(), Stats: stats}
	if stats != nil {
		res.Time = stats.Time
		res.TimedOut = stats.TimedOut
	}
	return res
}

// RunBestThreads prices the cell at each OMP_NUM_THREADS candidate and
// returns the fastest valid run — the paper's methodology of reporting
// the best thread count per configuration (§V-C).
func RunBestThreads(c Cell, threadCandidates []int) Result {
	if !c.Recursive || len(threadCandidates) == 0 {
		return Run(c)
	}
	var best Result
	for i, th := range threadCandidates {
		cc := c
		cc.Threads = th
		r := Run(cc)
		if i == 0 || better(r, best) {
			best = r
		}
	}
	return best
}

// better prefers valid runs, then lower times.
func better(a, b Result) bool {
	av, bv := a.Note() == "", b.Note() == ""
	if av != bv {
		return av
	}
	return a.Time < b.Time
}
