package experiments

import (
	"fmt"

	"dpspark/internal/baseline"
	"dpspark/internal/cluster"
	"dpspark/internal/core"
	"dpspark/internal/matrix"
	"dpspark/internal/mpifw"
	"dpspark/internal/rdd"
	"dpspark/internal/report"
	"dpspark/internal/simtime"
)

// AblationPartitioner compares Spark's default hash partitioner against
// the custom grid partitioner the paper proposes as future work (§VI),
// for both benchmarks. n=0 runs the paper size.
func AblationPartitioner(n int) (*report.Table, []Result) {
	if n == 0 {
		n = PaperN
	}
	benches := []Benchmark{FW, GE}
	parts := []string{"hash (default)", "grid (custom)"}
	t := report.NewTable("Ablation: partitioner (seconds, block 1K, 4-way recursive, omp 8)",
		"benchmark", []string{benches[0].String(), benches[1].String()}, parts)
	var results []Result
	for bi, bench := range benches {
		driver := core.IM
		if bench == GE {
			driver = core.CB
		}
		for pi, gridPart := range []bool{false, true} {
			cell := Cell{Bench: bench, N: n, Driver: driver, Block: 1024,
				Recursive: true, RShared: 4, Threads: 8}
			r := runWithPartitioner(cell, gridPart)
			results = append(results, r)
			t.Set(bi, pi, report.Seconds(r.Time, r.TimedOut))
		}
	}
	return t, results
}

// runWithPartitioner is Run with an optional grid partitioner.
func runWithPartitioner(c Cell, grid bool) Result {
	if c.Cluster == nil {
		c.Cluster = cluster.Skylake16()
	}
	if c.N == 0 {
		c.N = PaperN
	}
	ctx := rdd.NewContext(rdd.Conf{Cluster: c.Cluster, ExecutorCores: c.ExecutorCores, Observer: obsv})
	parts := c.Partitions
	if parts == 0 {
		parts = c.Cluster.DefaultPartitions()
	}
	var p rdd.Partitioner = rdd.NewHashPartitioner(parts)
	if grid {
		p = rdd.NewGridPartitioner(parts, matrix.Grid(c.N, c.Block))
	}
	cfg := core.Config{
		Rule:            c.Bench.Rule(),
		BlockSize:       c.Block,
		Driver:          c.Driver,
		RecursiveKernel: c.Recursive,
		RShared:         c.RShared,
		Threads:         c.Threads,
		Partitions:      parts,
		Partitioner:     p,
	}
	bl := matrix.NewSymbolicBlocked(c.N, c.Block)
	_, stats, err := core.Run(ctx, bl, cfg)
	res := Result{Cell: c, Err: err, Breakdown: ctx.Ledger().Snapshot(), Stats: stats}
	if stats != nil {
		res.Time = stats.Time
		res.TimedOut = stats.TimedOut
	}
	return res
}

// AblationPartitions sweeps the RDD-partition multiplier (the paper
// fixes 2× total cores per Spark's guideline, §V-B).
func AblationPartitions(n int) (*report.Table, []Result) {
	if n == 0 {
		n = PaperN
	}
	cl := cluster.Skylake16()
	mults := []int{1, 2, 4}
	cols := make([]string, len(mults))
	for i, m := range mults {
		cols[i] = fmt.Sprintf("%d× cores", m)
	}
	t := report.NewTable("Ablation: RDD partitions (seconds, FW-APSP IM, block 1K, 4-way rec, omp 8)",
		"", []string{"time"}, cols)
	var results []Result
	for i, m := range mults {
		r := Run(Cell{Bench: FW, N: n, Driver: core.IM, Block: 1024,
			Recursive: true, RShared: 4, Threads: 8,
			Partitions: m * cl.TotalCores()})
		results = append(results, r)
		t.Set(0, i, report.Seconds(r.Time, r.TimedOut))
	}
	return t, results
}

// AblationRShared sweeps the recursive fan-out at fixed block size and
// threads, isolating the r_shared tunable.
func AblationRShared(n int) (*report.Table, []Result) {
	if n == 0 {
		n = PaperN
	}
	rs := []int{2, 4, 8, 16}
	cols := make([]string, len(rs))
	for i, r := range rs {
		cols[i] = fmt.Sprintf("r=%d", r)
	}
	t := report.NewTable("Ablation: r_shared (seconds, block 1K, omp 8)",
		"benchmark", []string{FW.String(), GE.String()}, cols)
	var results []Result
	for bi, bench := range []Benchmark{FW, GE} {
		driver := core.IM
		if bench == GE {
			driver = core.CB
		}
		for ci, r := range rs {
			res := Run(Cell{Bench: bench, N: n, Driver: driver, Block: 1024,
				Recursive: true, RShared: r, Threads: 8})
			results = append(results, res)
			t.Set(bi, ci, report.Seconds(res.Time, res.TimedOut))
		}
	}
	return t, results
}

// AblationBaseline compares this work's FW solver against the
// Schoeneman–Zola baseline (iterative kernels), the baseline's
// undirected optimization, and the MPI-style BSP solver of the related
// work — the comparisons framing the paper.
func AblationBaseline(n int) (*report.Table, []Result) {
	if n == 0 {
		n = PaperN
	}
	cl := cluster.Skylake16()
	rows := []string{
		"baseline (S-Z, iterative, directed)",
		"baseline (S-Z, iterative, undirected)",
		"this work (IM, iterative)",
		"this work (IM, 16-way recursive, omp 8)",
		"MPI-style BSP (16-way recursive, omp 8)",
	}
	t := report.NewTable("Baseline comparison: FW-APSP, block 1K (seconds)", "configuration",
		rows, []string{"time"})
	var results []Result

	runBaseline := func(und bool) Result {
		ctx := rdd.NewContext(rdd.Conf{Cluster: cl, Observer: obsv})
		stats, err := baseline.SolveSymbolic(ctx, n, baseline.Config{BlockSize: 1024, Undirected: und})
		res := Result{Cell: Cell{Bench: FW, N: n, Block: 1024, Cluster: cl},
			Err: err, Breakdown: ctx.Ledger().Snapshot(), Stats: stats}
		if stats != nil {
			res.Time = stats.Time
			res.TimedOut = stats.TimedOut
		}
		return res
	}
	mpiTime := mpifw.ModelTime(cl, n, mpifw.Config{
		BlockSize: 1024, Recursive: true, RShared: 16, Threads: 8,
	})
	all := []Result{
		runBaseline(false),
		runBaseline(true),
		Run(Cell{Bench: FW, N: n, Driver: core.IM, Block: 1024}),
		Run(Cell{Bench: FW, N: n, Driver: core.IM, Block: 1024, Recursive: true, RShared: 16, Threads: 8}),
		{Cell: Cell{Bench: FW, N: n, Block: 1024, Cluster: cl}, Time: mpiTime},
	}
	for i, r := range all {
		results = append(results, r)
		t.Set(i, 0, report.Seconds(r.Time, r.TimedOut))
	}
	return t, results
}

// AblationSummary renders all ablations into one string-producing bundle
// for the CLI.
type AblationSummary struct {
	Tables  []*report.Table
	Results []Result
}

// Ablations runs every ablation at the given size (0 = paper size).
func Ablations(n int) AblationSummary {
	var s AblationSummary
	for _, f := range []func(int) (*report.Table, []Result){
		AblationPartitioner, AblationPartitions, AblationRShared, AblationBaseline,
	} {
		t, r := f(n)
		s.Tables = append(s.Tables, t)
		s.Results = append(s.Results, r...)
	}
	return s
}

// BreakdownString renders a result's cost breakdown compactly.
func (r Result) BreakdownString() string {
	return fmt.Sprintf("compute=%v disk=%v net=%v shared=%v overhead=%v",
		r.Breakdown[simtime.Compute], r.Breakdown[simtime.LocalDisk],
		r.Breakdown[simtime.Network], r.Breakdown[simtime.SharedFS],
		r.Breakdown[simtime.Overhead])
}
